// Package stsynapi is the wire contract of the stsyn synthesis service:
// the request and response shapes of every versioned endpoint, the job
// and batch envelopes of the async API, and the correlation headers. It
// is shared by the server (internal/service re-exports these types, so
// the two can never drift) and by the published client (pkg/client),
// and imports nothing outside the standard library and the error
// contract (pkg/stsynerr).
package stsynapi

import "stsyn/pkg/stsynerr"

// RequestIDHeader is the header that carries a request's correlation ID.
// Callers may stamp one ID per logical request and reuse it across
// retries and hedges, so server logs can be joined across attempts; the
// server generates one when the header is absent and echoes it on every
// response, error envelopes included.
const RequestIDHeader = "X-Request-ID"

// TenantHeader names the tenant a request is accounted to by the
// server's per-tenant admission control. Absent means the shared
// anonymous bucket.
const TenantHeader = "X-Stsyn-Tenant"

// Request is a synthesis job: either a built-in protocol by name (with
// its parameters) or an inline .stsyn guarded-command specification.
type Request struct {
	// Protocol names a built-in (see /v1/protocols); K and Dom are its
	// parameters (defaults 4 and 3, matching the stsyn CLI).
	Protocol string `json:"protocol,omitempty"`
	K        int    `json:"k,omitempty"`
	Dom      int    `json:"dom,omitempty"`
	// Spec is an inline .stsyn specification, mutually exclusive with
	// Protocol.
	Spec string `json:"spec,omitempty"`

	// Engine selects the state-space engine: auto (default), explicit or
	// symbolic.
	Engine string `json:"engine,omitempty"`
	// Convergence is strong (default) or weak.
	Convergence string `json:"convergence,omitempty"`
	// Schedule is the recovery schedule; empty means the paper's default
	// (P1, …, Pk-1, P0).
	Schedule []int `json:"schedule,omitempty"`
	// Resolution is the cycle-resolution strategy: batch (default) or
	// incremental.
	Resolution string `json:"resolution,omitempty"`
	// Fanout tries all cyclic-rotation schedules in parallel and keeps the
	// first success; Schedule must be empty.
	Fanout bool `json:"fanout,omitempty"`
	// Prune enables symmetry-quotient schedule pruning and the
	// cross-schedule fixpoint memo: with Fanout, orbit-equivalent schedules
	// are searched once; with or without it, rank/fixpoint sub-results are
	// shared through the server's memo. The synthesized protocol is
	// byte-identical to the unpruned run. Requires batch resolution (the
	// default): incremental cycle resolution is not equivariant under the
	// symmetry group.
	Prune bool `json:"prune,omitempty"`

	// SCC selects the explicit engine's cycle-detection algorithm: auto
	// (default: Tarjan below the measured crossover state count, fb above
	// it), tarjan, or fb (the trim-based parallel forward-backward search).
	// Requires the explicit engine.
	SCC string `json:"scc,omitempty"`
	// Workers bounds the engine's parallelism: for the explicit engine the
	// image/SCC worker pool (0 = GOMAXPROCS), for the symbolic engine the
	// scratch-manager fan-out of the SCC decomposition (0 = sequential).
	// Synthesized protocols are identical for every value.
	Workers int `json:"workers,omitempty"`

	// TimeoutMS bounds the job (queue wait included); 0 means the server's
	// default, and values above the server's maximum are clamped.
	TimeoutMS int `json:"timeout_ms,omitempty"`
}

// Command is one rendered guarded command of the synthesized protocol.
type Command struct {
	Guard  string `json:"guard"`
	Effect string `json:"effect"`
	Groups int    `json:"groups"`
}

// ProcessResult is the synthesized actions of one process.
type ProcessResult struct {
	Name     string    `json:"name"`
	Commands []Command `json:"commands"`
}

// Timings are the synthesis time measurements in milliseconds.
type Timings struct {
	TotalMS   float64 `json:"total_ms"`
	RankingMS float64 `json:"ranking_ms"`
	SCCMS     float64 `json:"scc_ms"`
}

// Response is the result of a synthesis job — the encoding shared by the
// service, the async job API, the batch endpoint and the stsyn CLI's
// -json flag.
type Response struct {
	Protocol    string `json:"protocol"`
	Engine      string `json:"engine"`
	Convergence string `json:"convergence"`
	Schedule    []int  `json:"schedule"`

	Processes int     `json:"processes"`
	Variables int     `json:"variables"`
	States    float64 `json:"states"`

	Pass          int `json:"pass"`
	MaxRank       int `json:"max_rank"`
	AddedGroups   int `json:"added_groups"`
	RemovedGroups int `json:"removed_groups"`
	// RankInfinityFastFail counts the synthesizer's rank-∞ fast-fail
	// short-circuits (doomed-batch skips, futile-batch replays, terminal
	// aborts) during this job; 0 when the engine ran the reference scheme.
	RankInfinityFastFail int `json:"rank_infinity_fastfail"`

	ProgramSize int     `json:"program_size"`
	SCCCount    int     `json:"scc_count"`
	AvgSCCSize  float64 `json:"avg_scc_size"`
	Timings     Timings `json:"timings"`

	Actions  []ProcessResult `json:"actions"`
	Verified bool            `json:"verified"`

	// BDD is the symbolic engine's substrate statistics (nil for the
	// explicit engine, which has no shared node store).
	BDD *BDDStats `json:"bdd,omitempty"`

	// Explicit is the explicit engine's kernel configuration and activity
	// counters (nil for the symbolic engine).
	Explicit *ExplicitStats `json:"explicit,omitempty"`

	// Prune reports what symmetry pruning did for this job (nil when the
	// request did not ask for pruning).
	Prune *PruneStats `json:"prune,omitempty"`

	// Cached reports whether the response was served from the result cache;
	// ElapsedMS is the server-side job time (0 for CLI use).
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsed_ms"`
}

// BDDStats is the JSON rendering of the symbolic engine's substrate
// statistics (core.SpaceStats): node-store occupancy, operation-cache
// behavior and garbage-collection work for one synthesis run.
type BDDStats struct {
	Workers         int     `json:"workers"`
	LiveNodes       int     `json:"live_nodes"`
	PeakLiveNodes   int     `json:"peak_live_nodes"`
	AllocatedSlots  int     `json:"allocated_slots"`
	UniqueTableLoad float64 `json:"unique_table_load"`
	CacheSize       int     `json:"cache_size"`
	CacheHits       uint64  `json:"cache_hits"`
	CacheMisses     uint64  `json:"cache_misses"`
	CacheEvictions  uint64  `json:"cache_evictions"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	GCRuns          int     `json:"gc_runs"`
	GCReclaimed     uint64  `json:"gc_reclaimed"`
}

// ExplicitStats is the JSON rendering of the explicit engine's kernel
// configuration (SCC algorithm, worker bound) and image-kernel activity
// counters (explicit.KernelStats) for one synthesis run.
type ExplicitStats struct {
	SCCAlgorithm string `json:"scc_algorithm"`
	Workers      int    `json:"workers"`
	PreOps       uint64 `json:"pre_ops"`
	PostOps      uint64 `json:"post_ops"`
	GroupTests   uint64 `json:"group_tests"`
}

// PruneStats is the JSON rendering of one job's symmetry-pruning activity:
// the derived automorphism group's size, the quotient's schedule counters
// (zero for single-schedule jobs, where there is nothing to quotient), and
// this job's hits and misses against the cross-schedule fixpoint memo.
type PruneStats struct {
	GroupSize        int   `json:"group_size"`
	SchedulesEmitted int   `json:"schedules_emitted"`
	SchedulesPruned  int   `json:"schedules_pruned"`
	MemoHits         int64 `json:"memo_hits"`
	MemoMisses       int64 `json:"memo_misses"`
}

// Job states of the async API. A job is terminal exactly when its state
// is done, failed or canceled; terminal results are kept for the server's
// job TTL and then evicted (a later GET answers JobNotFound).
const (
	JobQueued   = "queued"
	JobRunning  = "running"
	JobDone     = "done"
	JobFailed   = "failed"
	JobCanceled = "canceled"
)

// JobStatus is the envelope of the async job API: what POST /v1/jobs
// returns (202, state queued) and what GET /v1/jobs/{id} polls.
type JobStatus struct {
	ID    string `json:"id"`
	State string `json:"state"`
	// ElapsedMS is the job's server-side age in milliseconds: creation to
	// now while live, creation to finish once terminal — the "partial
	// stats" a canceled job still reports.
	ElapsedMS float64 `json:"elapsed_ms"`
	// Response is the synthesis result, present exactly when State is
	// done. It is byte-identical (modulo the cached/elapsed_ms markers) to
	// what the synchronous endpoint returns for the same request, and the
	// two share one cache entry.
	Response *Response `json:"response,omitempty"`
	// Error is the typed failure, present when State is failed or
	// canceled.
	Error *stsynerr.Envelope `json:"error,omitempty"`
}

// BatchRequest is the body of POST /v1/batch: many synthesis requests
// answered in one round trip, with spec parsing and cache lookups
// amortized across them (identical requests are normalized and run once).
type BatchRequest struct {
	Requests []Request `json:"requests"`
}

// BatchResult is one request's outcome within a batch: exactly one of
// Response or Error is set.
type BatchResult struct {
	Response *Response          `json:"response,omitempty"`
	Error    *stsynerr.Envelope `json:"error,omitempty"`
}

// BatchResponse is the body answering POST /v1/batch; Results is
// positional with the request list.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
	// Deduped counts requests that were recognized as duplicates of an
	// earlier request in the same batch and served from its run.
	Deduped int `json:"deduped"`
	// CacheHits counts unique requests served from the server's result
	// cache without starting a job.
	CacheHits int `json:"cache_hits"`
}
