package client

import (
	"bytes"
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// RequestIDHeader and TenantHeader re-export the correlation headers of
// the wire contract.
const (
	RequestIDHeader = stsynapi.RequestIDHeader
	TenantHeader    = stsynapi.TenantHeader
)

// Config configures a Client. Zero values select the documented defaults;
// only Endpoints is required.
type Config struct {
	// Endpoints are the base URLs of the stsyn-serve instances (e.g.
	// "http://10.0.0.5:8080"). At least one is required.
	Endpoints []string
	// HTTPClient is the transport (default http.DefaultClient). The client
	// applies AttemptTimeout per attempt itself; the http.Client's own
	// Timeout should stay 0.
	HTTPClient *http.Client
	// AttemptTimeout bounds one HTTP attempt (default 2m).
	AttemptTimeout time.Duration
	// MaxAttempts bounds attempts per logical request, first try included
	// (default 2×len(Endpoints); 1 disables retries).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 50ms and 2s); ±50% jitter is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryAfterMax caps how long a server's Retry-After advice is honored
	// (default 5s).
	RetryAfterMax time.Duration
	// FailureThreshold and Cooldown configure endpoint rotation: after
	// FailureThreshold consecutive failures an endpoint is skipped for
	// Cooldown (defaults 3 and 5s), unless every endpoint is cooling.
	FailureThreshold int
	Cooldown         time.Duration
	// MaxResponseBytes bounds response bodies (default 64 MiB).
	MaxResponseBytes int64
	// UserAgent, when set, is stamped on requests that lack one.
	UserAgent string
	// Tenant, when set, names the tenant bucket requests are accounted to
	// (the X-Stsyn-Tenant header).
	Tenant string
	// NewRequestID supplies correlation IDs for requests the caller did
	// not stamp (default: random 16-hex-digit).
	NewRequestID func() string
	// Observer, when non-nil, receives the retry loop's events.
	Observer *Observer
	// Middleware is appended outside the built-in stack (outermost first),
	// for caller-supplied tracing, auth, and the like.
	Middleware []Middleware
}

// Observer receives the client's retry-loop events, for callers that
// aggregate their own metrics.
type Observer struct {
	// OnAttempt fires once per HTTP attempt, before it is sent.
	OnAttempt func(endpoint string)
	// OnRetry fires before each backoff wait.
	OnRetry func(attempt int, wait time.Duration, last error)
	// OnCooldown fires when an endpoint enters failure cooldown.
	OnCooldown func(endpoint string, fails int, d time.Duration)
}

// Client is a typed stsyn-serve client over a resilient middleware stack.
// Safe for concurrent use.
type Client struct {
	doer      Doer
	endpoints *Endpoints
}

// New validates cfg and builds a Client.
func New(cfg Config) (*Client, error) {
	eps, err := NewEndpoints(cfg.Endpoints)
	if err != nil {
		return nil, err
	}
	eps.SetCooldown(cfg.FailureThreshold, cfg.Cooldown)
	hc := cfg.HTTPClient
	if hc == nil {
		hc = http.DefaultClient
	}
	newID := cfg.NewRequestID
	if newID == nil {
		newID = NewRequestID
	}
	rcfg := RetryConfig{
		Endpoints:        eps,
		MaxAttempts:      cfg.MaxAttempts,
		AttemptTimeout:   cfg.AttemptTimeout,
		BackoffBase:      cfg.BackoffBase,
		BackoffMax:       cfg.BackoffMax,
		RetryAfterMax:    cfg.RetryAfterMax,
		MaxResponseBytes: cfg.MaxResponseBytes,
	}
	if obs := cfg.Observer; obs != nil {
		rcfg.OnAttempt = obs.OnAttempt
		rcfg.OnRetry = obs.OnRetry
		rcfg.OnCooldown = obs.OnCooldown
	}
	mw := append([]Middleware{}, cfg.Middleware...)
	if cfg.UserAgent != "" {
		mw = append(mw, WithUserAgent(cfg.UserAgent))
	}
	if cfg.Tenant != "" {
		mw = append(mw, WithHeader(TenantHeader, cfg.Tenant))
	}
	mw = append(mw, WithRequestID(newID), WithRetry(rcfg))
	return &Client{doer: Wrap(hc, mw...), endpoints: eps}, nil
}

// NewRequestID returns a fresh 16-hex-digit correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Endpoints snapshots each endpoint's health.
func (c *Client) Endpoints() []EndpointStatus { return c.endpoints.Status() }

// roundTrip runs one typed call: marshal in (when non-nil), send, read
// the (already buffered) body, and either decode a non-want status into a
// typed error or unmarshal the body into out (when non-nil). The returned
// bytes are the compacted response body.
func (c *Client) roundTrip(ctx context.Context, method, path string, in interface{}, reqID string, want int, out interface{}) ([]byte, error) {
	var body *bytes.Reader
	if in != nil {
		data, err := json.Marshal(in)
		if err != nil {
			return nil, fmt.Errorf("client: marshal request: %w", err)
		}
		body = bytes.NewReader(data)
	} else {
		body = bytes.NewReader(nil)
	}
	req, err := http.NewRequestWithContext(ctx, method, path, body)
	if err != nil {
		return nil, fmt.Errorf("client: build request: %w", err)
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	if reqID != "" {
		req.Header.Set(RequestIDHeader, reqID)
	}
	resp, err := c.doer.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, &Error{Endpoint: endpointOf(resp), Err: fmt.Errorf("reading response: %w", err)}
	}
	// Servers pretty-print their bodies; compact so callers that persist
	// raw responses (the dist journal) get a canonical byte form.
	if compacted := new(bytes.Buffer); json.Compact(compacted, raw) == nil {
		raw = compacted.Bytes()
	}
	if resp.StatusCode != want {
		serr := stsynerr.Decode(resp.StatusCode, raw)
		ce := &Error{Endpoint: endpointOf(resp), Status: resp.StatusCode, Err: serr}
		if serr.RetryAfter > 0 {
			ce.RetryAfter = time.Duration(serr.RetryAfter) * time.Second
		}
		return raw, ce
	}
	if out != nil {
		if err := json.Unmarshal(raw, out); err != nil {
			return nil, &Error{Endpoint: endpointOf(resp), Err: fmt.Errorf("bad response body: %w", err)}
		}
	}
	return raw, nil
}

// endpointOf recovers the base URL that answered a response.
func endpointOf(resp *http.Response) string {
	if resp.Request != nil && resp.Request.URL != nil {
		return resp.Request.URL.Scheme + "://" + resp.Request.URL.Host
	}
	return ""
}

// Synthesize runs one synthesis request synchronously (POST
// /v1/synthesize), retrying across endpoints. Service failures come back
// as *client.Error values wrapping the decoded *stsynerr.Error.
func (c *Client) Synthesize(ctx context.Context, req *stsynapi.Request) (*stsynapi.Response, error) {
	resp, _, err := c.SynthesizeRaw(ctx, req, "")
	return resp, err
}

// SynthesizeRaw is Synthesize returning the raw (compacted) response
// bytes alongside the decoded response, for callers that persist exact
// bytes — the dist journal's byte-identical replay depends on this.
// reqID, when non-empty, is the X-Request-ID shared by every attempt of
// this logical request, joining server logs across retries and hedges.
func (c *Client) SynthesizeRaw(ctx context.Context, req *stsynapi.Request, reqID string) (*stsynapi.Response, []byte, error) {
	var out stsynapi.Response
	raw, err := c.roundTrip(ctx, http.MethodPost, "/v1/synthesize", req, reqID, http.StatusOK, &out)
	if err != nil {
		return nil, nil, err
	}
	return &out, raw, nil
}

// SubmitJob submits a synthesis request asynchronously (POST /v1/jobs)
// and returns the accepted job's status envelope — poll it with Job or
// block with WaitJob. The answer for a given request is byte-identical to
// the synchronous path's; the two share the server's cache.
func (c *Client) SubmitJob(ctx context.Context, req *stsynapi.Request) (*stsynapi.JobStatus, error) {
	var out stsynapi.JobStatus
	if _, err := c.roundTrip(ctx, http.MethodPost, "/v1/jobs", req, "", http.StatusAccepted, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Job polls one job's status (GET /v1/jobs/{id}). Unknown and expired
// IDs answer a typed JobNotFound.
func (c *Client) Job(ctx context.Context, id string) (*stsynapi.JobStatus, error) {
	var out stsynapi.JobStatus
	if _, err := c.roundTrip(ctx, http.MethodGet, "/v1/jobs/"+id, nil, "", http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// CancelJob cancels a live job (DELETE /v1/jobs/{id}); the engine stops
// at its next cancellation point and the job's status turns canceled.
func (c *Client) CancelJob(ctx context.Context, id string) (*stsynapi.JobStatus, error) {
	var out stsynapi.JobStatus
	if _, err := c.roundTrip(ctx, http.MethodDelete, "/v1/jobs/"+id, nil, "", http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// WaitJob polls a job until it is terminal and returns its response: a
// failed or canceled job's typed error comes back as a *client.Error
// wrapping the *stsynerr.Error the server recorded. poll is the polling
// interval (default 100ms); ctx bounds the wait.
func (c *Client) WaitJob(ctx context.Context, id string, poll time.Duration) (*stsynapi.Response, error) {
	if poll <= 0 {
		poll = 100 * time.Millisecond
	}
	for {
		js, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		switch js.State {
		case stsynapi.JobDone:
			return js.Response, nil
		case stsynapi.JobFailed, stsynapi.JobCanceled:
			serr := &stsynerr.Error{Name: stsynerr.Internal, Message: "job failed without a recorded error"}
			if js.Error != nil {
				serr = js.Error.AsError(0)
			}
			return nil, &Error{Status: serr.HTTPStatus(), Err: serr}
		}
		select {
		case <-time.After(poll):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Batch answers many synthesis requests in one round trip (POST
// /v1/batch): the server parses, deduplicates and cache-checks them as a
// set, and per-item outcomes land positionally in the result (inspect
// each item's Error envelope with AsError for the typed form).
func (c *Client) Batch(ctx context.Context, reqs []stsynapi.Request) (*stsynapi.BatchResponse, error) {
	var out stsynapi.BatchResponse
	in := &stsynapi.BatchRequest{Requests: reqs}
	if _, err := c.roundTrip(ctx, http.MethodPost, "/v1/batch", in, "", http.StatusOK, &out); err != nil {
		return nil, err
	}
	return &out, nil
}

// Protocols lists the server's built-in protocol names (GET /v1/protocols).
func (c *Client) Protocols(ctx context.Context) ([]string, error) {
	var out struct {
		Protocols []string `json:"protocols"`
	}
	if _, err := c.roundTrip(ctx, http.MethodGet, "/v1/protocols", nil, "", http.StatusOK, &out); err != nil {
		return nil, err
	}
	return out.Protocols, nil
}
