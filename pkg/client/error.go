package client

import (
	"errors"
	"fmt"
	"net/http"
	"time"
)

// Error is one failed interaction with the service: a transport failure
// (Status 0) or an error response. For error responses Err is the decoded
// *stsynerr.Error, so both layers match structurally:
//
//	var ce *client.Error   // where did it fail, is it retryable
//	var se *stsynerr.Error // which registered error is it
//	errors.As(err, &ce); errors.As(err, &se)
type Error struct {
	// Endpoint is the base URL of the endpoint that answered (or failed).
	Endpoint string
	// Status is the HTTP status, 0 for transport failures.
	Status int
	// RetryAfter is the response's parsed Retry-After advice, 0 if absent.
	RetryAfter time.Duration
	// Err is the cause: the decoded *stsynerr.Error for service error
	// responses, the transport error otherwise.
	Err error
}

func (e *Error) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("endpoint %s: %v", e.Endpoint, e.Err)
	}
	return fmt.Sprintf("endpoint %s: HTTP %d: %v", e.Endpoint, e.Status, e.Err)
}

func (e *Error) Unwrap() error { return e.Err }

// Temporary reports whether retrying (elsewhere) could help: transport
// failures and 429/5xx are retryable, other statuses are not — the
// request itself is wrong and every endpoint will agree.
func (e *Error) Temporary() bool {
	return e.Status == 0 || e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// IsTemporary reports whether err (or anything it wraps) is a *client.Error
// a retry could help with.
func IsTemporary(err error) bool {
	var ce *Error
	return errors.As(err, &ce) && ce.Temporary()
}
