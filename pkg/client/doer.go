// Package client is the published Go client for the stsyn synthesis
// service: a minimal Doer core with composable middleware (retry with
// capped exponential backoff and Retry-After honoring, failure-cooldown
// endpoint rotation, request-ID threading, user-agent stamping) and a
// typed API over every service endpoint — synchronous synthesis, the
// async job lifecycle (submit / poll / cancel / wait) and batching.
//
// Every service failure surfaces as a *client.Error wrapping the typed
// *stsynerr.Error the server emitted, so callers branch with errors.As /
// errors.Is on registered error names instead of matching message strings:
//
//	resp, err := c.Synthesize(ctx, req)
//	if stsynerr.IsName(err, stsynerr.QueueFull) { backoffAndRetry() }
//
// The package imports only the standard library and the wire contract
// (pkg/stsynapi, pkg/stsynerr) — no internal packages — so it is safe to
// depend on from outside the repository.
package client

import "net/http"

// Doer is the minimal HTTP core every middleware composes over —
// *http.Client satisfies it.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// DoerFunc adapts a function to the Doer interface.
type DoerFunc func(*http.Request) (*http.Response, error)

// Do calls f.
func (f DoerFunc) Do(req *http.Request) (*http.Response, error) { return f(req) }

// Middleware wraps a Doer with one behavior (retry, headers, tracing…).
type Middleware func(Doer) Doer

// Wrap applies middleware to a Doer, first listed outermost: Wrap(d, a, b)
// runs a, then b, then d for every request.
func Wrap(d Doer, mw ...Middleware) Doer {
	for i := len(mw) - 1; i >= 0; i-- {
		if mw[i] != nil {
			d = mw[i](d)
		}
	}
	return d
}

// WithHeader sets a header on every request that does not already carry it.
func WithHeader(key, value string) Middleware {
	return func(next Doer) Doer {
		return DoerFunc(func(req *http.Request) (*http.Response, error) {
			if req.Header.Get(key) == "" {
				req.Header.Set(key, value)
			}
			return next.Do(req)
		})
	}
}

// WithUserAgent stamps a User-Agent on requests that lack one.
func WithUserAgent(ua string) Middleware { return WithHeader("User-Agent", ua) }

// WithRequestID threads an X-Request-ID through every request: an ID
// already present (set by the caller to join logs across calls, or shared
// across retries of one logical request) is kept, otherwise gen supplies a
// fresh one. Place it outside WithRetry so one logical request keeps one
// ID across every attempt.
func WithRequestID(gen func() string) Middleware {
	return func(next Doer) Doer {
		return DoerFunc(func(req *http.Request) (*http.Response, error) {
			if req.Header.Get(RequestIDHeader) == "" {
				req.Header.Set(RequestIDHeader, gen())
			}
			return next.Do(req)
		})
	}
}
