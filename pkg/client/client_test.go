package client

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// fastConfig keeps retry waits microscopic so tests run in milliseconds.
func fastConfig(endpoints ...string) Config {
	return Config{
		Endpoints:      endpoints,
		AttemptTimeout: 5 * time.Second,
		BackoffBase:    time.Millisecond,
		BackoffMax:     5 * time.Millisecond,
	}
}

func mustClient(t *testing.T, cfg Config) *Client {
	t.Helper()
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func okHandler(hits *atomic.Int64) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(&stsynapi.Response{Protocol: "tokenring", Verified: true})
	}
}

func TestSynthesizeRetriesAcrossEndpointsAndCoolsDown(t *testing.T) {
	var badHits, goodHits atomic.Int64
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(stsynerr.New(stsynerr.QueueFull, "full").Envelope())
	}))
	defer bad.Close()
	good := httptest.NewServer(okHandler(&goodHits))
	defer good.Close()

	var retries, cooldowns atomic.Int64
	cfg := fastConfig(bad.URL, good.URL)
	cfg.FailureThreshold = 1
	cfg.Cooldown = time.Minute
	cfg.Observer = &Observer{
		OnRetry:    func(int, time.Duration, error) { retries.Add(1) },
		OnCooldown: func(string, int, time.Duration) { cooldowns.Add(1) },
	}
	c := mustClient(t, cfg)

	resp, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"})
	if err != nil {
		t.Fatalf("Synthesize: %v", err)
	}
	if !resp.Verified {
		t.Errorf("response not verified: %+v", resp)
	}
	if badHits.Load() != 1 || goodHits.Load() != 1 {
		t.Errorf("hits = bad %d good %d, want 1 and 1", badHits.Load(), goodHits.Load())
	}
	if retries.Load() != 1 || cooldowns.Load() != 1 {
		t.Errorf("retries = %d cooldowns = %d, want 1 and 1", retries.Load(), cooldowns.Load())
	}

	// The failed endpoint is cooling: the next request goes straight to the
	// healthy one.
	if _, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"}); err != nil {
		t.Fatalf("second Synthesize: %v", err)
	}
	if badHits.Load() != 1 {
		t.Errorf("cooled endpoint was hit again (bad hits = %d)", badHits.Load())
	}
}

func TestPermanentStatusIsTypedAndNotRetried(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusUnprocessableEntity)
		json.NewEncoder(w).Encode(stsynerr.New(stsynerr.SynthesisFailed, "no convergent actions").Envelope())
	}))
	defer srv.Close()

	c := mustClient(t, fastConfig(srv.URL))
	_, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"})
	if err == nil {
		t.Fatal("want error")
	}
	if hits.Load() != 1 {
		t.Errorf("permanent 422 was retried: %d hits", hits.Load())
	}
	var ce *Error
	if !errors.As(err, &ce) || ce.Status != http.StatusUnprocessableEntity || ce.Temporary() {
		t.Errorf("client error = %+v, want permanent 422", ce)
	}
	var se *stsynerr.Error
	if !errors.As(err, &se) || se.Name != stsynerr.SynthesisFailed {
		t.Errorf("typed error = %+v, want name %s", se, stsynerr.SynthesisFailed)
	}
	if !errors.Is(err, &stsynerr.Error{Name: stsynerr.SynthesisFailed}) {
		t.Errorf("errors.Is on the name = false, want true")
	}
}

func TestExhaustionKeepsLastTypedError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusServiceUnavailable)
		json.NewEncoder(w).Encode(stsynerr.New(stsynerr.ShuttingDown, "draining").Envelope())
	}))
	defer srv.Close()

	cfg := fastConfig(srv.URL)
	cfg.MaxAttempts = 2
	c := mustClient(t, cfg)
	_, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"})
	if err == nil {
		t.Fatal("want error")
	}
	if !strings.Contains(err.Error(), "after 2 attempts") {
		t.Errorf("error %q does not mention exhaustion", err)
	}
	if !IsTemporary(err) {
		t.Errorf("exhausted 503 should stay temporary")
	}
	var se *stsynerr.Error
	if !errors.As(err, &se) || se.Name != stsynerr.ShuttingDown {
		t.Errorf("typed cause lost through exhaustion wrap: %v", err)
	}
}

func TestRequestIDIsStableAcrossAttempts(t *testing.T) {
	var ids []string
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ids = append(ids, r.Header.Get(RequestIDHeader))
		if hits.Add(1) == 1 {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		json.NewEncoder(w).Encode(&stsynapi.Response{Verified: true})
	}))
	defer srv.Close()

	c := mustClient(t, fastConfig(srv.URL))
	if _, _, err := c.SynthesizeRaw(context.Background(), &stsynapi.Request{Protocol: "tokenring"}, "req-7"); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] != "req-7" || ids[1] != "req-7" {
		t.Errorf("request IDs across attempts = %q, want req-7 twice", ids)
	}

	// Without a caller-supplied ID the client generates one — again shared
	// by every attempt.
	ids, hits = nil, atomic.Int64{}
	if _, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"}); err != nil {
		t.Fatal(err)
	}
	if len(ids) != 2 || ids[0] == "" || ids[0] != ids[1] {
		t.Errorf("generated request IDs across attempts = %q, want one non-empty ID twice", ids)
	}
}

func TestConfiguredHeadersAndMiddlewareOrder(t *testing.T) {
	var gotUA, gotTenant, gotMark string
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		gotUA = r.Header.Get("User-Agent")
		gotTenant = r.Header.Get(TenantHeader)
		gotMark = r.Header.Get("X-Trace")
		json.NewEncoder(w).Encode(&stsynapi.Response{Verified: true})
	}))
	defer srv.Close()

	var outerCalls atomic.Int64
	cfg := fastConfig(srv.URL)
	cfg.UserAgent = "stsyn-test/1"
	cfg.Tenant = "acme"
	cfg.Middleware = []Middleware{func(next Doer) Doer {
		return DoerFunc(func(req *http.Request) (*http.Response, error) {
			outerCalls.Add(1)
			req.Header.Set("X-Trace", "outer")
			return next.Do(req)
		})
	}}
	c := mustClient(t, cfg)
	if _, err := c.Synthesize(context.Background(), &stsynapi.Request{Protocol: "tokenring"}); err != nil {
		t.Fatal(err)
	}
	if gotUA != "stsyn-test/1" || gotTenant != "acme" || gotMark != "outer" {
		t.Errorf("headers = UA %q tenant %q trace %q", gotUA, gotTenant, gotMark)
	}
	// Caller middleware sits outside the retry loop: one call per logical
	// request, not per attempt.
	if outerCalls.Load() != 1 || hits.Load() != 1 {
		t.Errorf("outer middleware calls = %d, hits = %d, want 1 and 1", outerCalls.Load(), hits.Load())
	}
}

func TestWaitJobPollsToTerminal(t *testing.T) {
	var polls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.Method == http.MethodPost && r.URL.Path == "/v1/jobs":
			w.WriteHeader(http.StatusAccepted)
			json.NewEncoder(w).Encode(&stsynapi.JobStatus{ID: "j1", State: stsynapi.JobQueued})
		case r.Method == http.MethodGet && r.URL.Path == "/v1/jobs/j1":
			js := &stsynapi.JobStatus{ID: "j1", State: stsynapi.JobRunning}
			if polls.Add(1) >= 3 {
				js.State = stsynapi.JobDone
				js.Response = &stsynapi.Response{Protocol: "tokenring", Verified: true}
			}
			json.NewEncoder(w).Encode(js)
		default:
			http.NotFound(w, r)
		}
	}))
	defer srv.Close()

	c := mustClient(t, fastConfig(srv.URL))
	js, err := c.SubmitJob(context.Background(), &stsynapi.Request{Protocol: "tokenring"})
	if err != nil {
		t.Fatal(err)
	}
	if js.ID != "j1" || js.State != stsynapi.JobQueued {
		t.Fatalf("submit status = %+v", js)
	}
	resp, err := c.WaitJob(context.Background(), js.ID, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Verified || polls.Load() < 3 {
		t.Errorf("resp = %+v after %d polls", resp, polls.Load())
	}
}

func TestWaitJobSurfacesTypedFailure(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		env := stsynerr.New(stsynerr.Canceled, "job cancelled").Envelope()
		json.NewEncoder(w).Encode(&stsynapi.JobStatus{ID: "j2", State: stsynapi.JobCanceled, Error: env})
	}))
	defer srv.Close()

	c := mustClient(t, fastConfig(srv.URL))
	_, err := c.WaitJob(context.Background(), "j2", time.Millisecond)
	if err == nil {
		t.Fatal("want error")
	}
	var se *stsynerr.Error
	if !errors.As(err, &se) || se.Name != stsynerr.Canceled {
		t.Errorf("typed error = %+v, want %s", se, stsynerr.Canceled)
	}
}

func TestEndpointsRotationFallsBackWhenAllCooling(t *testing.T) {
	eps, err := NewEndpoints([]string{"http://a/", "http://b"})
	if err != nil {
		t.Fatal(err)
	}
	eps.SetCooldown(1, time.Minute)
	if eps.Len() != 2 {
		t.Fatalf("Len = %d", eps.Len())
	}
	i0, u0 := eps.Pick(-1)
	if u0 != "http://a" {
		t.Errorf("first pick = %q, want trailing slash trimmed http://a", u0)
	}
	if cooled, _ := eps.MarkFailure(i0); !cooled {
		t.Errorf("threshold-1 failure did not cool")
	}
	i1, _ := eps.Pick(i0)
	if i1 == i0 {
		t.Errorf("pick repeated the excluded endpoint with a healthy one available")
	}
	eps.MarkFailure(i1)
	// Both cooling: rotation must still yield something rather than spin.
	if _, u := eps.Pick(-1); u == "" {
		t.Errorf("all-cooling fallback returned nothing")
	}
	st := eps.Status()
	if len(st) != 2 || st[0].CoolingFor <= 0 || st[1].CoolingFor <= 0 {
		t.Errorf("status = %+v, want both cooling", st)
	}
	eps.MarkSuccess(i0)
	if st := eps.Status(); st[i0].Fails != 0 || st[i0].CoolingFor != 0 {
		t.Errorf("MarkSuccess did not reset: %+v", st[i0])
	}
}
