package client

import (
	"errors"
	"strings"
	"sync"
	"time"
)

// Endpoints is a rotating set of service base URLs with failure-aware
// cooldown: consecutive failures past a threshold take an endpoint out of
// rotation for a cooldown period, and the rotation falls back to plain
// round-robin when every endpoint is cooling so the client never
// deadlocks itself. Safe for concurrent use.
type Endpoints struct {
	mu        sync.Mutex
	urls      []string
	state     []endpointState
	rr        int // round-robin cursor
	threshold int // consecutive failures before cooldown
	cooldown  time.Duration
	now       func() time.Time // test hook
}

type endpointState struct {
	fails     int
	coolUntil time.Time
}

// EndpointStatus is one endpoint's health snapshot.
type EndpointStatus struct {
	URL        string
	Fails      int           // consecutive failures
	CoolingFor time.Duration // 0 when healthy
}

// NewEndpoints builds a rotation over the given base URLs (e.g.
// "http://10.0.0.5:8080"; trailing slashes are trimmed). At least one is
// required. Defaults: cooldown after 3 consecutive failures, for 5s.
func NewEndpoints(urls []string) (*Endpoints, error) {
	if len(urls) == 0 {
		return nil, errors.New("client: no endpoints configured")
	}
	cleaned := make([]string, len(urls))
	for i, u := range urls {
		cleaned[i] = strings.TrimRight(u, "/")
	}
	return &Endpoints{
		urls:      cleaned,
		state:     make([]endpointState, len(urls)),
		threshold: 3,
		cooldown:  5 * time.Second,
		now:       time.Now,
	}, nil
}

// SetCooldown tunes the failure threshold and cooldown duration
// (non-positive values keep the current setting).
func (e *Endpoints) SetCooldown(threshold int, d time.Duration) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if threshold > 0 {
		e.threshold = threshold
	}
	if d > 0 {
		e.cooldown = d
	}
}

// Len returns the number of endpoints.
func (e *Endpoints) Len() int { return len(e.urls) }

// Pick returns the next endpoint in rotation, skipping the excluded index
// (the one that just failed; pass -1 for none) and ones in cooldown; when
// every endpoint is cooling it falls back to plain rotation.
func (e *Endpoints) Pick(exclude int) (int, string) {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	n := len(e.urls)
	for scan := 0; scan < n; scan++ {
		i := e.rr % n
		e.rr++
		if i == exclude && n > 1 {
			continue
		}
		if now.Before(e.state[i].coolUntil) {
			continue
		}
		return i, e.urls[i]
	}
	i := e.rr % n
	e.rr++
	return i, e.urls[i]
}

// MarkSuccess resets an endpoint's failure streak.
func (e *Endpoints) MarkSuccess(i int) {
	e.mu.Lock()
	e.state[i].fails = 0
	e.state[i].coolUntil = time.Time{}
	e.mu.Unlock()
}

// MarkFailure records one failure; crossing the threshold starts a
// cooldown and reports (true, fails) exactly once per cooldown so the
// caller can count and log it.
func (e *Endpoints) MarkFailure(i int) (cooled bool, fails int) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.state[i].fails++
	if e.state[i].fails >= e.threshold && e.now().After(e.state[i].coolUntil) {
		e.state[i].coolUntil = e.now().Add(e.cooldown)
		return true, e.state[i].fails
	}
	return false, e.state[i].fails
}

// Cooldown returns the configured cooldown duration.
func (e *Endpoints) Cooldown() time.Duration {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.cooldown
}

// Status snapshots each endpoint's health.
func (e *Endpoints) Status() []EndpointStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()
	out := make([]EndpointStatus, len(e.urls))
	for i, u := range e.urls {
		out[i] = EndpointStatus{URL: u, Fails: e.state[i].fails}
		if d := e.state[i].coolUntil.Sub(now); d > 0 {
			out[i].CoolingFor = d
		}
	}
	return out
}
