package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"sync"
	"time"

	"stsyn/pkg/stsynerr"
)

// RetryConfig shapes the WithRetry middleware. Zero values select the
// documented defaults.
type RetryConfig struct {
	// Endpoints is the rotation the retry loop draws from. Required.
	Endpoints *Endpoints
	// MaxAttempts bounds the attempts per logical request, first try
	// included (default 2×len(endpoints); 1 disables retries).
	MaxAttempts int
	// AttemptTimeout bounds one HTTP attempt including reading the body
	// (default 2m — synthesis jobs are slow by design).
	AttemptTimeout time.Duration
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 50ms and 2s); jitter of ±50% is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryAfterMax caps how long a response's Retry-After advice is
	// honored (default 5s).
	RetryAfterMax time.Duration
	// MaxResponseBytes bounds how much of a response body is read
	// (default 64 MiB).
	MaxResponseBytes int64
	// RetryStatus decides which HTTP statuses are worth another endpoint
	// (default: 429 and 5xx).
	RetryStatus func(status int) bool
	// OnAttempt, OnRetry and OnCooldown, when non-nil, observe the loop —
	// one call per HTTP attempt, per backoff wait, per cooldown start.
	OnAttempt  func(endpoint string)
	OnRetry    func(attempt int, wait time.Duration, last error)
	OnCooldown func(endpoint string, fails int, d time.Duration)
}

// WithRetry turns a Doer into a resilient one: each request is resolved
// against the next healthy endpoint in rotation (request URLs are paths,
// e.g. "/v1/synthesize"), bounded by a per-attempt timeout, and retried
// across endpoints — with capped exponential backoff plus jitter,
// stretched by Retry-After advice — on transport failures and retryable
// statuses. The response body is fully read (bounded) and replaced with
// an in-memory reader before the attempt's timeout is released, so
// callers never race the deadline while draining it.
//
// Non-retryable error statuses are returned as responses, not errors —
// classification into typed errors is the typed client's job. Requests
// must be replayable: a nil body or one with GetBody set (as
// http.NewRequest provides for byte readers).
func WithRetry(cfg RetryConfig) Middleware {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 * cfg.Endpoints.Len()
	}
	if cfg.AttemptTimeout <= 0 {
		cfg.AttemptTimeout = 2 * time.Minute
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.RetryAfterMax <= 0 {
		cfg.RetryAfterMax = 5 * time.Second
	}
	if cfg.MaxResponseBytes <= 0 {
		cfg.MaxResponseBytes = 64 << 20
	}
	if cfg.RetryStatus == nil {
		cfg.RetryStatus = func(status int) bool {
			return status == http.StatusTooManyRequests || status >= 500
		}
	}
	return func(next Doer) Doer {
		return &retryDoer{cfg: cfg, next: next, rand: rand.New(rand.NewSource(time.Now().UnixNano()))}
	}
}

type retryDoer struct {
	cfg  RetryConfig
	next Doer

	mu   sync.Mutex
	rand *rand.Rand
}

func (rt *retryDoer) Do(req *http.Request) (*http.Response, error) {
	ctx := req.Context()
	var last error
	lastIdx := -1
	for attempt := 1; attempt <= rt.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			wait := rt.backoff(attempt-1, last)
			if rt.cfg.OnRetry != nil {
				rt.cfg.OnRetry(attempt, wait, last)
			}
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx, base := rt.cfg.Endpoints.Pick(lastIdx)
		lastIdx = idx
		resp, err := rt.once(ctx, req, base)
		if err != nil {
			if ctx.Err() != nil {
				return nil, err
			}
			last = &Error{Endpoint: base, Err: err}
			rt.markFailure(idx, base)
			continue
		}
		if resp.StatusCode < 300 {
			rt.cfg.Endpoints.MarkSuccess(idx)
			return resp, nil
		}
		if !rt.cfg.RetryStatus(resp.StatusCode) {
			// Permanent verdict (a 4xx): every endpoint would agree, so it
			// is neither a failure of this endpoint nor worth a retry.
			return resp, nil
		}
		last = rt.statusError(base, resp)
		rt.markFailure(idx, base)
	}
	return nil, fmt.Errorf("client: request failed after %d attempts: %w", rt.cfg.MaxAttempts, last)
}

// once sends one attempt to one endpoint, reading the body inside the
// attempt's timeout.
func (rt *retryDoer) once(ctx context.Context, req *http.Request, base string) (*http.Response, error) {
	if rt.cfg.OnAttempt != nil {
		rt.cfg.OnAttempt(base)
	}
	actx, cancel := context.WithTimeout(ctx, rt.cfg.AttemptTimeout)
	defer cancel()
	areq := req.Clone(actx)
	if areq.URL.Host == "" {
		u, err := url.Parse(base + areq.URL.String())
		if err != nil {
			return nil, fmt.Errorf("resolving %q against %q: %w", areq.URL, base, err)
		}
		areq.URL = u
		areq.Host = ""
	}
	if req.GetBody != nil {
		body, err := req.GetBody()
		if err != nil {
			return nil, fmt.Errorf("replaying request body: %w", err)
		}
		areq.Body = body
	}
	resp, err := rt.next.Do(areq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(resp.Body, rt.cfg.MaxResponseBytes))
	if err != nil {
		return nil, fmt.Errorf("reading response: %w", err)
	}
	resp.Body = io.NopCloser(bytes.NewReader(raw))
	return resp, nil
}

// statusError builds the typed error for a retryable error response —
// used for backoff advice and as the terminal error on exhaustion.
func (rt *retryDoer) statusError(base string, resp *http.Response) *Error {
	raw, _ := io.ReadAll(resp.Body) // in-memory reader; cannot fail
	ce := &Error{
		Endpoint: base,
		Status:   resp.StatusCode,
		Err:      stsynerr.Decode(resp.StatusCode, raw),
	}
	if secs, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil && secs > 0 {
		ce.RetryAfter = time.Duration(secs) * time.Second
	}
	return ce
}

// backoff computes the wait before retry number attempt (1-based),
// honoring the failed endpoint's Retry-After advice when it is larger.
func (rt *retryDoer) backoff(attempt int, last error) time.Duration {
	d := rt.cfg.BackoffBase << uint(attempt-1)
	if d > rt.cfg.BackoffMax || d <= 0 {
		d = rt.cfg.BackoffMax
	}
	rt.mu.Lock()
	jitter := 0.5 + rt.rand.Float64() // ±50%
	rt.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	if ce, ok := last.(*Error); ok && ce.RetryAfter > d {
		d = ce.RetryAfter
		if d > rt.cfg.RetryAfterMax {
			d = rt.cfg.RetryAfterMax
		}
	}
	return d
}

// markFailure records a failure on the rotation and surfaces new
// cooldowns to the observer.
func (rt *retryDoer) markFailure(idx int, base string) {
	if cooled, fails := rt.cfg.Endpoints.MarkFailure(idx); cooled && rt.cfg.OnCooldown != nil {
		rt.cfg.OnCooldown(base, fails, rt.cfg.Endpoints.Cooldown())
	}
}
