// Package stsynerr is the service's typed error contract: a registry of
// named errors, each with a canonical HTTP status, and the one JSON error
// envelope every stsyn service emits. The same *Error type travels both
// directions — the server builds one and serializes it with Envelope, the
// client decodes a response body with Decode and gets the identical value
// back — so callers on either side match errors structurally with
// errors.As / errors.Is instead of grepping message strings.
//
// The contract is deliberately small: a Name (the stable, machine-readable
// identity), an HTTP status (transport mapping), a human message, the
// request's correlation ID, optional safe parameters (string key/value
// only — never internal state), and Retry-After advice in whole seconds.
package stsynerr

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
)

// Name identifies one error kind of the contract. Names are stable API:
// clients branch on them, so renaming one is a breaking change.
type Name string

// The registered error names. Every error the service emits carries
// exactly one of these.
const (
	// InvalidRequest: the request is structurally broken — unparsable
	// JSON, unknown fields, missing or mutually exclusive inputs.
	InvalidRequest Name = "InvalidRequest"
	// InvalidSpec: the specification is unusable — an unknown built-in
	// protocol, bad built-in parameters, or an inline spec that does not
	// parse.
	InvalidSpec Name = "InvalidSpec"
	// UnsupportedOption: the request is well-formed but asks for an
	// option combination the service rejects (unknown engine, bad
	// schedule, prune with incremental resolution, …).
	UnsupportedOption Name = "UnsupportedOption"
	// SynthesisFailed: the heuristic gave a definitive negative verdict —
	// a result, not an infrastructure failure.
	SynthesisFailed Name = "SynthesisFailed"
	// QueueFull: the bounded job queue (or job store) has no room; retry
	// after the advised delay.
	QueueFull Name = "QueueFull"
	// RateLimited: the tenant's token-bucket admission rejected the
	// request; retry after the advised delay.
	RateLimited Name = "RateLimited"
	// ShuttingDown: the server is draining and accepts no new jobs.
	ShuttingDown Name = "ShuttingDown"
	// JobNotFound: no job with that ID exists (never created, or its
	// terminal result outlived its TTL and was evicted).
	JobNotFound Name = "JobNotFound"
	// Canceled: the job was canceled — by its client going away or by an
	// explicit DELETE — before it finished.
	Canceled Name = "Canceled"
	// Timeout: the job hit its deadline before finishing.
	Timeout Name = "Timeout"
	// RequestTooLarge: the request body exceeds the service's limit.
	RequestTooLarge Name = "RequestTooLarge"
	// MethodNotAllowed: the endpoint exists but not for that HTTP method.
	MethodNotAllowed Name = "MethodNotAllowed"
	// Internal: an invariant broke server-side. The message is safe to
	// show; details stay in server logs under the request ID.
	Internal Name = "Internal"
)

// StatusClientClosed is the (conventional, nginx-originated) status for
// requests whose client went away before the job finished.
const StatusClientClosed = 499

// registry maps every name to its canonical HTTP status.
var registry = map[Name]int{
	InvalidRequest:    http.StatusBadRequest,
	InvalidSpec:       http.StatusUnprocessableEntity,
	UnsupportedOption: http.StatusUnprocessableEntity,
	SynthesisFailed:   http.StatusUnprocessableEntity,
	QueueFull:         http.StatusServiceUnavailable,
	RateLimited:       http.StatusTooManyRequests,
	ShuttingDown:      http.StatusServiceUnavailable,
	JobNotFound:       http.StatusNotFound,
	Canceled:          StatusClientClosed,
	Timeout:           http.StatusGatewayTimeout,
	RequestTooLarge:   http.StatusRequestEntityTooLarge,
	MethodNotAllowed:  http.StatusMethodNotAllowed,
	Internal:          http.StatusInternalServerError,
}

// Names returns every registered name, sorted — the contract's table of
// contents, used by the pinning tests and the docs generator.
func Names() []Name {
	out := make([]Name, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// StatusOf returns the canonical HTTP status of a registered name, or
// (0, false) for an unregistered one.
func StatusOf(n Name) (int, bool) {
	s, ok := registry[n]
	return s, ok
}

// NameForStatus is the reverse mapping used when decoding an envelope
// that carries no error_name (an old server, or a proxy-generated body):
// the closest registered name for the status, falling back to Internal.
func NameForStatus(status int) Name {
	switch status {
	case http.StatusBadRequest:
		return InvalidRequest
	case http.StatusUnprocessableEntity:
		return SynthesisFailed
	case http.StatusServiceUnavailable:
		return QueueFull
	case http.StatusTooManyRequests:
		return RateLimited
	case http.StatusNotFound:
		return JobNotFound
	case StatusClientClosed:
		return Canceled
	case http.StatusGatewayTimeout:
		return Timeout
	case http.StatusRequestEntityTooLarge:
		return RequestTooLarge
	case http.StatusMethodNotAllowed:
		return MethodNotAllowed
	default:
		return Internal
	}
}

// Error is one service failure: the registered Name it carries, the HTTP
// status it maps to, and the envelope fields. It is the error type the
// server returns from every failing path and the one the client package
// reconstructs from every error response.
type Error struct {
	// Name is the registered error name; "" is normalized to the
	// status-derived name at serialization time.
	Name Name
	// Status is the HTTP status; 0 is normalized to the name's canonical
	// status.
	Status int
	// Message is the human-readable summary (never parsed by machines —
	// branch on Name).
	Message string
	// RequestID is the correlation ID of the failing request, when known.
	RequestID string
	// RetryAfter, when positive, is the server's advice in whole seconds
	// for when a retry may succeed; it becomes the Retry-After response
	// header on 503 and 429 responses.
	RetryAfter int
	// Params carries safe, client-actionable details (string-valued only;
	// nothing internal).
	Params map[string]string
	// Err is the wrapped cause, server-side only — it is folded into the
	// envelope's message and never serialized as structure.
	Err error
}

// New builds an Error with the name's canonical status.
func New(name Name, message string) *Error {
	status, _ := StatusOf(name)
	return &Error{Name: name, Status: status, Message: message}
}

// Newf is New with formatting.
func Newf(name Name, format string, args ...interface{}) *Error {
	return New(name, fmt.Sprintf(format, args...))
}

// Wrap builds an Error with the name's canonical status and a wrapped
// cause (reachable through errors.Unwrap, folded into the message text).
func Wrap(name Name, message string, err error) *Error {
	e := New(name, message)
	e.Err = err
	return e
}

func (e *Error) Error() string {
	if e.Err != nil {
		return fmt.Sprintf("%s: %v", e.Message, e.Err)
	}
	return e.Message
}

func (e *Error) Unwrap() error { return e.Err }

// Is makes errors.Is(err, &Error{Name: QueueFull}) match by name: a
// target with a Name matches any Error carrying the same name, a target
// without one falls back to pointer identity.
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	return t.Name != "" && t.Name == e.name()
}

// IsName reports whether err (or anything it wraps) is an *Error carrying
// the given name.
func IsName(err error, name Name) bool {
	var e *Error
	return errors.As(err, &e) && e.name() == name
}

// name is the effective name: the explicit one, or the status-derived
// fallback so pre-contract constructions still serialize a registered name.
func (e *Error) name() Name {
	if e.Name != "" {
		return e.Name
	}
	return NameForStatus(e.status())
}

// status is the effective HTTP status: the explicit one, or the name's
// canonical status, or 500.
func (e *Error) status() int {
	if e.Status != 0 {
		return e.Status
	}
	if s, ok := StatusOf(e.Name); ok {
		return s
	}
	return http.StatusInternalServerError
}

// HTTPStatus returns the effective HTTP status the error maps to.
func (e *Error) HTTPStatus() int { return e.status() }

// ErrorName returns the effective registered name the error carries.
func (e *Error) ErrorName() Name { return e.name() }

// Envelope is the wire shape of an error response body. Every error the
// service emits — and only errors — has this shape.
type Envelope struct {
	// Error is the human-readable message (Message plus the wrapped
	// cause's text).
	Error string `json:"error"`
	// Name is the registered error name.
	Name Name `json:"error_name,omitempty"`
	// RequestID is the request's correlation ID.
	RequestID string `json:"request_id,omitempty"`
	// RetryAfterSeconds mirrors the Retry-After header for clients that
	// only see the body.
	RetryAfterSeconds int `json:"retry_after_seconds,omitempty"`
	// Params carries the error's safe parameters.
	Params map[string]string `json:"params,omitempty"`
}

// Envelope renders the error as its wire shape, normalizing the name.
func (e *Error) Envelope() *Envelope {
	return &Envelope{
		Error:             e.Error(),
		Name:              e.name(),
		RequestID:         e.RequestID,
		RetryAfterSeconds: e.RetryAfter,
		Params:            e.Params,
	}
}

// AsError turns a decoded envelope back into the typed error it came from.
// status is the HTTP status of the response that carried it.
func (env *Envelope) AsError(status int) *Error {
	e := &Error{
		Name:       env.Name,
		Status:     status,
		Message:    env.Error,
		RequestID:  env.RequestID,
		RetryAfter: env.RetryAfterSeconds,
		Params:     env.Params,
	}
	if e.Name == "" {
		e.Name = NameForStatus(status)
	}
	if status == 0 {
		e.Status, _ = StatusOf(e.Name)
	}
	return e
}

// Decode reconstructs the typed error from an error response: the HTTP
// status plus the body. A body that is not a valid envelope (a proxy's
// HTML error page, a truncated read) still yields a usable *Error with a
// status-derived name and a truncated body excerpt as the message.
func Decode(status int, body []byte) *Error {
	var env Envelope
	if err := json.Unmarshal(body, &env); err == nil && env.Error != "" {
		return env.AsError(status)
	}
	msg := fmt.Sprintf("%.200s", body)
	if len(body) == 0 {
		msg = http.StatusText(status)
	}
	return &Error{Name: NameForStatus(status), Status: status, Message: msg}
}
