package stsynerr

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"testing"
)

// The registry is wire contract: renaming an error or moving its status is
// a breaking change clients see, so each pair is pinned individually.
func TestRegistryPinsNamesAndStatuses(t *testing.T) {
	want := map[Name]int{
		InvalidRequest:    http.StatusBadRequest,
		InvalidSpec:       http.StatusUnprocessableEntity,
		UnsupportedOption: http.StatusUnprocessableEntity,
		SynthesisFailed:   http.StatusUnprocessableEntity,
		QueueFull:         http.StatusServiceUnavailable,
		RateLimited:       http.StatusTooManyRequests,
		ShuttingDown:      http.StatusServiceUnavailable,
		JobNotFound:       http.StatusNotFound,
		Canceled:          StatusClientClosed,
		Timeout:           http.StatusGatewayTimeout,
		RequestTooLarge:   http.StatusRequestEntityTooLarge,
		MethodNotAllowed:  http.StatusMethodNotAllowed,
		Internal:          http.StatusInternalServerError,
	}
	names := Names()
	if len(names) != len(want) {
		t.Fatalf("registry has %d names, test pins %d — update both", len(names), len(want))
	}
	for name, status := range want {
		got, ok := StatusOf(name)
		if !ok || got != status {
			t.Errorf("StatusOf(%s) = %d, %v, want %d", name, got, ok, status)
		}
	}
	for _, name := range names {
		if _, ok := want[name]; !ok {
			t.Errorf("registry name %s not pinned by this test", name)
		}
	}
}

// Every registered error must survive the full trip: typed error →
// envelope → JSON → envelope → typed error, preserving name, status,
// request ID, retry advice and params, and remaining matchable with
// errors.Is / errors.As on the far side.
func TestEnvelopeRoundTripAllNames(t *testing.T) {
	for _, name := range Names() {
		t.Run(string(name), func(t *testing.T) {
			orig := &Error{
				Name:      name,
				Message:   "round trip " + string(name),
				RequestID: "req-42",
				Params:    map[string]string{"tenant": "acme"},
			}
			if st, _ := StatusOf(name); st == http.StatusServiceUnavailable || st == http.StatusTooManyRequests {
				orig.RetryAfter = 7
			}
			data, err := json.Marshal(orig.Envelope())
			if err != nil {
				t.Fatal(err)
			}
			back := Decode(orig.HTTPStatus(), data)
			if back.Name != name {
				t.Fatalf("decoded name = %s, want %s", back.Name, name)
			}
			if back.HTTPStatus() != orig.HTTPStatus() {
				t.Errorf("decoded status = %d, want %d", back.HTTPStatus(), orig.HTTPStatus())
			}
			if back.Message != orig.Message || back.RequestID != orig.RequestID {
				t.Errorf("decoded %+v, want message/request ID of %+v", back, orig)
			}
			if back.RetryAfter != orig.RetryAfter {
				t.Errorf("decoded RetryAfter = %d, want %d", back.RetryAfter, orig.RetryAfter)
			}
			if back.Params["tenant"] != "acme" {
				t.Errorf("decoded params = %v, want tenant=acme", back.Params)
			}
			wrapped := fmt.Errorf("client saw: %w", back)
			var se *Error
			if !errors.As(wrapped, &se) || se.Name != name {
				t.Errorf("errors.As lost the typed error through wrapping")
			}
			if !errors.Is(wrapped, &Error{Name: name}) {
				t.Errorf("errors.Is(%s) = false, want true", name)
			}
			if errors.Is(wrapped, &Error{Name: Internal}) && name != Internal {
				t.Errorf("errors.Is matched the wrong name")
			}
		})
	}
}

func TestDecodeToleratesForeignBodies(t *testing.T) {
	for _, tc := range []struct {
		name   string
		status int
		body   string
		want   Name
	}{
		{"html error page", http.StatusServiceUnavailable, "<html>gateway sad</html>", QueueFull},
		{"empty body", http.StatusNotFound, "", JobNotFound},
		{"plain envelope without name", http.StatusBadRequest, `{"error":"legacy"}`, InvalidRequest},
		{"unknown status", 418, "", Internal},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e := Decode(tc.status, []byte(tc.body))
			if e.Name != tc.want {
				t.Errorf("Decode(%d, %q).Name = %s, want %s", tc.status, tc.body, e.Name, tc.want)
			}
			if e.Message == "" {
				t.Errorf("Decode(%d, %q) lost the message entirely", tc.status, tc.body)
			}
		})
	}
}

func TestWrapPreservesCause(t *testing.T) {
	cause := errors.New("parse exploded")
	e := Wrap(InvalidSpec, "spec does not parse", cause)
	if !errors.Is(e, cause) {
		t.Errorf("errors.Is(wrapped, cause) = false")
	}
	if e.HTTPStatus() != http.StatusUnprocessableEntity {
		t.Errorf("status = %d, want 422", e.HTTPStatus())
	}
	if got := e.Error(); got != "spec does not parse: parse exploded" {
		t.Errorf("Error() = %q", got)
	}
	env := e.Envelope()
	if env.Error != "spec does not parse: parse exploded" {
		t.Errorf("envelope message = %q, should include the cause", env.Error)
	}
}
