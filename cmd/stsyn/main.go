// Command stsyn adds convergence to a non-stabilizing protocol and prints
// the synthesized self-stabilizing protocol as guarded commands — the Go
// counterpart of the paper's STabilization Synthesizer (STSyn).
//
// Usage:
//
//	stsyn -p tokenring -k 4 -dom 3
//	stsyn -p matching -k 7 -engine symbolic
//	stsyn -p coloring -k 40
//	stsyn -p tworing -fanout          # try all rotations in parallel
//	stsyn -spec ring.stsyn            # synthesize a protocol from a spec file
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"

	"stsyn"
	"stsyn/internal/cli"
	"stsyn/internal/core"
	"stsyn/internal/dot"
	"stsyn/internal/explicit"
	"stsyn/internal/gcl"
	"stsyn/internal/protocol"
	"stsyn/internal/prune"
	"stsyn/internal/service"
	"stsyn/internal/symbolic"
)

func main() {
	var (
		proto    = flag.String("p", "", "built-in protocol: "+cli.Names)
		specFile = flag.String("spec", "", "read the protocol from a .stsyn guarded-command file instead")
		k        = flag.Int("k", 4, "number of processes (parametric built-ins)")
		dom      = flag.Int("dom", 3, "variable domain size (token ring)")
		engine   = flag.String("engine", "auto", "state-space engine: auto, explicit, symbolic")
		weak     = flag.Bool("weak", false, "add weak convergence instead of strong")
		schedule = flag.String("schedule", "", "recovery schedule, e.g. 1,2,3,0 (default: P1..Pk-1,P0)")
		resol    = flag.String("resolution", "batch", "cycle resolution: batch (paper) or incremental")
		fanout   = flag.Bool("fanout", false, "try all cyclic-rotation schedules in parallel, first success wins")
		pruneOn  = flag.Bool("prune", false, "quotient the schedule search by the spec's symmetry group and memoize shared sub-results (result is unchanged)")
		sccAlg   = flag.String("scc", "auto", "explicit-engine SCC search: auto (by state count), tarjan, or fb (trim-based forward-backward)")
		workers  = flag.Int("workers", 0, "engine parallelism: explicit image/SCC workers (0 = GOMAXPROCS), symbolic SCC-fixpoint workers (0 = sequential)")
		quiet    = flag.Bool("q", false, "print only statistics, not the protocol")
		jsonOut  = flag.Bool("json", false, "emit the result as JSON (the same encoding stsyn-serve returns)")
		dotFile  = flag.String("dot", "", "also write the synthesized state graph as Graphviz DOT (small instances)")
	)
	flag.Parse()

	sp, err := loadSpec(*proto, *specFile, *k, *dom)
	fatalIf(err)

	opts := stsyn.Options{}
	if *weak {
		opts.Convergence = stsyn.Weak
	}
	switch *resol {
	case "batch":
	case "incremental":
		opts.CycleResolution = stsyn.IncrementalResolution
	default:
		fatalIf(fmt.Errorf("unknown cycle resolution %q", *resol))
	}
	opts.Schedule, err = cli.ParseSchedule(*schedule)
	fatalIf(err)

	// -prune: the orbit quotient needs schedule-equivariant synthesis, which
	// incremental cycle resolution does not provide (the retry order flips
	// under relabeling).
	var group *prune.Group
	var jobMemo *prune.JobMemo
	if *pruneOn {
		if opts.CycleResolution == stsyn.IncrementalResolution {
			fatalIf(fmt.Errorf("-prune requires batch resolution: incremental cycle resolution is not equivariant under the symmetry group"))
		}
		group = prune.DeriveGroup(sp)
		jobMemo = prune.NewMemo(0).ForJob(prune.Scope(sp, *engine, opts.Convergence, opts.CycleResolution))
		opts.Memo = jobMemo
	}

	// configure applies the per-engine knobs; non-default values the engine
	// cannot honor are an error rather than a silent no-op. -workers is
	// engine-generic (both engines parallelize), -scc is explicit-only.
	configure := func(e stsyn.Engine) error {
		ee, ok := e.(*explicit.Engine)
		if !ok {
			if *sccAlg != "auto" {
				return fmt.Errorf("-scc requires the explicit engine")
			}
			if se, ok := e.(*symbolic.Engine); ok {
				se.SetParallelism(*workers)
				return nil
			}
			if *workers != 0 {
				return fmt.Errorf("-workers is not supported by this engine")
			}
			return nil
		}
		switch *sccAlg {
		case "auto":
		case "tarjan":
			ee.SetSCCAlgorithm(explicit.Tarjan)
		case "fb":
			ee.SetSCCAlgorithm(explicit.ForwardBackward)
		default:
			return fmt.Errorf("unknown scc algorithm %q (want auto, tarjan or fb)", *sccAlg)
		}
		ee.SetParallelism(*workers)
		return nil
	}
	mkEngine := func() (stsyn.Engine, error) {
		e, err := newEngine(sp, *engine)
		if err != nil {
			return nil, err
		}
		return e, configure(e)
	}

	n, _ := sp.NumStates()
	if !*jsonOut {
		fmt.Printf("protocol %s: %d processes, %d variables, %d states\n",
			sp.Name, len(sp.Procs), len(sp.Vars), n)
	}

	var quotient *prune.QuotientStats
	if *fanout {
		scheds := stsyn.Rotations(len(sp.Procs))
		if group != nil {
			// The rotations list is lex-ordered and closed under the
			// rotation-generated group, so keeping canonical members keeps
			// exactly the first member of each orbit: the winner (and its
			// index among survivors) is the unpruned winner.
			q := prune.NewQuotientStream(group, core.StreamSchedules(scheds), true)
			scheds = nil
			for s, ok := q.Next(); ok; s, ok = q.Next() {
				scheds = append(scheds, s)
			}
			qs := q.Stats()
			quotient = &qs
		}
		best, attempts, err := stsyn.TrySchedules(mkEngine, opts,
			scheds, runtime.GOMAXPROCS(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "all %d schedules failed: %v\n", len(attempts), err)
			os.Exit(1)
		}
		if !*jsonOut {
			fmt.Printf("schedule %v succeeded\n", best.Schedule)
		}
		opts.Schedule = best.Schedule
	}

	e, err := mkEngine()
	fatalIf(err)
	res, err := stsyn.AddConvergence(e, opts)
	fatalIf(err)

	if !*jsonOut {
		fmt.Printf("synthesized: pass=%d ranks=%d added=%d removed=%d\n",
			res.PassCompleted, res.MaxRank(), len(res.Added), len(res.Removed))
		fmt.Printf("time: total=%v ranking=%v scc=%v\n",
			res.TotalTime.Round(1e6), res.RankingTime.Round(1e6), res.SCCTime.Round(1e6))
		fmt.Printf("space: program=%d avg-scc=%.1f (#scc=%d)\n",
			res.ProgramSize, res.AvgSCCSize, res.SCCCount)
		if group != nil {
			line := fmt.Sprintf("prune: group=%d", group.Size())
			if quotient != nil {
				line += fmt.Sprintf(" schedules-emitted=%d schedules-pruned=%d", quotient.Emitted, quotient.Pruned)
			}
			if jobMemo != nil {
				line += fmt.Sprintf(" memo-hits=%d memo-misses=%d", jobMemo.Hits(), jobMemo.Misses())
			}
			fmt.Println(line)
		}
		if sr, ok := e.(stsyn.SpaceReporter); ok {
			st := sr.SpaceStats()
			fmt.Printf("bdd: live=%d peak=%d cache-hit=%.0f%% gc-runs=%d reclaimed=%d\n",
				st.LiveNodes, st.PeakLiveNodes, 100*st.CacheHitRate, st.GCRuns, st.GCReclaimed)
		}
		if !*quiet {
			fmt.Println()
			fmt.Println(stsyn.Render(e, res.Protocol))
		}
	}

	if *dotFile != "" {
		out, err := dot.Graph(e, res.Protocol, dot.Options{
			Ranks:              res.Ranks,
			HighlightDeadlocks: true,
		})
		fatalIf(err)
		fatalIf(os.WriteFile(*dotFile, []byte(out), 0o644))
		fmt.Fprintf(os.Stderr, "state graph written to %s\n", *dotFile)
	}

	verdict := stsyn.VerifyStronglyStabilizing(e, res.Protocol)
	if *weak {
		verdict = stsyn.VerifyWeaklyStabilizing(e, res.Protocol)
	}

	if *jsonOut {
		sched := opts.Schedule
		if sched == nil {
			sched = stsyn.DefaultSchedule(len(sp.Procs))
		}
		j := &service.Job{
			Spec:        sp,
			Engine:      engineName(e),
			Convergence: opts.Convergence,
			Schedule:    sched,
			Resolution:  opts.CycleResolution,
			Fanout:      *fanout,
			Prune:       *pruneOn,
		}
		if _, ok := e.(*explicit.Engine); ok {
			j.SCC = *sccAlg
		}
		j.Workers = *workers
		out := service.EncodeResult(e, res, j, verdict.OK)
		if group != nil {
			ps := &service.PruneStats{GroupSize: group.Size()}
			if quotient != nil {
				ps.SchedulesEmitted = quotient.Emitted
				ps.SchedulesPruned = quotient.Pruned
			}
			if jobMemo != nil {
				ps.MemoHits = jobMemo.Hits()
				ps.MemoMisses = jobMemo.Misses()
			}
			out.Prune = ps
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		fatalIf(enc.Encode(out))
	}

	if verdict.OK {
		if !*jsonOut {
			fmt.Println("verified: self-stabilizing")
		}
	} else {
		fmt.Fprintf(os.Stderr, "VERIFICATION FAILED: %s (witness %v)\n", verdict.Reason, verdict.Witness)
		os.Exit(1)
	}
}

// engineName labels the engine for the JSON encoding.
func engineName(e stsyn.Engine) string {
	if _, ok := e.(*explicit.Engine); ok {
		return "explicit"
	}
	return "symbolic"
}

func loadSpec(proto, specFile string, k, dom int) (*protocol.Spec, error) {
	switch {
	case specFile != "":
		data, err := os.ReadFile(specFile)
		if err != nil {
			return nil, err
		}
		return gcl.Parse(specFile, string(data))
	case proto != "":
		return cli.BuildSpec(proto, k, dom)
	default:
		return nil, fmt.Errorf("need -p <name> or -spec <file> (built-ins: %s)", cli.Names)
	}
}

func newEngine(sp *protocol.Spec, kind string) (stsyn.Engine, error) {
	switch kind {
	case "explicit":
		return stsyn.NewExplicitEngine(sp, 0)
	case "symbolic":
		return stsyn.NewSymbolicEngine(sp)
	case "auto", "":
		return stsyn.NewEngine(sp)
	default:
		return nil, fmt.Errorf("unknown engine %q", kind)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsyn:", err)
		os.Exit(1)
	}
}
