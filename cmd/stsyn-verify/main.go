// Command stsyn-verify model-checks the stabilization properties of a
// protocol: closure of the legitimate-state predicate, deadlock freedom,
// absence of non-progress cycles, weak and strong convergence and silence.
// It is the checker behind the paper's flaw discovery in the Gouda-Acharya
// matching protocol.
//
// Usage:
//
//	stsyn-verify -p dijkstra -k 4 -dom 3
//	stsyn-verify -p gouda-acharya -k 5       # exhibits the paper's flaw
//	stsyn-verify -spec ring.stsyn
package main

import (
	"flag"
	"fmt"
	"os"

	"stsyn"
	"stsyn/internal/cli"
	"stsyn/internal/gcl"
	"stsyn/internal/protocol"
)

func main() {
	var (
		proto    = flag.String("p", "", "built-in protocol: "+cli.Names)
		specFile = flag.String("spec", "", "read the protocol from a .stsyn file instead")
		k        = flag.Int("k", 4, "number of processes (parametric built-ins)")
		dom      = flag.Int("dom", 3, "variable domain size (token ring)")
		engine   = flag.String("engine", "auto", "state-space engine: auto, explicit, symbolic")
		witness  = flag.Bool("witness", true, "print a concrete cycle when one exists")
	)
	flag.Parse()

	var sp *protocol.Spec
	var err error
	switch {
	case *specFile != "":
		var data []byte
		data, err = os.ReadFile(*specFile)
		if err == nil {
			sp, err = gcl.Parse(*specFile, string(data))
		}
	case *proto != "":
		sp, err = cli.BuildSpec(*proto, *k, *dom)
	default:
		err = fmt.Errorf("need -p <name> or -spec <file> (built-ins: %s)", cli.Names)
	}
	fatalIf(err)

	var e stsyn.Engine
	switch *engine {
	case "explicit":
		e, err = stsyn.NewExplicitEngine(sp, 0)
	case "symbolic":
		e, err = stsyn.NewSymbolicEngine(sp)
	default:
		e, err = stsyn.NewEngine(sp)
	}
	fatalIf(err)

	gs := e.ActionGroups()
	n, _ := sp.NumStates()
	fmt.Printf("protocol %s: %d processes, %d states, |I| = %.6g\n\n",
		sp.Name, len(sp.Procs), n, e.States(e.Invariant()))

	failures := 0
	check := func(name string, v stsyn.Verdict) bool {
		if v.OK {
			fmt.Printf("  %-22s OK\n", name)
			return true
		}
		failures++
		fmt.Printf("  %-22s FAIL: %s", name, v.Reason)
		if v.Witness != nil {
			fmt.Printf(" (witness %v)", v.Witness)
		}
		fmt.Println()
		return false
	}

	check("closure", stsyn.VerifyClosure(e, gs))
	check("deadlock freedom", stsyn.VerifyDeadlockFree(e, gs))
	cyclesOK := check("cycle freedom", stsyn.VerifyCycleFree(e, gs))
	check("weak convergence", stsyn.VerifyWeakConvergence(e, gs))
	check("strong convergence", stsyn.VerifyStrongConvergence(e, gs))
	// Silence is informational: token-circulation protocols are correctly
	// non-silent, while matching/coloring should quiesce in I.
	if v := stsyn.VerifySilent(e, gs); v.OK {
		fmt.Printf("  %-22s yes\n", "silent in I")
	} else {
		fmt.Printf("  %-22s no (a group stays enabled, e.g. at %v)\n", "silent in I", v.Witness)
	}

	if !cyclesOK && *witness {
		sccs := e.CyclicSCCs(gs, e.Not(e.Invariant()))
		if len(sccs) > 0 {
			fmt.Println("\nconcrete non-progress cycle:")
			for _, s := range stsyn.CycleWitness(e, gs, sccs[0]) {
				fmt.Printf("  %v\n", s)
			}
		}
	}

	if failures > 0 {
		fmt.Printf("\n%d properties violated\n", failures)
		os.Exit(1)
	}
	fmt.Println("\nall properties hold: the protocol is strongly self-stabilizing")
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsyn-verify:", err)
		os.Exit(1)
	}
}
