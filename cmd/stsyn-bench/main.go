// Command stsyn-bench regenerates the tables and figures of the paper's
// evaluation (Section VII): per-figure sweeps of synthesis time and BDD
// space for maximal matching (Figures 6-7), three coloring (Figures 8-9)
// and the token ring with |D|=4 (Figures 10-11), plus the local-
// correctability summary (Figure 5 / Table 1).
//
// Usage:
//
//	stsyn-bench -fig table1
//	stsyn-bench -fig 6            # matching, K=5..11 (also emits Figure 7 data)
//	stsyn-bench -fig 8 -max 40    # coloring up to the paper's 40 processes
//	stsyn-bench -fig all -max 25  # everything, capped
//	stsyn-bench -fig 8 -csv       # machine-readable output
//
// It also generates the engine perf baselines committed as
// BENCH_explicit.json and BENCH_symbolic.json (see scripts/bench.sh):
//
//	stsyn-bench -json                  # explicit before/after kernel benchmark
//	stsyn-bench -json -engine symbolic # symbolic before/after tuning benchmark
//	stsyn-bench -json -quick           # shrunk instances (CI smoke)
//
// The benchmark legs double as profiling targets (see scripts/profile.sh):
// -case selects one case study by substring, and -cpuprofile/-memprofile
// capture per-leg pprof files into a directory:
//
//	stsyn-bench -json -engine symbolic -case two-ring -cpuprofile /tmp/prof
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/experiments"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
)

// scheduleRows sweeps every schedule over the small case studies.
func scheduleRows() []experiments.ScheduleRow {
	mk := func(name string, sp *protocol.Spec, scheds [][]int) experiments.ScheduleRow {
		row, err := experiments.ScheduleEffect(name,
			func() (core.Engine, error) { return explicit.New(sp, 0) }, scheds)
		if err != nil {
			fmt.Fprintln(os.Stderr, "stsyn-bench:", err)
			os.Exit(1)
		}
		return row
	}
	return []experiments.ScheduleRow{
		mk("token-ring-4-3", protocols.TokenRing(4, 3), core.AllSchedules(4)),
		mk("matching-5", protocols.Matching(5), core.AllSchedules(5)),
		mk("coloring-5", protocols.Coloring(5), core.AllSchedules(5)),
	}
}

func main() {
	var (
		fig     = flag.String("fig", "all", "figure to regenerate: 6, 7, 8, 9, 10, 11, table1, domain, schedule, prune, scc-crossover, all")
		max     = flag.Int("max", 0, "largest process count (0 = the paper's full sweep)")
		csv     = flag.Bool("csv", false, "emit CSV instead of formatted tables")
		jsonOut = flag.Bool("json", false, "run an engine perf benchmark and emit its BENCH_*.json document")
		engine  = flag.String("engine", "explicit", "with -json: which engine benchmark to run (explicit, symbolic)")
		check   = flag.String("check", "", "with -json: compare the fresh run against this committed baseline and exit non-zero on regression")
		tol     = flag.Float64("tolerance", 3, "with -check: allowed slowdown factor against the baseline")
		caseTol = flag.String("case-tolerance", "", "with -check: per-case slowdown overrides, name=factor pairs separated by commas")
		bcase   = flag.String("case", "", "with -json: keep only benchmark cases whose name contains this substring")
		cpuDir  = flag.String("cpuprofile", "", "with -json: directory for per-leg CPU profiles (<case>.<leg>.cpu.pprof)")
		memDir  = flag.String("memprofile", "", "with -json: directory for per-leg allocation profiles (<case>.<leg>.mem.pprof)")
		quick   = flag.Bool("quick", false, "with -json or -fig scc-crossover: shrink the benchmark instances (CI smoke)")
	)
	flag.Parse()

	if *jsonOut {
		opts := experiments.BenchOpts{Quick: *quick, Case: *bcase, CPUDir: *cpuDir, MemDir: *memDir}
		tols := experiments.Tolerances{Default: *tol, PerCase: parseCaseTolerances(*caseTol)}
		var (
			doc       any
			bad, warn []string
		)
		switch *engine {
		case "explicit":
			fresh := experiments.ExplicitBenchmark(opts)
			doc = fresh
			if *check != "" {
				var base experiments.ExplicitBench
				loadBaseline(*check, &base)
				bad, warn = experiments.CheckExplicit(fresh, base, tols)
			}
		case "symbolic":
			fresh := experiments.SymbolicBenchmark(opts)
			doc = fresh
			if *check != "" {
				var base experiments.SymbolicBench
				loadBaseline(*check, &base)
				bad, warn = experiments.CheckSymbolic(fresh, base, tols)
			}
		default:
			fmt.Fprintf(os.Stderr, "stsyn-bench: unknown engine %q\n", *engine)
			os.Exit(1)
		}
		out, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "stsyn-bench:", err)
			os.Exit(1)
		}
		fmt.Println(string(out))
		for _, m := range warn {
			fmt.Fprintln(os.Stderr, "stsyn-bench: warning:", m)
		}
		if len(bad) > 0 {
			for _, m := range bad {
				fmt.Fprintln(os.Stderr, "stsyn-bench: regression:", m)
			}
			os.Exit(1)
		}
		if *check != "" {
			fmt.Fprintf(os.Stderr, "stsyn-bench: no regressions against %s\n", *check)
		}
		return
	}

	switch *fig {
	case "domain":
		// The domain-size investigation the paper omits for space.
		fmt.Print(experiments.FormatDomainRows(experiments.DomainEffect(3, []int{2, 3, 4, 5, 6, 7})))
	case "schedule":
		// The recovery-schedule investigation the paper omits for space.
		rows := scheduleRows()
		fmt.Print(experiments.FormatScheduleRows(rows))
	case "prune":
		// The symmetry-pruning effect on the committed ring case studies.
		fmt.Print(experiments.FormatPruneRows(experiments.PruneEffect()))
	case "scc-crossover":
		// The measurement behind the explicit engine's Auto SCC selection
		// (-quick keeps the small instances for smoke runs).
		fmt.Print(experiments.FormatCrossover(experiments.SCCCrossover(*quick)))
	case "table1":
		fmt.Print(experiments.FormatCorrectability(experiments.LocalCorrectability()))
	case "6", "7":
		emit("Figures 6-7: maximal matching (time and BDD space vs processes)",
			experiments.MatchingSweep(upto(matchingKs(), *max)), *csv)
	case "8", "9":
		emit("Figures 8-9: three coloring (time and BDD space vs processes)",
			experiments.ColoringSweep(upto(coloringKs(), *max)), *csv)
	case "10", "11":
		emit("Figures 10-11: token ring |D|=4 (time and BDD space vs processes)",
			experiments.TokenRingSweep(upto(tokenRingKs(), *max), 4), *csv)
	case "all":
		fmt.Print(experiments.FormatCorrectability(experiments.LocalCorrectability()))
		fmt.Println()
		emit("Figures 6-7: maximal matching",
			experiments.MatchingSweep(upto(matchingKs(), *max)), *csv)
		emit("Figures 8-9: three coloring",
			experiments.ColoringSweep(upto(coloringKs(), *max)), *csv)
		emit("Figures 10-11: token ring |D|=4",
			experiments.TokenRingSweep(upto(tokenRingKs(), *max), 4), *csv)
	default:
		fmt.Fprintf(os.Stderr, "stsyn-bench: unknown figure %q\n", *fig)
		os.Exit(1)
	}
}

// parseCaseTolerances parses the -case-tolerance value: comma-separated
// name=factor pairs (e.g. "two-ring=4,coloring-11=2.5").
func parseCaseTolerances(s string) map[string]float64 {
	if s == "" {
		return nil
	}
	out := make(map[string]float64)
	for _, pair := range strings.Split(s, ",") {
		name, val, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok {
			fmt.Fprintf(os.Stderr, "stsyn-bench: -case-tolerance entry %q is not name=factor\n", pair)
			os.Exit(1)
		}
		f, err := strconv.ParseFloat(val, 64)
		if err != nil || f <= 0 {
			fmt.Fprintf(os.Stderr, "stsyn-bench: -case-tolerance factor %q is not a positive number\n", val)
			os.Exit(1)
		}
		out[name] = f
	}
	return out
}

// loadBaseline reads a committed BENCH_*.json document into dst.
func loadBaseline(path string, dst any) {
	raw, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsyn-bench:", err)
		os.Exit(1)
	}
	if err := json.Unmarshal(raw, dst); err != nil {
		fmt.Fprintf(os.Stderr, "stsyn-bench: %s: %v\n", path, err)
		os.Exit(1)
	}
}

// The paper's sweeps: matching K=5..11, coloring K=5..40 step 5, token
// ring k=2..5 with |D|=4.
func matchingKs() []int  { return []int{5, 6, 7, 8, 9, 10, 11} }
func coloringKs() []int  { return []int{5, 10, 15, 20, 25, 30, 35, 40} }
func tokenRingKs() []int { return []int{2, 3, 4, 5} }

func upto(ks []int, max int) []int {
	if max <= 0 {
		return ks
	}
	out := ks[:0:0]
	for _, k := range ks {
		if k <= max {
			out = append(out, k)
		}
	}
	return out
}

func emit(title string, rows []experiments.Row, csv bool) {
	if !csv {
		fmt.Print(experiments.FormatRows(title, rows))
		fmt.Println()
		return
	}
	fmt.Printf("# %s\n", title)
	fmt.Println("k,states,ranking_ms,scc_ms,total_ms,avg_scc_nodes,program_nodes,scc_count,max_rank,pass,verified,peak_nodes,gc_runs,cache_hit_rate,err")
	for _, r := range rows {
		fmt.Printf("%d,%g,%.3f,%.3f,%.3f,%.1f,%d,%d,%d,%d,%v,%d,%d,%.3f,%q\n",
			r.K, r.States,
			float64(r.RankingTime)/float64(time.Millisecond),
			float64(r.SCCTime)/float64(time.Millisecond),
			float64(r.TotalTime)/float64(time.Millisecond),
			r.AvgSCCSize, r.ProgramSize, r.SCCCount, r.MaxRank, r.Pass, r.Verified,
			r.PeakNodes, r.GCRuns, r.CacheHitRate, r.Err)
	}
}
