// Command stsyn-serve runs the synthesizer as an HTTP/JSON service: a
// bounded worker pool over the synthesis engines, a content-addressed
// result cache, and Prometheus-style metrics.
//
// Usage:
//
//	stsyn-serve -addr :8080 -workers 8 -queue 128 -cache-mb 128
//
//	curl -s localhost:8080/v1/synthesize -d '{"protocol":"tokenring","k":4,"dom":3}'
//	curl -s localhost:8080/metrics
//
// Long-running jobs can go through the async API instead: POST /v1/jobs
// answers 202 with a job ID, GET /v1/jobs/{id} polls it, DELETE cancels
// it, and POST /v1/batch answers many requests in one round trip. Async
// and sync answers are byte-identical — they share the result cache.
//
// -debug-addr starts an opt-in net/http/pprof listener on a second,
// separate mux (never the serving one); bind it to localhost:
//
//	stsyn-serve -addr :8080 -debug-addr localhost:6060
//	go tool pprof http://localhost:6060/debug/pprof/profile
//
// Shutdown is graceful: on SIGINT/SIGTERM the listener stops, in-flight
// jobs drain, then the process exits.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"stsyn/internal/service"
)

func main() {
	var (
		addr    = flag.String("addr", ":8080", "listen address")
		workers = flag.Int("workers", 0, "synthesis workers (0 = GOMAXPROCS)")
		queue   = flag.Int("queue", 64, "job queue depth before 503 backpressure")
		cacheMB = flag.Int64("cache-mb", 64, "result cache budget in MiB (0 disables)")
		memoMB  = flag.Int64("memo-mb", 32, "fixpoint-memo budget for prune-enabled jobs in MiB (0 disables)")
		timeout = flag.Duration("timeout", 30*time.Second, "default per-job timeout")
		maxTO   = flag.Duration("max-timeout", 5*time.Minute, "maximum per-job timeout")
		drainTO = flag.Duration("drain-timeout", time.Minute, "graceful-shutdown drain budget")
		verbose = flag.Bool("v", true, "log one line per job")
		debug   = flag.String("debug-addr", "", "net/http/pprof listener address (e.g. localhost:6060); empty (the default) disables it")

		jobsMax     = flag.Int("jobs-max", 1024, "live async jobs before 503 backpressure")
		jobTTL      = flag.Duration("job-ttl", 10*time.Minute, "how long finished async jobs stay pollable")
		tenantRate  = flag.Float64("tenant-rate", 50, "per-tenant admission rate in requests/s (0 = default, negative disables)")
		tenantBurst = flag.Int("tenant-burst", 0, "per-tenant admission burst (0 = 2x rate)")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "stsyn-serve ", log.LstdFlags|log.Lmicroseconds)
	cfg := service.Config{
		Workers:        *workers,
		QueueDepth:     *queue,
		DefaultTimeout: *timeout,
		MaxTimeout:     *maxTO,
		CacheBytes:     *cacheMB << 20,
		MemoBytes:      *memoMB << 20,
		JobsMax:        *jobsMax,
		JobTTL:         *jobTTL,
		TenantRate:     *tenantRate,
		TenantBurst:    *tenantBurst,
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = -1 // 0 MiB means "disable", not "default"
	}
	if cfg.MemoBytes == 0 {
		cfg.MemoBytes = -1
	}
	if *verbose {
		cfg.Logf = logger.Printf
	}
	svc := service.New(cfg)

	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           svc.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	// The optional pprof listener gets its own mux on its own address —
	// the profiling handlers are never mounted on the serving mux, so an
	// internet-facing -addr cannot expose them. Bind it to localhost (or a
	// private interface) and point `go tool pprof` at
	// http://<debug-addr>/debug/pprof/profile.
	var debugSrv *http.Server
	if *debug != "" {
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{
			Addr:              *debug,
			Handler:           dmux,
			ReadHeaderTimeout: 10 * time.Second,
		}
		go func() {
			if err := debugSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("debug listener failed: %v", err)
			}
		}()
		logger.Printf("pprof debug listener on %s", *debug)
	}

	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	logger.Printf("listening on %s (workers=%d queue=%d cache=%dMiB)",
		*addr, cfg.Workers, *queue, *cacheMB)

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	select {
	case sig := <-sigc:
		logger.Printf("received %v, draining", sig)
	case err := <-errc:
		logger.Printf("listener failed: %v", err)
		os.Exit(1)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainTO)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Close() // diagnostics only: no draining owed
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	if err := svc.Shutdown(ctx); err != nil {
		fmt.Fprintf(os.Stderr, "stsyn-serve: drain incomplete: %v\n", err)
		os.Exit(1)
	}
	logger.Printf("bye")
}
