// Command stsyn-dist runs a distributed schedule search: a coordinator
// that shards the search space across a fleet of stsyn-serve workers and
// prints the winning worker response — byte-identical to what a
// single-node search over the same space would pick.
//
// Usage:
//
//	stsyn-serve -addr :8081 & stsyn-serve -addr :8082 &
//	stsyn-dist -workers http://localhost:8081,http://localhost:8082 \
//	    -protocol coloring -k 5 -schedules sample:64:1
//
// With -journal the job is durable: shard completions are logged to an
// append-only WAL and a restarted coordinator resumes where it left off,
// re-running nothing that already finished. With -addr the coordinator
// serves its own /metrics and /healthz while the job runs.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"stsyn/internal/dist"
	"stsyn/internal/service"
)

func main() {
	var (
		workers   = flag.String("workers", "http://localhost:8080", "comma-separated stsyn-serve base URLs")
		protoName = flag.String("protocol", "", "built-in protocol name (see stsyn-serve /v1/protocols)")
		k         = flag.Int("k", 4, "number of processes for the built-in protocol")
		dom       = flag.Int("dom", 3, "domain size for the built-in protocol")
		specPath  = flag.String("spec", "", "inline .stsyn specification file (mutually exclusive with -protocol)")
		engine    = flag.String("engine", "", "worker engine: auto (default), explicit or symbolic")
		jobTO     = flag.Duration("timeout", 0, "per-schedule synthesis timeout sent to workers (0 = worker default)")
		schedules = flag.String("schedules", "rotations", "search space: rotations, all, or sample:N[:SEED]")
		pruneOn   = flag.Bool("prune", false, "quotient the search by the spec's symmetry group before sharding; workers memoize shared sub-results (result is unchanged)")

		shardSize    = flag.Int("shard-size", 4, "consecutive schedules per shard")
		concurrency  = flag.Int("concurrency", 0, "shards in flight (0 = worker count)")
		shardRetries = flag.Int("shard-retries", 2, "requeues per shard after transport failures")
		journal      = flag.String("journal", "", "WAL path; set to make the job durable and resumable")

		reqTO      = flag.Duration("request-timeout", 2*time.Minute, "one HTTP attempt's budget")
		hedgeAfter = flag.Duration("hedge-after", 0, "hedge a straggler request after this long (0 = off)")
		failThresh = flag.Int("failure-threshold", 0, "consecutive failures before a worker cools down (0 = default 3)")
		cooldown   = flag.Duration("cooldown", 0, "how long a failing worker sits out of rotation (0 = default 5s)")
		tenant     = flag.String("tenant", "stsyn-dist", "tenant name sent to workers for per-tenant admission (empty = anonymous)")
		addr       = flag.String("addr", "", "serve coordinator /metrics and /healthz here (empty = off)")
		verbose    = flag.Bool("v", true, "log shard and retry events")
	)
	flag.Parse()

	logger := log.New(os.Stderr, "stsyn-dist ", log.LstdFlags|log.Lmicroseconds)
	logf := func(string, ...interface{}) {}
	if *verbose {
		logf = logger.Printf
	}

	source, err := parseSource(*schedules)
	if err != nil {
		logger.Fatal(err)
	}
	req := service.Request{
		Protocol:  *protoName,
		K:         *k,
		Dom:       *dom,
		Engine:    *engine,
		TimeoutMS: int(*jobTO / time.Millisecond),
		Prune:     *pruneOn,
	}
	if *specPath != "" {
		spec, err := os.ReadFile(*specPath)
		if err != nil {
			logger.Fatal(err)
		}
		req.Spec = string(spec)
		req.Protocol, req.K, req.Dom = "", 0, 0
	}

	client, err := dist.NewClient(dist.ClientConfig{
		Workers:          splitWorkers(*workers),
		RequestTimeout:   *reqTO,
		HedgeAfter:       *hedgeAfter,
		FailureThreshold: *failThresh,
		Cooldown:         *cooldown,
		Tenant:           *tenant,
		Logf:             logf,
	})
	if err != nil {
		logger.Fatal(err)
	}
	coord, err := dist.NewCoordinator(dist.Config{
		Client:       client,
		ShardSize:    *shardSize,
		Concurrency:  *concurrency,
		ShardRetries: *shardRetries,
		JournalPath:  *journal,
		Logf:         logf,
	})
	if err != nil {
		logger.Fatal(err)
	}

	if *addr != "" {
		srv := &http.Server{Addr: *addr, Handler: coord.Handler(), ReadHeaderTimeout: 10 * time.Second}
		go func() {
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				logger.Printf("metrics listener: %v", err)
			}
		}()
		defer srv.Close()
		logger.Printf("metrics on %s", *addr)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	start := time.Now()
	res, err := coord.Run(ctx, dist.Job{Request: req, Source: source})
	if err != nil {
		logger.Fatal(err)
	}
	logger.Printf("winner at index %d schedule %v in %s (tried %d/%d schedules, %d pruned, %d requests, %d shards done, %d resumed, %d requeues)",
		res.WinIndex, res.WinSchedule, time.Since(start).Round(time.Millisecond),
		res.Stats.SchedulesTried, res.Stats.TotalSchedules, res.Stats.SchedulesPruned,
		res.Stats.Requests, res.Stats.ShardsCompleted, res.Stats.ShardsResumed, res.Stats.ShardRequeues)

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res.Winner); err != nil {
		logger.Fatal(err)
	}
}

// parseSource turns the -schedules flag into a ScheduleSource:
// "rotations", "all", or "sample:N[:SEED]".
func parseSource(s string) (dist.ScheduleSource, error) {
	switch {
	case s == "rotations" || s == "":
		return dist.ScheduleSource{Kind: "rotations"}, nil
	case s == "all":
		return dist.ScheduleSource{Kind: "all"}, nil
	case strings.HasPrefix(s, "sample:"):
		parts := strings.Split(s, ":")
		if len(parts) < 2 || len(parts) > 3 {
			return dist.ScheduleSource{}, fmt.Errorf("stsyn-dist: -schedules sample wants sample:N[:SEED], got %q", s)
		}
		n, err := strconv.Atoi(parts[1])
		if err != nil || n <= 0 {
			return dist.ScheduleSource{}, fmt.Errorf("stsyn-dist: bad sample size in %q", s)
		}
		src := dist.ScheduleSource{Kind: "sample", N: n}
		if len(parts) == 3 {
			seed, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return dist.ScheduleSource{}, fmt.Errorf("stsyn-dist: bad sample seed in %q", s)
			}
			src.Seed = seed
		}
		return src, nil
	default:
		return dist.ScheduleSource{}, fmt.Errorf("stsyn-dist: unknown -schedules %q (want rotations, all, or sample:N[:SEED])", s)
	}
}

func splitWorkers(s string) []string {
	var out []string
	for _, w := range strings.Split(s, ",") {
		if w = strings.TrimSpace(strings.TrimSuffix(w, "/")); w != "" {
			out = append(out, w)
		}
	}
	return out
}
