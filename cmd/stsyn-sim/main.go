// Command stsyn-sim batters a protocol with transient faults and measures
// convergence operationally, in both execution models:
//
//   - shared memory: uniformly random start states, random scheduler;
//   - message passing: the cached-copy refinement with corrupted caches and
//     junk in-flight messages (see internal/channel).
//
// By default it first synthesizes the stabilizing version (like cmd/stsyn)
// and simulates that; -raw simulates the input protocol as-is.
//
// Usage:
//
//	stsyn-sim -p tokenring -k 5 -dom 5 -trials 5000
//	stsyn-sim -p dijkstra -raw -mp
//	stsyn-sim -spec ring.stsyn -trials 1000
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"stsyn"
	"stsyn/internal/channel"
	"stsyn/internal/cli"
	"stsyn/internal/gcl"
	"stsyn/internal/protocol"
)

func main() {
	var (
		proto    = flag.String("p", "", "built-in protocol: "+cli.Names)
		specFile = flag.String("spec", "", "read the protocol from a .stsyn file instead")
		k        = flag.Int("k", 4, "number of processes (parametric built-ins)")
		dom      = flag.Int("dom", 3, "variable domain size (token ring)")
		trials   = flag.Int("trials", 2000, "number of random-fault trials")
		seed     = flag.Int64("seed", 1, "RNG seed")
		raw      = flag.Bool("raw", false, "simulate the input protocol without synthesizing first")
		mp       = flag.Bool("mp", false, "also run the message-passing refinement")
		maxSteps = flag.Int("maxsteps", 0, "step bound per trial (0 = automatic)")
		resol    = flag.String("resolution", "auto", "cycle resolution for synthesis: auto, batch or incremental")
	)
	flag.Parse()

	var sp *protocol.Spec
	var err error
	switch {
	case *specFile != "":
		var data []byte
		if data, err = os.ReadFile(*specFile); err == nil {
			sp, err = gcl.Parse(*specFile, string(data))
		}
	case *proto != "":
		sp, err = cli.BuildSpec(*proto, *k, *dom)
	default:
		err = fmt.Errorf("need -p <name> or -spec <file> (built-ins: %s)", cli.Names)
	}
	fatalIf(err)

	factory := func() (stsyn.Engine, error) { return stsyn.NewEngine(sp) }
	eng, err := factory()
	fatalIf(err)

	groups := eng.ActionGroups()
	if !*raw {
		opts := stsyn.Options{}
		var res *stsyn.Result
		switch *resol {
		case "auto":
			res, eng, err = stsyn.AddConvergenceAuto(factory, opts)
		case "incremental":
			opts.CycleResolution = stsyn.IncrementalResolution
			res, err = stsyn.AddConvergence(eng, opts)
		case "batch":
			res, err = stsyn.AddConvergence(eng, opts)
		default:
			err = fmt.Errorf("unknown resolution %q", *resol)
		}
		fatalIf(err)
		groups = res.Protocol
		fmt.Printf("synthesized %s: %d groups (%d added), pass %d\n",
			sp.Name, len(groups), len(res.Added), res.PassCompleted)
	} else {
		fmt.Printf("simulating %s as-is: %d groups\n", sp.Name, len(groups))
	}

	sim := stsyn.NewSimulator(eng, groups)
	stats := sim.Estimate(*trials, stsyn.SimConfig{Seed: *seed, MaxSteps: *maxSteps})
	fmt.Printf("shared memory:   %s\n", stats)

	if *mp {
		pgs := stsyn.ProtocolGroups(groups)
		sys, err := channel.New(sp, pgs)
		if err != nil {
			fmt.Printf("message passing: skipped (%v)\n", err)
			return
		}
		rng := rand.New(rand.NewSource(*seed))
		bound := *maxSteps
		if bound == 0 {
			bound = 50000
		}
		converged, steps, maxSeen := 0, 0, 0
		for i := 0; i < *trials; i++ {
			sys.Randomize(rng, 2*len(sp.Procs))
			out := sys.Run(rng, bound)
			if out.Converged {
				converged++
				steps += out.Steps
				if out.Steps > maxSeen {
					maxSeen = out.Steps
				}
			}
		}
		mean := 0.0
		if converged > 0 {
			mean = float64(steps) / float64(converged)
		}
		fmt.Printf("message passing: %d/%d converged (%.1f%%), mean %.1f ticks, max %d\n",
			converged, *trials, 100*float64(converged)/float64(*trials), mean, maxSeen)
	}
}

func fatalIf(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "stsyn-sim:", err)
		os.Exit(1)
	}
}
