// Command stsyn-vet runs the repository's custom static analyzers: the
// project-specific correctness invariants (Keep/Release protection of BDD
// refs, determinism of the synthesis core, context propagation, dependency
// direction, panic-freedom of the serving path) as a gating check rather
// than reviewer folklore.
//
// Usage:
//
//	stsyn-vet [-json] [-list] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings are
// printed as "file:line:col: analyzer: message" (or a JSON array with
// -json) and the exit status is 1 when any finding survives the
// //lint:ignore directives, 2 on load errors, 0 when clean.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"stsyn/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stsyn-vet [-json] [-list] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsyn-vet: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if findings == nil {
			findings = []lint.Finding{}
		}
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintf(os.Stderr, "stsyn-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

func run(patterns []string) ([]lint.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	r, err := lint.NewRunner(cwd)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var findings []lint.Finding
	for _, pattern := range patterns {
		dirs, err := r.PackageDirs(pattern)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			if seen[dir] {
				continue
			}
			seen[dir] = true
			pkg, err := r.LoadPackage(dir)
			if err != nil {
				return nil, err
			}
			findings = append(findings, r.Check(pkg, lint.All)...)
		}
	}
	return findings, nil
}
