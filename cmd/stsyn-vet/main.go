// Command stsyn-vet runs the repository's custom static analyzers: the
// project-specific correctness invariants (flow-sensitive Keep/Release
// protection of BDD refs, goroutine join discipline, lock/blocking
// separation, determinism of the synthesis core, context propagation,
// dependency direction, panic-freedom of the serving path, metric naming,
// and the pinned public-API surface) as a gating check rather than
// reviewer folklore.
//
// Usage:
//
//	stsyn-vet [-json] [-list] [-write-api] [packages]
//
// Packages default to ./... relative to the enclosing module. Findings are
// printed as "file:line:col: analyzer: message" (or a JSON array with
// -json) and the exit status is 1 when any finding survives the
// //lint:ignore directives, 2 on load errors, 0 when clean.
//
// -write-api regenerates the committed api/ goldens that pin the exported
// surface of the published pkg/ packages; the printed surface hashes must
// be recorded in CHANGELOG.md for the apistab analyzer to pass.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"stsyn/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and exit")
	writeAPI := flag.Bool("write-api", false, "regenerate the api/ surface goldens and exit")
	flag.Usage = func() {
		fmt.Fprintf(flag.CommandLine.Output(), "usage: stsyn-vet [-json] [-list] [-write-api] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range lint.All {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *writeAPI {
		if err := writeGoldens(); err != nil {
			fmt.Fprintf(os.Stderr, "stsyn-vet: %v\n", err)
			os.Exit(2)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := run(patterns)
	if err != nil {
		fmt.Fprintf(os.Stderr, "stsyn-vet: %v\n", err)
	}
	if *jsonOut {
		if err := lint.EncodeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "stsyn-vet: %v\n", err)
			os.Exit(2)
		}
	} else {
		for _, f := range findings {
			fmt.Println(f)
		}
	}
	os.Exit(lint.ExitCode(findings, err))
}

func run(patterns []string) ([]lint.Finding, error) {
	cwd, err := os.Getwd()
	if err != nil {
		return nil, err
	}
	r, err := lint.NewRunner(cwd)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var findings []lint.Finding
	for _, pattern := range patterns {
		dirs, err := r.PackageDirs(pattern)
		if err != nil {
			return nil, err
		}
		for _, dir := range dirs {
			if seen[dir] {
				continue
			}
			seen[dir] = true
			pkg, err := r.LoadPackage(dir)
			if err != nil {
				return nil, err
			}
			findings = append(findings, r.Check(pkg, lint.All)...)
		}
	}
	return findings, nil
}

// writeGoldens regenerates the api/ goldens for every package in the
// apistab scope and prints each surface hash for the CHANGELOG.md entry.
func writeGoldens() error {
	cwd, err := os.Getwd()
	if err != nil {
		return err
	}
	r, err := lint.NewRunner(cwd)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(r.APIDir, 0o755); err != nil {
		return err
	}
	for _, rel := range lint.APIScope {
		pkg, err := r.LoadPackage(filepath.Join(r.Root, filepath.FromSlash(rel)))
		if err != nil {
			return err
		}
		surface := lint.APISurface(pkg.Pkg)
		name := lint.APIGoldenName(rel)
		content := lint.APIGoldenContent(pkg.PkgPath, surface)
		if err := os.WriteFile(filepath.Join(r.APIDir, name), []byte(content), 0o644); err != nil {
			return err
		}
		fmt.Printf("api/%s %s\n", name, lint.APIHash(surface))
	}
	return nil
}
