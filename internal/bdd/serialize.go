package bdd

// Manager-independent BDD snapshots. Serialize flattens a (reduced,
// ordered) DAG into plain words and Deserialize rebuilds it node by node
// in any manager with the same variable count and order — the primitive
// behind the symbolic engine's core.SetExporter, whose snapshots outlive
// the engine that took them.
//
// Format: words[0] is the interior-node count n, words[1] the root code,
// and words[2+k] packs interior node k as level<<48 | lo<<24 | hi. Child
// codes are 0 (False), 1 (True), or j+2 for interior node j with j < k —
// children strictly precede parents, so decoding is a single forward pass
// and malformed input can never form a cycle.

const (
	serLevelShift = 48
	serLoShift    = 24
	serFieldMask  = 1<<24 - 1
)

// Serialize encodes the DAG rooted at f. Levels must fit 16 bits and node
// codes 24 bits — far beyond any exported synthesis set; exceeding them
// panics rather than truncating silently.
func (m *Manager) Serialize(f Ref) []uint64 {
	if m.nvars > 1<<16 {
		panic("bdd: Serialize: too many variables for the snapshot format")
	}
	words := []uint64{0, 0}
	code := map[Ref]uint64{False: 0, True: 1}
	var walk func(Ref) uint64
	walk = func(g Ref) uint64 {
		if c, ok := code[g]; ok {
			return c
		}
		n := m.nodes[g]
		lo := walk(n.lo)
		hi := walk(n.hi)
		c := uint64(len(words) - 2 + 2)
		if c > serFieldMask {
			panic("bdd: Serialize: set too large for the snapshot format")
		}
		words = append(words, uint64(n.level)<<serLevelShift|lo<<serLoShift|hi)
		code[g] = c
		return c
	}
	words[1] = walk(f)
	words[0] = uint64(len(words) - 2)
	return words
}

// Deserialize rebuilds a serialized DAG in this manager. ok=false on any
// malformed input: wrong length, out-of-range levels or child codes,
// unreduced nodes (lo == hi), or level inversions — a snapshot from a
// manager with a different variable order fails here rather than decoding
// into the wrong function.
func (m *Manager) Deserialize(words []uint64) (Ref, bool) {
	if len(words) < 2 {
		return 0, false
	}
	n := words[0]
	if uint64(len(words)) != 2+n || n > serFieldMask {
		return 0, false
	}
	refs := make([]Ref, 2+n)
	levels := make([]int32, 2+n)
	refs[0], refs[1] = False, True
	levels[0], levels[1] = m.nvars, m.nvars
	for k := uint64(0); k < n; k++ {
		w := words[2+k]
		level := int32(w >> serLevelShift)
		lo := w >> serLoShift & serFieldMask
		hi := w & serFieldMask
		if level < 0 || level >= m.nvars || lo >= 2+k || hi >= 2+k || lo == hi {
			return 0, false
		}
		if levels[lo] <= level || levels[hi] <= level {
			return 0, false
		}
		refs[2+k] = m.mk(level, refs[lo], refs[hi])
		levels[2+k] = level
	}
	root := words[1]
	if root >= 2+n {
		return 0, false
	}
	return refs[root], true
}
