package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// brute compares a BDD against a reference boolean function by enumerating
// all assignments over nvars variables.
func brute(t *testing.T, m *Manager, f Ref, ref func([]bool) bool) {
	t.Helper()
	n := m.NumVars()
	a := make([]bool, n)
	for bits := 0; bits < 1<<n; bits++ {
		for i := 0; i < n; i++ {
			a[i] = bits>>i&1 == 1
		}
		if got, want := m.Eval(f, a), ref(a); got != want {
			t.Fatalf("assignment %v: got %v, want %v", a, got, want)
		}
	}
}

func TestTerminalsAndLiterals(t *testing.T) {
	m := New(3)
	if m.Eval(True, []bool{false, false, false}) != true {
		t.Error("True must evaluate to true")
	}
	if m.Eval(False, []bool{true, true, true}) != false {
		t.Error("False must evaluate to false")
	}
	brute(t, m, m.Var(1), func(a []bool) bool { return a[1] })
	brute(t, m, m.NVar(2), func(a []bool) bool { return !a[2] })
}

func TestConnectives(t *testing.T) {
	m := New(4)
	x, y, z := m.Var(0), m.Var(1), m.Var(2)
	brute(t, m, m.And(x, y), func(a []bool) bool { return a[0] && a[1] })
	brute(t, m, m.Or(x, z), func(a []bool) bool { return a[0] || a[2] })
	brute(t, m, m.Xor(y, z), func(a []bool) bool { return a[1] != a[2] })
	brute(t, m, m.Not(x), func(a []bool) bool { return !a[0] })
	brute(t, m, m.Diff(x, y), func(a []bool) bool { return a[0] && !a[1] })
	brute(t, m, m.Imp(x, y), func(a []bool) bool { return !a[0] || a[1] })
	brute(t, m, m.ITE(x, y, z), func(a []bool) bool {
		if a[0] {
			return a[1]
		}
		return a[2]
	})
	brute(t, m, m.AndN(x, y, z), func(a []bool) bool { return a[0] && a[1] && a[2] })
	brute(t, m, m.OrN(x, y, z), func(a []bool) bool { return a[0] || a[1] || a[2] })
}

func TestHashConsingCanonicity(t *testing.T) {
	m := New(4)
	x, y := m.Var(0), m.Var(1)
	a := m.Or(m.And(x, y), m.And(x, m.Not(y))) // = x
	if a != x {
		t.Errorf("canonicity violated: x·y ∨ x·¬y != x")
	}
	b := m.Not(m.Not(a))
	if b != a {
		t.Error("double negation not canonical")
	}
	if m.Xor(a, a) != False {
		t.Error("x ⊕ x != false")
	}
}

// randBDD builds a random function together with its reference semantics.
func randBDD(m *Manager, rng *rand.Rand, depth int) (Ref, func([]bool) bool) {
	if depth == 0 || rng.Intn(4) == 0 {
		v := rng.Intn(m.NumVars())
		if rng.Intn(2) == 0 {
			return m.Var(v), func(a []bool) bool { return a[v] }
		}
		return m.NVar(v), func(a []bool) bool { return !a[v] }
	}
	f1, r1 := randBDD(m, rng, depth-1)
	f2, r2 := randBDD(m, rng, depth-1)
	switch rng.Intn(4) {
	case 0:
		return m.And(f1, f2), func(a []bool) bool { return r1(a) && r2(a) }
	case 1:
		return m.Or(f1, f2), func(a []bool) bool { return r1(a) || r2(a) }
	case 2:
		return m.Xor(f1, f2), func(a []bool) bool { return r1(a) != r2(a) }
	default:
		return m.Not(f1), func(a []bool) bool { return !r1(a) }
	}
}

func TestRandomOpsAgainstSemantics(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(42))
	for iter := 0; iter < 200; iter++ {
		f, ref := randBDD(m, rng, 4)
		brute(t, m, f, ref)
	}
}

func TestExists(t *testing.T) {
	m := New(5)
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 100; iter++ {
		f, ref := randBDD(m, rng, 4)
		v := rng.Intn(5)
		g := m.Exists(f, m.Cube([]int{v}))
		brute(t, m, g, func(a []bool) bool {
			b := append([]bool(nil), a...)
			b[v] = false
			if ref(b) {
				return true
			}
			b[v] = true
			return ref(b)
		})
	}
}

func TestExistsMultiVar(t *testing.T) {
	m := New(5)
	rng := rand.New(rand.NewSource(11))
	for iter := 0; iter < 50; iter++ {
		f, ref := randBDD(m, rng, 4)
		g := m.Exists(f, m.Cube([]int{1, 3}))
		brute(t, m, g, func(a []bool) bool {
			b := append([]bool(nil), a...)
			for _, v1 := range []bool{false, true} {
				for _, v3 := range []bool{false, true} {
					b[1], b[3] = v1, v3
					if ref(b) {
						return true
					}
				}
			}
			return false
		})
	}
}

func TestAndExists(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(17))
	for iter := 0; iter < 200; iter++ {
		f, _ := randBDD(m, rng, 4)
		g, _ := randBDD(m, rng, 4)
		var vars []int
		for v := 0; v < 6; v++ {
			if rng.Intn(3) == 0 {
				vars = append(vars, v)
			}
		}
		cube := m.Cube(vars)
		if got, want := m.AndExists(f, g, cube), m.Exists(m.And(f, g), cube); got != want {
			t.Fatalf("AndExists disagrees with ∃.(f∧g) for vars %v", vars)
		}
	}
	// Edge cases.
	x := m.Var(0)
	if m.AndExists(x, False, m.Cube([]int{0})) != False {
		t.Error("AndExists with false operand")
	}
	if m.AndExists(x, True, m.Cube([]int{0})) != True {
		t.Error("∃x. x should be true")
	}
	if m.AndExists(x, m.Var(1), True) != m.And(x, m.Var(1)) {
		t.Error("empty cube should reduce to And")
	}
}

func TestRestrict(t *testing.T) {
	m := New(5)
	rng := rand.New(rand.NewSource(13))
	for iter := 0; iter < 100; iter++ {
		f, ref := randBDD(m, rng, 4)
		lits := []Literal{{Var: 0, Val: true}, {Var: 3, Val: false}}
		cube := m.LiteralCube(lits)
		g := m.Restrict(f, cube)
		brute(t, m, g, func(a []bool) bool {
			b := append([]bool(nil), a...)
			b[0], b[3] = true, false
			return ref(b)
		})
		// Restrict must agree with ∃vars(c). (f ∧ c).
		h := m.Exists(m.And(f, cube), m.Cube([]int{0, 3}))
		if g != h {
			t.Fatalf("Restrict disagrees with quantified conjunction")
		}
	}
}

func TestSatCount(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(21))
	for iter := 0; iter < 100; iter++ {
		f, ref := randBDD(m, rng, 4)
		want := 0
		a := make([]bool, 6)
		for bits := 0; bits < 64; bits++ {
			for i := 0; i < 6; i++ {
				a[i] = bits>>i&1 == 1
			}
			if ref(a) {
				want++
			}
		}
		if got := m.SatCount(f); got != float64(want) {
			t.Fatalf("SatCount = %v, want %d", got, want)
		}
	}
	if m.SatCount(True) != 64 {
		t.Errorf("SatCount(True) = %v, want 64", m.SatCount(True))
	}
	if m.SatCount(False) != 0 {
		t.Errorf("SatCount(False) = %v, want 0", m.SatCount(False))
	}
}

func TestPickCube(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(33))
	for iter := 0; iter < 200; iter++ {
		f, _ := randBDD(m, rng, 4)
		cube := m.PickCube(f)
		if f == False {
			if cube != nil {
				t.Fatal("PickCube(False) must be nil")
			}
			continue
		}
		a := make([]bool, 6)
		for i, c := range cube {
			a[i] = c == 1
		}
		if !m.Eval(f, a) {
			t.Fatalf("PickCube produced non-satisfying assignment %v", cube)
		}
	}
	if m.PickCube(False) != nil {
		t.Error("PickCube(False) must be nil")
	}
}

func TestDagSize(t *testing.T) {
	m := New(4)
	if m.DagSize(True) != 1 || m.DagSize(False) != 1 {
		t.Error("terminal DagSize must be 1")
	}
	x := m.Var(0)
	if m.DagSize(x) != 3 { // node + two terminals
		t.Errorf("DagSize(x) = %d, want 3", m.DagSize(x))
	}
	f := m.And(m.Var(0), m.Var(1))
	if m.DagSize(f) != 4 {
		t.Errorf("DagSize(x∧y) = %d, want 4", m.DagSize(f))
	}
	// x's literal node is distinct from f's root (different hi child), so the
	// shared DAG has 5 nodes: two roots, the y node, and two terminals.
	if s := m.SharedDagSize([]Ref{x, f}); s != 5 {
		t.Errorf("SharedDagSize = %d, want 5", s)
	}
	// Sharing is real: the union is smaller than the sum of the parts.
	if s := m.SharedDagSize([]Ref{f, f}); s != m.DagSize(f) {
		t.Errorf("SharedDagSize of duplicate roots = %d, want %d", s, m.DagSize(f))
	}
}

func TestPermute(t *testing.T) {
	m := New(4)
	rng := rand.New(rand.NewSource(55))
	perm := []int{2, 3, 0, 1}
	for iter := 0; iter < 100; iter++ {
		f, ref := randBDD(m, rng, 3)
		g := m.Permute(f, perm)
		brute(t, m, g, func(a []bool) bool {
			// g(a) = f(b) where b[v] = a[perm[v]].
			b := make([]bool, 4)
			for v := range b {
				b[v] = a[perm[v]]
			}
			return ref(b)
		})
	}
}

func TestSupport(t *testing.T) {
	m := New(5)
	f := m.And(m.Var(1), m.Or(m.Var(3), m.NVar(4)))
	got := m.Support(f)
	want := []int{1, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("Support = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Support = %v, want %v", got, want)
		}
	}
	if len(m.Support(True)) != 0 {
		t.Error("Support(True) must be empty")
	}
}

func TestUniqueTableGrowth(t *testing.T) {
	// Build a function big enough to force several rehashes.
	m := New(24)
	f := False
	for i := 0; i+1 < 24; i += 2 {
		f = m.Or(f, m.And(m.Var(i), m.Var(i+1)))
	}
	if m.Size() < 100 {
		t.Fatalf("expected a non-trivial node store, got %d nodes", m.Size())
	}
	// Spot-check correctness after growth.
	a := make([]bool, 24)
	a[4], a[5] = true, true
	if !m.Eval(f, a) {
		t.Error("evaluation wrong after table growth")
	}
	if m.Eval(f, make([]bool, 24)) {
		t.Error("all-false assignment should not satisfy f")
	}
}

// Property: ITE(f,g,h) == (f∧g) ∨ (¬f∧h) node-for-node (canonicity).
func TestITECanonicalProperty(t *testing.T) {
	m := New(5)
	rng := rand.New(rand.NewSource(77))
	for iter := 0; iter < 300; iter++ {
		f, _ := randBDD(m, rng, 3)
		g, _ := randBDD(m, rng, 3)
		h, _ := randBDD(m, rng, 3)
		lhs := m.ITE(f, g, h)
		rhs := m.Or(m.And(f, g), m.And(m.Not(f), h))
		if lhs != rhs {
			t.Fatalf("ITE not canonical")
		}
	}
}

// Property via testing/quick: evaluation of a conjunction of literals
// matches the LiteralCube construction for arbitrary assignments.
func TestLiteralCubeProperty(t *testing.T) {
	m := New(8)
	f := func(mask, vals, probe uint8) bool {
		var lits []Literal
		for i := 0; i < 8; i++ {
			if mask>>i&1 == 1 {
				lits = append(lits, Literal{Var: i, Val: vals>>i&1 == 1})
			}
		}
		cube := m.LiteralCube(lits)
		a := make([]bool, 8)
		for i := 0; i < 8; i++ {
			a[i] = probe>>i&1 == 1
		}
		want := true
		for _, l := range lits {
			if a[l.Var] != l.Val {
				want = false
			}
		}
		return m.Eval(cube, a) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestDeMorganProperty(t *testing.T) {
	m := New(6)
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 300; iter++ {
		f, _ := randBDD(m, rng, 4)
		g, _ := randBDD(m, rng, 4)
		if m.Not(m.And(f, g)) != m.Or(m.Not(f), m.Not(g)) {
			t.Fatal("¬(f∧g) != ¬f∨¬g")
		}
		if m.Not(m.Or(f, g)) != m.And(m.Not(f), m.Not(g)) {
			t.Fatal("¬(f∨g) != ¬f∧¬g")
		}
	}
}
