package bdd

import (
	"math/rand"
	"testing"
)

// TestSerializeRoundTrip checks random functions survive a round trip into
// the same manager and into a fresh one (hash-consing makes equality a
// pointer check in the first case; the second compares by evaluation).
func TestSerializeRoundTrip(t *testing.T) {
	m := New(10)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		f := randomFunc(m, rng, 10, 4)
		words := m.Serialize(f)
		g, ok := m.Deserialize(words)
		if !ok {
			t.Fatalf("round trip rejected its own output (iteration %d)", i)
		}
		if g != f {
			t.Fatalf("round trip changed the function (iteration %d)", i)
		}

		m2 := New(10)
		g2, ok := m2.Deserialize(words)
		if !ok {
			t.Fatal("fresh manager rejected a valid snapshot")
		}
		assignment := make([]bool, 20)
		for trial := 0; trial < 64; trial++ {
			for b := range assignment {
				assignment[b] = rng.Intn(2) == 1
			}
			if m.Eval(f, assignment) != m2.Eval(g2, assignment) {
				t.Fatal("cross-manager round trip changed the function")
			}
		}
	}
}

func TestSerializeTerminals(t *testing.T) {
	m := New(4)
	for _, f := range []Ref{False, True} {
		words := m.Serialize(f)
		if words[0] != 0 {
			t.Fatalf("terminal snapshot has %d interior nodes", words[0])
		}
		g, ok := m.Deserialize(words)
		if !ok || g != f {
			t.Fatalf("terminal round trip: got %v ok=%v", g, ok)
		}
	}
}

// TestDeserializeRejectsMalformed feeds corrupted snapshots: every
// mutation must fail closed rather than decode into a wrong function.
func TestDeserializeRejectsMalformed(t *testing.T) {
	m := New(6)
	f := m.Xor(m.Var(0), m.And(m.Var(2), m.Var(4)))
	words := m.Serialize(f)

	bad := [][]uint64{
		{},     // empty
		{0},    // truncated header
		{5, 0}, // count without nodes
		append(append([]uint64(nil), words...), 0), // trailing word
	}
	// Root code out of range.
	w := append([]uint64(nil), words...)
	w[1] = w[0] + 2
	bad = append(bad, w)
	// Level out of range.
	w = append([]uint64(nil), words...)
	w[2] |= uint64(m.NumVars()) << serLevelShift
	bad = append(bad, w)
	// Forward (not-yet-decoded) child reference.
	w = append([]uint64(nil), words...)
	w[2] = w[2]&^uint64(serFieldMask) | (2 + w[0] - 1)
	bad = append(bad, w)
	// Unreduced node: lo == hi.
	w = append([]uint64(nil), words...)
	w[2] = w[2] &^ (uint64(serFieldMask) << serLoShift) // lo := hi's value? set lo=0
	w[2] = w[2] &^ uint64(serFieldMask)                 // hi := 0 too
	bad = append(bad, w)

	for i, words := range bad {
		if _, ok := m.Deserialize(words); ok {
			t.Fatalf("malformed snapshot %d accepted", i)
		}
	}

	// A level inversion: serialize in a 2-var manager, decode the parent
	// level above its child by swapping the level fields.
	m2 := New(2)
	g := m2.And(m2.Var(0), m2.Var(1))
	w = m2.Serialize(g)
	if w[0] != 2 {
		t.Fatalf("expected 2 interior nodes, got %d", w[0])
	}
	w[2] &^= uint64(1) << serLevelShift // child (decoded first) now at level 0
	w[3] |= 1 << serLevelShift          // parent below its child
	if _, ok := m2.Deserialize(w); ok {
		t.Fatal("level-inverted snapshot accepted")
	}
}
