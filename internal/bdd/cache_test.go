package bdd

import (
	"math/rand"
	"testing"
)

// auditCacheStats checks the cross-counter invariants of the operation
// cache that every workload must preserve:
//
//   - evictions happen only on misses (a hit never displaces anything);
//   - below the growth cap, conflict pressure since the last growth never
//     exceeds one eviction per entry (the adaptive-growth trigger);
//   - the per-op breakdown partitions the totals exactly;
//   - the cache size is a power of two and within [256, max].
func auditCacheStats(t *testing.T, m *Manager) {
	t.Helper()
	s := m.Stats()
	if s.CacheEvictions > s.CacheMisses {
		t.Fatalf("evictions %d > misses %d", s.CacheEvictions, s.CacheMisses)
	}
	if len(m.cache) < m.cacheMax && m.cacheEvicts-m.growEvicts > uint64(len(m.cache)) {
		t.Fatalf("growth trigger missed: %d conflict evictions since last growth on a %d-entry cache below the %d cap",
			m.cacheEvicts-m.growEvicts, len(m.cache), m.cacheMax)
	}
	if m.growEvicts > m.cacheEvicts {
		t.Fatalf("growEvicts %d > cacheEvicts %d", m.growEvicts, m.cacheEvicts)
	}
	var hits, misses, stores uint64
	for _, op := range s.PerOp {
		hits += op.Hits
		misses += op.Misses
		stores += op.Stores
	}
	if hits != s.CacheHits || misses != s.CacheMisses {
		t.Fatalf("per-op counters (%d hits, %d misses) do not partition the totals (%d, %d)",
			hits, misses, s.CacheHits, s.CacheMisses)
	}
	if stores != s.Ops {
		t.Fatalf("per-op stores %d != total ops %d", stores, s.Ops)
	}
	if s.CacheSize&(s.CacheSize-1) != 0 || s.CacheSize < 256 {
		t.Fatalf("cache size %d is not a power of two ≥ 256", s.CacheSize)
	}
	if s.CacheSize > m.cacheMax {
		t.Fatalf("cache size %d exceeds the configured maximum %d", s.CacheSize, m.cacheMax)
	}
	if s.CacheHitRate < 0 || s.CacheHitRate > 1 {
		t.Fatalf("hit rate %f out of range", s.CacheHitRate)
	}
}

// TestCacheStatsCoherentAcrossGrowthAndGC drives a random workload through
// cache growth and GC cache invalidation, auditing the counters at every
// step: growth must carry warm entries and counters forward, and a
// collection must drop cached results without corrupting the totals.
func TestCacheStatsCoherentAcrossGrowthAndGC(t *testing.T) {
	m := New(16)
	m.SetCacheSize(256)
	m.SetMaxCacheSize(1024)
	m.SetGCWatermark(0)
	rng := rand.New(rand.NewSource(42))

	var roots []Ref
	for i := 0; i < 400; i++ {
		f := randomFunc(m, rng, 16, 4)
		if i%10 == 0 {
			roots = append(roots, m.Keep(f))
		}
		auditCacheStats(t, m)
		if i%97 == 96 {
			evictsBefore := m.cacheEvicts
			m.GC()
			if m.cacheEvicts != evictsBefore {
				t.Fatal("GC cache invalidation must not count as conflict evictions")
			}
			auditCacheStats(t, m)
		}
	}
	s := m.Stats()
	if s.CacheEvictions == 0 {
		t.Fatal("workload produced no conflict evictions; the audit exercised nothing")
	}
	if s.CacheSize != 1024 {
		t.Fatalf("pressure never grew the cache: size %d, want the 1024 cap", s.CacheSize)
	}
	if s.GCRuns == 0 || s.GCReclaimed == 0 {
		t.Fatal("collections never reclaimed; the invalidation path was not exercised")
	}
	for _, r := range roots {
		m.Release(r)
	}
}

// sameSetTriples returns distinct non-terminal ITE operand triples that map
// to the same cache set, by probing cacheSlot directly.
func sameSetTriples(m *Manager, want int) [][3]Ref {
	bySlot := make(map[uint32][][3]Ref)
	for i := 0; i < m.NumVars(); i++ {
		for j := 0; j < m.NumVars(); j++ {
			for k := 0; k < m.NumVars(); k++ {
				if i == j || j == k || i == k {
					continue
				}
				tr := [3]Ref{m.Var(i), m.Var(j), m.Var(k)}
				s := m.cacheSlot(opITE, tr[0], tr[1], tr[2])
				bySlot[s] = append(bySlot[s], tr)
				if len(bySlot[s]) == want {
					return bySlot[s]
				}
			}
		}
	}
	return nil
}

// TestTwoWayAssociativity pins the probe/store protocol of the two-way
// cache with three keys of one set: the victim way retains the previously
// displaced entry, a victim hit promotes to MRU, and a conflicting store
// evicts the set's least recently used key — exactly once.
func TestTwoWayAssociativity(t *testing.T) {
	m := New(12)
	m.SetCacheSize(256)
	m.SetMaxCacheSize(256)
	triples := sameSetTriples(m, 3)
	if triples == nil {
		t.Skip("no three colliding ITE triples over 12 variables (hash changed?)")
	}
	// ITE(Var i, Var j, Var k) with distinct i,j,k performs exactly one
	// cached operation: the cofactor recursions bottom out in terminal
	// cases, so the counters below move only for the top-level keys.
	ite := func(tr [3]Ref) { m.ITE(tr[0], tr[1], tr[2]) }
	step := func(tr [3]Ref, wantHit bool) {
		t.Helper()
		h, ms := m.cacheHits, m.cacheMisses
		ite(tr)
		if gotHit := m.cacheHits > h; gotHit != wantHit {
			t.Fatalf("hit=%v, want %v (hits %d->%d, misses %d->%d)",
				gotHit, wantHit, h, m.cacheHits, ms, m.cacheMisses)
		}
	}

	step(triples[0], false) // t0 -> MRU
	step(triples[1], false) // t1 -> MRU, t0 -> victim
	step(triples[0], true)  // victim hit: t0 promoted, t1 demoted
	step(triples[1], true)  // victim hit: t1 promoted, t0 demoted
	evicts := m.cacheEvicts
	step(triples[2], false) // both ways full: evicts the LRU (t0)
	if m.cacheEvicts != evicts+1 {
		t.Fatalf("conflicting store counted %d evictions, want 1", m.cacheEvicts-evicts)
	}
	step(triples[1], true)  // survived in the victim way
	step(triples[0], false) // the LRU was the one displaced
}

// TestCacheGrowthPreservesWarmEntries checks that an explicit resize
// re-slots live results: an operation computed before the growth must still
// hit afterwards.
func TestCacheGrowthPreservesWarmEntries(t *testing.T) {
	m := New(8)
	m.SetCacheSize(256)
	f, g, h := m.Var(0), m.Var(1), m.Var(2)
	m.ITE(f, g, h)
	m.SetCacheSize(2048)
	if s := m.Stats(); s.CacheSize != 2048 {
		t.Fatalf("cache size %d after SetCacheSize(2048)", s.CacheSize)
	}
	hits := m.cacheHits
	m.ITE(f, g, h)
	if m.cacheHits != hits+1 {
		t.Fatal("warm ITE result did not survive cache growth")
	}
}

// TestGCDropsCacheWithoutEvictions checks the GC/cache interaction: a
// collection that reclaims nodes must invalidate the cache (its entries may
// reference dead nodes) without disturbing the eviction counters, and the
// recomputed result must be cached again afterwards.
func TestGCDropsCacheWithoutEvictions(t *testing.T) {
	m := New(8)
	f, g, h := m.Var(0), m.Var(1), m.Var(2)
	kept := m.Keep(m.ITE(f, g, h))
	m.Xor(m.Var(3), m.Var(4)) // garbage, so the sweep reclaims something

	evicts, misses := m.cacheEvicts, m.cacheMisses
	if r := m.GC(); r.Reclaimed == 0 {
		t.Fatal("setup produced no garbage")
	}
	if m.cacheEvicts != evicts {
		t.Fatal("GC invalidation must not count as evictions")
	}
	m.ITE(f, g, h) // recompute: the cleared cache must miss...
	if m.cacheMisses != misses+1 {
		t.Fatalf("post-GC ITE missed %d times, want 1", m.cacheMisses-misses)
	}
	hits := m.cacheHits
	m.ITE(f, g, h) // ...and the recomputed entry must hit.
	if m.cacheHits != hits+1 {
		t.Fatal("recomputed entry not re-cached after GC")
	}
	m.Release(kept)
}
