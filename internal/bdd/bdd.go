// Package bdd implements reduced ordered binary decision diagrams with a
// shared, hash-consed node store and a two-way set-associative operation
// cache. It plays the role CUDD/GLU plays in the paper's STSyn
// implementation: the symbolic engine represents state predicates and
// transition groups as BDDs and reports space usage in BDD nodes
// (Figures 7, 9 and 11).
//
// The variable order is fixed at construction time; there is no dynamic
// reordering. Memory is managed with external reference handles plus
// mark-and-sweep garbage collection: callers Keep the roots that must
// survive, and a collection (GC, or MaybeGC once the live-node watermark is
// reached) sweeps every node unreachable from a kept root into a free list
// whose slots are reused by later allocations. Node identities (Refs) are
// stable across collections — the sweep never moves live nodes — so holding
// a kept Ref across a collection is always safe, and hash-consing canonicity
// (pointer equality of equivalent functions) is preserved.
package bdd

import "fmt"

// Ref is a reference to a BDD node owned by a Manager. The zero Ref is the
// constant false, making the zero value of Ref-typed fields meaningful.
type Ref uint32

// Constant terminals.
const (
	False Ref = 0
	True  Ref = 1
)

// freeLevel marks a node slot that is on the free list. Live terminals use
// the sentinel level nvars; freed interior nodes get a level no valid node
// can have so sweeps and rehashes can skip them.
const freeLevel int32 = -1

type node struct {
	level    int32 // variable level; terminals use the sentinel level nvars
	lo, hi   Ref   // cofactors for level-variable = 0 / 1
	nextHash uint32
}

// Manager owns a shared BDD node store over a fixed number of boolean
// variables (levels 0..N-1; lower level = closer to the root).
type Manager struct {
	nvars int32
	nodes []node
	freed []uint32 // reusable node slots produced by collections
	live  int      // allocated minus freed, terminals included
	peak  int      // high-water mark of live

	buckets []uint32 // unique-table heads, index by hash; 0 = empty
	mask    uint32

	// Operation cache: two-way set-associative over pairs of adjacent
	// entries. Set s occupies cache[2s] (the most recently used way) and
	// cache[2s+1] (the victim way). A direct-mapped cache loses a warm
	// result to every conflicting store; the victim way keeps it reachable
	// for one more generation, which measures as a higher hit rate on the
	// ping-ponging ITE/Exists mixes of image fixpoints at the cost of one
	// extra compare per probe.
	cache    []cacheEntry
	cmask    uint32 // number of sets minus one
	cacheMax int    // adaptive growth stops at this many entries

	refs map[Ref]int32 // external reference counts (Keep/Release)

	watermark int // live-node count at which MaybeGC collects; 0 = never

	opCount     uint64 // number of cached operations performed (for stats)
	cacheHits   uint64
	cacheMisses uint64
	cacheEvicts uint64 // valid entries overwritten by a different key
	growEvicts  uint64 // cacheEvicts at the time of the last cache growth
	gcRuns      int
	gcReclaimed uint64 // nodes reclaimed across all collections

	// Per-op-code counters, indexed by the op* constants.
	opHits   [opCodes]uint64
	opMisses [opCodes]uint64
	opStores [opCodes]uint64
}

type cacheEntry struct {
	op      uint32
	a, b, c Ref
	result  Ref
	valid   bool
}

// Operation codes for the cache.
const (
	opITE uint32 = iota + 1
	opExists
	opRestrict
	opSupport
	opPermute
	opAndExists

	opCodes // number of op codes, bound for the per-op counter arrays
)

// opNames maps operation codes to their stable external names.
var opNames = [opCodes]string{
	opITE: "ite", opExists: "exists", opRestrict: "restrict",
	opSupport: "support", opPermute: "permute", opAndExists: "and-exists",
}

// DefaultCacheMax is the default upper bound on the operation cache size
// (total entries across both ways). It equals the default initial size, so
// adaptive growth is opt-in via SetMaxCacheSize: a cache much larger than
// the L2 working set turns every probe into a DRAM miss, which measures
// slower than the extra conflict evictions it avoids.
const DefaultCacheMax = 1 << 16

// New creates a manager over nvars boolean variables.
func New(nvars int) *Manager {
	if nvars < 0 || nvars >= 1<<30 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", nvars))
	}
	m := &Manager{nvars: int32(nvars), live: 2, peak: 2}
	m.nodes = make([]node, 2, 1024)
	m.nodes[False] = node{level: m.nvars}
	m.nodes[True] = node{level: m.nvars}
	m.buckets = make([]uint32, 1<<14)
	m.mask = uint32(len(m.buckets) - 1)
	m.cache = make([]cacheEntry, 1<<16)
	m.cmask = uint32(len(m.cache)/2 - 1)
	m.cacheMax = DefaultCacheMax
	m.refs = make(map[Ref]int32)
	return m
}

// NumVars returns the number of boolean variables.
func (m *Manager) NumVars() int { return int(m.nvars) }

// Size returns the number of node slots in the backing store (including the
// two terminals and any slots currently on the free list).
func (m *Manager) Size() int { return len(m.nodes) }

// Live returns the number of live nodes: allocated slots minus freed ones,
// terminals included.
func (m *Manager) Live() int { return m.live }

// Peak returns the high-water mark of Live over the manager's lifetime.
// Live only ever drops at a collection, so sampling it at every observation
// point and at GC entry captures the true maximum without a per-allocation
// check in mk.
func (m *Manager) Peak() int {
	m.notePeak()
	return m.peak
}

func (m *Manager) notePeak() {
	if m.live > m.peak {
		m.peak = m.live
	}
}

// Ops returns the number of cached recursive operations performed; a
// platform-independent work metric.
func (m *Manager) Ops() uint64 { return m.opCount }

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// Low and High return the cofactors of a non-terminal node.
func (m *Manager) Low(f Ref) Ref  { return m.nodes[f].lo }
func (m *Manager) High(f Ref) Ref { return m.nodes[f].hi }

// Level returns the level of f's root variable, or NumVars() for terminals.
func (m *Manager) Level(f Ref) int { return int(m.nodes[f].level) }

// IsTerminal reports whether f is a constant.
func (m *Manager) IsTerminal(f Ref) bool { return f <= True }

// --- external references and garbage collection --------------------------

// Keep registers f as an external root: it (and everything reachable from
// it) survives garbage collections until a matching Release. Keep may be
// called repeatedly; roots are reference-counted. Terminals are always live.
// Returns f for chaining.
func (m *Manager) Keep(f Ref) Ref {
	if f > True {
		m.refs[f]++
	}
	return f
}

// Release undoes one Keep. Releasing a Ref that is not currently kept is a
// bug in the caller's protection discipline and panics.
func (m *Manager) Release(f Ref) {
	if f <= True {
		return
	}
	c := m.refs[f]
	if c <= 0 {
		panic(fmt.Sprintf("bdd: Release of un-kept ref %d", f))
	}
	if c == 1 {
		delete(m.refs, f)
	} else {
		m.refs[f] = c - 1
	}
}

// KeptRefs returns the number of distinct externally kept roots.
func (m *Manager) KeptRefs() int { return len(m.refs) }

// SetGCWatermark sets the live-node count at which MaybeGC actually
// collects. Zero (the default) disables automatic collection entirely;
// explicit GC calls still work.
func (m *Manager) SetGCWatermark(n int) {
	if n < 0 {
		n = 0
	}
	m.watermark = n
}

// NeedsGC reports whether a MaybeGC call would collect now.
func (m *Manager) NeedsGC() bool { return m.watermark > 0 && m.live >= m.watermark }

// GCResult summarizes one collection.
type GCResult struct {
	Live      int // live nodes after the sweep
	Reclaimed int // node slots moved to the free list
}

// MaybeGC runs a collection if the live-node count has reached the
// watermark; it is the safe-point hook engines call at fixpoint boundaries.
// The caller must have Kept every Ref it still needs.
func (m *Manager) MaybeGC() (GCResult, bool) {
	if !m.NeedsGC() {
		return GCResult{Live: m.live}, false
	}
	return m.GC(), true
}

// GC runs a mark-and-sweep collection: every node unreachable from a kept
// root (or terminal) is moved to the free list for reuse by later mk calls.
// Live nodes keep their Refs; the unique table is rebuilt over the
// survivors and the operation cache is invalidated (it may reference dead
// nodes). Canonicity is unaffected: equivalent functions built before and
// after a collection still share the same Ref.
func (m *Manager) GC() GCResult {
	m.notePeak()
	marked := make([]uint64, (len(m.nodes)+63)/64)
	var mark func(f Ref)
	mark = func(f Ref) {
		// Depth is bounded by the number of levels: child levels strictly
		// increase, so recursion (with the hi-edge loop) is safe.
		for f > True {
			w, b := f>>6, f&63
			if marked[w]>>b&1 == 1 {
				return
			}
			marked[w] |= 1 << b
			mark(m.nodes[f].lo)
			f = m.nodes[f].hi
		}
	}
	for f := range m.refs {
		mark(f)
	}

	reclaimed := 0
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		if marked[i>>6]>>(uint(i)&63)&1 == 0 {
			*n = node{level: freeLevel}
			m.freed = append(m.freed, uint32(i))
			reclaimed++
		}
	}
	m.gcRuns++
	if reclaimed == 0 {
		// Nothing died: the unique table and cache are still exact.
		return GCResult{Live: m.live}
	}
	m.live -= reclaimed
	m.gcReclaimed += uint64(reclaimed)

	// Rebuild the unique table over the survivors.
	clear(m.buckets)
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		h := hash3(uint32(n.level), uint32(n.lo), uint32(n.hi)) & m.mask
		n.nextHash = m.buckets[h]
		m.buckets[h] = uint32(i)
	}
	// The cache may hold results rooted at reclaimed nodes; drop it.
	clear(m.cache)
	return GCResult{Live: m.live, Reclaimed: reclaimed}
}

// Stats is a point-in-time snapshot of the manager's memory and cache
// behavior — the substrate metrics the service and benches export.
type Stats struct {
	NumVars         int
	LiveNodes       int     // allocated minus freed, terminals included
	PeakLiveNodes   int     // high-water mark of LiveNodes
	AllocatedSlots  int     // node slots in the backing store
	FreeSlots       int     // reclaimed slots awaiting reuse
	KeptRefs        int     // distinct external roots
	UniqueTableSize int     // bucket count
	UniqueTableLoad float64 // live nodes per bucket
	CacheSize       int     // operation-cache entries (both ways)
	CacheHits       uint64
	CacheMisses     uint64
	CacheEvictions  uint64  // valid entries overwritten by a different key
	CacheHitRate    float64 // hits / lookups; 0 when no lookups yet
	GCRuns          int
	GCReclaimed     uint64 // nodes reclaimed across all collections
	Ops             uint64 // cached recursive operations performed

	// PerOp breaks the cache counters down by operation code, in a fixed
	// order (ite, exists, restrict, support, permute, and-exists).
	PerOp []OpStats
}

// OpStats is the cache activity of one operation code.
type OpStats struct {
	Op     string // stable operation name
	Hits   uint64
	Misses uint64
	Stores uint64 // results written to the cache (recursive steps performed)
}

// Stats returns a snapshot of the manager's counters.
func (m *Manager) Stats() Stats {
	m.notePeak()
	s := Stats{
		NumVars:         int(m.nvars),
		LiveNodes:       m.live,
		PeakLiveNodes:   m.peak,
		AllocatedSlots:  len(m.nodes),
		FreeSlots:       len(m.freed),
		KeptRefs:        len(m.refs),
		UniqueTableSize: len(m.buckets),
		UniqueTableLoad: float64(m.live) / float64(len(m.buckets)),
		CacheSize:       len(m.cache),
		CacheHits:       m.cacheHits,
		CacheMisses:     m.cacheMisses,
		CacheEvictions:  m.cacheEvicts,
		GCRuns:          m.gcRuns,
		GCReclaimed:     m.gcReclaimed,
		Ops:             m.opCount,
	}
	if lookups := m.cacheHits + m.cacheMisses; lookups > 0 {
		s.CacheHitRate = float64(m.cacheHits) / float64(lookups)
	}
	for op := uint32(opITE); op < opCodes; op++ {
		s.PerOp = append(s.PerOp, OpStats{
			Op: opNames[op], Hits: m.opHits[op], Misses: m.opMisses[op], Stores: m.opStores[op],
		})
	}
	return s
}

// --- node store -----------------------------------------------------------

func hash3(a, b, c uint32) uint32 {
	h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9 ^ uint64(c)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// mk returns the canonical node (level, lo, hi), applying the reduction rule
// and hash-consing. Freed slots are reused before the store grows.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	h := hash3(uint32(level), uint32(lo), uint32(hi)) & m.mask
	for i := m.buckets[h]; i != 0; i = m.nodes[i].nextHash {
		n := &m.nodes[i]
		if n.level == level && n.lo == lo && n.hi == hi {
			return Ref(i)
		}
	}
	var idx uint32
	if n := len(m.freed); n > 0 {
		idx = m.freed[n-1]
		m.freed = m.freed[:n-1]
		m.nodes[idx] = node{level: level, lo: lo, hi: hi, nextHash: m.buckets[h]}
	} else {
		idx = uint32(len(m.nodes))
		m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi, nextHash: m.buckets[h]})
	}
	m.buckets[h] = idx
	m.live++
	if len(m.nodes) > len(m.buckets)*2 { // keep chains short
		m.rehash()
	}
	return Ref(idx)
}

// rehash doubles the unique table and re-chains every live node. Refs are
// untouched, so canonicity is preserved.
func (m *Manager) rehash() {
	m.buckets = make([]uint32, len(m.buckets)*2)
	m.mask = uint32(len(m.buckets) - 1)
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		if n.level == freeLevel {
			continue
		}
		h := hash3(uint32(n.level), uint32(n.lo), uint32(n.hi)) & m.mask
		n.nextHash = m.buckets[h]
		m.buckets[h] = uint32(i)
	}
}

// --- operation cache ------------------------------------------------------

// cacheSlot returns the index of the first (MRU) way of the entry's set.
func (m *Manager) cacheSlot(op uint32, a, b, c Ref) uint32 {
	return ((hash3(op, uint32(a), uint32(b)) ^ uint32(c)*0x85ebca6b) & m.cmask) * 2
}

func (e *cacheEntry) is(op uint32, a, b, c Ref) bool {
	return e.valid && e.op == op && e.a == a && e.b == b && e.c == c
}

func (m *Manager) cacheGet(op uint32, a, b, c Ref) (Ref, bool) {
	s := m.cacheSlot(op, a, b, c)
	e0 := &m.cache[s]
	if e0.is(op, a, b, c) {
		m.cacheHits++
		m.opHits[op]++
		return e0.result, true
	}
	e1 := &m.cache[s+1]
	if e1.is(op, a, b, c) {
		// Hit in the victim way: promote to MRU so the set's true LRU entry
		// is the one the next conflicting store pushes out.
		m.cacheHits++
		m.opHits[op]++
		r := e1.result
		*e0, *e1 = *e1, *e0
		return r, true
	}
	if e0.valid && e1.valid {
		// Both ways occupied by other keys: the cachePut completing this
		// operation will evict the victim way. Detected here rather than in
		// cachePut so the store stays a cheap unconditional shift.
		m.cacheConflict()
	}
	m.cacheMisses++
	m.opMisses[op]++
	return 0, false
}

func (m *Manager) cachePut(op uint32, a, b, c, r Ref) {
	m.opCount++
	m.opStores[op]++
	s := m.cacheSlot(op, a, b, c)
	e0 := &m.cache[s]
	if !e0.is(op, a, b, c) {
		// Shift the old MRU into the victim way (dropping the set's LRU
		// entry, whose eviction the probe above already counted).
		m.cache[s+1] = *e0
	}
	*e0 = cacheEntry{op: op, a: a, b: b, c: c, result: r, valid: true}
}

// cacheConflict records a conflict eviction and, under heavy pressure — one
// eviction per entry since the last growth — doubles the cache up to the
// configured maximum. Kept out of line so it costs cacheGet's hot path only
// a predictable branch.
//
//go:noinline
func (m *Manager) cacheConflict() {
	m.cacheEvicts++
	if len(m.cache) < m.cacheMax && m.cacheEvicts-m.growEvicts > uint64(len(m.cache)) {
		m.growCache(len(m.cache) * 2)
	}
}

// growCache resizes the cache to n total entries (a power of two ≥ 2),
// re-slotting every valid entry so warm results survive the resize. MRU
// ways are re-inserted before victim ways, so when both land in the same
// new set the recency order is preserved.
func (m *Manager) growCache(n int) {
	old := m.cache
	m.cache = make([]cacheEntry, n)
	m.cmask = uint32(n/2 - 1)
	for _, way := range []int{0, 1} {
		for i := way; i < len(old); i += 2 {
			e := old[i]
			if !e.valid {
				continue
			}
			s := m.cacheSlot(e.op, e.a, e.b, e.c)
			if !m.cache[s].valid {
				m.cache[s] = e
			} else if !m.cache[s+1].valid {
				m.cache[s+1] = e
			}
		}
	}
	m.growEvicts = m.cacheEvicts
}

// SetCacheSize resizes the operation cache to the next power of two ≥ n
// total entries (min 256), preserving valid entries. Mostly useful in tests
// and tuning.
func (m *Manager) SetCacheSize(n int) {
	size := 256
	for size < n {
		size *= 2
	}
	if size != len(m.cache) {
		m.growCache(size)
	}
}

// SetMaxCacheSize bounds the adaptive cache growth (default DefaultCacheMax).
func (m *Manager) SetMaxCacheSize(n int) {
	if n < 256 {
		n = 256
	}
	m.cacheMax = n
}

// --- literals and cubes ---------------------------------------------------

// Var returns the BDD of the positive literal for variable level v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || int32(v) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.nvars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD of the negative literal for variable level v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || int32(v) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.nvars))
	}
	return m.mk(int32(v), True, False)
}

// cofactors splits f at the given level.
func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := &m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// ITE computes if-then-else: f·g ∨ ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheGet(opITE, f, g, h); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cachePut(opITE, f, g, h, r)
	return r
}

// And, Or, Xor, Not, Diff and Imp are the usual boolean connectives.
func (m *Manager) And(f, g Ref) Ref  { return m.ITE(f, g, False) }
func (m *Manager) Or(f, g Ref) Ref   { return m.ITE(f, True, g) }
func (m *Manager) Not(f Ref) Ref     { return m.ITE(f, False, True) }
func (m *Manager) Xor(f, g Ref) Ref  { return m.ITE(f, m.Not(g), g) }
func (m *Manager) Diff(f, g Ref) Ref { return m.ITE(g, False, f) }
func (m *Manager) Imp(f, g Ref) Ref  { return m.ITE(f, g, True) }

// AndN conjoins all arguments; OrN disjoins them.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Equiv reports whether f and g denote the same function. With
// hash-consing this is pointer equality.
func (m *Manager) Equiv(f, g Ref) bool { return f == g }

// AndExists computes the relational product ∃cube. (f ∧ g) in one pass —
// the workhorse of image computations in relation-based symbolic model
// checking (the engine's functional groups avoid it on the hot path, but
// the transition-relation metrics and downstream users need it).
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return m.Exists(g, cube)
	case g == True:
		return m.Exists(f, cube)
	case f == g:
		return m.Exists(f, cube)
	case cube == True:
		return m.And(f, g)
	}
	// Conjunction is commutative: canonicalize the operand order so
	// (f,g) and (g,f) share one cache entry.
	if g < f {
		f, g = g, f
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	// Skip quantified variables above both operands, and key the cache on
	// the *skipped* cube: calls differing only in already-passed quantified
	// levels compute the same function.
	c := cube
	for !m.IsTerminal(c) && m.level(c) < top {
		c = m.nodes[c].hi
	}
	if c == True {
		return m.And(f, g)
	}
	if r, ok := m.cacheGet(opAndExists, f, g, c); ok {
		return r
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if !m.IsTerminal(c) && m.level(c) == top {
		// Quantified at this level: OR of the two cofactor products; short-
		// circuit when the first branch is already True.
		r = m.AndExists(f0, g0, m.nodes[c].hi)
		if r != True {
			r = m.Or(r, m.AndExists(f1, g1, m.nodes[c].hi))
		}
	} else {
		r = m.mk(top, m.AndExists(f0, g0, c), m.AndExists(f1, g1, c))
	}
	m.cachePut(opAndExists, f, g, c, r)
	return r
}

// Exists existentially quantifies away every variable in cube, which must
// be a positive cube (a conjunction of positive literals, e.g. from Cube).
func (m *Manager) Exists(f, cube Ref) Ref {
	if m.IsTerminal(f) || cube == True {
		return f
	}
	if cube == False {
		panic("bdd: Exists with false cube")
	}
	if r, ok := m.cacheGet(opExists, f, cube, 0); ok {
		return r
	}
	fl, cl := m.level(f), m.level(cube)
	var r Ref
	switch {
	case cl < fl:
		// Quantified variable does not appear in f at this level.
		r = m.Exists(f, m.nodes[cube].hi)
	case cl == fl:
		lo := m.Exists(m.nodes[f].lo, m.nodes[cube].hi)
		hi := m.Exists(m.nodes[f].hi, m.nodes[cube].hi)
		r = m.Or(lo, hi)
	default:
		lo := m.Exists(m.nodes[f].lo, cube)
		hi := m.Exists(m.nodes[f].hi, cube)
		r = m.mk(fl, lo, hi)
	}
	m.cachePut(opExists, f, cube, 0, r)
	return r
}

// Restrict cofactors f by a literal cube (conjunction of positive and/or
// negative literals): every variable mentioned in the cube is fixed to the
// polarity it has there. Restrict(f, c) equals ∃vars(c). (f ∧ c).
func (m *Manager) Restrict(f, cube Ref) Ref {
	if cube == True || m.IsTerminal(f) {
		return f
	}
	if cube == False {
		panic("bdd: Restrict with false cube")
	}
	if r, ok := m.cacheGet(opRestrict, f, cube, 0); ok {
		return r
	}
	fl := m.level(f)
	// Skip cube variables above f.
	c := cube
	for !m.IsTerminal(c) && m.level(c) < fl {
		if m.nodes[c].hi != False {
			c = m.nodes[c].hi
		} else {
			c = m.nodes[c].lo
		}
	}
	var r Ref
	if m.IsTerminal(c) {
		r = f
	} else if m.level(c) == fl {
		if m.nodes[c].hi != False { // positive literal: take the hi branch
			r = m.Restrict(m.nodes[f].hi, m.nodes[c].hi)
		} else { // negative literal
			r = m.Restrict(m.nodes[f].lo, m.nodes[c].lo)
		}
	} else {
		lo := m.Restrict(m.nodes[f].lo, c)
		hi := m.Restrict(m.nodes[f].hi, c)
		r = m.mk(fl, lo, hi)
	}
	m.cachePut(opRestrict, f, cube, 0, r)
	return r
}

// Cube builds the positive cube of the given variable levels.
func (m *Manager) Cube(vars []int) Ref {
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		r = m.And(m.Var(vars[i]), r)
	}
	return r
}

// Literal is one variable assignment in a cube.
type Literal struct {
	Var int
	Val bool
}

// LiteralCube builds the conjunction of the given literals.
func (m *Manager) LiteralCube(lits []Literal) Ref {
	r := True
	for i := len(lits) - 1; i >= 0; i-- {
		l := m.Var(lits[i].Var)
		if !lits[i].Val {
			l = m.Not(l)
		}
		r = m.And(l, r)
	}
	return r
}
