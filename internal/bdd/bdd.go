// Package bdd implements reduced ordered binary decision diagrams with a
// shared, hash-consed node store and a direct-mapped operation cache. It
// plays the role CUDD/GLU plays in the paper's STSyn implementation: the
// symbolic engine represents state predicates and transition groups as BDDs
// and reports space usage in BDD nodes (Figures 7, 9 and 11).
//
// The variable order is fixed at construction time; there is no dynamic
// reordering and no garbage collection — synthesis runs are short-lived and
// the node store is simply discarded with the manager.
package bdd

import "fmt"

// Ref is a reference to a BDD node owned by a Manager. The zero Ref is the
// constant false, making the zero value of Ref-typed fields meaningful.
type Ref uint32

// Constant terminals.
const (
	False Ref = 0
	True  Ref = 1
)

type node struct {
	level    int32 // variable level; terminals use the sentinel level nvars
	lo, hi   Ref   // cofactors for level-variable = 0 / 1
	nextHash uint32
}

// Manager owns a shared BDD node store over a fixed number of boolean
// variables (levels 0..N-1; lower level = closer to the root).
type Manager struct {
	nvars int32
	nodes []node

	buckets []uint32 // unique-table heads, index by hash; 0 = empty
	mask    uint32

	cache []cacheEntry // direct-mapped operation cache
	cmask uint32

	opCount uint64 // number of cached operations performed (for stats)
}

type cacheEntry struct {
	op      uint32
	a, b, c Ref
	result  Ref
	valid   bool
}

// Operation codes for the cache.
const (
	opITE uint32 = iota + 1
	opExists
	opRestrict
	opSupport
	opPermute
	opAndExists
)

// New creates a manager over nvars boolean variables.
func New(nvars int) *Manager {
	if nvars < 0 || nvars >= 1<<30 {
		panic(fmt.Sprintf("bdd: invalid variable count %d", nvars))
	}
	m := &Manager{nvars: int32(nvars)}
	m.nodes = make([]node, 2, 1024)
	m.nodes[False] = node{level: m.nvars}
	m.nodes[True] = node{level: m.nvars}
	m.buckets = make([]uint32, 1<<14)
	m.mask = uint32(len(m.buckets) - 1)
	m.cache = make([]cacheEntry, 1<<16)
	m.cmask = uint32(len(m.cache) - 1)
	return m
}

// NumVars returns the number of boolean variables.
func (m *Manager) NumVars() int { return int(m.nvars) }

// Size returns the total number of nodes ever allocated (including the two
// terminals). This is the manager-wide space metric.
func (m *Manager) Size() int { return len(m.nodes) }

// Ops returns the number of cached recursive operations performed; a
// platform-independent work metric.
func (m *Manager) Ops() uint64 { return m.opCount }

func (m *Manager) level(f Ref) int32 { return m.nodes[f].level }

// Low and High return the cofactors of a non-terminal node.
func (m *Manager) Low(f Ref) Ref  { return m.nodes[f].lo }
func (m *Manager) High(f Ref) Ref { return m.nodes[f].hi }

// Level returns the level of f's root variable, or NumVars() for terminals.
func (m *Manager) Level(f Ref) int { return int(m.nodes[f].level) }

// IsTerminal reports whether f is a constant.
func (m *Manager) IsTerminal(f Ref) bool { return f <= True }

func hash3(a, b, c uint32) uint32 {
	h := uint64(a)*0x9e3779b97f4a7c15 ^ uint64(b)*0xbf58476d1ce4e5b9 ^ uint64(c)*0x94d049bb133111eb
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return uint32(h)
}

// mk returns the canonical node (level, lo, hi), applying the reduction rule
// and hash-consing.
func (m *Manager) mk(level int32, lo, hi Ref) Ref {
	if lo == hi {
		return lo
	}
	h := hash3(uint32(level), uint32(lo), uint32(hi)) & m.mask
	for i := m.buckets[h]; i != 0; i = m.nodes[i].nextHash {
		n := &m.nodes[i]
		if n.level == level && n.lo == lo && n.hi == hi {
			return Ref(i)
		}
	}
	idx := uint32(len(m.nodes))
	m.nodes = append(m.nodes, node{level: level, lo: lo, hi: hi, nextHash: m.buckets[h]})
	m.buckets[h] = idx
	if len(m.nodes) > len(m.buckets)*2 { // keep chains short
		m.rehash()
	}
	return Ref(idx)
}

func (m *Manager) rehash() {
	m.buckets = make([]uint32, len(m.buckets)*2)
	m.mask = uint32(len(m.buckets) - 1)
	for i := 2; i < len(m.nodes); i++ {
		n := &m.nodes[i]
		h := hash3(uint32(n.level), uint32(n.lo), uint32(n.hi)) & m.mask
		n.nextHash = m.buckets[h]
		m.buckets[h] = uint32(i)
	}
}

func (m *Manager) cacheSlot(op uint32, a, b, c Ref) uint32 {
	return (hash3(op, uint32(a), uint32(b)) ^ uint32(c)*0x85ebca6b) & m.cmask
}

func (m *Manager) cacheGet(op uint32, a, b, c Ref) (Ref, bool) {
	e := &m.cache[m.cacheSlot(op, a, b, c)]
	if e.valid && e.op == op && e.a == a && e.b == b && e.c == c {
		return e.result, true
	}
	return 0, false
}

func (m *Manager) cachePut(op uint32, a, b, c, r Ref) {
	m.opCount++
	m.cache[m.cacheSlot(op, a, b, c)] =
		cacheEntry{op: op, a: a, b: b, c: c, result: r, valid: true}
}

// Var returns the BDD of the positive literal for variable level v.
func (m *Manager) Var(v int) Ref {
	if v < 0 || int32(v) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.nvars))
	}
	return m.mk(int32(v), False, True)
}

// NVar returns the BDD of the negative literal for variable level v.
func (m *Manager) NVar(v int) Ref {
	if v < 0 || int32(v) >= m.nvars {
		panic(fmt.Sprintf("bdd: variable %d out of range [0,%d)", v, m.nvars))
	}
	return m.mk(int32(v), True, False)
}

// cofactors splits f at the given level.
func (m *Manager) cofactors(f Ref, level int32) (lo, hi Ref) {
	n := &m.nodes[f]
	if n.level != level {
		return f, f
	}
	return n.lo, n.hi
}

// ITE computes if-then-else: f·g ∨ ¬f·h.
func (m *Manager) ITE(f, g, h Ref) Ref {
	// Terminal cases.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	if r, ok := m.cacheGet(opITE, f, g, h); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	if l := m.level(h); l < top {
		top = l
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	h0, h1 := m.cofactors(h, top)
	r := m.mk(top, m.ITE(f0, g0, h0), m.ITE(f1, g1, h1))
	m.cachePut(opITE, f, g, h, r)
	return r
}

// And, Or, Xor, Not, Diff and Imp are the usual boolean connectives.
func (m *Manager) And(f, g Ref) Ref  { return m.ITE(f, g, False) }
func (m *Manager) Or(f, g Ref) Ref   { return m.ITE(f, True, g) }
func (m *Manager) Not(f Ref) Ref     { return m.ITE(f, False, True) }
func (m *Manager) Xor(f, g Ref) Ref  { return m.ITE(f, m.Not(g), g) }
func (m *Manager) Diff(f, g Ref) Ref { return m.ITE(g, False, f) }
func (m *Manager) Imp(f, g Ref) Ref  { return m.ITE(f, g, True) }

// AndN conjoins all arguments; OrN disjoins them.
func (m *Manager) AndN(fs ...Ref) Ref {
	r := True
	for _, f := range fs {
		r = m.And(r, f)
	}
	return r
}

func (m *Manager) OrN(fs ...Ref) Ref {
	r := False
	for _, f := range fs {
		r = m.Or(r, f)
	}
	return r
}

// Equiv reports whether f and g denote the same function. With
// hash-consing this is pointer equality.
func (m *Manager) Equiv(f, g Ref) bool { return f == g }

// AndExists computes the relational product ∃cube. (f ∧ g) in one pass —
// the workhorse of image computations in relation-based symbolic model
// checking (the engine's functional groups avoid it on the hot path, but
// the transition-relation metrics and downstream users need it).
func (m *Manager) AndExists(f, g, cube Ref) Ref {
	switch {
	case f == False || g == False:
		return False
	case f == True:
		return m.Exists(g, cube)
	case g == True:
		return m.Exists(f, cube)
	case cube == True:
		return m.And(f, g)
	}
	if r, ok := m.cacheGet(opAndExists, f, g, cube); ok {
		return r
	}
	top := m.level(f)
	if l := m.level(g); l < top {
		top = l
	}
	// Skip quantified variables above both operands.
	c := cube
	for !m.IsTerminal(c) && m.level(c) < top {
		c = m.nodes[c].hi
	}
	f0, f1 := m.cofactors(f, top)
	g0, g1 := m.cofactors(g, top)
	var r Ref
	if !m.IsTerminal(c) && m.level(c) == top {
		// Quantified at this level: OR of the two cofactor products; short-
		// circuit when the first branch is already True.
		r = m.AndExists(f0, g0, m.nodes[c].hi)
		if r != True {
			r = m.Or(r, m.AndExists(f1, g1, m.nodes[c].hi))
		}
	} else {
		r = m.mk(top, m.AndExists(f0, g0, c), m.AndExists(f1, g1, c))
	}
	m.cachePut(opAndExists, f, g, cube, r)
	return r
}

// Exists existentially quantifies away every variable in cube, which must
// be a positive cube (a conjunction of positive literals, e.g. from Cube).
func (m *Manager) Exists(f, cube Ref) Ref {
	if m.IsTerminal(f) || cube == True {
		return f
	}
	if cube == False {
		panic("bdd: Exists with false cube")
	}
	if r, ok := m.cacheGet(opExists, f, cube, 0); ok {
		return r
	}
	fl, cl := m.level(f), m.level(cube)
	var r Ref
	switch {
	case cl < fl:
		// Quantified variable does not appear in f at this level.
		r = m.Exists(f, m.nodes[cube].hi)
	case cl == fl:
		lo := m.Exists(m.nodes[f].lo, m.nodes[cube].hi)
		hi := m.Exists(m.nodes[f].hi, m.nodes[cube].hi)
		r = m.Or(lo, hi)
	default:
		lo := m.Exists(m.nodes[f].lo, cube)
		hi := m.Exists(m.nodes[f].hi, cube)
		r = m.mk(fl, lo, hi)
	}
	m.cachePut(opExists, f, cube, 0, r)
	return r
}

// Restrict cofactors f by a literal cube (conjunction of positive and/or
// negative literals): every variable mentioned in the cube is fixed to the
// polarity it has there. Restrict(f, c) equals ∃vars(c). (f ∧ c).
func (m *Manager) Restrict(f, cube Ref) Ref {
	if cube == True || m.IsTerminal(f) {
		return f
	}
	if cube == False {
		panic("bdd: Restrict with false cube")
	}
	if r, ok := m.cacheGet(opRestrict, f, cube, 0); ok {
		return r
	}
	fl := m.level(f)
	// Skip cube variables above f.
	c := cube
	for !m.IsTerminal(c) && m.level(c) < fl {
		if m.nodes[c].hi != False {
			c = m.nodes[c].hi
		} else {
			c = m.nodes[c].lo
		}
	}
	var r Ref
	if m.IsTerminal(c) {
		r = f
	} else if m.level(c) == fl {
		if m.nodes[c].hi != False { // positive literal: take the hi branch
			r = m.Restrict(m.nodes[f].hi, m.nodes[c].hi)
		} else { // negative literal
			r = m.Restrict(m.nodes[f].lo, m.nodes[c].lo)
		}
	} else {
		lo := m.Restrict(m.nodes[f].lo, c)
		hi := m.Restrict(m.nodes[f].hi, c)
		r = m.mk(fl, lo, hi)
	}
	m.cachePut(opRestrict, f, cube, 0, r)
	return r
}

// Cube builds the positive cube of the given variable levels.
func (m *Manager) Cube(vars []int) Ref {
	r := True
	for i := len(vars) - 1; i >= 0; i-- {
		r = m.And(m.Var(vars[i]), r)
	}
	return r
}

// Literal is one variable assignment in a cube.
type Literal struct {
	Var int
	Val bool
}

// LiteralCube builds the conjunction of the given literals.
func (m *Manager) LiteralCube(lits []Literal) Ref {
	r := True
	for i := len(lits) - 1; i >= 0; i-- {
		l := m.Var(lits[i].Var)
		if !lits[i].Val {
			l = m.Not(l)
		}
		r = m.And(l, r)
	}
	return r
}
