package bdd

import "math"

// SatCount returns the number of satisfying assignments of f over all
// NumVars variables, as a float64 (state-space sizes in the paper reach
// 3^40, beyond uint64 for boolean encodings with invalid codepoints).
func (m *Manager) SatCount(f Ref) float64 {
	memo := make(map[Ref]float64)
	var count func(Ref) float64
	count = func(g Ref) float64 {
		if g == False {
			return 0
		}
		if g == True {
			return 1
		}
		if c, ok := memo[g]; ok {
			return c
		}
		n := &m.nodes[g]
		lo := count(n.lo) * math.Pow(2, float64(m.level(n.lo)-n.level-1))
		hi := count(n.hi) * math.Pow(2, float64(m.level(n.hi)-n.level-1))
		c := lo + hi
		memo[g] = c
		return c
	}
	return count(f) * math.Pow(2, float64(m.level(f)))
}

// PickCube returns one satisfying assignment of f as a slice indexed by
// variable level: 0, 1, or -1 for "don't care". Returns nil if f is
// unsatisfiable.
func (m *Manager) PickCube(f Ref) []int8 {
	if f == False {
		return nil
	}
	cube := make([]int8, m.nvars)
	for i := range cube {
		cube[i] = -1
	}
	for !m.IsTerminal(f) {
		n := &m.nodes[f]
		if n.hi != False {
			cube[n.level] = 1
			f = n.hi
		} else {
			cube[n.level] = 0
			f = n.lo
		}
	}
	return cube
}

// DagSize returns the number of distinct nodes in the DAG rooted at f,
// including terminals. This is the paper's per-predicate "number of BDD
// nodes" metric.
func (m *Manager) DagSize(f Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if !m.IsTerminal(g) {
			walk(m.nodes[g].lo)
			walk(m.nodes[g].hi)
		}
	}
	walk(f)
	return len(seen)
}

// SharedDagSize returns the number of distinct nodes in the union of the
// DAGs rooted at the given functions — the size of a shared multi-rooted
// BDD, the natural "total program size" metric for a set of groups.
func (m *Manager) SharedDagSize(fs []Ref) int {
	seen := make(map[Ref]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] {
			return
		}
		seen[g] = true
		if !m.IsTerminal(g) {
			walk(m.nodes[g].lo)
			walk(m.nodes[g].hi)
		}
	}
	for _, f := range fs {
		walk(f)
	}
	return len(seen)
}

// Permute renames variables: every variable v in the support of f is
// replaced by perm[v]. perm must be a permutation of 0..NumVars-1. The
// implementation rebuilds bottom-up with ITE so arbitrary (order-breaking)
// permutations are handled correctly.
func (m *Manager) Permute(f Ref, perm []int) Ref {
	if len(perm) != int(m.nvars) {
		panic("bdd: Permute: permutation length mismatch")
	}
	memo := make(map[Ref]Ref)
	var rec func(Ref) Ref
	rec = func(g Ref) Ref {
		if m.IsTerminal(g) {
			return g
		}
		if r, ok := memo[g]; ok {
			return r
		}
		n := &m.nodes[g]
		lo := rec(n.lo)
		hi := rec(n.hi)
		r := m.ITE(m.Var(perm[n.level]), hi, lo)
		memo[g] = r
		return r
	}
	return rec(f)
}

// Support returns the sorted levels of the variables f depends on.
func (m *Manager) Support(f Ref) []int {
	seen := make(map[Ref]bool)
	vars := make(map[int]bool)
	var walk func(Ref)
	walk = func(g Ref) {
		if seen[g] || m.IsTerminal(g) {
			return
		}
		seen[g] = true
		vars[int(m.nodes[g].level)] = true
		walk(m.nodes[g].lo)
		walk(m.nodes[g].hi)
	}
	walk(f)
	out := make([]int, 0, len(vars))
	for v := int32(0); v < m.nvars; v++ {
		if vars[int(v)] {
			out = append(out, int(v))
		}
	}
	return out
}

// CopyFrom migrates a BDD rooted at f in the source manager into m, which
// must have the same variable order. memo caches translations across calls
// (pass the same map to amortize shared structure).
//
// This enables scoped scratch managers: run a garbage-heavy computation in
// a throwaway manager, copy the (small) results back, and drop the scratch
// manager — a wholesale garbage collection.
func (m *Manager) CopyFrom(src *Manager, f Ref, memo map[Ref]Ref) Ref {
	if src.nvars != m.nvars {
		panic("bdd: CopyFrom between managers with different variable counts")
	}
	if f <= True {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := &src.nodes[f]
	lo := m.CopyFrom(src, n.lo, memo)
	hi := m.CopyFrom(src, n.hi, memo)
	r := m.mk(n.level, lo, hi)
	memo[f] = r
	return r
}

// CopyPermutedFrom migrates a BDD rooted at f in the source manager into m
// while renaming variables: every variable v in the support of f becomes
// levelMap[v] in m. levelMap must be injective on the support but need not
// preserve the level order — the translation rebuilds bottom-up with ITE,
// so order-breaking maps are handled correctly (at ITE cost; maps that
// preserve the relative order reduce to plain node construction). memo
// caches translations across calls, exactly like CopyFrom's.
//
// Together with CopyFrom this is the engine-side reordering primitive: run
// a computation in a scratch manager under a different variable order, then
// translate the (small) results back with the inverse map.
func (m *Manager) CopyPermutedFrom(src *Manager, f Ref, levelMap []int, memo map[Ref]Ref) Ref {
	if len(levelMap) != int(src.nvars) {
		panic("bdd: CopyPermutedFrom: level map length mismatch")
	}
	if f <= True {
		return f
	}
	if r, ok := memo[f]; ok {
		return r
	}
	n := &src.nodes[f]
	lo := m.CopyPermutedFrom(src, n.lo, levelMap, memo)
	hi := m.CopyPermutedFrom(src, n.hi, levelMap, memo)
	r := m.ITE(m.Var(levelMap[n.level]), hi, lo)
	memo[f] = r
	return r
}

// Eval evaluates f under a complete assignment indexed by variable level.
func (m *Manager) Eval(f Ref, assignment []bool) bool {
	for !m.IsTerminal(f) {
		n := &m.nodes[f]
		if assignment[n.level] {
			f = n.hi
		} else {
			f = n.lo
		}
	}
	return f == True
}
