package bdd

import (
	"math/rand"
	"testing"
)

// randomFunc builds a random BDD over nvars variables by combining literals
// with random connectives; depth controls how many combination steps occur.
func randomFunc(m *Manager, rng *rand.Rand, nvars, depth int) Ref {
	lit := func() Ref {
		v := rng.Intn(nvars)
		if rng.Intn(2) == 0 {
			return m.NVar(v)
		}
		return m.Var(v)
	}
	f := lit()
	for i := 0; i < depth; i++ {
		g := lit()
		switch rng.Intn(4) {
		case 0:
			f = m.And(f, g)
		case 1:
			f = m.Or(f, g)
		case 2:
			f = m.Xor(f, g)
		default:
			f = m.ITE(g, f, m.Not(f))
		}
	}
	return f
}

// TestGCKeptRefsSurvive checks the heart of the GC contract: functions held
// via Keep come through a collection with identical truth tables, verified
// by sat-count and by evaluation on random assignments, while a pile of
// unprotected garbage is reclaimed around them.
func TestGCKeptRefsSurvive(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	const nvars = 8
	m := New(nvars)

	type kept struct {
		f    Ref
		sat  float64
		evls []bool // eval results on the fixed assignment set
	}
	assignments := make([][]bool, 32)
	for i := range assignments {
		a := make([]bool, nvars)
		for j := range a {
			a[j] = rng.Intn(2) == 0
		}
		assignments[i] = a
	}

	var roots []kept
	for i := 0; i < 20; i++ {
		f := m.Keep(randomFunc(m, rng, nvars, 12))
		k := kept{f: f, sat: m.SatCount(f)}
		for _, a := range assignments {
			k.evls = append(k.evls, m.Eval(f, a))
		}
		roots = append(roots, k)
	}
	// Unprotected garbage interleaved with the kept roots.
	for i := 0; i < 50; i++ {
		randomFunc(m, rng, nvars, 20)
	}

	liveBefore := m.Live()
	res := m.GC()
	if res.Reclaimed == 0 {
		t.Fatalf("expected garbage to be reclaimed (live before %d)", liveBefore)
	}
	if res.Live != m.Live() || res.Live >= liveBefore {
		t.Fatalf("GC result live=%d, manager live=%d, before=%d", res.Live, m.Live(), liveBefore)
	}

	for i, k := range roots {
		if got := m.SatCount(k.f); got != k.sat {
			t.Fatalf("root %d: sat-count changed across GC: %g != %g", i, got, k.sat)
		}
		for j, a := range assignments {
			if got := m.Eval(k.f, a); got != k.evls[j] {
				t.Fatalf("root %d assignment %d: eval changed across GC", i, j)
			}
		}
	}

	// Rebuilding a kept function must hit the same node (canonicity).
	for i, k := range roots {
		m.Release(k.f)
		_ = i
	}
	if m.KeptRefs() != 0 {
		t.Fatalf("KeptRefs = %d after releasing everything", m.KeptRefs())
	}
}

// TestGCSlotReuse checks that slots freed by a collection are reused by
// subsequent allocations instead of growing the backing store.
func TestGCSlotReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const nvars = 10
	m := New(nvars)

	// Phase 1: build garbage, collect with no roots kept.
	for i := 0; i < 40; i++ {
		randomFunc(m, rng, nvars, 15)
	}
	res := m.GC()
	if res.Reclaimed == 0 {
		t.Fatal("nothing reclaimed")
	}
	slots := m.Size()
	free := m.Stats().FreeSlots
	if free == 0 {
		t.Fatal("free list empty after collection")
	}

	// Phase 2: allocate again; the store must not grow until the free list
	// is consumed.
	for m.Stats().FreeSlots > free/2 {
		randomFunc(m, rng, nvars, 5)
		if m.Size() != slots {
			t.Fatalf("backing store grew (%d -> %d) while %d slots were free",
				slots, m.Size(), m.Stats().FreeSlots)
		}
	}
}

// TestGCCanonicityAcrossRehashAndGC checks that hash-consing canonicity is
// preserved by both unique-table rehashing and collection: And(a,b) is
// pointer-equal before and after.
func TestGCCanonicityAcrossRehashAndGC(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const nvars = 12
	m := New(nvars)

	a := m.Keep(randomFunc(m, rng, nvars, 10))
	b := m.Keep(randomFunc(m, rng, nvars, 10))
	ab := m.Keep(m.And(a, b))

	// Force unique-table growth (New starts with 1<<14 buckets; exceed 2x).
	for m.Size() < 3*(1<<14) {
		randomFunc(m, rng, nvars, 25)
	}
	if got := m.And(a, b); got != ab {
		t.Fatalf("And(a,b) changed identity after rehash: %d != %d", got, ab)
	}

	res := m.GC()
	if res.Reclaimed == 0 {
		t.Fatal("nothing reclaimed")
	}
	if got := m.And(a, b); got != ab {
		t.Fatalf("And(a,b) changed identity after GC: %d != %d", got, ab)
	}

	// New structure built after the collection must still dedupe against
	// survivors: rebuilding b from scratch yields the same ref.
	rng2 := rand.New(rand.NewSource(3))
	_ = randomFunc(m, rng2, nvars, 10) // a again
	b2 := randomFunc(m, rng2, nvars, 10)
	if b2 != b {
		t.Fatalf("rebuilding b after GC gave a different ref: %d != %d", b2, b)
	}

	m.Release(a)
	m.Release(b)
	m.Release(ab)
}

// TestReleaseUnkeptPanics checks the protection-discipline tripwire.
func TestReleaseUnkeptPanics(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Var(1))
	defer func() {
		if recover() == nil {
			t.Fatal("Release of un-kept ref did not panic")
		}
	}()
	m.Release(f)
}

// TestReleaseTerminalsNoop checks terminals are always live and exempt from
// the refcount discipline.
func TestReleaseTerminalsNoop(t *testing.T) {
	m := New(4)
	m.Release(False)
	m.Release(True)
	m.Keep(False)
	m.Keep(True)
	if m.KeptRefs() != 0 {
		t.Fatalf("terminals entered the ref registry: %d", m.KeptRefs())
	}
	m.GC()
	if m.Live() != 2 {
		t.Fatalf("terminals collected: live=%d", m.Live())
	}
}

// TestKeepIsRefCounted checks nested Keep/Release pairs.
func TestKeepIsRefCounted(t *testing.T) {
	m := New(4)
	f := m.And(m.Var(0), m.Var(1))
	m.Keep(f)
	m.Keep(f)
	m.Release(f)
	m.GC()
	if m.Eval(f, []bool{true, true, false, false}) != true {
		t.Fatal("ref with remaining count collected")
	}
	m.Release(f)
	res := m.GC()
	if res.Reclaimed == 0 {
		t.Fatal("fully released ref not collected")
	}
}

// TestMaybeGCWatermark checks the watermark gate: no collection below it,
// collection at or above it, and disabled when zero.
func TestMaybeGCWatermark(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := New(8)
	if _, ran := m.MaybeGC(); ran {
		t.Fatal("MaybeGC collected with watermark disabled")
	}
	for i := 0; i < 10; i++ {
		randomFunc(m, rng, 8, 10)
	}
	m.SetGCWatermark(m.Live() + 1000)
	if _, ran := m.MaybeGC(); ran {
		t.Fatal("MaybeGC collected below the watermark")
	}
	m.SetGCWatermark(2)
	if !m.NeedsGC() {
		t.Fatal("NeedsGC false at watermark")
	}
	res, ran := m.MaybeGC()
	if !ran || res.Reclaimed == 0 {
		t.Fatalf("MaybeGC at watermark: ran=%v reclaimed=%d", ran, res.Reclaimed)
	}
	if m.Stats().GCRuns != 1 {
		t.Fatalf("GCRuns = %d", m.Stats().GCRuns)
	}
}

// TestCacheCountersAndGrowth checks hit/miss/evict accounting and adaptive
// growth under conflict pressure.
func TestCacheCountersAndGrowth(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := New(10)
	m.SetCacheSize(256) // shrink so conflicts are easy to provoke
	m.SetMaxCacheSize(1024)

	for i := 0; i < 60; i++ {
		randomFunc(m, rng, 10, 20)
	}
	st := m.Stats()
	if st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("expected both hits and misses: %+v", st)
	}
	if st.CacheEvictions == 0 {
		t.Fatalf("expected evictions in a 256-entry cache: %+v", st)
	}
	if st.CacheSize <= 256 {
		t.Fatalf("cache did not grow under pressure: size=%d", st.CacheSize)
	}
	if st.CacheSize > 1024 {
		t.Fatalf("cache exceeded its configured maximum: size=%d", st.CacheSize)
	}
	if st.CacheHitRate <= 0 || st.CacheHitRate >= 1 {
		t.Fatalf("implausible hit rate %f", st.CacheHitRate)
	}
}

// TestStatsSnapshot sanity-checks the remaining Stats fields.
func TestStatsSnapshot(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	m := New(6)
	f := m.Keep(randomFunc(m, rng, 6, 10))
	st := m.Stats()
	if st.NumVars != 6 || st.KeptRefs != 1 {
		t.Fatalf("bad snapshot: %+v", st)
	}
	if st.LiveNodes < 3 || st.PeakLiveNodes < st.LiveNodes {
		t.Fatalf("bad node accounting: %+v", st)
	}
	if st.AllocatedSlots != m.Size() || st.UniqueTableSize == 0 || st.UniqueTableLoad <= 0 {
		t.Fatalf("bad table accounting: %+v", st)
	}
	if st.Ops == 0 {
		t.Fatalf("ops counter never advanced: %+v", st)
	}
	m.Release(f)
}

// TestGCResultsStayCorrect interleaves collections with further computation
// and checks against brute-force evaluation — premature reclamation in a
// hash-consed store corrupts results silently, so this is the tripwire.
func TestGCResultsStayCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const nvars = 6
	m := New(nvars)
	m.SetGCWatermark(64) // collect aggressively

	for round := 0; round < 30; round++ {
		a := m.Keep(randomFunc(m, rng, nvars, 8))
		b := m.Keep(randomFunc(m, rng, nvars, 8))
		m.MaybeGC()
		c := m.And(a, b)
		// Brute-force check of c = a ∧ b over all 2^6 assignments.
		assign := make([]bool, nvars)
		for bits := 0; bits < 1<<nvars; bits++ {
			for v := 0; v < nvars; v++ {
				assign[v] = bits>>v&1 == 1
			}
			want := m.Eval(a, assign) && m.Eval(b, assign)
			if got := m.Eval(c, assign); got != want {
				t.Fatalf("round %d: And incorrect after GC at assignment %06b", round, bits)
			}
		}
		m.Release(a)
		m.Release(b)
	}
	if m.Stats().GCRuns == 0 {
		t.Fatal("watermark GC never ran")
	}
}
