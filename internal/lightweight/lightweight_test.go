package lightweight_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/lightweight"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

func explicitEngine(sp *protocol.Spec) (core.Engine, error) { return explicit.New(sp, 0) }

func synthesize(t *testing.T, sp *protocol.Spec) []protocol.Group {
	t.Helper()
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []protocol.Group
	for _, g := range res.Protocol {
		out = append(out, g.ProtocolGroup())
	}
	return out
}

func TestClimbColoring(t *testing.T) {
	cfg := lightweight.Config{
		BuildSpec: protocols.Coloring,
		NewEngine: explicitEngine,
		Workers:   2,
	}
	rungs := lightweight.Climb(cfg, 3, 6)
	if len(rungs) != 4 {
		t.Fatalf("got %d rungs, want 4", len(rungs))
	}
	for _, r := range rungs {
		if r.Err != nil {
			t.Fatalf("coloring-%d failed: %v", r.K, r.Err)
		}
		if r.Result == nil || len(r.Result.Protocol) == 0 {
			t.Fatalf("coloring-%d produced no protocol", r.K)
		}
	}
}

func TestClimbStopsOnFailure(t *testing.T) {
	// TR with fixed domain 3 fails beyond k=4 under the default schedule;
	// the ladder must stop at the first failing rung.
	cfg := lightweight.Config{
		BuildSpec: func(k int) *protocol.Spec { return protocols.TokenRing(k, 3) },
		NewEngine: explicitEngine,
		Workers:   2,
	}
	rungs := lightweight.Climb(cfg, 3, 8)
	if len(rungs) == 6 {
		t.Fatal("expected the ladder to stop early")
	}
	last := rungs[len(rungs)-1]
	if last.Err == nil {
		t.Fatal("last rung should carry the failure")
	}
	for _, r := range rungs[:len(rungs)-1] {
		if r.Err != nil {
			t.Fatalf("intermediate rung %d failed: %v", r.K, r.Err)
		}
	}
}

// TestGeneralizeColoring mechanizes the paper's "insights for scaling up":
// synthesize the 6-ring coloring protocol, lift its middle rule to a
// 12-ring, and verify the conjecture — much cheaper than synthesizing the
// 12-ring from scratch.
func TestGeneralizeColoring(t *testing.T) {
	const k, k2 = 6, 12
	groups := synthesize(t, protocols.Coloring(k))
	gen, err := lightweight.AutoGeneralizeRing(protocols.Coloring, k, groups, k2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := explicit.New(protocols.Coloring(k2), 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := bindGroups(t, e2, gen)
	if v := verify.StronglyStabilizing(e2, bound); !v.OK {
		t.Fatalf("generalized coloring-%d not stabilizing: %s (witness %v)", k2, v.Reason, v.Witness)
	}
}

// TestGeneralizeColoringSymbolic verifies the generalization at a size
// where only the symbolic engine is practical.
func TestGeneralizeColoringSymbolic(t *testing.T) {
	if testing.Short() {
		t.Skip("symbolic verification of coloring-18 skipped in -short mode")
	}
	const k, k2 = 6, 18
	groups := synthesize(t, protocols.Coloring(k))
	gen, err := lightweight.AutoGeneralizeRing(protocols.Coloring, k, groups, k2)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := symbolic.New(protocols.Coloring(k2))
	if err != nil {
		t.Fatal(err)
	}
	bound := bindGroups(t, e2, gen)
	if v := verify.StronglyStabilizing(e2, bound); !v.OK {
		t.Fatalf("generalized coloring-%d not stabilizing: %s", k2, v.Reason)
	}
}

// TestGeneralizeDijkstraNeedsLargerDomain reproduces the paper's caveat
// that "for some protocols, the generated SS versions cannot easily be
// generalized": lifting the synthesized TR(4,3) (= Dijkstra's ring) to 5
// processes with the same domain 3 yields a protocol that is NOT
// stabilizing — Dijkstra's ring needs dom ≥ k.
func TestGeneralizeDijkstraNeedsLargerDomain(t *testing.T) {
	build := func(k int) *protocol.Spec { return protocols.TokenRing(k, 3) }
	groups := synthesize(t, build(4))
	gen, err := lightweight.AutoGeneralizeRing(build, 4, groups, 5)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := explicit.New(build(5), 0)
	if err != nil {
		t.Fatal(err)
	}
	bound := bindGroups(t, e2, gen)
	if v := verify.StronglyStabilizing(e2, bound); v.OK {
		t.Fatal("TR(5,3) generalization should fail verification (dom < k)")
	}
}

// TestGeneralizeMatchingRejected: the synthesized MM protocol is asymmetric,
// so the automatic generalization must refuse rather than guess.
func TestGeneralizeMatchingRejected(t *testing.T) {
	groups := synthesize(t, protocols.Matching(5))
	if _, err := lightweight.AutoGeneralizeRing(protocols.Matching, 5, groups, 7); err == nil {
		t.Fatal("expected generalization of the asymmetric MM protocol to be rejected")
	}
}

func TestExtractRingOffsets(t *testing.T) {
	sp := protocols.Coloring(5)
	// A group of P0 (reads c4, c0, c1): offsets -1, 0, +1.
	g := protocol.Group{Proc: 0, ReadVals: []int{1, 2, 0}, WriteVals: []int{2}} // c0=1,c1=2,c4=0
	rgs, err := lightweight.ExtractRing(sp, []protocol.Group{g}, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rgs) != 1 {
		t.Fatalf("got %d relative groups", len(rgs))
	}
	offsets := map[int]int{} // offset -> value
	for i, off := range rgs[0].ReadOffsets {
		offsets[off] = rgs[0].ReadVals[i]
	}
	// c0 (offset 0) = 1, c1 (offset +1) = 2, c4 (offset -1) = 0.
	if offsets[0] != 1 || offsets[1] != 2 || offsets[-1] != 0 {
		t.Fatalf("wrong relative valuation: %+v", rgs[0])
	}
}

// bindGroups resolves spec-level groups to engine handles by key.
func bindGroups(t *testing.T, e core.Engine, pgs []protocol.Group) []core.Group {
	t.Helper()
	byKey := make(map[protocol.Key]core.Group)
	for _, g := range e.CandidateGroups() {
		byKey[g.ProtocolGroup().Key()] = g
	}
	for _, g := range e.ActionGroups() {
		byKey[g.ProtocolGroup().Key()] = g
	}
	var out []core.Group
	for _, pg := range pgs {
		g, ok := byKey[pg.Key()]
		if !ok {
			t.Fatalf("group %v not realizable on the target engine", pg)
		}
		out = append(out, g)
	}
	return out
}
