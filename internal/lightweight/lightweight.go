// Package lightweight implements the paper's overall method (Figure 1):
// start from an instance of a protocol with a small number of processes,
// add convergence automatically (fanning out one heuristic instance per
// recovery schedule), and inductively increase the number of processes as
// computational resources permit. The small synthesized instances "provide
// valuable insights for designers as to how convergence should be added as
// a protocol scales up"; this package mechanizes one such insight for ring
// protocols — extracting the relative (index-independent) form of the
// synthesized actions and re-instantiating it at a larger ring size, where
// *verifying* the guessed protocol is far cheaper than synthesizing it.
package lightweight

import (
	"fmt"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/symmetry"
)

// Instance is the outcome of one rung of the ladder.
type Instance struct {
	K        int
	Schedule []int
	Result   *core.Result
	Err      error
	Elapsed  time.Duration
}

// Config drives Climb.
type Config struct {
	// BuildSpec constructs the k-process instance of the protocol family.
	BuildSpec func(k int) *protocol.Spec
	// NewEngine builds an engine for an instance.
	NewEngine func(sp *protocol.Spec) (core.Engine, error)
	// Schedules lists the recovery schedules to fan out at size k; nil uses
	// the paper's default schedule only.
	Schedules func(k int) [][]int
	// Options for each synthesis attempt (Schedule is overridden).
	Options core.Options
	// Workers bounds the parallel attempts per rung (0 = GOMAXPROCS).
	Workers int
}

// Climb synthesizes instances for k = from..to, stopping early when a rung
// fails (the lightweight method's "as long as the available computational
// resources permit" — here, as long as the heuristic keeps succeeding).
func Climb(cfg Config, from, to int) []Instance {
	var out []Instance
	for k := from; k <= to; k++ {
		start := time.Now()
		inst := Instance{K: k}
		sp := cfg.BuildSpec(k)
		scheds := [][]int{nil}
		if cfg.Schedules != nil {
			scheds = cfg.Schedules(k)
		}
		factory := func() (core.Engine, error) { return cfg.NewEngine(sp) }
		best, _, err := core.TrySchedules(factory, cfg.Options, scheds, cfg.Workers)
		if err != nil {
			inst.Err = err
		} else {
			inst.Schedule = best.Schedule
			inst.Result = best.Result
		}
		inst.Elapsed = time.Since(start)
		out = append(out, inst)
		if inst.Err != nil {
			break
		}
	}
	return out
}

// RelGroup is a transition group in relative (ring-position independent)
// form: readable offsets relative to the owning process, with the values
// read and written.
type RelGroup struct {
	ReadOffsets  []int // e.g. [-1, 0, +1]
	ReadVals     []int // parallel to ReadOffsets
	WriteOffsets []int
	WriteVals    []int
}

// ExtractRing converts the groups of process proc in a k-ring into relative
// form. Ring variable i must be variable ID i, owned by process i.
func ExtractRing(sp *protocol.Spec, groups []protocol.Group, proc, k int) ([]RelGroup, error) {
	p := &sp.Procs[proc]
	var out []RelGroup
	for _, g := range groups {
		if g.Proc != proc {
			continue
		}
		rg := RelGroup{
			ReadOffsets:  make([]int, len(p.Reads)),
			ReadVals:     append([]int(nil), g.ReadVals...),
			WriteOffsets: make([]int, len(p.Writes)),
			WriteVals:    append([]int(nil), g.WriteVals...),
		}
		for i, id := range p.Reads {
			off, err := relOffset(id, proc, k)
			if err != nil {
				return nil, err
			}
			rg.ReadOffsets[i] = off
		}
		for i, id := range p.Writes {
			off, err := relOffset(id, proc, k)
			if err != nil {
				return nil, err
			}
			rg.WriteOffsets[i] = off
		}
		out = append(out, rg)
	}
	return out, nil
}

// relOffset maps variable id to its signed ring offset from proc.
func relOffset(id, proc, k int) (int, error) {
	if id >= k {
		return 0, fmt.Errorf("lightweight: variable %d is not a ring variable", id)
	}
	d := ((id-proc)%k + k) % k
	if d > k/2 {
		d -= k
	}
	if d < -2 || d > 2 {
		return 0, fmt.Errorf("lightweight: offset %d too far for a ring locality", d)
	}
	return d, nil
}

// instantiate builds the concrete group of process proc in a k2-ring from a
// relative group. The target spec's read/write orders are respected.
func instantiate(sp2 *protocol.Spec, rg RelGroup, proc, k2 int) protocol.Group {
	p := &sp2.Procs[proc]
	g := protocol.Group{
		Proc:      proc,
		ReadVals:  make([]int, len(p.Reads)),
		WriteVals: make([]int, len(p.Writes)),
	}
	for i, off := range rg.ReadOffsets {
		id := ((proc+off)%k2 + k2) % k2
		g.ReadVals[indexOf(p.Reads, id)] = rg.ReadVals[i]
	}
	for i, off := range rg.WriteOffsets {
		id := ((proc+off)%k2 + k2) % k2
		g.WriteVals[indexOf(p.Writes, id)] = rg.WriteVals[i]
	}
	return g
}

func indexOf(ids []int, id int) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	panic("lightweight: instantiated variable outside the target locality")
}

// GeneralizeRing lifts a synthesized k-ring protocol to k2 processes:
// processes 0..split-1 keep their own (relative) rules, and every process
// from split onward uses the relative rule of the template process. The
// caller should verify the result — generalization is a conjecture, exactly
// as the paper frames it.
func GeneralizeRing(buildSpec func(int) *protocol.Spec, k int, groups []protocol.Group,
	split, template, k2 int) ([]protocol.Group, error) {
	if k2 < k {
		return nil, fmt.Errorf("lightweight: cannot shrink from %d to %d processes", k, k2)
	}
	sp := buildSpec(k)
	sp2 := buildSpec(k2)
	var out []protocol.Group
	for proc := 0; proc < split; proc++ {
		rgs, err := ExtractRing(sp, groups, proc, k)
		if err != nil {
			return nil, err
		}
		for _, rg := range rgs {
			out = append(out, instantiate(sp2, rg, proc, k2))
		}
	}
	tmpl, err := ExtractRing(sp, groups, template, k)
	if err != nil {
		return nil, err
	}
	for proc := split; proc < k2; proc++ {
		for _, rg := range tmpl {
			out = append(out, instantiate(sp2, rg, proc, k2))
		}
	}
	return out, nil
}

// AutoGeneralizeRing picks split and template automatically from the
// rotation-symmetry classes of the synthesized protocol: the largest class
// extends to fill the new ring, everything before it keeps its own rules.
// It fails when the class structure has no contiguous extensible suffix —
// the situation the paper reports for the (asymmetric) matching protocol.
func AutoGeneralizeRing(buildSpec func(int) *protocol.Spec, k int, groups []protocol.Group,
	k2 int) ([]protocol.Group, error) {
	sp := buildSpec(k)
	classes, err := symmetry.Classes(sp, groups, symmetry.Rotation(sp, k))
	if err != nil {
		return nil, err
	}
	best := -1
	for i, c := range classes {
		if best < 0 || len(c) > len(classes[best]) {
			best = i
		}
	}
	cls := classes[best]
	if len(cls) < 2 {
		return nil, fmt.Errorf("lightweight: no extensible symmetry class (classes %v); the protocol is asymmetric", classes)
	}
	// The class must be the contiguous suffix split..k-1.
	split := cls[0]
	for i, p := range cls {
		if p != split+i {
			return nil, fmt.Errorf("lightweight: largest class %v is not contiguous", cls)
		}
	}
	if cls[len(cls)-1] != k-1 {
		return nil, fmt.Errorf("lightweight: largest class %v does not reach the end of the ring", cls)
	}
	return GeneralizeRing(buildSpec, k, groups, split, split, k2)
}
