// Package verify is a model checker for the stabilization properties the
// paper relies on: closure of the legitimate-state predicate, deadlock
// freedom, absence of non-progress cycles, and weak/strong convergence
// (Proposition II.1). It runs on any core.Engine, so both explicit and
// symbolic protocols can be checked, and it is used throughout the test
// suite to machine-check the heuristic's correct-by-construction claim.
package verify

import (
	"fmt"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// Verdict is the outcome of one property check.
type Verdict struct {
	OK      bool
	Reason  string         // human-readable explanation when !OK
	Witness protocol.State // a state witnessing the violation, if any
}

func ok() Verdict { return Verdict{OK: true} }

func fail(reason string, w protocol.State) Verdict {
	return Verdict{Reason: reason, Witness: w}
}

// Closure checks that I is closed in the protocol: no transition of gs
// leads from I to ¬I.
func Closure(e core.Engine, gs []core.Group) Verdict {
	I := e.Invariant()
	notI := e.Not(I)
	for _, g := range gs {
		if e.GroupFromTo(g, I, notI) {
			src := e.And(e.GroupSrc(g), I)
			w, _ := e.PickState(src)
			return fail(fmt.Sprintf("group %s leaves I", g.ProtocolGroup().Render(e.Spec())), w)
		}
	}
	return ok()
}

// DeadlockFree checks that no state outside I is a deadlock.
func DeadlockFree(e core.Engine, gs []core.Group) Verdict {
	d := core.Deadlocks(e, gs)
	if !e.IsEmpty(d) {
		w, _ := e.PickState(d)
		return fail(fmt.Sprintf("%v deadlock states outside I", e.States(d)), w)
	}
	return ok()
}

// CycleFree checks that δ|¬I has no non-progress cycles.
func CycleFree(e core.Engine, gs []core.Group) Verdict {
	sccs := e.CyclicSCCs(gs, e.Not(e.Invariant()))
	if len(sccs) > 0 {
		w, _ := e.PickState(sccs[0])
		return fail(fmt.Sprintf("%d non-progress SCCs outside I", len(sccs)), w)
	}
	return ok()
}

// StrongConvergence checks Proposition II.1: no deadlocks in ¬I and no
// non-progress cycles in δ|¬I.
func StrongConvergence(e core.Engine, gs []core.Group) Verdict {
	if v := DeadlockFree(e, gs); !v.OK {
		return v
	}
	return CycleFree(e, gs)
}

// WeakConvergence checks that from every state some computation reaches I:
// the backward-reachable set of I under gs must cover the state space.
func WeakConvergence(e core.Engine, gs []core.Group) Verdict {
	reach := e.Invariant()
	for {
		next := e.Or(reach, e.Pre(gs, reach))
		if e.Equal(next, reach) {
			break
		}
		reach = next
	}
	rest := e.Diff(e.Universe(), reach)
	if !e.IsEmpty(rest) {
		w, _ := e.PickState(rest)
		return fail(fmt.Sprintf("%v states cannot reach I", e.States(rest)), w)
	}
	return ok()
}

// StronglyStabilizing checks closure plus strong convergence.
func StronglyStabilizing(e core.Engine, gs []core.Group) Verdict {
	if v := Closure(e, gs); !v.OK {
		return v
	}
	return StrongConvergence(e, gs)
}

// WeaklyStabilizing checks closure plus weak convergence.
func WeaklyStabilizing(e core.Engine, gs []core.Group) Verdict {
	if v := Closure(e, gs); !v.OK {
		return v
	}
	return WeakConvergence(e, gs)
}

// Silent checks that no group is enabled inside I — the MM protocol of
// Section VI-A must satisfy this.
func Silent(e core.Engine, gs []core.Group) Verdict {
	en := e.And(e.EnabledSources(gs), e.Invariant())
	if !e.IsEmpty(en) {
		w, _ := e.PickState(en)
		return fail("a group is enabled inside I", w)
	}
	return ok()
}

// PreservesInvariantBehavior checks the output constraints of Problem
// III.1 on a synthesis result: every added and removed group must lie
// entirely outside I, which implies δpss|I = δp|I (a group with no source
// in I contributes no transition inside I).
func PreservesInvariantBehavior(e core.Engine, res *core.Result) Verdict {
	I := e.Invariant()
	for _, g := range res.Added {
		if !e.IsEmpty(e.And(e.GroupSrc(g), I)) {
			w, _ := e.PickState(e.And(e.GroupSrc(g), I))
			return fail(fmt.Sprintf("added group %s starts in I", g.ProtocolGroup().Render(e.Spec())), w)
		}
	}
	for _, g := range res.Removed {
		if !e.IsEmpty(e.And(e.GroupSrc(g), I)) {
			w, _ := e.PickState(e.And(e.GroupSrc(g), I))
			return fail(fmt.Sprintf("removed group %s starts in I", g.ProtocolGroup().Render(e.Spec())), w)
		}
	}
	return ok()
}

// RecoveryPath extracts a shortest concrete recovery execution of the
// protocol from the given state to some legitimate state: the sequence of
// states visited and, for each step, the group that takes it. ok is false
// when no computation of gs reaches I from the state.
func RecoveryPath(e core.Engine, gs []core.Group, from protocol.State) (states []protocol.State, steps []core.Group, ok bool) {
	I := e.Invariant()
	start := e.Singleton(from)
	if !e.IsEmpty(e.And(start, I)) {
		return []protocol.State{from}, nil, true
	}
	// Layered forward BFS until a layer touches I.
	layers := []core.Set{start}
	reached := start
	for {
		last := layers[len(layers)-1]
		next := e.Diff(e.Post(gs, last), reached)
		if e.IsEmpty(next) {
			return nil, nil, false
		}
		layers = append(layers, next)
		reached = e.Or(reached, next)
		if !e.IsEmpty(e.And(next, I)) {
			break
		}
	}
	// Walk backwards from a legitimate state in the last layer.
	k := len(layers) - 1
	cur := e.And(layers[k], I)
	curState, _ := e.PickState(cur)
	states = make([]protocol.State, k+1)
	steps = make([]core.Group, k)
	states[k] = curState
	for i := k; i > 0; i-- {
		target := e.Singleton(states[i])
		prev := e.And(e.Pre(gs, target), layers[i-1])
		prevState, okPick := e.PickState(prev)
		if !okPick {
			return nil, nil, false // should not happen: layers are connected
		}
		states[i-1] = prevState
		prevSingle := e.Singleton(prevState)
		for _, g := range gs {
			if e.GroupFromTo(g, prevSingle, target) {
				steps[i-1] = g
				break
			}
		}
	}
	return states, steps, true
}

// CycleWitness extracts a concrete non-progress cycle: a sequence of states
// s0, s1, …, sm with sm = s0, all inside the given SCC. Groups are
// deterministic per source state, so the walk is easy to steer.
func CycleWitness(e core.Engine, gs []core.Group, scc core.Set) []protocol.State {
	start, okPick := e.PickState(scc)
	if !okPick {
		return nil
	}
	var path []protocol.State
	var sets []core.Set
	cur := e.Singleton(start)
	for {
		st, _ := e.PickState(cur)
		// Check for a revisit, closing the cycle.
		for i, prev := range sets {
			if e.Equal(prev, cur) {
				return append(path[i:], path[i])
			}
		}
		path = append(path, st)
		sets = append(sets, cur)
		moved := false
		for _, g := range gs {
			if !e.GroupFromTo(g, cur, scc) {
				continue
			}
			next := e.And(e.Post([]core.Group{g}, cur), scc)
			if !e.IsEmpty(next) {
				cur = next
				moved = true
				break
			}
		}
		if !moved {
			return nil // not actually an SCC of gs
		}
	}
}
