package verify_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/verify"
)

func engine(t *testing.T, sp *protocol.Spec) *explicit.Engine {
	t.Helper()
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestDijkstraTokenRingIsStronglyStabilizing(t *testing.T) {
	// Dijkstra's theorem: the K-state token ring stabilizes when the domain
	// is at least the number of processes.
	for _, tc := range []struct{ k, dom int }{{3, 3}, {4, 4}, {4, 5}, {5, 5}} {
		e := engine(t, protocols.DijkstraTokenRing(tc.k, tc.dom))
		if v := verify.StronglyStabilizing(e, e.ActionGroups()); !v.OK {
			t.Errorf("Dijkstra TR(%d,%d): %s (witness %v)", tc.k, tc.dom, v.Reason, v.Witness)
		}
	}
}

func TestDijkstraTokenRingSmallDomainFails(t *testing.T) {
	// With dom < k the ring is NOT self-stabilizing (multiple tokens can
	// persist); the checker must find the violation.
	e := engine(t, protocols.DijkstraTokenRing(5, 3))
	if v := verify.StronglyStabilizing(e, e.ActionGroups()); v.OK {
		t.Error("Dijkstra TR(5,3) should not be strongly stabilizing")
	}
}

func TestNonStabilizingTokenRingDeadlocks(t *testing.T) {
	e := engine(t, protocols.TokenRing(4, 3))
	gs := e.ActionGroups()
	if v := verify.Closure(e, gs); !v.OK {
		t.Errorf("closure should hold: %s", v.Reason)
	}
	if v := verify.DeadlockFree(e, gs); v.OK {
		t.Error("non-stabilizing TR should have deadlocks")
	}
	if v := verify.CycleFree(e, gs); !v.OK {
		t.Errorf("paper: TR has no cycles outside S1, got %s", v.Reason)
	}
	if v := verify.WeakConvergence(e, gs); v.OK {
		t.Error("non-stabilizing TR should not even weakly converge")
	}
}

func TestEmptyProtocolVerdicts(t *testing.T) {
	e := engine(t, protocols.Matching(5))
	gs := e.ActionGroups()
	if len(gs) != 0 {
		t.Fatalf("empty protocol has %d groups", len(gs))
	}
	if v := verify.Closure(e, gs); !v.OK {
		t.Error("empty protocol is trivially closed")
	}
	if v := verify.Silent(e, gs); !v.OK {
		t.Error("empty protocol is trivially silent")
	}
	if v := verify.DeadlockFree(e, gs); v.OK {
		t.Error("empty protocol deadlocks everywhere outside I")
	}
}

func TestSilentDetectsEnabledGroup(t *testing.T) {
	// Dijkstra's ring is never silent: the token keeps moving inside I.
	e := engine(t, protocols.DijkstraTokenRing(4, 3))
	if v := verify.Silent(e, e.ActionGroups()); v.OK {
		t.Error("token ring should not be silent in I")
	}
}

func TestCycleWitnessOnCounter(t *testing.T) {
	sp := &protocol.Spec{
		Name: "counter",
		Vars: []protocol.Var{{Name: "x", Dom: 4}},
		Procs: []protocol.Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []protocol.Action{{
				Guard: protocol.True{},
				Assigns: []protocol.Assignment{{
					Var: 0, Expr: protocol.AddMod{A: protocol.V{ID: 0}, B: protocol.C{Val: 1}, Mod: 4},
				}},
			}},
		}},
		Invariant: protocol.False{},
	}
	e := engine(t, sp)
	gs := e.ActionGroups()
	sccs := e.CyclicSCCs(gs, e.Universe())
	if len(sccs) != 1 {
		t.Fatalf("want 1 SCC, got %d", len(sccs))
	}
	cyc := verify.CycleWitness(e, gs, sccs[0])
	// The counter's only cycle visits all 4 states and returns: 5 entries.
	if len(cyc) != 5 {
		t.Fatalf("cycle witness %v, want length 5", cyc)
	}
	for i := 1; i < len(cyc); i++ {
		want := (cyc[i-1][0] + 1) % 4
		if cyc[i][0] != want {
			t.Fatalf("witness step %d: %v -> %v is not a transition", i, cyc[i-1], cyc[i])
		}
	}
}

func TestPreservesInvariantBehavior(t *testing.T) {
	e := engine(t, protocols.TokenRing(4, 3))
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.PreservesInvariantBehavior(e, res); !v.OK {
		t.Errorf("synthesis result violates Problem III.1 constraints: %s", v.Reason)
	}
	if len(res.Added) == 0 {
		t.Error("expected added recovery groups")
	}
}

func TestRecoveryPath(t *testing.T) {
	e := engine(t, protocols.DijkstraTokenRing(4, 4))
	gs := e.ActionGroups()
	sp := e.Spec()

	// From a heavily corrupted state, a shortest recovery must exist, end
	// in I, and every step must be a real transition of the named group.
	from := protocol.State{3, 1, 2, 0}
	states, steps, ok := verify.RecoveryPath(e, gs, from)
	if !ok {
		t.Fatal("no recovery path found")
	}
	if len(states) != len(steps)+1 {
		t.Fatalf("%d states for %d steps", len(states), len(steps))
	}
	if !sp.Invariant.EvalBool(states[len(states)-1]) {
		t.Fatal("path does not end in I")
	}
	if sp.Invariant.EvalBool(states[0]) {
		t.Fatal("start state should be illegitimate")
	}
	for i, g := range steps {
		pg := g.ProtocolGroup()
		if !pg.Matches(sp, states[i]) {
			t.Fatalf("step %d: group not enabled at %v", i, states[i])
		}
		dst := make(protocol.State, len(sp.Vars))
		pg.Apply(sp, states[i], dst)
		for j := range dst {
			if dst[j] != states[i+1][j] {
				t.Fatalf("step %d: %v -> %v is not the group's transition", i, states[i], states[i+1])
			}
		}
	}

	// A legitimate start needs no steps.
	states, steps, ok = verify.RecoveryPath(e, gs, protocol.State{2, 2, 2, 2})
	if !ok || len(steps) != 0 || len(states) != 1 {
		t.Fatalf("legitimate start: states=%v steps=%v ok=%v", states, steps, ok)
	}

	// The non-stabilizing TR has states with no recovery at all.
	e2 := engine(t, protocols.TokenRing(4, 3))
	if _, _, ok := verify.RecoveryPath(e2, e2.ActionGroups(), protocol.State{0, 0, 1, 2}); ok {
		t.Fatal("deadlock state should have no recovery path")
	}
}

// TestRecoveryPathIsShortest cross-checks path length against the rank of
// the start state (rank = shortest distance to I by definition).
func TestRecoveryPathIsShortest(t *testing.T) {
	e := engine(t, protocols.DijkstraTokenRing(4, 3))
	gs := e.ActionGroups()
	ranks, infinite := core.ComputeRanks(e, gs)
	if !e.IsEmpty(infinite) {
		t.Fatal("Dijkstra TR should have no rank-∞ states")
	}
	for r := 1; r < len(ranks); r++ {
		st, okPick := e.PickState(ranks[r])
		if !okPick {
			continue
		}
		states, _, ok := verify.RecoveryPath(e, gs, st)
		if !ok {
			t.Fatalf("no path from rank-%d state %v", r, st)
		}
		if got := len(states) - 1; got != r {
			t.Errorf("path length %d from rank-%d state %v", got, r, st)
		}
	}
}

func TestWeakConvergenceOnWeakResult(t *testing.T) {
	e := engine(t, protocols.Matching(4))
	res, err := core.AddConvergence(e, core.Options{Convergence: core.Weak})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.WeaklyStabilizing(e, res.Protocol); !v.OK {
		t.Errorf("weak synthesis result not weakly stabilizing: %s", v.Reason)
	}
}
