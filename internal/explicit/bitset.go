// Package explicit is the explicit-state engine: state predicates are
// bitsets over dense mixed-radix state indices, transition-group images are
// word-level shift kernels (every group is a uniform index translation
// dst = src + Δ), and cycles are found with an iterative Tarjan SCC or a
// trim-based parallel forward-backward search (SetSCCAlgorithm). It
// implements core.Engine for state spaces that fit in memory and serves as
// the differential-testing oracle for the symbolic engine.
package explicit

import "math/bits"

// Bitset is a fixed-size set of state indices. Sets handed across the
// core.Engine boundary behave as immutable values: operations allocate a
// fresh result. The in-place primitives further down exist for the
// engine's internal kernels and for callers that own their sets (the
// core.MutableSets capability).
type Bitset struct {
	words []uint64
	n     uint64 // number of valid bits
}

// NewBitset returns an empty bitset over n states.
func NewBitset(n uint64) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (b *Bitset) Len() uint64 { return b.n }

// Get reports whether index i is in the set.
func (b *Bitset) Get(i uint64) bool { return b.words[i/64]>>(i%64)&1 == 1 }

// Set adds index i (in-place; used only while constructing a fresh set).
func (b *Bitset) Set(i uint64) { b.words[i/64] |= 1 << (i % 64) }

// Clear removes index i (in-place; used only while constructing).
func (b *Bitset) Clear(i uint64) { b.words[i/64] &^= 1 << (i % 64) }

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Count returns the number of elements.
func (b *Bitset) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (b *Bitset) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Or returns b ∪ o.
func (b *Bitset) Or(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] | o.words[i]
	}
	return c
}

// And returns b ∩ o.
func (b *Bitset) And(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] & o.words[i]
	}
	return c
}

// Diff returns b \ o.
func (b *Bitset) Diff(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] &^ o.words[i]
	}
	return c
}

// Not returns the complement of b within the universe.
func (b *Bitset) Not() *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = ^b.words[i]
	}
	c.trim()
	return c
}

// trim zeroes the bits above n in the last word.
func (b *Bitset) trim() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// ForEach calls f for every element in ascending order; f returning false
// stops the iteration early.
func (b *Bitset) ForEach(f func(i uint64) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := uint64(bits.TrailingZeros64(w))
			if !f(uint64(wi)*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// First returns the smallest element, or ok=false if empty.
func (b *Bitset) First() (uint64, bool) {
	for wi, w := range b.words {
		if w != 0 {
			return uint64(wi)*64 + uint64(bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}

// --- In-place word-level primitives --------------------------------------
//
// The methods below mutate their receiver. They exist for the hot paths of
// the engine (image kernels, rank fixpoints, SCC trims), where allocating a
// fresh bitset per set operation dominates the profile. Callers must own
// the receiver: sets handed out by the engine (Universe, Invariant, cached
// group sources) are shared and must never be mutated.

// ClearAll removes every element (in place).
func (b *Bitset) ClearAll() *Bitset {
	for i := range b.words {
		b.words[i] = 0
	}
	return b
}

// CopyFrom makes b an exact copy of o (same universe size required).
func (b *Bitset) CopyFrom(o *Bitset) *Bitset {
	copy(b.words, o.words)
	return b
}

// OrInPlace sets b = b ∪ o.
func (b *Bitset) OrInPlace(o *Bitset) *Bitset {
	for i, w := range o.words {
		b.words[i] |= w
	}
	return b
}

// AndInto sets b = a ∩ o. b may alias a or o.
func (b *Bitset) AndInto(a, o *Bitset) *Bitset {
	for i := range b.words {
		b.words[i] = a.words[i] & o.words[i]
	}
	return b
}

// AndNotInto sets b = a \ o. b may alias a or o.
func (b *Bitset) AndNotInto(a, o *Bitset) *Bitset {
	for i := range b.words {
		b.words[i] = a.words[i] &^ o.words[i]
	}
	return b
}

// Intersects reports whether b ∩ o is non-empty, without materializing the
// intersection.
func (b *Bitset) Intersects(o *Bitset) bool {
	for i, w := range b.words {
		if w&o.words[i] != 0 {
			return true
		}
	}
	return false
}

// IntersectsBoth reports whether b ∩ o1 ∩ o2 is non-empty.
func (b *Bitset) IntersectsBoth(o1, o2 *Bitset) bool {
	for i, w := range b.words {
		if w&o1.words[i]&o2.words[i] != 0 {
			return true
		}
	}
	return false
}

// wordRange returns the indices of b's first and last non-zero words, or
// ok=false when the set is empty. Callers amortize it over many shift
// kernels to bound their scans to the live window.
func (b *Bitset) wordRange() (lo, hi int, ok bool) {
	lo = -1
	for i, w := range b.words {
		if w != 0 {
			if lo < 0 {
				lo = i
			}
			hi = i
		}
	}
	return lo, hi, lo >= 0
}

// OrShiftMasked sets b |= { i+delta : i ∈ x } ∩ mask in a single word pass,
// with no intermediate set. b must not alias x or mask. The mask must be
// trimmed (no bits ≥ n), which holds for every engine-owned set, so the
// result needs no trim pass of its own.
func (b *Bitset) OrShiftMasked(x *Bitset, delta int64, mask *Bitset) *Bitset {
	return b.orShiftMaskedRange(x, delta, mask, 0, len(x.words)-1)
}

// orShiftMaskedRange is OrShiftMasked restricted to x's non-zero word window
// [xlo, xhi] (from x.wordRange): only output words that can receive a bit
// are touched, so a localized x costs O(window) instead of O(universe).
func (b *Bitset) orShiftMaskedRange(x *Bitset, delta int64, mask *Bitset, xlo, xhi int) *Bitset {
	w, s, m := b.words, x.words, mask.words
	if delta >= 0 {
		q := int(delta / 64)
		r := uint(delta % 64)
		// Output word i reads s[i-q] (and s[i-q-1] when r≠0), so only
		// i ∈ [xlo+q, xhi+q(+1)] can change.
		hi := xhi + q
		if r != 0 {
			hi++
		}
		if hi > len(w)-1 {
			hi = len(w) - 1
		}
		if r == 0 {
			for i := hi; i >= xlo+q; i-- {
				w[i] |= s[i-q] & m[i]
			}
		} else {
			for i := hi; i >= xlo+q; i-- {
				var v uint64
				if i-q <= xhi {
					v = s[i-q] << r
				}
				if i-q-1 >= 0 {
					v |= s[i-q-1] >> (64 - r)
				}
				w[i] |= v & m[i]
			}
		}
		return b
	}
	d := uint64(-delta)
	q := int(d / 64)
	r := uint(d % 64)
	// Output word i reads s[i+q] (and s[i+q+1] when r≠0), so only
	// i ∈ [xlo-q(-1), xhi-q] can change.
	lo := xlo - q
	if r != 0 {
		lo--
	}
	if lo < 0 {
		lo = 0
	}
	if r == 0 {
		for i := lo; i <= xhi-q; i++ {
			w[i] |= s[i+q] & m[i]
		}
	} else {
		for i := lo; i <= xhi-q && i < len(w); i++ {
			var v uint64
			if i+q >= xlo {
				v = s[i+q] >> r
			}
			if i+q+1 < len(s) {
				v |= s[i+q+1] << (64 - r)
			}
			w[i] |= v & m[i]
		}
	}
	return b
}

// ShiftIntersects reports whether shift(b, delta) ∩ m1 (∩ m2 when m2 is
// non-nil) is non-empty, without materializing the shifted set. The scan
// exits on the first intersecting word, so on dense inputs it is O(1) like
// the early-exiting per-state scan it replaces. Masks must be trimmed.
func (b *Bitset) ShiftIntersects(delta int64, m1, m2 *Bitset) bool {
	return b.shiftIntersectsRange(delta, m1, m2, 0, len(b.words)-1)
}

// shiftIntersectsRange is ShiftIntersects restricted to b's non-zero word
// window [xlo, xhi] (from b.wordRange).
func (b *Bitset) shiftIntersectsRange(delta int64, m1, m2 *Bitset, xlo, xhi int) bool {
	s := b.words
	if delta >= 0 {
		q := int(delta / 64)
		r := uint(delta % 64)
		hi := xhi + q
		if r != 0 {
			hi++
		}
		if hi > len(s)-1 {
			hi = len(s) - 1
		}
		for i := hi; i >= xlo+q; i-- {
			var v uint64
			if i-q <= xhi {
				v = s[i-q] << r
			}
			if r != 0 && i-q-1 >= 0 {
				v |= s[i-q-1] >> (64 - r)
			}
			v &= m1.words[i]
			if m2 != nil {
				v &= m2.words[i]
			}
			if v != 0 {
				return true
			}
		}
		return false
	}
	d := uint64(-delta)
	q := int(d / 64)
	r := uint(d % 64)
	lo := xlo - q
	if r != 0 {
		lo--
	}
	if lo < 0 {
		lo = 0
	}
	for i := lo; i <= xhi-q && i < len(s); i++ {
		var v uint64
		if i+q >= xlo {
			v = s[i+q] >> r
		}
		if r != 0 && i+q+1 < len(s) {
			v |= s[i+q+1] << (64 - r)
		}
		v &= m1.words[i]
		if m2 != nil {
			v &= m2.words[i]
		}
		if v != 0 {
			return true
		}
	}
	return false
}

// ShiftInto sets b = { i+delta : i ∈ src } ∩ [0, n): every element of src
// translated by the signed offset delta, with out-of-range results dropped.
// b may alias src (the word traversal order makes the in-place shift safe
// in both directions). This is the engine's image kernel: because every
// transition group is a uniform index translation dst = src + Δ, a whole
// group image is one word-level shift.
func (b *Bitset) ShiftInto(src *Bitset, delta int64) *Bitset {
	w, s := b.words, src.words
	if delta >= 0 {
		q := int(delta / 64)
		r := uint(delta % 64)
		// High-to-low: reads are at indices ≤ the write index, so aliasing
		// src is safe.
		if r == 0 {
			for i := len(w) - 1; i >= 0; i-- {
				if i-q >= 0 {
					w[i] = s[i-q]
				} else {
					w[i] = 0
				}
			}
		} else {
			for i := len(w) - 1; i >= 0; i-- {
				var v uint64
				if i-q >= 0 {
					v = s[i-q] << r
				}
				if i-q-1 >= 0 {
					v |= s[i-q-1] >> (64 - r)
				}
				w[i] = v
			}
		}
		b.trim()
		return b
	}
	d := uint64(-delta)
	q := int(d / 64)
	r := uint(d % 64)
	// Low-to-high: reads are at indices ≥ the write index.
	if r == 0 {
		for i := 0; i < len(w); i++ {
			if i+q < len(s) {
				w[i] = s[i+q]
			} else {
				w[i] = 0
			}
		}
	} else {
		for i := 0; i < len(w); i++ {
			var v uint64
			if i+q < len(s) {
				v = s[i+q] >> r
			}
			if i+q+1 < len(s) {
				v |= s[i+q+1] << (64 - r)
			}
			w[i] = v
		}
	}
	return b
}
