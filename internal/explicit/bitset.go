// Package explicit is the explicit-state engine: state predicates are
// bitsets over dense mixed-radix state indices, transition groups are
// expanded on the fly, and cycles are found with an iterative Tarjan SCC.
// It implements core.Engine for state spaces that fit in memory and serves
// as the differential-testing oracle for the symbolic engine.
package explicit

import "math/bits"

// Bitset is a fixed-size set of state indices. Bitsets are treated as
// immutable values by the engine: operations allocate a fresh result.
type Bitset struct {
	words []uint64
	n     uint64 // number of valid bits
}

// NewBitset returns an empty bitset over n states.
func NewBitset(n uint64) *Bitset {
	return &Bitset{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the universe size.
func (b *Bitset) Len() uint64 { return b.n }

// Get reports whether index i is in the set.
func (b *Bitset) Get(i uint64) bool { return b.words[i/64]>>(i%64)&1 == 1 }

// Set adds index i (in-place; used only while constructing a fresh set).
func (b *Bitset) Set(i uint64) { b.words[i/64] |= 1 << (i % 64) }

// Clear removes index i (in-place; used only while constructing).
func (b *Bitset) Clear(i uint64) { b.words[i/64] &^= 1 << (i % 64) }

// Clone returns a copy of b.
func (b *Bitset) Clone() *Bitset {
	c := &Bitset{words: make([]uint64, len(b.words)), n: b.n}
	copy(c.words, b.words)
	return c
}

// Count returns the number of elements.
func (b *Bitset) Count() uint64 {
	var c uint64
	for _, w := range b.words {
		c += uint64(bits.OnesCount64(w))
	}
	return c
}

// IsEmpty reports whether the set has no elements.
func (b *Bitset) IsEmpty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// Equal reports set equality.
func (b *Bitset) Equal(o *Bitset) bool {
	if b.n != o.n {
		return false
	}
	for i, w := range b.words {
		if w != o.words[i] {
			return false
		}
	}
	return true
}

// Or returns b ∪ o.
func (b *Bitset) Or(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] | o.words[i]
	}
	return c
}

// And returns b ∩ o.
func (b *Bitset) And(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] & o.words[i]
	}
	return c
}

// Diff returns b \ o.
func (b *Bitset) Diff(o *Bitset) *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = b.words[i] &^ o.words[i]
	}
	return c
}

// Not returns the complement of b within the universe.
func (b *Bitset) Not() *Bitset {
	c := NewBitset(b.n)
	for i := range b.words {
		c.words[i] = ^b.words[i]
	}
	c.trim()
	return c
}

// trim zeroes the bits above n in the last word.
func (b *Bitset) trim() {
	if rem := b.n % 64; rem != 0 && len(b.words) > 0 {
		b.words[len(b.words)-1] &= (1 << rem) - 1
	}
}

// ForEach calls f for every element in ascending order; f returning false
// stops the iteration early.
func (b *Bitset) ForEach(f func(i uint64) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := uint64(bits.TrailingZeros64(w))
			if !f(uint64(wi)*64 + bit) {
				return
			}
			w &= w - 1
		}
	}
}

// First returns the smallest element, or ok=false if empty.
func (b *Bitset) First() (uint64, bool) {
	for wi, w := range b.words {
		if w != 0 {
			return uint64(wi)*64 + uint64(bits.TrailingZeros64(w)), true
		}
	}
	return 0, false
}
