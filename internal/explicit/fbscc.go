package explicit

import (
	"runtime"
	"sync"

	"stsyn/internal/core"
)

// SCCAlgorithm selects the explicit engine's cycle-detection algorithm,
// mirroring the symbolic engine's SetSCCAlgorithm design.
type SCCAlgorithm int

const (
	// Auto — the default — picks per engine instance by state count:
	// Tarjan below autoFBStateThreshold, ForwardBackward at or above it.
	// The two algorithms return identical SCC sets (enforced by the
	// fb-vs-tarjan differential battery), so the choice is purely a
	// performance decision; the measured crossover is tabulated in
	// DESIGN.md ("Choosing the SCC algorithm").
	Auto SCCAlgorithm = iota
	// Tarjan is the iterative per-state depth-first search — the oracle
	// the set-based search is differentially tested against.
	Tarjan
	// ForwardBackward first trims `within` to its cycle core with
	// interleaved forward/backward fixpoints over the word-level shift
	// kernels, then decomposes the core with Fleischer-Hendrickson-Pinar
	// forward-backward reachability, recursing on the three independent
	// subproblems of each pivot via a bounded goroutine pool.
	ForwardBackward
)

// autoFBStateThreshold is the state count at which Auto switches from
// Tarjan to ForwardBackward. Measured with `stsyn-bench -fig scc-crossover`
// (the table lives in DESIGN.md, "Choosing the SCC algorithm"): up to
// ~1.8*10^5 states the two are within noise of each other on the coloring
// family while Tarjan wins outright on SCC-rich graphs (13x on
// matching-10), so Auto stays with Tarjan through that whole range; at
// ~5*10^5 states forward-backward's word-level kernels pull ahead
// (coloring-12: 343ms vs 258ms of SCC time). The threshold sits above the
// largest measured instance where FB can lose. Graph shape still matters
// more than size on matching-type graphs — SetSCCAlgorithm(Tarjan) is the
// override for those.
const autoFBStateThreshold = 250_000

// String returns the name the CLI and service use for the algorithm.
func (a SCCAlgorithm) String() string {
	switch a {
	case ForwardBackward:
		return "fb"
	case Tarjan:
		return "tarjan"
	default:
		return "auto"
	}
}

// SetSCCAlgorithm overrides the algorithm CyclicSCCs runs (default Auto).
func (e *Engine) SetSCCAlgorithm(a SCCAlgorithm) { e.sccAlg = a }

// SCCAlgorithm returns the selected cycle-detection algorithm.
func (e *Engine) SCCAlgorithm() SCCAlgorithm { return e.sccAlg }

// effectiveSCC resolves Auto to the algorithm this engine actually runs.
// The choice depends only on the engine's state count, so every node of a
// distributed search resolves it identically.
func (e *Engine) effectiveSCC() SCCAlgorithm {
	if e.sccAlg != Auto {
		return e.sccAlg
	}
	if e.n >= autoFBStateThreshold {
		return ForwardBackward
	}
	return Tarjan
}

// SCCAlgorithmName renders the selection for stats: an explicit choice by
// its name, Auto with its resolution ("auto(tarjan)").
func (e *Engine) SCCAlgorithmName() string {
	if e.sccAlg == Auto {
		return "auto(" + e.effectiveSCC().String() + ")"
	}
	return e.sccAlg.String()
}

// materialGroups converts gs to engine groups with their source and
// destination caches materialized up front (the SCC worker pool reads
// srcSet and dstSet concurrently, so the lazy fill must happen here).
func (e *Engine) materialGroups(gs []core.Group) []*group {
	groups := make([]*group, 0, len(gs))
	for _, g := range gs {
		gg := g.(*group)
		e.sources(gg)
		e.dests(gg)
		groups = append(groups, gg)
	}
	return groups
}

// trimCore trims w to its cycle core: the greatest subset in which every
// state has both a successor and a predecessor inside the subset. Every
// cyclic SCC lies entirely within the core, so any SCC algorithm may search
// the core instead of w. In the common case — the heuristic keeps the
// recovery graph acyclic — the core empties out after a few word-level
// fixpoint rounds and the search is skipped entirely. Returns nil when
// canceled.
func (e *Engine) trimCore(groups []*group, w *Bitset) *Bitset {
	cc := w.Clone()
	hasSucc := NewBitset(e.n)
	hasPred := NewBitset(e.n)
	for {
		if e.canceled() {
			return nil
		}
		hasSucc.ClearAll()
		hasPred.ClearAll()
		for _, gg := range groups {
			// Pre(g, cc): states of src(g) whose successor stays in cc;
			// Post(g, cc): states reached from cc ∩ src(g). Sparse groups
			// take the per-state scan, like the Pre/Post kernels.
			if e.sparse(gg) {
				e.preRef(gg, cc, hasSucc)
				e.postRef(gg, cc, hasPred)
				continue
			}
			hasSucc.OrShiftMasked(cc, -gg.sdelta, gg.srcSet)
			hasPred.OrShiftMasked(cc, gg.sdelta, gg.dstSet)
		}
		hasSucc.AndInto(hasSucc, hasPred)
		hasSucc.AndInto(hasSucc, cc)
		if hasSucc.Equal(cc) {
			return cc
		}
		cc.CopyFrom(hasSucc)
	}
}

// fbDecompose is the Fleischer-Hendrickson-Pinar forward-backward
// decomposition of the (non-empty) cycle core cc. Unlike Tarjan, which
// walks one state at a time, every step here is a word-level kernel over
// whole bitsets, and independent subproblems run concurrently.
func (e *Engine) fbDecompose(groups []*group, cc *Bitset) []core.Set {
	// Sources of Δ=0 groups: the only way a single state forms a cyclic
	// component.
	var selfLoops *Bitset
	for _, gg := range groups {
		if gg.sdelta == 0 {
			if selfLoops == nil {
				selfLoops = NewBitset(e.n)
			}
			selfLoops.OrInPlace(gg.srcSet)
		}
	}

	var (
		mu      sync.Mutex
		results []core.Set
		sizeSum int
	)
	emit := func(scc *Bitset) {
		mu.Lock()
		results = append(results, scc)
		sizeSum += int(scc.Count())
		mu.Unlock()
	}

	// Reusable closure/frontier buffers: the decomposition runs one pair of
	// reachability searches per pivot, and allocating the working sets fresh
	// each time dominates the profile on SCC-rich graphs.
	var pool sync.Pool
	getBuf := func() *Bitset {
		if b, ok := pool.Get().(*Bitset); ok {
			return b
		}
		return NewBitset(e.n)
	}
	putBuf := func(b *Bitset) { pool.Put(b) }

	// filter keeps the groups with at least one transition inside v (both
	// endpoints): shift(v, −Δ) ∩ src(g) ∩ v ≠ ∅, an early-exiting word scan.
	// Groups outside cannot contribute to reachability within v, and the
	// per-subproblem lists shrink geometrically as the recursion descends —
	// without this every subproblem pays for the whole group set.
	filter := func(gs []*group, v *Bitset) []*group {
		out := make([]*group, 0, len(gs))
		vlo, vhi, ok := v.wordRange()
		if !ok {
			return out
		}
		for _, gg := range gs {
			keep := false
			if e.sparse(gg) {
				keep = e.groupFromToRef(gg, v, v)
			} else {
				keep = v.shiftIntersectsRange(-gg.sdelta, gg.srcSet, v, vlo, vhi)
			}
			if keep {
				out = append(out, gg)
			}
		}
		return out
	}

	type task struct {
		v  *Bitset
		gs []*group
	}

	nw := e.workers
	if nw == 0 {
		nw = runtime.GOMAXPROCS(0)
	}
	// Tokens for the extra workers: with nw = 1 the pool degenerates to a
	// purely sequential recursion on the local worklist.
	sem := make(chan struct{}, nw-1)
	var wg sync.WaitGroup
	var run func(work []task)
	run = func(work []task) {
		defer wg.Done()
		for len(work) > 0 {
			t := work[len(work)-1]
			work = work[:len(work)-1]
			if e.canceled() {
				return
			}
			v, gs := t.v, filter(t.gs, t.v)
			pivot, ok := v.First()
			if !ok {
				putBuf(v)
				continue
			}
			f := e.fbReach(gs, v, pivot, false, getBuf, putBuf)
			b := e.fbReach(gs, v, pivot, true, getBuf, putBuf)
			scc := NewBitset(e.n).AndInto(f, b)
			if scc.Count() > 1 || (selfLoops != nil && selfLoops.Get(pivot)) {
				emit(scc)
			}
			// The three subproblems are independent: no SCC crosses the
			// boundary of a forward or backward closure. Reuse v, f and b
			// as their own remainders (rest before f/b are clobbered).
			rest := v.AndNotInto(v, f)
			rest.AndNotInto(rest, b)
			fRem := f.AndNotInto(f, scc)
			bRem := b.AndNotInto(b, scc)
			for _, sub := range []*Bitset{fRem, bRem, rest} {
				if sub.IsEmpty() {
					putBuf(sub)
					continue
				}
				select {
				case sem <- struct{}{}:
					wg.Add(1)
					//lint:ignore goroleak run defers wg.Done at its top, one call below the literal; the intra-procedural join analysis cannot see through the call
					go func(t task) {
						defer func() { <-sem }()
						run([]task{t})
					}(task{sub, gs})
				default:
					work = append(work, task{sub, gs})
				}
			}
		}
	}
	wg.Add(1)
	run([]task{{cc, groups}})
	wg.Wait()

	e.stats.SCCCount += len(results)
	e.stats.SCCSizeTotal += sizeSum
	return results
}

// fbReach computes the forward (backward=false) or backward (backward=true)
// reachable closure of pivot within v, as a BFS whose levels are fused
// shift-mask kernels over the transition groups. The returned closure is a
// pool buffer owned by the caller; the other working sets go back to the
// pool on return.
func (e *Engine) fbReach(groups []*group, v *Bitset, pivot uint64, backward bool,
	getBuf func() *Bitset, putBuf func(*Bitset)) *Bitset {
	reach := getBuf().ClearAll()
	reach.Set(pivot)
	frontier := getBuf().ClearAll()
	frontier.Set(pivot)
	next := getBuf()
	defer func() {
		putBuf(frontier)
		putBuf(next)
	}()
	for {
		if e.canceled() {
			return reach
		}
		next.ClearAll()
		// The frontier is usually a localized slice of the state space;
		// bounding each kernel to its live word window makes a BFS level
		// cost O(groups × window) instead of O(groups × universe).
		flo, fhi, ok := frontier.wordRange()
		if !ok {
			break
		}
		// Bit bounds of the frontier window, for the O(1) per-group skip.
		floB, fhiB := int64(flo)*64, int64(fhi+1)*64
		for _, gg := range groups {
			// Skip groups that cannot touch the frontier: backward steps
			// read the frontier at src+Δ, forward steps at src.
			sLo, sHi := int64(gg.srcLoW)*64, int64(gg.srcHiW+1)*64
			if backward {
				if sLo+gg.sdelta >= fhiB || sHi+gg.sdelta <= floB {
					continue
				}
			} else if sLo >= fhiB || sHi <= floB {
				continue
			}
			switch {
			case e.sparse(gg):
				if backward {
					e.preRef(gg, frontier, next)
				} else {
					e.postRef(gg, frontier, next)
				}
			case backward:
				next.orShiftMaskedRange(frontier, -gg.sdelta, gg.srcSet, flo, fhi)
			default:
				next.orShiftMaskedRange(frontier, gg.sdelta, gg.dstSet, flo, fhi)
			}
		}
		next.AndInto(next, v)
		next.AndNotInto(next, reach)
		if next.IsEmpty() {
			break
		}
		reach.OrInPlace(next)
		frontier, next = next, frontier
	}
	return reach
}
