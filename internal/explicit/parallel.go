package explicit

import (
	"runtime"
	"sync"

	"stsyn/internal/core"
)

// The paper's conclusion lists "parallelization of our algorithms towards
// exploiting the computational resources of computer clusters" as future
// work. The explicit engine's image operations are embarrassingly parallel
// across transition groups: each worker scans a slice of the groups into a
// private bitset and the results are OR-reduced. The reduction is
// deterministic (bitwise OR is commutative and associative), so parallel
// and sequential engines produce identical results — the differential tests
// rely on that.

// parallelThreshold is the group count below which the sequential path is
// used (goroutine fan-out costs more than it saves on tiny protocols).
const parallelThreshold = 64

// SetParallelism sets the number of workers used by Pre/Post/EnabledSources
// (0 restores the default GOMAXPROCS; 1 forces sequential execution).
func (e *Engine) SetParallelism(workers int) {
	if workers < 0 {
		workers = 0
	}
	e.workers = workers
}

func (e *Engine) workerCount(ngroups int) int {
	w := e.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if ngroups < parallelThreshold || w <= 1 {
		return 1
	}
	if w > ngroups {
		w = ngroups
	}
	return w
}

// scanGroups partitions gs across workers; each worker folds its share into
// a private bitset via fold, and the privates are OR-merged.
func (e *Engine) scanGroups(gs []core.Group, fold func(g *group, acc *Bitset)) *Bitset {
	nw := e.workerCount(len(gs))
	if nw == 1 {
		acc := NewBitset(e.n)
		for _, g := range gs {
			fold(g.(*group), acc)
		}
		return acc
	}
	privates := make([]*Bitset, nw)
	var wg sync.WaitGroup
	chunk := (len(gs) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(gs) {
			hi = len(gs)
		}
		if lo >= hi {
			privates[w] = NewBitset(e.n)
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := NewBitset(e.n)
			for _, g := range gs[lo:hi] {
				fold(g.(*group), acc)
			}
			privates[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	out := privates[0]
	for _, p := range privates[1:] {
		if p != nil {
			for i := range out.words {
				out.words[i] |= p.words[i]
			}
		}
	}
	return out
}
