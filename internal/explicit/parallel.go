package explicit

import (
	"runtime"
	"sync"

	"stsyn/internal/core"
)

// The paper's conclusion lists "parallelization of our algorithms towards
// exploiting the computational resources of computer clusters" as future
// work. The explicit engine's image operations are embarrassingly parallel
// across transition groups: each worker scans a slice of the groups into a
// private bitset and the results are OR-reduced. The reduction is
// deterministic (bitwise OR is commutative and associative), so parallel
// and sequential engines produce identical results — the differential tests
// rely on that.

// parallelThreshold is the group count below which the sequential path is
// used (goroutine fan-out costs more than it saves on tiny protocols).
const parallelThreshold = 64

// SetParallelism sets the number of workers used by Pre/Post/EnabledSources
// and the forward-backward SCC search (0 restores the default GOMAXPROCS;
// 1 forces sequential execution).
func (e *Engine) SetParallelism(workers int) {
	if workers < 0 {
		workers = 0
	}
	e.workers = workers
}

// Workers returns the configured parallelism (0 = GOMAXPROCS).
func (e *Engine) Workers() int { return e.workers }

func (e *Engine) workerCount(ngroups int) int {
	w := e.workers
	if w == 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if ngroups < parallelThreshold || w <= 1 {
		return 1
	}
	if w > ngroups {
		w = ngroups
	}
	return w
}

// scanGroups partitions gs across workers; each worker folds its share into
// a private bitset via fold, and the privates are OR-merged pairwise. Chunks
// past the end of gs leave their private nil and take no part in the merge.
func (e *Engine) scanGroups(gs []core.Group, fold func(g *group, acc *Bitset)) *Bitset {
	nw := e.workerCount(len(gs))
	if nw == 1 {
		acc := NewBitset(e.n)
		for _, g := range gs {
			fold(g.(*group), acc)
		}
		return acc
	}
	privates := make([]*Bitset, nw)
	var wg sync.WaitGroup
	chunk := (len(gs) + nw - 1) / nw
	for w := 0; w < nw; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(gs) {
			hi = len(gs)
		}
		if lo >= hi {
			continue // leave privates[w] nil; the merge skips it
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			acc := NewBitset(e.n)
			for _, g := range gs[lo:hi] {
				fold(g.(*group), acc)
			}
			privates[w] = acc
		}(w, lo, hi)
	}
	wg.Wait()
	return mergePairwise(privates)
}

// mergePairwise OR-reduces the non-nil privates as a balanced binary tree:
// each round merges pairs at the current stride concurrently, so the
// reduction costs O(log nw) rounds of word-level ORs instead of a serial
// fold into privates[0].
func mergePairwise(privates []*Bitset) *Bitset {
	for stride := 1; stride < len(privates); stride *= 2 {
		var wg sync.WaitGroup
		for lo := 0; lo+stride < len(privates); lo += 2 * stride {
			a, b := privates[lo], privates[lo+stride]
			switch {
			case b == nil:
				// Nothing to merge in.
			case a == nil:
				privates[lo] = b
			default:
				wg.Add(1)
				go func(a, b *Bitset) {
					defer wg.Done()
					a.OrInPlace(b)
				}(a, b)
			}
		}
		wg.Wait()
	}
	// Worker 0's chunk is never empty (workerCount ≤ len(gs)), so the
	// reduction root is always materialized.
	return privates[0]
}
