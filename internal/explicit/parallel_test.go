package explicit

import (
	"testing"

	"stsyn/internal/protocols"
)

// TestParallelImagesMatchSequential checks that the parallel image
// operations are bit-identical to the sequential path on a protocol large
// enough to cross the fan-out threshold.
func TestParallelImagesMatchSequential(t *testing.T) {
	sp := protocols.Matching(7) // 7 × 54 candidate groups ≫ threshold
	seq, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	seq.SetParallelism(1)
	par, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	par.SetParallelism(4)

	sgs := seq.CandidateGroups()
	pgs := par.CandidateGroups()
	for _, x := range []struct {
		s, p *Bitset
		name string
	}{
		{seq.Invariant().(*Bitset), par.Invariant().(*Bitset), "inv"},
		{seq.Not(seq.Invariant()).(*Bitset), par.Not(par.Invariant()).(*Bitset), "¬inv"},
	} {
		if !seq.Pre(sgs, x.s).(*Bitset).Equal(par.Pre(pgs, x.p).(*Bitset)) {
			t.Errorf("Pre over %s differs between sequential and parallel", x.name)
		}
		if !seq.Post(sgs, x.s).(*Bitset).Equal(par.Post(pgs, x.p).(*Bitset)) {
			t.Errorf("Post over %s differs between sequential and parallel", x.name)
		}
	}
	if !seq.EnabledSources(sgs).(*Bitset).Equal(par.EnabledSources(pgs).(*Bitset)) {
		t.Error("EnabledSources differs between sequential and parallel")
	}
}

func TestWorkerCount(t *testing.T) {
	e, err := New(protocols.TokenRing(4, 3), 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetParallelism(8)
	if got := e.workerCount(4); got != 1 {
		t.Errorf("tiny group count should stay sequential, got %d workers", got)
	}
	if got := e.workerCount(1000); got != 8 {
		t.Errorf("workerCount(1000) = %d, want 8", got)
	}
	e.SetParallelism(1)
	if got := e.workerCount(1000); got != 1 {
		t.Errorf("forced sequential, got %d", got)
	}
	e.SetParallelism(0) // default
	if got := e.workerCount(1000); got < 1 {
		t.Errorf("default workers = %d", got)
	}
}

func BenchmarkPreSequential(b *testing.B) { benchPre(b, 1) }
func BenchmarkPreParallel(b *testing.B)   { benchPre(b, 0) }

func benchPre(b *testing.B, workers int) {
	sp := protocols.Matching(11)
	e, err := New(sp, 0)
	if err != nil {
		b.Fatal(err)
	}
	e.SetParallelism(workers)
	gs := e.CandidateGroups()
	x := e.Not(e.Invariant())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Pre(gs, x)
	}
}
