package explicit

import (
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/specgen"
)

// componentFingerprints renders a component list as a sorted slice of
// canonical strings, so two SCC searches can be compared regardless of the
// order they emit components in (the forward-backward pool is
// nondeterministic).
func componentFingerprints(sccs []core.Set) []string {
	out := make([]string, 0, len(sccs))
	for _, s := range sccs {
		b := s.(*Bitset)
		var elems []uint64
		b.ForEach(func(i uint64) bool {
			elems = append(elems, i)
			return true
		})
		out = append(out, fmt.Sprint(elems))
	}
	sort.Strings(out)
	return out
}

// checkSCCEquivalence asserts that the forward-backward search returns
// exactly the cyclic components Tarjan returns on sp, over several `within`
// restrictions, with the goroutine pool forced on.
func checkSCCEquivalence(t *testing.T, sp *protocol.Spec, seed int64) {
	t.Helper()
	tar, err := New(sp, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fb, err := New(sp, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	fb.SetSCCAlgorithm(ForwardBackward)
	fb.SetParallelism(4)

	gs := func(e *Engine) []core.Group {
		return append(e.ActionGroups(), e.CandidateGroups()...)
	}

	rng := rand.New(rand.NewSource(seed))
	withins := []*Bitset{
		tar.Universe().(*Bitset),
		tar.Not(tar.Invariant()).(*Bitset),
		tar.Invariant().(*Bitset),
		tar.Empty().(*Bitset),
	}
	for i := 0; i < 3; i++ {
		withins = append(withins, randomSubset(tar, rng))
	}

	for wi, w := range withins {
		want := componentFingerprints(tar.CyclicSCCs(gs(tar), w))
		got := componentFingerprints(fb.CyclicSCCs(gs(fb), w.Clone()))
		if len(got) != len(want) {
			t.Fatalf("within %d: component counts differ: fb %d vs tarjan %d", wi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("within %d: component %d differs: fb %s vs tarjan %s", wi, i, got[i], want[i])
			}
		}
	}
}

func TestFBSCCEquivalenceBuiltins(t *testing.T) {
	for _, tc := range []struct {
		name string
		sp   *protocol.Spec
	}{
		{"token-ring-4-3", protocols.TokenRing(4, 3)},
		{"dijkstra-token-ring", protocols.DijkstraTokenRing(4, 4)},
		{"matching-5", protocols.Matching(5)},
		{"coloring-5", protocols.Coloring(5)},
		{"two-ring", protocols.TwoRingTokenRing()},
	} {
		t.Run(tc.name, func(t *testing.T) { checkSCCEquivalence(t, tc.sp, 23) })
	}
}

// TestFBSCCEquivalenceRandom compares the two searches over the shared
// random-protocol corpus. Run under -race this also stresses the bounded
// goroutine pool against the lazy caches.
func TestFBSCCEquivalenceRandom(t *testing.T) {
	iters := int64(30)
	if testing.Short() {
		iters = 8
	}
	for seed := int64(0); seed < iters; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomSpec(rng, true)
		checkSCCEquivalence(t, sp, seed)
	}
}

// TestFBSCCSelfLoops pins the one asymmetry between the searches: a
// single-state component only counts as cyclic when the state has a
// self-loop, which the set-based search must reconstruct from the Δ=0
// groups.
func TestFBSCCSelfLoops(t *testing.T) {
	// x ranges over {0,1,2}; the action x:=x rewrites every state to itself.
	sp := &protocol.Spec{
		Name:      "self-loops",
		Vars:      []protocol.Var{{Name: "x", Dom: 3}},
		Invariant: protocol.True{},
		Procs: []protocol.Process{{
			Name:   "P0",
			Reads:  []int{0},
			Writes: []int{0},
			Actions: []protocol.Action{{
				Guard:   protocol.True{},
				Assigns: []protocol.Assignment{{Var: 0, Expr: protocol.V{ID: 0}}},
			}},
		}},
	}
	if err := sp.Validate(); err != nil {
		t.Fatalf("spec: %v", err)
	}
	checkSCCEquivalence(t, sp, 1)

	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	e.SetSCCAlgorithm(ForwardBackward)
	sccs := e.CyclicSCCs(e.ActionGroups(), e.Universe())
	if len(sccs) != 3 {
		t.Fatalf("want 3 self-loop components, got %d", len(sccs))
	}
	for _, s := range sccs {
		if s.(*Bitset).Count() != 1 {
			t.Fatalf("self-loop component has size %d, want 1", s.(*Bitset).Count())
		}
	}
}

// TestAddConvergenceUnderFBSCC runs the full synthesis heuristic with the
// forward-backward search selected and requires the same synthesized
// protocol (same group keys) as the Tarjan run, for both cycle-resolution
// strategies.
func TestAddConvergenceUnderFBSCC(t *testing.T) {
	specs := []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(4),
		protocols.Coloring(4),
	}
	rng := rand.New(rand.NewSource(5))
	for seed := 0; seed < 10; seed++ {
		specs = append(specs, specgen.RandomSpec(rng, seed%2 == 0))
	}
	for si, sp := range specs {
		for _, res := range []core.CycleResolution{core.BatchResolution, core.IncrementalResolution} {
			tar, err := New(sp, 0)
			if err != nil {
				t.Fatalf("spec %d: %v", si, err)
			}
			fb, err := New(sp, 0)
			if err != nil {
				t.Fatalf("spec %d: %v", si, err)
			}
			fb.SetSCCAlgorithm(ForwardBackward)
			fb.SetParallelism(4)

			opts := core.Options{CycleResolution: res}
			tres, terr := core.AddConvergence(tar, opts)
			fres, ferr := core.AddConvergence(fb, opts)
			if (terr == nil) != (ferr == nil) {
				t.Fatalf("spec %d res %v: outcome differs: tarjan=%v fb=%v", si, res, terr, ferr)
			}
			if terr != nil {
				continue
			}
			tkeys := make(map[protocol.Key]bool)
			for _, g := range tres.Protocol {
				tkeys[g.ProtocolGroup().Key()] = true
			}
			if len(tkeys) != len(fres.Protocol) {
				t.Fatalf("spec %d res %v: protocol sizes differ: %d vs %d",
					si, res, len(tkeys), len(fres.Protocol))
			}
			for _, g := range fres.Protocol {
				if !tkeys[g.ProtocolGroup().Key()] {
					t.Fatalf("spec %d res %v: fb protocol has extra group %s",
						si, res, g.ProtocolGroup().Render(sp))
				}
			}
		}
	}
}

// TestAutoSCCSelection pins the Auto policy: resolution by state count
// alone (so every node of a distributed search agrees), explicit choices
// untouched, and the stats name reporting the resolution.
func TestAutoSCCSelection(t *testing.T) {
	e, err := New(protocols.TokenRing(4, 3), 0) // 81 states, far below the threshold
	if err != nil {
		t.Fatal(err)
	}
	if e.SCCAlgorithm() != Auto {
		t.Fatalf("fresh engine algorithm = %v, want Auto (the zero value)", e.SCCAlgorithm())
	}
	if got := e.effectiveSCC(); got != Tarjan {
		t.Errorf("effectiveSCC() below threshold = %v, want Tarjan", got)
	}
	if got := e.SCCAlgorithmName(); got != "auto(tarjan)" {
		t.Errorf("SCCAlgorithmName() = %q, want auto(tarjan)", got)
	}
	// Force both sides of the threshold without building a huge engine.
	e.n = autoFBStateThreshold
	if got := e.effectiveSCC(); got != ForwardBackward {
		t.Errorf("effectiveSCC() at threshold = %v, want ForwardBackward", got)
	}
	if got := e.SCCAlgorithmName(); got != "auto(fb)" {
		t.Errorf("SCCAlgorithmName() = %q, want auto(fb)", got)
	}
	// An explicit choice is never second-guessed by the state count.
	e.SetSCCAlgorithm(Tarjan)
	if got := e.effectiveSCC(); got != Tarjan {
		t.Errorf("pinned Tarjan resolved to %v", got)
	}
	if got := e.SCCAlgorithmName(); got != "tarjan" {
		t.Errorf("SCCAlgorithmName() = %q, want tarjan", got)
	}
}
