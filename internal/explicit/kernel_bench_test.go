package explicit

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
)

// benchEngine builds an engine over the three-coloring instance used by the
// kernel benchmarks (3^12 = 531441 states) plus a dense input set, with the
// reference per-state scans toggled on demand.
func benchEngine(b *testing.B, reference bool) (*Engine, []core.Group, *Bitset) {
	b.Helper()
	e, err := New(protocols.Coloring(12), 0)
	if err != nil {
		b.Fatal(err)
	}
	e.SetReferenceKernels(reference)
	gs := append(e.ActionGroups(), e.CandidateGroups()...)
	dense := e.Not(e.Invariant()).(*Bitset)
	// Warm the lazy source/destination caches so steady-state image cost is
	// measured.
	e.Pre(gs, dense)
	e.Post(gs, dense)
	b.ResetTimer()
	return e, gs, dense
}

func BenchmarkPostKernel(b *testing.B) {
	e, gs, x := benchEngine(b, false)
	for i := 0; i < b.N; i++ {
		e.Post(gs, x)
	}
}

func BenchmarkPostReference(b *testing.B) {
	e, gs, x := benchEngine(b, true)
	for i := 0; i < b.N; i++ {
		e.Post(gs, x)
	}
}

func BenchmarkPreKernel(b *testing.B) {
	e, gs, x := benchEngine(b, false)
	for i := 0; i < b.N; i++ {
		e.Pre(gs, x)
	}
}

func BenchmarkPreReference(b *testing.B) {
	e, gs, x := benchEngine(b, true)
	for i := 0; i < b.N; i++ {
		e.Pre(gs, x)
	}
}

func BenchmarkGroupDstIntoKernel(b *testing.B) {
	e, gs, x := benchEngine(b, false)
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			e.GroupDstInto(g, x)
		}
	}
}

func BenchmarkGroupDstIntoReference(b *testing.B) {
	e, gs, x := benchEngine(b, true)
	for i := 0; i < b.N; i++ {
		for _, g := range gs {
			e.GroupDstInto(g, x)
		}
	}
}

// BenchmarkCyclicSCCs compares the two searches on the full universe of the
// coloring instance restricted to ¬I (the region the heuristic scans).
func BenchmarkCyclicSCCsTarjan(b *testing.B) {
	e, gs, x := benchEngine(b, false)
	for i := 0; i < b.N; i++ {
		e.CyclicSCCs(gs, x)
	}
}

func BenchmarkCyclicSCCsFB(b *testing.B) {
	e, gs, x := benchEngine(b, false)
	e.SetSCCAlgorithm(ForwardBackward)
	e.SetParallelism(4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.CyclicSCCs(gs, x)
	}
}
