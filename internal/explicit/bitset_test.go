package explicit

import (
	"testing"
	"testing/quick"
)

func bitsetFrom(n uint64, elems ...uint64) *Bitset {
	b := NewBitset(n)
	for _, e := range elems {
		b.Set(e)
	}
	return b
}

func TestBitsetBasics(t *testing.T) {
	b := NewBitset(100)
	if !b.IsEmpty() {
		t.Fatal("new bitset not empty")
	}
	b.Set(0)
	b.Set(63)
	b.Set(64)
	b.Set(99)
	if b.Count() != 4 {
		t.Fatalf("Count = %d, want 4", b.Count())
	}
	for _, i := range []uint64{0, 63, 64, 99} {
		if !b.Get(i) {
			t.Errorf("bit %d not set", i)
		}
	}
	if b.Get(1) || b.Get(65) {
		t.Error("unexpected bit set")
	}
	b.Clear(63)
	if b.Get(63) || b.Count() != 3 {
		t.Error("Clear failed")
	}
	if first, ok := b.First(); !ok || first != 0 {
		t.Errorf("First = %d,%v; want 0,true", first, ok)
	}
}

func TestBitsetNotRespectsUniverse(t *testing.T) {
	b := NewBitset(70)
	c := b.Not()
	if c.Count() != 70 {
		t.Fatalf("complement of empty has %d elements, want 70", c.Count())
	}
	if !c.Not().IsEmpty() {
		t.Error("double complement of empty not empty")
	}
}

func TestBitsetForEachOrder(t *testing.T) {
	b := bitsetFrom(200, 5, 64, 128, 199)
	var got []uint64
	b.ForEach(func(i uint64) bool {
		got = append(got, i)
		return true
	})
	want := []uint64{5, 64, 128, 199}
	if len(got) != len(want) {
		t.Fatalf("ForEach yielded %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ForEach yielded %v, want %v", got, want)
		}
	}
	// Early stop.
	count := 0
	b.ForEach(func(uint64) bool { count++; return count < 2 })
	if count != 2 {
		t.Errorf("early stop visited %d, want 2", count)
	}
}

// Property tests: bitset algebra agrees with map-of-uint64 set semantics.
func TestBitsetAlgebraProperty(t *testing.T) {
	const n = 130
	mk := func(elems []uint64) (*Bitset, map[uint64]bool) {
		b := NewBitset(n)
		m := make(map[uint64]bool)
		for _, e := range elems {
			e %= n
			b.Set(e)
			m[e] = true
		}
		return b, m
	}
	f := func(xs, ys []uint64) bool {
		bx, mx := mk(xs)
		by, my := mk(ys)
		or := bx.Or(by)
		and := bx.And(by)
		diff := bx.Diff(by)
		not := bx.Not()
		for i := uint64(0); i < n; i++ {
			if or.Get(i) != (mx[i] || my[i]) {
				return false
			}
			if and.Get(i) != (mx[i] && my[i]) {
				return false
			}
			if diff.Get(i) != (mx[i] && !my[i]) {
				return false
			}
			if not.Get(i) != !mx[i] {
				return false
			}
		}
		// Cardinalities and equality.
		if or.Count() < bx.Count() || !bx.Equal(bx.Clone()) {
			return false
		}
		if bx.Equal(by) {
			for i := uint64(0); i < n; i++ {
				if mx[i] != my[i] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
