package explicit

import (
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/specgen"
)

// TestShiftInto exercises the word-level shift kernel directly: positive,
// negative and zero deltas, across word boundaries, and aliased in place.
func TestShiftInto(t *testing.T) {
	const n = 200
	elems := []uint64{0, 1, 63, 64, 65, 100, 127, 128, 199}
	for _, delta := range []int64{0, 1, -1, 63, -63, 64, -64, 65, -65, 130, -130, 199, -199, 300, -300} {
		src := NewBitset(n)
		for _, i := range elems {
			src.Set(i)
		}
		want := NewBitset(n)
		for _, i := range elems {
			if j := int64(i) + delta; j >= 0 && j < n {
				want.Set(uint64(j))
			}
		}
		got := NewBitset(n).ShiftInto(src, delta)
		if !got.Equal(want) {
			t.Errorf("ShiftInto(delta=%d) wrong result", delta)
		}
		// Aliased: shift src in place.
		if !src.ShiftInto(src, delta).Equal(want) {
			t.Errorf("ShiftInto(delta=%d) aliased in-place result differs", delta)
		}
	}
}

// TestInPlacePrimitives checks the destructive primitives against their
// allocating counterparts on random sets.
func TestInPlacePrimitives(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const n = 321
	randSet := func() *Bitset {
		b := NewBitset(n)
		for i := uint64(0); i < n; i++ {
			if rng.Intn(3) == 0 {
				b.Set(i)
			}
		}
		return b
	}
	for trial := 0; trial < 50; trial++ {
		a, b := randSet(), randSet()
		if got, want := a.Clone().OrInPlace(b), a.Or(b); !got.Equal(want) {
			t.Fatal("OrInPlace disagrees with Or")
		}
		if got, want := NewBitset(n).AndInto(a, b), a.And(b); !got.Equal(want) {
			t.Fatal("AndInto disagrees with And")
		}
		if got, want := NewBitset(n).AndNotInto(a, b), a.Diff(b); !got.Equal(want) {
			t.Fatal("AndNotInto disagrees with Diff")
		}
		if got, want := a.Intersects(b), !a.And(b).IsEmpty(); got != want {
			t.Fatal("Intersects disagrees with And+IsEmpty")
		}
		c := randSet()
		if got, want := a.IntersectsBoth(b, c), !a.And(b).And(c).IsEmpty(); got != want {
			t.Fatal("IntersectsBoth disagrees with And+And+IsEmpty")
		}
		if !a.Clone().ClearAll().IsEmpty() {
			t.Fatal("ClearAll left elements behind")
		}
		if !NewBitset(n).CopyFrom(a).Equal(a) {
			t.Fatal("CopyFrom is not a copy")
		}
	}
}

// randomSubset returns a random subset of the engine's universe.
func randomSubset(e *Engine, rng *rand.Rand) *Bitset {
	b := NewBitset(e.n)
	for i := uint64(0); i < e.n; i++ {
		if rng.Intn(4) != 0 {
			b.Set(i)
		}
	}
	return b
}

// checkKernelEquivalence asserts that the word-level shift kernels agree
// bit-for-bit with the retained per-state reference scans on sp: image
// operations and group tests, over the invariant, its complement, the
// universe, the empty set and a batch of random sets.
func checkKernelEquivalence(t *testing.T, sp *protocol.Spec, seed int64) {
	t.Helper()
	kern, err := New(sp, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref, err := New(sp, 0)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ref.SetReferenceKernels(true)

	rng := rand.New(rand.NewSource(seed))
	sets := []*Bitset{
		kern.Invariant().(*Bitset),
		kern.Not(kern.Invariant()).(*Bitset),
		kern.Universe().(*Bitset),
		kern.Empty().(*Bitset),
	}
	for i := 0; i < 4; i++ {
		sets = append(sets, randomSubset(kern, rng))
	}

	kgs := append(kern.ActionGroups(), kern.CandidateGroups()...)
	rgs := append(ref.ActionGroups(), ref.CandidateGroups()...)
	if len(kgs) != len(rgs) {
		t.Fatalf("engines disagree on group count: %d vs %d", len(kgs), len(rgs))
	}

	for si, x := range sets {
		if got, want := kern.Pre(kgs, x).(*Bitset), ref.Pre(rgs, x).(*Bitset); !got.Equal(want) {
			t.Fatalf("set %d: Pre kernel != reference", si)
		}
		if got, want := kern.Post(kgs, x).(*Bitset), ref.Post(rgs, x).(*Bitset); !got.Equal(want) {
			t.Fatalf("set %d: Post kernel != reference", si)
		}
		for gi := range kgs {
			if got, want := kern.GroupDstInto(kgs[gi], x), ref.GroupDstInto(rgs[gi], x); got != want {
				t.Fatalf("set %d group %d: GroupDstInto kernel %v != reference %v", si, gi, got, want)
			}
			if got, want := kern.GroupWithin(kgs[gi], x), ref.GroupWithin(rgs[gi], x); got != want {
				t.Fatalf("set %d group %d: GroupWithin kernel %v != reference %v", si, gi, got, want)
			}
			if got, want := kern.GroupSrcIntersects(kgs[gi], x), ref.GroupSrcIntersects(rgs[gi], x); got != want {
				t.Fatalf("set %d group %d: GroupSrcIntersects kernel %v != reference %v", si, gi, got, want)
			}
		}
	}
	// GroupFromTo across random (from, to) pairs.
	for trial := 0; trial < 4; trial++ {
		from, to := randomSubset(kern, rng), randomSubset(kern, rng)
		for gi := range kgs {
			if got, want := kern.GroupFromTo(kgs[gi], from, to), ref.GroupFromTo(rgs[gi], from, to); got != want {
				t.Fatalf("trial %d group %d: GroupFromTo kernel %v != reference %v", trial, gi, got, want)
			}
		}
	}
	if got, want := kern.EnabledSources(kgs).(*Bitset), ref.EnabledSources(rgs).(*Bitset); !got.Equal(want) {
		t.Fatal("EnabledSources kernel != reference")
	}
}

func TestKernelEquivalenceBuiltins(t *testing.T) {
	for _, tc := range []struct {
		name string
		sp   *protocol.Spec
	}{
		{"token-ring-4-3", protocols.TokenRing(4, 3)},
		{"matching-5", protocols.Matching(5)},
		{"coloring-5", protocols.Coloring(5)},
		{"two-ring", protocols.TwoRingTokenRing()},
	} {
		t.Run(tc.name, func(t *testing.T) { checkKernelEquivalence(t, tc.sp, 11) })
	}
}

// TestKernelEquivalenceRandom runs the same battery over a corpus of random
// protocols from the shared generator.
func TestKernelEquivalenceRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomSpec(rng, true)
		checkKernelEquivalence(t, sp, seed)
	}
}

// FuzzKernelEquivalence is the coverage-guided version: the fuzzer explores
// random-spec seeds the fixed corpus missed.
func FuzzKernelEquivalence(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomSpec(rng, true)
		if err := sp.Validate(); err != nil {
			t.Skip()
		}
		checkKernelEquivalence(t, sp, seed)
	})
}

// TestMutableSetsCapability checks the core.MutableSets implementation
// against the allocating operations.
func TestMutableSetsCapability(t *testing.T) {
	e, err := New(protocols.Coloring(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	var ms core.MutableSets = e
	inv := e.Invariant()
	dup := ms.Dup(inv)
	if !e.Equal(dup, inv) {
		t.Fatal("Dup is not equal to its source")
	}
	notInv := e.Not(inv)
	ms.OrInto(dup, notInv)
	if !e.Equal(dup, e.Universe()) {
		t.Fatal("OrInto(I, ¬I) should be the universe")
	}
	if !e.Equal(inv, e.Invariant()) {
		t.Fatal("OrInto mutated its source")
	}
	ms.DiffInto(dup, notInv)
	if !e.Equal(dup, inv) {
		t.Fatal("DiffInto(U, ¬I) should be I")
	}
	g := e.CandidateGroups()[0]
	empty := e.Empty()
	ms.OrSrcInto(empty, g)
	if !e.Equal(empty, e.GroupSrc(g)) {
		t.Fatal("OrSrcInto(∅, g) should equal GroupSrc(g)")
	}
}
