package explicit

import "stsyn/internal/core"

// ExportSet implements core.SetExporter: a caller-owned copy of the set's
// backing words, suitable for storing in a cross-engine memo.
func (e *Engine) ExportSet(a core.Set) []uint64 {
	b := a.(*Bitset)
	return append([]uint64(nil), b.words...)
}

// ImportSet rebuilds a Set of this engine from exported words. ok=false
// when the word count does not match this engine's universe — an imported
// snapshot from a differently-sized state space must never alias into a
// set here.
func (e *Engine) ImportSet(words []uint64) (core.Set, bool) {
	b := NewBitset(e.n)
	if len(words) != len(b.words) {
		return nil, false
	}
	copy(b.words, words)
	return b, true
}
