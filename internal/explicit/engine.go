package explicit

import (
	"context"
	"fmt"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// DefaultMaxStates bounds the state spaces the explicit engine accepts.
// Larger protocols should use the symbolic engine.
const DefaultMaxStates = 1 << 24

// group is the engine-side representation of a transition group. Because
// w ⊆ r, every transition in a group applies the same index delta; the group
// is { (s, s+delta) : s matches the readable valuation }.
type group struct {
	pg       protocol.Group
	id       int
	srcBase  uint64   // index contribution of the readable valuation
	delta    uint64   // wrapping dst-src delta
	sdelta   int64    // delta as a signed bit offset (|dst-src| < n < 2^63)
	unreadW  []uint64 // index weights of the unreadable variables
	unreadD  []int    // domains of the unreadable variables
	srcSet   *Bitset  // lazy cache of the source set
	dstSet   *Bitset  // lazy cache of the destination set (srcSet shifted by delta)
	srcCount uint64   // |srcSet|, set when srcSet is materialized
	srcLoW   int      // first non-zero word of srcSet
	srcHiW   int      // last non-zero word of srcSet
}

func (g *group) Proc() int                     { return g.pg.Proc }
func (g *group) ProtocolGroup() protocol.Group { return g.pg }

// Engine is the explicit-state implementation of core.Engine.
type Engine struct {
	sp *protocol.Spec
	ix *protocol.Indexer
	n  uint64

	universe *Bitset
	inv      *Bitset

	actions    []core.Group
	candidates []core.Group
	all        []*group             // by dense id
	byKey      map[protocol.Key]int // group key -> dense id

	// Successor index: procTable[p][readKey] lists the groups of process p
	// enabled at any state whose readable valuation has that key.
	procTable  [][][]int // values are dense group ids
	readWeight [][]uint64
	readDom    [][]int

	workers int          // image/SCC parallelism (0 = GOMAXPROCS)
	sccAlg  SCCAlgorithm // cycle-detection algorithm (default Auto)

	// refKernels switches the image operations back to the per-state
	// reference scans the word-level kernels replaced. The scans are kept
	// as the oracle for the kernel-equivalence tests and as the "before"
	// leg of the benchmark baseline.
	refKernels bool

	// refRanks requests the reference rank scheme from core: whole-set
	// pre-images in ComputeRanks and no rank-∞ fast-fail in
	// AddConvergence (see core.RankScheme). The engine's own kernels are
	// unaffected — the knob exists so differential tests can pin the
	// frontier BFS and fast-fail against the oracle on this engine too.
	refRanks bool

	ctx context.Context // current synthesis context (nil = no cancellation)

	stats  core.Stats
	kstats KernelStats
}

var _ core.Engine = (*Engine)(nil)
var _ core.ContextAware = (*Engine)(nil)
var _ core.MutableSets = (*Engine)(nil)
var _ core.SrcIntersecter = (*Engine)(nil)

// KernelStats counts the engine's image-kernel activity; exposed through
// the service /metrics endpoint and the JSON result encoding.
type KernelStats struct {
	PreCalls   uint64 // Pre image operations
	PostCalls  uint64 // Post image operations
	GroupTests uint64 // GroupDstInto/GroupFromTo/GroupWithin/GroupSrcIntersects
}

// KernelStats returns a snapshot of the kernel counters.
func (e *Engine) KernelStats() KernelStats { return e.kstats }

// SetReferenceKernels switches the image operations between the word-level
// delta-shift kernels (default) and the retained per-state reference scans.
// The reference scans are bit-for-bit equivalent but walk one source index
// at a time; tests use them as the oracle and the benchmark baseline uses
// them as the "before" measurement.
func (e *Engine) SetReferenceKernels(on bool) { e.refKernels = on }

// SetReferenceRanks selects the reference rank scheme (whole-set BFS, no
// fast-fail) in the core algorithms; the default frontier scheme produces
// byte-identical protocols. See core.RankScheme.
func (e *Engine) SetReferenceRanks(on bool) { e.refRanks = on }

// ReferenceRanks implements core.RankScheme.
func (e *Engine) ReferenceRanks() bool { return e.refRanks }

// SetContext makes long-running operations (SCC enumeration) observe ctx:
// once it is cancelled they stop early and return partial results. The
// caller (core.AddConvergence) re-checks the context and discards them.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// canceled reports whether the current synthesis context is cancelled.
func (e *Engine) canceled() bool { return e.ctx != nil && e.ctx.Err() != nil }

// New builds an explicit engine for sp. maxStates of 0 uses
// DefaultMaxStates.
func New(sp *protocol.Spec, maxStates uint64) (*Engine, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if maxStates == 0 {
		maxStates = DefaultMaxStates
	}
	n, ok := sp.NumStates()
	if !ok || n > maxStates {
		return nil, fmt.Errorf("explicit: state space of %s too large (limit %d)", sp.Name, maxStates)
	}
	e := &Engine{sp: sp, ix: protocol.NewIndexer(sp), n: n}
	e.universe = NewBitset(n).Not()
	e.byKey = make(map[protocol.Key]int)

	e.inv = NewBitset(n)
	s := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < n; i++ {
		e.ix.Decode(i, s)
		if sp.Invariant.EvalBool(s) {
			e.inv.Set(i)
		}
	}

	// Per-process read-key machinery.
	e.procTable = make([][][]int, len(sp.Procs))
	e.readWeight = make([][]uint64, len(sp.Procs))
	e.readDom = make([][]int, len(sp.Procs))
	for pi := range sp.Procs {
		p := &sp.Procs[pi]
		doms := make([]int, len(p.Reads))
		for i, id := range p.Reads {
			doms[i] = sp.Vars[id].Dom
		}
		w := make([]uint64, len(p.Reads))
		acc := uint64(1)
		for i := len(doms) - 1; i >= 0; i-- {
			w[i] = acc
			acc *= uint64(doms[i])
		}
		e.readDom[pi] = doms
		e.readWeight[pi] = w
		e.procTable[pi] = make([][]int, acc)
	}

	for pi := range sp.Procs {
		for _, pg := range sp.ActionGroups(pi) {
			e.actions = append(e.actions, e.intern(pg))
		}
		for _, pg := range sp.CandidateGroups(pi) {
			e.candidates = append(e.candidates, e.intern(pg))
		}
	}
	return e, nil
}

// intern registers a protocol group, deduplicating by key, and indexes it
// in the successor table.
func (e *Engine) intern(pg protocol.Group) *group {
	if id, ok := e.byKey[pg.Key()]; ok {
		return e.all[id]
	}
	p := &e.sp.Procs[pg.Proc]
	g := &group{pg: pg, id: len(e.all)}

	readSet := make(map[int]bool, len(p.Reads))
	var key uint64
	for i, id := range p.Reads {
		readSet[id] = true
		g.srcBase += uint64(pg.ReadVals[i]) * e.varWeight(id)
		key += uint64(pg.ReadVals[i]) * e.readWeight[pg.Proc][i]
	}
	for wi, id := range p.Writes {
		old := pg.ReadVals[readIndex(p.Reads, id)]
		g.delta += uint64(int64(pg.WriteVals[wi]-old)) * e.varWeight(id)
	}
	// delta is the true dst−src difference modulo 2^64; since every source
	// and destination is a valid index below n < 2^63, the two's-complement
	// reading recovers the signed bit offset of the shift kernels.
	g.sdelta = int64(g.delta)
	for id := range e.sp.Vars {
		if !readSet[id] {
			g.unreadW = append(g.unreadW, e.varWeight(id))
			g.unreadD = append(g.unreadD, e.sp.Vars[id].Dom)
		}
	}
	e.byKey[pg.Key()] = g.id
	e.all = append(e.all, g)
	e.procTable[pg.Proc][key] = append(e.procTable[pg.Proc][key], g.id)
	return g
}

func (e *Engine) varWeight(id int) uint64 {
	// Indexer exposes weights only via WithValue; recompute directly.
	w := uint64(1)
	for j := len(e.sp.Vars) - 1; j > id; j-- {
		w *= uint64(e.sp.Vars[j].Dom)
	}
	return w
}

func readIndex(reads []int, id int) int {
	for i, x := range reads {
		if x == id {
			return i
		}
	}
	panic("explicit: write variable not in read set")
}

// forEachSrc enumerates the source indices of g.
func (e *Engine) forEachSrc(g *group, f func(src uint64) bool) {
	if len(g.unreadD) == 0 {
		f(g.srcBase)
		return
	}
	counters := make([]int, len(g.unreadD))
	src := g.srcBase
	for {
		if !f(src) {
			return
		}
		i := len(counters) - 1
		for ; i >= 0; i-- {
			counters[i]++
			src += g.unreadW[i]
			if counters[i] < g.unreadD[i] {
				break
			}
			src -= uint64(g.unreadD[i]) * g.unreadW[i]
			counters[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// sources returns (and caches) the bitset of g's transition sources.
func (e *Engine) sources(g *group) *Bitset {
	if g.srcSet == nil {
		b := NewBitset(e.n)
		n := uint64(0)
		e.forEachSrc(g, func(src uint64) bool { b.Set(src); n++; return true })
		g.srcCount = n
		g.srcLoW, g.srcHiW, _ = b.wordRange() // never empty: srcBase is a source
		g.srcSet = b
	}
	return g.srcSet
}

// sparse reports whether g's source set is small enough that the per-state
// scan beats a full word pass over the universe. A state test costs ~2.5×
// a word operation, so the scan wins when |src| is below ~0.4 words; the
// threshold of a third keeps a safety margin. Groups read most variables on
// protocols with rich localities (e.g. the two-ring), making their source
// sets tiny relative to the universe — exactly the case where a uniform
// word-level kernel would regress.
func (e *Engine) sparse(g *group) bool {
	e.sources(g)
	return g.srcCount*3 < uint64(len(g.srcSet.words))
}

// dests returns (and caches) shift(src(g), Δg): the bitset of g's
// transition destinations, used as the mask of the fused Post kernel.
func (e *Engine) dests(g *group) *Bitset {
	if g.dstSet == nil {
		g.dstSet = NewBitset(e.n).ShiftInto(e.sources(g), g.sdelta)
	}
	return g.dstSet
}

// --- core.Engine implementation -----------------------------------------

func (e *Engine) Spec() *protocol.Spec { return e.sp }
func (e *Engine) Universe() core.Set   { return e.universe }
func (e *Engine) Empty() core.Set      { return NewBitset(e.n) }
func (e *Engine) Invariant() core.Set  { return e.inv }

func (e *Engine) Or(a, b core.Set) core.Set   { return a.(*Bitset).Or(b.(*Bitset)) }
func (e *Engine) And(a, b core.Set) core.Set  { return a.(*Bitset).And(b.(*Bitset)) }
func (e *Engine) Diff(a, b core.Set) core.Set { return a.(*Bitset).Diff(b.(*Bitset)) }
func (e *Engine) Not(a core.Set) core.Set     { return a.(*Bitset).Not() }
func (e *Engine) IsEmpty(a core.Set) bool     { return a.(*Bitset).IsEmpty() }
func (e *Engine) Equal(a, b core.Set) bool    { return a.(*Bitset).Equal(b.(*Bitset)) }
func (e *Engine) States(a core.Set) float64   { return float64(a.(*Bitset).Count()) }
func (e *Engine) SetSize(a core.Set) int      { return int(a.(*Bitset).Count()) }

func (e *Engine) ActionGroups() []core.Group    { return append([]core.Group(nil), e.actions...) }
func (e *Engine) CandidateGroups() []core.Group { return append([]core.Group(nil), e.candidates...) }

func (e *Engine) GroupSrc(g core.Group) core.Set {
	return e.sources(g.(*group)).Clone()
}

// The image operations below exploit the structural fact recorded in each
// group: a transition group is a uniform index translation dst = src + Δ,
// so its image under a set is one word-level shift —
//
//	Post(g, X) = shift(X ∩ src(g), Δg) = shift(X, Δg) ∩ dst(g)
//	Pre(g, X)  = shift(X, −Δg) ∩ src(g)
//
// (the second Post form holds because a translation is injective, and it is
// the one implemented: with dst(g) cached, both images reduce to the fused
// single-pass primitive acc |= shift(X, ±Δ) ∩ mask). The existence tests
// (GroupDstInto and friends) are early-exiting shift-and-intersect scans
// that materialize nothing at all. Groups whose source set is tiny relative
// to the universe (see sparse) instead keep the per-state scan, which beats
// a full word pass there; the choice is per group and bit-for-bit neutral.
// The per-state reference scans are retained behind SetReferenceKernels as
// the oracle.

func (e *Engine) GroupDstInto(g core.Group, X core.Set) bool {
	gg, x := g.(*group), X.(*Bitset)
	e.kstats.GroupTests++
	if e.refKernels {
		return e.groupDstIntoRef(gg, x)
	}
	// Dense fast path: probe the group's first transition before paying for
	// the word scan (the common case during recovery is a hit).
	if x.Get(gg.srcBase + gg.delta) {
		return true
	}
	if e.sparse(gg) {
		return e.groupDstIntoRef(gg, x)
	}
	// ∃ src ∈ src(g): src+Δ ∈ X  ⇔  src(g) ∩ shift(X, −Δ) ≠ ∅.
	return x.ShiftIntersects(-gg.sdelta, gg.srcSet, nil)
}

func (e *Engine) GroupFromTo(g core.Group, from, to core.Set) bool {
	gg, f, t := g.(*group), from.(*Bitset), to.(*Bitset)
	e.kstats.GroupTests++
	if e.refKernels {
		return e.groupFromToRef(gg, f, t)
	}
	// Dense fast path: probe the group's first transition.
	if f.Get(gg.srcBase) && t.Get(gg.srcBase+gg.delta) {
		return true
	}
	if e.sparse(gg) {
		return e.groupFromToRef(gg, f, t)
	}
	// ∃ src ∈ from ∩ src(g): src+Δ ∈ to  ⇔  shift(to, −Δ) ∩ src(g) ∩ from ≠ ∅.
	return t.ShiftIntersects(-gg.sdelta, gg.srcSet, f)
}

func (e *Engine) GroupWithin(g core.Group, X core.Set) bool {
	return e.GroupFromTo(g, X, X)
}

func (e *Engine) Pre(gs []core.Group, X core.Set) core.Set {
	x := X.(*Bitset)
	e.kstats.PreCalls++
	if e.refKernels {
		return e.scanGroups(gs, func(gg *group, acc *Bitset) { e.preRef(gg, x, acc) })
	}
	return e.scanGroups(gs, func(gg *group, acc *Bitset) {
		if e.sparse(gg) {
			e.preRef(gg, x, acc)
			return
		}
		acc.OrShiftMasked(x, -gg.sdelta, gg.srcSet)
	})
}

func (e *Engine) Post(gs []core.Group, X core.Set) core.Set {
	x := X.(*Bitset)
	e.kstats.PostCalls++
	if e.refKernels {
		return e.scanGroups(gs, func(gg *group, acc *Bitset) { e.postRef(gg, x, acc) })
	}
	return e.scanGroups(gs, func(gg *group, acc *Bitset) {
		if e.sparse(gg) {
			e.postRef(gg, x, acc)
			return
		}
		acc.OrShiftMasked(x, gg.sdelta, e.dests(gg))
	})
}

func (e *Engine) EnabledSources(gs []core.Group) core.Set {
	return e.scanGroups(gs, func(gg *group, acc *Bitset) {
		acc.OrInPlace(e.sources(gg))
	})
}

// --- Per-state reference scans (test oracle / benchmark baseline) --------

func (e *Engine) preRef(gg *group, x, acc *Bitset) {
	e.forEachSrc(gg, func(src uint64) bool {
		if x.Get(src + gg.delta) {
			acc.Set(src)
		}
		return true
	})
}

func (e *Engine) postRef(gg *group, x, acc *Bitset) {
	e.forEachSrc(gg, func(src uint64) bool {
		if x.Get(src) {
			acc.Set(src + gg.delta)
		}
		return true
	})
}

func (e *Engine) groupDstIntoRef(gg *group, x *Bitset) bool {
	found := false
	e.forEachSrc(gg, func(src uint64) bool {
		if x.Get(src + gg.delta) {
			found = true
			return false
		}
		return true
	})
	return found
}

func (e *Engine) groupFromToRef(gg *group, f, t *Bitset) bool {
	found := false
	e.forEachSrc(gg, func(src uint64) bool {
		if f.Get(src) && t.Get(src+gg.delta) {
			found = true
			return false
		}
		return true
	})
	return found
}

// --- Optional core capabilities ------------------------------------------

// GroupSrcIntersects reports whether g's source set intersects X, using the
// cached source set without cloning it (core.SrcIntersecter).
func (e *Engine) GroupSrcIntersects(g core.Group, X core.Set) bool {
	gg := g.(*group)
	e.kstats.GroupTests++
	if e.refKernels {
		// Mirror the generic path's clone-and-intersect allocation profile
		// so reference-mode benchmarks measure the pre-kernel engine.
		return !e.sources(gg).Clone().And(X.(*Bitset)).IsEmpty()
	}
	return e.sources(gg).Intersects(X.(*Bitset))
}

// Dup, OrInto, DiffInto and OrSrcInto implement core.MutableSets: the rank
// fixpoint and the recovery bookkeeping mutate sets they own instead of
// allocating a fresh bitset per set operation.

func (e *Engine) Dup(a core.Set) core.Set { return a.(*Bitset).Clone() }

func (e *Engine) OrInto(dst, src core.Set) { dst.(*Bitset).OrInPlace(src.(*Bitset)) }

func (e *Engine) DiffInto(dst, src core.Set) {
	d := dst.(*Bitset)
	d.AndNotInto(d, src.(*Bitset))
}

func (e *Engine) OrSrcInto(dst core.Set, g core.Group) {
	dst.(*Bitset).OrInPlace(e.sources(g.(*group)))
}

func (e *Engine) PickState(a core.Set) (protocol.State, bool) {
	idx, ok := a.(*Bitset).First()
	if !ok {
		return nil, false
	}
	s := make(protocol.State, len(e.sp.Vars))
	e.ix.Decode(idx, s)
	return s, true
}

func (e *Engine) Singleton(s protocol.State) core.Set {
	b := NewBitset(e.n)
	b.Set(e.ix.Index(s))
	return b
}

func (e *Engine) ProgramSize(gs []core.Group) int {
	total := 0
	for _, g := range gs {
		n := 1
		for _, d := range g.(*group).unreadD {
			n *= d
		}
		total += n
	}
	return total
}

func (e *Engine) Stats() *core.Stats { return &e.stats }

// readKey computes the successor-table key of state idx for process pi.
func (e *Engine) readKey(idx uint64, pi int) uint64 {
	var key uint64
	for i, id := range e.sp.Procs[pi].Reads {
		key += uint64(e.ix.Value(idx, id)) * e.readWeight[pi][i]
	}
	return key
}

// successors appends to buf the targets of transitions from idx under the
// groups marked in inSet, restricted to states in within. It also reports
// whether idx has a self-loop.
func (e *Engine) successors(idx uint64, inSet []bool, within *Bitset, buf []uint64) ([]uint64, bool) {
	self := false
	for pi := range e.sp.Procs {
		for _, gid := range e.procTable[pi][e.readKey(idx, pi)] {
			if !inSet[gid] {
				continue
			}
			dst := idx + e.all[gid].delta
			if dst == idx {
				self = true
			}
			if within.Get(dst) {
				buf = append(buf, dst)
			}
		}
	}
	return buf, self
}
