package explicit

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// trSpec builds the paper's k-process token ring with the given domain.
func trSpec(k, dom int) *protocol.Spec {
	sp := &protocol.Spec{Name: "token-ring"}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: varName("x", i), Dom: dom})
	}
	sp.Procs = append(sp.Procs, protocol.Process{
		Name:   "P0",
		Reads:  protocol.SortedIDs(0, k-1),
		Writes: []int{0},
		Actions: []protocol.Action{{
			Guard:   protocol.Eq{A: protocol.V{ID: 0}, B: protocol.V{ID: k - 1}},
			Assigns: []protocol.Assignment{{Var: 0, Expr: protocol.AddMod{A: protocol.V{ID: k - 1}, B: protocol.C{Val: 1}, Mod: dom}}},
		}},
	})
	for j := 1; j < k; j++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   varName("P", j),
			Reads:  protocol.SortedIDs(j-1, j),
			Writes: []int{j},
			Actions: []protocol.Action{{
				Guard:   protocol.Eq{A: protocol.AddMod{A: protocol.V{ID: j}, B: protocol.C{Val: 1}, Mod: dom}, B: protocol.V{ID: j - 1}},
				Assigns: []protocol.Assignment{{Var: j, Expr: protocol.V{ID: j - 1}}},
			}},
		})
	}
	// S1: exactly one token.
	var disj []protocol.BoolExpr
	for holder := 0; holder < k; holder++ {
		var conj []protocol.BoolExpr
		for j := 1; j < k; j++ {
			if j == holder {
				conj = append(conj, protocol.Eq{A: protocol.AddMod{A: protocol.V{ID: j}, B: protocol.C{Val: 1}, Mod: dom}, B: protocol.V{ID: j - 1}})
			} else {
				conj = append(conj, protocol.Eq{A: protocol.V{ID: j}, B: protocol.V{ID: j - 1}})
			}
		}
		if holder == 0 {
			// All equal: P0 holds the token.
		} else {
			// P0 must not also have a token; with exactly one inequality in
			// the chain, x0 != x(k-1) holds automatically.
		}
		disj = append(disj, protocol.Conj(conj...))
	}
	sp.Invariant = protocol.Disj(disj...)
	return sp
}

func varName(prefix string, i int) string {
	if i < 10 {
		return prefix + string(rune('0'+i))
	}
	return prefix + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

func newTR(t *testing.T, k, dom int) *Engine {
	t.Helper()
	e, err := New(trSpec(k, dom), 0)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestInvariantMatchesDirectEvaluation(t *testing.T) {
	sp := trSpec(4, 3)
	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	inv := e.Invariant().(*Bitset)
	ix := protocol.NewIndexer(sp)
	s := make(protocol.State, 4)
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		if inv.Get(i) != sp.Invariant.EvalBool(s) {
			t.Fatalf("invariant bit %d (%v) disagrees with evaluation", i, s)
		}
	}
	// The paper's example: ⟨1,0,0,0⟩ ∈ S1, ⟨0,0,1,2⟩ ∉ S1.
	if !inv.Get(ix.Index(protocol.State{1, 0, 0, 0})) {
		t.Error("⟨1,0,0,0⟩ should be legitimate")
	}
	if inv.Get(ix.Index(protocol.State{0, 0, 1, 2})) {
		t.Error("⟨0,0,1,2⟩ should be illegitimate")
	}
}

// naiveSuccessors computes the successor relation directly from the spec by
// evaluating guards/assignments state by state — an independent oracle for
// Pre/Post.
func naiveSuccessors(sp *protocol.Spec) map[uint64][]uint64 {
	ix := protocol.NewIndexer(sp)
	succ := make(map[uint64][]uint64)
	s := make(protocol.State, len(sp.Vars))
	d := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		for pi := range sp.Procs {
			for _, a := range sp.Procs[pi].Actions {
				if !a.Guard.EvalBool(s) {
					continue
				}
				copy(d, s)
				ok := true
				for _, as := range a.Assigns {
					v := as.Expr.EvalInt(s)
					if v < 0 || v >= sp.Vars[as.Var].Dom {
						ok = false
						break
					}
					d[as.Var] = v
				}
				if ok {
					succ[i] = append(succ[i], ix.Index(d))
				}
			}
		}
	}
	return succ
}

func TestPrePostAgainstNaive(t *testing.T) {
	sp := trSpec(4, 3)
	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	succ := naiveSuccessors(sp)
	gs := e.ActionGroups()

	// X = invariant; compare Pre/Post with the naive relation.
	x := e.Invariant().(*Bitset)
	pre := e.Pre(gs, x).(*Bitset)
	post := e.Post(gs, x).(*Bitset)
	n := x.Len()
	wantPre := NewBitset(n)
	wantPost := NewBitset(n)
	for src, dsts := range succ {
		for _, dst := range dsts {
			if x.Get(dst) {
				wantPre.Set(src)
			}
			if x.Get(src) {
				wantPost.Set(dst)
			}
		}
	}
	if !pre.Equal(wantPre) {
		t.Error("Pre disagrees with naive successor relation")
	}
	if !post.Equal(wantPost) {
		t.Error("Post disagrees with naive successor relation")
	}
}

func TestEnabledSources(t *testing.T) {
	sp := trSpec(4, 3)
	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	succ := naiveSuccessors(sp)
	enabled := e.EnabledSources(e.ActionGroups()).(*Bitset)
	for i := uint64(0); i < enabled.Len(); i++ {
		if enabled.Get(i) != (len(succ[i]) > 0) {
			t.Fatalf("EnabledSources wrong at state %d", i)
		}
	}
	// Deadlock from the paper: ⟨0,0,1,2⟩ has no outgoing transition.
	ix := protocol.NewIndexer(sp)
	if enabled.Get(ix.Index(protocol.State{0, 0, 1, 2})) {
		t.Error("⟨0,0,1,2⟩ should be a deadlock")
	}
}

func TestGroupPredicates(t *testing.T) {
	e := newTR(t, 4, 3)
	inv := e.Invariant()
	ninv := e.Not(inv)
	for _, g := range e.ActionGroups() {
		src := e.GroupSrc(g).(*Bitset)
		if src.IsEmpty() {
			t.Fatal("action group with empty source set")
		}
		// Each group of the TR has 9 transitions (3^2 unreadable states).
		if src.Count() != 9 {
			t.Errorf("group source count = %d, want 9", src.Count())
		}
		if !e.GroupFromTo(g, e.Universe(), e.Universe()) {
			t.Error("GroupFromTo(universe, universe) must hold")
		}
		if e.GroupFromTo(g, e.Empty(), e.Universe()) {
			t.Error("GroupFromTo with empty from must fail")
		}
	}
	// The TR's closure: no action group leads from I outside I.
	for _, g := range e.ActionGroups() {
		srcInI := e.And(e.GroupSrc(g), inv)
		if e.IsEmpty(srcInI) {
			continue
		}
		if e.GroupFromTo(g, inv, ninv) {
			t.Error("closure violated: group from I to ¬I")
		}
	}
}

func TestCyclicSCCsCounterProtocol(t *testing.T) {
	// One mod-3 counter: x := x+1 (mod 3) unconditionally → a single 3-cycle.
	sp := &protocol.Spec{
		Name: "counter",
		Vars: []protocol.Var{{Name: "x", Dom: 3}},
		Procs: []protocol.Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []protocol.Action{{
				Guard:   protocol.True{},
				Assigns: []protocol.Assignment{{Var: 0, Expr: protocol.AddMod{A: protocol.V{ID: 0}, B: protocol.C{Val: 1}, Mod: 3}}},
			}},
		}},
		Invariant: protocol.Eq{A: protocol.V{ID: 0}, B: protocol.C{Val: 0}},
	}
	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	sccs := e.CyclicSCCs(e.ActionGroups(), e.Universe())
	if len(sccs) != 1 {
		t.Fatalf("got %d SCCs, want 1", len(sccs))
	}
	if n := e.States(sccs[0]); n != 3 {
		t.Fatalf("SCC has %v states, want 3", n)
	}
	// Restricted to {0,1} the 3-cycle is broken.
	within := bitsetFrom(3, 0, 1)
	if got := e.CyclicSCCs(e.ActionGroups(), within); len(got) != 0 {
		t.Fatalf("restriction should break the cycle, got %d SCCs", len(got))
	}
}

func TestCyclicSCCsSelfLoop(t *testing.T) {
	// x == 1 -> x := 1 is a self-loop group (kept in δp verbatim).
	sp := &protocol.Spec{
		Name: "selfloop",
		Vars: []protocol.Var{{Name: "x", Dom: 2}},
		Procs: []protocol.Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []protocol.Action{{
				Guard:   protocol.Eq{A: protocol.V{ID: 0}, B: protocol.C{Val: 1}},
				Assigns: []protocol.Assignment{{Var: 0, Expr: protocol.C{Val: 1}}},
			}},
		}},
		Invariant: protocol.Eq{A: protocol.V{ID: 0}, B: protocol.C{Val: 0}},
	}
	e, err := New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	sccs := e.CyclicSCCs(e.ActionGroups(), e.Universe())
	if len(sccs) != 1 {
		t.Fatalf("got %d SCCs, want 1 (self-loop)", len(sccs))
	}
	if n := e.States(sccs[0]); n != 1 {
		t.Fatalf("self-loop SCC has %v states, want 1", n)
	}
}

func TestCyclicSCCsTokenRingLegitimate(t *testing.T) {
	// Inside S1 the token circulates forever: the legitimate states are
	// covered by cycles (the dynamics restricted to I is a permutation).
	e := newTR(t, 4, 3)
	inv := e.Invariant().(*Bitset)
	sccs := e.CyclicSCCs(e.ActionGroups(), inv)
	if len(sccs) == 0 {
		t.Fatal("expected cycles inside I")
	}
	union := NewBitset(inv.Len())
	for _, s := range sccs {
		union = union.Or(s.(*Bitset))
	}
	if !union.Equal(inv) {
		t.Errorf("cycles cover %d of %d legitimate states", union.Count(), inv.Count())
	}
	// Stats must have accumulated.
	if e.Stats().SCCCalls == 0 || e.Stats().SCCCount == 0 {
		t.Error("stats not recorded")
	}
}

func TestPickState(t *testing.T) {
	e := newTR(t, 4, 3)
	if _, ok := e.PickState(e.Empty()); ok {
		t.Error("PickState on empty set must fail")
	}
	s, ok := e.PickState(e.Invariant())
	if !ok {
		t.Fatal("PickState on invariant failed")
	}
	if !e.Spec().Invariant.EvalBool(s) {
		t.Errorf("picked state %v not in invariant", s)
	}
}

func TestCandidateGroupsExcludeNoops(t *testing.T) {
	e := newTR(t, 4, 3)
	for _, g := range e.CandidateGroups() {
		if g.ProtocolGroup().IsNoop(e.Spec()) {
			t.Fatalf("candidate group %v is a no-op", g.ProtocolGroup())
		}
	}
	// 4 processes × 18 candidates each.
	if n := len(e.CandidateGroups()); n != 72 {
		t.Errorf("candidate count = %d, want 72", n)
	}
}

func TestProgramSize(t *testing.T) {
	e := newTR(t, 4, 3)
	// 12 action groups × 9 transitions each.
	if n := e.ProgramSize(e.ActionGroups()); n != 108 {
		t.Errorf("ProgramSize = %d, want 108", n)
	}
}

func TestTooLargeStateSpace(t *testing.T) {
	sp := trSpec(4, 3)
	if _, err := New(sp, 10); err == nil {
		t.Error("expected error for tiny maxStates limit")
	}
}

var _ core.Engine = (*Engine)(nil)
