package explicit

import (
	"time"

	"stsyn/internal/core"
)

// CyclicSCCs returns the strongly connected components of the union of gs
// restricted to states in within that contain a cycle: size ≥ 2, or a
// single state with a self-loop. The search algorithm is selectable with
// SetSCCAlgorithm: an iterative Tarjan DFS (the oracle the set-based
// search is differentially tested against), the parallel forward-backward
// search of fbscc.go, or Auto — the default — which picks by state count
// (see effectiveSCC). Either way the search space is first
// trimmed to its cycle core with word-level fixpoints — except in reference
// mode, which measures the true pre-kernel engine.
func (e *Engine) CyclicSCCs(gs []core.Group, within core.Set) []core.Set {
	t0 := time.Now() //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
	defer func() {
		e.stats.SCCTime += time.Since(t0) //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
		e.stats.SCCCalls++
	}()
	w := within.(*Bitset)
	if e.refKernels {
		return e.tarjanSCCs(gs, w)
	}
	groups := e.materialGroups(gs)
	cc := e.trimCore(groups, w)
	if cc == nil || cc.IsEmpty() {
		return nil
	}
	if e.effectiveSCC() == ForwardBackward {
		return e.fbDecompose(groups, cc)
	}
	return e.tarjanSCCs(gs, cc)
}

// tarjanSCCs runs an iterative Tarjan strongly-connected-components search
// over the union of gs restricted to states in w.
func (e *Engine) tarjanSCCs(gs []core.Group, w *Bitset) []core.Set {
	inSet := make([]bool, len(e.all))
	for _, g := range gs {
		inSet[g.(*group).id] = true
	}

	const unvisited = int32(-1)
	index := make([]int32, e.n)
	lowlink := make([]int32, e.n)
	for i := range index {
		index[i] = unvisited
	}
	onStack := NewBitset(e.n)
	var sccStack []uint64
	var next int32

	type frame struct {
		v     uint64
		succs []uint64
		i     int
		self  bool
	}
	var frames []frame
	var results []core.Set

	// Cooperative cancellation: ctx.Err() is checked every cancelCheckMask+1
	// visited states; on cancellation the search aborts and returns the
	// components found so far (the caller re-checks the context).
	const cancelCheckMask = 1023
	var steps uint64

	visit := func(v uint64) frame {
		index[v] = next
		lowlink[v] = next
		next++
		sccStack = append(sccStack, v)
		onStack.Set(v)
		succs, self := e.successors(v, inSet, w, nil)
		return frame{v: v, succs: succs, self: self}
	}

	w.ForEach(func(start uint64) bool {
		if index[start] != unvisited {
			return true
		}
		frames = append(frames[:0], visit(start))
		for len(frames) > 0 {
			if steps++; steps&cancelCheckMask == 0 && e.canceled() {
				return false
			}
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				u := f.succs[f.i]
				f.i++
				if index[u] == unvisited {
					frames = append(frames, visit(u))
				} else if onStack.Get(u) && index[u] < lowlink[f.v] {
					lowlink[f.v] = index[u]
				}
				continue
			}
			// Frame complete.
			v, self := f.v, f.self
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if lowlink[v] < lowlink[p.v] {
					lowlink[p.v] = lowlink[v]
				}
			}
			if lowlink[v] == index[v] {
				// Pop the component rooted at v.
				var members []uint64
				for {
					u := sccStack[len(sccStack)-1]
					sccStack = sccStack[:len(sccStack)-1]
					onStack.Clear(u)
					members = append(members, u)
					if u == v {
						break
					}
				}
				if len(members) > 1 || self {
					scc := NewBitset(e.n)
					for _, u := range members {
						scc.Set(u)
					}
					results = append(results, scc)
					e.stats.SCCCount++
					e.stats.SCCSizeTotal += len(members)
				}
			}
		}
		return true
	})
	return results
}
