package protocols

import (
	"fmt"

	"stsyn/internal/protocol"
)

// DijkstraThreeState builds Dijkstra's three-state token circulation
// (CACM 1974, the second solution): n machines 0..n-1 with x_i ∈ {0,1,2},
// machine 0 the "bottom" and machine n-1 the "top" (which also reads the
// bottom's state — a locality shape different from the plain ring):
//
//	bottom: x0+1 = x1              → x0 := x0 - 1
//	middle: xi+1 = x(i-1)          → xi := x(i-1)
//	        xi+1 = x(i+1)          → xi := x(i+1)
//	top:    x(n-2) = x0 ∧ x(n-1) ≠ x(n-2)+1 → x(n-1) := x(n-2)+1
//
// The legitimate states are those with exactly one privilege (enabled
// guard). The action set was reconstructed from the literature and
// machine-verified by this repository's checker: it is strongly
// self-stabilizing for every n ≥ 3 we test, and serves as an additional
// verification case study with a non-ring locality.
func DijkstraThreeState(n int) *protocol.Spec {
	if n < 3 {
		panic("protocols: DijkstraThreeState requires n ≥ 3")
	}
	sp := &protocol.Spec{Name: fmt.Sprintf("dijkstra-3state-%d", n)}
	for i := 0; i < n; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("x%d", i), Dom: 3})
	}
	p1 := func(id int) protocol.IntExpr {
		return protocol.AddMod{A: v(id), B: c(1), Mod: 3}
	}
	m1 := func(id int) protocol.IntExpr {
		return protocol.SubMod{A: v(id), B: c(1), Mod: 3}
	}
	sp.Procs = append(sp.Procs, protocol.Process{
		Name: "P0", Reads: protocol.SortedIDs(0, 1), Writes: []int{0},
		Actions: []protocol.Action{{
			Guard:   eq(p1(0), v(1)),
			Assigns: []protocol.Assignment{{Var: 0, Expr: m1(0)}},
		}},
	})
	for i := 1; i < n-1; i++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name: fmt.Sprintf("P%d", i), Reads: protocol.SortedIDs(i-1, i, i+1), Writes: []int{i},
			Actions: []protocol.Action{
				{Guard: eq(p1(i), v(i-1)), Assigns: []protocol.Assignment{{Var: i, Expr: v(i - 1)}}},
				{Guard: eq(p1(i), v(i+1)), Assigns: []protocol.Assignment{{Var: i, Expr: v(i + 1)}}},
			},
		})
	}
	top := n - 1
	sp.Procs = append(sp.Procs, protocol.Process{
		Name: fmt.Sprintf("P%d", top), Reads: protocol.SortedIDs(0, top-1, top), Writes: []int{top},
		Actions: []protocol.Action{{
			Guard: protocol.Conj(
				eq(v(top-1), v(0)),
				protocol.Neq{A: v(top), B: p1(top - 1)}),
			Assigns: []protocol.Assignment{{Var: top, Expr: p1(top - 1)}},
		}},
	})
	sp.Invariant = ExactlyOnePrivilege(sp)
	return sp
}

// ExactlyOnePrivilege builds the predicate "exactly one action guard is
// enabled" — Dijkstra's definition of legitimacy for his token systems.
func ExactlyOnePrivilege(sp *protocol.Spec) protocol.BoolExpr {
	var guards []protocol.BoolExpr
	for pi := range sp.Procs {
		for _, a := range sp.Procs[pi].Actions {
			guards = append(guards, a.Guard)
		}
	}
	var disj []protocol.BoolExpr
	for i := range guards {
		var conj []protocol.BoolExpr
		for j := range guards {
			if i == j {
				conj = append(conj, guards[j])
			} else {
				conj = append(conj, protocol.Not{X: guards[j]})
			}
		}
		disj = append(disj, protocol.Conj(conj...))
	}
	return protocol.Disj(disj...)
}
