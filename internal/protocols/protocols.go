// Package protocols contains parametric generators for the paper's case
// studies: Dijkstra's token ring (Section II), maximal matching on a
// bidirectional ring (Section VI-A, including Gouda and Acharya's manually
// designed protocol whose flaw the paper exposes), three coloring on a ring
// (Section VI-B), and the two-ring token ring (Section VI-C).
package protocols

import (
	"fmt"

	"stsyn/internal/protocol"
)

func v(id int) protocol.V                  { return protocol.V{ID: id} }
func c(val int) protocol.C                 { return protocol.C{Val: val} }
func eq(a, b protocol.IntExpr) protocol.Eq { return protocol.Eq{A: a, B: b} }
func plus1(id, mod int) protocol.IntExpr {
	return protocol.AddMod{A: v(id), B: c(1), Mod: mod}
}

// TokenRing builds the non-stabilizing k-process token ring with the given
// domain size (the paper's running example uses k=4, dom=3):
//
//	P0: x0 == x(k-1) → x0 := x(k-1) + 1  (mod dom)
//	Pj: xj + 1 == x(j-1) → xj := x(j-1)   for 1 ≤ j < k
//
// The invariant S1 holds exactly when one token exists.
func TokenRing(k, dom int) *protocol.Spec {
	if k < 2 || dom < 2 {
		panic("protocols: TokenRing requires k ≥ 2 and dom ≥ 2")
	}
	sp := &protocol.Spec{Name: fmt.Sprintf("token-ring-%d-%d", k, dom)}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("x%d", i), Dom: dom})
	}
	sp.Procs = append(sp.Procs, protocol.Process{
		Name:   "P0",
		Reads:  protocol.SortedIDs(0, k-1),
		Writes: []int{0},
		Actions: []protocol.Action{{
			Guard:   eq(v(0), v(k-1)),
			Assigns: []protocol.Assignment{{Var: 0, Expr: plus1(k-1, dom)}},
		}},
	})
	for j := 1; j < k; j++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   fmt.Sprintf("P%d", j),
			Reads:  protocol.SortedIDs(j-1, j),
			Writes: []int{j},
			Actions: []protocol.Action{{
				Guard:   eq(plus1(j, dom), v(j-1)),
				Assigns: []protocol.Assignment{{Var: j, Expr: v(j - 1)}},
			}},
		})
	}
	sp.Invariant = tokenRingInvariant(k, dom)
	return sp
}

// tokenRingInvariant is S1: exactly one process holds a token. One disjunct
// per token holder; holder 0 is the all-equal configuration.
func tokenRingInvariant(k, dom int) protocol.BoolExpr {
	var disj []protocol.BoolExpr
	for holder := 0; holder < k; holder++ {
		var conj []protocol.BoolExpr
		for j := 1; j < k; j++ {
			if j == holder {
				conj = append(conj, eq(plus1(j, dom), v(j-1)))
			} else {
				conj = append(conj, eq(v(j), v(j-1)))
			}
		}
		disj = append(disj, protocol.Conj(conj...))
	}
	return protocol.Disj(disj...)
}

// DijkstraTokenRing builds Dijkstra's self-stabilizing token ring — the
// protocol the paper's heuristic re-derives automatically:
//
//	P0: x0 == x(k-1) → x0 := x(k-1) + 1  (mod dom)
//	Pj: xj != x(j-1) → xj := x(j-1)       for 1 ≤ j < k
func DijkstraTokenRing(k, dom int) *protocol.Spec {
	sp := TokenRing(k, dom)
	sp.Name = fmt.Sprintf("dijkstra-token-ring-%d-%d", k, dom)
	for j := 1; j < k; j++ {
		sp.Procs[j].Actions = []protocol.Action{{
			Guard:   protocol.Neq{A: v(j), B: v(j - 1)},
			Assigns: []protocol.Assignment{{Var: j, Expr: v(j - 1)}},
		}}
	}
	return sp
}

// Pointer values of the maximal-matching protocol.
const (
	MLeft  = 0
	MRight = 1
	MSelf  = 2
)

// Matching builds the non-stabilizing (empty) maximal-matching protocol on
// a bidirectional ring of k processes. Process Pi owns mi ∈ {left, right,
// self} and reads the pointers of both neighbors. The target invariant is
// I_MM = ∀i: LC_i with
//
//	LC_i ≡ (mi=left  ⇒ m(i-1)=right) ∧
//	       (mi=right ⇒ m(i+1)=left)  ∧
//	       (mi=self  ⇒ m(i-1)=left ∧ m(i+1)=right)
func Matching(k int) *protocol.Spec {
	if k < 3 {
		panic("protocols: Matching requires k ≥ 3")
	}
	sp := &protocol.Spec{Name: fmt.Sprintf("matching-%d", k)}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("m%d", i), Dom: 3})
	}
	for i := 0; i < k; i++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   fmt.Sprintf("P%d", i),
			Reads:  protocol.SortedIDs((i+k-1)%k, i, (i+1)%k),
			Writes: []int{i},
		})
	}
	var conj []protocol.BoolExpr
	for i := 0; i < k; i++ {
		left, right := (i+k-1)%k, (i+1)%k
		conj = append(conj,
			protocol.Implies{A: eq(v(i), c(MLeft)), B: eq(v(left), c(MRight))},
			protocol.Implies{A: eq(v(i), c(MRight)), B: eq(v(right), c(MLeft))},
			protocol.Implies{A: eq(v(i), c(MSelf)),
				B: protocol.Conj(eq(v(left), c(MLeft)), eq(v(right), c(MRight)))},
		)
	}
	sp.Invariant = protocol.Conj(conj...)
	return sp
}

// GoudaAcharyaMatching builds the manually designed maximal-matching
// protocol of Gouda and Acharya which the paper found to contain a
// non-progress cycle (Section VI-A):
//
//	mi = left  ∧ m(i-1) = left  → mi := self
//	mi = right ∧ m(i+1) = right → mi := self
//	mi = self  ∧ m(i-1) = left  → mi := left
//	mi = self  ∧ m(i+1) = right → mi := right
func GoudaAcharyaMatching(k int) *protocol.Spec {
	sp := Matching(k)
	sp.Name = fmt.Sprintf("gouda-acharya-matching-%d", k)
	for i := 0; i < k; i++ {
		left, right := (i+k-1)%k, (i+1)%k
		sp.Procs[i].Actions = []protocol.Action{
			{
				Guard:   protocol.Conj(eq(v(i), c(MLeft)), eq(v(left), c(MLeft))),
				Assigns: []protocol.Assignment{{Var: i, Expr: c(MSelf)}},
			},
			{
				Guard:   protocol.Conj(eq(v(i), c(MRight)), eq(v(right), c(MRight))),
				Assigns: []protocol.Assignment{{Var: i, Expr: c(MSelf)}},
			},
			{
				Guard:   protocol.Conj(eq(v(i), c(MSelf)), eq(v(left), c(MLeft))),
				Assigns: []protocol.Assignment{{Var: i, Expr: c(MLeft)}},
			},
			{
				Guard:   protocol.Conj(eq(v(i), c(MSelf)), eq(v(right), c(MRight))),
				Assigns: []protocol.Assignment{{Var: i, Expr: c(MRight)}},
			},
		}
	}
	return sp
}

// Coloring builds the non-stabilizing (empty) three-coloring protocol on a
// ring of k processes: Pi owns color ci ∈ {0,1,2} and reads both neighbors.
// The target invariant is ∀i: c(i-1) != ci (proper coloring).
func Coloring(k int) *protocol.Spec {
	if k < 3 {
		panic("protocols: Coloring requires k ≥ 3")
	}
	sp := &protocol.Spec{Name: fmt.Sprintf("coloring-%d", k)}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("c%d", i), Dom: 3})
	}
	for i := 0; i < k; i++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   fmt.Sprintf("P%d", i),
			Reads:  protocol.SortedIDs((i+k-1)%k, i, (i+1)%k),
			Writes: []int{i},
		})
	}
	var conj []protocol.BoolExpr
	for i := 0; i < k; i++ {
		conj = append(conj, protocol.Neq{A: v((i + k - 1) % k), B: v(i)})
	}
	sp.Invariant = protocol.Conj(conj...)
	return sp
}
