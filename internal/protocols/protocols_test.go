package protocols

import (
	"testing"

	"stsyn/internal/protocol"
)

func TestAllSpecsValidate(t *testing.T) {
	specs := []*protocol.Spec{
		TokenRing(4, 3),
		TokenRing(5, 5),
		DijkstraTokenRing(4, 3),
		Matching(5),
		Matching(11),
		GoudaAcharyaMatching(5),
		Coloring(3),
		Coloring(40),
		TwoRingTokenRing(),
	}
	for _, sp := range specs {
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
}

func TestTokenRingInvariantStates(t *testing.T) {
	// S1 has dom·k states: one per token position and base value.
	for _, tc := range []struct{ k, dom int }{{3, 3}, {4, 3}, {4, 4}, {5, 5}} {
		sp := TokenRing(tc.k, tc.dom)
		ix := protocol.NewIndexer(sp)
		count := 0
		s := make(protocol.State, tc.k)
		for i := uint64(0); i < ix.Len(); i++ {
			ix.Decode(i, s)
			if sp.Invariant.EvalBool(s) {
				count++
			}
		}
		if count != tc.k*tc.dom {
			t.Errorf("TR(%d,%d): |S1| = %d, want %d", tc.k, tc.dom, count, tc.k*tc.dom)
		}
	}
}

func TestTokenRingPaperStates(t *testing.T) {
	sp := TokenRing(4, 3)
	in := protocol.State{1, 0, 0, 0}  // P1 has the token (paper example)
	out := protocol.State{0, 0, 1, 2} // paper's deadlock state
	if !sp.Invariant.EvalBool(in) {
		t.Error("⟨1,0,0,0⟩ should satisfy S1")
	}
	if sp.Invariant.EvalBool(out) {
		t.Error("⟨0,0,1,2⟩ should not satisfy S1")
	}
}

func TestMatchingInvariantExamples(t *testing.T) {
	sp := Matching(5)
	L, R, S := MLeft, MRight, MSelf
	cases := []struct {
		s    protocol.State
		want bool
	}{
		{protocol.State{S, R, L, R, L}, true},  // P0 self, P1-P2 and P3-P4 matched
		{protocol.State{R, L, S, R, L}, true},  // P0-P1 and P3-P4 matched, P2 self
		{protocol.State{L, S, L, S, L}, false}, // paper's cycle start
		{protocol.State{S, S, S, S, S}, false}, // all self: maximality violated
		{protocol.State{L, R, L, R, L}, false}, // mismatched pointers
	}
	for _, tc := range cases {
		if got := sp.Invariant.EvalBool(tc.s); got != tc.want {
			t.Errorf("I_MM(%v) = %v, want %v", tc.s, got, tc.want)
		}
	}
}

func TestMatchingInvariantNonEmpty(t *testing.T) {
	for _, k := range []int{3, 4, 5, 6, 7} {
		sp := Matching(k)
		ix := protocol.NewIndexer(sp)
		s := make(protocol.State, k)
		found := false
		for i := uint64(0); i < ix.Len() && !found; i++ {
			ix.Decode(i, s)
			found = sp.Invariant.EvalBool(s)
		}
		if !found {
			t.Errorf("I_MM empty for k=%d", k)
		}
	}
}

func TestColoringInvariant(t *testing.T) {
	sp := Coloring(5)
	if !sp.Invariant.EvalBool(protocol.State{0, 1, 2, 0, 1}) {
		t.Error("proper coloring rejected")
	}
	if sp.Invariant.EvalBool(protocol.State{0, 0, 1, 2, 1}) {
		t.Error("adjacent equal colors accepted")
	}
	// Ring closure: first/last adjacency counts.
	if sp.Invariant.EvalBool(protocol.State{0, 1, 0, 1, 0}) {
		t.Error("wrap-around conflict accepted")
	}
}

func TestEmptyProtocolsHaveNoActions(t *testing.T) {
	for _, sp := range []*protocol.Spec{Matching(5), Coloring(5)} {
		for _, p := range sp.Procs {
			if len(p.Actions) != 0 {
				t.Errorf("%s %s: non-stabilizing protocol should be empty", sp.Name, p.Name)
			}
		}
	}
}

func TestTwoRingLegitimateCount(t *testing.T) {
	sp := TwoRingTokenRing()
	ix := protocol.NewIndexer(sp)
	if ix.Len() != 131072 { // 4^8 · 2
		t.Fatalf("state space = %d, want 131072", ix.Len())
	}
	s := make(protocol.State, len(sp.Vars))
	count := 0
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		if sp.Invariant.EvalBool(s) {
			count++
		}
	}
	// 8 token positions × 4 base values.
	if count != 32 {
		t.Errorf("|I| = %d, want 32", count)
	}
}

func TestTwoRingLegitimateCycle(t *testing.T) {
	// Follow the deterministic legitimate execution for two full rounds and
	// check it stays inside I with exactly one enabled process per state.
	sp := TwoRingTokenRing()
	s := make(protocol.State, len(sp.Vars)) // all zero…
	s[8] = 1                                // …with turn=1: the PA0-token state
	if !sp.Invariant.EvalBool(s) {
		t.Fatal("initial state not legitimate")
	}
	for step := 0; step < 16; step++ {
		var enabled []int
		var next protocol.State
		for pi := range sp.Procs {
			for _, a := range sp.Procs[pi].Actions {
				if a.Guard.EvalBool(s) {
					enabled = append(enabled, pi)
					next = append(protocol.State(nil), s...)
					for _, as := range a.Assigns {
						next[as.Var] = as.Expr.EvalInt(s)
					}
				}
			}
		}
		if len(enabled) != 1 {
			t.Fatalf("step %d: %d processes enabled at %v, want 1", step, len(enabled), s)
		}
		if !sp.Invariant.EvalBool(next) {
			t.Fatalf("step %d: closure violated at %v -> %v", step, s, next)
		}
		s = next
	}
}

func TestPanicsOnBadParameters(t *testing.T) {
	for name, f := range map[string]func(){
		"TokenRing": func() { TokenRing(1, 3) },
		"Matching":  func() { Matching(2) },
		"Coloring":  func() { Coloring(2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s accepted invalid parameters", name)
				}
			}()
			f()
		}()
	}
}
