package protocols_test

import (
	"testing"

	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

func TestDijkstraThreeStateStabilizes(t *testing.T) {
	for _, n := range []int{3, 4, 5, 6, 7} {
		sp := protocols.DijkstraThreeState(n)
		e, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		if v := verify.StronglyStabilizing(e, e.ActionGroups()); !v.OK {
			t.Fatalf("n=%d: %s (witness %v)", n, v.Reason, v.Witness)
		}
		// |I| grows linearly: 12n - 15 legitimate states (verified counts).
		if got, want := e.States(e.Invariant()), float64(12*n-15); got != want {
			t.Errorf("n=%d: |I| = %v, want %v", n, got, want)
		}
	}
}

func TestDijkstraThreeStateSymbolic(t *testing.T) {
	sp := protocols.DijkstraThreeState(6)
	se, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.StronglyStabilizing(se, se.ActionGroups()); !v.OK {
		t.Fatalf("symbolic check failed: %s", v.Reason)
	}
}

// TestDijkstraThreeStateVariantRefuted documents the verifier-guided
// reconstruction: dropping the top machine's read of the bottom (turning
// the system into a pure chain where the top copies like a middle machine)
// yields a protocol the checker refutes — the checker is what discriminated
// the correct rule set from plausible mis-rememberings.
func TestDijkstraThreeStateVariantRefuted(t *testing.T) {
	const n = 4
	sp := protocols.DijkstraThreeState(n)
	p1 := func(id int) protocol.IntExpr {
		return protocol.AddMod{A: protocol.V{ID: id}, B: protocol.C{Val: 1}, Mod: 3}
	}
	top := n - 1
	sp.Procs[top] = protocol.Process{
		Name:  sp.Procs[top].Name,
		Reads: protocol.SortedIDs(top-1, top), Writes: []int{top},
		Actions: []protocol.Action{{
			Guard:   protocol.Eq{A: p1(top), B: protocol.V{ID: top - 1}},
			Assigns: []protocol.Assignment{{Var: top, Expr: protocol.V{ID: top - 1}}},
		}},
	}
	sp.Invariant = protocols.ExactlyOnePrivilege(sp)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.StronglyStabilizing(e, e.ActionGroups()); v.OK {
		t.Error("the chain variant should not verify")
	}
}

func TestDijkstraThreeStateTopLocality(t *testing.T) {
	// The top machine's locality includes the bottom machine — the non-ring
	// shape that makes this a distinct topology case study.
	sp := protocols.DijkstraThreeState(5)
	top := sp.Procs[4]
	found := false
	for _, id := range top.Reads {
		if id == 0 {
			found = true
		}
	}
	if !found {
		t.Error("top machine must read the bottom machine's variable")
	}
}
