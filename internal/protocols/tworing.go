package protocols

import "stsyn/internal/protocol"

// TwoRingDomain is the domain of the ring variables of TR².
const TwoRingDomain = 4

// TwoRingTokenRing builds the non-stabilizing two-ring token ring (TR²) of
// Section VI-C: two 4-process unidirectional rings A and B coupled at their
// 0-processes, plus a boolean turn variable. Ring A's coupling process
// executes only when turn = 1 and ring B's only when turn = 0. The paper
// leaves the concrete action set to its technical report; this
// reconstruction realizes the token definitions given in the paper:
//
//	PA0 has the token iff a0 = a3 ∧ b0 = b3 ∧ a0 = b0
//	PAi has the token iff a(i-1) = ai ⊕ 1            (1 ≤ i ≤ 3)
//	PB0 has the token iff b0 = b3 ∧ a0 = a3 ∧ b0 ⊕ 1 = a0
//	PBi has the token iff b(i-1) = bi ⊕ 1            (1 ≤ i ≤ 3)
//
// Actions: PA0 increments a0 when it holds the token and turn = 1, handing
// control to ring B by resetting turn; PAi (i ≥ 1) copies a(i-1) when it
// holds the token. PB0 and PBi mirror ring A with the roles of turn
// reversed. In the legitimate states exactly one process is enabled and the
// token circulates A-ring, B-ring, A-ring, … forever.
func TwoRingTokenRing() *protocol.Spec {
	const (
		n   = 4
		dom = TwoRingDomain
	)
	// Variable layout: a0..a3 = ids 0..3, b0..b3 = ids 4..7, turn = id 8.
	a := func(i int) int { return i }
	b := func(i int) int { return n + i }
	const turn = 2 * n

	sp := &protocol.Spec{Name: "two-ring-token-ring"}
	for i := 0; i < n; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: "a" + string(rune('0'+i)), Dom: dom})
	}
	for i := 0; i < n; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: "b" + string(rune('0'+i)), Dom: dom})
	}
	sp.Vars = append(sp.Vars, protocol.Var{Name: "turn", Dom: 2})

	// PA0: turn=1 ∧ token → a0 := a0 ⊕ 1; turn := 0.
	sp.Procs = append(sp.Procs, protocol.Process{
		Name:   "PA0",
		Reads:  protocol.SortedIDs(a(0), a(3), b(0), b(3), turn),
		Writes: protocol.SortedIDs(a(0), turn),
		Actions: []protocol.Action{{
			Guard: protocol.Conj(eq(v(turn), c(1)),
				eq(v(a(0)), v(a(3))), eq(v(b(0)), v(b(3))), eq(v(a(0)), v(b(0)))),
			Assigns: []protocol.Assignment{
				{Var: a(0), Expr: plus1(a(0), dom)},
				{Var: turn, Expr: c(0)},
			},
		}},
	})
	// PA1..PA3: copy the predecessor's value when holding the token.
	for i := 1; i < n; i++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   "PA" + string(rune('0'+i)),
			Reads:  protocol.SortedIDs(a(i-1), a(i)),
			Writes: []int{a(i)},
			Actions: []protocol.Action{{
				Guard:   eq(v(a(i-1)), plus1(a(i), dom)),
				Assigns: []protocol.Assignment{{Var: a(i), Expr: v(a(i - 1))}},
			}},
		})
	}
	// PB0: turn=0 ∧ token → b0 := b0 ⊕ 1; turn := 1.
	sp.Procs = append(sp.Procs, protocol.Process{
		Name:   "PB0",
		Reads:  protocol.SortedIDs(b(0), b(3), a(0), a(3), turn),
		Writes: protocol.SortedIDs(b(0), turn),
		Actions: []protocol.Action{{
			Guard: protocol.Conj(eq(v(turn), c(0)),
				eq(v(b(0)), v(b(3))), eq(v(a(0)), v(a(3))), eq(plus1(b(0), dom), v(a(0)))),
			Assigns: []protocol.Assignment{
				{Var: b(0), Expr: plus1(b(0), dom)},
				{Var: turn, Expr: c(1)},
			},
		}},
	})
	for i := 1; i < n; i++ {
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   "PB" + string(rune('0'+i)),
			Reads:  protocol.SortedIDs(b(i-1), b(i)),
			Writes: []int{b(i)},
			Actions: []protocol.Action{{
				Guard:   eq(v(b(i-1)), plus1(b(i), dom)),
				Assigns: []protocol.Assignment{{Var: b(i), Expr: v(b(i - 1))}},
			}},
		})
	}

	// Legitimate states: exactly one token with turn in the matching phase.
	uniform := func(ids []int) protocol.BoolExpr {
		var cj []protocol.BoolExpr
		for i := 1; i < len(ids); i++ {
			cj = append(cj, eq(v(ids[i-1]), v(ids[i])))
		}
		return protocol.Conj(cj...)
	}
	aIDs := []int{a(0), a(1), a(2), a(3)}
	bIDs := []int{b(0), b(1), b(2), b(3)}

	var disj []protocol.BoolExpr
	// Token at PA0 (waiting to fire): rings uniform and equal, turn=1.
	disj = append(disj, protocol.Conj(eq(v(turn), c(1)),
		uniform(aIDs), uniform(bIDs), eq(v(a(0)), v(b(0)))))
	// Token at PAj (1 ≤ j ≤ 3): PA0 already fired, so turn=0; ring B
	// uniform and equal to ring A's stale suffix.
	for j := 1; j < n; j++ {
		disj = append(disj, protocol.Conj(eq(v(turn), c(0)),
			uniform(bIDs), uniform(aIDs[:j]), uniform(aIDs[j:]),
			eq(v(a(j-1)), plus1(a(j), dom)),
			eq(v(a(3)), v(b(0)))))
	}
	// Token at PB0 (waiting to fire): rings uniform, ring B one behind,
	// turn=0.
	disj = append(disj, protocol.Conj(eq(v(turn), c(0)),
		uniform(aIDs), uniform(bIDs), eq(plus1(b(0), dom), v(a(0)))))
	// Token at PBj (1 ≤ j ≤ 3): PB0 already fired, so turn=1; ring A
	// uniform and equal to ring B's fresh prefix.
	for j := 1; j < n; j++ {
		disj = append(disj, protocol.Conj(eq(v(turn), c(1)),
			uniform(aIDs), uniform(bIDs[:j]), uniform(bIDs[j:]),
			eq(v(b(j-1)), plus1(b(j), dom)),
			eq(v(b(0)), v(a(0)))))
	}
	sp.Invariant = protocol.Disj(disj...)
	return sp
}
