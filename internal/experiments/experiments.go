// Package experiments regenerates the paper's evaluation: the time and
// space sweeps of Figures 6-11 and the local-correctability summary of
// Figure 5 / Table 1. Each sweep runs the synthesizer on the symbolic
// engine (as STSyn does) and reports the same series the paper plots:
// ranking time, SCC-detection time, total time, average SCC size in BDD
// nodes and total program size in BDD nodes.
package experiments

import (
	"fmt"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// Row is one sweep measurement (one x-axis point of a figure).
type Row struct {
	K           int           // number of processes
	States      float64       // |Sp|
	RankingTime time.Duration // Figures 6, 8, 10
	SCCTime     time.Duration // Figures 6, 8, 10
	TotalTime   time.Duration // Figures 6, 8, 10
	AvgSCCSize  float64       // Figures 7, 9, 11 (BDD nodes)
	ProgramSize int           // Figures 7, 9, 11 (BDD nodes)
	SCCCount    int
	MaxRank     int
	Pass        int
	Verified    bool
	Err         string

	// Substrate observability (zero when the engine has no SpaceReporter).
	PeakNodes    int     // peak live BDD nodes over the run
	GCRuns       int     // garbage collections during the run
	CacheHitRate float64 // op-cache hit rate
}

// runOne synthesizes one instance on a fresh symbolic engine and verifies
// the result.
func runOne(k int, sp *protocol.Spec) Row {
	row := Row{K: k}
	e, err := symbolic.New(sp)
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.States = e.States(e.Universe())
	res, err := core.AddConvergence(e, core.Options{})
	if res != nil {
		row.RankingTime = res.RankingTime
		row.SCCTime = res.SCCTime
		row.TotalTime = res.TotalTime
		row.AvgSCCSize = res.AvgSCCSize
		row.ProgramSize = res.ProgramSize
		row.SCCCount = res.SCCCount
		row.MaxRank = res.MaxRank()
		row.Pass = res.PassCompleted
	}
	if sr, ok := interface{}(e).(core.SpaceReporter); ok {
		st := sr.SpaceStats()
		row.PeakNodes = st.PeakLiveNodes
		row.GCRuns = st.GCRuns
		row.CacheHitRate = st.CacheHitRate
	}
	if err != nil {
		row.Err = err.Error()
		return row
	}
	row.Verified = verify.StronglyStabilizing(e, res.Protocol).OK
	return row
}

// MatchingSweep regenerates Figures 6 and 7: maximal matching for the given
// process counts (the paper sweeps K=5..11).
func MatchingSweep(ks []int) []Row {
	rows := make([]Row, 0, len(ks))
	for _, k := range ks {
		rows = append(rows, runOne(k, protocols.Matching(k)))
	}
	return rows
}

// ColoringSweep regenerates Figures 8 and 9: three coloring for the given
// process counts (the paper sweeps K=5..40 in steps of 5).
func ColoringSweep(ks []int) []Row {
	rows := make([]Row, 0, len(ks))
	for _, k := range ks {
		rows = append(rows, runOne(k, protocols.Coloring(k)))
	}
	return rows
}

// TokenRingSweep regenerates Figures 10 and 11: the token ring with a fixed
// domain (the paper uses |D|=4) for the given process counts.
func TokenRingSweep(ks []int, dom int) []Row {
	rows := make([]Row, 0, len(ks))
	for _, k := range ks {
		rows = append(rows, runOne(k, protocols.TokenRing(k, dom)))
	}
	return rows
}

// FormatRows renders a sweep as the two tables the corresponding figures
// plot (time series and space series).
func FormatRows(title string, rows []Row) string {
	out := fmt.Sprintf("%s\n", title)
	out += fmt.Sprintf("%4s %14s %12s %12s %12s %6s %5s %5s\n",
		"K", "states", "ranking", "scc", "total", "ranks", "pass", "ok")
	for _, r := range rows {
		if r.Err != "" {
			out += fmt.Sprintf("%4d %14.4g  FAILED: %s\n", r.K, r.States, r.Err)
			continue
		}
		out += fmt.Sprintf("%4d %14.4g %12s %12s %12s %6d %5d %5v\n",
			r.K, r.States,
			r.RankingTime.Round(time.Millisecond),
			r.SCCTime.Round(time.Millisecond),
			r.TotalTime.Round(time.Millisecond),
			r.MaxRank, r.Pass, r.Verified)
	}
	out += fmt.Sprintf("%4s %14s %14s %10s %10s %8s %8s\n",
		"K", "avg SCC (nodes)", "program (nodes)", "#SCCs", "peak", "gc", "hit%")
	for _, r := range rows {
		if r.Err != "" {
			continue
		}
		out += fmt.Sprintf("%4d %15.1f %15d %10d %10d %8d %7.0f%%\n",
			r.K, r.AvgSCCSize, r.ProgramSize, r.SCCCount,
			r.PeakNodes, r.GCRuns, 100*r.CacheHitRate)
	}
	return out
}
