package experiments

import (
	"strings"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocols"
)

func TestDomainEffectTokenRing(t *testing.T) {
	rows := DomainEffect(3, []int{2, 3, 4, 5})
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		if r.Err != "" {
			t.Errorf("TR(3,%d) failed: %s", r.Dom, r.Err)
			continue
		}
		if !r.Verified {
			t.Errorf("TR(3,%d) not verified", r.Dom)
		}
	}
	// Program size must grow with the domain.
	if rows[0].ProgramSize >= rows[len(rows)-1].ProgramSize {
		t.Errorf("program size should grow with the domain: %d vs %d",
			rows[0].ProgramSize, rows[len(rows)-1].ProgramSize)
	}
	if out := FormatDomainRows(rows); !strings.Contains(out, "Domain-size effect") {
		t.Error("format lost header")
	}
}

func TestScheduleEffectTokenRing(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	factory := func() (core.Engine, error) { return explicit.New(sp, 0) }
	row, err := ScheduleEffect("token-ring-4-3", factory, core.AllSchedules(4))
	if err != nil {
		t.Fatal(err)
	}
	if row.Successes != 24 {
		t.Errorf("TR(4,3): %d/24 schedules succeeded", row.Successes)
	}
	// The paper reports several alternative stabilizing versions.
	if row.DistinctVersions < 3 {
		t.Errorf("expected ≥3 distinct versions, got %d", row.DistinctVersions)
	}
	if out := FormatScheduleRows([]ScheduleRow{row}); !strings.Contains(out, "token-ring-4-3") {
		t.Error("format lost row")
	}
}

func TestWeakVsStrong(t *testing.T) {
	for _, tc := range []struct {
		name string
		mk   func() (core.Engine, error)
	}{
		{"token-ring-4-3", func() (core.Engine, error) { return explicit.New(protocols.TokenRing(4, 3), 0) }},
		{"matching-5", func() (core.Engine, error) { return explicit.New(protocols.Matching(5), 0) }},
		{"coloring-5", func() (core.Engine, error) { return explicit.New(protocols.Coloring(5), 0) }},
	} {
		row, err := WeakVsStrong(tc.name, tc.mk)
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		if !row.WeakOK || !row.StrongOK {
			t.Errorf("%s: weakOK=%v strongOK=%v", tc.name, row.WeakOK, row.StrongOK)
		}
		// Weak synthesis keeps every legal recovery group (pim), so its δ is
		// at least as large as the strong version's.
		if row.WeakGroups < row.StrongGroups {
			t.Errorf("%s: weak δ (%d groups) smaller than strong δ (%d)",
				tc.name, row.WeakGroups, row.StrongGroups)
		}
	}
}

func TestScheduleEffectMatching(t *testing.T) {
	// K=5, the paper's smallest matching instance. (Matching on a 4-ring is
	// not synthesized by the heuristic under any schedule — even rings are
	// harder for this invariant, and the paper's own sweep starts at 5.)
	sp := protocols.Matching(5)
	factory := func() (core.Engine, error) { return explicit.New(sp, 0) }
	row, err := ScheduleEffect("matching-5", factory, core.AllSchedules(5)[:24])
	if err != nil {
		t.Fatal(err)
	}
	if row.Successes == 0 {
		t.Error("no schedule synthesized matching-5")
	}
	if row.DistinctVersions == 0 {
		t.Error("no distinct versions recorded")
	}
}
