package experiments

import (
	"fmt"
	"strings"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
)

// The SCC-crossover experiment behind the explicit engine's Auto selection:
// the same synthesis run with Tarjan and with the forward-backward search
// pinned, over case studies whose state counts straddle the candidate
// threshold. The Auto resolution (explicit.SetSCCAlgorithm's default)
// switches on state count alone so that every node of a distributed search
// resolves it identically; this sweep is how the threshold constant was
// measured. Regenerate with `stsyn-bench -fig scc-crossover`; the resulting
// table is committed in DESIGN.md ("Choosing the SCC algorithm").

// CrossoverRow is one case study measured under both SCC algorithms.
type CrossoverRow struct {
	Name   string
	States float64

	TarjanSCC   time.Duration // SCC time with Tarjan pinned
	FBSCC       time.Duration // SCC time with forward-backward pinned
	TarjanTotal time.Duration
	FBTotal     time.Duration

	// Auto is the algorithm the Auto policy picks for this state count.
	Auto string
	Err  string
}

// sccCrossoverCases spans roughly 10^3..5*10^5 states. quick keeps only the
// small half (CI smoke).
func sccCrossoverCases(quick bool) []struct {
	Name string
	Spec *protocol.Spec
} {
	cases := []struct {
		Name string
		Spec *protocol.Spec
	}{
		{"token-ring-4-3", protocols.TokenRing(4, 3)},
		{"matching-8", protocols.Matching(8)},
		{"coloring-7", protocols.Coloring(7)},
		{"coloring-9", protocols.Coloring(9)},
	}
	if quick {
		return cases
	}
	return append(cases, []struct {
		Name string
		Spec *protocol.Spec
	}{
		{"coloring-10", protocols.Coloring(10)},
		{"coloring-11", protocols.Coloring(11)},
		{"coloring-12", protocols.Coloring(12)},
		// Matching stops at k=10: its SCC-rich graphs make the FB leg
		// super-linearly slower, and the point — Tarjan keeps winning on
		// matching at every size — is already unambiguous there.
		{"matching-10", protocols.Matching(10)},
	}...)
}

// SCCCrossover runs the crossover sweep. Each leg is a full AddConvergence
// with the algorithm pinned, so the reported SCC time is what the selection
// actually buys during synthesis (trim included) rather than an isolated
// decomposition microbenchmark.
func SCCCrossover(quick bool) []CrossoverRow {
	var rows []CrossoverRow
	for _, c := range sccCrossoverCases(quick) {
		row := CrossoverRow{Name: c.Name}
		leg := func(alg explicit.SCCAlgorithm) (time.Duration, time.Duration, error) {
			e, err := explicit.New(c.Spec, 0)
			if err != nil {
				return 0, 0, err
			}
			if row.States == 0 {
				row.States = e.States(e.Universe())
				row.Auto = e.SCCAlgorithmName()
			}
			e.SetSCCAlgorithm(alg)
			t0 := time.Now()
			res, err := core.AddConvergence(e, core.Options{})
			total := time.Since(t0)
			if err != nil {
				return 0, total, err
			}
			return res.SCCTime, total, nil
		}
		var err1, err2 error
		row.TarjanSCC, row.TarjanTotal, err1 = leg(explicit.Tarjan)
		row.FBSCC, row.FBTotal, err2 = leg(explicit.ForwardBackward)
		for _, err := range []error{err1, err2} {
			if err != nil && row.Err == "" {
				row.Err = err.Error()
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatCrossover renders the sweep as the DESIGN.md table.
func FormatCrossover(rows []CrossoverRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SCC crossover: Tarjan vs forward-backward (full synthesis, SCC time)\n")
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s %12s %-14s\n",
		"case", "states", "tarjan-scc", "fb-scc", "tarjan-total", "fb-total", "auto-picks")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	for _, r := range rows {
		if r.Err != "" {
			fmt.Fprintf(&b, "%-16s %12g  error: %s\n", r.Name, r.States, r.Err)
			continue
		}
		fmt.Fprintf(&b, "%-16s %12g %12s %12s %12s %12s %-14s\n",
			r.Name, r.States, ms(r.TarjanSCC), ms(r.FBSCC),
			ms(r.TarjanTotal), ms(r.FBTotal), r.Auto)
	}
	return b.String()
}
