package experiments

import (
	"runtime"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// The symbolic-engine perf benchmark: the same synthesis workload run
// with the reference fixpoint scheme (full-image trim, whole-set SCC
// grow, throwaway scratch managers — the pre-tuning engine) and with the
// tuned default (dead-group dropping, frontier grow, retained warm
// scratch manager with a persistent→scratch copy memo), plus a third leg
// adding parallel SCC fixpoints to document that the worker pool changes
// nothing but wall-clock. The committed BENCH_symbolic.json baseline is
// generated from these rows (`stsyn-bench -json -engine symbolic` /
// scripts/bench.sh).

// SymbolicLeg is one measured synthesis run on the symbolic engine.
type SymbolicLeg struct {
	TotalMs         float64 `json:"total_ms"`
	RankingMs       float64 `json:"ranking_ms"`
	SCCMs           float64 `json:"scc_ms"`
	AllocBytes      uint64  `json:"alloc_bytes"`
	AllocObjects    uint64  `json:"alloc_objects"`
	RankInfFastFail int     `json:"rank_infinity_fastfail"`
	PeakNodes       int     `json:"peak_nodes"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	Verified        bool    `json:"verified"`
	Err             string  `json:"err,omitempty"`
}

// SymbolicBenchRow is the before/after measurement for one case study.
type SymbolicBenchRow struct {
	Name   string  `json:"name"`
	States float64 `json:"states"`
	Groups int     `json:"groups"`

	Reference    SymbolicLeg `json:"reference"`     // reference fixpoints, throwaway scratch
	Tuned        SymbolicLeg `json:"tuned"`         // frontier/dropping fixpoints + warm scratch
	TunedWorkers SymbolicLeg `json:"tuned_workers"` // tuned + parallel SCC fixpoints

	// Speedup is Reference.TotalMs / Tuned.TotalMs.
	Speedup float64 `json:"speedup"`
	// ProtocolsMatch reports that all legs synthesized the identical
	// protocol (same group keys) — the knobs must not change results.
	ProtocolsMatch bool `json:"protocols_match"`
}

// SymbolicBench is the document committed as BENCH_symbolic.json.
type SymbolicBench struct {
	Description string             `json:"description"`
	Cases       []SymbolicBenchRow `json:"cases"`
}

// symbolicBenchCases are the case studies of the baseline. The small
// instances size so cycle detection dominates and every leg finishes in
// seconds; coloring-11 and two-ring — absent before the profile-guided
// rank/recovery pass because the tuning left them at 1.0× (coloring-11)
// or over a minute per leg (two-ring) — exercise the warm-scratch
// ranking/recovery images and the balanced union trees that pass added.
// Quick mode keeps only the small instances: two-ring alone costs
// minutes across nine legs, far past a CI smoke budget.
func symbolicBenchCases(quick bool) []struct {
	Name string
	Spec *protocol.Spec
} {
	if quick {
		return []struct {
			Name string
			Spec *protocol.Spec
		}{
			{"token-ring-4-3", protocols.TokenRing(4, 3)},
			{"matching-6", protocols.Matching(6)},
			{"coloring-7", protocols.Coloring(7)},
		}
	}
	return []struct {
		Name string
		Spec *protocol.Spec
	}{
		{"token-ring-4-3", protocols.TokenRing(4, 3)},
		{"token-ring-5-4", protocols.TokenRing(5, 4)},
		{"matching-6", protocols.Matching(6)},
		{"matching-7", protocols.Matching(7)},
		{"coloring-7", protocols.Coloring(7)},
		{"coloring-11", protocols.Coloring(11)},
		{"two-ring", protocols.TwoRingTokenRing()},
	}
}

// runSymbolicLeg builds a fresh symbolic engine, applies configure, runs
// AddConvergence and returns the measured leg plus the synthesized
// protocol's keys (nil on failure).
func runSymbolicLeg(sp *protocol.Spec, configure func(*symbolic.Engine)) (SymbolicLeg, []protocol.Key) {
	var leg SymbolicLeg
	e, err := symbolic.New(sp)
	if err != nil {
		leg.Err = err.Error()
		return leg, nil
	}
	if configure != nil {
		configure(e)
	}

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err := core.AddConvergence(e, core.Options{})
	leg.TotalMs = float64(time.Since(t0)) / float64(time.Millisecond)
	runtime.ReadMemStats(&after)
	leg.AllocBytes = after.TotalAlloc - before.TotalAlloc

	leg.AllocObjects = after.Mallocs - before.Mallocs

	if res != nil {
		leg.RankingMs = float64(res.RankingTime) / float64(time.Millisecond)
		leg.SCCMs = float64(res.SCCTime) / float64(time.Millisecond)
		leg.RankInfFastFail = res.RankInfinityFastFail
	}
	sp2 := e.SpaceStats()
	leg.PeakNodes = sp2.PeakLiveNodes
	leg.CacheHitRate = sp2.CacheHitRate
	if err != nil {
		leg.Err = err.Error()
		return leg, nil
	}
	leg.Verified = verify.StronglyStabilizing(e, res.Protocol).OK
	return leg, protocolKeys(res.Protocol)
}

// SymbolicBenchmark runs the before/after tuning benchmark over the case
// studies. quick shrinks the instances for CI smoke runs. Each leg is
// the minimum of three reps, interleaved across the legs (ref, tuned,
// tuned+workers, ref, ...) so load drift on a shared machine hits every
// leg alike — the committed baseline should reflect the engine, not the
// scheduler. The synthesized protocol is deterministic, so any rep's
// keys serve for the cross-leg comparison.
func SymbolicBenchmark(opts BenchOpts) SymbolicBench {
	bench := SymbolicBench{
		Description: "symbolic engine: reference fixpoints and ranks (full-image trim, whole-set SCC grow and rank BFS, throwaway scratch, persistent-manager images) vs the tuned default (dead-group dropping, frontier grow and rank BFS, retained warm scratch manager for SCC and ranking/recovery images, balanced union trees, rank-infinity fast-fail); tuned_workers additionally farms SCC fixpoints across 2 workers; times are min-of-3 interleaved reps",
	}
	cfgs := []func(*symbolic.Engine){
		func(e *symbolic.Engine) { e.SetReferenceFixpoints(true); e.SetReferenceRanks(true) },
		nil,
		func(e *symbolic.Engine) { e.SetParallelism(2) },
	}
	legNames := [3]string{"reference", "tuned", "tuned_workers"}
	for _, c := range symbolicBenchCases(opts.Quick) {
		if !opts.keep(c.Name) {
			continue
		}
		row := SymbolicBenchRow{Name: c.Name}
		if e, err := symbolic.New(c.Spec); err == nil {
			row.States = e.States(e.Universe())
			row.Groups = len(e.ActionGroups()) + len(e.CandidateGroups())
		}
		var legs [3]SymbolicLeg
		var keys [3][]protocol.Key
		for r := 0; r < 3; r++ {
			for i, cfg := range cfgs {
				stop := opts.startCPU(c.Name+"."+legNames[i], r == 0)
				leg, k := runSymbolicLeg(c.Spec, cfg)
				stop()
				opts.writeMem(c.Name+"."+legNames[i], r == 0)
				if r == 0 || (leg.Err == "" && leg.TotalMs < legs[i].TotalMs) {
					legs[i], keys[i] = leg, k
				}
			}
		}
		row.Reference, row.Tuned, row.TunedWorkers = legs[0], legs[1], legs[2]
		if row.Tuned.TotalMs > 0 {
			row.Speedup = row.Reference.TotalMs / row.Tuned.TotalMs
		}
		row.ProtocolsMatch = keys[0] != nil &&
			sameKeys(keys[0], keys[1]) && sameKeys(keys[0], keys[2])
		bench.Cases = append(bench.Cases, row)
	}
	return bench
}
