package experiments

import (
	"fmt"
	"strings"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/prune"
)

// The symmetry-pruning experiment (EXPERIMENTS.md "Symmetry-quotiented
// schedule search"): the same schedule search run unpruned and through
// internal/prune's orbit quotient + fixpoint memo, on the committed ring
// case studies. The quotient divides the search space by the group size
// (the action is free); the memo shows up as hits and in the wall time.
// Both legs must agree on the outcome — the pruned search is
// result-preserving by construction, and this experiment re-checks it.
// Regenerate with `stsyn-bench -fig prune`.

// PruneRow is one case study measured with and without pruning.
type PruneRow struct {
	Name      string
	Space     string // schedule source: all(k!) or rotations(k)
	GroupSize int

	Schedules      int // search-space size
	Representative int // schedules surviving the quotient

	UnprunedTime time.Duration
	PrunedTime   time.Duration

	MemoHits, MemoMisses int64

	Outcome string // "win@<schedule>" or "all fail"
	Match   bool   // both legs agree (same winner and protocol, or both fail)
	Err     string
}

func pruneEffectCases() []struct {
	Name  string
	Spec  *protocol.Spec
	All   bool // full k! instead of rotations
	Procs int
} {
	return []struct {
		Name  string
		Spec  *protocol.Spec
		All   bool
		Procs int
	}{
		{"coloring-4", protocols.Coloring(4), true, 4},
		{"coloring-5", protocols.Coloring(5), true, 5},
		{"matching-4", protocols.Matching(4), true, 4},
		{"matching-5", protocols.Matching(5), false, 5},
		{"coloring-6", protocols.Coloring(6), false, 6},
		{"token-ring-4-3", protocols.TokenRing(4, 3), false, 4},
	}
}

// PruneEffect runs both legs of each case single-threaded, so the
// schedule-evaluation order (and thus the timing comparison) is exactly
// the sequential lowest-index search in both.
func PruneEffect() []PruneRow {
	var rows []PruneRow
	for _, c := range pruneEffectCases() {
		row := PruneRow{Name: c.Name}
		scheds := core.Rotations(c.Procs)
		row.Space = fmt.Sprintf("rotations(%d)", len(scheds))
		if c.All {
			scheds = core.AllSchedules(c.Procs)
			row.Space = fmt.Sprintf("all(%d)", len(scheds))
		}
		row.Schedules = len(scheds)

		g := prune.DeriveGroup(c.Spec)
		row.GroupSize = g.Size()
		q := prune.NewQuotientStream(g, core.StreamSchedules(scheds), true)
		var reps [][]int
		for s, ok := q.Next(); ok; s, ok = q.Next() {
			reps = append(reps, s)
		}
		row.Representative = len(reps)

		factory := func() (core.Engine, error) { return explicit.New(c.Spec, 0) }
		t0 := time.Now()
		bestU, _, errU := core.TrySchedules(factory, core.Options{}, scheds, 1)
		row.UnprunedTime = time.Since(t0)

		jm := prune.NewMemo(0).ForJob(prune.Scope(c.Spec, "explicit", core.Strong, core.BatchResolution))
		t0 = time.Now()
		bestP, _, errP := core.TrySchedules(factory, core.Options{Memo: jm}, reps, 1)
		row.PrunedTime = time.Since(t0)
		row.MemoHits, row.MemoMisses = jm.Hits(), jm.Misses()

		switch {
		case errU != nil && errP != nil:
			row.Outcome = "all fail"
			row.Match = true
		case errU == nil && errP == nil:
			row.Outcome = fmt.Sprintf("win@%v", bestU.Schedule)
			u := protocolKeys(bestU.Result.Protocol)
			p := protocolKeys(bestP.Result.Protocol)
			row.Match = sameKeys(u, p) && fmt.Sprint(bestU.Schedule) == fmt.Sprint(bestP.Schedule)
		default:
			row.Match = false
			row.Err = fmt.Sprintf("outcome diverged: unpruned err=%v, pruned err=%v", errU, errP)
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatPruneRows renders the sweep as the EXPERIMENTS.md table.
func FormatPruneRows(rows []PruneRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Symmetry pruning: orbit quotient + fixpoint memo (sequential search)\n")
	fmt.Fprintf(&b, "%-16s %-14s %6s %6s %6s %12s %12s %6s %7s  %-18s %s\n",
		"case", "space", "group", "scheds", "reps", "unpruned", "pruned", "hits", "misses", "outcome", "match")
	ms := func(d time.Duration) string {
		return fmt.Sprintf("%.1fms", float64(d)/float64(time.Millisecond))
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-16s %-14s %6d %6d %6d %12s %12s %6d %7d  %-18s %v\n",
			r.Name, r.Space, r.GroupSize, r.Schedules, r.Representative,
			ms(r.UnprunedTime), ms(r.PrunedTime), r.MemoHits, r.MemoMisses, r.Outcome, r.Match)
		if r.Err != "" {
			fmt.Fprintf(&b, "  error: %s\n", r.Err)
		}
	}
	return b.String()
}
