package experiments

import (
	"strings"
	"testing"
)

func TestLocalCorrectabilityMatchesPaperTable(t *testing.T) {
	rows := LocalCorrectability()
	want := map[string]bool{
		"3-Coloring":      true,
		"Matching":        false,
		"Token Ring (TR)": false,
		"Two-Ring TR":     false,
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows, want %d", len(rows), len(want))
	}
	for _, r := range rows {
		w, ok := want[r.CaseStudy]
		if !ok {
			t.Errorf("unexpected case study %q", r.CaseStudy)
			continue
		}
		if r.LocallyCorrectable != w {
			t.Errorf("%s: locally correctable = %v, paper says %v",
				r.CaseStudy, r.LocallyCorrectable, w)
		}
	}
	// Matching must come with a concrete counterexample state.
	for _, r := range rows {
		if r.CaseStudy == "Matching" && r.Witness == nil {
			t.Error("matching verdict should carry a witness state")
		}
	}
	if out := FormatCorrectability(rows); !strings.Contains(out, "3-Coloring") {
		t.Error("formatting lost rows")
	}
}

func TestSweepsSmall(t *testing.T) {
	rows := ColoringSweep([]int{5, 6})
	for _, r := range rows {
		if r.Err != "" {
			t.Fatalf("coloring-%d failed: %s", r.K, r.Err)
		}
		if !r.Verified {
			t.Errorf("coloring-%d not verified", r.K)
		}
		if r.ProgramSize <= 0 || r.TotalTime <= 0 {
			t.Errorf("coloring-%d: missing measurements %+v", r.K, r)
		}
	}
	rows = MatchingSweep([]int{5})
	if rows[0].Err != "" || !rows[0].Verified {
		t.Fatalf("matching-5 failed: %+v", rows[0])
	}
	if rows[0].SCCCount == 0 || rows[0].AvgSCCSize <= 0 {
		t.Error("matching must report SCC space metrics (cycles form)")
	}
	rows = TokenRingSweep([]int{3, 4}, 4)
	for _, r := range rows {
		if r.Err != "" || !r.Verified {
			t.Fatalf("token ring |D|=4 k=%d failed: %+v", r.K, r)
		}
	}
	if out := FormatRows("fig", rows); !strings.Contains(out, "ranking") {
		t.Error("FormatRows lost header")
	}
}

func TestTokenRingStatesGrow(t *testing.T) {
	rows := TokenRingSweep([]int{2, 3}, 4)
	if rows[0].States != 16 || rows[1].States != 64 {
		t.Errorf("state counts wrong: %v, %v", rows[0].States, rows[1].States)
	}
}
