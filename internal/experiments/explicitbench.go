package experiments

import (
	"runtime"
	"sort"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/verify"
)

// The explicit-engine kernel benchmark: the same synthesis workload run
// twice on the explicit engine, once with the retained per-state reference
// scans (the pre-kernel engine) and once with the word-level delta-shift
// kernels, plus a third leg with the forward-backward SCC search selected.
// The committed BENCH_explicit.json baseline is generated from these rows
// (`stsyn-bench -json` / scripts/bench.sh).

// ExplicitLeg is one measured synthesis run.
type ExplicitLeg struct {
	TotalMs         float64 `json:"total_ms"`
	RankingMs       float64 `json:"ranking_ms"`
	SCCMs           float64 `json:"scc_ms"`
	AllocBytes      uint64  `json:"alloc_bytes"`
	AllocObjects    uint64  `json:"alloc_objects"`
	RankInfFastFail int     `json:"rank_infinity_fastfail"`
	Verified        bool    `json:"verified"`
	Err             string  `json:"err,omitempty"`
}

// ExplicitBenchRow is the before/after measurement for one case study.
type ExplicitBenchRow struct {
	Name   string  `json:"name"`
	States float64 `json:"states"`
	Groups int     `json:"groups"`

	Reference ExplicitLeg `json:"reference"` // per-state scans
	Kernel    ExplicitLeg `json:"kernel"`    // delta-shift kernels, Tarjan SCC
	KernelFB  ExplicitLeg `json:"kernel_fb"` // delta-shift kernels, FB SCC

	// Speedup is Reference.TotalMs / Kernel.TotalMs.
	Speedup float64 `json:"speedup"`
	// ProtocolsMatch reports that all legs synthesized the identical
	// protocol (same group keys) — the kernels must not change results.
	ProtocolsMatch bool `json:"protocols_match"`
}

// ExplicitBench is the document committed as BENCH_explicit.json.
type ExplicitBench struct {
	Description string             `json:"description"`
	Cases       []ExplicitBenchRow `json:"cases"`
}

// explicitBenchCases are the four case studies of the baseline, sized so
// the state spaces are large enough for the word-level kernels to matter.
func explicitBenchCases(quick bool) []struct {
	Name string
	Spec *protocol.Spec
} {
	if quick {
		return []struct {
			Name string
			Spec *protocol.Spec
		}{
			{"token-ring-4-3", protocols.TokenRing(4, 3)},
			{"matching-6", protocols.Matching(6)},
			{"coloring-7", protocols.Coloring(7)},
			{"two-ring", protocols.TwoRingTokenRing()},
		}
	}
	return []struct {
		Name string
		Spec *protocol.Spec
	}{
		{"token-ring-5-4", protocols.TokenRing(5, 4)},
		{"matching-9", protocols.Matching(9)},
		{"coloring-11", protocols.Coloring(11)},
		{"two-ring", protocols.TwoRingTokenRing()},
	}
}

// protocolKeys returns the sorted group keys of a synthesized protocol.
func protocolKeys(gs []core.Group) []protocol.Key {
	keys := make([]protocol.Key, 0, len(gs))
	for _, g := range gs {
		keys = append(keys, g.ProtocolGroup().Key())
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func sameKeys(a, b []protocol.Key) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// runExplicitLeg builds a fresh explicit engine, applies configure, runs
// AddConvergence and returns the measured leg plus the synthesized
// protocol's keys (nil on failure).
func runExplicitLeg(sp *protocol.Spec, configure func(*explicit.Engine)) (ExplicitLeg, []protocol.Key) {
	var leg ExplicitLeg
	e, err := explicit.New(sp, 0)
	if err != nil {
		leg.Err = err.Error()
		return leg, nil
	}
	configure(e)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	t0 := time.Now()
	res, err := core.AddConvergence(e, core.Options{})
	leg.TotalMs = float64(time.Since(t0)) / float64(time.Millisecond)
	runtime.ReadMemStats(&after)
	leg.AllocBytes = after.TotalAlloc - before.TotalAlloc

	leg.AllocObjects = after.Mallocs - before.Mallocs

	if res != nil {
		leg.RankingMs = float64(res.RankingTime) / float64(time.Millisecond)
		leg.SCCMs = float64(res.SCCTime) / float64(time.Millisecond)
		leg.RankInfFastFail = res.RankInfinityFastFail
	}
	if err != nil {
		leg.Err = err.Error()
		return leg, nil
	}
	leg.Verified = verify.StronglyStabilizing(e, res.Protocol).OK
	return leg, protocolKeys(res.Protocol)
}

// ExplicitBenchmark runs the before/after kernel benchmark over the case
// studies. All three legs share the default rank scheme (frontier BFS,
// fast-fail), so the rows keep isolating the kernel speedup.
func ExplicitBenchmark(opts BenchOpts) ExplicitBench {
	bench := ExplicitBench{
		Description: "explicit engine: per-state reference scans vs word-level delta-shift kernels (same synthesis workload; kernel_fb additionally selects the forward-backward SCC search)",
	}
	for _, c := range explicitBenchCases(opts.Quick) {
		if !opts.keep(c.Name) {
			continue
		}
		row := ExplicitBenchRow{Name: c.Name}
		if e, err := explicit.New(c.Spec, 0); err == nil {
			row.States = e.States(e.Universe())
			row.Groups = len(e.ActionGroups()) + len(e.CandidateGroups())
		}
		var refKeys, kernKeys, fbKeys []protocol.Key
		// Both baseline legs pin Tarjan: the row isolates the kernel
		// speedup, and the Auto default would otherwise fold the SCC
		// choice into the comparison.
		profiled := func(leg string, cfg func(*explicit.Engine)) (ExplicitLeg, []protocol.Key) {
			stop := opts.startCPU(c.Name+"."+leg, true)
			l, k := runExplicitLeg(c.Spec, cfg)
			stop()
			opts.writeMem(c.Name+"."+leg, true)
			return l, k
		}
		row.Reference, refKeys = profiled("reference", func(e *explicit.Engine) {
			e.SetReferenceKernels(true)
			e.SetSCCAlgorithm(explicit.Tarjan)
		})
		row.Kernel, kernKeys = profiled("kernel", func(e *explicit.Engine) {
			e.SetSCCAlgorithm(explicit.Tarjan)
		})
		row.KernelFB, fbKeys = profiled("kernel_fb", func(e *explicit.Engine) {
			e.SetSCCAlgorithm(explicit.ForwardBackward)
		})
		if row.Kernel.TotalMs > 0 {
			row.Speedup = row.Reference.TotalMs / row.Kernel.TotalMs
		}
		row.ProtocolsMatch = refKeys != nil &&
			sameKeys(refKeys, kernKeys) && sameKeys(refKeys, fbKeys)
		bench.Cases = append(bench.Cases, row)
	}
	return bench
}
