package experiments

import "fmt"

// Bench regression guard: compare a freshly measured benchmark document
// against the committed baseline. Wall-clock on a shared machine is noisy,
// so the guard is deliberately coarse — it flags only order-of-magnitude
// problems (a leg slower than tolerance × its committed time) and hard
// correctness regressions (a leg that stopped verifying, or legs that no
// longer synthesize the same protocol). scripts/bench.sh -check wires it
// up; CI runs it non-gating.

// CheckExplicit returns one message per regression of fresh against base.
// tolerance is the allowed slowdown factor (e.g. 2 = half as fast).
func CheckExplicit(fresh, base ExplicitBench, tolerance float64) []string {
	var bad []string
	byName := make(map[string]ExplicitBenchRow, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for _, c := range fresh.Cases {
		b, ok := byName[c.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: case missing from the committed baseline", c.Name))
			continue
		}
		if !c.ProtocolsMatch {
			bad = append(bad, fmt.Sprintf("%s: legs no longer synthesize the same protocol", c.Name))
		}
		bad = append(bad, checkLeg(c.Name+"/kernel", c.Kernel.TotalMs, c.Kernel.Verified, c.Kernel.Err,
			b.Kernel.TotalMs, tolerance)...)
		bad = append(bad, checkLeg(c.Name+"/kernel_fb", c.KernelFB.TotalMs, c.KernelFB.Verified, c.KernelFB.Err,
			b.KernelFB.TotalMs, tolerance)...)
	}
	return bad
}

// CheckSymbolic is CheckExplicit for the symbolic document.
func CheckSymbolic(fresh, base SymbolicBench, tolerance float64) []string {
	var bad []string
	byName := make(map[string]SymbolicBenchRow, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for _, c := range fresh.Cases {
		b, ok := byName[c.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: case missing from the committed baseline", c.Name))
			continue
		}
		if !c.ProtocolsMatch {
			bad = append(bad, fmt.Sprintf("%s: legs no longer synthesize the same protocol", c.Name))
		}
		bad = append(bad, checkLeg(c.Name+"/tuned", c.Tuned.TotalMs, c.Tuned.Verified, c.Tuned.Err,
			b.Tuned.TotalMs, tolerance)...)
		bad = append(bad, checkLeg(c.Name+"/tuned_workers", c.TunedWorkers.TotalMs, c.TunedWorkers.Verified,
			c.TunedWorkers.Err, b.TunedWorkers.TotalMs, tolerance)...)
	}
	return bad
}

func checkLeg(name string, gotMs float64, verified bool, errMsg string, baseMs, tolerance float64) []string {
	var bad []string
	if errMsg != "" {
		bad = append(bad, fmt.Sprintf("%s: failed: %s", name, errMsg))
		return bad
	}
	if !verified {
		bad = append(bad, fmt.Sprintf("%s: synthesized protocol no longer verifies", name))
	}
	if baseMs > 0 && gotMs > baseMs*tolerance {
		bad = append(bad, fmt.Sprintf("%s: %.1fms vs committed %.1fms (over the %.1fx tolerance)",
			name, gotMs, baseMs, tolerance))
	}
	return bad
}
