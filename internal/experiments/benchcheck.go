package experiments

import "fmt"

// Bench regression guard: compare a freshly measured benchmark document
// against the committed baseline. Wall-clock on a shared machine is noisy,
// so the guard is deliberately coarse — it flags only order-of-magnitude
// problems (a leg slower than tolerance × its committed time) and hard
// correctness regressions (a leg that stopped verifying, or legs that no
// longer synthesize the same protocol). Allocation totals are steadier
// than wall-clock but still jitter with GC timing, so allocation growth
// comes back as non-gating warnings rather than failures.
// scripts/bench.sh -check wires it up; CI runs it non-gating.

// Tolerances is the slowdown guard configuration: the default allowed
// slowdown factor, with per-case overrides for legs whose noise profile
// differs from the small instances (keyed by case name).
type Tolerances struct {
	Default float64
	PerCase map[string]float64
}

// forCase returns the tolerance for the named case.
func (t Tolerances) forCase(name string) float64 {
	if f, ok := t.PerCase[name]; ok && f > 0 {
		return f
	}
	if t.Default > 0 {
		return t.Default
	}
	return 3
}

// allocWarnFactor is the non-gating allocation-growth threshold: a leg
// allocating more than this factor of its committed bytes or objects
// earns a warning. Baselines without allocation data (zero) are skipped.
const allocWarnFactor = 2

// CheckExplicit returns one message per regression of fresh against base,
// plus non-gating warnings (allocation growth beyond allocWarnFactor).
func CheckExplicit(fresh, base ExplicitBench, tol Tolerances) (bad, warn []string) {
	byName := make(map[string]ExplicitBenchRow, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for _, c := range fresh.Cases {
		b, ok := byName[c.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: case missing from the committed baseline", c.Name))
			continue
		}
		if !c.ProtocolsMatch {
			bad = append(bad, fmt.Sprintf("%s: legs no longer synthesize the same protocol", c.Name))
		}
		factor := tol.forCase(c.Name)
		bad = append(bad, checkLeg(c.Name+"/kernel", c.Kernel.TotalMs, c.Kernel.Verified, c.Kernel.Err,
			b.Kernel.TotalMs, factor)...)
		bad = append(bad, checkLeg(c.Name+"/kernel_fb", c.KernelFB.TotalMs, c.KernelFB.Verified, c.KernelFB.Err,
			b.KernelFB.TotalMs, factor)...)
		warn = append(warn, warnAllocs(c.Name+"/kernel",
			c.Kernel.AllocBytes, c.Kernel.AllocObjects, b.Kernel.AllocBytes, b.Kernel.AllocObjects)...)
		warn = append(warn, warnAllocs(c.Name+"/kernel_fb",
			c.KernelFB.AllocBytes, c.KernelFB.AllocObjects, b.KernelFB.AllocBytes, b.KernelFB.AllocObjects)...)
	}
	return bad, warn
}

// CheckSymbolic is CheckExplicit for the symbolic document.
func CheckSymbolic(fresh, base SymbolicBench, tol Tolerances) (bad, warn []string) {
	byName := make(map[string]SymbolicBenchRow, len(base.Cases))
	for _, c := range base.Cases {
		byName[c.Name] = c
	}
	for _, c := range fresh.Cases {
		b, ok := byName[c.Name]
		if !ok {
			bad = append(bad, fmt.Sprintf("%s: case missing from the committed baseline", c.Name))
			continue
		}
		if !c.ProtocolsMatch {
			bad = append(bad, fmt.Sprintf("%s: legs no longer synthesize the same protocol", c.Name))
		}
		factor := tol.forCase(c.Name)
		bad = append(bad, checkLeg(c.Name+"/tuned", c.Tuned.TotalMs, c.Tuned.Verified, c.Tuned.Err,
			b.Tuned.TotalMs, factor)...)
		bad = append(bad, checkLeg(c.Name+"/tuned_workers", c.TunedWorkers.TotalMs, c.TunedWorkers.Verified,
			c.TunedWorkers.Err, b.TunedWorkers.TotalMs, factor)...)
		warn = append(warn, warnAllocs(c.Name+"/tuned",
			c.Tuned.AllocBytes, c.Tuned.AllocObjects, b.Tuned.AllocBytes, b.Tuned.AllocObjects)...)
		warn = append(warn, warnAllocs(c.Name+"/tuned_workers",
			c.TunedWorkers.AllocBytes, c.TunedWorkers.AllocObjects, b.TunedWorkers.AllocBytes, b.TunedWorkers.AllocObjects)...)
	}
	return bad, warn
}

func checkLeg(name string, gotMs float64, verified bool, errMsg string, baseMs, tolerance float64) []string {
	var bad []string
	if errMsg != "" {
		bad = append(bad, fmt.Sprintf("%s: failed: %s", name, errMsg))
		return bad
	}
	if !verified {
		bad = append(bad, fmt.Sprintf("%s: synthesized protocol no longer verifies", name))
	}
	if baseMs > 0 && gotMs > baseMs*tolerance {
		bad = append(bad, fmt.Sprintf("%s: %.1fms vs committed %.1fms (over the %.1fx tolerance)",
			name, gotMs, baseMs, tolerance))
	}
	return bad
}

func warnAllocs(name string, gotBytes, gotObjs, baseBytes, baseObjs uint64) []string {
	var warn []string
	if baseBytes > 0 && gotBytes > baseBytes*allocWarnFactor {
		warn = append(warn, fmt.Sprintf("%s: %d alloc bytes vs committed %d (over the %dx allocation watermark)",
			name, gotBytes, baseBytes, allocWarnFactor))
	}
	if baseObjs > 0 && gotObjs > baseObjs*allocWarnFactor {
		warn = append(warn, fmt.Sprintf("%s: %d alloc objects vs committed %d (over the %dx allocation watermark)",
			name, gotObjs, baseObjs, allocWarnFactor))
	}
	return warn
}
