package experiments

import (
	"fmt"

	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
)

// CorrectabilityRow is one row of the paper's Figure 5 / Table 1.
type CorrectabilityRow struct {
	CaseStudy          string
	LocallyCorrectable bool
	Reason             string
	Witness            protocol.State // a counterexample state, if any
}

// LocallyCorrectable checks the property the paper's Section VII discusses:
// with the invariant decomposed into one local predicate LC_i per process,
// a protocol is locally correctable iff from every illegitimate state some
// process with a violated local predicate can repair it by writing its own
// variables without falsifying any other process's currently-true local
// predicate. (Such harmless local repairs strictly decrease the number of
// violated local predicates, so greedy local repair converges; the matching
// protocol fails exactly this test — a repair by Pi can invalidate
// LC_(i-1) or LC_(i+1).)
//
// The check enumerates the state space explicitly, so it is meant for the
// small instances of Table 1.
func LocallyCorrectable(sp *protocol.Spec, local []protocol.BoolExpr) (bool, protocol.State) {
	ix := protocol.NewIndexer(sp)
	s := make(protocol.State, len(sp.Vars))
	t := make(protocol.State, len(sp.Vars))
	for idx := uint64(0); idx < ix.Len(); idx++ {
		ix.Decode(idx, s)
		if sp.Invariant.EvalBool(s) {
			continue
		}
		if !stateLocallyRepairable(sp, local, s, t) {
			return false, append(protocol.State(nil), s...)
		}
	}
	return true, nil
}

func stateLocallyRepairable(sp *protocol.Spec, local []protocol.BoolExpr, s, t protocol.State) bool {
	for pi := range sp.Procs {
		if local[pi].EvalBool(s) {
			continue
		}
		// Try every write of process pi.
		p := &sp.Procs[pi]
		doms := make([]int, len(p.Writes))
		for i, id := range p.Writes {
			doms[i] = sp.Vars[id].Dom
		}
		found := false
		protocol.Valuations(doms, func(wv []int) {
			if found {
				return
			}
			copy(t, s)
			for i, id := range p.Writes {
				t[id] = wv[i]
			}
			if !local[pi].EvalBool(t) {
				return
			}
			for pj := range sp.Procs {
				if pj != pi && local[pj].EvalBool(s) && !local[pj].EvalBool(t) {
					return // repair corrupts a neighbour
				}
			}
			found = true
		})
		if found {
			return true
		}
	}
	return false
}

// matchingLocals returns the LC_i decomposition of I_MM (Section VI-A).
func matchingLocals(k int) []protocol.BoolExpr {
	var out []protocol.BoolExpr
	for i := 0; i < k; i++ {
		left, right := (i+k-1)%k, (i+1)%k
		v := func(id int) protocol.V { return protocol.V{ID: id} }
		c := func(x int) protocol.C { return protocol.C{Val: x} }
		out = append(out, protocol.Conj(
			protocol.Implies{A: protocol.Eq{A: v(i), B: c(protocols.MLeft)},
				B: protocol.Eq{A: v(left), B: c(protocols.MRight)}},
			protocol.Implies{A: protocol.Eq{A: v(i), B: c(protocols.MRight)},
				B: protocol.Eq{A: v(right), B: c(protocols.MLeft)}},
			protocol.Implies{A: protocol.Eq{A: v(i), B: c(protocols.MSelf)},
				B: protocol.Conj(
					protocol.Eq{A: v(left), B: c(protocols.MLeft)},
					protocol.Eq{A: v(right), B: c(protocols.MRight)})},
		))
	}
	return out
}

// coloringLocals returns the LC_i decomposition of the coloring invariant.
func coloringLocals(k int) []protocol.BoolExpr {
	var out []protocol.BoolExpr
	for i := 0; i < k; i++ {
		out = append(out, protocol.Neq{
			A: protocol.V{ID: (i + k - 1) % k},
			B: protocol.V{ID: i},
		})
	}
	return out
}

// LocalCorrectability regenerates Figure 5 / Table 1: which case studies
// are locally correctable. The token rings have no per-process conjunctive
// decomposition of their invariant at all (S1 counts tokens globally), so
// they are not locally correctable by construction; matching and coloring
// are decided by the checker.
func LocalCorrectability() []CorrectabilityRow {
	var rows []CorrectabilityRow

	ok, w := LocallyCorrectable(protocols.Coloring(5), coloringLocals(5))
	rows = append(rows, CorrectabilityRow{
		CaseStudy:          "3-Coloring",
		LocallyCorrectable: ok,
		Reason:             "every conflicted process can pick other(left,right) harmlessly",
		Witness:            w,
	})

	ok, w = LocallyCorrectable(protocols.Matching(5), matchingLocals(5))
	rows = append(rows, CorrectabilityRow{
		CaseStudy:          "Matching",
		LocallyCorrectable: ok,
		Reason:             "local repairs corrupt neighbour predicates (witness below)",
		Witness:            w,
	})

	rows = append(rows, CorrectabilityRow{
		CaseStudy:          "Token Ring (TR)",
		LocallyCorrectable: false,
		Reason:             "S1 counts tokens globally; no per-process conjunctive decomposition",
	})
	rows = append(rows, CorrectabilityRow{
		CaseStudy:          "Two-Ring TR",
		LocallyCorrectable: false,
		Reason:             "single-token invariant spans both rings and the turn variable",
	})
	return rows
}

// FormatCorrectability renders Table 1.
func FormatCorrectability(rows []CorrectabilityRow) string {
	out := "Table 1: Local Correctability of Case Studies\n"
	out += fmt.Sprintf("%-18s %-20s %s\n", "Case Study", "Locally Correctable", "Notes")
	for _, r := range rows {
		yn := "No"
		if r.LocallyCorrectable {
			yn = "Yes"
		}
		note := r.Reason
		if r.Witness != nil {
			note += fmt.Sprintf(" (witness %v)", r.Witness)
		}
		out += fmt.Sprintf("%-18s %-20s %s\n", r.CaseStudy, yn, note)
	}
	return out
}
