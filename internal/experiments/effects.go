package experiments

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// The paper (Section VII): "We have conducted similar investigation … on
// the effect of the size of variable domains and the recovery schedule on
// the time/space complexity of synthesis, which we omit due to space
// constraint." These two sweeps reproduce those omitted experiments.

// DomainRow measures the token ring at fixed k while the variable domain
// grows.
type DomainRow struct {
	K, Dom      int
	TotalTime   time.Duration
	SCCTime     time.Duration
	ProgramSize int
	SCCCount    int
	Pass        int
	Resolution  string
	Verified    bool
	Err         string
}

// DomainEffect sweeps the token-ring domain size at fixed k. Both cycle-
// resolution strategies are tried (the paper's batch strategy starts losing
// instances as the domain grows — see EXPERIMENTS.md).
func DomainEffect(k int, doms []int) []DomainRow {
	var rows []DomainRow
	for _, dom := range doms {
		row := DomainRow{K: k, Dom: dom}
		for _, res := range []core.CycleResolution{core.BatchResolution, core.IncrementalResolution} {
			e, err := symbolic.New(protocols.TokenRing(k, dom))
			if err != nil {
				row.Err = err.Error()
				break
			}
			r, err := core.AddConvergence(e, core.Options{CycleResolution: res})
			if err != nil {
				row.Err = err.Error()
				continue
			}
			row.Err = ""
			row.TotalTime = r.TotalTime
			row.SCCTime = r.SCCTime
			row.ProgramSize = r.ProgramSize
			row.SCCCount = r.SCCCount
			row.Pass = r.PassCompleted
			if res == core.BatchResolution {
				row.Resolution = "batch"
			} else {
				row.Resolution = "incremental"
			}
			row.Verified = verify.StronglyStabilizing(e, r.Protocol).OK
			break // first succeeding strategy wins
		}
		rows = append(rows, row)
	}
	return rows
}

// FormatDomainRows renders the domain sweep.
func FormatDomainRows(rows []DomainRow) string {
	out := fmt.Sprintf("Domain-size effect (token ring, k=%d)\n", rows[0].K)
	out += fmt.Sprintf("%4s %12s %12s %10s %6s %5s %12s %3s\n",
		"dom", "total", "scc", "prog(nodes)", "#SCCs", "pass", "resolution", "ok")
	for _, r := range rows {
		if r.Err != "" {
			out += fmt.Sprintf("%4d  FAILED: %s\n", r.Dom, r.Err)
			continue
		}
		out += fmt.Sprintf("%4d %12s %12s %10d %6d %5d %12s %3v\n",
			r.Dom, r.TotalTime.Round(time.Millisecond), r.SCCTime.Round(time.Millisecond),
			r.ProgramSize, r.SCCCount, r.Pass, r.Resolution, r.Verified)
	}
	return out
}

// WeakStrongRow compares weak- and strong-convergence synthesis of the
// same instance (Theorem IV.1's sound-and-complete weak design vs the
// heuristic three-pass strong design).
type WeakStrongRow struct {
	Protocol     string
	WeakTime     time.Duration
	StrongTime   time.Duration
	WeakGroups   int // δ of the weakly stabilizing version (pim)
	StrongGroups int
	WeakOK       bool
	StrongOK     bool
}

// WeakVsStrong runs both synthesis modes on an instance and verifies each
// result against the corresponding property.
func WeakVsStrong(name string, newEngine core.EngineFactory) (WeakStrongRow, error) {
	row := WeakStrongRow{Protocol: name}

	we, err := newEngine()
	if err != nil {
		return row, err
	}
	wres, err := core.AddConvergence(we, core.Options{Convergence: core.Weak})
	if err != nil {
		return row, err
	}
	row.WeakTime = wres.TotalTime
	row.WeakGroups = len(wres.Protocol)
	row.WeakOK = verify.WeaklyStabilizing(we, wres.Protocol).OK

	se, err := newEngine()
	if err != nil {
		return row, err
	}
	sres, err := core.AddConvergence(se, core.Options{})
	if err != nil {
		return row, err
	}
	row.StrongTime = sres.TotalTime
	row.StrongGroups = len(sres.Protocol)
	row.StrongOK = verify.StronglyStabilizing(se, sres.Protocol).OK
	return row, nil
}

// ScheduleRow summarizes a full schedule sweep of one instance.
type ScheduleRow struct {
	Protocol         string
	Schedules        int
	Successes        int
	DistinctVersions int
	MinTime, MaxTime time.Duration
}

// ScheduleEffect tries every recovery schedule on a small instance and
// reports how many succeed, how many distinct stabilizing versions emerge
// (all verified), and the time spread. newEngine creates a fresh engine per
// attempt.
func ScheduleEffect(name string, newEngine core.EngineFactory, schedules [][]int) (ScheduleRow, error) {
	row := ScheduleRow{Protocol: name, Schedules: len(schedules)}
	distinct := make(map[string]bool)
	for _, sched := range schedules {
		e, err := newEngine()
		if err != nil {
			return row, err
		}
		res, err := core.AddConvergence(e, core.Options{Schedule: sched})
		if err != nil {
			continue
		}
		if !verify.StronglyStabilizing(e, res.Protocol).OK {
			return row, fmt.Errorf("schedule %v produced an unsound protocol", sched)
		}
		row.Successes++
		if row.MinTime == 0 || res.TotalTime < row.MinTime {
			row.MinTime = res.TotalTime
		}
		if res.TotalTime > row.MaxTime {
			row.MaxTime = res.TotalTime
		}
		keys := make([]string, 0, len(res.Protocol))
		for _, g := range res.Protocol {
			keys = append(keys, string(g.ProtocolGroup().Key()))
		}
		sort.Strings(keys)
		distinct[strings.Join(keys, "|")] = true
	}
	row.DistinctVersions = len(distinct)
	return row, nil
}

// FormatScheduleRows renders schedule-effect results.
func FormatScheduleRows(rows []ScheduleRow) string {
	out := "Recovery-schedule effect\n"
	out += fmt.Sprintf("%-16s %10s %10s %9s %12s %12s\n",
		"protocol", "schedules", "successes", "versions", "min time", "max time")
	for _, r := range rows {
		out += fmt.Sprintf("%-16s %10d %10d %9d %12s %12s\n",
			r.Protocol, r.Schedules, r.Successes, r.DistinctVersions,
			r.MinTime.Round(time.Millisecond), r.MaxTime.Round(time.Millisecond))
	}
	return out
}
