package experiments

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
)

// BenchOpts configures the JSON engine benchmarks (stsyn-bench -json):
// instance sizing, case selection and the per-leg pprof capture behind
// scripts/profile.sh. The zero value is the full benchmark with no
// profiling.
type BenchOpts struct {
	// Quick shrinks the instances for CI smoke runs.
	Quick bool
	// Case keeps only case studies whose name contains this substring
	// (empty keeps all). Profiling runs want one case; regression checks
	// against a full baseline want them all.
	Case string
	// CPUDir, when non-empty, captures a CPU profile of the first rep of
	// every leg into <dir>/<case>.<leg>.cpu.pprof.
	CPUDir string
	// MemDir, when non-empty, writes an allocation profile after the first
	// rep of every leg into <dir>/<case>.<leg>.mem.pprof. Go's allocs
	// profile is cumulative over the process, so attribute sites with a
	// single -case; the per-leg files still separate the capture points.
	MemDir string
}

// keep reports whether the case named name survives the Case filter.
func (o BenchOpts) keep(name string) bool {
	return o.Case == "" || strings.Contains(name, o.Case)
}

// startCPU begins a per-leg CPU profile capture when enabled for this rep,
// and returns the stop function (a no-op when disabled). Profile I/O
// failures are diagnostics about diagnostics: they go to stderr and the
// benchmark carries on unprofiled.
func (o BenchOpts) startCPU(name string, firstRep bool) func() {
	if o.CPUDir == "" || !firstRep {
		return func() {}
	}
	f, err := os.Create(filepath.Join(o.CPUDir, name+".cpu.pprof"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: cpu profile:", err)
		return func() {}
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		fmt.Fprintln(os.Stderr, "bench: cpu profile:", err)
		f.Close()
		return func() {}
	}
	return func() {
		pprof.StopCPUProfile()
		f.Close()
	}
}

// writeMem writes the allocation profile after a leg when enabled for this
// rep.
func (o BenchOpts) writeMem(name string, firstRep bool) {
	if o.MemDir == "" || !firstRep {
		return
	}
	f, err := os.Create(filepath.Join(o.MemDir, name+".mem.pprof"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench: mem profile:", err)
		return
	}
	defer f.Close()
	runtime.GC() // flush recently freed objects so inuse numbers are real
	if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
		fmt.Fprintln(os.Stderr, "bench: mem profile:", err)
	}
}
