package protocol

// Indexer maps between State valuations and dense uint64 indices using a
// mixed-radix encoding (variable 0 is the most significant digit). It is the
// bridge between the specification-level model and the explicit-state
// engine's bitset representation.
type Indexer struct {
	doms   []int
	weight []uint64 // weight[i] = ∏_{j>i} doms[j]
	n      uint64
}

// NewIndexer builds an indexer for the variables of sp. It panics if the
// state space does not fit in a uint64; callers should check
// Spec.NumStates first.
func NewIndexer(sp *Spec) *Indexer {
	n, ok := sp.NumStates()
	if !ok {
		panic("protocol: state space exceeds uint64")
	}
	ix := &Indexer{
		doms:   make([]int, len(sp.Vars)),
		weight: make([]uint64, len(sp.Vars)),
		n:      n,
	}
	for i, v := range sp.Vars {
		ix.doms[i] = v.Dom
	}
	w := uint64(1)
	for i := len(ix.doms) - 1; i >= 0; i-- {
		ix.weight[i] = w
		w *= uint64(ix.doms[i])
	}
	return ix
}

// Len returns the number of states.
func (ix *Indexer) Len() uint64 { return ix.n }

// NumVars returns the number of variables.
func (ix *Indexer) NumVars() int { return len(ix.doms) }

// Dom returns the domain size of variable id.
func (ix *Indexer) Dom(id int) int { return ix.doms[id] }

// Index returns the dense index of state s.
func (ix *Indexer) Index(s State) uint64 {
	var idx uint64
	for i, v := range s {
		idx += uint64(v) * ix.weight[i]
	}
	return idx
}

// Decode fills s with the valuation of index idx and returns s.
func (ix *Indexer) Decode(idx uint64, s State) State {
	for i := range ix.doms {
		s[i] = int(idx / ix.weight[i] % uint64(ix.doms[i]))
	}
	return s
}

// Value extracts the value of variable id from index idx without decoding
// the whole state.
func (ix *Indexer) Value(idx uint64, id int) int {
	return int(idx / ix.weight[id] % uint64(ix.doms[id]))
}

// WithValue returns idx with variable id set to v.
func (ix *Indexer) WithValue(idx uint64, id, v int) uint64 {
	old := ix.Value(idx, id)
	// Wrapping uint64 arithmetic makes the signed delta exact.
	return idx + uint64(int64(v-old))*ix.weight[id]
}
