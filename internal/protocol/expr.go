// Package protocol defines the formal model of the paper: finite-state
// protocols as tuples ⟨V, δ, Π, T⟩ of variables with finite domains,
// transitions given by guarded commands, processes, and a topology expressed
// as per-process read/write restrictions on variables.
//
// Guards and assignment right-hand sides are small expression ASTs so that
// both the explicit-state engine (direct evaluation) and the symbolic engine
// (compilation to BDDs) can interpret the same specification.
package protocol

import (
	"fmt"
	"strings"
)

// State is a valuation of all protocol variables, indexed by variable ID.
type State []int

// IntExpr is an integer-valued expression over protocol variables.
type IntExpr interface {
	// EvalInt evaluates the expression in state s.
	EvalInt(s State) int
	// CollectVars adds every variable ID referenced by the expression to set.
	CollectVars(set map[int]bool)
	// String renders the expression using the given variable names.
	Render(names []string) string
}

// BoolExpr is a boolean-valued expression over protocol variables.
type BoolExpr interface {
	EvalBool(s State) bool
	CollectVars(set map[int]bool)
	Render(names []string) string
}

// V references variable id as an integer expression.
type V struct{ ID int }

// C is an integer constant.
type C struct{ Val int }

// AddMod is (A + B) mod Mod.
type AddMod struct {
	A, B IntExpr
	Mod  int
}

// SubMod is (A - B) mod Mod, always non-negative.
type SubMod struct {
	A, B IntExpr
	Mod  int
}

// Cond is a conditional integer expression: if If then Then else Else.
type Cond struct {
	If         BoolExpr
	Then, Else IntExpr
}

func (e V) EvalInt(s State) int { return s[e.ID] }
func (e C) EvalInt(State) int   { return e.Val }
func (e AddMod) EvalInt(s State) int {
	return ((e.A.EvalInt(s)+e.B.EvalInt(s))%e.Mod + e.Mod) % e.Mod
}
func (e SubMod) EvalInt(s State) int {
	return ((e.A.EvalInt(s)-e.B.EvalInt(s))%e.Mod + e.Mod) % e.Mod
}
func (e Cond) EvalInt(s State) int {
	if e.If.EvalBool(s) {
		return e.Then.EvalInt(s)
	}
	return e.Else.EvalInt(s)
}

func (e V) CollectVars(set map[int]bool) { set[e.ID] = true }
func (e C) CollectVars(map[int]bool)     {}
func (e AddMod) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}
func (e SubMod) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}
func (e Cond) CollectVars(set map[int]bool) {
	e.If.CollectVars(set)
	e.Then.CollectVars(set)
	e.Else.CollectVars(set)
}

func (e V) Render(names []string) string { return names[e.ID] }
func (e C) Render([]string) string       { return fmt.Sprintf("%d", e.Val) }
func (e AddMod) Render(names []string) string {
	return fmt.Sprintf("(%s + %s mod %d)", e.A.Render(names), e.B.Render(names), e.Mod)
}
func (e SubMod) Render(names []string) string {
	return fmt.Sprintf("(%s - %s mod %d)", e.A.Render(names), e.B.Render(names), e.Mod)
}
func (e Cond) Render(names []string) string {
	return fmt.Sprintf("(if %s then %s else %s)",
		e.If.Render(names), e.Then.Render(names), e.Else.Render(names))
}

// True and False are constant boolean expressions.
type True struct{}
type False struct{}

// Eq compares two integer expressions for equality; Neq for inequality.
type Eq struct{ A, B IntExpr }
type Neq struct{ A, B IntExpr }

// Lt is A < B on plain integer values.
type Lt struct{ A, B IntExpr }

// And, Or are n-ary conjunction/disjunction; Not is negation;
// Implies is material implication.
type And struct{ Xs []BoolExpr }
type Or struct{ Xs []BoolExpr }
type Not struct{ X BoolExpr }
type Implies struct{ A, B BoolExpr }

func (True) EvalBool(State) bool    { return true }
func (False) EvalBool(State) bool   { return false }
func (e Eq) EvalBool(s State) bool  { return e.A.EvalInt(s) == e.B.EvalInt(s) }
func (e Neq) EvalBool(s State) bool { return e.A.EvalInt(s) != e.B.EvalInt(s) }
func (e Lt) EvalBool(s State) bool  { return e.A.EvalInt(s) < e.B.EvalInt(s) }
func (e Not) EvalBool(s State) bool { return !e.X.EvalBool(s) }
func (e And) EvalBool(s State) bool {
	for _, x := range e.Xs {
		if !x.EvalBool(s) {
			return false
		}
	}
	return true
}
func (e Or) EvalBool(s State) bool {
	for _, x := range e.Xs {
		if x.EvalBool(s) {
			return true
		}
	}
	return false
}
func (e Implies) EvalBool(s State) bool { return !e.A.EvalBool(s) || e.B.EvalBool(s) }

func (True) CollectVars(map[int]bool)  {}
func (False) CollectVars(map[int]bool) {}
func (e Eq) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}
func (e Neq) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}
func (e Lt) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}
func (e Not) CollectVars(set map[int]bool) { e.X.CollectVars(set) }
func (e And) CollectVars(set map[int]bool) {
	for _, x := range e.Xs {
		x.CollectVars(set)
	}
}
func (e Or) CollectVars(set map[int]bool) {
	for _, x := range e.Xs {
		x.CollectVars(set)
	}
}
func (e Implies) CollectVars(set map[int]bool) {
	e.A.CollectVars(set)
	e.B.CollectVars(set)
}

func (True) Render([]string) string  { return "true" }
func (False) Render([]string) string { return "false" }
func (e Eq) Render(names []string) string {
	return fmt.Sprintf("%s == %s", e.A.Render(names), e.B.Render(names))
}
func (e Neq) Render(names []string) string {
	return fmt.Sprintf("%s != %s", e.A.Render(names), e.B.Render(names))
}
func (e Lt) Render(names []string) string {
	return fmt.Sprintf("%s < %s", e.A.Render(names), e.B.Render(names))
}
func (e Not) Render(names []string) string { return "!(" + e.X.Render(names) + ")" }
func (e And) Render(names []string) string { return renderJoin(e.Xs, " && ", names) }
func (e Or) Render(names []string) string  { return renderJoin(e.Xs, " || ", names) }
func (e Implies) Render(names []string) string {
	return fmt.Sprintf("(%s => %s)", e.A.Render(names), e.B.Render(names))
}

func renderJoin(xs []BoolExpr, sep string, names []string) string {
	if len(xs) == 0 {
		if sep == " && " {
			return "true"
		}
		return "false"
	}
	parts := make([]string, len(xs))
	for i, x := range xs {
		parts[i] = x.Render(names)
	}
	return "(" + strings.Join(parts, sep) + ")"
}

// Conj builds an n-ary conjunction, flattening nested Ands.
func Conj(xs ...BoolExpr) BoolExpr {
	flat := make([]BoolExpr, 0, len(xs))
	for _, x := range xs {
		if a, ok := x.(And); ok {
			flat = append(flat, a.Xs...)
		} else {
			flat = append(flat, x)
		}
	}
	return And{Xs: flat}
}

// Disj builds an n-ary disjunction, flattening nested Ors.
func Disj(xs ...BoolExpr) BoolExpr {
	flat := make([]BoolExpr, 0, len(xs))
	for _, x := range xs {
		if o, ok := x.(Or); ok {
			flat = append(flat, o.Xs...)
		} else {
			flat = append(flat, x)
		}
	}
	return Or{Xs: flat}
}
