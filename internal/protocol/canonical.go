package protocol

import (
	"fmt"
	"io"
	"strings"
)

// WriteCanonicalSpec writes a deterministic rendering of the specification:
// variables with domains, per-process localities, actions as rendered
// guarded commands, and the rendered invariant. Expression rendering is
// syntactic, so specs are equal iff they were written identically up to
// whitespace — a sound (never merging distinct problems) and cheap notion
// of content equality. The spec's Name is deliberately excluded: it labels
// the protocol but does not affect any result derived from it.
//
// This is the shared basis of every content address in the repo: the
// service's result-cache key (internal/service.CanonicalKey), the
// distributed journal's job key, and the prune memo's scope hash all write
// the spec through here, so "same synthesis problem" means the same thing
// at every tier.
func WriteCanonicalSpec(w io.Writer, sp *Spec) {
	names := sp.VarNames()
	var b strings.Builder
	for _, v := range sp.Vars {
		fmt.Fprintf(&b, "var %s:%d\n", v.Name, v.Dom)
	}
	for pi := range sp.Procs {
		p := &sp.Procs[pi]
		fmt.Fprintf(&b, "proc %s r=%v w=%v\n", p.Name, p.Reads, p.Writes)
		for _, a := range p.Actions {
			fmt.Fprintf(&b, "  %s ->", a.Guard.Render(names))
			for _, as := range a.Assigns {
				fmt.Fprintf(&b, " %s:=%s;", names[as.Var], as.Expr.Render(names))
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "invariant %s\n", sp.Invariant.Render(names))
	io.WriteString(w, b.String())
}
