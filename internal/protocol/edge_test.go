package protocol

import "testing"

func TestNumStatesOverflow(t *testing.T) {
	sp := &Spec{Name: "huge"}
	for i := 0; i < 100; i++ {
		sp.Vars = append(sp.Vars, Var{Name: "v" + string(rune('a'+i%26)) + string(rune('0'+i/26)), Dom: 256})
	}
	if _, ok := sp.NumStates(); ok {
		t.Error("256^100 should overflow uint64")
	}
	small := &Spec{Vars: []Var{{Name: "x", Dom: 7}, {Name: "y", Dom: 11}}}
	if n, ok := small.NumStates(); !ok || n != 77 {
		t.Errorf("NumStates = %d,%v; want 77,true", n, ok)
	}
}

func TestActionGroupsSkipOutOfDomainWrites(t *testing.T) {
	// An assignment that would leave the domain (x := x+5 with plain AddMod
	// over a larger modulus) must disable the action for those valuations
	// rather than produce an invalid group.
	sp := &Spec{
		Name: "oob",
		Vars: []Var{{Name: "x", Dom: 3}},
		Procs: []Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []Action{{
				Guard: True{},
				// (x + 3) mod 5 yields 3 or 4 for x ∈ {0,1}: out of domain.
				Assigns: []Assignment{{Var: 0, Expr: AddMod{A: V{ID: 0}, B: C{Val: 3}, Mod: 5}}},
			}},
		}},
		Invariant: True{},
	}
	gs := sp.ActionGroups(0)
	// Only x=2 maps to (2+3)%5=0 inside the domain.
	if len(gs) != 1 {
		t.Fatalf("got %d groups, want 1", len(gs))
	}
	if gs[0].ReadVals[0] != 2 || gs[0].WriteVals[0] != 0 {
		t.Errorf("unexpected group %v", gs[0])
	}
}

func TestActionGroupsNondeterminism(t *testing.T) {
	// Two actions enabled at the same valuation yield two groups.
	sp := &Spec{
		Name: "nondet",
		Vars: []Var{{Name: "x", Dom: 3}},
		Procs: []Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []Action{
				{Guard: Eq{A: V{ID: 0}, B: C{Val: 0}}, Assigns: []Assignment{{Var: 0, Expr: C{Val: 1}}}},
				{Guard: Eq{A: V{ID: 0}, B: C{Val: 0}}, Assigns: []Assignment{{Var: 0, Expr: C{Val: 2}}}},
			},
		}},
		Invariant: True{},
	}
	gs := sp.ActionGroups(0)
	if len(gs) != 2 {
		t.Fatalf("got %d groups, want 2 (nondeterministic choice)", len(gs))
	}
}

func TestActionGroupsDeduplicate(t *testing.T) {
	// Identical actions produce one group, not two.
	a := Action{Guard: Eq{A: V{ID: 0}, B: C{Val: 0}}, Assigns: []Assignment{{Var: 0, Expr: C{Val: 1}}}}
	sp := &Spec{
		Name: "dup",
		Vars: []Var{{Name: "x", Dom: 3}},
		Procs: []Process{{
			Name: "P", Reads: []int{0}, Writes: []int{0},
			Actions: []Action{a, a},
		}},
		Invariant: True{},
	}
	if gs := sp.ActionGroups(0); len(gs) != 1 {
		t.Fatalf("got %d groups, want 1", len(gs))
	}
}

func TestSortedIDs(t *testing.T) {
	got := SortedIDs(3, 1, 3, 0, 1)
	want := []int{0, 1, 3}
	if len(got) != len(want) {
		t.Fatalf("SortedIDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedIDs = %v, want %v", got, want)
		}
	}
}
