package protocol

import (
	"testing"
	"testing/quick"
)

// tr4 builds the running example of the paper: the 4-process token ring
// with domain {0,1,2}.
func tr4() *Spec {
	const k, dom = 4, 3
	sp := &Spec{Name: "token-ring"}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, Var{Name: "x" + string(rune('0'+i)), Dom: dom})
	}
	// P0: x0 == x3 -> x0 := x3 + 1
	sp.Procs = append(sp.Procs, Process{
		Name:   "P0",
		Reads:  SortedIDs(0, k-1),
		Writes: []int{0},
		Actions: []Action{{
			Guard:   Eq{V{0}, V{k - 1}},
			Assigns: []Assignment{{Var: 0, Expr: AddMod{V{k - 1}, C{1}, dom}}},
		}},
	})
	// Pj: xj + 1 == x(j-1) -> xj := x(j-1)
	for j := 1; j < k; j++ {
		sp.Procs = append(sp.Procs, Process{
			Name:   "P" + string(rune('0'+j)),
			Reads:  SortedIDs(j-1, j),
			Writes: []int{j},
			Actions: []Action{{
				Guard:   Eq{AddMod{V{j}, C{1}, dom}, V{j - 1}},
				Assigns: []Assignment{{Var: j, Expr: V{j - 1}}},
			}},
		})
	}
	sp.Invariant = True{} // placeholder; group tests do not use it
	return sp
}

func TestValidateTR(t *testing.T) {
	if err := tr4().Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateErrors(t *testing.T) {
	base := tr4()

	bad := *base
	bad.Invariant = nil
	if err := bad.Validate(); err == nil {
		t.Error("nil invariant accepted")
	}

	bad = *base
	bad.Procs = append([]Process(nil), base.Procs...)
	bad.Procs[1].Writes = []int{2} // P1 may not read x2
	if err := bad.Validate(); err == nil {
		t.Error("write outside read set accepted")
	}

	bad = *base
	bad.Procs = append([]Process(nil), base.Procs...)
	bad.Procs[1].Actions = []Action{{
		Guard:   Eq{V{3}, C{0}}, // P1 cannot read x3
		Assigns: []Assignment{{Var: 1, Expr: C{0}}},
	}}
	if err := bad.Validate(); err == nil {
		t.Error("guard over unreadable variable accepted")
	}

	bad = *base
	bad.Vars = append([]Var(nil), base.Vars...)
	bad.Vars[0].Dom = 0
	if err := bad.Validate(); err == nil {
		t.Error("empty domain accepted")
	}

	bad = *base
	bad.Vars = append([]Var(nil), base.Vars...)
	bad.Vars[1].Name = bad.Vars[0].Name
	if err := bad.Validate(); err == nil {
		t.Error("duplicate variable name accepted")
	}
}

func TestValuations(t *testing.T) {
	var got [][]int
	Valuations([]int{2, 3}, func(v []int) {
		got = append(got, append([]int(nil), v...))
	})
	want := [][]int{{0, 0}, {0, 1}, {0, 2}, {1, 0}, {1, 1}, {1, 2}}
	if len(got) != len(want) {
		t.Fatalf("got %d valuations, want %d", len(got), len(want))
	}
	for i := range want {
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("valuation %d = %v, want %v", i, got[i], want[i])
			}
		}
	}
}

func TestActionGroupsTR(t *testing.T) {
	sp := tr4()
	// Each Pj (j>=1) reads two dom-3 variables: 9 readable valuations, of
	// which exactly 3 satisfy xj+1 == x(j-1). Same count for P0's x0 == x3.
	for pi := range sp.Procs {
		gs := sp.ActionGroups(pi)
		if len(gs) != 3 {
			t.Errorf("process %d: got %d action groups, want 3", pi, len(gs))
		}
		for _, g := range gs {
			if g.IsNoop(sp) {
				t.Errorf("process %d: action group %v is a no-op", pi, g)
			}
		}
	}
	if n := len(sp.AllActionGroups()); n != 12 {
		t.Errorf("AllActionGroups: got %d, want 12", n)
	}
}

func TestCandidateGroupsTR(t *testing.T) {
	sp := tr4()
	// 9 readable valuations × 3 write values, minus 9 no-ops = 18.
	for pi := range sp.Procs {
		gs := sp.CandidateGroups(pi)
		if len(gs) != 18 {
			t.Errorf("process %d: got %d candidate groups, want 18", pi, len(gs))
		}
		seen := make(map[Key]bool)
		for _, g := range gs {
			if g.IsNoop(sp) {
				t.Errorf("candidate group %v is a no-op", g)
			}
			k := g.Key()
			if seen[k] {
				t.Errorf("duplicate candidate group key %q", k)
			}
			seen[k] = true
		}
	}
}

func TestGroupApplyMatches(t *testing.T) {
	sp := tr4()
	g := Group{Proc: 1, ReadVals: []int{2, 1}, WriteVals: []int{2}} // x0=2, x1=1 -> x1:=2
	s := State{2, 1, 0, 0}
	if !g.Matches(sp, s) {
		t.Fatal("state should match group")
	}
	dst := make(State, 4)
	g.Apply(sp, s, dst)
	want := State{2, 2, 0, 0}
	for i := range want {
		if dst[i] != want[i] {
			t.Fatalf("Apply = %v, want %v", dst, want)
		}
	}
	if g.Matches(sp, State{0, 1, 0, 0}) {
		t.Error("state with x0=0 should not match group requiring x0=2")
	}
}

func TestUnreadCount(t *testing.T) {
	sp := tr4()
	for pi := range sp.Procs {
		if n := sp.UnreadCount(pi); n != 9 { // two unreadable dom-3 variables
			t.Errorf("process %d: UnreadCount = %d, want 9", pi, n)
		}
	}
}

func TestIndexerRoundTrip(t *testing.T) {
	sp := tr4()
	ix := NewIndexer(sp)
	if ix.Len() != 81 {
		t.Fatalf("Len = %d, want 81", ix.Len())
	}
	s := make(State, 4)
	for idx := uint64(0); idx < ix.Len(); idx++ {
		ix.Decode(idx, s)
		if got := ix.Index(s); got != idx {
			t.Fatalf("roundtrip failed: %d -> %v -> %d", idx, s, got)
		}
		for id := 0; id < 4; id++ {
			if ix.Value(idx, id) != s[id] {
				t.Fatalf("Value(%d,%d) = %d, want %d", idx, id, ix.Value(idx, id), s[id])
			}
		}
	}
}

func TestIndexerWithValue(t *testing.T) {
	sp := tr4()
	ix := NewIndexer(sp)
	f := func(idx uint64, id uint8, v uint8) bool {
		i := idx % ix.Len()
		vid := int(id) % 4
		val := int(v) % 3
		got := ix.WithValue(i, vid, val)
		s := make(State, 4)
		ix.Decode(i, s)
		s[vid] = val
		return got == ix.Index(s)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestExprEval(t *testing.T) {
	s := State{2, 0, 1}
	cases := []struct {
		e    BoolExpr
		want bool
	}{
		{True{}, true},
		{False{}, false},
		{Eq{V{0}, C{2}}, true},
		{Neq{V{0}, V{1}}, true},
		{Lt{V{1}, V{2}}, true},
		{Conj(Eq{V{0}, C{2}}, Eq{V{1}, C{0}}), true},
		{Conj(Eq{V{0}, C{2}}, Eq{V{1}, C{1}}), false},
		{Disj(Eq{V{0}, C{0}}, Eq{V{2}, C{1}}), true},
		{Disj(Eq{V{0}, C{0}}, Eq{V{2}, C{0}}), false},
		{Not{Eq{V{0}, C{2}}}, false},
		{Implies{Eq{V{0}, C{2}}, Eq{V{1}, C{1}}}, false},
		{Implies{Eq{V{0}, C{0}}, Eq{V{1}, C{1}}}, true},
		{Eq{AddMod{V{0}, C{1}, 3}, C{0}}, true}, // (2+1) mod 3 == 0
		{Eq{SubMod{V{1}, C{1}, 3}, C{2}}, true}, // (0-1) mod 3 == 2
		{Eq{Cond{Eq{V{1}, C{0}}, V{0}, V{2}}, C{2}}, true},
		{Eq{Cond{Eq{V{1}, C{1}}, V{0}, V{2}}, C{1}}, true},
	}
	for i, c := range cases {
		if got := c.e.EvalBool(s); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v",
				i, c.e.Render([]string{"a", "b", "c"}), got, c.want)
		}
	}
}

func TestExprCollectVars(t *testing.T) {
	e := Conj(Eq{AddMod{V{0}, V{3}, 4}, C{1}}, Disj(Neq{V{2}, C{0}}))
	set := make(map[int]bool)
	e.CollectVars(set)
	for _, id := range []int{0, 2, 3} {
		if !set[id] {
			t.Errorf("variable %d not collected", id)
		}
	}
	if set[1] {
		t.Error("variable 1 wrongly collected")
	}
	if len(set) != 3 {
		t.Errorf("collected %d vars, want 3", len(set))
	}
}

func TestRenderSmoke(t *testing.T) {
	sp := tr4()
	names := sp.VarNames()
	e := Conj(Eq{V{0}, V{3}}, Not{Lt{V{1}, C{2}}})
	if got := e.Render(names); got == "" {
		t.Error("empty render")
	}
	g := Group{Proc: 0, ReadVals: []int{1, 2}, WriteVals: []int{0}}
	if got := g.Render(sp); got == "" {
		t.Error("empty group render")
	}
}
