package protocol

import (
	"fmt"
	"strings"
)

// Group identifies a transition group of a process. Because a process Pj
// cannot read variables outside rj, any transition it takes is grouped with
// all transitions that agree on rj in source and target and leave the
// unreadable variables unchanged (Section II of the paper). Since wj ⊆ rj,
// a group is fully determined by the owning process, a valuation of its
// readable variables (the local source state), and the new values written to
// its writable variables. The group then contains one transition per
// valuation of the unreadable variables.
type Group struct {
	Proc      int   // index into Spec.Procs
	ReadVals  []int // parallel to Procs[Proc].Reads
	WriteVals []int // parallel to Procs[Proc].Writes
}

// Key returns a comparable identity for the group, usable as a map key.
type Key string

// Key returns the canonical identity of g.
func (g Group) Key() Key {
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", g.Proc)
	for _, v := range g.ReadVals {
		fmt.Fprintf(&b, "%d,", v)
	}
	b.WriteByte('|')
	for _, v := range g.WriteVals {
		fmt.Fprintf(&b, "%d,", v)
	}
	return Key(b.String())
}

// IsNoop reports whether the group writes back exactly the current values,
// i.e. every transition in the group is a self-loop.
func (g Group) IsNoop(sp *Spec) bool {
	p := &sp.Procs[g.Proc]
	for wi, id := range p.Writes {
		ri := indexOf(p.Reads, id)
		if g.ReadVals[ri] != g.WriteVals[wi] {
			return false
		}
	}
	return true
}

// Matches reports whether state s agrees with the group's readable
// valuation, i.e. whether s is the source of some transition in g.
func (g Group) Matches(sp *Spec, s State) bool {
	p := &sp.Procs[g.Proc]
	for ri, id := range p.Reads {
		if s[id] != g.ReadVals[ri] {
			return false
		}
	}
	return true
}

// Apply writes the group's update into dst (a copy of src). src must match
// the group. dst and src may alias.
func (g Group) Apply(sp *Spec, src, dst State) {
	p := &sp.Procs[g.Proc]
	copy(dst, src)
	for wi, id := range p.Writes {
		dst[id] = g.WriteVals[wi]
	}
}

// Render prints the group as a single guarded command over the readable
// variables, e.g. "x0==1 && x3==1 -> x0 := 2".
func (g Group) Render(sp *Spec) string {
	p := &sp.Procs[g.Proc]
	names := sp.VarNames()
	var gparts, aparts []string
	for ri, id := range p.Reads {
		gparts = append(gparts, fmt.Sprintf("%s==%d", names[id], g.ReadVals[ri]))
	}
	for wi, id := range p.Writes {
		aparts = append(aparts, fmt.Sprintf("%s := %d", names[id], g.WriteVals[wi]))
	}
	return strings.Join(gparts, " && ") + " -> " + strings.Join(aparts, "; ")
}

func indexOf(ids []int, id int) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	return -1
}

// Valuations calls f with every valuation of variables whose domain sizes
// are doms, in lexicographic order. The slice passed to f is reused.
func Valuations(doms []int, f func(vals []int)) {
	vals := make([]int, len(doms))
	for {
		f(vals)
		i := len(doms) - 1
		for ; i >= 0; i-- {
			vals[i]++
			if vals[i] < doms[i] {
				break
			}
			vals[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// readDoms returns the domain sizes of process p's readable variables.
func (sp *Spec) readDoms(p *Process) []int {
	doms := make([]int, len(p.Reads))
	for i, id := range p.Reads {
		doms[i] = sp.Vars[id].Dom
	}
	return doms
}

// writeDoms returns the domain sizes of process p's writable variables.
func (sp *Spec) writeDoms(p *Process) []int {
	doms := make([]int, len(p.Writes))
	for i, id := range p.Writes {
		doms[i] = sp.Vars[id].Dom
	}
	return doms
}

// ActionGroups decomposes the guarded commands of process proc into
// transition groups: one group per readable valuation satisfying a guard
// (and per distinct result, if several actions are enabled). The groups
// together represent exactly the process's transitions in δp. No-op groups
// (guards whose statement changes nothing) are kept: δp must be preserved
// verbatim.
func (sp *Spec) ActionGroups(proc int) []Group {
	p := &sp.Procs[proc]
	var out []Group
	seen := make(map[Key]bool)
	scratch := make(State, len(sp.Vars))
	Valuations(sp.readDoms(p), func(rv []int) {
		for i := range scratch {
			scratch[i] = 0
		}
		for ri, id := range p.Reads {
			scratch[id] = rv[ri]
		}
		for _, a := range p.Actions {
			if !a.Guard.EvalBool(scratch) {
				continue
			}
			wv := make([]int, len(p.Writes))
			for wi, id := range p.Writes {
				wv[wi] = scratch[id] // unassigned writable vars keep their value
			}
			for _, as := range a.Assigns {
				v := as.Expr.EvalInt(scratch)
				if v < 0 || v >= sp.Vars[as.Var].Dom {
					// Out-of-domain writes would leave the state space;
					// treat the action as disabled for this valuation.
					wv = nil
					break
				}
				wv[indexOf(p.Writes, as.Var)] = v
			}
			if wv == nil {
				continue
			}
			g := Group{Proc: proc, ReadVals: append([]int(nil), rv...), WriteVals: wv}
			if k := g.Key(); !seen[k] {
				seen[k] = true
				out = append(out, g)
			}
		}
	})
	return out
}

// AllActionGroups returns the action groups of every process: δp as a set
// of groups.
func (sp *Spec) AllActionGroups() []Group {
	var out []Group
	for pi := range sp.Procs {
		out = append(out, sp.ActionGroups(pi)...)
	}
	return out
}

// CandidateGroups enumerates every group process proc could possibly
// execute under its read/write restrictions, excluding no-op groups (a
// no-op group is a set of self-loops and can never help convergence, only
// create non-progress cycles). This is the raw material for recovery.
func (sp *Spec) CandidateGroups(proc int) []Group {
	p := &sp.Procs[proc]
	var out []Group
	wdoms := sp.writeDoms(p)
	Valuations(sp.readDoms(p), func(rv []int) {
		rvCopy := append([]int(nil), rv...)
		Valuations(wdoms, func(wv []int) {
			g := Group{Proc: proc, ReadVals: rvCopy, WriteVals: append([]int(nil), wv...)}
			if !g.IsNoop(sp) {
				out = append(out, g)
			}
		})
	})
	return out
}

// AllCandidateGroups returns the candidate groups of every process.
func (sp *Spec) AllCandidateGroups() []Group {
	var out []Group
	for pi := range sp.Procs {
		out = append(out, sp.CandidateGroups(pi)...)
	}
	return out
}

// UnreadCount returns the number of transitions per group of process proc,
// i.e. the product of the domains of its unreadable variables.
func (sp *Spec) UnreadCount(proc int) uint64 {
	p := &sp.Procs[proc]
	n := uint64(1)
	rs := make(map[int]bool, len(p.Reads))
	for _, id := range p.Reads {
		rs[id] = true
	}
	for id, v := range sp.Vars {
		if !rs[id] {
			n *= uint64(v.Dom)
		}
	}
	return n
}
