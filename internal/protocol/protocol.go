package protocol

import (
	"fmt"
	"math"
	"sort"
)

// Var is a protocol variable with the finite domain {0, …, Dom-1}.
type Var struct {
	Name string
	Dom  int
}

// Assignment assigns the value of Expr to variable Var (atomically with the
// other assignments of the same action).
type Assignment struct {
	Var  int
	Expr IntExpr
}

// Action is a guarded command grd → stmt. The guard may only read the
// owning process's readable variables; the statement may only write its
// writable variables (and read readable ones).
type Action struct {
	Guard   BoolExpr
	Assigns []Assignment
}

// Process is a protocol process with its locality: the variables it may read
// and the subset of those it may write, plus its guarded-command actions.
type Process struct {
	Name    string
	Reads   []int // sorted variable IDs
	Writes  []int // sorted variable IDs, subset of Reads
	Actions []Action
}

// Spec is a protocol specification ⟨V, δ, Π, T⟩ together with the predicate
// I of legitimate states (closed in δ by assumption; checked by the
// verifier). δ is given by the actions of the processes; T by the read/write
// sets.
type Spec struct {
	Name      string
	Vars      []Var
	Procs     []Process
	Invariant BoolExpr
}

// NumStates returns the size of the state space, and ok=false if it
// overflows uint64.
func (sp *Spec) NumStates() (n uint64, ok bool) {
	n = 1
	for _, v := range sp.Vars {
		d := uint64(v.Dom)
		if d != 0 && n > math.MaxUint64/d {
			return 0, false
		}
		n *= d
	}
	return n, true
}

// VarNames returns the variable names indexed by variable ID.
func (sp *Spec) VarNames() []string {
	names := make([]string, len(sp.Vars))
	for i, v := range sp.Vars {
		names[i] = v.Name
	}
	return names
}

// Validate checks the structural well-formedness of the specification:
// positive domains, sorted and in-range read/write sets, w ⊆ r, guards and
// assignment right-hand sides reading only readable variables, assignment
// targets being writable, and the invariant being present.
func (sp *Spec) Validate() error {
	if len(sp.Vars) == 0 {
		return fmt.Errorf("protocol %q has no variables", sp.Name)
	}
	if len(sp.Procs) == 0 {
		return fmt.Errorf("protocol %q has no processes", sp.Name)
	}
	if sp.Invariant == nil {
		return fmt.Errorf("protocol %q has no invariant", sp.Name)
	}
	seen := make(map[string]bool)
	for i, v := range sp.Vars {
		if v.Dom < 1 {
			return fmt.Errorf("variable %q has empty domain %d", v.Name, v.Dom)
		}
		if v.Name == "" {
			return fmt.Errorf("variable %d has no name", i)
		}
		if seen[v.Name] {
			return fmt.Errorf("duplicate variable name %q", v.Name)
		}
		seen[v.Name] = true
	}
	ivars := make(map[int]bool)
	sp.Invariant.CollectVars(ivars)
	for id := range ivars {
		if id < 0 || id >= len(sp.Vars) {
			return fmt.Errorf("invariant references unknown variable id %d", id)
		}
	}
	pseen := make(map[string]bool)
	for pi := range sp.Procs {
		p := &sp.Procs[pi]
		if p.Name == "" {
			return fmt.Errorf("process %d has no name", pi)
		}
		if pseen[p.Name] {
			return fmt.Errorf("duplicate process name %q", p.Name)
		}
		pseen[p.Name] = true
		if err := checkVarSet(p.Reads, len(sp.Vars)); err != nil {
			return fmt.Errorf("process %s reads: %v", p.Name, err)
		}
		if err := checkVarSet(p.Writes, len(sp.Vars)); err != nil {
			return fmt.Errorf("process %s writes: %v", p.Name, err)
		}
		if len(p.Writes) == 0 {
			return fmt.Errorf("process %s writes no variables", p.Name)
		}
		readSet := make(map[int]bool, len(p.Reads))
		for _, id := range p.Reads {
			readSet[id] = true
		}
		for _, id := range p.Writes {
			if !readSet[id] {
				return fmt.Errorf("process %s writes unreadable variable %s (w ⊆ r required)",
					p.Name, sp.Vars[id].Name)
			}
		}
		for ai, a := range p.Actions {
			if a.Guard == nil {
				return fmt.Errorf("process %s action %d has nil guard", p.Name, ai)
			}
			gvars := make(map[int]bool)
			a.Guard.CollectVars(gvars)
			for id := range gvars {
				if !readSet[id] {
					return fmt.Errorf("process %s action %d guard reads unreadable variable %s",
						p.Name, ai, sp.Vars[id].Name)
				}
			}
			if len(a.Assigns) == 0 {
				return fmt.Errorf("process %s action %d has no assignments", p.Name, ai)
			}
			targets := make(map[int]bool)
			for _, as := range a.Assigns {
				wok := false
				for _, id := range p.Writes {
					if id == as.Var {
						wok = true
					}
				}
				if !wok {
					return fmt.Errorf("process %s action %d assigns non-writable variable id %d",
						p.Name, ai, as.Var)
				}
				if targets[as.Var] {
					return fmt.Errorf("process %s action %d assigns variable %s twice",
						p.Name, ai, sp.Vars[as.Var].Name)
				}
				targets[as.Var] = true
				avars := make(map[int]bool)
				as.Expr.CollectVars(avars)
				for id := range avars {
					if !readSet[id] {
						return fmt.Errorf("process %s action %d reads unreadable variable %s",
							p.Name, ai, sp.Vars[id].Name)
					}
				}
			}
		}
	}
	return nil
}

func checkVarSet(ids []int, n int) error {
	for i, id := range ids {
		if id < 0 || id >= n {
			return fmt.Errorf("variable id %d out of range", id)
		}
		if i > 0 && ids[i-1] >= id {
			return fmt.Errorf("ids must be strictly sorted, got %v", ids)
		}
	}
	return nil
}

// SortedIDs returns a sorted copy of ids with duplicates removed; a
// convenience for building Reads/Writes sets.
func SortedIDs(ids ...int) []int {
	out := append([]int(nil), ids...)
	sort.Ints(out)
	w := 0
	for i, id := range out {
		if i == 0 || out[w-1] != id {
			out[w] = id
			w++
		}
	}
	return out[:w]
}
