// Package dot renders small protocol state spaces as Graphviz digraphs:
// states as nodes (legitimate states boxed, deadlocks highlighted, ranks as
// color bands), transitions as edges labelled with the acting process. The
// paper pitches STSyn as a companion to model-driven development
// environments "for protocol design and visualization" (Section VIII) —
// this is the visualization half.
package dot

import (
	"fmt"
	"sort"
	"strings"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// Options controls rendering.
type Options struct {
	// MaxStates aborts rendering for spaces larger than this (default 4096;
	// beyond that the drawing is unreadable anyway).
	MaxStates uint64
	// Ranks, when non-nil, colors states by their rank (Rank[0]=I … ).
	Ranks []core.Set
	// HighlightDeadlocks marks deadlock states.
	HighlightDeadlocks bool
}

// Graph renders the protocol's transition graph (δ given as engine-bound
// groups) as a DOT digraph.
func Graph(e core.Engine, groups []core.Group, opts Options) (string, error) {
	sp := e.Spec()
	max := opts.MaxStates
	if max == 0 {
		max = 4096
	}
	n, ok := sp.NumStates()
	if !ok || n > max {
		return "", fmt.Errorf("dot: state space too large to draw (%d states, limit %d)", n, max)
	}
	ix := protocol.NewIndexer(sp)
	inv := e.Invariant()
	var deadlocks core.Set
	if opts.HighlightDeadlocks {
		deadlocks = core.Deadlocks(e, groups)
	}

	var b strings.Builder
	b.WriteString("digraph protocol {\n")
	fmt.Fprintf(&b, "  label=%q;\n", sp.Name)
	b.WriteString("  rankdir=LR;\n  node [fontsize=10];\n")

	// Nodes.
	s := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < n; i++ {
		ix.Decode(i, s)
		single := e.Singleton(s)
		attrs := []string{fmt.Sprintf("label=%q", stateLabel(s))}
		if !e.IsEmpty(e.And(single, inv)) {
			attrs = append(attrs, "shape=box", "style=filled", "fillcolor=\"#c6e7c6\"")
		} else if deadlocks != nil && !e.IsEmpty(e.And(single, deadlocks)) {
			attrs = append(attrs, "shape=ellipse", "style=filled", "fillcolor=\"#f2b8b5\"")
		} else {
			attrs = append(attrs, "shape=ellipse")
		}
		if opts.Ranks != nil {
			for r, set := range opts.Ranks {
				if !e.IsEmpty(e.And(single, set)) {
					attrs = append(attrs, fmt.Sprintf("xlabel=\"r%d\"", r))
					break
				}
			}
		}
		fmt.Fprintf(&b, "  s%d [%s];\n", i, strings.Join(attrs, ", "))
	}

	// Edges, deduplicated and labelled by process.
	type edge struct {
		from, to uint64
	}
	labels := make(map[edge]map[string]bool)
	src := make(protocol.State, len(sp.Vars))
	dst := make(protocol.State, len(sp.Vars))
	for _, g := range groups {
		pg := g.ProtocolGroup()
		name := sp.Procs[pg.Proc].Name
		for i := uint64(0); i < n; i++ {
			ix.Decode(i, src)
			if !pg.Matches(sp, src) {
				continue
			}
			pg.Apply(sp, src, dst)
			ed := edge{from: i, to: ix.Index(dst)}
			if labels[ed] == nil {
				labels[ed] = make(map[string]bool)
			}
			labels[ed][name] = true
		}
	}
	edges := make([]edge, 0, len(labels))
	for ed := range labels {
		edges = append(edges, ed)
	}
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].from != edges[j].from {
			return edges[i].from < edges[j].from
		}
		return edges[i].to < edges[j].to
	})
	for _, ed := range edges {
		var names []string
		for name := range labels[ed] {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(&b, "  s%d -> s%d [label=%q];\n", ed.from, ed.to, strings.Join(names, ","))
	}
	b.WriteString("}\n")
	return b.String(), nil
}

func stateLabel(s protocol.State) string {
	parts := make([]string, len(s))
	for i, v := range s {
		parts[i] = fmt.Sprint(v)
	}
	return strings.Join(parts, ",")
}
