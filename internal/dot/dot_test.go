package dot_test

import (
	"strings"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/dot"
	"stsyn/internal/explicit"
	"stsyn/internal/protocols"
)

func TestGraphTokenRing(t *testing.T) {
	sp := protocols.TokenRing(3, 2) // 8 states — drawable
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	out, err := dot.Graph(e, res.Protocol, dot.Options{
		Ranks:              res.Ranks,
		HighlightDeadlocks: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"digraph protocol {",
		"rankdir=LR",
		"shape=box",     // legitimate states
		"s0 ",           // node ids
		"->",            // edges
		"label=\"P",     // process labels on edges
		"xlabel=\"r0\"", // rank annotations
		"}",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q", want)
		}
	}
	// Every line must be well-formed-ish: no empty node names.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "s [") {
			t.Errorf("malformed node line: %q", line)
		}
	}
}

func TestGraphEdgesMatchTransitions(t *testing.T) {
	sp := protocols.TokenRing(3, 2)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	out, err := dot.Graph(e, e.ActionGroups(), dot.Options{})
	if err != nil {
		t.Fatal(err)
	}
	// The non-stabilizing TR(3,2) has 6 action groups (2 guard valuations
	// per process) with 2 transitions each: 12 distinct edges.
	edges := strings.Count(out, "->")
	if edges != 12 {
		t.Errorf("rendered %d edges, want 12", edges)
	}
}

func TestGraphRefusesHugeSpaces(t *testing.T) {
	sp := protocols.Coloring(12)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dot.Graph(e, e.ActionGroups(), dot.Options{}); err == nil {
		t.Fatal("expected refusal for a 531441-state drawing")
	}
}
