package cli

import "testing"

func TestBuildSpec(t *testing.T) {
	cases := []struct {
		name  string
		procs int
	}{
		{"tokenring", 4}, {"tr", 4}, {"dijkstra", 4},
		{"matching", 4}, {"mm", 4}, {"gouda-acharya", 4}, {"ga", 4},
		{"coloring", 4}, {"tc", 4},
		{"tworing", 8}, {"tr2", 8},
	}
	for _, tc := range cases {
		sp, err := BuildSpec(tc.name, 4, 3)
		if err != nil {
			t.Errorf("%s: %v", tc.name, err)
			continue
		}
		if len(sp.Procs) != tc.procs {
			t.Errorf("%s: %d processes, want %d", tc.name, len(sp.Procs), tc.procs)
		}
		if err := sp.Validate(); err != nil {
			t.Errorf("%s: invalid spec: %v", tc.name, err)
		}
	}
	if _, err := BuildSpec("nope", 4, 3); err == nil {
		t.Error("unknown protocol accepted")
	}
}

func TestParseSchedule(t *testing.T) {
	s, err := ParseSchedule("1, 2,3,0")
	if err != nil {
		t.Fatal(err)
	}
	want := []int{1, 2, 3, 0}
	for i := range want {
		if s[i] != want[i] {
			t.Fatalf("got %v, want %v", s, want)
		}
	}
	if s, err := ParseSchedule(""); err != nil || s != nil {
		t.Error("empty schedule should be nil, nil")
	}
	if _, err := ParseSchedule("1,x"); err == nil {
		t.Error("bad entry accepted")
	}
}
