// Package cli holds the small shared bits of the command-line tools:
// resolving built-in protocol names and parsing schedules.
package cli

import (
	"fmt"
	"strconv"
	"strings"

	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
)

// Names lists the built-in protocol names.
const Names = "tokenring, dijkstra, dijkstra3, matching, gouda-acharya, coloring, tworing"

// BuildSpec resolves a built-in protocol name with parameters k and dom.
func BuildSpec(name string, k, dom int) (*protocol.Spec, error) {
	switch strings.ToLower(name) {
	case "tokenring", "tr":
		return protocols.TokenRing(k, dom), nil
	case "dijkstra":
		return protocols.DijkstraTokenRing(k, dom), nil
	case "dijkstra3", "threestate":
		return protocols.DijkstraThreeState(k), nil
	case "matching", "mm":
		return protocols.Matching(k), nil
	case "gouda-acharya", "ga":
		return protocols.GoudaAcharyaMatching(k), nil
	case "coloring", "tc":
		return protocols.Coloring(k), nil
	case "tworing", "tr2":
		return protocols.TwoRingTokenRing(), nil
	default:
		return nil, fmt.Errorf("unknown protocol %q (built-ins: %s)", name, Names)
	}
}

// ParseSchedule parses "1,2,3,0" into a schedule slice; empty means default.
func ParseSchedule(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	parts := strings.Split(s, ",")
	out := make([]int, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad schedule entry %q: %v", p, err)
		}
		out = append(out, v)
	}
	return out, nil
}

// ParseInts parses "5,10,15" into a slice of ints.
func ParseInts(s string) ([]int, error) {
	return ParseSchedule(s)
}
