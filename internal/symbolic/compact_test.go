package symbolic_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

func TestCompactPreservesSets(t *testing.T) {
	sp := protocols.Coloring(6)
	e, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	e.SetCompactionThreshold(1) // force compaction on every call
	inv := e.Invariant()
	notInv := e.Not(inv)
	pre := e.Pre(e.CandidateGroups(), inv)

	out := e.Compact([]core.Set{inv, notInv, pre})
	inv2, notInv2, pre2 := out[0], out[1], out[2]

	if e.States(inv2) != e.States(e.Invariant()) {
		t.Error("invariant state count changed across compaction")
	}
	// Membership must be preserved for every state.
	ix := protocol.NewIndexer(sp)
	s := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < ix.Len(); i += 7 { // sample
		ix.Decode(i, s)
		single := e.Singleton(s)
		if e.IsEmpty(e.And(inv2, single)) != !sp.Invariant.EvalBool(s) {
			t.Fatalf("invariant membership changed at %v", s)
		}
		inNot := !e.IsEmpty(e.And(notInv2, single))
		if inNot == sp.Invariant.EvalBool(s) {
			t.Fatalf("¬invariant membership changed at %v", s)
		}
	}
	if e.IsEmpty(pre2) {
		t.Error("pre-image lost by compaction")
	}
}

func TestCompactBelowThresholdIsNoop(t *testing.T) {
	e, err := symbolic.New(protocols.TokenRing(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	e.SetCompactionThreshold(1 << 30)
	inv := e.Invariant()
	out := e.Compact([]core.Set{inv})
	if out[0] != inv {
		t.Error("no-op compaction must return the sets unchanged")
	}
}

// TestSynthesisWithForcedCompaction runs the heuristic with compaction
// forced at every safe point and demands the identical result.
func TestSynthesisWithForcedCompaction(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.Matching(5),
		protocols.Coloring(6),
		protocols.TokenRing(4, 3),
	} {
		plain, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		rPlain, err := core.AddConvergence(plain, core.Options{})
		if err != nil {
			t.Fatal(err)
		}

		compacted, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		compacted.SetCompactionThreshold(1)
		rComp, err := core.AddConvergence(compacted, core.Options{})
		if err != nil {
			t.Fatalf("%s with compaction: %v", sp.Name, err)
		}

		want := make(map[protocol.Key]bool)
		for _, g := range rPlain.Protocol {
			want[g.ProtocolGroup().Key()] = true
		}
		if len(want) != len(rComp.Protocol) {
			t.Fatalf("%s: %d vs %d groups", sp.Name, len(want), len(rComp.Protocol))
		}
		for _, g := range rComp.Protocol {
			if !want[g.ProtocolGroup().Key()] {
				t.Fatalf("%s: compaction changed the synthesized protocol", sp.Name)
			}
		}
		if v := verify.StronglyStabilizing(compacted, rComp.Protocol); !v.OK {
			t.Fatalf("%s: post-compaction verification failed: %s", sp.Name, v.Reason)
		}
	}
}
