package symbolic_test

import (
	"math/rand"
	"testing"

	"stsyn/internal/protocol"
	"stsyn/internal/specgen"
	"stsyn/internal/symbolic"
)

// FuzzCompilerVsEvaluation is the native-fuzzing form of
// TestFuzzCompilerAgainstEvaluation: the seed drives the random-spec
// generator, and the compiled invariant is checked against direct AST
// evaluation over the whole (tiny) state space — with a forced garbage
// collection in between, so a GC bug that corrupts the hash-consed store
// shows up as a membership flip.
func FuzzCompilerVsEvaluation(f *testing.F) {
	for _, seed := range []int64{1, 7, 42, 99, 2024} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomSpec(rng, rng.Intn(2) == 1)
		se, err := symbolic.New(sp)
		if err != nil {
			t.Fatalf("generator produced an invalid spec: %v", err)
		}
		se.SetCompactionThreshold(1)
		inv := se.Invariant()
		se.Compact(nil) // forced collection; inv is an engine root

		ix := protocol.NewIndexer(sp)
		s := make(protocol.State, len(sp.Vars))
		for i := uint64(0); i < ix.Len(); i++ {
			ix.Decode(i, s)
			want := sp.Invariant.EvalBool(s)
			got := !se.IsEmpty(se.And(inv, se.Singleton(s)))
			if got != want {
				t.Fatalf("compiled invariant disagrees with evaluation at %v (%s)",
					s, sp.Invariant.Render(sp.VarNames()))
			}
		}
	})
}
