// Package symbolic is the BDD-backed engine: state predicates are BDDs over
// a binary encoding of the protocol variables, transition groups are
// (source-cube, write-cube) pairs whose image operations reduce to cube
// cofactors, and non-progress cycles are found with a Gentilini-style
// skeleton-based symbolic SCC enumeration after trimming to the cycle core.
// This is the engine that scales to the paper's largest experiments (three
// coloring with 40 processes, ~3^40 states).
package symbolic

import (
	"fmt"
	"math/bits"
	"sort"

	"stsyn/internal/bdd"
	"stsyn/internal/protocol"
)

// layout maps protocol variables to BDD variable levels. Each protocol
// variable v with domain d gets ⌈log₂ d⌉ bits, most significant first,
// with the variables laid out in a chosen order (DefaultVarOrder unless
// the engine was built with NewWithOrder). Current-state and next-state
// bits are interleaved (current at even levels); next-state bits are used
// only to build faithful transition relations for the BDD-node space
// metric.
type layout struct {
	sp       *protocol.Spec
	order    []int // protocol variable IDs in layout order
	bitsOf   []int // bits per protocol variable
	firstBit []int // index of the variable's first bit (bit space, not level)
	total    int   // total current-state bits
}

// DefaultVarOrder returns the engine's static variable order: protocol
// variables grouped by process locality — each variable is placed with the
// lowest-numbered process that writes it (falling back to the lowest
// reader for read-only variables), ties broken by variable ID. BDD sizes
// of conjunctions of per-process constraints grow with the spread of each
// process's support across the order, so clustering a process's variables
// keeps the group cubes and fixpoint intermediates narrow. For the ring
// topologies of the paper's case studies (one written variable per
// process, declared in process order) this is the identity.
func DefaultVarOrder(sp *protocol.Spec) []int {
	owner := make([]int, len(sp.Vars))
	for id := range owner {
		owner[id] = len(sp.Procs) // unreferenced variables sort last
	}
	written := make([]bool, len(sp.Vars))
	for pi := range sp.Procs {
		for _, id := range sp.Procs[pi].Writes {
			if !written[id] || pi < owner[id] {
				owner[id] = pi
			}
			written[id] = true
		}
	}
	for pi := range sp.Procs {
		for _, id := range sp.Procs[pi].Reads {
			if !written[id] && pi < owner[id] {
				owner[id] = pi
			}
		}
	}
	order := make([]int, len(sp.Vars))
	for id := range order {
		order[id] = id
	}
	sort.SliceStable(order, func(i, j int) bool {
		return owner[order[i]] < owner[order[j]]
	})
	return order
}

// validOrder checks that order is a permutation of the spec's variable IDs.
func validOrder(sp *protocol.Spec, order []int) error {
	if len(order) != len(sp.Vars) {
		return fmt.Errorf("symbolic: variable order has %d entries for %d variables", len(order), len(sp.Vars))
	}
	seen := make([]bool, len(sp.Vars))
	for _, id := range order {
		if id < 0 || id >= len(sp.Vars) || seen[id] {
			return fmt.Errorf("symbolic: variable order is not a permutation: %v", order)
		}
		seen[id] = true
	}
	return nil
}

func newLayout(sp *protocol.Spec) *layout {
	return newLayoutOrdered(sp, DefaultVarOrder(sp))
}

// newLayoutOrdered lays the variables out in the given order (a permutation
// of the variable IDs, already validated by the caller).
func newLayoutOrdered(sp *protocol.Spec, order []int) *layout {
	l := &layout{sp: sp, order: append([]int(nil), order...)}
	l.bitsOf = make([]int, len(sp.Vars))
	l.firstBit = make([]int, len(sp.Vars))
	for i, v := range sp.Vars {
		n := bits.Len(uint(v.Dom - 1))
		if n == 0 {
			n = 1 // domain of size 1 still gets one (constant-0) bit
		}
		l.bitsOf[i] = n
	}
	for _, id := range order {
		l.firstBit[id] = l.total
		l.total += l.bitsOf[id]
	}
	return l
}

// fingerprint hashes the layout (variable order and widths) with FNV-1a.
// Exported set snapshots carry it so a snapshot taken under one order is
// never misread as node indices of another.
func (l *layout) fingerprint() uint64 {
	const offset, prime = 14695981039346656037, 1099511628211
	h := uint64(offset)
	mix := func(v int) {
		h ^= uint64(uint32(v))
		h *= prime
	}
	mix(len(l.order))
	for _, id := range l.order {
		mix(id)
		mix(l.bitsOf[id])
	}
	return h
}

// curLevel returns the BDD level of bit b (0 = MSB) of variable id in the
// current state; nextLevel the corresponding next-state level.
func (l *layout) curLevel(id, b int) int  { return 2 * (l.firstBit[id] + b) }
func (l *layout) nextLevel(id, b int) int { return 2*(l.firstBit[id]+b) + 1 }

// valueLits returns the literal cube fixing variable id to val in the
// current state (or the next state when next is true).
func (l *layout) valueLits(id, val int, next bool) []bdd.Literal {
	n := l.bitsOf[id]
	lits := make([]bdd.Literal, n)
	for b := 0; b < n; b++ {
		lvl := l.curLevel(id, b)
		if next {
			lvl = l.nextLevel(id, b)
		}
		lits[b] = bdd.Literal{Var: lvl, Val: val>>(n-1-b)&1 == 1}
	}
	return lits
}

// compiler turns expression ASTs into BDDs over the current-state bits.
type compiler struct {
	l   *layout
	m   *bdd.Manager
	eqc [][]bdd.Ref // eqc[id][val] = BDD of "variable id has value val"
}

func newCompiler(l *layout, m *bdd.Manager) *compiler {
	c := &compiler{l: l, m: m}
	c.eqc = make([][]bdd.Ref, len(l.sp.Vars))
	for id, v := range l.sp.Vars {
		c.eqc[id] = make([]bdd.Ref, v.Dom)
		for val := 0; val < v.Dom; val++ {
			// Kept at the store site: the value cubes are permanent
			// collection roots for the engine's lifetime.
			c.eqc[id][val] = m.Keep(m.LiteralCube(l.valueLits(id, val, false)))
		}
	}
	return c
}

// valid returns the predicate excluding binary codepoints outside the
// variable domains.
func (c *compiler) valid() bdd.Ref {
	r := bdd.True
	for id := range c.l.sp.Vars {
		dv := bdd.False
		for _, eq := range c.eqc[id] {
			dv = c.m.Or(dv, eq)
		}
		r = c.m.And(r, dv)
	}
	return r
}

// intExpr compiles an integer expression to a value→predicate table.
func (c *compiler) intExpr(e protocol.IntExpr) map[int]bdd.Ref {
	switch x := e.(type) {
	case protocol.V:
		out := make(map[int]bdd.Ref, len(c.eqc[x.ID]))
		for val, eq := range c.eqc[x.ID] {
			out[val] = eq
		}
		return out
	case protocol.C:
		return map[int]bdd.Ref{x.Val: bdd.True}
	case protocol.AddMod:
		return c.modArith(x.A, x.B, x.Mod, func(a, b int) int { return (a + b) % x.Mod })
	case protocol.SubMod:
		return c.modArith(x.A, x.B, x.Mod, func(a, b int) int { return ((a-b)%x.Mod + x.Mod) % x.Mod })
	case protocol.Cond:
		cond := c.boolExpr(x.If)
		ncond := c.m.Not(cond)
		out := make(map[int]bdd.Ref)
		for val, p := range c.intExpr(x.Then) {
			out[val] = c.m.Or(out[val], c.m.And(cond, p))
		}
		for val, p := range c.intExpr(x.Else) {
			out[val] = c.m.Or(out[val], c.m.And(ncond, p))
		}
		return out
	default:
		panic("symbolic: unknown integer expression")
	}
}

func (c *compiler) modArith(a, b protocol.IntExpr, mod int, op func(a, b int) int) map[int]bdd.Ref {
	av := c.intExpr(a)
	bv := c.intExpr(b)
	out := make(map[int]bdd.Ref)
	for v1, p1 := range av {
		for v2, p2 := range bv {
			val := op(v1, v2)
			out[val] = c.m.Or(out[val], c.m.And(p1, p2))
		}
	}
	return out
}

// boolExpr compiles a boolean expression to a predicate.
func (c *compiler) boolExpr(e protocol.BoolExpr) bdd.Ref {
	switch x := e.(type) {
	case protocol.True:
		return bdd.True
	case protocol.False:
		return bdd.False
	case protocol.Eq:
		return c.compare(x.A, x.B, func(a, b int) bool { return a == b })
	case protocol.Neq:
		return c.compare(x.A, x.B, func(a, b int) bool { return a != b })
	case protocol.Lt:
		return c.compare(x.A, x.B, func(a, b int) bool { return a < b })
	case protocol.Not:
		return c.m.Not(c.boolExpr(x.X))
	case protocol.And:
		r := bdd.True
		for _, y := range x.Xs {
			r = c.m.And(r, c.boolExpr(y))
		}
		return r
	case protocol.Or:
		r := bdd.False
		for _, y := range x.Xs {
			r = c.m.Or(r, c.boolExpr(y))
		}
		return r
	case protocol.Implies:
		return c.m.Imp(c.boolExpr(x.A), c.boolExpr(x.B))
	default:
		panic("symbolic: unknown boolean expression")
	}
}

func (c *compiler) compare(a, b protocol.IntExpr, rel func(a, b int) bool) bdd.Ref {
	av := c.intExpr(a)
	bv := c.intExpr(b)
	r := bdd.False
	for v1, p1 := range av {
		for v2, p2 := range bv {
			if rel(v1, v2) {
				r = c.m.Or(r, c.m.And(p1, p2))
			}
		}
	}
	return r
}
