package symbolic

import (
	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

// This file holds the tuned ranking/recovery image path: the engine-level
// Pre and the per-group probe operations run on the retained cycle-
// detection scratch manager (warm operation cache, persistent→scratch copy
// memo) instead of the persistent store, and per-group pre-image terms are
// combined through a balanced union tree. SetReferenceRanks restores the
// persistent-manager linear folds as the differential oracle. Results are
// identical either way: the probes return booleans, and Pre's result is a
// canonical BDD of the same function regardless of where — and in which
// association order — it was computed.

// SetReferenceRanks restores the pre-tuning ranking/recovery scheme: the
// whole-set rank BFS in core.ComputeRanks (via the core.RankScheme
// capability), persistent-manager image computation with linear Or folds
// here, and no rank-∞ fast-fail in core.AddConvergence. The default path
// is observationally identical — the knob-matrix differential tests pin
// byte-identical protocols — and exists as the benchmark baseline and
// oracle, exactly like SetReferenceKernels and SetReferenceFixpoints.
func (e *Engine) SetReferenceRanks(on bool) { e.refRanks = on }

// ReferenceRanks implements core.RankScheme.
func (e *Engine) ReferenceRanks() bool { return e.refRanks }

// orTree unions terms through a balanced pairwise reduction. The linear
// fold conjures one ever-growing accumulator that every next Or must
// re-walk; the tree keeps operand sizes comparable and its intermediates
// cache-friendly. BDD canonicity makes the result independent of the
// association order, so callers may switch freely. terms is clobbered.
func orTree(m *bdd.Manager, terms []bdd.Ref) bdd.Ref {
	if len(terms) == 0 {
		return bdd.False
	}
	for len(terms) > 1 {
		n := 0
		for i := 0; i+1 < len(terms); i += 2 {
			terms[n] = m.Or(terms[i], terms[i+1])
			n++
		}
		if len(terms)%2 == 1 {
			terms[n] = terms[len(terms)-1]
			n++
		}
		terms = terms[:n]
	}
	return terms[0]
}

// imgCtx returns a context over the retained scratch manager for engine-
// level image work outside CyclicSCCs (ranking pre-images, recovery
// probes). It shares the scratch copy memo, so the recurring inputs — the
// group cubes, and the from/to/deadlock sets a candidate filter probes
// against for every group of a process — migrate once per epoch instead
// of once per operation.
func (e *Engine) imgCtx() *sccCtx {
	s := e.ensureScratch()
	c := &sccCtx{e: e, m: s.m, memo: s.memo}
	if e.reorder {
		c.lmap, _ = e.scratchOrderMaps()
	}
	return c
}

// scratchPre is Pre on the scratch manager: per-group terms q_i = src_i ∧
// Restrict(x, wcube_i), combined with a balanced union tree.
func (c *sccCtx) scratchPre(gs []core.Group, x bdd.Ref) bdd.Ref {
	terms := make([]bdd.Ref, 0, len(gs))
	for _, g := range gs {
		gg := g.(*group)
		src := c.copyIn(gg.src, c.memo)
		wc := c.copyIn(gg.writeCube, c.memo)
		if q := c.m.And(src, c.m.Restrict(x, wc)); q != bdd.False {
			terms = append(terms, q)
		}
	}
	return orTree(c.m, terms)
}

// preScratch computes Pre(gs, X) on the retained scratch manager and
// migrates the result back to the persistent store.
func (e *Engine) preScratch(gs []core.Group, x bdd.Ref) bdd.Ref {
	c := e.imgCtx()
	out := c.scratchPre(gs, c.copyIn(x, c.memo))
	return c.copyBack(out, make(map[bdd.Ref]bdd.Ref))
}

// groupPreScratch is the scratch-manager preGroup: src ∧ x[written:=vals].
func (c *sccCtx) groupPreScratch(g *group, x bdd.Ref) bdd.Ref {
	src := c.copyIn(g.src, c.memo)
	wc := c.copyIn(g.writeCube, c.memo)
	return c.m.And(src, c.m.Restrict(x, wc))
}
