package symbolic

import (
	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

var _ core.SetExporter = (*Engine)(nil)

// ExportSet implements core.SetExporter: a manager-independent snapshot of
// the set — the serialized node list prefixed with the layout fingerprint.
// The fingerprint makes snapshots self-describing across engines for the
// same spec: a memo entry taken under one variable order is rejected by
// ImportSet under any other (node indices would decode into a different
// function), so cross-schedule memos compose safely with NewWithOrder.
func (e *Engine) ExportSet(a core.Set) []uint64 {
	return append([]uint64{e.l.fingerprint()}, e.m.Serialize(a.(bdd.Ref))...)
}

// ImportSet rebuilds a snapshot into this engine's manager. ok=false when
// the fingerprint names a different layout or the node list is malformed —
// the memo then falls back to recomputation. The returned set is not yet a
// collection root; callers retain it before the next safe point, exactly
// as with any freshly computed set.
func (e *Engine) ImportSet(words []uint64) (core.Set, bool) {
	if len(words) == 0 || words[0] != e.l.fingerprint() {
		return nil, false
	}
	r, ok := e.m.Deserialize(words[1:])
	if !ok {
		return nil, false
	}
	return r, true
}
