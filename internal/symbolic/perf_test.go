package symbolic_test

import (
	"fmt"
	"testing"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// protoKeys reduces a synthesis result to the comparable protocol key set.
func protoKeys(gs []core.Group) map[protocol.Key]bool {
	out := make(map[protocol.Key]bool, len(gs))
	for _, g := range gs {
		out[g.ProtocolGroup().Key()] = true
	}
	return out
}

func sameKeySets(a, b map[protocol.Key]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// synthesize runs AddConvergence on a fresh engine configured by cfg and
// returns the protocol key set (nil on error) plus the error.
func synthesize(t *testing.T, sp *protocol.Spec, cfg func(*symbolic.Engine)) (map[protocol.Key]bool, error) {
	t.Helper()
	e, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	if cfg != nil {
		cfg(e)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		return nil, err
	}
	if v := verify.StronglyStabilizing(e, res.Protocol); !v.OK {
		t.Fatalf("result does not stabilize: %s", v.Reason)
	}
	return protoKeys(res.Protocol), nil
}

// TestKnobMatrixSynthesisIdentical is the PR's headline differential
// contract: the fused image, the reference fixpoint scheme, the sifted
// scratch order, and every worker count are pure performance knobs — the
// synthesized protocol must be byte-identical to the reference sequential
// oracle under all of them, and failures must fail with the same error
// class.
func TestKnobMatrixSynthesisIdentical(t *testing.T) {
	configs := []struct {
		name string
		cfg  func(*symbolic.Engine)
	}{
		{"oracle-reference-seq", func(e *symbolic.Engine) { e.SetReferenceFixpoints(true) }},
		{"default", nil},
		{"fused", func(e *symbolic.Engine) { e.SetFusedImage(true) }},
		{"reference-fused", func(e *symbolic.Engine) {
			e.SetReferenceFixpoints(true)
			e.SetFusedImage(true)
		}},
		{"reorder", func(e *symbolic.Engine) { e.SetDynamicReorder(true) }},
		{"reference-reorder", func(e *symbolic.Engine) {
			e.SetReferenceFixpoints(true)
			e.SetDynamicReorder(true)
		}},
		{"workers3", func(e *symbolic.Engine) {
			e.SetParallelism(3)
			e.SetSpawnGrain(8) // force real hand-offs on unit-test instances
		}},
		{"fused-workers2", func(e *symbolic.Engine) {
			e.SetFusedImage(true)
			e.SetParallelism(2)
			e.SetSpawnGrain(8)
		}},
		{"everything", func(e *symbolic.Engine) {
			e.SetFusedImage(true)
			e.SetDynamicReorder(true)
			e.SetParallelism(4)
			e.SetSpawnGrain(8)
		}},
	}
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(5),
		protocols.Coloring(5),
		protocols.GoudaAcharyaMatching(4),
		protocols.DijkstraTokenRing(4, 3),
	} {
		want, wantErr := synthesize(t, sp, configs[0].cfg)
		for _, c := range configs[1:] {
			got, err := synthesize(t, sp, c.cfg)
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Fatalf("%s/%s: error %v, oracle %v", sp.Name, c.name, err, wantErr)
			}
			if err == nil && !sameKeySets(got, want) {
				t.Fatalf("%s/%s: protocol differs from the reference sequential oracle", sp.Name, c.name)
			}
		}
	}
}

// TestParallelSCCsMatchSequential compares the components themselves, not
// just the downstream protocol: the same SCCs in the same deterministic
// order for every worker count.
func TestParallelSCCsMatchSequential(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.GoudaAcharyaMatching(4),
		protocols.GoudaAcharyaMatching(5),
	} {
		seq, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		ref := seq.CyclicSCCs(seq.ActionGroups(), seq.Not(seq.Invariant()))
		for _, workers := range []int{2, 4} {
			par, err := symbolic.New(sp)
			if err != nil {
				t.Fatal(err)
			}
			par.SetParallelism(workers)
			par.SetSpawnGrain(4)
			got := par.CyclicSCCs(par.ActionGroups(), par.Not(par.Invariant()))
			if len(got) != len(ref) {
				t.Fatalf("%s workers=%d: %d SCCs, sequential found %d", sp.Name, workers, len(got), len(ref))
			}
			for _, s := range got {
				st, _ := par.PickState(s)
				found := false
				for _, r := range ref {
					if seq.States(r) == par.States(s) && !seq.IsEmpty(seq.And(r, seq.Singleton(st))) {
						found = true
						break
					}
				}
				if !found {
					t.Fatalf("%s workers=%d: parallel SCC missing from sequential enumeration", sp.Name, workers)
				}
			}
		}
	}
}

// TestParallelSynthesisStress is the -race battery for the worker pool: it
// repeatedly synthesizes under aggressive spawning with several worker
// counts, inside a watchdog so a stuck pool fails the test instead of
// hanging CI.
func TestParallelSynthesisStress(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping parallel stress battery in -short mode")
	}
	specs := []*protocol.Spec{
		protocols.Matching(6),             // succeeds
		protocols.DijkstraTokenRing(4, 3), // cycles inside I
		protocols.GoudaAcharyaMatching(5), // fails deterministically
	}
	type oracle struct {
		keys map[protocol.Key]bool
		err  error
	}
	oracles := make([]oracle, len(specs))
	for i, sp := range specs {
		keys, err := synthesize(t, sp, nil)
		oracles[i] = oracle{keys: keys, err: err}
	}
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			for iter := 0; iter < 2; iter++ {
				for _, workers := range []int{2, 4, 8} {
					for i, sp := range specs {
						e, err := symbolic.New(sp)
						if err != nil {
							return err
						}
						e.SetParallelism(workers)
						e.SetSpawnGrain(2) // maximal hand-off pressure
						res, err := core.AddConvergence(e, core.Options{})
						want := oracles[i]
						if (err == nil) != (want.err == nil) || (err != nil && err.Error() != want.err.Error()) {
							return fmt.Errorf("%s workers=%d: error %v, oracle %v", sp.Name, workers, err, want.err)
						}
						if err != nil {
							continue
						}
						if !sameKeySets(protoKeys(res.Protocol), want.keys) {
							return fmt.Errorf("%s workers=%d: protocol differs from sequential oracle", sp.Name, workers)
						}
						if v := verify.StronglyStabilizing(e, res.Protocol); !v.OK {
							return fmt.Errorf("%s workers=%d: not stabilizing: %s", sp.Name, workers, v.Reason)
						}
					}
				}
			}
			return nil
		}()
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Minute):
		t.Fatal("parallel synthesis wedged: worker pool deadlock or runaway fixpoint")
	}
}

// TestReorderEquivalenceDeterministic pins synthesis equivalence under a
// spread of explicit variable orders (the fuzz target explores random
// ones): reversed, rotated, and odd-even interleaved layouts all yield the
// oracle protocol.
func TestReorderEquivalenceDeterministic(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(5),
		protocols.GoudaAcharyaMatching(4),
	} {
		want, wantErr := synthesize(t, sp, nil)
		n := len(sp.Vars)
		orders := [][]int{make([]int, n), make([]int, n), make([]int, n)}
		for i := 0; i < n; i++ {
			orders[0][i] = n - 1 - i     // reversed
			orders[1][i] = (i + n/2) % n // rotated
			orders[2][i] = (2*i + 1) % n // odd levels first (n odd)…
		}
		if n%2 == 0 { // …or a strict odd-even split when n is even
			k := 0
			for i := 1; i < n; i += 2 {
				orders[2][k] = i
				k++
			}
			for i := 0; i < n; i += 2 {
				orders[2][k] = i
				k++
			}
		}
		for oi, order := range orders {
			e, err := symbolic.NewWithOrder(sp, order)
			if err != nil {
				t.Fatal(err)
			}
			e.SetDynamicReorder(true) // sift on top of the hostile base order
			res, err := core.AddConvergence(e, core.Options{})
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s order %d: error %v, oracle %v", sp.Name, oi, err, wantErr)
			}
			if err != nil {
				continue
			}
			if !sameKeySets(protoKeys(res.Protocol), want) {
				t.Fatalf("%s order %d: protocol depends on the variable order", sp.Name, oi)
			}
			if v := verify.StronglyStabilizing(e, res.Protocol); !v.OK {
				t.Fatalf("%s order %d: not stabilizing: %s", sp.Name, oi, v.Reason)
			}
		}
	}
}

// TestNewWithOrderRejectsBadOrders covers the permutation validation.
func TestNewWithOrderRejectsBadOrders(t *testing.T) {
	sp := protocols.TokenRing(3, 3)
	for _, order := range [][]int{
		{0, 1},          // short
		{0, 1, 1},       // duplicate
		{0, 1, 3},       // out of range
		{-1, 1, 2},      // negative
		{0, 1, 2, 3, 4}, // long
	} {
		if _, err := symbolic.NewWithOrder(sp, order); err == nil {
			t.Fatalf("order %v accepted", order)
		}
	}
	if _, err := symbolic.NewWithOrder(sp, []int{2, 0, 1}); err != nil {
		t.Fatalf("valid order rejected: %v", err)
	}
}

// TestDefaultVarOrderRingIdentity pins that the locality order leaves the
// paper's ring case studies untouched (vars are declared in process
// order), so committed benchmarks measure the substrate, not a layout
// change.
func TestDefaultVarOrderRingIdentity(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(5, 4),
		protocols.Coloring(7),
		protocols.Matching(6),
	} {
		order := symbolic.DefaultVarOrder(sp)
		for i, id := range order {
			if i != id {
				t.Fatalf("%s: DefaultVarOrder = %v, want identity", sp.Name, order)
			}
		}
	}
}
