package symbolic

import (
	"sort"
	"sync"

	"stsyn/internal/bdd"
)

// Parallel SCC enumeration. The skeleton decomposition splits the graph
// into disjoint subproblems (inside/outside each forward set), so the two
// descendants a step produces can run anywhere — provided each runs in a
// manager nobody else touches. A spawned subproblem therefore gets a full
// task-private scratch context (sccCtx.clone) built by its current owner
// while the source manager is quiescent, and workers share nothing but
// the queue.
//
// Determinism: everything a spawn decision can observe — DagSize of the
// subproblem (structural on canonical ROBDDs), the per-task spawn counter,
// the fixed offer order — is independent of scheduling, so the task tree
// is identical for every worker count and interleaving. Results are keyed
// by their spawn path and sorted before the copy-back, so CyclicSCCs
// returns the same components in the same order whether one worker runs
// the tree or eight do.
const (
	// spawnGrain is the minimum DagSize of a subproblem's state set before
	// handing it off pays for cloning the group cubes into a new manager.
	spawnGrain = 128
	// spawnCap bounds how many children one task may hand off; the rest of
	// its decomposition stays on its local stack.
	spawnCap = 8
)

// pTask is a unit of parallel work: one skeleton subproblem together with
// the task-private scratch context it runs in.
type pTask struct {
	path []int // spawn path from the root; the deterministic result key
	ctx  *sccCtx
	t    skelTask
}

// pResult collects the cyclic SCCs one task emitted, still living in the
// task's scratch manager.
type pResult struct {
	path []int
	ctx  *sccCtx
	sccs []bdd.Ref
}

type sccPool struct {
	mu       sync.Mutex
	cond     *sync.Cond
	queue    []*pTask
	inflight int // queued + running tasks; 0 means the tree is drained
	results  []pResult
}

// parallelSkeleton runs the skeleton decomposition of v0 (in the root
// scratch context) across e.workers goroutines and returns the cyclic
// SCCs copied back to the persistent manager, in deterministic path
// order. The caller folds the root context's stats; spawned contexts are
// folded here after the workers join.
func (e *Engine) parallelSkeleton(root *sccCtx, v0 bdd.Ref) []bdd.Ref {
	pool := &sccPool{}
	pool.cond = sync.NewCond(&pool.mu)
	pool.queue = []*pTask{{ctx: root, t: skelTask{v: v0, s: bdd.False, n: bdd.False}}}
	pool.inflight = 1

	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			pool.work(e)
		}()
	}
	wg.Wait()

	sort.Slice(pool.results, func(i, j int) bool {
		return lessPath(pool.results[i].path, pool.results[j].path)
	})
	var out []bdd.Ref
	for _, r := range pool.results {
		memo := make(map[bdd.Ref]bdd.Ref)
		for _, s := range r.sccs {
			out = append(out, r.ctx.copyBack(s, memo))
		}
		if r.ctx != root {
			e.foldScratchStats(r.ctx.m)
		}
	}
	return out
}

// work pops and runs tasks until the whole task tree has drained. Waiting
// is bounded by inflight: a worker sleeps only while another task is still
// running (and may yet enqueue children), so the pool cannot deadlock —
// the last finishing task broadcasts the drain.
func (p *sccPool) work(e *Engine) {
	for {
		p.mu.Lock()
		for len(p.queue) == 0 && p.inflight > 0 {
			p.cond.Wait()
		}
		if len(p.queue) == 0 {
			p.mu.Unlock()
			return
		}
		t := p.queue[len(p.queue)-1]
		p.queue = p.queue[:len(p.queue)-1]
		p.mu.Unlock()

		p.run(e, t)

		p.mu.Lock()
		p.inflight--
		if p.inflight == 0 {
			p.cond.Broadcast()
		}
		p.mu.Unlock()
	}
}

// run drains one task with the sequential skeleton loop, offering each
// descendant subproblem to the queue when it is big enough to justify a
// private manager.
func (p *sccPool) run(e *Engine, t *pTask) {
	res := pResult{path: t.path, ctx: t.ctx}
	spawned := 0
	trySpawn := func(st skelTask) bool {
		if spawned >= spawnCap || st.v == bdd.False || t.ctx.m.DagSize(st.v) < e.spawnThreshold() {
			return false
		}
		cc, refs := t.ctx.clone(st.v, st.s, st.n)
		child := &pTask{
			path: append(append([]int(nil), t.path...), spawned),
			ctx:  cc,
			t:    skelTask{v: refs[0], s: refs[1], n: refs[2]},
		}
		spawned++
		p.mu.Lock()
		p.queue = append(p.queue, child)
		p.inflight++
		p.cond.Signal()
		p.mu.Unlock()
		return true
	}
	t.ctx.skeletonRun(t.t, func(scc bdd.Ref) {
		if t.ctx.hasInternalTransition(scc) {
			res.sccs = append(res.sccs, scc) //lint:ignore bddref scratch manager: dropped wholesale, never GCs
		}
	}, trySpawn)

	p.mu.Lock()
	p.results = append(p.results, res)
	p.mu.Unlock()
}

func lessPath(a, b []int) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}
