package symbolic_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
)

// TestRepeatedSynthesisBoundedMemory is the acceptance test for the BDD
// garbage collector: 100 token-ring syntheses on one reused engine must
// reach a steady-state live-node count instead of growing monotonically
// (the seed manager leaked every intermediate forever, so a long-running
// service grew without bound).
func TestRepeatedSynthesisBoundedMemory(t *testing.T) {
	e, err := symbolic.New(protocols.TokenRing(4, 3))
	if err != nil {
		t.Fatal(err)
	}
	// Watermark just above the engine's permanent roots, so collections
	// actually happen during every synthesis.
	base := e.Manager().Live()
	e.SetCompactionThreshold(base + 512)

	var first int
	for i := 0; i < 100; i++ {
		res, err := core.AddConvergence(e, core.Options{})
		if err != nil {
			t.Fatalf("iteration %d: %v", i, err)
		}
		if len(res.Protocol) == 0 || len(res.Added) == 0 {
			t.Fatalf("iteration %d: implausible result (%d groups, %d added)",
				i, len(res.Protocol), len(res.Added))
		}
		live := e.Manager().Live()
		if i == 0 {
			first = live
			continue
		}
		// Steady state: after the first iteration the loop-boundary live
		// count must not keep growing. 2x headroom absorbs jitter from
		// where exactly the last collection fell.
		if live > 2*first {
			t.Fatalf("iteration %d: live nodes grew from %d to %d — synthesis leaks roots",
				i, first, live)
		}
	}

	st := e.Manager().Stats()
	if st.GCRuns == 0 {
		t.Fatal("no collection ever ran; the watermark gate is broken")
	}
	if st.GCReclaimed == 0 {
		t.Fatal("collections reclaimed nothing; the loop cannot be bounded")
	}
	t.Logf("live=%d peak=%d gc-runs=%d reclaimed=%d cache-hit-rate=%.2f",
		st.LiveNodes, st.PeakLiveNodes, st.GCRuns, st.GCReclaimed, st.CacheHitRate)
}

// TestSCCSetsSurviveUntilNextCall pins the CyclicSCCs lifetime contract:
// the returned components stay usable (as collection roots) until the next
// CyclicSCCs call, even if a forced collection happens in between.
func TestSCCSetsSurviveUntilNextCall(t *testing.T) {
	e, err := symbolic.New(protocols.TokenRing(3, 3))
	if err != nil {
		t.Fatal(err)
	}
	e.SetCompactionThreshold(1)
	inv := e.Invariant()
	sccs := e.CyclicSCCs(e.ActionGroups(), e.Universe())
	if len(sccs) == 0 {
		t.Fatal("token ring's legitimate ring rotation should form an SCC")
	}
	// A Compact between the call and the use forces a collection; the
	// components are engine-kept so membership must survive it.
	e.Compact(nil)
	for i, scc := range sccs {
		if e.IsEmpty(scc) {
			t.Fatalf("scc %d empty after collection", i)
		}
		if e.IsEmpty(e.And(scc, e.Universe())) {
			t.Fatalf("scc %d unusable after collection", i)
		}
	}
	_ = inv
}
