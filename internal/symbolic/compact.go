package symbolic

import (
	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

// DefaultCompactionThreshold is the live-node count above which the
// engine's safe points (Compact calls and the MaybeGC checks inside the
// SCC fixpoints) trigger a garbage collection.
const DefaultCompactionThreshold = 1 << 20

// SetCompactionThreshold overrides the live-node watermark that triggers
// collection (0 restores the default; a tiny value forces a collection at
// every safe point, which the GC-stress tests use).
func (e *Engine) SetCompactionThreshold(n int) {
	e.compactAt = n
	if n == 0 {
		n = DefaultCompactionThreshold
	}
	e.m.SetGCWatermark(n)
}

// Compact implements core.Compactor: when the live-node count has grown
// past the watermark, run a mark-and-sweep collection. The engine's own
// structures are permanent collection roots, and the caller's live sets
// are protected for the duration of the sweep, so every returned Set is
// the identical Ref that went in — node identities are stable across
// collections. Any Set that is neither listed in live nor retained via
// core.RefRegistry is invalidated.
func (e *Engine) Compact(live []core.Set) []core.Set {
	threshold := e.compactAt
	if threshold == 0 {
		threshold = DefaultCompactionThreshold
	}
	if e.m.Live() <= threshold {
		return live
	}
	for _, s := range live {
		e.m.Keep(s.(bdd.Ref))
	}
	e.m.GC()
	for _, s := range live {
		e.m.Release(s.(bdd.Ref))
	}
	return live
}
