package symbolic

import (
	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

// DefaultCompactionThreshold is the main-manager node count above which
// Compact actually rebuilds (below it the call is a no-op).
const DefaultCompactionThreshold = 1 << 22

// SetCompactionThreshold overrides the node count that triggers compaction
// (0 restores the default; useful to force compaction in tests).
func (e *Engine) SetCompactionThreshold(n int) { e.compactAt = n }

// Compact implements core.Compactor: when the node store has grown past
// the threshold, every long-lived BDD — the engine's own structures plus
// the caller's live sets — is migrated into a fresh manager and the old
// store is dropped wholesale (the BDD package has no per-node garbage
// collector; this is the scoped-lifetime alternative, the same idea the
// SCC detector uses per call). Any Set not listed in live is invalidated.
//
// The returned slice holds the migrated live sets, order preserved.
func (e *Engine) Compact(live []core.Set) []core.Set {
	threshold := e.compactAt
	if threshold == 0 {
		threshold = DefaultCompactionThreshold
	}
	if e.m.Size() <= threshold {
		return live
	}
	fresh := bdd.New(e.m.NumVars())
	memo := make(map[bdd.Ref]bdd.Ref)
	mv := func(r bdd.Ref) bdd.Ref { return fresh.CopyFrom(e.m, r, memo) }

	e.valid = mv(e.valid)
	e.inv = mv(e.inv)
	for _, row := range e.cmp.eqc {
		for i, r := range row {
			row[i] = mv(r)
		}
	}
	for _, g := range e.byKey {
		g.src = mv(g.src)
		g.writeCube = mv(g.writeCube)
		g.writeVars = mv(g.writeVars)
		if g.rel != bdd.False {
			g.rel = mv(g.rel)
		}
	}
	out := make([]core.Set, len(live))
	for i, s := range live {
		out[i] = mv(s.(bdd.Ref))
	}
	e.cmp.m = fresh
	e.m = fresh
	return out
}
