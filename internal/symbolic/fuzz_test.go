package symbolic_test

import (
	"errors"
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/specgen"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// TestFuzzCompilerAgainstEvaluation checks the symbolic expression compiler
// against direct evaluation: for random expressions (covering the whole
// AST: modular arithmetic, conditionals, comparisons, connectives) the
// compiled invariant must contain exactly the states the evaluator accepts.
func TestFuzzCompilerAgainstEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		sp := specgen.RandomSpec(rng, false)
		sp.Invariant = specgen.RandomBoolExpr(rng, sp, specgen.AllIDs(len(sp.Vars)), 3)
		se, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		inv := se.Invariant()
		ix := protocol.NewIndexer(sp)
		s := make(protocol.State, len(sp.Vars))
		for i := uint64(0); i < ix.Len(); i++ {
			ix.Decode(i, s)
			want := sp.Invariant.EvalBool(s)
			got := !se.IsEmpty(se.And(inv, se.Singleton(s)))
			if got != want {
				t.Fatalf("iter %d: compiled invariant disagrees at %v (%s)",
					iter, s, sp.Invariant.Render(sp.VarNames()))
			}
		}
	}
}

// TestFuzzDifferentialSynthesis runs the synthesizer on random protocols
// with both engines and demands identical outcomes: same error class, same
// synthesized groups, and a machine-checked stabilization proof on success.
func TestFuzzDifferentialSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	succeeded, failed := 0, 0
	for iter := 0; iter < 80; iter++ {
		withActions := iter%2 == 1
		sp := specgen.RandomSpec(rng, withActions)
		se, err := symbolic.New(sp)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ee, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for _, resolution := range []core.CycleResolution{core.BatchResolution, core.IncrementalResolution} {
			opts := core.Options{CycleResolution: resolution}
			sres, serr := core.AddConvergence(se, opts)
			eres, eerr := core.AddConvergence(ee, opts)

			if (serr == nil) != (eerr == nil) {
				t.Fatalf("iter %d: engines disagree: symbolic=%v explicit=%v", iter, serr, eerr)
			}
			if serr != nil {
				for _, sentinel := range []error{core.ErrNotClosed, core.ErrNoStabilizingVersion,
					core.ErrUnresolvableCycle, core.ErrDeadlocksRemain} {
					if errors.Is(serr, sentinel) != errors.Is(eerr, sentinel) {
						t.Fatalf("iter %d: different error classes: %v vs %v", iter, serr, eerr)
					}
				}
				failed++
				continue
			}
			succeeded++
			skeys := make(map[protocol.Key]bool)
			for _, g := range sres.Protocol {
				skeys[g.ProtocolGroup().Key()] = true
			}
			if len(skeys) != len(eres.Protocol) {
				t.Fatalf("iter %d: %d vs %d groups", iter, len(skeys), len(eres.Protocol))
			}
			for _, g := range eres.Protocol {
				if !skeys[g.ProtocolGroup().Key()] {
					t.Fatalf("iter %d: group mismatch", iter)
				}
			}
			if v := verify.StronglyStabilizing(ee, eres.Protocol); !v.OK {
				t.Fatalf("iter %d: result not stabilizing: %s (witness %v)", iter, v.Reason, v.Witness)
			}
			if v := verify.PreservesInvariantBehavior(ee, eres); !v.OK {
				t.Fatalf("iter %d: δp|I changed: %s", iter, v.Reason)
			}
		}
	}
	if succeeded == 0 {
		t.Error("fuzz never synthesized anything — generator too hostile")
	}
	if failed == 0 {
		t.Error("fuzz never failed — generator too friendly to exercise error paths")
	}
	t.Logf("fuzz: %d successes, %d failures across engines/strategies", succeeded, failed)
}

// TestFuzzWeakSynthesis checks Theorem IV.1 end to end on random inputs:
// whenever weak synthesis succeeds the result verifies as weakly
// stabilizing, and whenever it fails with ErrNoStabilizingVersion even the
// all-candidate protocol cannot weakly converge.
func TestFuzzWeakSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		sp := specgen.RandomSpec(rng, false)
		ee, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AddConvergence(ee, core.Options{Convergence: core.Weak})
		if err == nil {
			if v := verify.WeaklyStabilizing(ee, res.Protocol); !v.OK {
				t.Fatalf("iter %d: weak result not weakly stabilizing: %s", iter, v.Reason)
			}
			continue
		}
		if !errors.Is(err, core.ErrNoStabilizingVersion) {
			t.Fatalf("iter %d: unexpected weak-mode error %v", iter, err)
		}
		// Completeness: even pim (every legal recovery group) fails.
		pim := core.Pim(ee, ee.ActionGroups())
		if v := verify.WeakConvergence(ee, pim); v.OK {
			t.Fatalf("iter %d: ErrNoStabilizingVersion but pim weakly converges", iter)
		}
	}
}
