package symbolic_test

import (
	"errors"
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// randomSpec generates a small random protocol: 3-4 variables with domains
// 2-3, 2-3 processes with random localities (w ⊆ r guaranteed), random
// guarded commands, and a random invariant.
func randomSpec(rng *rand.Rand, withActions bool) *protocol.Spec {
	nv := 3 + rng.Intn(2)
	sp := &protocol.Spec{Name: "fuzz"}
	for i := 0; i < nv; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{
			Name: "v" + string(rune('0'+i)),
			Dom:  2 + rng.Intn(2),
		})
	}
	np := 2 + rng.Intn(2)
	for p := 0; p < np; p++ {
		// Writes: one random variable; reads: the write plus 1-2 others.
		w := rng.Intn(nv)
		reads := map[int]bool{w: true}
		for len(reads) < 2+rng.Intn(2) {
			reads[rng.Intn(nv)] = true
		}
		var rs []int
		for id := range reads {
			rs = append(rs, id)
		}
		proc := protocol.Process{
			Name:   "P" + string(rune('0'+p)),
			Reads:  protocol.SortedIDs(rs...),
			Writes: []int{w},
		}
		if withActions {
			for a := 0; a < rng.Intn(3); a++ {
				guard := randomBool(rng, sp, proc.Reads, 2)
				val := rng.Intn(sp.Vars[w].Dom)
				proc.Actions = append(proc.Actions, protocol.Action{
					Guard:   guard,
					Assigns: []protocol.Assignment{{Var: w, Expr: protocol.C{Val: val}}},
				})
			}
		}
		sp.Procs = append(sp.Procs, proc)
	}
	sp.Invariant = randomBool(rng, sp, allIDs(nv), 3)
	return sp
}

func allIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// randomInt builds a random integer expression over variables of one
// domain (modular arithmetic needs uniform moduli).
func randomInt(rng *rand.Rand, sp *protocol.Spec, vars []int, depth int) (protocol.IntExpr, int) {
	a := vars[rng.Intn(len(vars))]
	dom := sp.Vars[a].Dom
	if depth == 0 || rng.Intn(2) == 0 {
		if rng.Intn(3) == 0 {
			return protocol.C{Val: rng.Intn(dom)}, dom
		}
		return protocol.V{ID: a}, dom
	}
	// Pick a second operand of the same domain.
	var same []int
	for _, v := range vars {
		if sp.Vars[v].Dom == dom {
			same = append(same, v)
		}
	}
	lhs, _ := randomInt(rng, sp, []int{a}, 0)
	rhs, _ := randomInt(rng, sp, same, depth-1)
	switch rng.Intn(3) {
	case 0:
		return protocol.AddMod{A: lhs, B: rhs, Mod: dom}, dom
	case 1:
		return protocol.SubMod{A: lhs, B: rhs, Mod: dom}, dom
	default:
		return protocol.Cond{
			If:   randomBool(rng, sp, vars, 0),
			Then: lhs,
			Else: rhs,
		}, dom
	}
}

func randomBool(rng *rand.Rand, sp *protocol.Spec, vars []int, depth int) protocol.BoolExpr {
	if depth == 0 || rng.Intn(3) == 0 {
		a, _ := randomInt(rng, sp, vars, 1)
		b, _ := randomInt(rng, sp, vars, 1)
		switch rng.Intn(3) {
		case 0:
			return protocol.Eq{A: a, B: b}
		case 1:
			return protocol.Neq{A: a, B: b}
		default:
			return protocol.Lt{A: a, B: b}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return protocol.Conj(randomBool(rng, sp, vars, depth-1), randomBool(rng, sp, vars, depth-1))
	case 1:
		return protocol.Disj(randomBool(rng, sp, vars, depth-1), randomBool(rng, sp, vars, depth-1))
	case 2:
		return protocol.Implies{A: randomBool(rng, sp, vars, depth-1), B: randomBool(rng, sp, vars, depth-1)}
	default:
		return protocol.Not{X: randomBool(rng, sp, vars, depth-1)}
	}
}

// TestFuzzCompilerAgainstEvaluation checks the symbolic expression compiler
// against direct evaluation: for random expressions (covering the whole
// AST: modular arithmetic, conditionals, comparisons, connectives) the
// compiled invariant must contain exactly the states the evaluator accepts.
func TestFuzzCompilerAgainstEvaluation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 120; iter++ {
		sp := randomSpec(rng, false)
		sp.Invariant = randomBool(rng, sp, allIDs(len(sp.Vars)), 3)
		se, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		inv := se.Invariant()
		ix := protocol.NewIndexer(sp)
		s := make(protocol.State, len(sp.Vars))
		for i := uint64(0); i < ix.Len(); i++ {
			ix.Decode(i, s)
			want := sp.Invariant.EvalBool(s)
			got := !se.IsEmpty(se.And(inv, se.Singleton(s)))
			if got != want {
				t.Fatalf("iter %d: compiled invariant disagrees at %v (%s)",
					iter, s, sp.Invariant.Render(sp.VarNames()))
			}
		}
	}
}

// TestFuzzDifferentialSynthesis runs the synthesizer on random protocols
// with both engines and demands identical outcomes: same error class, same
// synthesized groups, and a machine-checked stabilization proof on success.
func TestFuzzDifferentialSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	succeeded, failed := 0, 0
	for iter := 0; iter < 80; iter++ {
		withActions := iter%2 == 1
		sp := randomSpec(rng, withActions)
		se, err := symbolic.New(sp)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		ee, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for _, resolution := range []core.CycleResolution{core.BatchResolution, core.IncrementalResolution} {
			opts := core.Options{CycleResolution: resolution}
			sres, serr := core.AddConvergence(se, opts)
			eres, eerr := core.AddConvergence(ee, opts)

			if (serr == nil) != (eerr == nil) {
				t.Fatalf("iter %d: engines disagree: symbolic=%v explicit=%v", iter, serr, eerr)
			}
			if serr != nil {
				for _, sentinel := range []error{core.ErrNotClosed, core.ErrNoStabilizingVersion,
					core.ErrUnresolvableCycle, core.ErrDeadlocksRemain} {
					if errors.Is(serr, sentinel) != errors.Is(eerr, sentinel) {
						t.Fatalf("iter %d: different error classes: %v vs %v", iter, serr, eerr)
					}
				}
				failed++
				continue
			}
			succeeded++
			skeys := make(map[protocol.Key]bool)
			for _, g := range sres.Protocol {
				skeys[g.ProtocolGroup().Key()] = true
			}
			if len(skeys) != len(eres.Protocol) {
				t.Fatalf("iter %d: %d vs %d groups", iter, len(skeys), len(eres.Protocol))
			}
			for _, g := range eres.Protocol {
				if !skeys[g.ProtocolGroup().Key()] {
					t.Fatalf("iter %d: group mismatch", iter)
				}
			}
			if v := verify.StronglyStabilizing(ee, eres.Protocol); !v.OK {
				t.Fatalf("iter %d: result not stabilizing: %s (witness %v)", iter, v.Reason, v.Witness)
			}
			if v := verify.PreservesInvariantBehavior(ee, eres); !v.OK {
				t.Fatalf("iter %d: δp|I changed: %s", iter, v.Reason)
			}
		}
	}
	if succeeded == 0 {
		t.Error("fuzz never synthesized anything — generator too hostile")
	}
	if failed == 0 {
		t.Error("fuzz never failed — generator too friendly to exercise error paths")
	}
	t.Logf("fuzz: %d successes, %d failures across engines/strategies", succeeded, failed)
}

// TestFuzzWeakSynthesis checks Theorem IV.1 end to end on random inputs:
// whenever weak synthesis succeeds the result verifies as weakly
// stabilizing, and whenever it fails with ErrNoStabilizingVersion even the
// all-candidate protocol cannot weakly converge.
func TestFuzzWeakSynthesis(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 60; iter++ {
		sp := randomSpec(rng, false)
		ee, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AddConvergence(ee, core.Options{Convergence: core.Weak})
		if err == nil {
			if v := verify.WeaklyStabilizing(ee, res.Protocol); !v.OK {
				t.Fatalf("iter %d: weak result not weakly stabilizing: %s", iter, v.Reason)
			}
			continue
		}
		if !errors.Is(err, core.ErrNoStabilizingVersion) {
			t.Fatalf("iter %d: unexpected weak-mode error %v", iter, err)
		}
		// Completeness: even pim (every legal recovery group) fails.
		pim := core.Pim(ee, ee.ActionGroups())
		if v := verify.WeakConvergence(ee, pim); v.OK {
			t.Fatalf("iter %d: ErrNoStabilizingVersion but pim weakly converges", iter)
		}
	}
}
