package symbolic

// Dynamic variable reordering, confined to the SCC scratch managers.
//
// The persistent manager can never be reordered in place: Refs handed out
// through core.Set and pinned with Retain are stable across collections by
// contract, and a reorder rewrites the node store wholesale. The scratch
// managers of CyclicSCCs have no such obligation — the engine owns every
// ref in them — so they are the one safe point where a better order can be
// applied: inputs are translated on the way in (CopyPermutedFrom), the
// fixpoints run under the sifted order, and the small results are
// translated back with the inverse map.

// siftedVarOrder computes the scratch order with one pass of greedy
// sifting over the protocol variables, minimizing the total bit-span of
// the per-process read supports (weighted by each process's group count).
// The image of a group touches exactly the levels between the first and
// last bit of its process's reads, so narrowing the spans keeps the
// fixpoint intermediates — and the operation-cache working set — small.
// The result depends only on the spec, so it is deterministic and computed
// once per engine.
func (e *Engine) siftedVarOrder() []int {
	type supp struct {
		vars   []int
		weight int
	}
	supps := make([]supp, 0, len(e.sp.Procs))
	for pi := range e.sp.Procs {
		w := len(e.sp.ActionGroups(pi)) + len(e.sp.CandidateGroups(pi))
		if w == 0 || len(e.sp.Procs[pi].Reads) == 0 {
			continue
		}
		supps = append(supps, supp{vars: e.sp.Procs[pi].Reads, weight: w})
	}

	cost := func(ord []int) int {
		posOf := make([]int, len(e.sp.Vars))
		total := 0
		for _, id := range ord {
			posOf[id] = total
			total += e.l.bitsOf[id]
		}
		c := 0
		for _, s := range supps {
			lo, hi := int(^uint(0)>>1), -1
			for _, id := range s.vars {
				if posOf[id] < lo {
					lo = posOf[id]
				}
				if end := posOf[id] + e.l.bitsOf[id]; end > hi {
					hi = end
				}
			}
			c += s.weight * (hi - lo)
		}
		return c
	}

	order := append([]int(nil), e.l.order...)
	best := cost(order)
	for _, v := range append([]int(nil), order...) {
		// Remove v, then try every insertion point and keep the cheapest.
		at := -1
		for i, id := range order {
			if id == v {
				at = i
				break
			}
		}
		rest := append(append([]int(nil), order[:at]...), order[at+1:]...)
		bestOrd := order
		for i := 0; i <= len(rest); i++ {
			cand := make([]int, 0, len(order))
			cand = append(cand, rest[:i]...)
			cand = append(cand, v)
			cand = append(cand, rest[i:]...)
			if c := cost(cand); c < best {
				best, bestOrd = c, cand
			}
		}
		order = bestOrd
	}
	return order
}

// scratchOrderMaps returns the level translation between the persistent
// layout and the sifted scratch layout: fwd[persistent level] = scratch
// level, and inv its inverse. Both current- and next-state levels are
// mapped (CopyPermutedFrom needs a total injective map), computed lazily
// and cached — the sifted order depends only on the spec.
func (e *Engine) scratchOrderMaps() (fwd, inv []int) {
	if e.reorderMap == nil {
		sl := newLayoutOrdered(e.sp, e.siftedVarOrder())
		f := make([]int, e.m.NumVars())
		for id := range e.sp.Vars {
			for b := 0; b < e.l.bitsOf[id]; b++ {
				f[e.l.curLevel(id, b)] = sl.curLevel(id, b)
				f[e.l.nextLevel(id, b)] = sl.nextLevel(id, b)
			}
		}
		i := make([]int, len(f))
		for p, s := range f {
			i[s] = p
		}
		e.reorderMap, e.reorderInv = f, i
	}
	return e.reorderMap, e.reorderInv
}
