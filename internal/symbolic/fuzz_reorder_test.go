package symbolic_test

import (
	"errors"
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/specgen"
	"stsyn/internal/symbolic"
)

// errClass maps a synthesis error to its sentinel, so runs under different
// variable orders compare by failure mode rather than by witness state
// (error messages embed an example state, and which cube PickCube reports
// legitimately depends on the variable order).
func errClass(err error) error {
	for _, s := range []error{
		core.ErrNotClosed,
		core.ErrUnresolvableCycle,
		core.ErrNoStabilizingVersion,
		core.ErrDeadlocksRemain,
	} {
		if errors.Is(err, s) {
			return s
		}
	}
	return err
}

// FuzzReorderEquivalence is the native-fuzzing form of the PR's headline
// contract: the static variable order, the sifted scratch order, the fused
// image, and the worker count are pure performance knobs. For a random
// spec and a random permutation of its variables, synthesis under every
// knob combination must agree with the default-order sequential oracle on
// both the protocol key set and the error class.
func FuzzReorderEquivalence(f *testing.F) {
	for _, seed := range []int64{3, 11, 42, 512, 4096} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomSpec(rng, rng.Intn(2) == 1)

		run := func(order []int, cfg func(*symbolic.Engine)) (map[protocol.Key]bool, error) {
			var (
				e   *symbolic.Engine
				err error
			)
			if order == nil {
				e, err = symbolic.New(sp)
			} else {
				e, err = symbolic.NewWithOrder(sp, order)
			}
			if err != nil {
				t.Fatalf("generator produced an invalid spec: %v", err)
			}
			if cfg != nil {
				cfg(e)
			}
			res, err := core.AddConvergence(e, core.Options{})
			if err != nil {
				return nil, err
			}
			return protoKeys(res.Protocol), nil
		}

		wantKeys, wantErr := run(nil, nil)

		perm := rand.New(rand.NewSource(seed ^ 0x5eed)).Perm(len(sp.Vars))
		configs := []struct {
			name  string
			order []int
			cfg   func(*symbolic.Engine)
		}{
			{"permuted", perm, nil},
			{"permuted-fused", perm, func(e *symbolic.Engine) { e.SetFusedImage(true) }},
			{"permuted-reference", perm, func(e *symbolic.Engine) { e.SetReferenceFixpoints(true) }},
			{"permuted-reorder", perm, func(e *symbolic.Engine) { e.SetDynamicReorder(true) }},
			{"permuted-workers", perm, func(e *symbolic.Engine) {
				e.SetParallelism(2)
				e.SetSpawnGrain(2)
			}},
			{"default-reorder-workers", nil, func(e *symbolic.Engine) {
				e.SetDynamicReorder(true)
				e.SetParallelism(3)
				e.SetSpawnGrain(2)
			}},
		}
		for _, c := range configs {
			keys, err := run(c.order, c.cfg)
			if (err == nil) != (wantErr == nil) {
				t.Fatalf("%s: error mismatch: got %v, oracle %v", c.name, err, wantErr)
			}
			if err != nil {
				if !errors.Is(errClass(err), errClass(wantErr)) {
					t.Fatalf("%s: error class diverged: got %q, oracle %q", c.name, err, wantErr)
				}
				continue
			}
			if !sameKeySets(keys, wantKeys) {
				t.Fatalf("%s: synthesized protocol diverged from the default-order oracle", c.name)
			}
		}
	})
}
