package symbolic

import (
	"context"
	"math"

	"stsyn/internal/bdd"
	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// group is the symbolic representation of a transition group. Because
// w ⊆ r, the group's readable-valuation cube pins the written variables'
// current values, so images are cube cofactors:
//
//	Post_g(X) = (∃ written-bits. X ∧ src) ∧ writeCube
//	Pre_g(X)  = src ∧ X[written := WriteVals]   (a Restrict)
type group struct {
	pg        protocol.Group
	src       bdd.Ref // readable-valuation cube ∧ valid — all source states
	writeCube bdd.Ref // literal cube of the written variables' new values
	writeVars bdd.Ref // positive cube of the written variables' bit levels
	rel       bdd.Ref // lazily built relation over current×next bits (metrics)
}

func (g *group) Proc() int                     { return g.pg.Proc }
func (g *group) ProtocolGroup() protocol.Group { return g.pg }

// Engine is the BDD-backed implementation of core.Engine.
type Engine struct {
	sp  *protocol.Spec
	l   *layout
	m   *bdd.Manager
	cmp *compiler

	valid bdd.Ref
	inv   bdd.Ref

	actions    []core.Group
	candidates []core.Group
	byKey      map[protocol.Key]*group

	// sccs are the components handed out by the last CyclicSCCs call, kept
	// as collection roots until the next call invalidates them.
	sccs []bdd.Ref

	// scratch accumulates the counters of dropped cycle-detection scratch
	// managers so SpaceStats covers the engine's full substrate activity.
	scratch struct {
		ops, hits, misses, evicts, dropped uint64
		peak                               int
	}

	// sccScratch is the scratch manager retained across CyclicSCCs calls:
	// its operation cache stays warm and its persistent→scratch copy memo
	// makes re-migrating the group cubes and the (usually unchanged)
	// `within` set near-free. The memo is flushed when the persistent
	// manager collects (Ref reuse would poison it); the manager itself is
	// dropped and rebuilt when the scratch store outgrows its watermark.
	// nil until first use and under SetReferenceFixpoints, which restores
	// the per-call throwaway scheme.
	sccScratch *scratchMgr

	nextBits float64 // number of next-state bit levels (for state counting)

	sccAlg    SCCAlgorithm
	compactAt int  // node threshold for Compact (0 = default)
	fused     bool // use the fused AndExists image instead of the two-step default
	refFix    bool // use the full-recompute fixpoint oracle (no dropping/frontier)
	refRanks  bool // persistent-manager ranking/recovery images + whole-set rank BFS (oracle)
	workers   int  // scratch-manager fan-out for SCC enumeration (0/1 = sequential)
	reorder   bool // sift the scratch-manager variable order at SCC safe points
	grain     int  // spawn threshold override (0 = spawnGrain default)

	// reorderMap/reorderInv cache the sifted scratch order translation
	// (persistent level ↔ scratch level), computed lazily from the
	// per-process read supports.
	reorderMap []int
	reorderInv []int

	ctx context.Context // current synthesis context (nil = no cancellation)

	stats core.Stats
}

// SetContext makes the SCC fixpoints observe ctx: once it is cancelled they
// stop early and return partial results. The caller (core.AddConvergence)
// re-checks the context and discards them.
func (e *Engine) SetContext(ctx context.Context) { e.ctx = ctx }

// canceled reports whether the current synthesis context is cancelled.
func (e *Engine) canceled() bool { return e.ctx != nil && e.ctx.Err() != nil }

// SCCAlgorithm selects the symbolic SCC-enumeration algorithm.
type SCCAlgorithm int

const (
	// Skeleton is the Gentilini-Piazza-Policriti algorithm the paper cites
	// (forward sets with spine-set skeletons); the default.
	Skeleton SCCAlgorithm = iota
	// Lockstep is the Bloem-Gabow-Somenzi algorithm (simultaneous forward
	// and backward growth from a seed, stopping at the first to converge).
	Lockstep
)

// SetSCCAlgorithm selects the SCC enumeration algorithm (default Skeleton).
func (e *Engine) SetSCCAlgorithm(a SCCAlgorithm) { e.sccAlg = a }

// SetFusedImage toggles the fused relational-product image (AndExists):
// the X ∧ src conjunction is quantified inside a single traversal instead
// of being materialized first. Off by default — for this engine's narrow
// per-group images the two-step path measures faster, because its And and
// Exists intermediates hit the shared operation caches across groups and
// fixpoint iterations while each fused call keys a private AndExists
// entry. Synthesis results are identical either way; the knob exists so
// differential tests can pin that, and for workloads with wide relations
// where fusion's avoided intermediate does pay.
func (e *Engine) SetFusedImage(fused bool) { e.fused = fused }

// SetParallelism farms the per-SCC skeleton fixpoints of CyclicSCCs
// across n workers, each with its own scratch manager (0 and 1 mean
// sequential — the oracle the parallel path is tested against). The
// lockstep algorithm is always sequential. Decomposition is structural,
// so synthesized protocols are byte-identical for every worker count.
func (e *Engine) SetParallelism(n int) { e.workers = n }

// Workers reports the configured SCC parallelism.
func (e *Engine) Workers() int { return e.workers }

// SetSpawnGrain overrides the minimum subproblem size (DagSize of its
// state set) at which the parallel decomposition hands work to another
// scratch manager. Zero restores the default; tests lower it to force
// spawning on small instances.
func (e *Engine) SetSpawnGrain(n int) { e.grain = n }

// spawnThreshold is the effective grain for parallel spawn decisions.
func (e *Engine) spawnThreshold() int {
	if e.grain > 0 {
		return e.grain
	}
	return spawnGrain
}

// SetReferenceFixpoints restores the pre-tuning scheme of cycle
// detection: full-image recomputation in the trim loops (no dead-group
// dropping), whole-set preimages in the skeleton's SCC grow loop (no
// frontier), and a private throwaway scratch manager per CyclicSCCs call
// (no retained warm operation cache or copy memo). The default path is
// observationally identical — the knob-matrix differential tests pin
// that — and exists as the benchmark baseline and oracle, exactly like
// the explicit engine's SetReferenceKernels.
func (e *Engine) SetReferenceFixpoints(on bool) { e.refFix = on }

// SetDynamicReorder enables sifting-style reordering of the scratch
// variable order at the CyclicSCCs safe points: cycle detection runs under
// an order chosen to minimize the spread of each group's read support, and
// results are translated back to the persistent order. The persistent
// manager is never reordered — Ref stability for retained sets forbids it.
func (e *Engine) SetDynamicReorder(on bool) { e.reorder = on }

var _ core.Engine = (*Engine)(nil)
var _ core.ContextAware = (*Engine)(nil)
var _ core.RefRegistry = (*Engine)(nil)
var _ core.SpaceReporter = (*Engine)(nil)

// New builds a symbolic engine for sp.
//
// Every BDD the engine itself holds beyond one call — the valid-state and
// invariant predicates, the compiler's value cubes, and each group's cubes —
// is registered as a garbage-collection root with Keep at its store site;
// everything else is fair game for the manager's mark-and-sweep collector,
// which runs at the safe points inside CyclicSCCs and Compact once the
// live-node watermark (SetCompactionThreshold) is reached.
func New(sp *protocol.Spec) (*Engine, error) {
	return NewWithOrder(sp, DefaultVarOrder(sp))
}

// NewWithOrder builds a symbolic engine whose variables are laid out in
// the given order — any permutation of the spec's variable IDs. Synthesis
// output is independent of the order (FuzzReorderEquivalence pins this);
// only time and node counts change. New uses DefaultVarOrder.
func NewWithOrder(sp *protocol.Spec, order []int) (*Engine, error) {
	if err := sp.Validate(); err != nil {
		return nil, err
	}
	if err := validOrder(sp, order); err != nil {
		return nil, err
	}
	l := newLayoutOrdered(sp, order)
	m := bdd.New(2 * l.total)
	cmp := newCompiler(l, m)
	e := &Engine{
		sp: sp, l: l, m: m, cmp: cmp,
		valid:    m.Keep(cmp.valid()),
		byKey:    make(map[protocol.Key]*group),
		nextBits: float64(l.total),
	}
	e.inv = m.Keep(m.And(cmp.boolExpr(sp.Invariant), e.valid))
	for pi := range sp.Procs {
		for _, pg := range sp.ActionGroups(pi) {
			e.actions = append(e.actions, e.intern(pg))
		}
		for _, pg := range sp.CandidateGroups(pi) {
			e.candidates = append(e.candidates, e.intern(pg))
		}
	}
	m.SetGCWatermark(DefaultCompactionThreshold)
	return e, nil
}

// Manager exposes the underlying BDD manager (for space metrics).
func (e *Engine) Manager() *bdd.Manager { return e.m }

func (e *Engine) intern(pg protocol.Group) *group {
	if g, ok := e.byKey[pg.Key()]; ok {
		return g
	}
	p := &e.sp.Procs[pg.Proc]
	var readLits, writeLits []bdd.Literal
	var writeVarLevels []int
	for i, id := range p.Reads {
		readLits = append(readLits, e.l.valueLits(id, pg.ReadVals[i], false)...)
	}
	for i, id := range p.Writes {
		writeLits = append(writeLits, e.l.valueLits(id, pg.WriteVals[i], false)...)
		for b := 0; b < e.l.bitsOf[id]; b++ {
			writeVarLevels = append(writeVarLevels, e.l.curLevel(id, b))
		}
	}
	g := &group{
		pg:        pg,
		src:       e.m.Keep(e.m.And(e.m.LiteralCube(readLits), e.valid)),
		writeCube: e.m.Keep(e.m.LiteralCube(writeLits)),
		writeVars: e.m.Keep(e.m.Cube(writeVarLevels)),
	}
	e.byKey[pg.Key()] = g
	return g
}

// preGroup returns src ∧ X[written := new values].
func (e *Engine) preGroup(g *group, x bdd.Ref) bdd.Ref {
	return e.m.And(g.src, e.m.Restrict(x, g.writeCube))
}

// postGroup returns the successors of the sources of g inside X.
// SetFusedImage(true) fuses the conjunction with the quantification
// (AndExists) so the X ∧ src intermediate is never materialized; the
// default two-step path measures faster here because its intermediates
// share the And/Exists caches (see SetFusedImage).
func (e *Engine) postGroup(g *group, x bdd.Ref) bdd.Ref {
	if e.fused {
		up := e.m.AndExists(x, g.src, g.writeVars)
		if up == bdd.False {
			return bdd.False
		}
		return e.m.And(up, g.writeCube)
	}
	srcs := e.m.And(x, g.src)
	if srcs == bdd.False {
		return bdd.False
	}
	return e.m.And(e.m.Exists(srcs, g.writeVars), g.writeCube)
}

// --- core.Engine implementation -----------------------------------------

func (e *Engine) Spec() *protocol.Spec { return e.sp }
func (e *Engine) Universe() core.Set   { return e.valid }
func (e *Engine) Empty() core.Set      { return bdd.False }
func (e *Engine) Invariant() core.Set  { return e.inv }

func (e *Engine) Or(a, b core.Set) core.Set   { return e.m.Or(a.(bdd.Ref), b.(bdd.Ref)) }
func (e *Engine) And(a, b core.Set) core.Set  { return e.m.And(a.(bdd.Ref), b.(bdd.Ref)) }
func (e *Engine) Diff(a, b core.Set) core.Set { return e.m.Diff(a.(bdd.Ref), b.(bdd.Ref)) }
func (e *Engine) Not(a core.Set) core.Set     { return e.m.Diff(e.valid, a.(bdd.Ref)) }
func (e *Engine) IsEmpty(a core.Set) bool     { return a.(bdd.Ref) == bdd.False }
func (e *Engine) Equal(a, b core.Set) bool    { return a.(bdd.Ref) == b.(bdd.Ref) }

func (e *Engine) States(a core.Set) float64 {
	return e.m.SatCount(a.(bdd.Ref)) / math.Pow(2, e.nextBits)
}

func (e *Engine) SetSize(a core.Set) int { return e.m.DagSize(a.(bdd.Ref)) }

func (e *Engine) ActionGroups() []core.Group    { return append([]core.Group(nil), e.actions...) }
func (e *Engine) CandidateGroups() []core.Group { return append([]core.Group(nil), e.candidates...) }

func (e *Engine) GroupSrc(g core.Group) core.Set { return g.(*group).src }

// GroupSrcIntersects implements core.SrcIntersecter: one conjunction
// against the interned source set, no extra refs to manage.
func (e *Engine) GroupSrcIntersects(g core.Group, X core.Set) bool {
	return e.m.And(g.(*group).src, X.(bdd.Ref)) != bdd.False
}

func (e *Engine) GroupDstInto(g core.Group, X core.Set) bool {
	if e.refRanks {
		return e.preGroup(g.(*group), X.(bdd.Ref)) != bdd.False
	}
	c := e.imgCtx()
	return c.groupPreScratch(g.(*group), c.copyIn(X.(bdd.Ref), c.memo)) != bdd.False
}

func (e *Engine) GroupFromTo(g core.Group, from, to core.Set) bool {
	gg := g.(*group)
	if e.refRanks {
		return e.m.And(from.(bdd.Ref), e.preGroup(gg, to.(bdd.Ref))) != bdd.False
	}
	c := e.imgCtx()
	pre := c.groupPreScratch(gg, c.copyIn(to.(bdd.Ref), c.memo))
	if pre == bdd.False {
		return false
	}
	return c.m.And(c.copyIn(from.(bdd.Ref), c.memo), pre) != bdd.False
}

func (e *Engine) GroupWithin(g core.Group, X core.Set) bool {
	return e.GroupFromTo(g, X, X)
}

func (e *Engine) Pre(gs []core.Group, X core.Set) core.Set {
	x := X.(bdd.Ref)
	if e.refRanks {
		// Reference scheme: the linear persistent-manager fold, kept
		// byte-for-byte as the PR-6 baseline the bench compares against.
		out := bdd.False
		for _, g := range gs {
			out = e.m.Or(out, e.preGroup(g.(*group), x))
		}
		return out
	}
	return e.preScratch(gs, x)
}

func (e *Engine) Post(gs []core.Group, X core.Set) core.Set {
	x := X.(bdd.Ref)
	out := bdd.False
	for _, g := range gs {
		out = e.m.Or(out, e.postGroup(g.(*group), x))
	}
	return out
}

func (e *Engine) EnabledSources(gs []core.Group) core.Set {
	out := bdd.False
	for _, g := range gs {
		out = e.m.Or(out, g.(*group).src)
	}
	return out
}

func (e *Engine) PickState(a core.Set) (protocol.State, bool) {
	cube := e.m.PickCube(a.(bdd.Ref))
	if cube == nil {
		return nil, false
	}
	s := make(protocol.State, len(e.sp.Vars))
	for id := range e.sp.Vars {
		n := e.l.bitsOf[id]
		v := 0
		for b := 0; b < n; b++ {
			v <<= 1
			if cube[e.l.curLevel(id, b)] == 1 {
				v |= 1
			}
		}
		s[id] = v
	}
	return s, true
}

func (e *Engine) Singleton(s protocol.State) core.Set {
	var lits []bdd.Literal
	for id, val := range s {
		lits = append(lits, e.l.valueLits(id, val, false)...)
	}
	return e.m.LiteralCube(lits)
}

// ProgramSize returns the number of nodes of the shared multi-rooted BDD
// holding one faithful transition relation per group (current and
// next-state bits interleaved, unchanged variables constrained equal) —
// the paper's "total program size" metric.
func (e *Engine) ProgramSize(gs []core.Group) int {
	roots := make([]bdd.Ref, 0, len(gs))
	for _, g := range gs {
		roots = append(roots, e.relation(g.(*group)))
	}
	return e.m.SharedDagSize(roots)
}

// relation builds (and caches) the group's transition relation.
func (e *Engine) relation(g *group) bdd.Ref {
	if g.rel != bdd.False {
		return g.rel
	}
	p := &e.sp.Procs[g.pg.Proc]
	written := make(map[int]bool, len(p.Writes))
	var lits []bdd.Literal
	for i, id := range p.Reads {
		lits = append(lits, e.l.valueLits(id, g.pg.ReadVals[i], false)...)
	}
	for i, id := range p.Writes {
		written[id] = true
		lits = append(lits, e.l.valueLits(id, g.pg.WriteVals[i], true)...)
	}
	rel := e.m.LiteralCube(lits)
	// Unwritten variables keep their values: conjoin bitwise equalities,
	// bottom-up to keep intermediate BDDs small.
	for id := len(e.sp.Vars) - 1; id >= 0; id-- {
		if written[id] {
			continue
		}
		for b := e.l.bitsOf[id] - 1; b >= 0; b-- {
			cur := e.m.Var(e.l.curLevel(id, b))
			nxt := e.m.Var(e.l.nextLevel(id, b))
			rel = e.m.And(rel, e.m.Not(e.m.Xor(cur, nxt)))
		}
	}
	g.rel = e.m.Keep(e.m.And(rel, e.valid))
	return g.rel
}

func (e *Engine) Stats() *core.Stats { return &e.stats }

// Retain implements core.RefRegistry: the set becomes a garbage-collection
// root until a matching Release. Set identities are stable across
// collections, so the same value is returned.
func (e *Engine) Retain(a core.Set) core.Set {
	return e.m.Keep(a.(bdd.Ref))
}

// Release implements core.RefRegistry.
func (e *Engine) Release(a core.Set) { e.m.Release(a.(bdd.Ref)) }

// foldScratchStats accumulates a dropped scratch manager's counters so
// SpaceStats reflects the whole engine, not just the persistent store.
func (e *Engine) foldScratchStats(m *bdd.Manager) {
	st := m.Stats()
	e.scratch.ops += st.Ops
	e.scratch.hits += st.CacheHits
	e.scratch.misses += st.CacheMisses
	e.scratch.evicts += st.CacheEvictions
	e.scratch.dropped += uint64(st.PeakLiveNodes)
	if st.PeakLiveNodes > e.scratch.peak {
		e.scratch.peak = st.PeakLiveNodes
	}
}

// SpaceStats implements core.SpaceReporter. Node-store occupancy figures
// (live, allocated, table load) describe the persistent manager; the cache
// counters include the scratch managers used for cycle detection; peak is
// the largest live-node count any manager reached; GCReclaimed counts
// mark-and-sweep reclamation on the persistent store plus nodes dropped
// wholesale with scratch managers.
func (e *Engine) SpaceStats() core.SpaceStats {
	st := e.m.Stats()
	hits := st.CacheHits + e.scratch.hits
	misses := st.CacheMisses + e.scratch.misses
	rate := 0.0
	if hits+misses > 0 {
		rate = float64(hits) / float64(hits+misses)
	}
	peak := st.PeakLiveNodes
	if e.scratch.peak > peak {
		peak = e.scratch.peak
	}
	return core.SpaceStats{
		LiveNodes:       st.LiveNodes,
		PeakLiveNodes:   peak,
		AllocatedSlots:  st.AllocatedSlots,
		UniqueTableLoad: st.UniqueTableLoad,
		CacheSize:       st.CacheSize,
		CacheHits:       hits,
		CacheMisses:     misses,
		CacheEvictions:  st.CacheEvictions + e.scratch.evicts,
		CacheHitRate:    rate,
		GCRuns:          st.GCRuns,
		GCReclaimed:     st.GCReclaimed + e.scratch.dropped,
	}
}
