package symbolic_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
)

// ExportSet/ImportSet must round-trip a set between two engines for the
// same spec and variable order, agree on cardinality, and fail closed
// across engines built with different orders (the fingerprint names the
// layout, so a snapshot can never decode into the wrong function).
func TestSetExporterRoundTripAndFingerprint(t *testing.T) {
	sp := protocols.GoudaAcharyaMatching(4)

	src, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	inv := src.Invariant()
	words := src.ExportSet(inv)
	if len(words) < 2 {
		t.Fatalf("export of a non-trivial set has %d words", len(words))
	}

	// Same-engine import: identical canonical node.
	back, ok := src.ImportSet(words)
	if !ok {
		t.Fatal("engine rejected its own snapshot")
	}
	if !src.Equal(inv, back) {
		t.Error("round trip through the same engine changed the set")
	}

	// Fresh engine, same default order: same states.
	dst, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	got, ok := dst.ImportSet(words)
	if !ok {
		t.Fatal("fresh engine with the same order rejected the snapshot")
	}
	if dst.States(got) != src.States(inv) {
		t.Errorf("imported set has %v states, want %v", dst.States(got), src.States(inv))
	}

	// Engine under a different variable order: fingerprint mismatch, so the
	// import must be refused rather than silently decode garbage.
	order := symbolic.DefaultVarOrder(sp)
	for i, j := 0, len(order)-1; i < j; i, j = i+1, j-1 {
		order[i], order[j] = order[j], order[i]
	}
	rev, err := symbolic.NewWithOrder(sp, order)
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := rev.ImportSet(words); ok {
		t.Error("engine with a different variable order accepted a foreign snapshot")
	}

	// Malformed inputs fail closed too.
	if _, ok := src.ImportSet(nil); ok {
		t.Error("empty snapshot accepted")
	}
	if _, ok := src.ImportSet(words[:1]); ok {
		t.Error("fingerprint-only snapshot accepted")
	}

	// The exporter is what the cross-schedule memo stores; make sure the
	// interface assertion the service relies on holds.
	var _ core.SetExporter = src
}
