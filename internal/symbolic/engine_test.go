package symbolic_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

func newPair(t *testing.T, sp *protocol.Spec) (*symbolic.Engine, *explicit.Engine) {
	t.Helper()
	se, err := symbolic.New(sp)
	if err != nil {
		t.Fatal(err)
	}
	ee, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	return se, ee
}

// sameSet compares a symbolic and an explicit set by membership over the
// whole (small) state space.
func sameSet(t *testing.T, se *symbolic.Engine, ss core.Set, ee *explicit.Engine, es core.Set, what string) {
	t.Helper()
	sp := se.Spec()
	ix := protocol.NewIndexer(sp)
	s := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		inSym := !se.IsEmpty(se.And(ss, se.Singleton(s)))
		inExp := !ee.IsEmpty(ee.And(es, ee.Singleton(s)))
		if inSym != inExp {
			t.Fatalf("%s: engines disagree at %v (symbolic=%v explicit=%v)", what, s, inSym, inExp)
		}
	}
}

func TestBasicSetsAgree(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(4),
		protocols.Coloring(4),
		protocols.GoudaAcharyaMatching(4),
	} {
		se, ee := newPair(t, sp)
		if su, eu := se.States(se.Universe()), ee.States(ee.Universe()); su != eu {
			t.Fatalf("%s: universe %v vs %v", sp.Name, su, eu)
		}
		if si, ei := se.States(se.Invariant()), ee.States(ee.Invariant()); si != ei {
			t.Fatalf("%s: invariant %v vs %v", sp.Name, si, ei)
		}
		sameSet(t, se, se.Invariant(), ee, ee.Invariant(), sp.Name+" invariant")
		sameSet(t, se, se.Not(se.Invariant()), ee, ee.Not(ee.Invariant()), sp.Name+" ¬invariant")
	}
}

func TestGroupsAgree(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	se, ee := newPair(t, sp)
	sgs, egs := se.ActionGroups(), ee.ActionGroups()
	if len(sgs) != len(egs) {
		t.Fatalf("action groups: %d vs %d", len(sgs), len(egs))
	}
	for i := range sgs {
		if sgs[i].ProtocolGroup().Key() != egs[i].ProtocolGroup().Key() {
			t.Fatalf("group order differs at %d", i)
		}
		sameSet(t, se, se.GroupSrc(sgs[i]), ee, ee.GroupSrc(egs[i]), "group src")
	}
	if len(se.CandidateGroups()) != len(ee.CandidateGroups()) {
		t.Fatal("candidate group counts differ")
	}
}

func TestImageOpsAgree(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.GoudaAcharyaMatching(4),
		protocols.TokenRing(3, 4),
	} {
		se, ee := newPair(t, sp)
		sgs, egs := se.ActionGroups(), ee.ActionGroups()
		for _, tc := range []struct {
			sset core.Set
			eset core.Set
			name string
		}{
			{se.Invariant(), ee.Invariant(), "I"},
			{se.Not(se.Invariant()), ee.Not(ee.Invariant()), "¬I"},
			{se.Universe(), ee.Universe(), "U"},
		} {
			sameSet(t, se, se.Pre(sgs, tc.sset), ee, ee.Pre(egs, tc.eset), sp.Name+" Pre "+tc.name)
			sameSet(t, se, se.Post(sgs, tc.sset), ee, ee.Post(egs, tc.eset), sp.Name+" Post "+tc.name)
		}
		sameSet(t, se, se.EnabledSources(sgs), ee, ee.EnabledSources(egs), sp.Name+" enabled")
		sameSet(t, se, core.Deadlocks(se, sgs), ee, core.Deadlocks(ee, egs), sp.Name+" deadlocks")
	}
}

func TestGroupPredicatesAgree(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	se, ee := newPair(t, sp)
	sI, eI := se.Invariant(), ee.Invariant()
	snI, enI := se.Not(sI), ee.Not(eI)
	sgs, egs := se.CandidateGroups(), ee.CandidateGroups()
	for i := range sgs {
		if got, want := se.GroupFromTo(sgs[i], snI, sI), ee.GroupFromTo(egs[i], enI, eI); got != want {
			t.Fatalf("GroupFromTo disagrees on %v", sgs[i].ProtocolGroup())
		}
		if got, want := se.GroupDstInto(sgs[i], sI), ee.GroupDstInto(egs[i], eI); got != want {
			t.Fatalf("GroupDstInto disagrees on %v", sgs[i].ProtocolGroup())
		}
		if got, want := se.GroupWithin(sgs[i], snI), ee.GroupWithin(egs[i], enI); got != want {
			t.Fatalf("GroupWithin disagrees on %v", sgs[i].ProtocolGroup())
		}
	}
}

func TestRanksAgree(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(4),
		protocols.Coloring(4),
	} {
		se, ee := newPair(t, sp)
		spim := core.Pim(se, se.ActionGroups())
		epim := core.Pim(ee, ee.ActionGroups())
		sranks, sinf := core.ComputeRanks(se, spim)
		eranks, einf := core.ComputeRanks(ee, epim)
		if len(sranks) != len(eranks) {
			t.Fatalf("%s: M %d vs %d", sp.Name, len(sranks)-1, len(eranks)-1)
		}
		for i := range sranks {
			sameSet(t, se, sranks[i], ee, eranks[i], sp.Name+" rank")
		}
		if se.IsEmpty(sinf) != ee.IsEmpty(einf) {
			t.Fatalf("%s: infinite-rank disagreement", sp.Name)
		}
	}
}

func TestCyclicSCCsAgree(t *testing.T) {
	// The Gouda-Acharya protocol has real cycles outside I — the hard case.
	for _, sp := range []*protocol.Spec{
		protocols.GoudaAcharyaMatching(4),
		protocols.GoudaAcharyaMatching(5),
		protocols.DijkstraTokenRing(4, 3), // cycles only inside I
	} {
		se, ee := newPair(t, sp)
		snI := se.Not(se.Invariant())
		enI := ee.Not(ee.Invariant())
		ssccs := se.CyclicSCCs(se.ActionGroups(), snI)
		esccs := ee.CyclicSCCs(ee.ActionGroups(), enI)
		if len(ssccs) != len(esccs) {
			t.Fatalf("%s: %d vs %d SCCs", sp.Name, len(ssccs), len(esccs))
		}
		// The union of SCC states must agree (per-SCC order may differ).
		sunion, eunion := se.Empty(), ee.Empty()
		for _, s := range ssccs {
			sunion = se.Or(sunion, s)
		}
		for _, s := range esccs {
			eunion = ee.Or(eunion, s)
		}
		sameSet(t, se, sunion, ee, eunion, sp.Name+" SCC union")
		// And each symbolic SCC must equal some explicit SCC.
		for _, s := range ssccs {
			matched := false
			for _, x := range esccs {
				if se.States(s) == ee.States(x) {
					st, _ := se.PickState(s)
					if !ee.IsEmpty(ee.And(x, ee.Singleton(st))) {
						matched = true
						break
					}
				}
			}
			if !matched {
				t.Fatalf("%s: symbolic SCC without explicit counterpart", sp.Name)
			}
		}
	}
}

// TestSynthesisAgrees is the strongest differential test: the heuristic is
// deterministic given engine answers, so both engines must synthesize the
// identical protocol.
func TestSynthesisAgrees(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.TokenRing(4, 3),
		protocols.Matching(5),
		protocols.Coloring(5),
		protocols.TokenRing(3, 4),
	} {
		se, ee := newPair(t, sp)
		sres, serr := core.AddConvergence(se, core.Options{})
		eres, eerr := core.AddConvergence(ee, core.Options{})
		if (serr == nil) != (eerr == nil) {
			t.Fatalf("%s: symbolic err %v, explicit err %v", sp.Name, serr, eerr)
		}
		if serr != nil {
			continue
		}
		if sres.PassCompleted != eres.PassCompleted {
			t.Errorf("%s: pass %d vs %d", sp.Name, sres.PassCompleted, eres.PassCompleted)
		}
		skeys := make(map[protocol.Key]bool)
		for _, g := range sres.Protocol {
			skeys[g.ProtocolGroup().Key()] = true
		}
		if len(skeys) != len(eres.Protocol) {
			t.Fatalf("%s: %d vs %d groups", sp.Name, len(skeys), len(eres.Protocol))
		}
		for _, g := range eres.Protocol {
			if !skeys[g.ProtocolGroup().Key()] {
				t.Fatalf("%s: explicit group %v missing from symbolic result",
					sp.Name, g.ProtocolGroup())
			}
		}
		// The synthesized protocol verifies on the symbolic engine too.
		if v := verify.StronglyStabilizing(se, sres.Protocol); !v.OK {
			t.Errorf("%s: symbolic verification failed: %s", sp.Name, v.Reason)
		}
	}
}

// TestLockstepAgreesWithSkeleton checks the two symbolic SCC enumeration
// algorithms find identical components, and that synthesis is unaffected by
// the choice.
func TestLockstepAgreesWithSkeleton(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.GoudaAcharyaMatching(4),
		protocols.GoudaAcharyaMatching(5),
		protocols.DijkstraTokenRing(4, 3),
	} {
		skel, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		lock, err := symbolic.New(sp)
		if err != nil {
			t.Fatal(err)
		}
		lock.SetSCCAlgorithm(symbolic.Lockstep)

		a := skel.CyclicSCCs(skel.ActionGroups(), skel.Not(skel.Invariant()))
		b := lock.CyclicSCCs(lock.ActionGroups(), lock.Not(lock.Invariant()))
		if len(a) != len(b) {
			t.Fatalf("%s: %d vs %d SCCs", sp.Name, len(a), len(b))
		}
		// Each skeleton SCC must appear among the lockstep SCCs.
		for _, x := range a {
			st, _ := skel.PickState(x)
			found := false
			for _, y := range b {
				if lock.States(y) == skel.States(x) &&
					!lock.IsEmpty(lock.And(y, lock.Singleton(st))) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%s: SCC mismatch between algorithms", sp.Name)
			}
		}
	}
	// Synthesis end-to-end under lockstep must match skeleton.
	sSkel, err := symbolic.New(protocols.Matching(5))
	if err != nil {
		t.Fatal(err)
	}
	sLock, err := symbolic.New(protocols.Matching(5))
	if err != nil {
		t.Fatal(err)
	}
	sLock.SetSCCAlgorithm(symbolic.Lockstep)
	r1, err1 := core.AddConvergence(sSkel, core.Options{})
	r2, err2 := core.AddConvergence(sLock, core.Options{})
	if err1 != nil || err2 != nil {
		t.Fatalf("errors: %v / %v", err1, err2)
	}
	k1 := make(map[protocol.Key]bool)
	for _, g := range r1.Protocol {
		k1[g.ProtocolGroup().Key()] = true
	}
	if len(k1) != len(r2.Protocol) {
		t.Fatalf("group counts differ: %d vs %d", len(k1), len(r2.Protocol))
	}
	for _, g := range r2.Protocol {
		if !k1[g.ProtocolGroup().Key()] {
			t.Fatal("synthesis differs between SCC algorithms")
		}
	}
	if v := verify.StronglyStabilizing(sLock, r2.Protocol); !v.OK {
		t.Fatalf("lockstep result not stabilizing: %s", v.Reason)
	}
}

// TestSymbolicScalesBeyondExplicitTests runs a coloring instance large
// enough to be annoying for the explicit engine in unit-test time.
func TestSymbolicScalesColoring(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 15-process coloring in -short mode")
	}
	se, err := symbolic.New(protocols.Coloring(15))
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(se, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.StronglyStabilizing(se, res.Protocol); !v.OK {
		t.Fatalf("coloring-15 not strongly stabilizing: %s", v.Reason)
	}
	if res.ProgramSize <= 0 {
		t.Error("ProgramSize not reported")
	}
}

func TestPickStateAndSingleton(t *testing.T) {
	se, _ := newPair(t, protocols.TokenRing(4, 3))
	st, ok := se.PickState(se.Invariant())
	if !ok {
		t.Fatal("PickState failed on invariant")
	}
	if !se.Spec().Invariant.EvalBool(st) {
		t.Fatalf("picked state %v not legitimate", st)
	}
	single := se.Singleton(st)
	if se.States(single) != 1 {
		t.Fatalf("singleton has %v states", se.States(single))
	}
	if se.IsEmpty(se.And(single, se.Invariant())) {
		t.Fatal("singleton not inside invariant")
	}
	if _, ok := se.PickState(se.Empty()); ok {
		t.Fatal("PickState on empty set should fail")
	}
}

func TestSetSizeAndProgramSize(t *testing.T) {
	se, _ := newPair(t, protocols.TokenRing(4, 3))
	if se.SetSize(se.Invariant()) < 3 {
		t.Error("invariant BDD suspiciously small")
	}
	n := se.ProgramSize(se.ActionGroups())
	if n <= 0 {
		t.Fatal("ProgramSize must be positive")
	}
	// Shared: total size ≤ sum of individual relation sizes.
	sum := 0
	for _, g := range se.ActionGroups() {
		sum += se.ProgramSize([]core.Group{g})
	}
	if n > sum {
		t.Errorf("shared size %d exceeds sum of parts %d", n, sum)
	}
}
