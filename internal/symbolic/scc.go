package symbolic

import (
	"time"

	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

// sccCtx runs cycle detection inside a throwaway scratch manager: the trim
// and enumeration fixpoints generate enormous amounts of garbage, and a
// fresh manager keeps the working node store and operation cache compact
// and cache-resident (refs copied in are renumbered densely). Inputs are
// migrated in, the (small) resulting SCC predicates are migrated back, and
// the scratch manager is dropped wholesale — the coarsest possible
// collection. The main manager's mark-and-sweep collector complements
// this: it reclaims garbage that accumulates on the persistent store
// across calls, and CyclicSCCs' entry is one of its safe points.
type sccCtx struct {
	e     *Engine
	m     *bdd.Manager
	src   []bdd.Ref // per group: source states
	wcube []bdd.Ref // per group: written-values literal cube
	wvars []bdd.Ref // per group: positive cube of written bit levels
}

// CyclicSCCs returns the non-trivial strongly connected components of the
// union of gs restricted to states in within.
//
// It first trims `within` to its cycle core — the greatest set in which
// every state lies on an infinite forward and backward path (states not in
// the core cannot lie on any cycle) — and then enumerates the core's SCCs,
// by default with the skeleton-based symbolic algorithm of Gentilini,
// Piazza and Policriti which the paper's STSyn implementation uses
// (SetSCCAlgorithm(Lockstep) switches to Bloem-Gabow-Somenzi lockstep
// search). Trimming first is essential: without it the enumeration would
// visit one trivial SCC per acyclic state.
//
// The call's entry is a collection safe point for the main manager: sets
// not pinned via Retain (or handed out by the previous CyclicSCCs call,
// which stay valid until this one) may be reclaimed here. The returned
// components live on the main manager and are kept as collection roots
// until the next CyclicSCCs call releases them.
func (e *Engine) CyclicSCCs(gs []core.Group, within core.Set) []core.Set {
	t0 := time.Now() //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
	defer func() {
		e.stats.SCCTime += time.Since(t0) //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
		e.stats.SCCCalls++
	}()

	// Components handed out by the previous call expire now.
	for _, s := range e.sccs {
		e.m.Release(s)
	}
	e.sccs = e.sccs[:0]

	// Safe point: `within` must survive the collection, so pin it first
	// (group cubes are kept permanently by the engine's interning).
	w := e.m.Keep(within.(bdd.Ref))
	defer e.m.Release(w)
	e.m.MaybeGC()

	ctx := &sccCtx{e: e, m: bdd.New(e.m.NumVars())}
	defer e.foldScratchStats(ctx.m)
	memo := make(map[bdd.Ref]bdd.Ref)
	for _, g := range gs {
		gg := g.(*group)
		ctx.src = append(ctx.src, ctx.m.CopyFrom(e.m, gg.src, memo))           //lint:ignore bddref scratch manager: dropped wholesale, never GCs
		ctx.wcube = append(ctx.wcube, ctx.m.CopyFrom(e.m, gg.writeCube, memo)) //lint:ignore bddref scratch manager: dropped wholesale, never GCs
		ctx.wvars = append(ctx.wvars, ctx.m.CopyFrom(e.m, gg.writeVars, memo)) //lint:ignore bddref scratch manager: dropped wholesale, never GCs
	}
	c := ctx.m.CopyFrom(e.m, w, memo)

	// Forward trim with early exit: the greatest C with "every state has a
	// successor in C". Empty ⇔ the graph restricted to within is acyclic —
	// the common case while the heuristic is doing its job. Every fixpoint
	// below is a cancellation point: one iteration is a full symbolic image,
	// so checking the context per iteration is cheap, and on cancellation
	// partial results are returned for the caller to discard.
	for {
		next := ctx.m.And(c, ctx.pre(c))
		if next == c || e.canceled() {
			break
		}
		c = next
	}
	if c == bdd.False || e.canceled() {
		return nil
	}
	// Backward trim as well (both fixpoints interleaved to convergence).
	for {
		next := ctx.m.And(c, ctx.m.And(ctx.pre(c), ctx.post(c)))
		if next == c || e.canceled() {
			break
		}
		c = next
	}

	backMemo := make(map[bdd.Ref]bdd.Ref)
	emit := func(scc bdd.Ref) {
		if !ctx.hasInternalTransition(scc) {
			return
		}
		back := e.m.CopyFrom(ctx.m, scc, backMemo)
		e.sccs = append(e.sccs, e.m.Keep(back))
		e.stats.SCCCount++
		e.stats.SCCSizeTotal += e.m.DagSize(back)
	}
	if e.sccAlg == Lockstep {
		ctx.lockstepEnum(c, emit)
	} else {
		ctx.skeletonEnum(c, emit)
	}
	out := make([]core.Set, len(e.sccs))
	for i, s := range e.sccs {
		out[i] = s
	}
	return out
}

// skeletonEnum enumerates the SCCs of the subgraph induced by c with the
// Gentilini-Piazza-Policriti skeleton algorithm (iterative; spine-sets
// bound the number of symbolic steps, correctness needs only single-state
// seeds).
func (c *sccCtx) skeletonEnum(v0 bdd.Ref, emit func(bdd.Ref)) {
	type task struct{ v, s, n bdd.Ref }
	stack := []task{{v: v0, s: bdd.False, n: bdd.False}}
	for len(stack) > 0 {
		if c.e.canceled() {
			return
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.v == bdd.False {
			continue
		}
		n, s := t.n, t.s
		if n == bdd.False {
			n = c.pickSingleton(t.v)
			s = n
		}
		fw, s2, n2 := c.skelForward(t.v, n)
		// SCC(n) = states of FW that reach n: grow backwards inside FW.
		scc := n
		for {
			grow := c.m.Diff(c.m.And(c.pre(scc), fw), scc)
			if grow == bdd.False {
				break
			}
			scc = c.m.Or(scc, grow)
		}
		emit(scc)
		// Remainder outside the forward set, spined by the predecessor of
		// the SCC along the old spine.
		s1 := c.m.Diff(s, scc)
		n1 := c.m.And(c.pre(c.m.And(scc, s)), s1)
		if n1 != bdd.False {
			n1 = c.pickSingleton(n1)
		} else {
			s1 = bdd.False
		}
		stack = append(stack, task{v: c.m.Diff(t.v, fw), s: s1, n: n1})
		// Remainder inside the forward set, spined by the skeleton suffix.
		s2 = c.m.Diff(s2, scc)
		n2 = c.m.Diff(n2, scc)
		if n2 == bdd.False {
			s2 = bdd.False
		}
		stack = append(stack, task{v: c.m.Diff(fw, scc), s: s2, n: n2})
	}
}

// lockstepEnum enumerates SCCs with the Bloem-Gabow-Somenzi lockstep
// algorithm: grow the forward and backward sets of a seed simultaneously;
// when one converges, finish the other inside it; their intersection is
// the seed's SCC.
func (c *sccCtx) lockstepEnum(v0 bdd.Ref, emit func(bdd.Ref)) {
	stack := []bdd.Ref{v0}
	for len(stack) > 0 {
		if c.e.canceled() {
			return
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == bdd.False {
			continue
		}
		seed := c.pickSingleton(v)
		f, b := seed, seed
		ffront, bfront := seed, seed
		for ffront != bdd.False && bfront != bdd.False {
			ffront = c.m.Diff(c.m.And(c.post(ffront), v), f)
			f = c.m.Or(f, ffront)
			bfront = c.m.Diff(c.m.And(c.pre(bfront), v), b)
			b = c.m.Or(b, bfront)
		}
		var converged bdd.Ref
		if ffront == bdd.False {
			// Forward set converged first: finish backward inside it.
			for {
				grow := c.m.Diff(c.m.And(c.pre(b), f), b)
				if grow == bdd.False {
					break
				}
				b = c.m.Or(b, grow)
			}
			converged = f
		} else {
			for {
				grow := c.m.Diff(c.m.And(c.post(f), b), f)
				if grow == bdd.False {
					break
				}
				f = c.m.Or(f, grow)
			}
			converged = b
		}
		scc := c.m.And(f, b)
		emit(scc)
		stack = append(stack, c.m.Diff(converged, scc))
		stack = append(stack, c.m.Diff(v, converged))
	}
}

// pre returns the states with a transition into x; post the states
// reachable from x in one step.
func (c *sccCtx) pre(x bdd.Ref) bdd.Ref {
	out := bdd.False
	for i := range c.src {
		out = c.m.Or(out, c.m.And(c.src[i], c.m.Restrict(x, c.wcube[i])))
	}
	return out
}

func (c *sccCtx) post(x bdd.Ref) bdd.Ref {
	out := bdd.False
	for i := range c.src {
		srcs := c.m.And(x, c.src[i])
		if srcs == bdd.False {
			continue
		}
		out = c.m.Or(out, c.m.And(c.m.Exists(srcs, c.wvars[i]), c.wcube[i]))
	}
	return out
}

// skelForward computes the forward set of n within v, together with a
// skeleton: a path from n to a state n2 in the last BFS level.
func (c *sccCtx) skelForward(v, n bdd.Ref) (fw, s2, n2 bdd.Ref) {
	levels := []bdd.Ref{n}
	fw = n
	frontier := n
	for {
		next := c.m.Diff(c.m.And(c.post(frontier), v), fw)
		if next == bdd.False || c.e.canceled() {
			break
		}
		levels = append(levels, next)
		fw = c.m.Or(fw, next)
		frontier = next
	}
	n2 = c.pickSingleton(levels[len(levels)-1])
	s2 = n2
	cur := n2
	for i := len(levels) - 2; i >= 0; i-- {
		cur = c.pickSingleton(c.m.And(c.pre(cur), levels[i]))
		s2 = c.m.Or(s2, cur)
	}
	return fw, s2, n2
}

// hasInternalTransition reports whether some group has a transition with
// both endpoints in scc (i.e. the component contains a cycle).
func (c *sccCtx) hasInternalTransition(scc bdd.Ref) bool {
	for i := range c.src {
		pre := c.m.And(c.src[i], c.m.Restrict(scc, c.wcube[i]))
		if c.m.And(scc, pre) != bdd.False {
			return true
		}
	}
	return false
}

// pickSingleton extracts one state of f as a full literal cube.
func (c *sccCtx) pickSingleton(f bdd.Ref) bdd.Ref {
	cube := c.m.PickCube(f)
	if cube == nil {
		panic("symbolic: pickSingleton on empty set")
	}
	l := c.e.l
	lits := make([]bdd.Literal, 0, l.total)
	for id := range c.e.sp.Vars {
		for b := 0; b < l.bitsOf[id]; b++ {
			lvl := l.curLevel(id, b)
			lits = append(lits, bdd.Literal{Var: lvl, Val: cube[lvl] == 1})
		}
	}
	return c.m.LiteralCube(lits)
}
