package symbolic

import (
	"time"

	"stsyn/internal/bdd"
	"stsyn/internal/core"
)

// sccCtx runs cycle detection inside a scratch manager separate from the
// persistent store: the trim and enumeration fixpoints generate enormous
// amounts of garbage, and keeping it off the persistent manager makes
// reclamation trivial — a scratch manager is dropped wholesale, the
// coarsest possible collection. By default the engine retains one scratch
// manager across calls (scratchMgr: warm operation cache, copy memo) and
// drops it at a small live-node watermark; reference mode and parallel
// clones use a private throwaway manager per call/task instead. Inputs
// are migrated in and the (small) resulting SCC predicates are migrated
// back. The main manager's mark-and-sweep collector complements this: it
// reclaims garbage that accumulates on the persistent store across calls,
// and CyclicSCCs' entry is one of its safe points.
type sccCtx struct {
	e         *Engine
	m         *bdd.Manager
	src       []bdd.Ref           // per group: source states
	wcube     []bdd.Ref           // per group: written-values literal cube
	wvars     []bdd.Ref           // per group: positive cube of written bit levels
	lmap      []int               // persistent level → scratch level (nil = same order)
	memo      map[bdd.Ref]bdd.Ref // persistent → scratch copy memo for this call
	throwaway bool                // manager is private to this call (reference mode, clones)
	qbuf      []bdd.Ref           // reused term buffer for balanced union trees
	pbuf      []bdd.Ref           // second term buffer (trim's image direction)
}

// scratchMgr is the cycle-detection scratch manager an engine retains
// across CyclicSCCs calls. Reuse keeps the operation cache warm across
// the many short calls a synthesis run makes, and the copy memo turns the
// per-call migration of group cubes and the recurring `within` set into
// map lookups. Validity is epoch-style: the memo's keys are persistent
// Refs, so any persistent-manager collection (which may reuse slots)
// flushes the memo — the scratch nodes and warm cache survive; prev
// snapshots the counters already folded into the engine's scratch
// totals so reuse never double-counts.
type scratchMgr struct {
	m       *bdd.Manager
	memo    map[bdd.Ref]bdd.Ref // persistent Ref → scratch Ref
	prev    bdd.Stats           // counters folded so far
	gcRuns  int                 // persistent GCRuns the memo is valid for
	reorder bool                // order the memo entries were translated under
}

// scratchRebuildNodes bounds the retained scratch store: past this many
// live nodes the manager is dropped wholesale and rebuilt fresh.
const scratchRebuildNodes = 1 << 16

// ensureScratch returns the retained scratch manager, rebuilding it when
// the store outgrew the watermark or the reorder knob flipped. A
// persistent-manager collection is cheaper to survive: scratch nodes are
// unaffected — only the memo's keys (persistent refs whose slots may now
// be reused) go stale — so the memo alone is flushed and the warm
// operation cache lives on.
func (e *Engine) ensureScratch() *scratchMgr {
	gc := e.m.Stats().GCRuns
	if s := e.sccScratch; s != nil {
		if s.reorder != e.reorder || s.m.Stats().LiveNodes > scratchRebuildNodes {
			e.dropScratch()
		} else if s.gcRuns != gc {
			s.memo = make(map[bdd.Ref]bdd.Ref)
			s.gcRuns = gc
		}
	}
	if e.sccScratch == nil {
		e.sccScratch = &scratchMgr{
			m:       bdd.New(e.m.NumVars()),
			memo:    make(map[bdd.Ref]bdd.Ref),
			gcRuns:  gc,
			reorder: e.reorder,
		}
	}
	return e.sccScratch
}

// dropScratch folds the retained scratch manager's outstanding counters
// into the engine totals and releases it wholesale.
func (e *Engine) dropScratch() {
	s := e.sccScratch
	if s == nil {
		return
	}
	st := s.m.Stats()
	e.scratch.ops += st.Ops - s.prev.Ops
	e.scratch.hits += st.CacheHits - s.prev.CacheHits
	e.scratch.misses += st.CacheMisses - s.prev.CacheMisses
	e.scratch.evicts += st.CacheEvictions - s.prev.CacheEvictions
	e.scratch.dropped += uint64(st.LiveNodes)
	if st.PeakLiveNodes > e.scratch.peak {
		e.scratch.peak = st.PeakLiveNodes
	}
	e.sccScratch = nil
}

// settleScratch folds a finished call's counters: throwaway managers are
// folded in full (they are dropped now), the retained manager by delta
// since the previous settle.
func (e *Engine) settleScratch(ctx *sccCtx) {
	if ctx.throwaway {
		e.foldScratchStats(ctx.m)
		return
	}
	s := e.sccScratch
	if s == nil || s.m != ctx.m {
		return
	}
	st := s.m.Stats()
	e.scratch.ops += st.Ops - s.prev.Ops
	e.scratch.hits += st.CacheHits - s.prev.CacheHits
	e.scratch.misses += st.CacheMisses - s.prev.CacheMisses
	e.scratch.evicts += st.CacheEvictions - s.prev.CacheEvictions
	if st.PeakLiveNodes > e.scratch.peak {
		e.scratch.peak = st.PeakLiveNodes
	}
	s.prev = st
}

// newSCCCtx builds a scratch context over the given groups. The default
// path reuses the engine's retained scratch manager, whose memo makes
// migrating previously seen persistent refs (the group cubes, the
// recurring `within` set) a map lookup; SetReferenceFixpoints restores a
// private throwaway manager per call. With dynamic reordering enabled the
// scratch manager runs under the engine's sifted order — stable per spec,
// so safe to retain — and all inputs are translated on the way in; lmap
// records the translation so pickSingleton and the copy-back can follow
// it.
func (e *Engine) newSCCCtx(gs []core.Group) *sccCtx {
	ctx := &sccCtx{e: e}
	if e.refFix {
		ctx.m = bdd.New(e.m.NumVars())
		ctx.memo = make(map[bdd.Ref]bdd.Ref)
		ctx.throwaway = true
	} else {
		s := e.ensureScratch()
		ctx.m = s.m
		ctx.memo = s.memo
	}
	if e.reorder {
		ctx.lmap, _ = e.scratchOrderMaps()
	}
	for _, g := range gs {
		gg := g.(*group)
		ctx.src = append(ctx.src, ctx.copyIn(gg.src, ctx.memo))
		ctx.wcube = append(ctx.wcube, ctx.copyIn(gg.writeCube, ctx.memo))
		ctx.wvars = append(ctx.wvars, ctx.copyIn(gg.writeVars, ctx.memo))
	}
	return ctx
}

// copyIn migrates a persistent-manager BDD into the scratch manager,
// translating levels when the scratch order differs.
func (c *sccCtx) copyIn(f bdd.Ref, memo map[bdd.Ref]bdd.Ref) bdd.Ref {
	if c.lmap == nil {
		return c.m.CopyFrom(c.e.m, f, memo)
	}
	return c.m.CopyPermutedFrom(c.e.m, f, c.lmap, memo)
}

// copyBack migrates a scratch BDD to the persistent manager, undoing the
// scratch order translation.
func (c *sccCtx) copyBack(f bdd.Ref, memo map[bdd.Ref]bdd.Ref) bdd.Ref {
	if c.lmap == nil {
		return c.e.m.CopyFrom(c.m, f, memo)
	}
	_, inv := c.e.scratchOrderMaps()
	return c.e.m.CopyPermutedFrom(c.m, f, inv, memo)
}

// clone builds a task-private copy of the context for a spawned SCC
// subproblem: a fresh manager under the same (possibly sifted) order with
// the group cubes migrated over, plus the given extra refs translated into
// it. Spawned managers start with a small operation cache — most subtasks
// are brief — and grow adaptively toward the default when hot.
func (c *sccCtx) clone(extra ...bdd.Ref) (*sccCtx, []bdd.Ref) {
	m := bdd.New(c.m.NumVars())
	m.SetCacheSize(4096)
	cc := &sccCtx{e: c.e, m: m, lmap: c.lmap, throwaway: true}
	memo := make(map[bdd.Ref]bdd.Ref)
	for i := range c.src {
		cc.src = append(cc.src, m.CopyFrom(c.m, c.src[i], memo))
		cc.wcube = append(cc.wcube, m.CopyFrom(c.m, c.wcube[i], memo))
		cc.wvars = append(cc.wvars, m.CopyFrom(c.m, c.wvars[i], memo))
	}
	out := make([]bdd.Ref, len(extra))
	for i, f := range extra {
		out[i] = m.CopyFrom(c.m, f, memo)
	}
	return cc, out
}

// CyclicSCCs returns the non-trivial strongly connected components of the
// union of gs restricted to states in within.
//
// It first trims `within` to its cycle core — the greatest set in which
// every state lies on an infinite forward and backward path (states not in
// the core cannot lie on any cycle) — and then enumerates the core's SCCs,
// by default with the skeleton-based symbolic algorithm of Gentilini,
// Piazza and Policriti which the paper's STSyn implementation uses
// (SetSCCAlgorithm(Lockstep) switches to Bloem-Gabow-Somenzi lockstep
// search). Trimming first is essential: without it the enumeration would
// visit one trivial SCC per acyclic state.
//
// The call's entry is a collection safe point for the main manager: sets
// not pinned via Retain (or handed out by the previous CyclicSCCs call,
// which stay valid until this one) may be reclaimed here. The returned
// components live on the main manager and are kept as collection roots
// until the next CyclicSCCs call releases them.
func (e *Engine) CyclicSCCs(gs []core.Group, within core.Set) []core.Set {
	t0 := time.Now() //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
	defer func() {
		e.stats.SCCTime += time.Since(t0) //lint:ignore determinism wall-clock SCC stats only; synthesis results never read them
		e.stats.SCCCalls++
	}()

	// Components handed out by the previous call expire now.
	for _, s := range e.sccs {
		e.m.Release(s)
	}
	e.sccs = e.sccs[:0]

	// Safe point: `within` must survive the collection, so pin it first
	// (group cubes are kept permanently by the engine's interning).
	w := e.m.Keep(within.(bdd.Ref))
	defer e.m.Release(w)
	e.m.MaybeGC()

	ctx := e.newSCCCtx(gs)
	defer e.settleScratch(ctx)
	c := ctx.copyIn(w, ctx.memo)

	// Trim to the cycle core. Empty ⇔ the graph restricted to within is
	// acyclic — the common case while the heuristic is doing its job. Every
	// fixpoint inside is a cancellation point: one iteration is a full
	// symbolic image, so checking the context per iteration is cheap, and
	// on cancellation partial results are returned for the caller to
	// discard.
	c = ctx.trim(c)
	if c == bdd.False || e.canceled() {
		return nil
	}

	backMemo := make(map[bdd.Ref]bdd.Ref)
	record := func(back bdd.Ref) {
		e.sccs = append(e.sccs, e.m.Keep(back))
		e.stats.SCCCount++
		e.stats.SCCSizeTotal += e.m.DagSize(back)
	}
	emit := func(scc bdd.Ref) {
		if !ctx.hasInternalTransition(scc) {
			return
		}
		record(ctx.copyBack(scc, backMemo))
	}
	switch {
	case e.sccAlg == Lockstep:
		ctx.lockstepEnum(c, emit)
	case e.workers > 1:
		// Parallel skeleton decomposition across task-private scratch
		// managers; results arrive in deterministic path order.
		for _, r := range e.parallelSkeleton(ctx, c) {
			record(r)
		}
	default:
		ctx.skeletonEnum(c, emit)
	}
	out := make([]core.Set, len(e.sccs))
	for i, s := range e.sccs {
		out[i] = s
	}
	return out
}

// skelTask is one subproblem of the skeleton decomposition: enumerate the
// SCCs of the subgraph induced by v, optionally spined by (s, n).
type skelTask struct{ v, s, n bdd.Ref }

// skeletonEnum enumerates the SCCs of the subgraph induced by v0 with the
// Gentilini-Piazza-Policriti skeleton algorithm (iterative; spine-sets
// bound the number of symbolic steps, correctness needs only single-state
// seeds).
func (c *sccCtx) skeletonEnum(v0 bdd.Ref, emit func(bdd.Ref)) {
	c.skeletonRun(skelTask{v: v0, s: bdd.False, n: bdd.False}, emit, nil)
}

// skeletonRun drains one skeleton task and its descendants. Before a
// descendant subproblem is pushed on the local stack it is offered to
// trySpawn (when non-nil); a true return means another worker owns it now.
// The offer order and everything the decision can observe are structural,
// so the decomposition is identical for every worker count.
func (c *sccCtx) skeletonRun(t0 skelTask, emit func(bdd.Ref), trySpawn func(skelTask) bool) {
	stack := []skelTask{t0}
	push := func(t skelTask) {
		if trySpawn != nil && trySpawn(t) {
			return
		}
		stack = append(stack, t)
	}
	for len(stack) > 0 {
		if c.e.canceled() {
			return
		}
		t := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if t.v == bdd.False {
			continue
		}
		n, s := t.n, t.s
		if n == bdd.False {
			n = c.pickSingleton(t.v)
			s = n
		}
		fw, s2, n2 := c.skelForward(t.v, n)
		// SCC(n) = states of FW that reach n: grow backwards inside FW.
		// The preimage distributes over union, so the default path feeds
		// only the newly added frontier back in; the reference oracle
		// recomputes the preimage of the whole partial SCC every round.
		scc := n
		if c.e.refFix {
			for {
				grow := c.m.Diff(c.m.And(c.pre(scc), fw), scc)
				if grow == bdd.False {
					break
				}
				scc = c.m.Or(scc, grow)
			}
		} else {
			for front := n; ; {
				grow := c.m.Diff(c.m.And(c.pre(front), fw), scc)
				if grow == bdd.False {
					break
				}
				scc = c.m.Or(scc, grow)
				front = grow
			}
		}
		emit(scc)
		// Remainder outside the forward set, spined by the predecessor of
		// the SCC along the old spine.
		s1 := c.m.Diff(s, scc)
		n1 := c.m.And(c.pre(c.m.And(scc, s)), s1)
		if n1 != bdd.False {
			n1 = c.pickSingleton(n1)
		} else {
			s1 = bdd.False
		}
		push(skelTask{v: c.m.Diff(t.v, fw), s: s1, n: n1})
		// Remainder inside the forward set, spined by the skeleton suffix.
		s2 = c.m.Diff(s2, scc)
		n2 = c.m.Diff(n2, scc)
		if n2 == bdd.False {
			s2 = bdd.False
		}
		push(skelTask{v: c.m.Diff(fw, scc), s: s2, n: n2})
	}
}

// lockstepEnum enumerates SCCs with the Bloem-Gabow-Somenzi lockstep
// algorithm: grow the forward and backward sets of a seed simultaneously;
// when one converges, finish the other inside it; their intersection is
// the seed's SCC.
func (c *sccCtx) lockstepEnum(v0 bdd.Ref, emit func(bdd.Ref)) {
	stack := []bdd.Ref{v0}
	for len(stack) > 0 {
		if c.e.canceled() {
			return
		}
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if v == bdd.False {
			continue
		}
		seed := c.pickSingleton(v)
		f, b := seed, seed
		ffront, bfront := seed, seed
		for ffront != bdd.False && bfront != bdd.False {
			ffront = c.m.Diff(c.m.And(c.post(ffront), v), f)
			f = c.m.Or(f, ffront)
			bfront = c.m.Diff(c.m.And(c.pre(bfront), v), b)
			b = c.m.Or(b, bfront)
		}
		var converged bdd.Ref
		if ffront == bdd.False {
			// Forward set converged first: finish backward inside it.
			for {
				grow := c.m.Diff(c.m.And(c.pre(b), f), b)
				if grow == bdd.False {
					break
				}
				b = c.m.Or(b, grow)
			}
			converged = f
		} else {
			for {
				grow := c.m.Diff(c.m.And(c.post(f), b), f)
				if grow == bdd.False {
					break
				}
				f = c.m.Or(f, grow)
			}
			converged = b
		}
		scc := c.m.And(f, b)
		emit(scc)
		stack = append(stack, c.m.Diff(converged, scc))
		stack = append(stack, c.m.Diff(v, converged))
	}
}

// pre returns the states with a transition into x; post the states
// reachable from x in one step. The tuned path batches the per-group
// terms through a balanced union tree (orTree) — canonicity makes the
// result identical to the linear fold the reference oracle keeps, but the
// operands stay comparably sized instead of one accumulator growing with
// every Or.
func (c *sccCtx) pre(x bdd.Ref) bdd.Ref {
	if c.e.refFix {
		out := bdd.False
		for i := range c.src {
			out = c.m.Or(out, c.m.And(c.src[i], c.m.Restrict(x, c.wcube[i])))
		}
		return out
	}
	terms := c.qbuf[:0]
	for i := range c.src {
		if q := c.m.And(c.src[i], c.m.Restrict(x, c.wcube[i])); q != bdd.False {
			terms = append(terms, q)
		}
	}
	c.qbuf = terms[:0]
	return orTree(c.m, terms)
}

// image is post restricted to one group: the successors of x under group i.
func (c *sccCtx) image(i int, x bdd.Ref) bdd.Ref {
	if c.e.fused {
		up := c.m.AndExists(x, c.src[i], c.wvars[i])
		if up == bdd.False {
			return bdd.False
		}
		return c.m.And(up, c.wcube[i])
	}
	srcs := c.m.And(x, c.src[i])
	if srcs == bdd.False {
		return bdd.False
	}
	return c.m.And(c.m.Exists(srcs, c.wvars[i]), c.wcube[i])
}

// trim shrinks v to its cycle core: the greatest subset in which every
// state has both a successor and a predecessor inside the subset (states
// outside the core cannot lie on any cycle). The forward-only pass runs
// first — it is cheaper per iteration and empties the common acyclic case
// — then both directions interleave to convergence.
//
// The default path exploits monotonicity twice. The core only shrinks, so
// a group with no internal transition in the current core — no source
// state in it whose successor is also in it — can never regain one and is
// dropped from every later iteration; that one liveness condition covers
// both image directions. SetReferenceFixpoints(true) restores the oracle
// that recomputes full images over all groups every iteration.
func (c *sccCtx) trim(v bdd.Ref) bdd.Ref {
	if c.e.refFix {
		for {
			next := c.m.And(v, c.pre(v))
			if next == v || c.e.canceled() {
				break
			}
			v = next
		}
		if v == bdd.False || c.e.canceled() {
			return v
		}
		for {
			next := c.m.And(v, c.m.And(c.pre(v), c.post(v)))
			if next == v || c.e.canceled() {
				break
			}
			v = next
		}
		return v
	}

	act := make([]int, len(c.src))
	for i := range act {
		act[i] = i
	}
	// Forward pass: keep states with a successor inside v. The per-group
	// preimage term q_i = src_i ∧ Restrict(v, wcube_i) is already what the
	// reference pre(v) computes; empty q_i means no transition of group i
	// lands in v at all, and since v only shrinks, never will again — the
	// group is retired for free, with no extra operations when live.
	for {
		terms := c.qbuf[:0]
		na := act[:0]
		for _, i := range act {
			q := c.m.And(c.src[i], c.m.Restrict(v, c.wcube[i]))
			if q == bdd.False {
				continue
			}
			na = append(na, i)
			terms = append(terms, q)
		}
		act = na
		c.qbuf = terms[:0]
		next := c.m.And(v, orTree(c.m, terms))
		if next == v || c.e.canceled() {
			break
		}
		v = next
		if v == bdd.False {
			return v
		}
	}
	if c.e.canceled() {
		return v
	}
	// Both directions to convergence. Retiring on empty q_i is sound for
	// the image union too: no transition of group i lands in v, so its
	// image contributes nothing inside v, and the result is intersected
	// with v before use.
	for {
		pres, posts := c.qbuf[:0], c.pbuf[:0]
		na := act[:0]
		for _, i := range act {
			q := c.m.And(c.src[i], c.m.Restrict(v, c.wcube[i]))
			if q == bdd.False {
				continue
			}
			na = append(na, i)
			pres = append(pres, q)
			if p := c.image(i, v); p != bdd.False {
				posts = append(posts, p)
			}
		}
		act = na
		c.qbuf, c.pbuf = pres[:0], posts[:0]
		next := c.m.And(v, c.m.And(orTree(c.m, pres), orTree(c.m, posts)))
		if next == v || c.e.canceled() {
			break
		}
		v = next
		if v == bdd.False {
			return v
		}
	}
	return v
}

func (c *sccCtx) post(x bdd.Ref) bdd.Ref {
	if c.e.refFix {
		out := bdd.False
		for i := range c.src {
			out = c.m.Or(out, c.image(i, x))
		}
		return out
	}
	terms := c.qbuf[:0]
	for i := range c.src {
		if q := c.image(i, x); q != bdd.False {
			terms = append(terms, q)
		}
	}
	c.qbuf = terms[:0]
	return orTree(c.m, terms)
}

// skelForward computes the forward set of n within v, together with a
// skeleton: a path from n to a state n2 in the last BFS level.
func (c *sccCtx) skelForward(v, n bdd.Ref) (fw, s2, n2 bdd.Ref) {
	levels := []bdd.Ref{n}
	fw = n
	frontier := n
	for {
		next := c.m.Diff(c.m.And(c.post(frontier), v), fw)
		if next == bdd.False || c.e.canceled() {
			break
		}
		levels = append(levels, next)
		fw = c.m.Or(fw, next)
		frontier = next
	}
	n2 = c.pickSingleton(levels[len(levels)-1])
	s2 = n2
	cur := n2
	for i := len(levels) - 2; i >= 0; i-- {
		cur = c.pickSingleton(c.m.And(c.pre(cur), levels[i]))
		s2 = c.m.Or(s2, cur)
	}
	return fw, s2, n2
}

// hasInternalTransition reports whether some group has a transition with
// both endpoints in scc (i.e. the component contains a cycle).
func (c *sccCtx) hasInternalTransition(scc bdd.Ref) bool {
	for i := range c.src {
		pre := c.m.And(c.src[i], c.m.Restrict(scc, c.wcube[i]))
		if c.m.And(scc, pre) != bdd.False {
			return true
		}
	}
	return false
}

// pickSingleton extracts one state of f as a full literal cube. PickCube
// on a canonical ROBDD is structure-determined, so the chosen state — and
// with it the whole skeleton decomposition — is identical in every scratch
// manager holding the same function.
func (c *sccCtx) pickSingleton(f bdd.Ref) bdd.Ref {
	cube := c.m.PickCube(f)
	if cube == nil {
		panic("symbolic: pickSingleton on empty set")
	}
	l := c.e.l
	lits := make([]bdd.Literal, 0, l.total)
	for id := range c.e.sp.Vars {
		for b := 0; b < l.bitsOf[id]; b++ {
			lvl := l.curLevel(id, b)
			if c.lmap != nil {
				lvl = c.lmap[lvl]
			}
			lits = append(lits, bdd.Literal{Var: lvl, Val: cube[lvl] == 1})
		}
	}
	return c.m.LiteralCube(lits)
}
