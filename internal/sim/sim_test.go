package sim_test

import (
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/sim"
)

func actionGroups(t *testing.T, sp *protocol.Spec) []protocol.Group {
	t.Helper()
	var out []protocol.Group
	for pi := range sp.Procs {
		out = append(out, sp.ActionGroups(pi)...)
	}
	return out
}

func TestDijkstraAlwaysConverges(t *testing.T) {
	sp := protocols.DijkstraTokenRing(5, 5)
	r := sim.NewRunner(sp, actionGroups(t, sp))
	st := r.Estimate(500, sim.Config{Seed: 1})
	if st.Converged != st.Trials {
		t.Fatalf("Dijkstra TR must always converge: %s", st)
	}
	if st.MeanSteps() <= 0 {
		t.Error("non-legitimate random starts should take steps to converge")
	}
}

func TestNonStabilizingTokenRingDeadlocks(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	r := sim.NewRunner(sp, actionGroups(t, sp))
	st := r.Estimate(500, sim.Config{Seed: 2})
	if st.Deadlocked == 0 {
		t.Fatalf("non-stabilizing TR should deadlock in some runs: %s", st)
	}
}

func TestGoudaAcharyaLivelocks(t *testing.T) {
	sp := protocols.GoudaAcharyaMatching(5)
	r := sim.NewRunner(sp, actionGroups(t, sp))
	st := r.Estimate(500, sim.Config{Seed: 3, MaxSteps: 2000})
	if st.Converged == st.Trials {
		t.Fatalf("flawed GA protocol should not always converge: %s", st)
	}
}

func TestSynthesizedProtocolConverges(t *testing.T) {
	sp := protocols.Matching(5)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var groups []protocol.Group
	for _, g := range res.Protocol {
		groups = append(groups, g.ProtocolGroup())
	}
	r := sim.NewRunner(sp, groups)
	st := r.Estimate(500, sim.Config{Seed: 4})
	if st.Converged != st.Trials {
		t.Fatalf("synthesized MM must always converge: %s", st)
	}
}

func TestRunTraceAndOutcomes(t *testing.T) {
	sp := protocols.DijkstraTokenRing(4, 4)
	r := sim.NewRunner(sp, actionGroups(t, sp))
	res := r.Run(protocol.State{3, 1, 2, 0}, sim.Config{Seed: 5, Trace: true})
	if res.Outcome != sim.Converged {
		t.Fatalf("run did not converge: %v", res.Outcome)
	}
	if len(res.Trace) != res.Steps+1 {
		t.Errorf("trace has %d states for %d steps", len(res.Trace), res.Steps)
	}
	// Every consecutive pair in the trace must be a real transition.
	for i := 1; i < len(res.Trace); i++ {
		prev, next := res.Trace[i-1], res.Trace[i]
		ok := false
		for _, g := range actionGroups(t, sp) {
			if !g.Matches(sp, prev) {
				continue
			}
			dst := make(protocol.State, len(prev))
			g.Apply(sp, prev, dst)
			same := true
			for j := range dst {
				if dst[j] != next[j] {
					same = false
				}
			}
			if same {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("trace step %d: %v -> %v is not a transition", i, prev, next)
		}
	}
	// A legitimate start converges in zero steps.
	res = r.Run(protocol.State{0, 0, 0, 0}, sim.Config{Seed: 6})
	if res.Outcome != sim.Converged || res.Steps != 0 {
		t.Errorf("legitimate start: %v after %d steps", res.Outcome, res.Steps)
	}
}

func TestInjectFaults(t *testing.T) {
	sp := protocols.DijkstraTokenRing(4, 3)
	rng := rand.New(rand.NewSource(7))
	base := protocol.State{1, 1, 1, 1}
	faulty := sim.InjectFaults(sp, base, 2, rng)
	if len(faulty) != len(base) {
		t.Fatal("length changed")
	}
	for i, v := range faulty {
		if v < 0 || v >= sp.Vars[i].Dom {
			t.Fatalf("fault produced out-of-domain value %d", v)
		}
	}
	// Original must be untouched.
	for i, v := range base {
		if v != 1 {
			t.Fatalf("base mutated at %d: %d", i, v)
		}
	}
}

func TestOutcomeString(t *testing.T) {
	if sim.Converged.String() != "converged" ||
		sim.Deadlocked.String() != "deadlocked" ||
		sim.Exhausted.String() != "exhausted" {
		t.Error("Outcome strings wrong")
	}
}
