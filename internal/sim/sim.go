// Package sim is a concrete-execution simulator: it runs random
// interleavings of a protocol's transition groups from arbitrary (fault-
// injected) states and measures convergence to the legitimate states. The
// synthesizer proves stabilization; the simulator provides the matching
// operational picture — convergence-time distributions under a random
// scheduler — and doubles as a statistical cross-check in the tests.
package sim

import (
	"fmt"
	"math/rand"

	"stsyn/internal/protocol"
)

// Config controls one simulation run.
type Config struct {
	MaxSteps int   // abort after this many steps (0 = 64·|vars|·maxDom)
	Seed     int64 // RNG seed
	Trace    bool  // record the visited states
}

// Outcome classifies how a run ended.
type Outcome int

const (
	// Converged: the run reached a legitimate state.
	Converged Outcome = iota
	// Deadlocked: an illegitimate state with no enabled group.
	Deadlocked
	// Exhausted: MaxSteps steps without reaching I (a possible livelock).
	Exhausted
)

func (o Outcome) String() string {
	switch o {
	case Converged:
		return "converged"
	case Deadlocked:
		return "deadlocked"
	default:
		return "exhausted"
	}
}

// Result is the outcome of one run.
type Result struct {
	Outcome Outcome
	Steps   int
	Final   protocol.State
	Trace   []protocol.State // only when Config.Trace
}

// Runner simulates a fixed protocol efficiently across many runs.
type Runner struct {
	sp     *protocol.Spec
	groups []protocol.Group
	byProc [][]protocol.Group
}

// NewRunner prepares a simulator for the given protocol (δ given as
// transition groups, e.g. a synthesis result).
func NewRunner(sp *protocol.Spec, groups []protocol.Group) *Runner {
	r := &Runner{sp: sp, groups: groups, byProc: make([][]protocol.Group, len(sp.Procs))}
	for _, g := range groups {
		r.byProc[g.Proc] = append(r.byProc[g.Proc], g)
	}
	return r
}

// enabled collects the groups enabled at s into buf.
func (r *Runner) enabled(s protocol.State, buf []protocol.Group) []protocol.Group {
	buf = buf[:0]
	for _, g := range r.groups {
		if g.Matches(r.sp, s) {
			buf = append(buf, g)
		}
	}
	return buf
}

// Run executes one random interleaving from start.
func (r *Runner) Run(start protocol.State, cfg Config) Result {
	rng := rand.New(rand.NewSource(cfg.Seed))
	maxSteps := cfg.MaxSteps
	if maxSteps == 0 {
		maxDom := 2
		for _, v := range r.sp.Vars {
			if v.Dom > maxDom {
				maxDom = v.Dom
			}
		}
		maxSteps = 64 * len(r.sp.Vars) * maxDom
	}
	s := append(protocol.State(nil), start...)
	res := Result{}
	if cfg.Trace {
		res.Trace = append(res.Trace, append(protocol.State(nil), s...))
	}
	var buf []protocol.Group
	for step := 0; ; step++ {
		if r.sp.Invariant.EvalBool(s) {
			res.Outcome = Converged
			res.Steps = step
			break
		}
		if step >= maxSteps {
			res.Outcome = Exhausted
			res.Steps = step
			break
		}
		buf = r.enabled(s, buf)
		if len(buf) == 0 {
			res.Outcome = Deadlocked
			res.Steps = step
			break
		}
		g := buf[rng.Intn(len(buf))]
		g.Apply(r.sp, s, s)
		if cfg.Trace {
			res.Trace = append(res.Trace, append(protocol.State(nil), s...))
		}
	}
	res.Final = s
	return res
}

// RandomState draws a uniformly random state — the standard model of a
// burst of transient faults setting every variable arbitrarily.
func RandomState(sp *protocol.Spec, rng *rand.Rand) protocol.State {
	s := make(protocol.State, len(sp.Vars))
	for i, v := range sp.Vars {
		s[i] = rng.Intn(v.Dom)
	}
	return s
}

// InjectFaults flips n randomly chosen variables of s to random values,
// modelling a bounded transient fault.
func InjectFaults(sp *protocol.Spec, s protocol.State, n int, rng *rand.Rand) protocol.State {
	out := append(protocol.State(nil), s...)
	for i := 0; i < n; i++ {
		id := rng.Intn(len(sp.Vars))
		out[id] = rng.Intn(sp.Vars[id].Dom)
	}
	return out
}

// Stats aggregates many runs from random fault states.
type Stats struct {
	Trials     int
	Converged  int
	Deadlocked int
	Exhausted  int
	TotalSteps int // across converged runs
	MaxSteps   int // slowest converged run
}

// Rate returns the fraction of runs that converged.
func (st Stats) Rate() float64 {
	if st.Trials == 0 {
		return 0
	}
	return float64(st.Converged) / float64(st.Trials)
}

// MeanSteps returns the average convergence time of the converged runs.
func (st Stats) MeanSteps() float64 {
	if st.Converged == 0 {
		return 0
	}
	return float64(st.TotalSteps) / float64(st.Converged)
}

func (st Stats) String() string {
	return fmt.Sprintf("%d/%d converged (%.1f%%), mean %.1f steps, max %d; %d deadlocked, %d exhausted",
		st.Converged, st.Trials, 100*st.Rate(), st.MeanSteps(), st.MaxSteps,
		st.Deadlocked, st.Exhausted)
}

// Estimate runs trials simulations from uniformly random states.
func (r *Runner) Estimate(trials int, cfg Config) Stats {
	rng := rand.New(rand.NewSource(cfg.Seed))
	var st Stats
	st.Trials = trials
	for i := 0; i < trials; i++ {
		runCfg := cfg
		runCfg.Seed = rng.Int63()
		runCfg.Trace = false
		res := r.Run(RandomState(r.sp, rng), runCfg)
		switch res.Outcome {
		case Converged:
			st.Converged++
			st.TotalSteps += res.Steps
			if res.Steps > st.MaxSteps {
				st.MaxSteps = res.Steps
			}
		case Deadlocked:
			st.Deadlocked++
		case Exhausted:
			st.Exhausted++
		}
	}
	return st
}
