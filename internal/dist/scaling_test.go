package dist

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/service"
)

// TestScalingExperiment regenerates the EXPERIMENTS.md distributed-search
// scaling rows. Opt-in — the tworing row takes minutes:
//
//	STSYN_DIST_SCALING=1 go test -run TestScalingExperiment -v -timeout 30m ./internal/dist
//
// Two workloads, scaled over 1, 2 and 4 workers:
//
//   - coloring: the issue's case study. Every coloring schedule
//     synthesizes, so the first-success winner sits at global index 0 and
//     the row measures what the coordinator *avoids*: added workers start
//     speculative shards that are cancelled the moment index 0 wins, so
//     wall time stays one job regardless of fleet size.
//   - tworing-overhead: fixed total work. The schedule list [rot2, rot3,
//     rot6, rot7, rot0] fails on its first four entries (several seconds
//     each to prove) and wins on the last, so every schedule must be tried
//     whatever the worker count; the row isolates coordination overhead
//     against a single-node core.TrySchedules baseline and, on multi-core
//     hosts, shows the speedup.
func TestScalingExperiment(t *testing.T) {
	if os.Getenv("STSYN_DIST_SCALING") == "" {
		t.Skip("set STSYN_DIST_SCALING=1 to run the scaling experiment")
	}
	t.Logf("host: GOMAXPROCS=%d", runtime.GOMAXPROCS(0))

	runScaling := func(t *testing.T, req service.Request, source ScheduleSource, shardSize int) {
		for _, n := range []int{1, 2, 4} {
			workers := make([]string, n)
			for i := range workers {
				workers[i] = newWorker(t, nil).URL
			}
			coord := newTestCoordinator(t,
				Config{ShardSize: shardSize, Concurrency: n},
				ClientConfig{Workers: workers, RequestTimeout: 15 * time.Minute})
			start := time.Now()
			res, err := coord.Run(context.Background(), Job{Request: req, Source: source})
			if err != nil {
				t.Fatal(err)
			}
			fmt.Printf("scaling[%s]: workers=%d wall=%.2fs win_index=%d requests=%d cancelled=%d\n",
				t.Name(), n, time.Since(start).Seconds(), res.WinIndex,
				res.Stats.Requests, res.Stats.ShardsCancelled)
		}
	}

	t.Run("coloring", func(t *testing.T) {
		req := service.Request{Protocol: "coloring", K: 11, Engine: "explicit", TimeoutMS: 600000}
		runScaling(t, req, ScheduleSource{Kind: "sample", N: 32, Seed: 1}, 8)
	})

	t.Run("tworing-overhead", func(t *testing.T) {
		req := service.Request{Protocol: "tworing", K: 4, Dom: 3, Engine: "explicit", TimeoutMS: 600000}
		rot := core.Rotations(8)
		list := [][]int{rot[2], rot[3], rot[6], rot[7], rot[0]}

		// Single-node baseline: core.TrySchedules in-process.
		sp, err := service.BuildSpec(&req)
		if err != nil {
			t.Fatal(err)
		}
		factory := func() (core.Engine, error) { return explicit.New(sp, 0) }
		start := time.Now()
		best, _, err := core.TrySchedules(factory, core.Options{}, list, runtime.GOMAXPROCS(0))
		if err != nil {
			t.Fatal(err)
		}
		fmt.Printf("scaling[%s]: single-node wall=%.2fs (winner %v)\n",
			t.Name(), time.Since(start).Seconds(), best.Schedule)

		runScaling(t, req, ScheduleSource{Kind: "list", List: list}, 1)
	})
}
