package dist

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "job.wal")
}

// Records written through the journal come back intact from a replay.
func TestJournalRoundTrip(t *testing.T) {
	path := journalPath(t)
	jn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*Record{
		{Type: "job", JobKey: "k1", Source: "rotations", ShardSize: 2, WinIndex: -1},
		{Type: "shard", JobKey: "k1", Shard: 0, Start: 0, Tried: 2, WinIndex: -1},
		{Type: "shard", JobKey: "k1", Shard: 1, Start: 2, Tried: 1, WinIndex: 2,
			WinSchedule: []int{2, 3, 0, 1}, Response: json.RawMessage(`{"verified":true}`)},
	}
	for _, r := range recs {
		if err := jn.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if err := jn.Close(); err != nil {
		t.Fatal(err)
	}

	rep, err := ReplayJournal(path, "k1")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Job == nil || rep.Job.Source != "rotations" || rep.Job.ShardSize != 2 {
		t.Fatalf("job header = %+v", rep.Job)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("replayed %d shards, want 2", len(rep.Shards))
	}
	s1 := rep.Shards[1]
	if s1.WinIndex != 2 || !reflect.DeepEqual(s1.WinSchedule, []int{2, 3, 0, 1}) {
		t.Errorf("shard 1 = %+v", s1)
	}
	if !bytes.Equal(s1.Response, []byte(`{"verified":true}`)) {
		t.Errorf("shard 1 response = %s", s1.Response)
	}
}

// A missing journal is an empty replay, not an error.
func TestJournalReplayMissingFile(t *testing.T) {
	rep, err := ReplayJournal(filepath.Join(t.TempDir(), "nope.wal"), "k")
	if err != nil {
		t.Fatal(err)
	}
	if rep.Job != nil || len(rep.Shards) != 0 {
		t.Errorf("replay of missing file = %+v", rep)
	}
}

// A torn final line — the write the dying coordinator never finished — is
// dropped silently; the same damage in the middle of the journal is fatal.
func TestJournalTornAndCorrupt(t *testing.T) {
	path := journalPath(t)
	jn, _ := OpenJournal(path)
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 0, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()
	good, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// Torn final line: replay sees only the good record.
	torn := append(append([]byte{}, good...), []byte(`{"crc":"dead`)...)
	if err := os.WriteFile(path, torn, 0o644); err != nil {
		t.Fatal(err)
	}
	rep, err := ReplayJournal(path, "k")
	if err != nil {
		t.Fatalf("torn final line not tolerated: %v", err)
	}
	if len(rep.Shards) != 1 {
		t.Fatalf("replayed %d shards, want 1", len(rep.Shards))
	}

	// The same bad line followed by a good one is corruption, not tearing.
	corrupt := append(append([]byte{}, []byte("{\"crc\":\"dead\n")...), good...)
	if err := os.WriteFile(path, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReplayJournal(path, "k"); err == nil {
		t.Fatal("corrupt middle line not detected")
	}
}

// A coordinator that crashes mid-write leaves a torn final line; reopening
// the journal must repair the tail so post-crash appends land on a fresh
// line and survive a second replay (crash -> resume/append -> crash ->
// replay). Without the repair the first new record merges with the torn
// bytes into one corrupt line, destroying an fsync-acknowledged append.
func TestJournalAppendAfterTornTail(t *testing.T) {
	path := journalPath(t)
	jn, _ := OpenJournal(path)
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 0, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	// Simulate the crash: a partial, unterminated envelope at the tail.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"crc":"dead`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	// First resume: reopen repairs the tail, then appends a new record.
	jn, err = OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 1, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	// Second resume: the replay must see both intact records.
	rep, err := ReplayJournal(path, "k")
	if err != nil {
		t.Fatalf("replay after crash->append: %v", err)
	}
	if len(rep.Shards) != 2 {
		t.Fatalf("replayed %d shards, want 2", len(rep.Shards))
	}

	// A journal that is nothing but a torn line repairs to empty.
	solo := filepath.Join(t.TempDir(), "solo.wal")
	if err := os.WriteFile(solo, []byte(`{"crc":"dead`), 0o644); err != nil {
		t.Fatal(err)
	}
	jn, err = OpenJournal(solo)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 0, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()
	rep, err = ReplayJournal(solo, "k")
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Shards) != 1 {
		t.Fatalf("replayed %d shards, want 1", len(rep.Shards))
	}
}

// Flipping a payload byte fails the checksum.
func TestJournalChecksumMismatch(t *testing.T) {
	path := journalPath(t)
	jn, _ := OpenJournal(path)
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 3, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	// Second record so the damaged first line cannot pass as a torn tail.
	if err := jn.Append(&Record{Type: "shard", JobKey: "k", Shard: 4, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()
	data, _ := os.ReadFile(path)
	flipped := bytes.Replace(data, []byte(`"shard":3`), []byte(`"shard":7`), 1)
	if bytes.Equal(flipped, data) {
		t.Fatal("test bug: payload byte not flipped")
	}
	if err := os.WriteFile(path, flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := ReplayJournal(path, "k")
	if err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("err = %v, want checksum mismatch", err)
	}
}

// A journal written for one job refuses to resume another.
func TestJournalJobKeyMismatch(t *testing.T) {
	path := journalPath(t)
	jn, _ := OpenJournal(path)
	if err := jn.Append(&Record{Type: "job", JobKey: "job-a", WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(&Record{Type: "shard", JobKey: "job-a", Shard: 0, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()
	if _, err := ReplayJournal(path, "job-b"); err == nil {
		t.Fatal("journal for job-a replayed under job-b")
	}
	if _, err := ReplayJournal(path, "job-a"); err != nil {
		t.Fatalf("matching key rejected: %v", err)
	}
}
