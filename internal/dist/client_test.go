package dist

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"stsyn/internal/service"
)

const cannedResponse = `{"protocol":"Canned","engine":"explicit","schedule":[0,1],"verified":true}`

func cannedWorker(t *testing.T, h http.HandlerFunc) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(h)
	t.Cleanup(ts.Close)
	return ts
}

func fastClient(t *testing.T, cfg ClientConfig) *Client {
	t.Helper()
	if cfg.BackoffBase == 0 {
		cfg.BackoffBase = time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 5 * time.Millisecond
	}
	c, err := NewClient(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// A failing worker is retried on the next worker in rotation, and after
// enough consecutive failures it is cooled down and skipped.
func TestClientRotatesOnFailure(t *testing.T) {
	var badHits, goodHits atomic.Int64
	bad := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		badHits.Add(1)
		http.Error(w, `{"error":"boom"}`, http.StatusInternalServerError)
	})
	good := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		goodHits.Add(1)
		w.Write([]byte(cannedResponse)) //nolint:errcheck
	})
	c := fastClient(t, ClientConfig{
		Workers:          []string{bad.URL, good.URL},
		FailureThreshold: 1,
		Cooldown:         time.Hour,
	})

	resp, raw, err := c.Synthesize(context.Background(), &service.Request{Protocol: "tokenring"}, "req-1")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "Canned" || len(raw) == 0 {
		t.Errorf("resp = %+v", resp)
	}
	if badHits.Load() != 1 || goodHits.Load() != 1 {
		t.Errorf("hits bad=%d good=%d, want 1/1", badHits.Load(), goodHits.Load())
	}
	if got := c.Metrics().RequestRetries.Load(); got != 1 {
		t.Errorf("retries = %d, want 1", got)
	}
	if got := c.Metrics().WorkerCooldowns.Load(); got != 1 {
		t.Errorf("cooldowns = %d, want 1", got)
	}

	// The cooled worker is skipped: the next request goes straight to good.
	if _, _, err := c.Synthesize(context.Background(), &service.Request{Protocol: "tokenring"}, "req-2"); err != nil {
		t.Fatal(err)
	}
	if badHits.Load() != 1 {
		t.Errorf("cooled worker hit again: %d", badHits.Load())
	}
}

// A worker's Retry-After advice stretches the backoff before the retry.
func TestClientHonorsRetryAfter(t *testing.T) {
	var hits atomic.Int64
	w1 := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) == 1 {
			w.Header().Set("Retry-After", "1")
			http.Error(w, `{"error":"job queue full, retry later"}`, http.StatusServiceUnavailable)
			return
		}
		w.Write([]byte(cannedResponse)) //nolint:errcheck
	})
	c := fastClient(t, ClientConfig{Workers: []string{w1.URL}, MaxAttempts: 2})

	start := time.Now()
	_, _, err := c.Synthesize(context.Background(), &service.Request{Protocol: "tokenring"}, "req-ra")
	if err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 800*time.Millisecond {
		t.Errorf("retried after %s, want >= ~1s per the worker's Retry-After", elapsed)
	}
	if hits.Load() != 2 {
		t.Errorf("hits = %d, want 2", hits.Load())
	}
}

// A 422 is the worker's verdict on the schedule, not an infrastructure
// failure: no retry, and IsSynthesisFailure identifies it.
func TestClientSynthesisFailureIsPermanent(t *testing.T) {
	var hits atomic.Int64
	w1 := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"synthesis failed"}`, http.StatusUnprocessableEntity)
	})
	c := fastClient(t, ClientConfig{Workers: []string{w1.URL}, MaxAttempts: 5})

	_, _, err := c.Synthesize(context.Background(), &service.Request{Protocol: "gouda-acharya"}, "req-422")
	if !IsSynthesisFailure(err) {
		t.Fatalf("err = %v, want a synthesis failure", err)
	}
	if hits.Load() != 1 {
		t.Errorf("422 was retried: %d hits", hits.Load())
	}
	var we *WorkerError
	if !errors.As(err, &we) || we.Temporary() {
		t.Errorf("422 classified as temporary: %+v", we)
	}
}

// Other 4xx responses are permanent too — every worker would agree the
// request is wrong.
func TestClientBadRequestIsPermanent(t *testing.T) {
	var hits atomic.Int64
	w1 := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.Error(w, `{"error":"bad request body"}`, http.StatusBadRequest)
	})
	c := fastClient(t, ClientConfig{Workers: []string{w1.URL}, MaxAttempts: 5})
	_, _, err := c.Synthesize(context.Background(), &service.Request{}, "req-400")
	if err == nil || IsSynthesisFailure(err) {
		t.Fatalf("err = %v", err)
	}
	if hits.Load() != 1 {
		t.Errorf("400 was retried: %d hits", hits.Load())
	}
}

// Hedging: when the primary worker stalls, a second attempt on another
// worker answers first and wins.
func TestClientHedgesStragglers(t *testing.T) {
	release := make(chan struct{})
	slow := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		<-release
		w.Write([]byte(cannedResponse)) //nolint:errcheck
	})
	t.Cleanup(func() { close(release) })
	fast := cannedWorker(t, func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(cannedResponse)) //nolint:errcheck
	})
	c := fastClient(t, ClientConfig{
		Workers:    []string{slow.URL, fast.URL},
		HedgeAfter: 20 * time.Millisecond,
	})

	start := time.Now()
	resp, _, err := c.Synthesize(context.Background(), &service.Request{Protocol: "tokenring"}, "req-hedge")
	if err != nil {
		t.Fatal(err)
	}
	if resp.Protocol != "Canned" {
		t.Errorf("resp = %+v", resp)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("hedged request took %s", elapsed)
	}
	if got := c.Metrics().RequestHedges.Load(); got != 1 {
		t.Errorf("hedges = %d, want 1", got)
	}
	if got := c.Metrics().HedgeWins.Load(); got != 1 {
		t.Errorf("hedge wins = %d, want 1", got)
	}
}
