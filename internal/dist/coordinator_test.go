package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/service"
)

// newWorker spins up one real stsyn-serve worker over httptest, optionally
// wrapped by mw, and ties its shutdown to the test.
func newWorker(t *testing.T, mw func(http.Handler) http.Handler) *httptest.Server {
	t.Helper()
	svc := service.New(service.Config{Workers: 2})
	h := svc.Handler()
	if mw != nil {
		h = mw(h)
	}
	ts := httptest.NewServer(h)
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("worker shutdown: %v", err)
		}
	})
	return ts
}

func newTestCoordinator(t *testing.T, cfg Config, ccfg ClientConfig) *Coordinator {
	t.Helper()
	if ccfg.BackoffBase == 0 {
		ccfg.BackoffBase = time.Millisecond
	}
	if ccfg.BackoffMax == 0 {
		ccfg.BackoffMax = 10 * time.Millisecond
	}
	client, err := NewClient(ccfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Client = client
	cfg.Logf = t.Logf
	coord, err := NewCoordinator(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return coord
}

// reference runs the same schedule search single-node through
// core.TrySchedules and renders the winner exactly the way a worker would,
// so the distributed result can be compared byte for byte.
func reference(t *testing.T, req service.Request, schedules [][]int) (winSchedule []int, actionsJSON []byte) {
	t.Helper()
	sp, err := service.BuildSpec(&req)
	if err != nil {
		t.Fatal(err)
	}
	factory := func() (core.Engine, error) { return explicit.New(sp, 0) }
	best, _, err := core.TrySchedules(factory, core.Options{}, schedules, 4)
	if err != nil {
		t.Fatalf("single-node reference search failed: %v", err)
	}
	e, err := factory()
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{Schedule: best.Schedule})
	if err != nil {
		t.Fatal(err)
	}
	rr := req
	rr.Schedule = best.Schedule
	norm, err := service.Normalize(&rr, sp)
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(service.EncodeResult(e, res, norm, true).Actions)
	if err != nil {
		t.Fatal(err)
	}
	return best.Schedule, data
}

func winnerActions(t *testing.T, res *JobResult) []byte {
	t.Helper()
	data, err := json.Marshal(res.Winner.Actions)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// The acceptance criterion: a coordinator over two real workers picks the
// same winning schedule and byte-identical protocol as single-node
// TrySchedules, on all four case studies. tworing uses a two-schedule list
// whose first schedule genuinely fails synthesis, so the win must come
// from global index 1 after index 0's failure is proven.
func TestCoordinatorDifferential(t *testing.T) {
	w1 := newWorker(t, nil)
	w2 := newWorker(t, nil)
	workers := []string{w1.URL, w2.URL}

	rot8 := core.Rotations(8) // tworing k=4 has 2k processes
	cases := []struct {
		name   string
		req    service.Request
		source ScheduleSource
		scheds [][]int
	}{
		{"tokenring", service.Request{Protocol: "tokenring", K: 4, Dom: 3, Engine: "explicit"},
			ScheduleSource{Kind: "rotations"}, core.Rotations(4)},
		{"matching", service.Request{Protocol: "matching", K: 5, Engine: "explicit"},
			ScheduleSource{Kind: "rotations"}, core.Rotations(5)},
		{"coloring", service.Request{Protocol: "coloring", K: 5, Engine: "explicit"},
			ScheduleSource{Kind: "rotations"}, core.Rotations(5)},
		{"tworing", service.Request{Protocol: "tworing", K: 4, Dom: 3, Engine: "explicit", TimeoutMS: 60000},
			ScheduleSource{Kind: "list", List: [][]int{rot8[2], rot8[0]}},
			[][]int{rot8[2], rot8[0]}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.name == "tworing" && raceEnabled {
				t.Skip("TR² synthesis takes minutes under the race detector; covered by the un-instrumented suite")
			}
			wantSched, wantActions := reference(t, tc.req, tc.scheds)
			coord := newTestCoordinator(t,
				Config{ShardSize: 1, Concurrency: 2},
				ClientConfig{Workers: workers})
			res, err := coord.Run(context.Background(), Job{Request: tc.req, Source: tc.source})
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(res.WinSchedule, wantSched) {
				t.Fatalf("coordinator winner %v, single-node %v", res.WinSchedule, wantSched)
			}
			if !reflect.DeepEqual(res.Winner.Schedule, wantSched) {
				t.Errorf("winner response schedule %v, want %v", res.Winner.Schedule, wantSched)
			}
			if got := winnerActions(t, res); !bytes.Equal(got, wantActions) {
				t.Errorf("protocols differ:\ncoordinator: %s\nsingle-node: %s", got, wantActions)
			}
			if !res.Winner.Verified {
				t.Error("winner not verified")
			}
		})
	}
}

// The tworing list case again, but checking the index bookkeeping: index 0
// fails, index 1 wins, both shards complete.
func TestCoordinatorMixedOutcomeIndices(t *testing.T) {
	if raceEnabled {
		t.Skip("TR² synthesis takes minutes under the race detector; covered by the un-instrumented suite")
	}
	w1 := newWorker(t, nil)
	rot8 := core.Rotations(8)
	req := service.Request{Protocol: "tworing", K: 4, Dom: 3, Engine: "explicit", TimeoutMS: 60000}
	coord := newTestCoordinator(t,
		Config{ShardSize: 1, Concurrency: 2},
		ClientConfig{Workers: []string{w1.URL}})
	res, err := coord.Run(context.Background(), Job{
		Request: req,
		Source:  ScheduleSource{Kind: "list", List: [][]int{rot8[2], rot8[0]}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.WinIndex != 1 {
		t.Errorf("win index = %d, want 1 (index 0 fails synthesis)", res.WinIndex)
	}
	if res.Stats.ShardsCompleted != 2 {
		t.Errorf("shards completed = %d, want 2 (the failing shard must be proven)", res.Stats.ShardsCompleted)
	}
	if coord.Metrics().ScheduleFailures.Load() == 0 {
		t.Error("no schedule failure recorded for the failing rotation")
	}
}

// abortFirst returns a middleware that hard-aborts every synthesize
// request — the worker is dead from the coordinator's point of view.
func deadWorkerMW(hits *int64, mu *sync.Mutex) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/synthesize" {
				mu.Lock()
				*hits++
				mu.Unlock()
				panic(http.ErrAbortHandler)
			}
			next.ServeHTTP(w, r)
		})
	}
}

// Killing a worker mid-shard: with client-side retries disabled
// (MaxAttempts 1) the transport failure surfaces to the coordinator, which
// requeues the shard; the dead worker cools down and the job finishes on
// the survivor with the same byte-identical protocol as single-node
// TrySchedules.
func TestCoordinatorRequeuesOnWorkerDeath(t *testing.T) {
	var deadHits int64
	var mu sync.Mutex
	dead := newWorker(t, deadWorkerMW(&deadHits, &mu))
	alive := newWorker(t, nil)

	req := service.Request{Protocol: "tokenring", K: 4, Dom: 3, Engine: "explicit"}
	wantSched, wantActions := reference(t, req, core.Rotations(4))

	// One shard, one request in flight: the round-robin's first pick is the
	// dead worker, and with client-side retries disabled its death surfaces
	// to the coordinator mid-shard, forcing the requeue path.
	coord := newTestCoordinator(t,
		Config{ShardSize: 4, Concurrency: 1, ShardRetries: 3},
		ClientConfig{
			Workers:          []string{dead.URL, alive.URL},
			MaxAttempts:      1, // no client-side retry: force the coordinator requeue path
			FailureThreshold: 1,
			Cooldown:         time.Hour,
		})
	res, err := coord.Run(context.Background(), Job{Request: req, Source: ScheduleSource{Kind: "rotations"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.WinSchedule, wantSched) {
		t.Fatalf("winner %v, want %v", res.WinSchedule, wantSched)
	}
	if got := winnerActions(t, res); !bytes.Equal(got, wantActions) {
		t.Errorf("protocol differs from single-node reference")
	}
	mu.Lock()
	hits := deadHits
	mu.Unlock()
	if hits == 0 {
		t.Fatal("dead worker was never tried: requeue path not exercised")
	}
	if res.Stats.ShardRequeues == 0 {
		t.Error("no shard requeue recorded")
	}
	if coord.Metrics().WorkerCooldowns.Load() == 0 {
		t.Error("dead worker never cooled down")
	}
}

// recordingMW counts synthesize requests and records each requested
// schedule.
func recordingMW(mu *sync.Mutex, schedules *[][]int) func(http.Handler) http.Handler {
	return func(next http.Handler) http.Handler {
		return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Path == "/v1/synthesize" {
				body, _ := io.ReadAll(r.Body)
				r.Body.Close()
				var req service.Request
				if json.Unmarshal(body, &req) == nil {
					mu.Lock()
					*schedules = append(*schedules, req.Schedule)
					mu.Unlock()
				}
				r.Body = io.NopCloser(bytes.NewReader(body))
			}
			next.ServeHTTP(w, r)
		})
	}
}

// A restarted coordinator resumes from its journal: shards recorded as
// complete are never re-dispatched, and once the winner itself is in the
// journal a further restart needs zero worker requests and returns the
// byte-identical recorded response.
func TestCoordinatorResumesFromJournal(t *testing.T) {
	var mu sync.Mutex
	var requested [][]int
	w1 := newWorker(t, recordingMW(&mu, &requested))

	req := service.Request{Protocol: "tokenring", K: 4, Dom: 3, Engine: "explicit"}
	job := Job{Request: req, Source: ScheduleSource{Kind: "rotations"}}
	key := JobKey(&job)
	path := filepath.Join(t.TempDir(), "job.wal")

	// Fabricate the journal of a coordinator that died after completing
	// shard 0 (rotations 0 and 1) without a win.
	jn, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(&Record{Type: "job", JobKey: key, Source: job.Source.String(), ShardSize: 2}); err != nil {
		t.Fatal(err)
	}
	if err := jn.Append(&Record{Type: "shard", JobKey: key, Shard: 0, Start: 0, Tried: 2, WinIndex: -1}); err != nil {
		t.Fatal(err)
	}
	jn.Close()

	coord := newTestCoordinator(t,
		Config{ShardSize: 2, Concurrency: 2, JournalPath: path},
		ClientConfig{Workers: []string{w1.URL}})
	res, err := coord.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	// Shard 0 is trusted from the journal: the winner must come from shard
	// 1, i.e. rotation 2 at global index 2.
	if res.WinIndex != 2 {
		t.Fatalf("win index = %d, want 2 (shard 0 journaled as winless)", res.WinIndex)
	}
	if res.Stats.ShardsResumed != 1 {
		t.Errorf("shards resumed = %d, want 1", res.Stats.ShardsResumed)
	}
	mu.Lock()
	reqs := append([][]int(nil), requested...)
	mu.Unlock()
	if len(reqs) != 1 {
		t.Fatalf("worker saw %d requests %v, want 1 (only rotation 2)", len(reqs), reqs)
	}
	rot := core.Rotations(4)
	if !reflect.DeepEqual(reqs[0], rot[2]) {
		t.Errorf("worker asked for %v, want rotation 2 %v", reqs[0], rot[2])
	}

	// Restart again: the journal now proves the winner — zero requests,
	// byte-identical recorded response.
	coord2 := newTestCoordinator(t,
		Config{ShardSize: 2, Concurrency: 2, JournalPath: path},
		ClientConfig{Workers: []string{w1.URL}})
	res2, err := coord2.Run(context.Background(), job)
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stats.Requests != 0 {
		t.Errorf("resumed run issued %d requests, want 0", res2.Stats.Requests)
	}
	if res2.WinIndex != res.WinIndex || !reflect.DeepEqual(res2.WinSchedule, res.WinSchedule) {
		t.Errorf("resumed winner (%d, %v) != original (%d, %v)",
			res2.WinIndex, res2.WinSchedule, res.WinIndex, res.WinSchedule)
	}
	if !bytes.Equal(res2.WinnerRaw, res.WinnerRaw) {
		t.Error("resumed winner response not byte-identical to the recorded one")
	}
	mu.Lock()
	after := len(requested)
	mu.Unlock()
	if after != 1 {
		t.Errorf("worker saw %d requests after resume, want still 1", after)
	}
}

// A coordinator whose every schedule fails reports ErrNoWinner.
func TestCoordinatorAllSchedulesFail(t *testing.T) {
	w1 := newWorker(t, nil)
	coord := newTestCoordinator(t,
		Config{ShardSize: 2, Concurrency: 2},
		ClientConfig{Workers: []string{w1.URL}})
	_, err := coord.Run(context.Background(), Job{
		Request: service.Request{Protocol: "gouda-acharya", K: 4, Engine: "explicit"},
		Source:  ScheduleSource{Kind: "rotations"},
	})
	if !errors.Is(err, ErrNoWinner) {
		t.Fatalf("err = %v, want ErrNoWinner", err)
	}
}

// The coordinator's own observability endpoints.
func TestCoordinatorHandler(t *testing.T) {
	w1 := newWorker(t, nil)
	coord := newTestCoordinator(t, Config{}, ClientConfig{Workers: []string{w1.URL}})
	ts := httptest.NewServer(coord.Handler())
	t.Cleanup(ts.Close)

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %d", resp.StatusCode)
	}

	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"stsyn_dist_requests_total",
		"stsyn_dist_shards_completed_total",
		"stsyn_dist_shards_in_flight",
		"stsyn_dist_worker_up{worker=",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics lacks %q:\n%s", want, body)
		}
	}
}

// TestClusterSmoke is the CI cluster smoke test: two in-process workers,
// one dead from the start (every synthesize aborted mid-response), a
// journaled coordinator job that must complete on the survivor, and a
// replay that must be idempotent — zero further worker requests, identical
// winner.
func TestClusterSmoke(t *testing.T) {
	var deadHits int64
	var mu sync.Mutex
	dead := newWorker(t, deadWorkerMW(&deadHits, &mu))
	alive := newWorker(t, nil)

	path := filepath.Join(t.TempDir(), "smoke.wal")
	job := Job{
		Request: service.Request{Protocol: "tokenring", K: 4, Dom: 3, Engine: "explicit"},
		Source:  ScheduleSource{Kind: "rotations"},
	}
	run := func() *JobResult {
		coord := newTestCoordinator(t,
			Config{ShardSize: 1, Concurrency: 2, JournalPath: path},
			ClientConfig{Workers: []string{dead.URL, alive.URL}, FailureThreshold: 1, Cooldown: time.Hour})
		res, err := coord.Run(context.Background(), job)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	res := run()
	if res.WinIndex != 0 || !reflect.DeepEqual(res.WinSchedule, core.IdentitySchedule(4)) {
		t.Fatalf("winner = (%d, %v), want the identity at index 0", res.WinIndex, res.WinSchedule)
	}
	if !res.Winner.Verified {
		t.Fatal("winner not verified")
	}

	// Journal replay must validate cleanly and prove the winner.
	rep, err := ReplayJournal(path, JobKey(&job))
	if err != nil {
		t.Fatalf("journal replay: %v", err)
	}
	if rep.Job == nil {
		t.Fatal("journal has no job header")
	}

	res2 := run()
	if res2.Stats.Requests != 0 {
		t.Errorf("second run issued %d worker requests, want 0", res2.Stats.Requests)
	}
	if !bytes.Equal(res2.WinnerRaw, res.WinnerRaw) {
		t.Error("second run's winner not byte-identical")
	}
}

// Prune through the distributed tier: the coordinator quotients the
// rotation stream before sharding, so only one representative of the
// 5-coloring's single rotation orbit becomes a worker request, yet the
// winner and protocol are identical to the unpruned single-node search.
func TestCoordinatorPruneDifferential(t *testing.T) {
	w1 := newWorker(t, nil)
	w2 := newWorker(t, nil)

	req := service.Request{Protocol: "coloring", K: 5, Engine: "explicit", Prune: true}
	wantSched, wantActions := reference(t, req, core.Rotations(5))

	coord := newTestCoordinator(t,
		Config{ShardSize: 1, Concurrency: 2},
		ClientConfig{Workers: []string{w1.URL, w2.URL}})
	res, err := coord.Run(context.Background(), Job{Request: req, Source: ScheduleSource{Kind: "rotations"}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.WinSchedule, wantSched) {
		t.Fatalf("pruned coordinator winner %v, single-node %v", res.WinSchedule, wantSched)
	}
	if got := winnerActions(t, res); !bytes.Equal(got, wantActions) {
		t.Errorf("protocols differ:\npruned coordinator: %s\nsingle-node: %s", got, wantActions)
	}
	if !res.Winner.Verified {
		t.Error("winner not verified")
	}
	if res.Winner.Prune == nil || res.Winner.Prune.GroupSize != 5 {
		t.Errorf("winner prune stats = %+v, want group size 5", res.Winner.Prune)
	}
	// The five rotations are one orbit: one dispatched, four pruned.
	st := res.Stats
	if st.TotalSchedules != 5 || st.SchedulesTried != 1 || st.SchedulesPruned != 4 {
		t.Errorf("stats = %+v, want total=5 tried=1 pruned=4", st)
	}

	// The equivariance argument needs batch resolution; the coordinator
	// rejects the combination before contacting any worker.
	bad := req
	bad.Resolution = "incremental"
	if _, err := coord.Run(context.Background(), Job{Request: bad, Source: ScheduleSource{Kind: "rotations"}}); err == nil {
		t.Error("prune with incremental resolution was not rejected")
	}
}
