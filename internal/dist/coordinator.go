// Package dist is the distributed synthesis tier: a coordinator that
// shards a schedule search across a fleet of stsyn-serve workers, a
// resilient HTTP client for talking to them, and a durable job journal
// that makes the whole pipeline restartable.
//
// The paper's lightweight method is embarrassingly parallel at the
// schedule level — whether the heuristic succeeds depends on the recovery
// schedule, and schedules are independent — but the search space is k!.
// The coordinator streams schedules (never materializing the space), cuts
// them into fixed-size shards, and dispatches each shard's schedules one
// HTTP request at a time. The winner is deterministic and identical to
// single-node core.TrySchedules: the success with the lowest global
// schedule index. On a win at index w the coordinator stops dispatching
// shards starting beyond w and cancels the in-flight ones, but shards
// covering indices below w always run to completion — a lower-index
// success must still be found if it exists.
package dist

import (
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http"
	"strings"
	"sync"

	"stsyn/internal/core"
	"stsyn/internal/prune"
	"stsyn/internal/service"
)

// ErrNoWinner reports that every schedule in the search space failed.
var ErrNoWinner = errors.New("dist: synthesis failed on every schedule")

// ScheduleSource names a deterministic schedule search space. Coordinators
// and resumed coordinators derive identical spaces from the same source,
// so only the source — never the schedules — needs to be journaled.
type ScheduleSource struct {
	// Kind is "rotations" (default: the k cyclic rotations), "all" (full
	// k! enumeration, streamed), "sample" (N seeded random permutations),
	// or "list" (the explicit List).
	Kind string  `json:"kind"`
	N    int     `json:"n,omitempty"`
	Seed int64   `json:"seed,omitempty"`
	List [][]int `json:"list,omitempty"`
}

// stream returns the source's schedule stream for k processes plus the
// total schedule count (-1 when it overflows an int).
func (s *ScheduleSource) stream(k int) (func() ([]int, bool), int, error) {
	switch s.Kind {
	case "", "rotations":
		rot := core.Rotations(k)
		return core.StreamSchedules(rot), len(rot), nil
	case "all":
		total, ok := core.CountSchedules(k)
		if !ok {
			total = -1
		}
		return core.NewScheduleStream(k).Next, total, nil
	case "sample":
		if s.N <= 0 {
			return nil, 0, fmt.Errorf("dist: sample source needs n > 0, got %d", s.N)
		}
		scheds := core.SampleSchedules(k, s.N, rand.New(rand.NewSource(s.Seed)))
		return core.StreamSchedules(scheds), len(scheds), nil
	case "list":
		if len(s.List) == 0 {
			return nil, 0, errors.New("dist: list source has no schedules")
		}
		for i, sc := range s.List {
			if len(sc) != k {
				return nil, 0, fmt.Errorf("dist: list schedule %d has %d entries, want %d", i, len(sc), k)
			}
		}
		return core.StreamSchedules(s.List), len(s.List), nil
	default:
		return nil, 0, fmt.Errorf("dist: unknown schedule source %q (want rotations, all, sample or list)", s.Kind)
	}
}

// String renders the source for logs and the journal's job header.
func (s ScheduleSource) String() string {
	switch s.Kind {
	case "", "rotations":
		return "rotations"
	case "sample":
		return fmt.Sprintf("sample:%d:%d", s.N, s.Seed)
	case "list":
		return fmt.Sprintf("list:%d", len(s.List))
	default:
		return s.Kind
	}
}

// Job is one distributed schedule search: a synthesis request template
// (its Schedule and Fanout must be empty — the coordinator owns the
// schedule) plus the search space to shard.
type Job struct {
	Request service.Request `json:"request"`
	Source  ScheduleSource  `json:"source"`
}

// JobKey is the job's content-addressed identity: a journal written for
// one key refuses to resume a different job.
func JobKey(job *Job) string {
	b, _ := json.Marshal(job)
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// Config configures a Coordinator.
type Config struct {
	// Client talks to the worker fleet (required).
	Client *Client
	// ShardSize is the number of consecutive schedules per shard
	// (default 4).
	ShardSize int
	// Concurrency bounds the shards in flight (default: the worker count).
	// The schedule stream is consumed at most Concurrency×ShardSize ahead
	// of the slowest shard, so even "all" sources stay O(1) in memory.
	Concurrency int
	// ShardRetries is how many times a shard is requeued after a transport
	// failure that survived the client's own retries. Zero selects the
	// default of 2; pass a negative value to disable requeues entirely.
	ShardRetries int
	// JournalPath, when set, makes the job durable: shard completions are
	// logged there and a restarted coordinator resumes, skipping finished
	// shards.
	JournalPath string
	// Metrics, when non-nil, receives the coordinator's counters (pass the
	// client's to get one unified exposition).
	Metrics *Metrics
	// Logf, when non-nil, receives one line per shard lifecycle event.
	Logf func(format string, args ...interface{})
}

// RunStats summarizes one Run.
type RunStats struct {
	TotalSchedules  int // size of the search space, -1 if unknown
	SchedulesTried  int // schedules actually dispatched this run
	SchedulesPruned int // schedules dropped pre-shard by the orbit quotient
	Requests        int // logical worker requests issued this run
	ShardsCompleted int
	ShardsCancelled int
	ShardRequeues   int
	ShardsResumed   int // shards skipped thanks to the journal
}

// JobResult is a successful distributed search: the winning worker
// response (raw bytes exactly as the worker sent them, for byte-level
// comparison and the journal) and the winning schedule's global index.
type JobResult struct {
	Winner      *service.Response
	WinnerRaw   json.RawMessage
	WinIndex    int
	WinSchedule []int
	Stats       RunStats
}

// Coordinator shards schedule searches across a worker fleet. Safe for
// concurrent use; runs sharing a JournalPath must not overlap.
type Coordinator struct {
	cfg     Config
	metrics *Metrics
	logf    func(string, ...interface{})
}

// NewCoordinator validates cfg and builds a Coordinator.
func NewCoordinator(cfg Config) (*Coordinator, error) {
	if cfg.Client == nil {
		return nil, errors.New("dist: coordinator needs a worker client")
	}
	if cfg.ShardSize <= 0 {
		cfg.ShardSize = 4
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = len(cfg.Client.cfg.Workers)
	}
	if cfg.ShardRetries < 0 {
		cfg.ShardRetries = 0
	} else if cfg.ShardRetries == 0 {
		cfg.ShardRetries = 2
	}
	c := &Coordinator{cfg: cfg, metrics: cfg.Metrics, logf: cfg.Logf}
	if c.metrics == nil {
		c.metrics = cfg.Client.Metrics()
	}
	if c.logf == nil {
		c.logf = func(string, ...interface{}) {}
	}
	return c, nil
}

// Metrics returns the counters the coordinator publishes to.
func (c *Coordinator) Metrics() *Metrics { return c.metrics }

// runState is the shared mutable state of one Run.
type runState struct {
	mu           sync.Mutex
	bestIdx      int // lowest global schedule index that succeeded, -1 if none
	bestSchedule []int
	bestRaw      json.RawMessage
	bestResp     *service.Response // nil when the win came from the journal
	cancels      map[int]context.CancelFunc
	completed    map[int]bool
	failed       []error
	stats        RunStats
}

// Run executes one distributed schedule search to completion (or resume).
// The winner is deterministic: the lowest-index schedule that synthesizes
// successfully, byte-identical to what a single-node search over the same
// source would pick.
func (c *Coordinator) Run(ctx context.Context, job Job) (*JobResult, error) {
	if job.Request.Fanout {
		return nil, errors.New("dist: request must not set fanout: the coordinator owns the schedule search")
	}
	if len(job.Request.Schedule) > 0 {
		return nil, errors.New("dist: request must not set a schedule: the coordinator owns the schedule search")
	}
	sp, err := service.BuildSpec(&job.Request)
	if err != nil {
		return nil, fmt.Errorf("dist: bad job request: %w", err)
	}
	k := len(sp.Procs)
	next, total, err := job.Source.stream(k)
	if err != nil {
		return nil, err
	}

	// Prune-enabled jobs quotient the stream before sharding: orbit-mates
	// of an already-emitted schedule never become worker requests. Global
	// indices then number the quotiented stream — consistently across
	// resumes, because the group derivation is deterministic and Prune is
	// part of the JobKey, so a journal never mixes pruned and unpruned
	// numbering. Workers see Prune on every request and memo locally.
	var q *prune.QuotientStream
	if job.Request.Prune {
		if strings.EqualFold(job.Request.Resolution, "incremental") {
			return nil, errors.New("dist: prune requires batch resolution: incremental cycle resolution is not equivariant under the symmetry group")
		}
		lexOrdered := job.Source.Kind == "" || job.Source.Kind == "rotations" || job.Source.Kind == "all"
		q = prune.NewQuotientStream(prune.DeriveGroup(sp), next, lexOrdered)
		next = q.Next
	}
	key := JobKey(&job)
	shardSize := c.cfg.ShardSize

	st := &runState{
		bestIdx:   -1,
		cancels:   make(map[int]context.CancelFunc),
		completed: make(map[int]bool),
		stats:     RunStats{TotalSchedules: total},
	}

	var jn *Journal
	replayed := map[int]*Record{}
	if c.cfg.JournalPath != "" {
		rep, err := ReplayJournal(c.cfg.JournalPath, key)
		if err != nil {
			return nil, err
		}
		if rep.Job != nil && rep.Job.ShardSize != shardSize {
			return nil, fmt.Errorf("dist: journal was written with shard size %d, configured %d",
				rep.Job.ShardSize, shardSize)
		}
		replayed = rep.Shards
		jn, err = OpenJournal(c.cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		defer jn.Close()
		if rep.Job == nil {
			if err := jn.Append(&Record{Type: "job", JobKey: key, Source: job.Source.String(), ShardSize: shardSize}); err != nil {
				return nil, err
			}
		}
	}

	// Fold replayed shard wins into the initial best, and take the fast
	// path — zero worker requests — when the journal already proves the
	// winner: a win at index w with every shard covering indices ≤ w
	// complete.
	for _, rec := range replayed {
		if rec.WinIndex >= 0 && (st.bestIdx < 0 || rec.WinIndex < st.bestIdx) {
			st.bestIdx = rec.WinIndex
			st.bestSchedule = rec.WinSchedule
			st.bestRaw = rec.Response
		}
	}
	if st.bestIdx >= 0 {
		complete := true
		for s := 0; s <= st.bestIdx/shardSize; s++ {
			if _, ok := replayed[s]; !ok {
				complete = false
				break
			}
		}
		if complete {
			st.stats.ShardsResumed = st.bestIdx/shardSize + 1
			c.metrics.ShardsResumed.Add(int64(st.stats.ShardsResumed))
			c.logf("dist: job %.12s resumed: winner at index %d proven by journal, no work left",
				key, st.bestIdx)
			return c.finish(st)
		}
	}

	runCtx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	sem := make(chan struct{}, c.cfg.Concurrency)
	var wg sync.WaitGroup
	for shard := 0; ; shard++ {
		start := shard * shardSize
		st.mu.Lock()
		b := st.bestIdx
		st.mu.Unlock()
		if (b >= 0 && start > b) || runCtx.Err() != nil {
			break
		}
		// The slot is taken before the shard's schedules are pulled, so the
		// stream is never consumed more than Concurrency shards ahead.
		sem <- struct{}{}
		scheds := make([][]int, 0, shardSize)
		for len(scheds) < shardSize {
			s, ok := next()
			if !ok {
				break
			}
			scheds = append(scheds, s)
		}
		if len(scheds) == 0 {
			<-sem
			break
		}
		if _, ok := replayed[shard]; ok {
			<-sem
			st.mu.Lock()
			st.completed[shard] = true
			st.stats.ShardsResumed++
			st.mu.Unlock()
			c.metrics.ShardsResumed.Add(1)
			continue
		}
		shardCtx, cancelShard := context.WithCancel(runCtx)
		st.mu.Lock()
		st.cancels[shard] = cancelShard
		st.mu.Unlock()
		wg.Add(1)
		go func(shard, start int, scheds [][]int) {
			defer wg.Done()
			defer func() { <-sem }()
			c.runShard(shardCtx, st, jn, key, job.Request, shard, start, scheds)
			st.mu.Lock()
			delete(st.cancels, shard)
			st.mu.Unlock()
			cancelShard()
		}(shard, start, scheds)
	}
	wg.Wait()

	if q != nil {
		pruned := q.Stats().Pruned
		st.mu.Lock()
		st.stats.SchedulesPruned = pruned
		st.mu.Unlock()
		c.metrics.SchedulesPruned.Add(int64(pruned))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return c.finish(st)
}

// finish validates the run's outcome and builds the result.
func (c *Coordinator) finish(st *runState) (*JobResult, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bestIdx < 0 {
		if len(st.failed) > 0 {
			return nil, fmt.Errorf("dist: job incomplete: %w", errors.Join(st.failed...))
		}
		return nil, fmt.Errorf("%w (%d schedules tried)", ErrNoWinner, st.stats.SchedulesTried)
	}
	// Determinism check: every shard covering indices at or below the
	// winner must have completed, or a lower-index success could exist.
	// (st.completed is empty on the journal fast path — the caller proved
	// completeness from the replay before calling.)
	if len(st.completed) > 0 || len(st.failed) > 0 {
		for s := 0; s <= st.bestIdx/c.cfg.ShardSize; s++ {
			if !st.completed[s] {
				return nil, fmt.Errorf("dist: shard %d did not complete; winner at index %d is not provably lowest: %w",
					s, st.bestIdx, errors.Join(st.failed...))
			}
		}
	}
	if st.bestResp == nil {
		var r service.Response
		if err := json.Unmarshal(st.bestRaw, &r); err != nil {
			return nil, fmt.Errorf("dist: journaled winner response is unreadable: %w", err)
		}
		st.bestResp = &r
	}
	return &JobResult{
		Winner:      st.bestResp,
		WinnerRaw:   st.bestRaw,
		WinIndex:    st.bestIdx,
		WinSchedule: st.bestSchedule,
		Stats:       st.stats,
	}, nil
}

// runShard dispatches one shard's schedules in order, one request each.
// Synthesis failures (422) advance to the next schedule; transport
// failures requeue the shard from its current position up to ShardRetries
// times. The shard journals its completion — full trial or a win — but a
// shard that stops early because a lower global index already won is
// cancelled, not completed, and is never journaled (its untried schedules
// would otherwise look exhausted on resume).
func (c *Coordinator) runShard(ctx context.Context, st *runState, jn *Journal, key string, base service.Request, shard, start int, scheds [][]int) {
	c.metrics.ShardsInFlight.Add(1)
	defer c.metrics.ShardsInFlight.Add(-1)

	cancelled := func() {
		st.mu.Lock()
		st.stats.ShardsCancelled++
		st.mu.Unlock()
		c.metrics.ShardsCancelled.Add(1)
		c.logf("dist: shard %d cancelled", shard)
	}

	requeues := 0
	win := -1
	var winSched []int
	var winRaw []byte
	var winResp *service.Response
	i := 0
	for i < len(scheds) {
		gi := start + i
		st.mu.Lock()
		b := st.bestIdx
		st.mu.Unlock()
		if b >= 0 && b < gi {
			cancelled()
			return
		}
		if ctx.Err() != nil {
			cancelled()
			return
		}
		req := base
		req.Schedule = scheds[i]
		reqID := fmt.Sprintf("%.8s-s%d-g%d", key, shard, gi)
		st.mu.Lock()
		st.stats.Requests++
		st.stats.SchedulesTried++
		st.mu.Unlock()
		c.metrics.SchedulesTried.Add(1)
		resp, raw, err := c.cfg.Client.Synthesize(ctx, &req, reqID)
		if err == nil {
			c.metrics.SchedulesSucceeded.Add(1)
			win, winSched, winRaw, winResp = gi, scheds[i], raw, resp
			i++
			c.observeWin(st, gi, winSched, winRaw, winResp)
			break // later indices in this shard cannot beat gi
		}
		if IsSynthesisFailure(err) {
			c.metrics.ScheduleFailures.Add(1)
			i++
			continue
		}
		if ctx.Err() != nil {
			cancelled()
			return
		}
		// Transport-level failure that survived the client's retries:
		// requeue the shard from this schedule.
		if requeues < c.cfg.ShardRetries {
			requeues++
			st.mu.Lock()
			st.stats.ShardRequeues++
			st.mu.Unlock()
			c.metrics.ShardRequeues.Add(1)
			c.logf("dist: shard %d requeued (%d/%d) at index %d after: %v",
				shard, requeues, c.cfg.ShardRetries, gi, err)
			continue
		}
		st.mu.Lock()
		st.failed = append(st.failed, fmt.Errorf("shard %d gave up at index %d: %w", shard, gi, err))
		st.mu.Unlock()
		c.logf("dist: shard %d failed permanently at index %d: %v", shard, gi, err)
		return
	}

	rec := &Record{
		Type: "shard", JobKey: key, Shard: shard, Start: start, Tried: i,
		WinIndex: win, WinSchedule: winSched, Response: winRaw,
	}
	if jn != nil {
		if err := jn.Append(rec); err != nil {
			st.mu.Lock()
			st.failed = append(st.failed, fmt.Errorf("shard %d: %w", shard, err))
			st.mu.Unlock()
			return
		}
	}
	st.mu.Lock()
	st.completed[shard] = true
	st.stats.ShardsCompleted++
	st.mu.Unlock()
	c.metrics.ShardsCompleted.Add(1)
	if win >= 0 {
		c.logf("dist: shard %d complete: win at index %d schedule %v", shard, win, winSched)
	} else {
		c.logf("dist: shard %d complete: all %d schedules failed", shard, i)
	}
}

// observeWin folds a shard's success into the global best and cancels
// in-flight shards that can no longer contain the winner.
func (c *Coordinator) observeWin(st *runState, gi int, sched []int, raw []byte, resp *service.Response) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.bestIdx >= 0 && st.bestIdx <= gi {
		return
	}
	st.bestIdx = gi
	st.bestSchedule = sched
	st.bestRaw = raw
	st.bestResp = resp
	for shard, cancel := range st.cancels {
		if shard*c.cfg.ShardSize > gi {
			cancel()
		}
	}
}

// Handler returns the coordinator's observability endpoints: /healthz and
// /metrics (shard lifecycle counters plus per-worker health gauges).
func (c *Coordinator) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintln(w, `{"status":"ok"}`)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		gauges := map[string]float64{}
		for _, ws := range c.cfg.Client.Workers() {
			up := 1.0
			if ws.CoolingFor > 0 {
				up = 0
			}
			gauges[fmt.Sprintf("stsyn_dist_worker_up{worker=%q}", ws.URL)] = up
			gauges[fmt.Sprintf("stsyn_dist_worker_consecutive_failures{worker=%q}", ws.URL)] = float64(ws.Fails)
		}
		c.metrics.WritePrometheus(w, gauges)
	})
	return mux
}
