package dist

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"stsyn/internal/service"
	"stsyn/pkg/client"
	"stsyn/pkg/stsynerr"
)

// ClientConfig configures the resilient worker client. Zero values select
// the documented defaults. The retry/backoff/rotation machinery itself
// lives in the published pkg/client; this type keeps the coordinator's
// configuration surface and its metrics/log plumbing.
type ClientConfig struct {
	// Workers are the base URLs of the stsyn-serve workers (e.g.
	// "http://10.0.0.5:8080"). At least one is required.
	Workers []string
	// HTTPClient is the transport (default http.DefaultClient). The client
	// applies RequestTimeout per attempt itself; the http.Client's own
	// Timeout should stay 0.
	HTTPClient *http.Client
	// RequestTimeout bounds one HTTP attempt (default 2m — synthesis jobs
	// are slow by design).
	RequestTimeout time.Duration
	// MaxAttempts bounds the attempts per logical request, first try
	// included (default 2×len(Workers); 1 disables retries).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 50ms and 2s); jitter of ±50% is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryAfterMax caps how long a worker's Retry-After advice is honored
	// (default 5s).
	RetryAfterMax time.Duration
	// FailureThreshold is the number of consecutive failures after which a
	// worker is cooled down — skipped by the rotation — for Cooldown
	// (defaults 3 and 5s). The cooled worker is still used when every
	// worker is cooling, so the client never deadlocks itself.
	FailureThreshold int
	Cooldown         time.Duration
	// HedgeAfter, when positive, launches a second attempt on another
	// worker if the first has not answered within this duration, keeping
	// whichever finishes first (straggler hedging). Zero disables hedging.
	HedgeAfter time.Duration
	// Tenant, when set, names the tenant bucket the workers account these
	// requests to (the X-Stsyn-Tenant header of per-tenant admission).
	Tenant string
	// Metrics, when non-nil, receives the client's counters.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per retry/hedge/cooldown event.
	Logf func(format string, args ...interface{})
}

// WorkerError is a failed worker interaction: a transport failure (Status
// 0) or a non-200 worker response.
type WorkerError struct {
	Worker     string
	Status     int // 0 for transport errors
	Message    string
	RetryAfter time.Duration // parsed Retry-After advice, 0 if absent
	Err        error
}

func (e *WorkerError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("worker %s: %v", e.Worker, e.Err)
	}
	return fmt.Sprintf("worker %s: HTTP %d: %s", e.Worker, e.Status, e.Message)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Temporary reports whether retrying elsewhere could help: transport
// failures and 429/5xx are retryable, other 4xx are not (the request
// itself is wrong, every worker will agree).
func (e *WorkerError) Temporary() bool {
	return e.Status == 0 || e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// IsSynthesisFailure reports whether err is a worker's 422 — the heuristic
// failed on that schedule. That is a result, not an infrastructure
// failure: the coordinator moves to the next schedule.
func IsSynthesisFailure(err error) bool {
	var we *WorkerError
	return errors.As(err, &we) && we.Status == http.StatusUnprocessableEntity
}

// Client fans synthesis requests out to a fleet of stsyn-serve workers
// with per-attempt timeouts, capped exponential backoff with jitter,
// Retry-After honoring, failure-aware worker rotation, and optional
// straggler hedging. The resilience core is pkg/client's middleware
// stack; hedging and the coordinator's error vocabulary stay here. Safe
// for concurrent use.
type Client struct {
	cfg     ClientConfig
	inner   *client.Client
	metrics *Metrics
	logf    func(string, ...interface{})
}

// NewClient validates cfg and builds a Client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 * len(cfg.Workers)
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	c := &Client{cfg: cfg, metrics: cfg.Metrics, logf: cfg.Logf}
	if c.metrics == nil {
		c.metrics = &Metrics{}
	}
	if c.logf == nil {
		c.logf = func(string, ...interface{}) {}
	}
	inner, err := client.New(client.Config{
		Endpoints:        cfg.Workers,
		HTTPClient:       cfg.HTTPClient,
		AttemptTimeout:   cfg.RequestTimeout,
		MaxAttempts:      cfg.MaxAttempts,
		BackoffBase:      cfg.BackoffBase,
		BackoffMax:       cfg.BackoffMax,
		RetryAfterMax:    cfg.RetryAfterMax,
		FailureThreshold: cfg.FailureThreshold,
		Cooldown:         cfg.Cooldown,
		Tenant:           cfg.Tenant,
		Observer: &client.Observer{
			OnAttempt: func(string) { c.metrics.RequestsTotal.Add(1) },
			OnRetry: func(attempt int, wait time.Duration, last error) {
				c.metrics.RequestRetries.Add(1)
				c.logf("dist: retrying (attempt %d/%d) in %s after: %v", attempt, cfg.MaxAttempts, wait, last)
			},
			OnCooldown: func(worker string, fails int, d time.Duration) {
				c.metrics.WorkerCooldowns.Add(1)
				c.logf("dist: worker %s cooling down for %s after %d consecutive failures", worker, d, fails)
			},
		},
	})
	if err != nil {
		return nil, err
	}
	c.inner = inner
	return c, nil
}

// Metrics returns the counters the client publishes to.
func (c *Client) Metrics() *Metrics { return c.metrics }

// WorkerStatus is one worker's health snapshot.
type WorkerStatus struct {
	URL        string
	Fails      int           // consecutive failures
	CoolingFor time.Duration // 0 when healthy
}

// Workers snapshots each worker's health.
func (c *Client) Workers() []WorkerStatus {
	eps := c.inner.Endpoints()
	out := make([]WorkerStatus, len(eps))
	for i, ep := range eps {
		out[i] = WorkerStatus{URL: ep.URL, Fails: ep.Fails, CoolingFor: ep.CoolingFor}
	}
	return out
}

// Synthesize runs one synthesis request against the fleet, retrying and —
// when configured — hedging. reqID is the X-Request-ID shared by every
// attempt of this logical request, so worker logs join across retries. It
// returns the decoded response plus the raw response bytes (for the
// journal). A 422 comes back as a *WorkerError without further retries;
// see IsSynthesisFailure.
func (c *Client) Synthesize(ctx context.Context, req *service.Request, reqID string) (*service.Response, []byte, error) {
	if c.cfg.HedgeAfter <= 0 {
		return c.do(ctx, req, reqID)
	}
	type outcome struct {
		resp  *service.Response
		raw   []byte
		err   error
		hedge bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, 2)
	launch := func(isHedge bool) {
		go func() {
			resp, raw, err := c.do(hctx, req, reqID)
			results <- outcome{resp, raw, err, isHedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	inFlight := 1
	hedged := false
	var firstErr error
	for {
		select {
		case out := <-results:
			if out.err == nil || !isTemporary(out.err) {
				if out.err == nil && out.hedge {
					c.metrics.HedgeWins.Add(1)
				}
				return out.resp, out.raw, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inFlight--; inFlight == 0 {
				return nil, nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				c.metrics.RequestHedges.Add(1)
				c.logf("dist: hedging straggler request %s after %s", reqID, c.cfg.HedgeAfter)
				launch(true)
				inFlight++
			}
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

func isTemporary(err error) bool {
	var we *WorkerError
	if errors.As(err, &we) {
		return we.Temporary()
	}
	return false
}

// do runs one logical request through the published client and translates
// its typed errors into the coordinator's worker-error vocabulary.
func (c *Client) do(ctx context.Context, req *service.Request, reqID string) (*service.Response, []byte, error) {
	resp, raw, err := c.inner.SynthesizeRaw(ctx, req, reqID)
	if err != nil {
		return nil, nil, c.workerError(err, reqID)
	}
	return resp, raw, nil
}

// workerError maps a pkg/client failure onto *WorkerError: a permanent
// error response converts directly; retry exhaustion keeps the attempt
// count in the message with the last worker's error as the cause.
func (c *Client) workerError(err error, reqID string) error {
	var ce *client.Error
	if !errors.As(err, &ce) {
		// Context cancellation or a malformed-response failure from the
		// typed layer: pass through untouched.
		return err
	}
	we := &WorkerError{
		Worker:     ce.Endpoint,
		Status:     ce.Status,
		RetryAfter: ce.RetryAfter,
		Err:        ce.Err,
	}
	if ce.Status != 0 {
		var se *stsynerr.Error
		if errors.As(ce.Err, &se) {
			we.Message = se.Error()
		}
	}
	if errors.Is(err, ce) && err != error(ce) {
		// The client exhausted its attempts; keep that context.
		return fmt.Errorf("dist: request %s failed after %d attempts: %w", reqID, c.cfg.MaxAttempts, we)
	}
	return we
}
