package dist

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"stsyn/internal/service"
)

// ClientConfig configures the resilient worker client. Zero values select
// the documented defaults.
type ClientConfig struct {
	// Workers are the base URLs of the stsyn-serve workers (e.g.
	// "http://10.0.0.5:8080"). At least one is required.
	Workers []string
	// HTTPClient is the transport (default http.DefaultClient). The client
	// applies RequestTimeout per attempt itself; the http.Client's own
	// Timeout should stay 0.
	HTTPClient *http.Client
	// RequestTimeout bounds one HTTP attempt (default 2m — synthesis jobs
	// are slow by design).
	RequestTimeout time.Duration
	// MaxAttempts bounds the attempts per logical request, first try
	// included (default 2×len(Workers); 1 disables retries).
	MaxAttempts int
	// BackoffBase and BackoffMax shape the capped exponential backoff
	// between attempts (defaults 50ms and 2s); jitter of ±50% is applied.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// RetryAfterMax caps how long a worker's Retry-After advice is honored
	// (default 5s).
	RetryAfterMax time.Duration
	// FailureThreshold is the number of consecutive failures after which a
	// worker is cooled down — skipped by the rotation — for Cooldown
	// (defaults 3 and 5s). The cooled worker is still used when every
	// worker is cooling, so the client never deadlocks itself.
	FailureThreshold int
	Cooldown         time.Duration
	// HedgeAfter, when positive, launches a second attempt on another
	// worker if the first has not answered within this duration, keeping
	// whichever finishes first (straggler hedging). Zero disables hedging.
	HedgeAfter time.Duration
	// Metrics, when non-nil, receives the client's counters.
	Metrics *Metrics
	// Logf, when non-nil, receives one line per retry/hedge/cooldown event.
	Logf func(format string, args ...interface{})
}

// WorkerError is a failed worker interaction: a transport failure (Status
// 0) or a non-200 worker response.
type WorkerError struct {
	Worker     string
	Status     int // 0 for transport errors
	Message    string
	RetryAfter time.Duration // parsed Retry-After advice, 0 if absent
	Err        error
}

func (e *WorkerError) Error() string {
	if e.Status == 0 {
		return fmt.Sprintf("worker %s: %v", e.Worker, e.Err)
	}
	return fmt.Sprintf("worker %s: HTTP %d: %s", e.Worker, e.Status, e.Message)
}

func (e *WorkerError) Unwrap() error { return e.Err }

// Temporary reports whether retrying elsewhere could help: transport
// failures and 429/5xx are retryable, other 4xx are not (the request
// itself is wrong, every worker will agree).
func (e *WorkerError) Temporary() bool {
	return e.Status == 0 || e.Status == http.StatusTooManyRequests || e.Status >= 500
}

// IsSynthesisFailure reports whether err is a worker's 422 — the heuristic
// failed on that schedule. That is a result, not an infrastructure
// failure: the coordinator moves to the next schedule.
func IsSynthesisFailure(err error) bool {
	var we *WorkerError
	return errors.As(err, &we) && we.Status == http.StatusUnprocessableEntity
}

type workerState struct {
	fails     int // consecutive failures
	coolUntil time.Time
}

// Client fans synthesis requests out to a fleet of stsyn-serve workers
// with per-attempt timeouts, capped exponential backoff with jitter,
// Retry-After honoring, failure-aware worker rotation, and optional
// straggler hedging. Safe for concurrent use.
type Client struct {
	cfg     ClientConfig
	metrics *Metrics
	logf    func(string, ...interface{})

	mu    sync.Mutex
	rr    int // round-robin cursor
	state []workerState
	rand  *rand.Rand
}

// NewClient validates cfg and builds a Client.
func NewClient(cfg ClientConfig) (*Client, error) {
	if len(cfg.Workers) == 0 {
		return nil, errors.New("dist: no workers configured")
	}
	if cfg.HTTPClient == nil {
		cfg.HTTPClient = http.DefaultClient
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 2 * time.Minute
	}
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 2 * len(cfg.Workers)
	}
	if cfg.BackoffBase <= 0 {
		cfg.BackoffBase = 50 * time.Millisecond
	}
	if cfg.BackoffMax <= 0 {
		cfg.BackoffMax = 2 * time.Second
	}
	if cfg.RetryAfterMax <= 0 {
		cfg.RetryAfterMax = 5 * time.Second
	}
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 3
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = 5 * time.Second
	}
	c := &Client{
		cfg:     cfg,
		metrics: cfg.Metrics,
		logf:    cfg.Logf,
		state:   make([]workerState, len(cfg.Workers)),
		rand:    rand.New(rand.NewSource(time.Now().UnixNano())),
	}
	if c.metrics == nil {
		c.metrics = &Metrics{}
	}
	if c.logf == nil {
		c.logf = func(string, ...interface{}) {}
	}
	return c, nil
}

// Metrics returns the counters the client publishes to.
func (c *Client) Metrics() *Metrics { return c.metrics }

// WorkerStatus is one worker's health snapshot.
type WorkerStatus struct {
	URL        string
	Fails      int           // consecutive failures
	CoolingFor time.Duration // 0 when healthy
}

// Workers snapshots each worker's health.
func (c *Client) Workers() []WorkerStatus {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	out := make([]WorkerStatus, len(c.cfg.Workers))
	for i, u := range c.cfg.Workers {
		out[i] = WorkerStatus{URL: u, Fails: c.state[i].fails}
		if d := c.state[i].coolUntil.Sub(now); d > 0 {
			out[i].CoolingFor = d
		}
	}
	return out
}

// pick returns the next worker in rotation, skipping ones in failure
// cooldown; when every worker is cooling it falls back to plain rotation.
func (c *Client) pick(exclude int) (int, string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	now := time.Now()
	n := len(c.cfg.Workers)
	for scan := 0; scan < n; scan++ {
		i := c.rr % n
		c.rr++
		if i == exclude && n > 1 {
			continue
		}
		if now.Before(c.state[i].coolUntil) {
			continue
		}
		return i, c.cfg.Workers[i]
	}
	i := c.rr % n
	c.rr++
	return i, c.cfg.Workers[i]
}

func (c *Client) markSuccess(i int) {
	c.mu.Lock()
	c.state[i].fails = 0
	c.state[i].coolUntil = time.Time{}
	c.mu.Unlock()
}

func (c *Client) markFailure(i int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.state[i].fails++
	if c.state[i].fails >= c.cfg.FailureThreshold && time.Now().After(c.state[i].coolUntil) {
		c.state[i].coolUntil = time.Now().Add(c.cfg.Cooldown)
		c.metrics.WorkerCooldowns.Add(1)
		c.logf("dist: worker %s cooling down for %s after %d consecutive failures",
			c.cfg.Workers[i], c.cfg.Cooldown, c.state[i].fails)
	}
}

// backoff computes the wait before retry number attempt (1-based), honoring
// the failed worker's Retry-After advice when it is larger.
func (c *Client) backoff(attempt int, last error) time.Duration {
	d := c.cfg.BackoffBase << uint(attempt-1)
	if d > c.cfg.BackoffMax || d <= 0 {
		d = c.cfg.BackoffMax
	}
	c.mu.Lock()
	jitter := 0.5 + c.rand.Float64() // ±50%
	c.mu.Unlock()
	d = time.Duration(float64(d) * jitter)
	var we *WorkerError
	if errors.As(last, &we) && we.RetryAfter > d {
		d = we.RetryAfter
		if d > c.cfg.RetryAfterMax {
			d = c.cfg.RetryAfterMax
		}
	}
	return d
}

// Synthesize runs one synthesis request against the fleet, retrying and —
// when configured — hedging. reqID is the X-Request-ID shared by every
// attempt of this logical request, so worker logs join across retries. It
// returns the decoded response plus the raw response bytes (for the
// journal). A 422 comes back as a *WorkerError without further retries;
// see IsSynthesisFailure.
func (c *Client) Synthesize(ctx context.Context, req *service.Request, reqID string) (*service.Response, []byte, error) {
	if c.cfg.HedgeAfter <= 0 {
		return c.do(ctx, req, reqID)
	}
	type outcome struct {
		resp  *service.Response
		raw   []byte
		err   error
		hedge bool
	}
	hctx, cancel := context.WithCancel(ctx)
	defer cancel()
	results := make(chan outcome, 2)
	launch := func(isHedge bool) {
		go func() {
			resp, raw, err := c.do(hctx, req, reqID)
			results <- outcome{resp, raw, err, isHedge}
		}()
	}
	launch(false)
	timer := time.NewTimer(c.cfg.HedgeAfter)
	defer timer.Stop()
	inFlight := 1
	hedged := false
	var firstErr error
	for {
		select {
		case out := <-results:
			if out.err == nil || !isTemporary(out.err) {
				if out.err == nil && out.hedge {
					c.metrics.HedgeWins.Add(1)
				}
				return out.resp, out.raw, out.err
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inFlight--; inFlight == 0 {
				return nil, nil, firstErr
			}
		case <-timer.C:
			if !hedged {
				hedged = true
				c.metrics.RequestHedges.Add(1)
				c.logf("dist: hedging straggler request %s after %s", reqID, c.cfg.HedgeAfter)
				launch(true)
				inFlight++
			}
		case <-ctx.Done():
			return nil, nil, ctx.Err()
		}
	}
}

func isTemporary(err error) bool {
	var we *WorkerError
	if errors.As(err, &we) {
		return we.Temporary()
	}
	return false
}

// do is the retry loop: rotate workers, back off between attempts, stop on
// success, permanent errors, context cancellation, or attempt exhaustion.
func (c *Client) do(ctx context.Context, req *service.Request, reqID string) (*service.Response, []byte, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, nil, fmt.Errorf("dist: marshal request: %w", err)
	}
	var last error
	lastWorker := -1
	for attempt := 1; attempt <= c.cfg.MaxAttempts; attempt++ {
		if attempt > 1 {
			c.metrics.RequestRetries.Add(1)
			wait := c.backoff(attempt-1, last)
			c.logf("dist: request %s retrying (attempt %d/%d) in %s after: %v",
				reqID, attempt, c.cfg.MaxAttempts, wait, last)
			select {
			case <-time.After(wait):
			case <-ctx.Done():
				return nil, nil, ctx.Err()
			}
		}
		if err := ctx.Err(); err != nil {
			return nil, nil, err
		}
		i, worker := c.pick(lastWorker)
		lastWorker = i
		resp, raw, err := c.once(ctx, worker, body, reqID)
		if err == nil {
			c.markSuccess(i)
			return resp, raw, nil
		}
		if !isTemporary(err) || ctx.Err() != nil {
			// The request itself is bad (or a 422 synthesis verdict), or the
			// caller is gone: no point rotating.
			return nil, nil, err
		}
		c.markFailure(i)
		last = err
	}
	return nil, nil, fmt.Errorf("dist: request %s failed after %d attempts: %w", reqID, c.cfg.MaxAttempts, last)
}

// once sends one HTTP attempt to one worker.
func (c *Client) once(ctx context.Context, worker string, body []byte, reqID string) (*service.Response, []byte, error) {
	c.metrics.RequestsTotal.Add(1)
	actx, cancel := context.WithTimeout(ctx, c.cfg.RequestTimeout)
	defer cancel()
	hreq, err := http.NewRequestWithContext(actx, http.MethodPost, worker+"/v1/synthesize", bytes.NewReader(body))
	if err != nil {
		return nil, nil, &WorkerError{Worker: worker, Err: err}
	}
	hreq.Header.Set("Content-Type", "application/json")
	hreq.Header.Set(service.RequestIDHeader, reqID)
	hresp, err := c.cfg.HTTPClient.Do(hreq)
	if err != nil {
		return nil, nil, &WorkerError{Worker: worker, Err: err}
	}
	defer hresp.Body.Close()
	raw, err := io.ReadAll(io.LimitReader(hresp.Body, 64<<20))
	if err != nil {
		return nil, nil, &WorkerError{Worker: worker, Err: fmt.Errorf("reading response: %w", err)}
	}
	// The worker pretty-prints its body; the journal stores the response as
	// a json.RawMessage, which Marshal compacts. Compact here so a live
	// response and its journal replay are byte-identical.
	if compacted := new(bytes.Buffer); json.Compact(compacted, raw) == nil {
		raw = compacted.Bytes()
	}
	if hresp.StatusCode != http.StatusOK {
		we := &WorkerError{Worker: worker, Status: hresp.StatusCode}
		var envelope struct {
			Error string `json:"error"`
		}
		if json.Unmarshal(raw, &envelope) == nil && envelope.Error != "" {
			we.Message = envelope.Error
		} else {
			we.Message = fmt.Sprintf("%.200s", raw)
		}
		if secs, err := strconv.Atoi(hresp.Header.Get("Retry-After")); err == nil && secs > 0 {
			we.RetryAfter = time.Duration(secs) * time.Second
		}
		return nil, nil, we
	}
	var out service.Response
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, nil, &WorkerError{Worker: worker, Err: fmt.Errorf("bad response body: %w", err)}
	}
	return &out, raw, nil
}
