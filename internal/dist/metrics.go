package dist

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync/atomic"
)

// Metrics aggregates the distributed tier's observability counters: the
// worker client's request/retry/hedge activity and the coordinator's shard
// lifecycle. All fields are safe for concurrent use and monotonic except
// the in-flight gauge.
type Metrics struct {
	// Worker-client counters.
	RequestsTotal   atomic.Int64 // HTTP attempts sent to workers
	RequestRetries  atomic.Int64 // attempts beyond the first for a logical request
	RequestHedges   atomic.Int64 // hedged second attempts launched for stragglers
	HedgeWins       atomic.Int64 // hedged attempts that beat the primary
	WorkerCooldowns atomic.Int64 // workers placed in failure cooldown

	// Coordinator shard lifecycle.
	ShardsCompleted atomic.Int64 // shards that ran (or early-exited) to a journaled end
	ShardsCancelled atomic.Int64 // shards cancelled because a lower index already won
	ShardRequeues   atomic.Int64 // shard retries after a worker-side transport failure
	ShardsResumed   atomic.Int64 // shards skipped on startup thanks to the journal
	ShardsInFlight  atomic.Int64 // gauge: shards currently running

	// Schedule outcomes across all shards.
	SchedulesTried     atomic.Int64
	SchedulesSucceeded atomic.Int64
	ScheduleFailures   atomic.Int64 // worker said 422: heuristic failed on that schedule
	SchedulesPruned    atomic.Int64 // schedules dropped pre-shard by the orbit quotient
}

// WritePrometheus writes the counters in the Prometheus text exposition
// format. gauges are extra point-in-time values (full metric lines, labels
// included, map to their value).
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]float64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("stsyn_dist_requests_total", "HTTP synthesis attempts sent to workers.", m.RequestsTotal.Load())
	counter("stsyn_dist_request_retries_total", "Retried worker attempts beyond the first.", m.RequestRetries.Load())
	counter("stsyn_dist_request_hedges_total", "Hedged second attempts launched for stragglers.", m.RequestHedges.Load())
	counter("stsyn_dist_hedge_wins_total", "Hedged attempts that finished before the primary.", m.HedgeWins.Load())
	counter("stsyn_dist_worker_cooldowns_total", "Workers placed in failure cooldown.", m.WorkerCooldowns.Load())
	counter("stsyn_dist_shards_completed_total", "Shards run to a journaled completion.", m.ShardsCompleted.Load())
	counter("stsyn_dist_shards_cancelled_total", "Shards cancelled after a lower schedule index won.", m.ShardsCancelled.Load())
	counter("stsyn_dist_shard_requeues_total", "Shard retries after a worker transport failure.", m.ShardRequeues.Load())
	counter("stsyn_dist_shards_resumed_total", "Shards skipped on startup via journal replay.", m.ShardsResumed.Load())
	counter("stsyn_dist_schedules_tried_total", "Schedules dispatched to workers.", m.SchedulesTried.Load())
	counter("stsyn_dist_schedules_succeeded_total", "Schedules whose synthesis succeeded.", m.SchedulesSucceeded.Load())
	counter("stsyn_dist_schedule_failures_total", "Schedules the heuristic failed on (worker 422).", m.ScheduleFailures.Load())
	counter("stsyn_dist_schedules_pruned_total", "Schedules dropped pre-shard by the symmetry orbit quotient.", m.SchedulesPruned.Load())

	fmt.Fprintf(w, "# TYPE stsyn_dist_shards_in_flight gauge\nstsyn_dist_shards_in_flight %d\n", m.ShardsInFlight.Load())
	lines := make([]string, 0, len(gauges))
	for line := range gauges {
		lines = append(lines, line)
	}
	sort.Strings(lines)
	prev := ""
	for _, line := range lines {
		name := line
		if i := strings.IndexByte(line, '{'); i >= 0 {
			name = line[:i]
		}
		if name != prev {
			fmt.Fprintf(w, "# TYPE %s gauge\n", name)
			prev = name
		}
		fmt.Fprintf(w, "%s %g\n", line, gauges[line])
	}
}
