package dist

import (
	"bufio"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
)

// The job journal is an append-only JSONL write-ahead log: one record per
// line, each wrapped in an envelope carrying the CRC-32 (IEEE) of the
// payload bytes. A coordinator appends a job header when it starts and one
// shard record per finished shard; a restarted coordinator replays the
// journal and skips every shard already recorded. The last line of a
// journal may be torn (the process died mid-write) and is then ignored;
// a corrupt record anywhere else fails the replay loudly, because silently
// dropping completed shards could change the deterministic winner.

// Record is one journal entry. Type "job" records the job identity
// (payload: key, source, shard size); type "shard" records one finished
// shard's outcome, including the winning worker response when the shard
// found one.
type Record struct {
	Type   string `json:"type"` // "job" or "shard"
	JobKey string `json:"job_key"`

	// Job-header fields.
	Source    string `json:"source,omitempty"`     // human-readable schedule source
	ShardSize int    `json:"shard_size,omitempty"` // schedules per shard

	// Shard fields. WinIndex is the global schedule index of the shard's
	// success, -1 when every tried schedule failed; Tried counts schedules
	// actually dispatched (a shard stops early once it wins).
	Shard       int             `json:"shard,omitempty"`
	Start       int             `json:"start,omitempty"` // global index of the shard's first schedule
	Tried       int             `json:"tried,omitempty"`
	WinIndex    int             `json:"win_index"`
	WinSchedule []int           `json:"win_schedule,omitempty"`
	Response    json.RawMessage `json:"response,omitempty"` // raw worker response of the win
}

// envelope wraps a record on disk with a checksum of its payload bytes.
type envelope struct {
	CRC     string          `json:"crc"` // 8 hex digits, CRC-32 (IEEE) of payload
	Payload json.RawMessage `json:"payload"`
}

// Journal appends checksummed records to a WAL file. Safe for concurrent
// use; every append is synced before returning, so a record that Append
// acknowledged survives a crash.
type Journal struct {
	mu sync.Mutex
	f  *os.File
}

// OpenJournal opens (creating if needed) the journal at path for appending.
// A torn final line left by a crashed writer is truncated away first, so the
// next Append starts on a fresh line instead of merging with the torn bytes
// into one corrupt record that a later replay would reject.
func OpenJournal(path string) (*Journal, error) {
	if err := repairTail(path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dist: open journal: %w", err)
	}
	return &Journal{f: f}, nil
}

// repairTail truncates the journal at path back to its last complete
// ('\n'-terminated) line. Every acknowledged Append ends in a synced '\n',
// so anything after the last newline is a write the dying process never
// finished — ReplayJournal already ignores it, and dropping it here keeps
// the file appendable.
func repairTail(path string) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if os.IsNotExist(err) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("dist: open journal for tail repair: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("dist: stat journal: %w", err)
	}
	size := st.Size()
	if size == 0 {
		return nil
	}
	last := make([]byte, 1)
	if _, err := f.ReadAt(last, size-1); err != nil {
		return fmt.Errorf("dist: read journal tail: %w", err)
	}
	if last[0] == '\n' {
		return nil
	}
	// Scan backwards in chunks for the last newline; keep everything
	// through it (keep stays 0 if the whole file is one torn line).
	var keep int64
	const chunk = 64 * 1024
scan:
	for off := size; off > 0; {
		n := int64(chunk)
		if n > off {
			n = off
		}
		off -= n
		buf := make([]byte, n)
		if _, err := f.ReadAt(buf, off); err != nil {
			return fmt.Errorf("dist: read journal tail: %w", err)
		}
		for i := n - 1; i >= 0; i-- {
			if buf[i] == '\n' {
				keep = off + i + 1
				break scan
			}
		}
	}
	if err := f.Truncate(keep); err != nil {
		return fmt.Errorf("dist: truncate torn journal tail: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("dist: sync repaired journal: %w", err)
	}
	return nil
}

// Append durably writes one record: marshal, checksum, write the envelope
// line, fsync.
func (j *Journal) Append(rec *Record) error {
	payload, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dist: marshal journal record: %w", err)
	}
	line, err := json.Marshal(&envelope{
		CRC:     fmt.Sprintf("%08x", crc32.ChecksumIEEE(payload)),
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("dist: marshal journal envelope: %w", err)
	}
	line = append(line, '\n')
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, err := j.f.Write(line); err != nil {
		return fmt.Errorf("dist: append journal: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		return fmt.Errorf("dist: sync journal: %w", err)
	}
	return nil
}

// Close closes the underlying file.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// Replay is the validated state recovered from a journal: the job header
// (nil when the journal was empty or absent) and every completed shard.
type Replay struct {
	Job    *Record
	Shards map[int]*Record
}

// ReplayJournal reads and validates the journal at path. A missing file
// yields an empty replay. A torn final line is tolerated (the write that
// died with the previous coordinator); any other malformed or
// checksum-mismatched line is an error, as is a record belonging to a
// different job than jobKey (an empty jobKey accepts any job).
func ReplayJournal(path, jobKey string) (*Replay, error) {
	rep := &Replay{Shards: make(map[int]*Record)}
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return rep, nil
	}
	if err != nil {
		return nil, fmt.Errorf("dist: open journal for replay: %w", err)
	}
	defer f.Close()

	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 64*1024), 16<<20)
	var pendingErr error // a bad line is only fatal if another line follows it
	lineNo := 0
	for sc.Scan() {
		lineNo++
		if pendingErr != nil {
			return nil, pendingErr
		}
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		rec, err := decodeLine(line)
		if err != nil {
			pendingErr = fmt.Errorf("dist: journal line %d: %w", lineNo, err)
			continue
		}
		if jobKey != "" && rec.JobKey != jobKey {
			return nil, fmt.Errorf("dist: journal line %d: belongs to job %.12s…, want %.12s…",
				lineNo, rec.JobKey, jobKey)
		}
		switch rec.Type {
		case "job":
			rep.Job = rec
		case "shard":
			rep.Shards[rec.Shard] = rec
		default:
			// The checksum validated, so this is not a torn write but a
			// record this version does not understand: fail loudly.
			return nil, fmt.Errorf("dist: journal line %d: unknown record type %q", lineNo, rec.Type)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("dist: read journal: %w", err)
	}
	// pendingErr still set here means the bad line was the last one: a torn
	// final write, dropped by design.
	return rep, nil
}

func decodeLine(line []byte) (*Record, error) {
	var env envelope
	if err := json.Unmarshal(line, &env); err != nil {
		return nil, fmt.Errorf("bad envelope: %w", err)
	}
	if got := fmt.Sprintf("%08x", crc32.ChecksumIEEE(env.Payload)); got != env.CRC {
		return nil, fmt.Errorf("checksum mismatch: payload sums to %s, envelope says %s", got, env.CRC)
	}
	var rec Record
	if err := json.Unmarshal(env.Payload, &rec); err != nil {
		return nil, fmt.Errorf("bad payload: %w", err)
	}
	return &rec, nil
}
