//go:build race

package dist

// raceEnabled gates the long tworing differential cases: TR² synthesis on
// a failing rotation takes seconds per schedule un-raced and minutes under
// the race detector, so those cases run only in the un-instrumented suite.
const raceEnabled = true
