package prune

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"
	"sync/atomic"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

// DefaultMemoBytes is the memo budget used when none is configured: big
// enough for the rank snapshots of every committed case study at once,
// small enough to be irrelevant next to an engine's state space.
const DefaultMemoBytes = 32 << 20

// Scope returns the content address that confines memo entries to one
// synthesis problem modulo schedule: a SHA-256 over the canonical spec
// rendering (protocol.WriteCanonicalSpec — the same machinery behind the
// service cache key and the distributed journal key) plus every
// result-affecting option except the schedule itself. Entries from
// different scopes can never meet, so a shared memo is safe across
// heterogeneous requests.
func Scope(sp *protocol.Spec, engine string, conv core.Convergence, res core.CycleResolution) string {
	h := sha256.New()
	protocol.WriteCanonicalSpec(h, sp)
	fmt.Fprintf(h, "engine=%s\nconvergence=%s\nresolution=%d\n", engine, conv, res)
	return hex.EncodeToString(h.Sum(nil))
}

// MemoStats is a point-in-time snapshot of a Memo's counters.
type MemoStats struct {
	Hits      int64 `json:"hits"`
	Misses    int64 `json:"misses"`
	Evictions int64 `json:"evictions"`
	Entries   int   `json:"entries"`
	Bytes     int64 `json:"bytes"`
}

// Memo is a bounded, content-addressed store for cross-schedule synthesis
// sub-results (core.RankSnapshot, core.PrefixSnapshot), evicting least
// recently used entries once the byte budget is exceeded. Safe for
// concurrent use; one Memo may serve many jobs (the service holds a single
// server-wide instance). Stored values are shared on load, never copied —
// both producers (AddConvergence) and consumers treat them as immutable.
type Memo struct {
	mu        sync.Mutex
	budget    int64
	used      int64
	order     *list.List // front = most recently used
	items     map[string]*list.Element
	hits      int64
	misses    int64
	evictions int64
}

type memoEntry struct {
	key   string
	value interface{}
	size  int64
}

// NewMemo returns a memo with the given byte budget (<= 0 selects
// DefaultMemoBytes).
func NewMemo(budget int64) *Memo {
	if budget <= 0 {
		budget = DefaultMemoBytes
	}
	return &Memo{budget: budget, order: list.New(), items: make(map[string]*list.Element)}
}

// Stats returns the memo's counters.
func (m *Memo) Stats() MemoStats {
	m.mu.Lock()
	defer m.mu.Unlock()
	return MemoStats{
		Hits: m.hits, Misses: m.misses, Evictions: m.evictions,
		Entries: len(m.items), Bytes: m.used,
	}
}

func (m *Memo) get(key string) (interface{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		m.misses++
		return nil, false
	}
	m.hits++
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry).value, true
}

// peek is get without touching the hit/miss counters — used by the
// longest-prefix probe, which counts once per logical lookup, not once per
// probed length.
func (m *Memo) peek(key string) (interface{}, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	el, ok := m.items[key]
	if !ok {
		return nil, false
	}
	m.order.MoveToFront(el)
	return el.Value.(*memoEntry).value, true
}

func (m *Memo) put(key string, value interface{}, size int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if el, ok := m.items[key]; ok {
		// First store wins: synthesis snapshots for one key are all
		// equivalent, and keeping the resident one avoids churning the LRU
		// under concurrent attempts.
		m.order.MoveToFront(el)
		return
	}
	if size > m.budget {
		return
	}
	el := m.order.PushFront(&memoEntry{key: key, value: value, size: size})
	m.items[key] = el
	m.used += size
	for m.used > m.budget {
		back := m.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*memoEntry)
		m.order.Remove(back)
		delete(m.items, ent.key)
		m.used -= ent.size
		m.evictions++
	}
}

func (m *Memo) countHit()  { m.mu.Lock(); m.hits++; m.mu.Unlock() }
func (m *Memo) countMiss() { m.mu.Lock(); m.misses++; m.mu.Unlock() }

// ForJob scopes the memo to one synthesis problem (a Scope string): the
// returned JobMemo implements core.SynthMemo and additionally tracks
// per-job hit/miss counters for response stats.
func (m *Memo) ForJob(scope string) *JobMemo {
	return &JobMemo{m: m, scope: scope}
}

// JobMemo is a Memo confined to one scope. Safe for concurrent use — the
// attempts of one fan-out share it.
type JobMemo struct {
	m     *Memo
	scope string
	hits  atomic.Int64
	miss  atomic.Int64
}

// Hits and Misses return this job's counters.
func (j *JobMemo) Hits() int64   { return j.hits.Load() }
func (j *JobMemo) Misses() int64 { return j.miss.Load() }

func (j *JobMemo) ranksKey() string { return j.scope + "\x00ranks" }

func (j *JobMemo) prefixKey(prefix []int) string {
	return fmt.Sprintf("%s\x00prefix%v", j.scope, prefix)
}

// LoadRanks implements core.SynthMemo.
func (j *JobMemo) LoadRanks() (core.RankSnapshot, bool) {
	v, ok := j.m.get(j.ranksKey())
	if !ok {
		j.miss.Add(1)
		return core.RankSnapshot{}, false
	}
	j.hits.Add(1)
	return v.(core.RankSnapshot), true
}

// StoreRanks implements core.SynthMemo.
func (j *JobMemo) StoreRanks(snap core.RankSnapshot) {
	size := int64(64)
	for _, k := range snap.RemovedKeys {
		size += int64(len(k)) + 16
	}
	for _, words := range snap.Ranks {
		size += int64(len(words))*8 + 24
	}
	j.m.put(j.ranksKey(), snap, size)
}

// LoadPrefix implements core.SynthMemo: the longest stored snapshot whose
// prefix matches a prefix of sched. One logical lookup counts one hit or
// miss, however many lengths were probed.
func (j *JobMemo) LoadPrefix(sched []int) (int, core.PrefixSnapshot, bool) {
	for n := len(sched); n >= 1; n-- {
		if v, ok := j.m.peek(j.prefixKey(sched[:n])); ok {
			j.hits.Add(1)
			j.m.countHit()
			return n, v.(core.PrefixSnapshot), true
		}
	}
	j.miss.Add(1)
	j.m.countMiss()
	return 0, core.PrefixSnapshot{}, false
}

// StorePrefix implements core.SynthMemo.
func (j *JobMemo) StorePrefix(prefix []int, snap core.PrefixSnapshot) {
	size := int64(64 + 8*len(prefix))
	for _, k := range snap.AddedKeys {
		size += int64(len(k)) + 16
	}
	j.m.put(j.prefixKey(prefix), snap, size)
}
