package prune

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

func TestScopeSeparatesProblems(t *testing.T) {
	spA := buildSpec(t, "coloring", 4, 0)
	spB := buildSpec(t, "coloring", 5, 0)
	a := Scope(spA, "explicit", core.Strong, core.BatchResolution)
	if b := Scope(spB, "explicit", core.Strong, core.BatchResolution); a == b {
		t.Fatal("different specs share a scope")
	}
	if b := Scope(spA, "symbolic", core.Strong, core.BatchResolution); a == b {
		t.Fatal("different engines share a scope")
	}
	if b := Scope(spA, "explicit", core.Weak, core.BatchResolution); a == b {
		t.Fatal("different convergence properties share a scope")
	}
	if b := Scope(spA, "explicit", core.Strong, core.BatchResolution); a != b {
		t.Fatal("scope is not deterministic")
	}
}

func TestJobMemoRanksRoundTrip(t *testing.T) {
	m := NewMemo(0)
	jm := m.ForJob("scope-a")
	if _, ok := jm.LoadRanks(); ok {
		t.Fatal("empty memo reported a hit")
	}
	snap := core.RankSnapshot{
		RemovedKeys: []protocol.Key{"1|0,|1,"},
		Ranks:       [][]uint64{{1, 2}, {3}},
	}
	jm.StoreRanks(snap)
	got, ok := jm.LoadRanks()
	if !ok || len(got.Ranks) != 2 || len(got.RemovedKeys) != 1 {
		t.Fatalf("LoadRanks = %+v, %v", got, ok)
	}
	if _, ok := m.ForJob("scope-b").LoadRanks(); ok {
		t.Fatal("scopes leaked into each other")
	}
	if jm.Hits() != 1 || jm.Misses() != 1 {
		t.Fatalf("job counters hits=%d misses=%d, want 1/1", jm.Hits(), jm.Misses())
	}
}

func TestJobMemoLongestPrefix(t *testing.T) {
	m := NewMemo(0)
	jm := m.ForJob("s")
	jm.StorePrefix([]int{1}, core.PrefixSnapshot{Pass: 1, RankIndex: 1})
	jm.StorePrefix([]int{1, 2, 3}, core.PrefixSnapshot{Pass: 1, RankIndex: 1, Done: true})

	n, snap, ok := jm.LoadPrefix([]int{1, 2, 3, 0})
	if !ok || n != 3 || !snap.Done {
		t.Fatalf("LoadPrefix = %d, %+v, %v; want longest match 3", n, snap, ok)
	}
	n, _, ok = jm.LoadPrefix([]int{1, 0, 3, 2})
	if !ok || n != 1 {
		t.Fatalf("LoadPrefix = %d, %v; want fallback match 1", n, ok)
	}
	if _, _, ok := jm.LoadPrefix([]int{3, 2, 1, 0}); ok {
		t.Fatal("unrelated schedule hit the prefix memo")
	}
	// One logical lookup = one counter tick, however many lengths probed.
	if jm.Hits() != 2 || jm.Misses() != 1 {
		t.Fatalf("hits=%d misses=%d, want 2/1", jm.Hits(), jm.Misses())
	}
}

func TestMemoEvictsLRU(t *testing.T) {
	// Budget fits about two prefix entries (64 + 8*len(prefix) each).
	m := NewMemo(200)
	jm := m.ForJob("s")
	jm.StorePrefix([]int{1}, core.PrefixSnapshot{Pass: 1})
	jm.StorePrefix([]int{2}, core.PrefixSnapshot{Pass: 1})
	// Touch {1} so {2} is the least recently used.
	if _, _, ok := jm.LoadPrefix([]int{1, 0}); !ok {
		t.Fatal("expected {1} to be resident")
	}
	jm.StorePrefix([]int{3}, core.PrefixSnapshot{Pass: 1})

	st := m.Stats()
	if st.Evictions == 0 {
		t.Fatalf("expected evictions, stats = %+v", st)
	}
	if st.Bytes > 200 {
		t.Fatalf("memo over budget: %+v", st)
	}
	if _, _, ok := jm.LoadPrefix([]int{2, 0}); ok {
		t.Fatal("LRU entry {2} should have been evicted")
	}
	if _, _, ok := jm.LoadPrefix([]int{1, 0}); !ok {
		t.Fatal("recently used entry {1} was evicted")
	}
}

func TestMemoOversizeAndFirstStoreWins(t *testing.T) {
	m := NewMemo(100)
	jm := m.ForJob("s")
	// An entry larger than the whole budget is skipped, not stored.
	huge := core.RankSnapshot{Ranks: [][]uint64{make([]uint64, 64)}}
	jm.StoreRanks(huge)
	if st := m.Stats(); st.Entries != 0 {
		t.Fatalf("oversize entry was stored: %+v", st)
	}
	// First store wins: a second store under the same key keeps the original.
	jm.StorePrefix([]int{1}, core.PrefixSnapshot{Pass: 1, RankIndex: 7})
	jm.StorePrefix([]int{1}, core.PrefixSnapshot{Pass: 1, RankIndex: 9})
	_, snap, ok := jm.LoadPrefix([]int{1})
	if !ok || snap.RankIndex != 7 {
		t.Fatalf("LoadPrefix = %+v, %v; want the first-stored snapshot", snap, ok)
	}
}
