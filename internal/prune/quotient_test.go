package prune

import (
	"fmt"
	"testing"

	"stsyn/internal/core"
)

func drain(q *QuotientStream) [][]int {
	var out [][]int
	for s, ok := q.Next(); ok; s, ok = q.Next() {
		out = append(out, s)
	}
	return out
}

func TestQuotientStreamLexFullSpace(t *testing.T) {
	sp := buildSpec(t, "coloring", 4, 0)
	g := DeriveGroup(sp)
	q := NewQuotientStream(g, core.NewScheduleStream(4).Next, true)
	reps := drain(q)
	if want := 24 / g.Size(); len(reps) != want {
		t.Fatalf("emitted %d representatives, want %d", len(reps), want)
	}
	st := q.Stats()
	if st.Emitted != len(reps) || st.Emitted+st.Pruned != 24 {
		t.Fatalf("stats = %+v, want emitted %d and emitted+pruned = 24", st, len(reps))
	}
	// Each emission is canonical, and together they cover every orbit.
	covered := make(map[string]bool)
	for _, s := range reps {
		if !sameSchedule(s, g.Canonical(s)) {
			t.Fatalf("emitted non-canonical representative %v", s)
		}
		for _, m := range g.Orbit(s) {
			covered[fmt.Sprint(m)] = true
		}
	}
	if len(covered) != 24 {
		t.Fatalf("representatives cover %d schedules, want 24", len(covered))
	}
}

func TestQuotientStreamRotations(t *testing.T) {
	sp := buildSpec(t, "coloring", 4, 0)
	g := DeriveGroup(sp)
	q := NewQuotientStream(g, core.StreamSchedules(core.Rotations(4)), true)
	reps := drain(q)
	// The k rotations form a single orbit: only the identity survives.
	if len(reps) != 1 || !sameSchedule(reps[0], []int{0, 1, 2, 3}) {
		t.Fatalf("rotations quotient = %v, want just [0 1 2 3]", reps)
	}
	if st := q.Stats(); st.Pruned != 3 {
		t.Fatalf("pruned = %d, want 3", st.Pruned)
	}
}

// TestQuotientStreamSeenSet drives the non-lex fallback with a stream whose
// order is not lexicographic: the first occurrence of each orbit must be
// kept even when it is not the canonical member.
func TestQuotientStreamSeenSet(t *testing.T) {
	sp := buildSpec(t, "coloring", 3, 0)
	g := DeriveGroup(sp)
	list := [][]int{
		{1, 2, 0}, // orbit of identity, non-canonical — first occurrence wins
		{0, 1, 2}, // same orbit: pruned even though canonical
		{2, 1, 0}, // new orbit
		{0, 2, 1}, // orbit-mate of {2 1 0} (rotation by 1): pruned
	}
	q := NewQuotientStream(g, core.StreamSchedules(list), false)
	reps := drain(q)
	want := [][]int{{1, 2, 0}, {2, 1, 0}}
	if len(reps) != len(want) {
		t.Fatalf("emitted %v, want %v", reps, want)
	}
	for i := range want {
		if !sameSchedule(reps[i], want[i]) {
			t.Fatalf("emitted %v, want %v", reps, want)
		}
	}
	if st := q.Stats(); st.Emitted != 2 || st.Pruned != 2 {
		t.Fatalf("stats = %+v, want 2 emitted / 2 pruned", st)
	}
}

func TestQuotientStreamTrivialPassThrough(t *testing.T) {
	sp := buildSpec(t, "tokenring", 4, 3)
	g := DeriveGroup(sp)
	q := NewQuotientStream(g, core.StreamSchedules(core.Rotations(4)), true)
	if reps := drain(q); len(reps) != 4 {
		t.Fatalf("trivial group must pass everything through, got %d of 4", len(reps))
	}
	if st := q.Stats(); st.Pruned != 0 {
		t.Fatalf("trivial group pruned %d schedules", st.Pruned)
	}
}
