package prune

import (
	"fmt"
	"testing"

	"stsyn/internal/cli"
	"stsyn/internal/core"
	"stsyn/internal/protocol"
)

func buildSpec(t *testing.T, name string, k, dom int) *protocol.Spec {
	t.Helper()
	sp, err := cli.BuildSpec(name, k, dom)
	if err != nil {
		t.Fatal(err)
	}
	return sp
}

// lineColoring is a coloring spec on a line: like the ring, but the last
// process does not wrap around to the first. No rotation maps the end
// processes onto interior ones, so the automorphism group must be trivial.
func lineColoring(k int) *protocol.Spec {
	sp := &protocol.Spec{Name: fmt.Sprintf("linecoloring-%d", k)}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("c%d", i), Dom: 3})
	}
	var inv []protocol.BoolExpr
	for i := 0; i < k; i++ {
		reads := []int{i}
		if i+1 < k {
			reads = append(reads, i+1)
			inv = append(inv, protocol.Neq{A: protocol.V{ID: i}, B: protocol.V{ID: i + 1}})
		}
		sp.Procs = append(sp.Procs, protocol.Process{
			Name:   fmt.Sprintf("P%d", i),
			Reads:  protocol.SortedIDs(reads...),
			Writes: []int{i},
		})
	}
	sp.Invariant = protocol.And{Xs: inv}
	return sp
}

func TestDeriveGroupRings(t *testing.T) {
	cases := []struct {
		name     string
		spec     *protocol.Spec
		wantSize int
	}{
		// The coloring and matching rings are fully rotation-symmetric.
		{"coloring-4", buildSpec(t, "coloring", 4, 0), 4},
		{"coloring-5", buildSpec(t, "coloring", 5, 0), 5},
		{"matching-4", buildSpec(t, "matching", 4, 0), 4},
		// The token ring is a ring topology, but P0's actions differ from
		// the others' — no non-trivial rotation preserves the problem.
		{"tokenring-4", buildSpec(t, "tokenring", 4, 3), 1},
		// A line topology has no ring rotation at all.
		{"linecoloring-4", lineColoring(4), 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			g := DeriveGroup(c.spec)
			if g.Size() != c.wantSize {
				t.Fatalf("group size = %d, want %d", g.Size(), c.wantSize)
			}
			if got := g.Trivial(); got != (c.wantSize == 1) {
				t.Fatalf("Trivial() = %v with size %d", got, c.wantSize)
			}
		})
	}
}

// TestOrbitPartition is the coverage property behind the quotient's
// soundness: over the full k! space, the orbits of the canonical
// representatives partition every schedule exactly once, and — the action
// being free — every orbit has exactly group-size members.
func TestOrbitPartition(t *testing.T) {
	for _, k := range []int{3, 4} {
		sp := buildSpec(t, "coloring", k, 0)
		g := DeriveGroup(sp)
		if g.Size() != k {
			t.Fatalf("coloring-%d: group size = %d, want %d", k, g.Size(), k)
		}
		all := core.AllSchedules(k)
		covered := make(map[string]int)
		reps := 0
		for _, s := range all {
			if sameSchedule(s, g.Canonical(s)) {
				reps++
				orbit := g.Orbit(s)
				if len(orbit) != g.Size() {
					t.Fatalf("orbit of %v has %d members, want %d (free action)", s, len(orbit), g.Size())
				}
				for _, m := range orbit {
					covered[fmt.Sprint(m)]++
				}
			}
		}
		if want := len(all) / g.Size(); reps != want {
			t.Fatalf("coloring-%d: %d canonical representatives, want %d", k, reps, want)
		}
		if len(covered) != len(all) {
			t.Fatalf("coloring-%d: orbits cover %d schedules, want all %d", k, len(covered), len(all))
		}
		for s, n := range covered {
			if n != 1 {
				t.Fatalf("coloring-%d: schedule %s covered %d times, want exactly once", k, s, n)
			}
		}
	}
}

func TestRepresentativeOfRoundTrip(t *testing.T) {
	sp := buildSpec(t, "coloring", 4, 0)
	g := DeriveGroup(sp)
	for _, s := range core.AllSchedules(4) {
		rep, via := g.RepresentativeOf(s)
		if !sameSchedule(rep, g.Canonical(s)) {
			t.Fatalf("RepresentativeOf(%v) rep = %v, want canonical %v", s, rep, g.Canonical(s))
		}
		if got := via.ApplySchedule(rep); !sameSchedule(got, s) {
			t.Fatalf("via(rep) = %v, want %v", got, s)
		}
		if lexLess(s, rep) {
			t.Fatalf("canonical %v is not lex-least: %v is smaller", rep, s)
		}
	}
}
