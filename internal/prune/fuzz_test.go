package prune

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/specgen"
)

// FuzzQuotientCoverage is the quotient's randomized soundness battery.
// Each seed generates a rotation-symmetric ring spec (so DeriveGroup finds
// a non-trivial group by construction) and checks, over the full k! space:
//
//   - coverage: the emitted representatives' orbits partition every
//     schedule exactly once, each orbit exactly group-size large;
//   - winner preservation: the pruned search returns the same winning
//     schedule and transition groups as the unpruned search (or both fail);
//   - translate-back: synthesizing directly on a random orbit-mate of the
//     winner equals the automorphism image of the representative's result.
func FuzzQuotientCoverage(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		sp := specgen.RandomRingSpec(rng, true)
		if err := sp.Validate(); err != nil {
			t.Fatalf("RandomRingSpec generated an invalid spec: %v", err)
		}
		k := len(sp.Procs)
		g := DeriveGroup(sp)
		if g.Size() != k {
			t.Fatalf("ring spec derived group of size %d, want %d (rotation-symmetric by construction)", g.Size(), k)
		}

		all := core.AllSchedules(k)
		q := NewQuotientStream(g, core.StreamSchedules(all), true)
		reps := drain(q)
		covered := make(map[string]int)
		for _, s := range reps {
			orbit := g.Orbit(s)
			if len(orbit) != g.Size() {
				t.Fatalf("orbit of %v has %d members, want %d", s, len(orbit), g.Size())
			}
			for _, m := range orbit {
				covered[fmt.Sprint(m)]++
			}
		}
		if len(covered) != len(all) {
			t.Fatalf("representative orbits cover %d of %d schedules", len(covered), len(all))
		}
		for s, n := range covered {
			if n != 1 {
				t.Fatalf("schedule %s covered %d times, want exactly once", s, n)
			}
		}

		factory := explicitFactory(sp)
		bestU, _, errU := core.TrySchedules(factory, core.Options{}, all, 2)
		optsP := core.Options{Memo: NewMemo(0).ForJob(Scope(sp, "explicit", core.Strong, core.BatchResolution))}
		bestP, _, errP := core.TrySchedules(factory, optsP, reps, 2)
		if (errU == nil) != (errP == nil) {
			t.Fatalf("outcome diverged: unpruned err=%v, pruned err=%v", errU, errP)
		}
		if errU != nil {
			return
		}
		if !sameSchedule(bestU.Schedule, bestP.Schedule) {
			t.Fatalf("winning schedule diverged: unpruned %v, pruned %v", bestU.Schedule, bestP.Schedule)
		}
		if u, p := protoKeys(bestU.Result.Protocol), protoKeys(bestP.Result.Protocol); !reflect.DeepEqual(u, p) {
			t.Fatalf("winning protocol diverged: %d vs %d groups", len(u), len(p))
		}

		// Translate-back on a random orbit-mate of the winner.
		orbit := g.Orbit(bestP.Schedule)
		mate := orbit[rng.Intn(len(orbit))]
		rep, via := g.RepresentativeOf(mate)
		if !sameSchedule(rep, bestP.Schedule) {
			t.Fatalf("orbit-mate %v maps to representative %v, want winner %v", mate, rep, bestP.Schedule)
		}
		e, err := factory()
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AddConvergence(e, core.Options{Schedule: mate})
		if err != nil {
			t.Fatalf("winner's orbit-mate %v failed where the representative won: %v", mate, err)
		}
		repProto := bestP.Result.Protocol
		translated := make(map[string]bool, len(repProto))
		for _, pg := range TranslateWinner(sp, via, protocolGroupsOf(repProto)) {
			translated[string(pg.Key())] = true
		}
		direct := make(map[string]bool)
		for key := range protoKeys(res.Protocol) {
			direct[string(key)] = true
		}
		if !reflect.DeepEqual(direct, translated) {
			t.Fatalf("schedule %v: direct synthesis != translated representative (%d vs %d groups)",
				mate, len(direct), len(translated))
		}
	})
}
