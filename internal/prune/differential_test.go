package prune

import (
	"errors"
	"reflect"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
)

func explicitFactory(sp *protocol.Spec) core.EngineFactory {
	return func() (core.Engine, error) { return explicit.New(sp, 0) }
}

func protoKeys(groups []core.Group) map[protocol.Key]bool {
	out := make(map[protocol.Key]bool, len(groups))
	for _, g := range groups {
		out[g.ProtocolGroup().Key()] = true
	}
	return out
}

func protocolGroupsOf(groups []core.Group) []protocol.Group {
	out := make([]protocol.Group, len(groups))
	for i, g := range groups {
		out[i] = g.ProtocolGroup()
	}
	return out
}

func protocolKeys(groups []protocol.Group) map[protocol.Key]bool {
	out := make(map[protocol.Key]bool, len(groups))
	for _, g := range groups {
		out[g.Key()] = true
	}
	return out
}

// TestPrunedSearchIdenticalWinner is the differential oracle on the
// committed case studies: the quotiented, memoized search must return the
// same winning schedule and the byte-identical protocol (same transition
// groups) the unpruned search returns, over both the rotation list and the
// full k! space.
func TestPrunedSearchIdenticalWinner(t *testing.T) {
	cases := []struct {
		name string
		spec *protocol.Spec
		all  bool // full k! space instead of rotations
	}{
		{"coloring-4/rotations", buildSpec(t, "coloring", 4, 0), false},
		{"coloring-4/all", buildSpec(t, "coloring", 4, 0), true},
		{"matching-4/rotations", buildSpec(t, "matching", 4, 0), false},
		{"matching-3/all", buildSpec(t, "matching", 3, 0), true},
		{"tokenring-4/rotations", buildSpec(t, "tokenring", 4, 3), false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			k := len(c.spec.Procs)
			scheds := core.Rotations(k)
			if c.all {
				scheds = core.AllSchedules(k)
			}
			opts := core.Options{}

			bestU, _, errU := core.TrySchedules(explicitFactory(c.spec), opts, scheds, 2)

			g := DeriveGroup(c.spec)
			q := NewQuotientStream(g, core.StreamSchedules(scheds), true)
			quotiented := drain(q)
			optsP := opts
			optsP.Memo = NewMemo(0).ForJob(Scope(c.spec, "explicit", opts.Convergence, opts.CycleResolution))
			bestP, _, errP := core.TrySchedules(explicitFactory(c.spec), optsP, quotiented, 2)

			if (errU == nil) != (errP == nil) {
				t.Fatalf("outcome diverged: unpruned err=%v, pruned err=%v", errU, errP)
			}
			if errU != nil {
				return
			}
			if !sameSchedule(bestU.Schedule, bestP.Schedule) {
				t.Fatalf("winning schedule diverged: unpruned %v, pruned %v", bestU.Schedule, bestP.Schedule)
			}
			if u, p := protoKeys(bestU.Result.Protocol), protoKeys(bestP.Result.Protocol); !reflect.DeepEqual(u, p) {
				t.Fatalf("winning protocol diverged: %d vs %d groups", len(u), len(p))
			}
			if !g.Trivial() && q.Stats().Pruned == 0 {
				t.Fatal("non-trivial group pruned nothing")
			}
		})
	}
}

// TestMemoReplayIdentical re-runs the same schedule with a warm memo: the
// rank-snapshot and prefix replays must reproduce the cold run exactly —
// the same protocol on success (coloring) and the same failure on a losing
// schedule (matching-4's default schedule keeps deadlocks).
func TestMemoReplayIdentical(t *testing.T) {
	for _, name := range []string{"coloring", "matching"} {
		t.Run(name, func(t *testing.T) {
			sp := buildSpec(t, name, 4, 0)
			run := func(memo core.SynthMemo) (*core.Result, error) {
				e, err := explicit.New(sp, 0)
				if err != nil {
					t.Fatal(err)
				}
				return core.AddConvergence(e, core.Options{Memo: memo})
			}
			cold, coldErr := run(nil)
			jm := NewMemo(0).ForJob(Scope(sp, "explicit", core.Strong, core.BatchResolution))
			warming, warmingErr := run(jm)
			warm, warmErr := run(jm)
			if jm.Hits() == 0 {
				t.Fatal("second memoized run scored no hits")
			}
			for i, r := range []struct {
				res *core.Result
				err error
			}{{warming, warmingErr}, {warm, warmErr}} {
				if (coldErr == nil) != (r.err == nil) {
					t.Fatalf("run %d: outcome diverged: cold err=%v, memoized err=%v", i, coldErr, r.err)
				}
				if coldErr != nil {
					if coldErr.Error() != r.err.Error() {
						t.Fatalf("run %d: failure diverged: cold %q, memoized %q", i, coldErr, r.err)
					}
					continue
				}
				if !reflect.DeepEqual(protoKeys(cold.Protocol), protoKeys(r.res.Protocol)) {
					t.Fatalf("run %d: memoized protocol differs from cold run", i)
				}
				if r.res.PassCompleted != cold.PassCompleted || len(r.res.Added) != len(cold.Added) || len(r.res.Removed) != len(cold.Removed) {
					t.Fatalf("run %d: stats diverged: pass=%d/%d added=%d/%d removed=%d/%d", i,
						r.res.PassCompleted, cold.PassCompleted, len(r.res.Added), len(cold.Added), len(r.res.Removed), len(cold.Removed))
				}
			}
		})
	}
}

// TestTranslateWinnerEquivariance checks the translate-back direction of
// the orbit-quotient theorem on a real spec: synthesizing on any orbit-mate
// s yields exactly the image, under the carrying automorphism, of the
// protocol synthesized on s's canonical representative.
func TestTranslateWinnerEquivariance(t *testing.T) {
	sp := buildSpec(t, "coloring", 4, 0)
	g := DeriveGroup(sp)
	run := func(sched []int) []core.Group {
		e, err := explicit.New(sp, 0)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.AddConvergence(e, core.Options{Schedule: sched})
		if err != nil {
			t.Fatal(err)
		}
		return res.Protocol
	}
	rep := []int{0, 1, 2, 3}
	repProto := protocolGroupsOf(run(rep))
	for _, s := range g.Orbit(rep) {
		gotRep, via := g.RepresentativeOf(s)
		if !sameSchedule(gotRep, rep) {
			t.Fatalf("RepresentativeOf(%v) = %v, want %v", s, gotRep, rep)
		}
		direct := protoKeys(run(s))
		translated := protocolKeys(TranslateWinner(sp, via, repProto))
		if !reflect.DeepEqual(direct, translated) {
			t.Fatalf("schedule %v: direct synthesis (%d groups) != translated representative (%d groups)",
				s, len(direct), len(translated))
		}
	}
}

// TestIncrementalResolutionNotEquivariant documents why prune demands batch
// resolution: under incremental resolution, orbit-mate schedules of the
// 5-process token ring produce genuinely different retry orders, so the
// quotient would not be winner-preserving. The spec's group is trivial (so
// prune would not misbehave here anyway); the test pins the *reason* the
// gate exists by showing batch loses where incremental wins.
func TestIncrementalResolutionNotEquivariant(t *testing.T) {
	sp := buildSpec(t, "tokenring", 5, 5)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, errBatch := core.AddConvergence(e, core.Options{CycleResolution: core.BatchResolution})
	if errBatch == nil {
		t.Skip("batch resolution now succeeds on tokenring-5; pick a sharper witness")
	}
	e2, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.AddConvergence(e2, core.Options{CycleResolution: core.IncrementalResolution}); err != nil {
		t.Fatalf("incremental resolution lost where it is documented to win: %v", err)
	}
	if !errors.Is(errBatch, core.ErrDeadlocksRemain) && !errors.Is(errBatch, core.ErrNoStabilizingVersion) {
		t.Logf("batch failure mode: %v", errBatch)
	}
}
