package prune

import "fmt"

// QuotientStats counts what a QuotientStream did: Emitted representatives
// handed to the search, Pruned schedules dropped as orbit-mates of an
// earlier emission.
type QuotientStats struct {
	Emitted int `json:"emitted"`
	Pruned  int `json:"pruned"`
}

// QuotientStream filters a schedule stream down to one representative per
// orbit of the group, preserving the stream's order and therefore the
// lowest-index-winner determinism of TryScheduleStream and the distributed
// coordinator: the representative it emits for an orbit is always the
// orbit's *first occurrence* in the underlying stream, so the index of the
// first successful orbit — and with it the winning protocol — is unchanged.
//
// For streams in lexicographic order over a group-closed set (the full k!
// ScheduleStream, the Rotations list), the first occurrence is exactly the
// lexicographically-least canonical member, and the filter runs in O(1)
// memory. Other stream orders (samples, explicit lists) fall back to a
// seen-orbit set keyed by canonical form.
//
// Not safe for concurrent use — neither are the streams it wraps; the
// fan-out drivers pull from a single goroutine.
type QuotientStream struct {
	g     *Group
	next  func() ([]int, bool)
	lex   bool
	seen  map[string]bool
	stats QuotientStats
}

// NewQuotientStream wraps next. Set lexOrdered when the underlying stream
// yields schedules in lexicographic order and covers whole orbits (the
// full enumeration and the rotations list both do); leave it false for
// samples and arbitrary lists.
func NewQuotientStream(g *Group, next func() ([]int, bool), lexOrdered bool) *QuotientStream {
	q := &QuotientStream{g: g, next: next, lex: lexOrdered}
	if !lexOrdered && !g.Trivial() {
		q.seen = make(map[string]bool)
	}
	return q
}

// Next returns the next orbit representative, pulling the underlying
// stream past pruned schedules.
func (q *QuotientStream) Next() ([]int, bool) {
	for {
		s, ok := q.next()
		if !ok {
			return nil, false
		}
		if q.g.Trivial() {
			q.stats.Emitted++
			return s, true
		}
		if q.lex {
			if sameSchedule(s, q.g.Canonical(s)) {
				q.stats.Emitted++
				return s, true
			}
			q.stats.Pruned++
			continue
		}
		key := fmt.Sprint(q.g.Canonical(s))
		if !q.seen[key] {
			q.seen[key] = true
			q.stats.Emitted++
			return s, true
		}
		q.stats.Pruned++
	}
}

// Stats returns the counters so far. Call after the search has drained the
// stream (the fan-out drivers pull synchronously, so by the time they
// return the counters are final).
func (q *QuotientStream) Stats() QuotientStats { return q.stats }
