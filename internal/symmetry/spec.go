// Spec-level automorphisms: Valid checks only the topology (domains and
// localities), which is what the symmetry *analysis* of synthesized
// protocols needs. Schedule pruning (internal/prune) needs more: an
// automorphism may only quotient the schedule search space when it maps the
// whole synthesis *problem* onto itself — initial actions and invariant
// included — because only then does the heuristic commute with the renaming.
// ValidForSpec is that stronger check.

package symmetry

import (
	"fmt"
	"sort"
	"strings"

	"stsyn/internal/protocol"
)

// Identity returns the identity automorphism of the specification.
func Identity(sp *protocol.Spec) Automorphism {
	vp := make([]int, len(sp.Vars))
	for i := range vp {
		vp[i] = i
	}
	pp := make([]int, len(sp.Procs))
	for i := range pp {
		pp[i] = i
	}
	return Automorphism{VarPerm: vp, ProcPerm: pp}
}

// RotationBy returns the rotation-by-step automorphism for a protocol whose
// first k variables and processes are arranged in a ring (variable i owned
// by process i). Extra non-ring variables (beyond k) map to themselves.
// RotationBy(sp, k, 1) is Rotation(sp, k).
func RotationBy(sp *protocol.Spec, k, step int) Automorphism {
	vp := make([]int, len(sp.Vars))
	for i := range vp {
		if i < k {
			vp[i] = (i + step) % k
		} else {
			vp[i] = i
		}
	}
	pp := make([]int, len(sp.Procs))
	for i := range pp {
		if i < k {
			pp[i] = (i + step) % k
		} else {
			pp[i] = i
		}
	}
	return Automorphism{VarPerm: vp, ProcPerm: pp}
}

// Compose returns the automorphism "a then b": (b∘a).VarPerm[v] =
// b.VarPerm[a.VarPerm[v]], and likewise for processes.
func Compose(b, a Automorphism) Automorphism {
	vp := make([]int, len(a.VarPerm))
	for i, w := range a.VarPerm {
		vp[i] = b.VarPerm[w]
	}
	pp := make([]int, len(a.ProcPerm))
	for i, q := range a.ProcPerm {
		pp[i] = b.ProcPerm[q]
	}
	return Automorphism{VarPerm: vp, ProcPerm: pp}
}

// IsIdentity reports whether the automorphism maps everything to itself.
func (a Automorphism) IsIdentity() bool {
	for i, w := range a.VarPerm {
		if i != w {
			return false
		}
	}
	for i, q := range a.ProcPerm {
		if i != q {
			return false
		}
	}
	return true
}

// ApplySchedule maps a recovery schedule through the automorphism: slot i
// of the image schedules process ProcPerm[s[i]].
func (a Automorphism) ApplySchedule(s []int) []int {
	out := make([]int, len(s))
	for i, p := range s {
		out[i] = a.ProcPerm[p]
	}
	return out
}

// ValidForSpec reports whether a is an automorphism of the full synthesis
// problem, not just its topology: on top of Valid (domains, localities),
// every process's initial guarded commands must map onto its image's and
// the invariant must be invariant under the variable renaming.
//
// Expression equality is decided on canonicalized ASTs (flattened and
// sorted conjunctions/disjunctions, sorted Eq/Neq operands) — sound but
// syntactic, so a structurally disguised symmetry may be missed. Missing a
// symmetry only costs pruning opportunity; accepting a false one would be
// unsound, and cannot happen here.
func (a Automorphism) ValidForSpec(sp *protocol.Spec) error {
	if err := a.Valid(sp); err != nil {
		return err
	}
	for pi, pj := range a.ProcPerm {
		img, ok := renamedActionSet(sp.Procs[pi].Actions, a.VarPerm)
		if !ok {
			return fmt.Errorf("symmetry: actions of %s contain an expression the renamer does not cover", sp.Procs[pi].Name)
		}
		want, ok := renamedActionSet(sp.Procs[pj].Actions, nil)
		if !ok {
			return fmt.Errorf("symmetry: actions of %s contain an expression the renamer does not cover", sp.Procs[pj].Name)
		}
		if img != want {
			return fmt.Errorf("symmetry: actions of %s do not map onto actions of %s",
				sp.Procs[pi].Name, sp.Procs[pj].Name)
		}
	}
	img, ok1 := renameBool(sp.Invariant, a.VarPerm)
	orig := sp.Invariant
	if !ok1 {
		return fmt.Errorf("symmetry: invariant contains an expression the renamer does not cover")
	}
	if canonBool(img) != canonBool(orig) {
		return fmt.Errorf("symmetry: invariant is not preserved by the variable renaming")
	}
	return nil
}

// RenameBool and RenameInt map every variable reference of an expression
// through perm (ok=false when the expression contains a node kind the
// renamer does not cover). Exported for generators that build symmetric
// specifications by rotating expression templates around a ring.
func RenameBool(e protocol.BoolExpr, perm []int) (protocol.BoolExpr, bool) {
	return renameBool(e, perm)
}

// RenameInt is RenameBool for integer expressions.
func RenameInt(e protocol.IntExpr, perm []int) (protocol.IntExpr, bool) {
	return renameInt(e, perm)
}

// renamedActionSet canonicalizes a process's actions as a sorted multiset
// of strings, with variables renamed through perm (nil means identity).
func renamedActionSet(actions []protocol.Action, perm []int) (string, bool) {
	lines := make([]string, 0, len(actions))
	for _, act := range actions {
		g := act.Guard
		if perm != nil {
			var ok bool
			if g, ok = renameBool(g, perm); !ok {
				return "", false
			}
		}
		assigns := make([]string, 0, len(act.Assigns))
		for _, as := range act.Assigns {
			v, e := as.Var, as.Expr
			if perm != nil {
				var ok bool
				v = perm[v]
				if e, ok = renameInt(e, perm); !ok {
					return "", false
				}
			}
			assigns = append(assigns, fmt.Sprintf("v%d:=%s", v, canonInt(e)))
		}
		sort.Strings(assigns)
		lines = append(lines, canonBool(g)+" -> "+strings.Join(assigns, "; "))
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n"), true
}

// renameInt maps every variable reference through perm. ok=false when the
// expression contains a node kind the renamer does not know — callers must
// then treat the candidate automorphism as invalid (conservative).
func renameInt(e protocol.IntExpr, perm []int) (protocol.IntExpr, bool) {
	switch x := e.(type) {
	case protocol.V:
		return protocol.V{ID: perm[x.ID]}, true
	case protocol.C:
		return x, true
	case protocol.AddMod:
		a, ok1 := renameInt(x.A, perm)
		b, ok2 := renameInt(x.B, perm)
		return protocol.AddMod{A: a, B: b, Mod: x.Mod}, ok1 && ok2
	case protocol.SubMod:
		a, ok1 := renameInt(x.A, perm)
		b, ok2 := renameInt(x.B, perm)
		return protocol.SubMod{A: a, B: b, Mod: x.Mod}, ok1 && ok2
	case protocol.Cond:
		c, ok1 := renameBool(x.If, perm)
		t, ok2 := renameInt(x.Then, perm)
		f, ok3 := renameInt(x.Else, perm)
		return protocol.Cond{If: c, Then: t, Else: f}, ok1 && ok2 && ok3
	default:
		return e, false
	}
}

// renameBool is renameInt for boolean expressions.
func renameBool(e protocol.BoolExpr, perm []int) (protocol.BoolExpr, bool) {
	switch x := e.(type) {
	case protocol.True, protocol.False:
		return e, true
	case protocol.Eq:
		a, ok1 := renameInt(x.A, perm)
		b, ok2 := renameInt(x.B, perm)
		return protocol.Eq{A: a, B: b}, ok1 && ok2
	case protocol.Neq:
		a, ok1 := renameInt(x.A, perm)
		b, ok2 := renameInt(x.B, perm)
		return protocol.Neq{A: a, B: b}, ok1 && ok2
	case protocol.Lt:
		a, ok1 := renameInt(x.A, perm)
		b, ok2 := renameInt(x.B, perm)
		return protocol.Lt{A: a, B: b}, ok1 && ok2
	case protocol.Not:
		y, ok := renameBool(x.X, perm)
		return protocol.Not{X: y}, ok
	case protocol.Implies:
		a, ok1 := renameBool(x.A, perm)
		b, ok2 := renameBool(x.B, perm)
		return protocol.Implies{A: a, B: b}, ok1 && ok2
	case protocol.And:
		xs := make([]protocol.BoolExpr, len(x.Xs))
		ok := true
		for i, c := range x.Xs {
			var o bool
			xs[i], o = renameBool(c, perm)
			ok = ok && o
		}
		return protocol.And{Xs: xs}, ok
	case protocol.Or:
		xs := make([]protocol.BoolExpr, len(x.Xs))
		ok := true
		for i, c := range x.Xs {
			var o bool
			xs[i], o = renameBool(c, perm)
			ok = ok && o
		}
		return protocol.Or{Xs: xs}, ok
	default:
		return e, false
	}
}

// canonInt renders an integer expression in a canonical, name-independent
// form (variables as v<id>).
func canonInt(e protocol.IntExpr) string {
	switch x := e.(type) {
	case protocol.V:
		return fmt.Sprintf("v%d", x.ID)
	case protocol.C:
		return fmt.Sprintf("%d", x.Val)
	case protocol.AddMod:
		return fmt.Sprintf("addmod(%s,%s,%d)", canonInt(x.A), canonInt(x.B), x.Mod)
	case protocol.SubMod:
		return fmt.Sprintf("submod(%s,%s,%d)", canonInt(x.A), canonInt(x.B), x.Mod)
	case protocol.Cond:
		return fmt.Sprintf("cond(%s,%s,%s)", canonBool(x.If), canonInt(x.Then), canonInt(x.Else))
	default:
		// Unknown node kind: a unique, never-matching rendering keeps the
		// equality test conservative (renameInt already rejects these).
		return fmt.Sprintf("unknown(%#v)", e)
	}
}

// canonBool renders a boolean expression canonically: nested And/Or are
// flattened and their operands sorted, and the commutative comparisons
// Eq/Neq sort their operands — so the invariants of ring protocols, whose
// conjuncts rotate onto each other, compare equal after renaming.
func canonBool(e protocol.BoolExpr) string {
	switch x := e.(type) {
	case protocol.True:
		return "true"
	case protocol.False:
		return "false"
	case protocol.Eq:
		a, b := canonInt(x.A), canonInt(x.B)
		if b < a {
			a, b = b, a
		}
		return fmt.Sprintf("eq(%s,%s)", a, b)
	case protocol.Neq:
		a, b := canonInt(x.A), canonInt(x.B)
		if b < a {
			a, b = b, a
		}
		return fmt.Sprintf("neq(%s,%s)", a, b)
	case protocol.Lt:
		return fmt.Sprintf("lt(%s,%s)", canonInt(x.A), canonInt(x.B))
	case protocol.Not:
		return fmt.Sprintf("not(%s)", canonBool(x.X))
	case protocol.Implies:
		return fmt.Sprintf("implies(%s,%s)", canonBool(x.A), canonBool(x.B))
	case protocol.And:
		return "and(" + strings.Join(canonFlatten(x.Xs, true), ",") + ")"
	case protocol.Or:
		return "or(" + strings.Join(canonFlatten(x.Xs, false), ",") + ")"
	default:
		return fmt.Sprintf("unknown(%#v)", e)
	}
}

// canonFlatten canonicalizes the operands of an n-ary connective, inlining
// nested connectives of the same kind, and returns them sorted.
func canonFlatten(xs []protocol.BoolExpr, conj bool) []string {
	var parts []string
	for _, x := range xs {
		if a, ok := x.(protocol.And); ok && conj {
			parts = append(parts, canonFlatten(a.Xs, conj)...)
			continue
		}
		if o, ok := x.(protocol.Or); ok && !conj {
			parts = append(parts, canonFlatten(o.Xs, conj)...)
			continue
		}
		parts = append(parts, canonBool(x))
	}
	sort.Strings(parts)
	return parts
}
