// Package symmetry analyzes the structural symmetry of synthesized
// protocols — the property the paper's Section VIII discusses: STSyn
// sometimes produces protocols whose processes are identical up to renaming
// (token ring, coloring) and sometimes asymmetric ones (maximal matching),
// depending on the recovery schedule and the order recovery is added.
//
// Symmetry is checked against an explicit protocol automorphism: a
// permutation of the variables together with the induced permutation of
// processes. For ring topologies the generator is rotation by one.
package symmetry

import (
	"fmt"
	"sort"

	"stsyn/internal/protocol"
)

// Automorphism is a candidate structural symmetry of a protocol: VarPerm
// maps each variable ID to its image and ProcPerm each process index to its
// image.
type Automorphism struct {
	VarPerm  []int
	ProcPerm []int
}

// Rotation returns the rotation-by-one automorphism for a protocol whose
// first k variables and processes are arranged in a ring (variable i owned
// by process i). Extra non-ring variables (beyond k) map to themselves.
func Rotation(sp *protocol.Spec, k int) Automorphism {
	vp := make([]int, len(sp.Vars))
	for i := range vp {
		if i < k {
			vp[i] = (i + 1) % k
		} else {
			vp[i] = i
		}
	}
	pp := make([]int, len(sp.Procs))
	for i := range pp {
		if i < k {
			pp[i] = (i + 1) % k
		} else {
			pp[i] = i
		}
	}
	return Automorphism{VarPerm: vp, ProcPerm: pp}
}

// Valid reports whether the automorphism respects the protocol's structure:
// domains are preserved and each process's read/write sets map onto its
// image's.
func (a Automorphism) Valid(sp *protocol.Spec) error {
	if len(a.VarPerm) != len(sp.Vars) || len(a.ProcPerm) != len(sp.Procs) {
		return fmt.Errorf("symmetry: permutation size mismatch")
	}
	for v, w := range a.VarPerm {
		if sp.Vars[v].Dom != sp.Vars[w].Dom {
			return fmt.Errorf("symmetry: variables %s and %s have different domains",
				sp.Vars[v].Name, sp.Vars[w].Name)
		}
	}
	for pi, pj := range a.ProcPerm {
		if !sameIDSet(mapIDs(sp.Procs[pi].Reads, a.VarPerm), sp.Procs[pj].Reads) {
			return fmt.Errorf("symmetry: reads of %s do not map onto reads of %s",
				sp.Procs[pi].Name, sp.Procs[pj].Name)
		}
		if !sameIDSet(mapIDs(sp.Procs[pi].Writes, a.VarPerm), sp.Procs[pj].Writes) {
			return fmt.Errorf("symmetry: writes of %s do not map onto writes of %s",
				sp.Procs[pi].Name, sp.Procs[pj].Name)
		}
	}
	return nil
}

func mapIDs(ids, perm []int) []int {
	out := make([]int, len(ids))
	for i, id := range ids {
		out[i] = perm[id]
	}
	sort.Ints(out)
	return out
}

func sameIDSet(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// Apply maps a transition group through the automorphism: the group of
// process π(p) obtained by renaming every variable.
func (a Automorphism) Apply(sp *protocol.Spec, g protocol.Group) protocol.Group {
	src := &sp.Procs[g.Proc]
	dstIdx := a.ProcPerm[g.Proc]
	dst := &sp.Procs[dstIdx]
	out := protocol.Group{
		Proc:      dstIdx,
		ReadVals:  make([]int, len(dst.Reads)),
		WriteVals: make([]int, len(dst.Writes)),
	}
	for i, id := range src.Reads {
		out.ReadVals[indexOf(dst.Reads, a.VarPerm[id])] = g.ReadVals[i]
	}
	for i, id := range src.Writes {
		out.WriteVals[indexOf(dst.Writes, a.VarPerm[id])] = g.WriteVals[i]
	}
	return out
}

func indexOf(ids []int, id int) int {
	for i, x := range ids {
		if x == id {
			return i
		}
	}
	panic("symmetry: variable image not in target locality")
}

// Symmetric reports whether the protocol (δ given as groups) is invariant
// under the automorphism: the image of the group set equals the group set.
func Symmetric(sp *protocol.Spec, groups []protocol.Group, a Automorphism) bool {
	if a.Valid(sp) != nil {
		return false
	}
	have := make(map[protocol.Key]bool, len(groups))
	for _, g := range groups {
		have[g.Key()] = true
	}
	for _, g := range groups {
		if !have[a.Apply(sp, g).Key()] {
			return false
		}
	}
	return true
}

// Classes partitions the processes into equivalence classes under repeated
// application of the automorphism: Pi and Pj land in one class iff some
// power of the automorphism maps Pi's group set exactly onto Pj's. The
// paper's "symmetric protocol" corresponds to all ring processes sharing a
// class.
func Classes(sp *protocol.Spec, groups []protocol.Group, a Automorphism) ([][]int, error) {
	if err := a.Valid(sp); err != nil {
		return nil, err
	}
	byProc := make([][]protocol.Group, len(sp.Procs))
	for _, g := range groups {
		byProc[g.Proc] = append(byProc[g.Proc], g)
	}
	sets := make([]map[protocol.Key]bool, len(sp.Procs))
	for pi, gs := range byProc {
		sets[pi] = make(map[protocol.Key]bool, len(gs))
		for _, g := range gs {
			sets[pi][g.Key()] = true
		}
	}
	// image(pi): the keys of pi's groups mapped one automorphism step.
	image := func(pi int) map[protocol.Key]bool {
		out := make(map[protocol.Key]bool, len(byProc[pi]))
		for _, g := range byProc[pi] {
			out[a.Apply(sp, g).Key()] = true
		}
		return out
	}

	class := make([]int, len(sp.Procs))
	for i := range class {
		class[i] = -1
	}
	next := 0
	for pi := range sp.Procs {
		if class[pi] >= 0 {
			continue
		}
		class[pi] = next
		// Walk the orbit of pi while group sets keep matching.
		cur := pi
		curImg := image(cur)
		for {
			to := a.ProcPerm[cur]
			if to == pi || class[to] >= 0 {
				break
			}
			if !equalKeySets(curImg, sets[to]) {
				break
			}
			class[to] = next
			cur = to
			curImg = image(cur)
		}
		next++
	}
	out := make([][]int, next)
	for pi, c := range class {
		out[c] = append(out[c], pi)
	}
	return out, nil
}

func equalKeySets(a, b map[protocol.Key]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}
