package symmetry_test

import (
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/symmetry"
)

func synthesize(t *testing.T, sp *protocol.Spec) []protocol.Group {
	t.Helper()
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	var out []protocol.Group
	for _, g := range res.Protocol {
		out = append(out, g.ProtocolGroup())
	}
	return out
}

func actionGroups(sp *protocol.Spec) []protocol.Group {
	var out []protocol.Group
	for pi := range sp.Procs {
		out = append(out, sp.ActionGroups(pi)...)
	}
	return out
}

func TestRotationValidOnRings(t *testing.T) {
	for _, sp := range []*protocol.Spec{
		protocols.Coloring(5),
		protocols.Matching(5),
		protocols.TokenRing(4, 3),
	} {
		rot := symmetry.Rotation(sp, len(sp.Procs))
		if err := rot.Valid(sp); err != nil {
			t.Errorf("%s: %v", sp.Name, err)
		}
	}
}

func TestRotationInvalidWhenDomainsDiffer(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	sp.Vars[2].Dom = 4 // break ring symmetry
	rot := symmetry.Rotation(sp, 4)
	if err := rot.Valid(sp); err == nil {
		t.Error("expected invalid automorphism for mixed domains")
	}
}

func TestApplyRoundTrip(t *testing.T) {
	sp := protocols.Coloring(5)
	rot := symmetry.Rotation(sp, 5)
	g := protocol.Group{Proc: 1, ReadVals: []int{0, 1, 2}, WriteVals: []int{2}}
	h := g
	// Five rotations bring the group back to itself.
	for i := 0; i < 5; i++ {
		h = rot.Apply(sp, h)
	}
	if h.Key() != g.Key() {
		t.Errorf("5 rotations changed the group: %v -> %v", g, h)
	}
	once := rot.Apply(sp, g)
	if once.Proc != 2 {
		t.Errorf("rotation moved P1's group to P%d, want P2", once.Proc)
	}
}

// TestGoudaAcharyaIsSymmetric: the manually designed protocol is symmetric
// by construction — a sanity check of the analysis itself.
func TestGoudaAcharyaIsSymmetric(t *testing.T) {
	sp := protocols.GoudaAcharyaMatching(5)
	rot := symmetry.Rotation(sp, 5)
	if !symmetry.Symmetric(sp, actionGroups(sp), rot) {
		t.Error("GA matching should be rotation-symmetric")
	}
	classes, err := symmetry.Classes(sp, actionGroups(sp), rot)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) != 1 || len(classes[0]) != 5 {
		t.Errorf("GA matching classes = %v, want one class of 5", classes)
	}
}

// TestSynthesizedMatchingIsAsymmetric reproduces the paper's Section VI-A
// observation: the synthesized MM protocol is asymmetric, unlike the
// manually designed one.
func TestSynthesizedMatchingIsAsymmetric(t *testing.T) {
	sp := protocols.Matching(5)
	groups := synthesize(t, sp)
	rot := symmetry.Rotation(sp, 5)
	if symmetry.Symmetric(sp, groups, rot) {
		t.Error("paper reports the synthesized MM protocol is asymmetric")
	}
	classes, err := symmetry.Classes(sp, groups, rot)
	if err != nil {
		t.Fatal(err)
	}
	if len(classes) == 1 {
		t.Errorf("expected multiple symmetry classes, got %v", classes)
	}
}

// TestSynthesizedTokenRingSymmetry: the synthesized TR equals Dijkstra's
// protocol, whose copy processes P1..P3 form one symmetry class while P0
// (the incrementer) stands alone. Rotation on the ring maps P1→P2→P3
// uniformly.
func TestSynthesizedTokenRingSymmetry(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	groups := synthesize(t, sp)
	rot := symmetry.Rotation(sp, 4)
	classes, err := symmetry.Classes(sp, groups, rot)
	if err != nil {
		t.Fatal(err)
	}
	// P1, P2, P3 must land in one class.
	var copyClass []int
	for _, c := range classes {
		for _, p := range c {
			if p == 1 {
				copyClass = c
			}
		}
	}
	if len(copyClass) != 3 {
		t.Errorf("copy processes not in one class: %v", classes)
	}
}

// TestSynthesizedColoringMiddleSymmetry: the synthesized coloring protocol
// has symmetric middle processes (the paper prints one parametric action
// for 1 < i < 40).
func TestSynthesizedColoringMiddleSymmetry(t *testing.T) {
	sp := protocols.Coloring(6)
	groups := synthesize(t, sp)
	rot := symmetry.Rotation(sp, 6)
	classes, err := symmetry.Classes(sp, groups, rot)
	if err != nil {
		t.Fatal(err)
	}
	var mid []int
	for _, c := range classes {
		for _, p := range c {
			if p == 2 {
				mid = c
			}
		}
	}
	if len(mid) < 3 {
		t.Errorf("middle coloring processes should share a class, got %v", classes)
	}
}
