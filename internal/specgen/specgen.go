// Package specgen generates random protocol specifications for fuzzing and
// differential testing. The generated protocols are deliberately tiny (3-4
// variables with domains 2-3, 2-3 processes) so brute-force enumeration of
// the state space stays cheap, yet they cover the whole expression AST
// (modular arithmetic, conditionals, comparisons, all connectives) and the
// full range of synthesis outcomes — success, ErrNoStabilizingVersion,
// ErrNotClosed, ErrDeadlocksRemain — which makes them sharp inputs for
// cross-engine differential batteries.
package specgen

import (
	"math/rand"

	"stsyn/internal/protocol"
)

// RandomSpec generates a small random protocol: 3-4 variables with domains
// 2-3, 2-3 processes with random localities (w ⊆ r guaranteed), random
// guarded commands when withActions is set, and a random invariant.
func RandomSpec(rng *rand.Rand, withActions bool) *protocol.Spec {
	nv := 3 + rng.Intn(2)
	sp := &protocol.Spec{Name: "fuzz"}
	for i := 0; i < nv; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{
			Name: "v" + string(rune('0'+i)),
			Dom:  2 + rng.Intn(2),
		})
	}
	np := 2 + rng.Intn(2)
	for p := 0; p < np; p++ {
		// Writes: one random variable; reads: the write plus 1-2 others.
		w := rng.Intn(nv)
		reads := map[int]bool{w: true}
		for len(reads) < 2+rng.Intn(2) {
			reads[rng.Intn(nv)] = true
		}
		var rs []int
		for id := range reads {
			rs = append(rs, id)
		}
		proc := protocol.Process{
			Name:   "P" + string(rune('0'+p)),
			Reads:  protocol.SortedIDs(rs...),
			Writes: []int{w},
		}
		if withActions {
			for a := 0; a < rng.Intn(3); a++ {
				guard := RandomBoolExpr(rng, sp, proc.Reads, 2)
				val := rng.Intn(sp.Vars[w].Dom)
				proc.Actions = append(proc.Actions, protocol.Action{
					Guard:   guard,
					Assigns: []protocol.Assignment{{Var: w, Expr: protocol.C{Val: val}}},
				})
			}
		}
		sp.Procs = append(sp.Procs, proc)
	}
	sp.Invariant = RandomBoolExpr(rng, sp, AllIDs(nv), 3)
	return sp
}

// AllIDs returns the identifiers 0..n-1.
func AllIDs(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

// RandomIntExpr builds a random integer expression over the given variables
// (modular arithmetic needs uniform moduli, so operand domains are matched).
// It returns the expression and the domain its values range over.
func RandomIntExpr(rng *rand.Rand, sp *protocol.Spec, vars []int, depth int) (protocol.IntExpr, int) {
	a := vars[rng.Intn(len(vars))]
	dom := sp.Vars[a].Dom
	if depth == 0 || rng.Intn(2) == 0 {
		if rng.Intn(3) == 0 {
			return protocol.C{Val: rng.Intn(dom)}, dom
		}
		return protocol.V{ID: a}, dom
	}
	// Pick a second operand of the same domain.
	var same []int
	for _, v := range vars {
		if sp.Vars[v].Dom == dom {
			same = append(same, v)
		}
	}
	lhs, _ := RandomIntExpr(rng, sp, []int{a}, 0)
	rhs, _ := RandomIntExpr(rng, sp, same, depth-1)
	switch rng.Intn(3) {
	case 0:
		return protocol.AddMod{A: lhs, B: rhs, Mod: dom}, dom
	case 1:
		return protocol.SubMod{A: lhs, B: rhs, Mod: dom}, dom
	default:
		return protocol.Cond{
			If:   RandomBoolExpr(rng, sp, vars, 0),
			Then: lhs,
			Else: rhs,
		}, dom
	}
}

// RandomBoolExpr builds a random boolean expression over the given
// variables.
func RandomBoolExpr(rng *rand.Rand, sp *protocol.Spec, vars []int, depth int) protocol.BoolExpr {
	if depth == 0 || rng.Intn(3) == 0 {
		a, _ := RandomIntExpr(rng, sp, vars, 1)
		b, _ := RandomIntExpr(rng, sp, vars, 1)
		switch rng.Intn(3) {
		case 0:
			return protocol.Eq{A: a, B: b}
		case 1:
			return protocol.Neq{A: a, B: b}
		default:
			return protocol.Lt{A: a, B: b}
		}
	}
	switch rng.Intn(4) {
	case 0:
		return protocol.Conj(RandomBoolExpr(rng, sp, vars, depth-1), RandomBoolExpr(rng, sp, vars, depth-1))
	case 1:
		return protocol.Disj(RandomBoolExpr(rng, sp, vars, depth-1), RandomBoolExpr(rng, sp, vars, depth-1))
	case 2:
		return protocol.Implies{A: RandomBoolExpr(rng, sp, vars, depth-1), B: RandomBoolExpr(rng, sp, vars, depth-1)}
	default:
		return protocol.Not{X: RandomBoolExpr(rng, sp, vars, depth-1)}
	}
}
