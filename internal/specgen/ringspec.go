package specgen

import (
	"fmt"
	"math/rand"

	"stsyn/internal/protocol"
	"stsyn/internal/symmetry"
)

// RandomRingSpec generates a rotation-symmetric ring protocol: 3-4
// processes in a ring, one variable per process with one uniform domain,
// and actions plus invariant built by rotating a single process-0 template
// around the ring — so rotation-by-1 is an automorphism of the whole
// synthesis problem by construction. These are the inputs of the prune
// package's quotient-coverage fuzz battery; like RandomSpec they stay tiny
// so whole-space enumeration is cheap.
func RandomRingSpec(rng *rand.Rand, withActions bool) *protocol.Spec {
	k := 3 + rng.Intn(2)
	dom := 2 + rng.Intn(2)
	sp := &protocol.Spec{Name: "fuzzring"}
	for i := 0; i < k; i++ {
		sp.Vars = append(sp.Vars, protocol.Var{Name: fmt.Sprintf("x%d", i), Dom: dom})
	}

	// Templates over process 0's locality: its own variable and its right
	// neighbour's. All domains are uniform, so modular operands stay matched
	// under rotation.
	tmplReads := []int{0, 1}
	var tmplActions []protocol.Action
	if withActions {
		for a := 0; a < rng.Intn(3); a++ {
			tmplActions = append(tmplActions, protocol.Action{
				Guard:   RandomBoolExpr(rng, sp, tmplReads, 2),
				Assigns: []protocol.Assignment{{Var: 0, Expr: protocol.C{Val: rng.Intn(dom)}}},
			})
		}
	}
	tmplInv := RandomBoolExpr(rng, sp, tmplReads, 2)
	conj := rng.Intn(2) == 0

	var invParts []protocol.BoolExpr
	for i := 0; i < k; i++ {
		rot := make([]int, k)
		for v := range rot {
			rot[v] = (v + i) % k
		}
		proc := protocol.Process{
			Name:   fmt.Sprintf("P%d", i),
			Reads:  protocol.SortedIDs(i, (i+1)%k),
			Writes: []int{i},
		}
		for _, act := range tmplActions {
			proc.Actions = append(proc.Actions, rotateAction(act, rot))
		}
		sp.Procs = append(sp.Procs, proc)
		invParts = append(invParts, mustRenameBool(tmplInv, rot))
	}
	if conj {
		sp.Invariant = protocol.And{Xs: invParts}
	} else {
		sp.Invariant = protocol.Or{Xs: invParts}
	}
	return sp
}

func rotateAction(act protocol.Action, perm []int) protocol.Action {
	out := protocol.Action{Guard: mustRenameBool(act.Guard, perm)}
	for _, as := range act.Assigns {
		e, ok := symmetry.RenameInt(as.Expr, perm)
		if !ok {
			panic("specgen: generated an expression the symmetry renamer does not cover")
		}
		out.Assigns = append(out.Assigns, protocol.Assignment{Var: perm[as.Var], Expr: e})
	}
	return out
}

func mustRenameBool(e protocol.BoolExpr, perm []int) protocol.BoolExpr {
	out, ok := symmetry.RenameBool(e, perm)
	if !ok {
		panic("specgen: generated an expression the symmetry renamer does not cover")
	}
	return out
}
