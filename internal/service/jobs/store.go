// Package jobs is the async job store of the synthesis service: a bounded
// in-memory table of submitted jobs keyed by opaque IDs, tracking each
// through queued → running → one of done / failed / canceled, and retaining
// terminal results for a TTL so clients can poll them before eviction.
//
// The store holds no synthesis machinery — the service enqueues work on its
// own pool and reports transitions here — so it stays a small, race-free
// state machine that the -race stress suite can hammer in isolation.
package jobs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"sync"
	"time"

	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// State is one phase of a job's lifecycle, using the wire spellings of
// stsynapi (queued, running, done, failed, canceled).
type State string

// The lifecycle states. Legal transitions: queued → running → {done,
// failed, canceled}; queued or running → canceled. Terminal states never
// change again.
const (
	Queued   = State(stsynapi.JobQueued)
	Running  = State(stsynapi.JobRunning)
	Done     = State(stsynapi.JobDone)
	Failed   = State(stsynapi.JobFailed)
	Canceled = State(stsynapi.JobCanceled)
)

// Terminal reports whether a state is final.
func (s State) Terminal() bool { return s == Done || s == Failed || s == Canceled }

// Snapshot is a point-in-time copy of one job's externally visible state.
type Snapshot struct {
	ID    string
	State State
	// Created is the submission time; Finished is the terminal-transition
	// time (zero while live).
	Created  time.Time
	Finished time.Time
	// Response is set exactly when State is Done.
	Response *stsynapi.Response
	// Err is the typed failure, set when State is Failed or Canceled.
	Err *stsynerr.Error
}

// Elapsed is the job's age: creation to finish once terminal, creation to
// now while live.
func (s *Snapshot) Elapsed() time.Duration {
	if s.State.Terminal() {
		return s.Finished.Sub(s.Created)
	}
	return time.Since(s.Created)
}

// entry is one stored job. The cancel func aborts the underlying run; it
// is kept until the job reaches a terminal state.
type entry struct {
	id       string
	state    State
	created  time.Time
	finished time.Time
	expires  time.Time // eviction deadline, set on terminal transition
	cancel   context.CancelFunc
	resp     *stsynapi.Response
	err      *stsynerr.Error
}

// Counts is the store's population by state plus its lifetime eviction
// counter, for the metrics endpoint.
type Counts struct {
	Queued    int
	Running   int
	Done      int
	Failed    int
	Canceled  int
	Evictions int64
}

// Store is a bounded job table. Safe for concurrent use.
type Store struct {
	mu        sync.Mutex
	max       int
	ttl       time.Duration
	entries   map[string]*entry
	evictions int64
	now       func() time.Time // test hook
}

// NewStore builds a store holding at most max jobs (live plus retained
// terminal), retaining terminal results for ttl.
func NewStore(max int, ttl time.Duration) *Store {
	if max <= 0 {
		max = 1024
	}
	if ttl <= 0 {
		ttl = 10 * time.Minute
	}
	return &Store{max: max, ttl: ttl, entries: make(map[string]*entry), now: time.Now}
}

// SetClock replaces the store's time source (tests only).
func (st *Store) SetClock(now func() time.Time) {
	st.mu.Lock()
	st.now = now
	st.mu.Unlock()
}

// newID returns a fresh 16-hex-digit job ID.
func newID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// Create admits a new queued job, returning its ID. cancel aborts the
// job's run; the store calls it on Cancel. A full store (after sweeping
// expired results) answers a QueueFull error.
func (st *Store) Create(cancel context.CancelFunc) (string, *stsynerr.Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	now := st.now()
	st.sweepLocked(now)
	if len(st.entries) >= st.max {
		return "", stsynerr.New(stsynerr.QueueFull, "job store full, retry later")
	}
	id := newID()
	for st.entries[id] != nil {
		id = newID()
	}
	st.entries[id] = &entry{id: id, state: Queued, created: now, cancel: cancel}
	return id, nil
}

// Drop abandons an entry whose job never made it onto the run queue (the
// submission failed downstream of Create), so the failed submission
// neither occupies the store nor becomes a pollable failed job.
func (st *Store) Drop(id string) {
	st.mu.Lock()
	delete(st.entries, id)
	st.mu.Unlock()
}

// Start marks a queued job running. A job already canceled (or missing)
// reports false and the run should stop.
func (st *Store) Start(id string) bool {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[id]
	if e == nil || e.state != Queued {
		return false
	}
	e.state = Running
	return true
}

// Finish records a job's outcome and starts its retention TTL: a response
// makes it Done; an error makes it Failed, or Canceled when the error
// carries the Canceled name. Finishing an already-terminal (or evicted)
// job is a no-op, so a cancel racing a natural completion keeps whichever
// transition won.
func (st *Store) Finish(id string, resp *stsynapi.Response, err *stsynerr.Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	e := st.entries[id]
	if e == nil || e.state.Terminal() {
		return
	}
	now := st.now()
	e.finished = now
	e.expires = now.Add(st.ttl)
	e.cancel = nil
	if err != nil {
		e.err = err
		e.state = Failed
		if err.ErrorName() == stsynerr.Canceled {
			e.state = Canceled
		}
		return
	}
	e.resp = resp
	e.state = Done
}

// Cancel aborts a live job: its context is canceled and it transitions to
// Canceled immediately (the run's eventual error is then ignored by
// Finish). Canceling a terminal job is a no-op reporting its snapshot;
// canceling an unknown ID answers JobNotFound.
func (st *Store) Cancel(id string) (Snapshot, *stsynerr.Error) {
	st.mu.Lock()
	now := st.now()
	st.sweepLocked(now)
	e := st.entries[id]
	if e == nil {
		st.mu.Unlock()
		return Snapshot{}, stsynerr.Newf(stsynerr.JobNotFound, "no job %s", id)
	}
	cancel := e.cancel
	if !e.state.Terminal() {
		e.state = Canceled
		e.finished = now
		e.expires = now.Add(st.ttl)
		e.err = stsynerr.New(stsynerr.Canceled, "job cancelled")
		e.cancel = nil
	}
	snap := e.snapshotLocked()
	st.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return snap, nil
}

// Get returns a job's snapshot, or JobNotFound for unknown and expired IDs.
func (st *Store) Get(id string) (Snapshot, *stsynerr.Error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	e := st.entries[id]
	if e == nil {
		return Snapshot{}, stsynerr.Newf(stsynerr.JobNotFound, "no job %s", id)
	}
	return e.snapshotLocked(), nil
}

// Counts returns the store's population by state (after sweeping).
func (st *Store) Counts() Counts {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.sweepLocked(st.now())
	c := Counts{Evictions: st.evictions}
	for _, e := range st.entries {
		switch e.state {
		case Queued:
			c.Queued++
		case Running:
			c.Running++
		case Done:
			c.Done++
		case Failed:
			c.Failed++
		case Canceled:
			c.Canceled++
		}
	}
	return c
}

// snapshotLocked copies an entry's visible state; st.mu must be held.
func (e *entry) snapshotLocked() Snapshot {
	return Snapshot{
		ID:       e.id,
		State:    e.state,
		Created:  e.created,
		Finished: e.finished,
		Response: e.resp,
		Err:      e.err,
	}
}

// sweepLocked evicts terminal entries past their TTL; st.mu must be held.
// Sweeping lazily on every store operation keeps the store dependency-free
// (no background goroutine to drain on shutdown).
func (st *Store) sweepLocked(now time.Time) {
	for id, e := range st.entries {
		if e.state.Terminal() && now.After(e.expires) {
			delete(st.entries, id)
			st.evictions++
		}
	}
}
