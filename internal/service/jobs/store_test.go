package jobs

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

func TestLifecycleQueuedRunningDone(t *testing.T) {
	st := NewStore(4, time.Minute)
	id, serr := st.Create(func() {})
	if serr != nil {
		t.Fatal(serr)
	}
	if len(id) != 16 {
		t.Errorf("ID %q, want 16 hex digits", id)
	}
	snap, serr := st.Get(id)
	if serr != nil || snap.State != Queued {
		t.Fatalf("fresh job = %+v, %v", snap, serr)
	}
	if !st.Start(id) {
		t.Fatal("Start on queued job = false")
	}
	if st.Start(id) {
		t.Error("second Start = true, want false (already running)")
	}
	resp := &stsynapi.Response{Verified: true}
	st.Finish(id, resp, nil)
	snap, _ = st.Get(id)
	if snap.State != Done || snap.Response != resp || snap.Err != nil {
		t.Errorf("finished job = %+v", snap)
	}
	if snap.Elapsed() < 0 {
		t.Errorf("elapsed = %v", snap.Elapsed())
	}
	// Terminal states never change again.
	st.Finish(id, nil, stsynerr.New(stsynerr.Internal, "late failure"))
	if snap, _ = st.Get(id); snap.State != Done {
		t.Errorf("terminal job rewritten to %q", snap.State)
	}
}

func TestFinishClassifiesFailureAndCancellation(t *testing.T) {
	st := NewStore(4, time.Minute)
	fail, _ := st.Create(func() {})
	st.Finish(fail, nil, stsynerr.New(stsynerr.SynthesisFailed, "no luck"))
	if snap, _ := st.Get(fail); snap.State != Failed || snap.Err == nil {
		t.Errorf("failed job = %+v", snap)
	}
	can, _ := st.Create(func() {})
	st.Finish(can, nil, stsynerr.New(stsynerr.Canceled, "stopped"))
	if snap, _ := st.Get(can); snap.State != Canceled {
		t.Errorf("canceled-error job state = %q, want canceled", snap.State)
	}
}

func TestCancelCallsCancelFuncAndWinsRace(t *testing.T) {
	st := NewStore(4, time.Minute)
	var called atomic.Int64
	id, _ := st.Create(func() { called.Add(1) })
	st.Start(id)
	snap, serr := st.Cancel(id)
	if serr != nil || snap.State != Canceled || snap.Err == nil {
		t.Fatalf("cancel = %+v, %v", snap, serr)
	}
	if called.Load() != 1 {
		t.Errorf("cancel func called %d times, want 1", called.Load())
	}
	// The run's eventual outcome must not overwrite the cancellation.
	st.Finish(id, &stsynapi.Response{Verified: true}, nil)
	if snap, _ = st.Get(id); snap.State != Canceled || snap.Response != nil {
		t.Errorf("race loser overwrote cancel: %+v", snap)
	}
	// Canceling again is a no-op answering the same terminal snapshot.
	if snap, serr = st.Cancel(id); serr != nil || snap.State != Canceled {
		t.Errorf("re-cancel = %+v, %v", snap, serr)
	}
	if called.Load() != 1 {
		t.Errorf("terminal re-cancel re-fired the cancel func")
	}
	if _, serr = st.Cancel("missing"); serr == nil || serr.ErrorName() != stsynerr.JobNotFound {
		t.Errorf("cancel unknown = %v, want JobNotFound", serr)
	}
}

func TestCapacityAndTTLSweep(t *testing.T) {
	st := NewStore(2, time.Minute)
	clock := time.Unix(1000, 0)
	st.SetClock(func() time.Time { return clock })

	a, _ := st.Create(func() {})
	if _, serr := st.Create(func() {}); serr != nil {
		t.Fatal(serr)
	}
	if _, serr := st.Create(func() {}); serr == nil || serr.ErrorName() != stsynerr.QueueFull {
		t.Fatalf("overfull Create = %v, want QueueFull", serr)
	}

	// A terminal job holds its slot only until the TTL passes.
	st.Finish(a, &stsynapi.Response{}, nil)
	clock = clock.Add(30 * time.Second)
	if _, serr := st.Get(a); serr != nil {
		t.Fatalf("job evicted before its TTL: %v", serr)
	}
	clock = clock.Add(31 * time.Second)
	if _, serr := st.Get(a); serr == nil || serr.ErrorName() != stsynerr.JobNotFound {
		t.Fatalf("expired Get = %v, want JobNotFound", serr)
	}
	if c := st.Counts(); c.Evictions != 1 || c.Queued != 1 {
		t.Errorf("counts after sweep = %+v, want 1 eviction, 1 queued", c)
	}
	// The freed slot is usable again.
	if _, serr := st.Create(func() {}); serr != nil {
		t.Errorf("Create after sweep: %v", serr)
	}
}

func TestDropReleasesSlotWithoutTrace(t *testing.T) {
	st := NewStore(1, time.Minute)
	id, _ := st.Create(func() {})
	st.Drop(id)
	if _, serr := st.Get(id); serr == nil {
		t.Error("dropped job still visible")
	}
	if _, serr := st.Create(func() {}); serr != nil {
		t.Errorf("Create after Drop: %v", serr)
	}
}

// The -race gate: one store hammered by concurrent creators, starters,
// finishers, cancelers and pollers must stay consistent.
func TestStoreConcurrentStress(t *testing.T) {
	st := NewStore(256, time.Minute)
	var created atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				id, serr := st.Create(func() {})
				if serr != nil {
					// The cap bites under stress; a typed QueueFull is the
					// contract, anything else is a bug.
					if serr.ErrorName() != stsynerr.QueueFull {
						t.Errorf("Create: %v", serr)
						return
					}
					continue
				}
				created.Add(1)
				st.Start(id)
				if (g+i)%3 == 0 {
					st.Cancel(id)
				}
				st.Finish(id, &stsynapi.Response{Verified: true}, nil)
				snap, serr := st.Get(id)
				if serr != nil {
					t.Errorf("Get(%s): %v", id, serr)
					return
				}
				if !snap.State.Terminal() {
					t.Errorf("job %s left in %q after Finish", id, snap.State)
					return
				}
				st.Counts()
			}
		}(g)
	}
	wg.Wait()
	c := st.Counts()
	if c.Queued != 0 || c.Running != 0 {
		t.Errorf("live jobs after stress: %+v", c)
	}
	if int64(c.Done+c.Canceled) != created.Load() {
		t.Errorf("terminal population = %+v, want %d total", c, created.Load())
	}
}
