package service

import (
	"fmt"
	"io"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Metrics aggregates the service's observability counters. All methods are
// safe for concurrent use; counters are monotonic and suitable for
// Prometheus-style scraping via WritePrometheus.
type Metrics struct {
	JobsStarted   atomic.Int64
	JobsSucceeded atomic.Int64
	JobsFailed    atomic.Int64
	JobsCancelled atomic.Int64

	CacheHits   atomic.Int64
	CacheMisses atomic.Int64

	QueueRejected atomic.Int64

	// Async job API observability.
	AsyncSubmitted atomic.Int64 // jobs accepted by POST /v1/jobs
	AsyncCanceled  atomic.Int64 // jobs canceled by DELETE /v1/jobs/{id}

	// Batch endpoint observability.
	BatchRequests  atomic.Int64 // POST /v1/batch calls accepted
	BatchItems     atomic.Int64 // synthesis requests carried by batches
	BatchDeduped   atomic.Int64 // batch items deduplicated within a batch
	BatchCacheHits atomic.Int64 // unique batch items served from the cache

	// Per-tenant admission observability.
	AdmissionRejected atomic.Int64 // requests rejected by token-bucket admission

	// BDD substrate observability, aggregated across symbolic-engine jobs
	// (each job has its own manager, so counters are summed at job end and
	// the node gauges track the most recent / largest job).
	BDDGCRuns         atomic.Int64 // cumulative collections
	BDDGCReclaimed    atomic.Int64 // cumulative nodes reclaimed
	BDDCacheHits      atomic.Int64 // cumulative op-cache hits
	BDDCacheMisses    atomic.Int64 // cumulative op-cache misses
	BDDCacheEvictions atomic.Int64 // cumulative op-cache evictions
	BDDLiveNodes      atomic.Int64 // live nodes of the most recent job
	BDDPeakNodes      atomic.Int64 // max peak live nodes over all jobs

	// Explicit-engine kernel observability, aggregated across jobs.
	ExplicitPreOps     atomic.Int64 // cumulative Pre image kernels
	ExplicitPostOps    atomic.Int64 // cumulative Post image kernels
	ExplicitGroupTests atomic.Int64 // cumulative per-group membership tests

	// Synthesizer fast-fail observability: cumulative rank-∞ fast-fail
	// short-circuits across jobs (see core.Stats.RankInfinityFastFail).
	RankInfinityFastFail atomic.Int64

	// Search-space pruning observability, aggregated across prune-enabled
	// jobs.
	PruneSchedulesPruned atomic.Int64 // schedules dropped by the orbit quotient
	PruneMemoHits        atomic.Int64 // fixpoint-memo hits
	PruneMemoMisses      atomic.Int64 // fixpoint-memo misses

	mu      sync.Mutex
	latency map[string]*histogram // per engine
}

// ObserveBDD folds one finished job's substrate statistics into the
// service-level counters.
func (m *Metrics) ObserveBDD(s *BDDStats) {
	if s == nil {
		return
	}
	m.BDDGCRuns.Add(int64(s.GCRuns))
	m.BDDGCReclaimed.Add(int64(s.GCReclaimed))
	m.BDDCacheHits.Add(int64(s.CacheHits))
	m.BDDCacheMisses.Add(int64(s.CacheMisses))
	m.BDDCacheEvictions.Add(int64(s.CacheEvictions))
	m.BDDLiveNodes.Store(int64(s.LiveNodes))
	for {
		old := m.BDDPeakNodes.Load()
		if int64(s.PeakLiveNodes) <= old || m.BDDPeakNodes.CompareAndSwap(old, int64(s.PeakLiveNodes)) {
			break
		}
	}
}

// ObserveExplicit folds one finished job's explicit-engine kernel counters
// into the service-level counters.
func (m *Metrics) ObserveExplicit(s *ExplicitStats) {
	if s == nil {
		return
	}
	m.ExplicitPreOps.Add(int64(s.PreOps))
	m.ExplicitPostOps.Add(int64(s.PostOps))
	m.ExplicitGroupTests.Add(int64(s.GroupTests))
}

// ObservePrune folds one finished prune-enabled job's quotient and memo
// counters into the service-level counters.
func (m *Metrics) ObservePrune(s *PruneStats) {
	if s == nil {
		return
	}
	m.PruneSchedulesPruned.Add(int64(s.SchedulesPruned))
	m.PruneMemoHits.Add(s.MemoHits)
	m.PruneMemoMisses.Add(s.MemoMisses)
}

// latencyBucketsMS are the job-duration histogram bucket upper bounds in
// milliseconds. Cache hits are served in microseconds and bypass jobs
// entirely, so the buckets only need to cover real synthesis runs.
var latencyBucketsMS = []float64{1, 5, 10, 50, 100, 500, 1000, 5000, 30000}

type histogram struct {
	counts []int64 // one per bucket, plus the +Inf bucket at the end
	sum    float64 // milliseconds
	count  int64
}

func newMetrics() *Metrics {
	return &Metrics{latency: make(map[string]*histogram)}
}

// ObserveJob records one finished job's wall-clock duration under the given
// engine label.
func (m *Metrics) ObserveJob(engine string, d time.Duration) {
	ms := float64(d.Microseconds()) / 1e3
	m.mu.Lock()
	defer m.mu.Unlock()
	h, ok := m.latency[engine]
	if !ok {
		h = &histogram{counts: make([]int64, len(latencyBucketsMS)+1)}
		m.latency[engine] = h
	}
	i := sort.SearchFloat64s(latencyBucketsMS, ms)
	h.counts[i]++
	h.sum += ms
	h.count++
}

// MeanJobMS returns the mean wall-clock duration in milliseconds of every
// finished job across all engines, or 0 when none has finished yet. It
// feeds the server's Retry-After estimate on queue-full responses.
func (m *Metrics) MeanJobMS() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	var sum float64
	var n int64
	for _, h := range m.latency {
		sum += h.sum
		n += h.count
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// WritePrometheus writes all counters in the Prometheus text exposition
// format. gauges are point-in-time values supplied by the server (queue
// depth, cache size).
func (m *Metrics) WritePrometheus(w io.Writer, gauges map[string]float64) {
	counter := func(name, help string, v int64) {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n", name, help, name, name, v)
	}
	counter("stsyn_jobs_started_total", "Synthesis jobs started.", m.JobsStarted.Load())
	counter("stsyn_jobs_succeeded_total", "Synthesis jobs that produced a verified protocol.", m.JobsSucceeded.Load())
	counter("stsyn_jobs_failed_total", "Synthesis jobs that failed (bad input or heuristic failure).", m.JobsFailed.Load())
	counter("stsyn_jobs_cancelled_total", "Synthesis jobs cancelled or timed out.", m.JobsCancelled.Load())
	counter("stsyn_cache_hits_total", "Requests served from the result cache.", m.CacheHits.Load())
	counter("stsyn_cache_misses_total", "Requests that missed the result cache.", m.CacheMisses.Load())
	counter("stsyn_queue_rejected_total", "Requests rejected because the job queue was full.", m.QueueRejected.Load())
	counter("stsyn_async_jobs_submitted_total", "Async jobs accepted by POST /v1/jobs.", m.AsyncSubmitted.Load())
	counter("stsyn_async_jobs_canceled_total", "Async jobs canceled by DELETE /v1/jobs/{id}.", m.AsyncCanceled.Load())
	counter("stsyn_batch_requests_total", "Batch calls accepted by POST /v1/batch.", m.BatchRequests.Load())
	counter("stsyn_batch_items_total", "Synthesis requests carried by batch calls.", m.BatchItems.Load())
	counter("stsyn_batch_deduped_total", "Batch items deduplicated within their batch.", m.BatchDeduped.Load())
	counter("stsyn_batch_cache_hits_total", "Unique batch items served from the result cache.", m.BatchCacheHits.Load())
	counter("stsyn_admission_rejected_total", "Requests rejected by per-tenant token-bucket admission.", m.AdmissionRejected.Load())
	counter("stsyn_bdd_gc_runs_total", "BDD garbage collections across symbolic jobs.", m.BDDGCRuns.Load())
	counter("stsyn_bdd_gc_reclaimed_nodes_total", "BDD nodes reclaimed by garbage collection.", m.BDDGCReclaimed.Load())
	counter("stsyn_bdd_op_cache_hits_total", "BDD operation-cache hits across symbolic jobs.", m.BDDCacheHits.Load())
	counter("stsyn_bdd_op_cache_misses_total", "BDD operation-cache misses across symbolic jobs.", m.BDDCacheMisses.Load())
	counter("stsyn_bdd_op_cache_evictions_total", "BDD operation-cache evictions across symbolic jobs.", m.BDDCacheEvictions.Load())
	counter("stsyn_explicit_pre_ops_total", "Explicit-engine Pre image kernels across jobs.", m.ExplicitPreOps.Load())
	counter("stsyn_explicit_post_ops_total", "Explicit-engine Post image kernels across jobs.", m.ExplicitPostOps.Load())
	counter("stsyn_explicit_group_tests_total", "Explicit-engine per-group membership tests across jobs.", m.ExplicitGroupTests.Load())
	counter("stsyn_rank_infinity_fastfail_total", "Rank-infinity fast-fail short-circuits across synthesis jobs.", m.RankInfinityFastFail.Load())
	counter("stsyn_prune_schedules_pruned_total", "Schedules dropped by the symmetry orbit quotient.", m.PruneSchedulesPruned.Load())
	counter("stsyn_prune_memo_hits_total", "Fixpoint-memo hits across prune-enabled jobs.", m.PruneMemoHits.Load())
	counter("stsyn_prune_memo_misses_total", "Fixpoint-memo misses across prune-enabled jobs.", m.PruneMemoMisses.Load())

	if gauges == nil {
		gauges = map[string]float64{}
	}
	gauges["stsyn_bdd_live_nodes"] = float64(m.BDDLiveNodes.Load())
	gauges["stsyn_bdd_peak_nodes"] = float64(m.BDDPeakNodes.Load())

	names := make([]string, 0, len(gauges))
	for name := range gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", name, name, gauges[name])
	}

	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.latency) == 0 {
		return
	}
	fmt.Fprintf(w, "# HELP stsyn_job_duration_ms Synthesis job duration in milliseconds.\n")
	fmt.Fprintf(w, "# TYPE stsyn_job_duration_ms histogram\n")
	engines := make([]string, 0, len(m.latency))
	for e := range m.latency {
		engines = append(engines, e)
	}
	sort.Strings(engines)
	for _, e := range engines {
		h := m.latency[e]
		cum := int64(0)
		for i, le := range latencyBucketsMS {
			cum += h.counts[i]
			fmt.Fprintf(w, "stsyn_job_duration_ms_bucket{engine=%q,le=%q} %d\n", e, formatBound(le), cum)
		}
		cum += h.counts[len(latencyBucketsMS)]
		fmt.Fprintf(w, "stsyn_job_duration_ms_bucket{engine=%q,le=\"+Inf\"} %d\n", e, cum)
		fmt.Fprintf(w, "stsyn_job_duration_ms_sum{engine=%q} %g\n", e, h.sum)
		fmt.Fprintf(w, "stsyn_job_duration_ms_count{engine=%q} %d\n", e, h.count)
	}
}

func formatBound(le float64) string {
	if le == math.Trunc(le) {
		return fmt.Sprintf("%d", int64(le))
	}
	return fmt.Sprintf("%g", le)
}
