package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"

	"stsyn/internal/protocol"
)

// CanonicalKey returns the content address of a normalized job: a SHA-256
// over a canonical rendering of the specification plus every
// result-affecting option. Two requests that denote the same synthesis
// problem — whether a built-in was named or the equivalent spec inlined,
// whether defaults were spelled out or omitted — map to the same key.
//
// The spec's Name is deliberately excluded: it labels the protocol but does
// not affect the synthesized result.
func CanonicalKey(j *Job) string {
	h := sha256.New()
	writeCanonicalSpec(h, j.Spec)
	fmt.Fprintf(h, "engine=%s\nconvergence=%s\nresolution=%d\nfanout=%v\nscc=%s\nworkers=%d\n",
		j.Engine, j.Convergence, j.Resolution, j.Fanout, j.SCC, j.Workers)
	if !j.Fanout {
		fmt.Fprintf(h, "schedule=%v\n", j.Schedule)
	}
	return hex.EncodeToString(h.Sum(nil))
}

// writeCanonicalSpec writes a deterministic rendering of the specification:
// variables with domains, per-process localities, actions as rendered
// guarded commands, and the rendered invariant. Expression rendering is
// syntactic, so specs are equal iff they were written identically up to
// whitespace — a sound (never merging distinct problems) and cheap notion
// of content equality.
func writeCanonicalSpec(w interface{ Write([]byte) (int, error) }, sp *protocol.Spec) {
	names := sp.VarNames()
	var b strings.Builder
	for _, v := range sp.Vars {
		fmt.Fprintf(&b, "var %s:%d\n", v.Name, v.Dom)
	}
	for pi := range sp.Procs {
		p := &sp.Procs[pi]
		fmt.Fprintf(&b, "proc %s r=%v w=%v\n", p.Name, p.Reads, p.Writes)
		for _, a := range p.Actions {
			fmt.Fprintf(&b, "  %s ->", a.Guard.Render(names))
			for _, as := range a.Assigns {
				fmt.Fprintf(&b, " %s:=%s;", names[as.Var], as.Expr.Render(names))
			}
			b.WriteString("\n")
		}
	}
	fmt.Fprintf(&b, "invariant %s\n", sp.Invariant.Render(names))
	w.Write([]byte(b.String()))
}
