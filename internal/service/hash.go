package service

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"stsyn/internal/protocol"
)

// CanonicalKey returns the content address of a normalized job: a SHA-256
// over a canonical rendering of the specification
// (protocol.WriteCanonicalSpec) plus every result-affecting option. Two
// requests that denote the same synthesis problem — whether a built-in was
// named or the equivalent spec inlined, whether defaults were spelled out
// or omitted — map to the same key.
//
// Prune participates in the key even though a pruned run returns a
// byte-identical protocol: the response's prune stats block differs, and a
// cached unpruned response must not masquerade as a pruned one (or vice
// versa).
func CanonicalKey(j *Job) string {
	h := sha256.New()
	protocol.WriteCanonicalSpec(h, j.Spec)
	fmt.Fprintf(h, "engine=%s\nconvergence=%s\nresolution=%d\nfanout=%v\nscc=%s\nworkers=%d\nprune=%v\n",
		j.Engine, j.Convergence, j.Resolution, j.Fanout, j.SCC, j.Workers, j.Prune)
	if !j.Fanout {
		fmt.Fprintf(h, "schedule=%v\n", j.Schedule)
	}
	return hex.EncodeToString(h.Sum(nil))
}
