package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"
)

// newHandlerServer serves an already-built Server (for tests needing a
// specific Config) and ties its shutdown to the test's cleanup.
func newHandlerServer(t *testing.T, svc *Server) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return ts
}

// The HTTP error surface end to end: oversized bodies are 413, malformed
// JSON 400, semantically invalid requests 422, and a full queue 503 with a
// numeric Retry-After — each with a JSON envelope carrying error and
// request_id.
func TestHandlerErrorPaths(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	oversized := `{"spec":"` + strings.Repeat("x", maxRequestBytes) + `"}`
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"oversized body", oversized, http.StatusRequestEntityTooLarge},
		{"malformed json", `{"protocol":`, http.StatusBadRequest},
		{"unknown protocol", `{"protocol":"nope"}`, http.StatusUnprocessableEntity},
		{"unknown engine", `{"protocol":"tokenring","engine":"quantum"}`, http.StatusUnprocessableEntity},
		{"bad builtin params", `{"protocol":"tokenring","k":-1}`, http.StatusUnprocessableEntity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postSynthesize(t, ts, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d (body %.200s), want %d", status, data, tc.status)
			}
			var e map[string]string
			if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
				t.Fatalf("error body not a JSON envelope: %.200s", data)
			}
			if e["request_id"] == "" {
				t.Errorf("error envelope lacks request_id: %s", data)
			}
		})
	}
}

// A full queue answers 503 with a Retry-After derived from backlog and mean
// job latency — a positive whole number of seconds, also exposed as the
// stsyn_retry_after_hint_seconds gauge.
func TestQueueFullRetryAfterDerived(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	ts := newHandlerServer(t, svc)

	// Occupy the only worker with a long symbolic job; retry submission
	// until it is actually running (no queue means submissions can race the
	// worker parking in its receive).
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	errc := make(chan error, 1)
	go func() {
		for {
			_, err := svc.Do(ctx, &Request{Protocol: "matching", K: 9, Engine: "symbolic", TimeoutMS: 120000})
			var se *Error
			if errors.As(err, &se) && se.Status == http.StatusServiceUnavailable && ctx.Err() == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			errc <- err
			return
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().JobsStarted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}

	resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json",
		bytes.NewReader([]byte(`{"protocol":"tokenring"}`)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d (body %s), want 503", resp.StatusCode, data)
	}
	ra := resp.Header.Get("Retry-After")
	secs, err := strconv.Atoi(ra)
	if err != nil || secs < 1 || secs > 60 {
		t.Fatalf("Retry-After = %q, want a whole number of seconds in [1, 60]", ra)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	if !strings.Contains(string(body), "stsyn_retry_after_hint_seconds") {
		t.Error("metrics exposition lacks stsyn_retry_after_hint_seconds")
	}

	cancel()
	select {
	case <-errc:
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not come back")
	}
}

// X-Request-ID: a fresh ID is generated when the client sends none, a
// client-supplied ID is echoed verbatim, and both reach the JSON error
// envelope.
func TestRequestIDPropagation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})

	resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json",
		bytes.NewReader([]byte(`{"protocol":"nope"}`)))
	if err != nil {
		t.Fatal(err)
	}
	data, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	generated := resp.Header.Get(RequestIDHeader)
	if generated == "" {
		t.Fatal("no X-Request-ID generated")
	}
	var e map[string]string
	if err := json.Unmarshal(data, &e); err != nil || e["request_id"] != generated {
		t.Errorf("envelope request_id = %q, header %q (body %s)", e["request_id"], generated, data)
	}

	req, _ := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize",
		bytes.NewReader([]byte(`{"protocol":"tokenring"}`)))
	req.Header.Set(RequestIDHeader, "coord-42")
	resp, err = ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	if got := resp.Header.Get(RequestIDHeader); got != "coord-42" {
		t.Errorf("echoed request id = %q, want coord-42", got)
	}

	if a, b := NewRequestID(), NewRequestID(); a == b || len(a) != 16 {
		t.Errorf("NewRequestID not unique 16-hex: %q %q", a, b)
	}
}
