package service

import (
	"testing"
	"time"
)

func TestAdmissionBucketRefillsAtRate(t *testing.T) {
	a := newAdmission(2, 4) // 2 tokens/s, burst 4
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }

	for i := 0; i < 4; i++ {
		if ok, _ := a.allow("t", 1); !ok {
			t.Fatalf("charge %d within burst rejected", i)
		}
	}
	ok, retry := a.allow("t", 1)
	if ok {
		t.Fatal("empty bucket admitted a charge")
	}
	if retry != 1 {
		t.Errorf("retry advice = %ds, want 1 (1 token at 2/s)", retry)
	}
	clock = clock.Add(time.Second) // refills 2 tokens
	if ok, _ := a.allow("t", 2); !ok {
		t.Error("refilled bucket rejected an affordable charge")
	}
	if ok, _ := a.allow("t", 1); ok {
		t.Error("bucket admitted beyond its refill")
	}
}

func TestAdmissionChargeCappedAtBurst(t *testing.T) {
	a := newAdmission(1, 3)
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }

	// A charge larger than the burst costs the whole bucket rather than
	// being unconditionally refused forever.
	if ok, _ := a.allow("t", 100); !ok {
		t.Fatal("over-burst charge on a full bucket refused")
	}
	ok, retry := a.allow("t", 100)
	if ok {
		t.Fatal("second over-burst charge admitted on an empty bucket")
	}
	if retry != 3 {
		t.Errorf("retry advice = %ds, want 3 (burst 3 at 1/s)", retry)
	}
	clock = clock.Add(3 * time.Second)
	if ok, _ := a.allow("t", 100); !ok {
		t.Error("refilled bucket refused the capped charge")
	}
}

func TestAdmissionBucketsAreIndependentAndSwept(t *testing.T) {
	a := newAdmission(1, 1)
	clock := time.Unix(0, 0)
	a.now = func() time.Time { return clock }

	if ok, _ := a.allow("a", 1); !ok {
		t.Fatal("tenant a refused")
	}
	if ok, _ := a.allow("a", 1); ok {
		t.Fatal("tenant a admitted past its burst")
	}
	if ok, _ := a.allow("b", 1); !ok {
		t.Error("tenant b starved by tenant a")
	}

	// Pressure the map past the sweep threshold with idle tenants; the
	// sweep on the next insert drops them.
	clock = clock.Add(time.Hour)
	for i := 0; i < admissionSweepLen; i++ {
		a.allow(string(rune('a'+i%26))+"-tenant-"+time.Unix(int64(i), 0).String(), 1)
	}
	clock = clock.Add(admissionIdle + time.Second)
	a.allow("fresh", 1)
	a.mu.Lock()
	n := len(a.buckets)
	a.mu.Unlock()
	if n > 2 {
		t.Errorf("idle buckets survived the sweep: %d left", n)
	}
}
