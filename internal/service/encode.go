// Package service is the synthesis-as-a-service subsystem: an HTTP/JSON
// API over the synthesizer with a bounded job queue, a content-addressed
// result cache, and a metrics endpoint. Synthesis is an expensive, pure
// computation — the same specification and options always produce the same
// protocol — so repeated queries are served from the cache in microseconds
// while fresh ones run on a worker pool with per-job deadlines.
//
// The package also owns the one JSON encoding of a synthesis result shared
// by the server and the stsyn CLI's -json flag, so the two never drift. The
// wire types themselves live in pkg/stsynapi — the published contract the
// client package builds on — and are aliased here so server-side code (and
// existing callers) keep their service.Request / service.Response spelling.
package service

import (
	"fmt"
	"strings"

	"stsyn/internal/cli"
	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/gcl"
	"stsyn/internal/pretty"
	"stsyn/internal/protocol"
	"stsyn/internal/symbolic"
	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// The wire contract, re-exported from pkg/stsynapi. These are aliases, not
// copies: the server and the published client cannot drift.
type (
	// Request is a synthesis job: either a built-in protocol by name (with
	// its parameters) or an inline .stsyn guarded-command specification.
	Request = stsynapi.Request
	// Response is the result of a synthesis job — the encoding shared by
	// the service and the stsyn CLI's -json flag.
	Response = stsynapi.Response
	// Command is one rendered guarded command of the synthesized protocol.
	Command = stsynapi.Command
	// ProcessResult is the synthesized actions of one process.
	ProcessResult = stsynapi.ProcessResult
	// Timings are the synthesis time measurements in milliseconds.
	Timings = stsynapi.Timings
	// BDDStats is the symbolic engine's substrate statistics.
	BDDStats = stsynapi.BDDStats
	// ExplicitStats is the explicit engine's kernel stats.
	ExplicitStats = stsynapi.ExplicitStats
	// PruneStats is one job's symmetry-pruning activity.
	PruneStats = stsynapi.PruneStats
)

// explicitStats snapshots the explicit engine's kernel counters, or returns
// nil for other engines.
func explicitStats(e core.Engine) *ExplicitStats {
	ee, ok := e.(*explicit.Engine)
	if !ok {
		return nil
	}
	ks := ee.KernelStats()
	return &ExplicitStats{
		SCCAlgorithm: ee.SCCAlgorithmName(),
		Workers:      ee.Workers(),
		PreOps:       ks.PreCalls,
		PostOps:      ks.PostCalls,
		GroupTests:   ks.GroupTests,
	}
}

// bddStats snapshots an engine's substrate statistics, or returns nil for
// engines without a SpaceReporter.
func bddStats(e core.Engine) *BDDStats {
	sr, ok := e.(core.SpaceReporter)
	if !ok {
		return nil
	}
	st := sr.SpaceStats()
	workers := 0
	if se, ok := e.(*symbolic.Engine); ok {
		workers = se.Workers()
	}
	return &BDDStats{
		Workers:         workers,
		LiveNodes:       st.LiveNodes,
		PeakLiveNodes:   st.PeakLiveNodes,
		AllocatedSlots:  st.AllocatedSlots,
		UniqueTableLoad: st.UniqueTableLoad,
		CacheSize:       st.CacheSize,
		CacheHits:       st.CacheHits,
		CacheMisses:     st.CacheMisses,
		CacheEvictions:  st.CacheEvictions,
		CacheHitRate:    st.CacheHitRate,
		GCRuns:          st.GCRuns,
		GCReclaimed:     st.GCReclaimed,
	}
}

// BuildSpec resolves a request to a protocol specification: a built-in by
// name, or a parsed inline .stsyn spec. An unknown built-in name (or bad
// parameters for one) is a semantic error and carries status 422; the
// structural failures — both fields, neither field, unparsable inline spec
// — are left to the caller's 400 fallback.
func BuildSpec(req *Request) (*protocol.Spec, error) {
	switch {
	case req.Protocol != "" && req.Spec != "":
		return nil, fmt.Errorf("protocol and spec are mutually exclusive")
	case req.Protocol != "":
		k, dom := req.K, req.Dom
		if k == 0 {
			k = 4
		}
		if dom == 0 {
			dom = 3
		}
		sp, err := buildBuiltin(req.Protocol, k, dom)
		if err != nil {
			return nil, stsynerr.Wrap(stsynerr.InvalidSpec, "unknown protocol", err)
		}
		return sp, nil
	case req.Spec != "":
		sp, err := gcl.Parse("request", req.Spec)
		if err != nil {
			return nil, stsynerr.Wrap(stsynerr.InvalidSpec, "spec does not parse", err)
		}
		return sp, nil
	default:
		return nil, fmt.Errorf("need protocol (built-in name) or spec (inline .stsyn source)")
	}
}

// buildBuiltin calls the CLI's built-in constructor, converting the
// panics its protocol constructors use for parameter validation (fine for
// the CLI, fatal for a serving goroutine) into ordinary errors.
func buildBuiltin(name string, k, dom int) (sp *protocol.Spec, err error) {
	defer func() {
		if r := recover(); r != nil {
			sp, err = nil, fmt.Errorf("%v", r)
		}
	}()
	return cli.BuildSpec(name, k, dom)
}

// Job is a fully normalized synthesis job: the specification, resolved
// engine, options and cache key. Normalizing before anything else makes
// equivalent requests (e.g. engine "auto" vs. its resolution, or an empty
// vs. explicit default schedule) hit the same cache entry.
type Job struct {
	Spec        *protocol.Spec
	Engine      string // "explicit" or "symbolic" (auto resolved)
	Convergence core.Convergence
	Schedule    []int // always a concrete permutation
	Resolution  core.CycleResolution
	Fanout      bool
	Prune       bool
	SCC         string // "auto", "tarjan" or "fb" (explicit engine)
	Workers     int    // engine parallelism (0 = engine default)
	Key         string // content-addressed cache key
}

// autoExplicitLimit mirrors the root package's engine auto-selection: state
// spaces up to 2^20 states use the explicit engine, larger ones (or ones
// whose size overflows) the symbolic engine.
const autoExplicitLimit = 1 << 20

// Normalize validates a request against its specification and resolves
// every defaulted option.
func Normalize(req *Request, sp *protocol.Spec) (*Job, error) {
	j := &Job{Spec: sp, Fanout: req.Fanout}

	switch strings.ToLower(req.Engine) {
	case "", "auto":
		j.Engine = "symbolic"
		if n, ok := sp.NumStates(); ok && n <= autoExplicitLimit {
			j.Engine = "explicit"
		}
	case "explicit":
		j.Engine = "explicit"
	case "symbolic":
		j.Engine = "symbolic"
	default:
		return nil, fmt.Errorf("unknown engine %q (want auto, explicit or symbolic)", req.Engine)
	}

	switch strings.ToLower(req.Convergence) {
	case "", "strong":
		j.Convergence = core.Strong
	case "weak":
		j.Convergence = core.Weak
	default:
		return nil, fmt.Errorf("unknown convergence %q (want strong or weak)", req.Convergence)
	}

	switch strings.ToLower(req.SCC) {
	case "", "auto":
		j.SCC = "auto"
	case "tarjan":
		j.SCC = "tarjan"
	case "fb", "forward-backward":
		j.SCC = "fb"
	default:
		return nil, fmt.Errorf("unknown scc algorithm %q (want auto, tarjan or fb)", req.SCC)
	}
	if req.Workers < 0 {
		return nil, fmt.Errorf("workers must be non-negative, got %d", req.Workers)
	}
	j.Workers = req.Workers
	if j.Engine != "explicit" && j.SCC != "auto" {
		return nil, fmt.Errorf("scc is an explicit-engine option (engine resolved to %s)", j.Engine)
	}

	switch strings.ToLower(req.Resolution) {
	case "", "batch":
		j.Resolution = core.BatchResolution
	case "incremental":
		j.Resolution = core.IncrementalResolution
	default:
		return nil, fmt.Errorf("unknown resolution %q (want batch or incremental)", req.Resolution)
	}

	j.Prune = req.Prune
	if j.Prune && j.Resolution != core.BatchResolution {
		return nil, fmt.Errorf("prune requires batch resolution: incremental cycle resolution is not equivariant under the symmetry group")
	}

	k := len(sp.Procs)
	if req.Fanout && len(req.Schedule) > 0 {
		return nil, fmt.Errorf("fanout and schedule are mutually exclusive")
	}
	if len(req.Schedule) > 0 {
		if len(req.Schedule) != k {
			return nil, fmt.Errorf("schedule has %d entries, want %d", len(req.Schedule), k)
		}
		seen := make([]bool, k)
		for _, p := range req.Schedule {
			if p < 0 || p >= k || seen[p] {
				return nil, fmt.Errorf("schedule %v is not a permutation of 0..%d", req.Schedule, k-1)
			}
			seen[p] = true
		}
		j.Schedule = append([]int(nil), req.Schedule...)
	} else {
		j.Schedule = core.DefaultSchedule(k)
	}

	j.Key = CanonicalKey(j)
	return j, nil
}

// Options builds the synthesis options of the job; ctx bounds the run.
func (j *Job) Options() core.Options {
	return core.Options{
		Convergence:     j.Convergence,
		Schedule:        j.Schedule,
		CycleResolution: j.Resolution,
	}
}

// EncodeResult renders a synthesis result into the shared response
// encoding. verified is the model checker's verdict on the result.
func EncodeResult(e core.Engine, res *core.Result, j *Job, verified bool) *Response {
	sp := e.Spec()
	out := &Response{
		Protocol:             sp.Name,
		Engine:               j.Engine,
		Convergence:          j.Convergence.String(),
		Schedule:             j.Schedule,
		Processes:            len(sp.Procs),
		Variables:            len(sp.Vars),
		States:               e.States(e.Universe()),
		Pass:                 res.PassCompleted,
		MaxRank:              res.MaxRank(),
		AddedGroups:          len(res.Added),
		RemovedGroups:        len(res.Removed),
		RankInfinityFastFail: res.RankInfinityFastFail,
		ProgramSize:          res.ProgramSize,
		SCCCount:             res.SCCCount,
		AvgSCCSize:           res.AvgSCCSize,
		Timings: Timings{
			TotalMS:   float64(res.TotalTime.Microseconds()) / 1e3,
			RankingMS: float64(res.RankingTime.Microseconds()) / 1e3,
			SCCMS:     float64(res.SCCTime.Microseconds()) / 1e3,
		},
		Verified: verified,
		BDD:      bddStats(e),
		Explicit: explicitStats(e),
	}
	byProc := make(map[int][]protocol.Group)
	for _, g := range res.Protocol {
		pg := g.ProtocolGroup()
		byProc[pg.Proc] = append(byProc[pg.Proc], pg)
	}
	for pi := range sp.Procs {
		pr := ProcessResult{Name: sp.Procs[pi].Name, Commands: []Command{}}
		for _, c := range pretty.Process(sp, pi, byProc[pi]) {
			pr.Commands = append(pr.Commands, Command{Guard: c.Guard, Effect: c.Effect, Groups: c.Groups})
		}
		out.Actions = append(out.Actions, pr)
	}
	return out
}
