package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
	"strings"

	"stsyn/internal/cli"
)

// maxRequestBytes bounds a synthesize request body (inline specs included).
const maxRequestBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST /v1/synthesize  — run (or serve from cache) a synthesis job
//	GET  /v1/protocols   — list the built-in protocol names
//	GET  /healthz        — liveness
//	GET  /metrics        — Prometheus text-format counters
//
// Every request gets an X-Request-ID correlation header (inbound one
// echoed, fresh one generated) that also appears in JSON error bodies.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("/v1/protocols", s.handleProtocols)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return withRequestID(mux)
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeError(w, &Error{Status: http.StatusMethodNotAllowed, Message: "POST only"})
		return
	}
	var req Request
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, &Error{Status: http.StatusRequestEntityTooLarge, Message: "request body too large", Err: err})
			return
		}
		writeError(w, &Error{Status: http.StatusBadRequest, Message: "bad request body", Err: err})
		return
	}
	resp, err := s.Do(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	names := strings.Split(cli.Names, ", ")
	writeJSON(w, http.StatusOK, map[string][]string{"protocols": names})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, &Error{Status: http.StatusServiceUnavailable, Message: "shutting down"})
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.stats()
	memo := s.MemoStats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, map[string]float64{
		"stsyn_queue_depth":              float64(s.QueueDepth()),
		"stsyn_cache_entries":            float64(entries),
		"stsyn_cache_bytes":              float64(bytes),
		"stsyn_memo_entries":             float64(memo.Entries),
		"stsyn_memo_bytes":               float64(memo.Bytes),
		"stsyn_memo_evictions":           float64(memo.Evictions),
		"stsyn_retry_after_hint_seconds": float64(s.retryAfterHint()),
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a broken client pipe
}

// writeError maps a service error to its HTTP status and a JSON error body
// carrying the request's correlation ID (already echoed on the response
// header by the request-ID middleware).
func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if !errors.As(err, &se) {
		se = &Error{Status: http.StatusInternalServerError, Message: "internal error", Err: err}
	}
	if se.Status == http.StatusServiceUnavailable {
		secs := se.RetryAfter
		if secs <= 0 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	body := map[string]string{"error": se.Error()}
	if id := w.Header().Get(RequestIDHeader); id != "" {
		body["request_id"] = id
	}
	writeJSON(w, se.Status, body)
}
