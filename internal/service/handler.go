package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"strings"

	"stsyn/internal/cli"
	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// maxRequestBytes bounds a synthesize request body (inline specs included).
const maxRequestBytes = 1 << 20

// Handler returns the service's HTTP API:
//
//	POST   /v1/synthesize  — run (or serve from cache) a synthesis job
//	POST   /v1/jobs        — submit a job asynchronously (202 + job ID)
//	GET    /v1/jobs/{id}   — poll a job's state / result / typed error
//	DELETE /v1/jobs/{id}   — cancel a live job
//	POST   /v1/batch       — run many jobs in one call (dedup + cache)
//	GET    /v1/protocols   — list the built-in protocol names
//	GET    /healthz        — liveness
//	GET    /metrics        — Prometheus text-format counters
//
// Every request gets an X-Request-ID correlation header (inbound one
// echoed, fresh one generated) that also appears in JSON error bodies, and
// every error body is the typed envelope of pkg/stsynerr. The synthesis
// endpoints sit behind per-tenant token-bucket admission (tenant named by
// the X-Stsyn-Tenant header, anonymous traffic sharing one bucket).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/synthesize", s.handleSynthesize)
	mux.HandleFunc("/v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("/v1/jobs/", s.handleJob)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/protocols", s.handleProtocols)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return withRequestID(mux)
}

// requirePost answers the typed 405 for non-POST methods on POST-only
// endpoints (reported false when it already wrote the response).
func requirePost(w http.ResponseWriter, r *http.Request) bool {
	if r.Method == http.MethodPost {
		return true
	}
	w.Header().Set("Allow", http.MethodPost)
	writeError(w, stsynerr.New(stsynerr.MethodNotAllowed, "POST only"))
	return false
}

// decodeRequest parses a bounded JSON body into v with unknown fields
// rejected, mapping failures to the typed contract.
func decodeRequest(w http.ResponseWriter, r *http.Request, v interface{}) *Error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxRequestBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return stsynerr.Wrap(stsynerr.RequestTooLarge, "request body too large", err)
		}
		return stsynerr.Wrap(stsynerr.InvalidRequest, "bad request body", err)
	}
	return nil
}

// admit charges n tokens against the request's tenant bucket, answering
// the typed 429 (with Retry-After) itself when the tenant is over rate.
func (s *Server) admit(w http.ResponseWriter, r *http.Request, n int) bool {
	if s.admission == nil {
		return true
	}
	tenant := r.Header.Get(TenantHeader)
	if tenant == "" {
		tenant = "anonymous"
	}
	ok, retryAfter := s.admission.allow(tenant, n)
	if ok {
		return true
	}
	s.metrics.AdmissionRejected.Add(1)
	e := stsynerr.Newf(stsynerr.RateLimited, "tenant %q over rate limit", tenant)
	e.RetryAfter = retryAfter
	e.Params = map[string]string{"tenant": tenant}
	writeError(w, e)
	return false
}

func (s *Server) handleSynthesize(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) || !s.admit(w, r, 1) {
		return
	}
	var req Request
	if serr := decodeRequest(w, r, &req); serr != nil {
		writeError(w, serr)
		return
	}
	resp, err := s.Do(r.Context(), &req)
	if err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// handleJobSubmit accepts POST /v1/jobs: the async twin of /v1/synthesize,
// answering 202 with the queued job's status envelope.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) || !s.admit(w, r, 1) {
		return
	}
	var req Request
	if serr := decodeRequest(w, r, &req); serr != nil {
		writeError(w, serr)
		return
	}
	id, serr := s.Submit(r.Context(), &req)
	if serr != nil {
		writeError(w, serr)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+id)
	status, jerr := s.JobStatus(id)
	if jerr != nil {
		// Possible only if the result's TTL elapsed between Submit and
		// here; answer the submission anyway.
		writeJSON(w, http.StatusAccepted, &JobStatus{ID: id, State: stsynapi.JobQueued})
		return
	}
	writeJSON(w, http.StatusAccepted, status)
}

// handleJob serves GET and DELETE on /v1/jobs/{id}.
func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/jobs/")
	if id == "" || strings.Contains(id, "/") {
		writeError(w, stsynerr.Newf(stsynerr.JobNotFound, "no job %q", id))
		return
	}
	switch r.Method {
	case http.MethodGet:
		status, serr := s.JobStatus(id)
		if serr != nil {
			writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, status)
	case http.MethodDelete:
		status, serr := s.CancelJob(id)
		if serr != nil {
			writeError(w, serr)
			return
		}
		writeJSON(w, http.StatusOK, status)
	default:
		w.Header().Set("Allow", "GET, DELETE")
		writeError(w, stsynerr.New(stsynerr.MethodNotAllowed, "GET or DELETE only"))
	}
}

// handleBatch accepts POST /v1/batch, charging admission for every
// request the batch carries.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	if !requirePost(w, r) {
		return
	}
	var breq BatchRequest
	if serr := decodeRequest(w, r, &breq); serr != nil {
		writeError(w, serr)
		return
	}
	if !s.admit(w, r, len(breq.Requests)) {
		return
	}
	resp, serr := s.Batch(r.Context(), &breq)
	if serr != nil {
		writeError(w, serr)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	names := strings.Split(cli.Names, ", ")
	writeJSON(w, http.StatusOK, map[string][]string{"protocols": names})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	closed := s.closed
	s.mu.Unlock()
	if closed {
		writeError(w, stsynerr.New(stsynerr.ShuttingDown, "shutting down"))
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.cache.stats()
	memo := s.MemoStats()
	jc := s.JobCounts()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.metrics.WritePrometheus(w, map[string]float64{
		"stsyn_queue_depth":                  float64(s.QueueDepth()),
		"stsyn_cache_entries":                float64(entries),
		"stsyn_cache_bytes":                  float64(bytes),
		"stsyn_memo_entries":                 float64(memo.Entries),
		"stsyn_memo_bytes":                   float64(memo.Bytes),
		"stsyn_memo_evictions":               float64(memo.Evictions),
		"stsyn_retry_after_hint_seconds":     float64(s.retryAfterHint()),
		"stsyn_async_jobs_queued":            float64(jc.Queued),
		"stsyn_async_jobs_running":           float64(jc.Running),
		"stsyn_async_jobs_done":              float64(jc.Done),
		"stsyn_async_jobs_failed":            float64(jc.Failed),
		"stsyn_async_jobs_terminal_canceled": float64(jc.Canceled),
		"stsyn_async_jobs_evicted":           float64(jc.Evictions),
	})
}

func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // nothing to do about a broken client pipe
}
