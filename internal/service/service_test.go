package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"runtime"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	svc := New(cfg)
	ts := httptest.NewServer(svc.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	return svc, ts
}

func postSynthesize(t *testing.T, ts *httptest.Server, body string) (int, []byte) {
	t.Helper()
	resp, err := ts.Client().Post(ts.URL+"/v1/synthesize", "application/json",
		bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

func decodeResponse(t *testing.T, data []byte) *Response {
	t.Helper()
	var out Response
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("bad response %s: %v", data, err)
	}
	return &out
}

// requireGoroutinesBack polls until the goroutine count returns to the
// baseline (catching leaked workers or stuck jobs).
func requireGoroutinesBack(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if runtime.NumGoroutine() <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutine leak: %d > baseline %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// The acceptance path: POST a token ring job, get a verified protocol; an
// identical second POST is served from the cache without starting a job.
func TestSynthesizeEndToEndAndCacheHit(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	body := `{"protocol":"tokenring","k":4,"dom":3}`

	status, data := postSynthesize(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	first := decodeResponse(t, data)
	if !first.Verified {
		t.Error("protocol not verified")
	}
	if first.Cached {
		t.Error("first response claims to be cached")
	}
	if first.Engine != "explicit" {
		t.Errorf("engine = %q, want explicit (81 states)", first.Engine)
	}
	if first.AddedGroups == 0 {
		t.Error("no recovery groups added")
	}
	if len(first.Actions) != 4 {
		t.Fatalf("actions for %d processes, want 4", len(first.Actions))
	}
	// The synthesizer re-derives Dijkstra's protocol: P1..P3 copy their
	// predecessor's value.
	if g := first.Actions[1].Commands; len(g) == 0 || !strings.Contains(g[0].Effect, "x1 := x0") {
		t.Errorf("P1 actions = %+v, want a copy of x0", g)
	}

	status, data = postSynthesize(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("second status = %d, body %s", status, data)
	}
	second := decodeResponse(t, data)
	if !second.Cached {
		t.Fatal("second identical POST was not a cache hit")
	}
	if second.Pass != first.Pass || second.ProgramSize != first.ProgramSize {
		t.Error("cached response differs from the original")
	}
	m := svc.Metrics()
	if got := m.CacheHits.Load(); got != 1 {
		t.Errorf("cache hits = %d, want 1", got)
	}
	if got := m.JobsStarted.Load(); got != 1 {
		t.Errorf("jobs started = %d, want 1 (cache hit must not start a job)", got)
	}
	if got := m.JobsSucceeded.Load(); got != 1 {
		t.Errorf("jobs succeeded = %d, want 1", got)
	}
}

// Round-trip of the shipped GCL spec through the service: parse, synthesize,
// and hit the cache on the identical second POST, with counters to match.
func TestSpecFileRoundTrip(t *testing.T) {
	src, err := os.ReadFile("../../examples/specs/tokenring.stsyn")
	if err != nil {
		t.Fatal(err)
	}
	svc, ts := newTestServer(t, Config{Workers: 2})
	req, err := json.Marshal(&Request{Spec: string(src)})
	if err != nil {
		t.Fatal(err)
	}

	status, data := postSynthesize(t, ts, string(req))
	if status != http.StatusOK {
		t.Fatalf("status = %d, body %s", status, data)
	}
	first := decodeResponse(t, data)
	if !first.Verified {
		t.Error("spec-file protocol not verified")
	}
	if first.Protocol != "TokenRing" {
		t.Errorf("protocol name = %q, want TokenRing (from the spec header)", first.Protocol)
	}

	status, data = postSynthesize(t, ts, string(req))
	if status != http.StatusOK {
		t.Fatalf("second status = %d", status)
	}
	if !decodeResponse(t, data).Cached {
		t.Fatal("identical spec POST was not a cache hit")
	}
	m := svc.Metrics()
	if m.CacheHits.Load() != 1 || m.CacheMisses.Load() != 1 {
		t.Errorf("cache hits/misses = %d/%d, want 1/1",
			m.CacheHits.Load(), m.CacheMisses.Load())
	}
	if m.JobsStarted.Load() != 1 {
		t.Errorf("jobs started = %d, want 1", m.JobsStarted.Load())
	}
}

// A job with a 1ms deadline must come back as a timeout error — and the
// worker must not leak: the goroutine count returns to baseline after
// shutdown.
func TestJobDeadlineTimesOutWithoutLeaks(t *testing.T) {
	base := runtime.NumGoroutine()
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())

	// Symbolic three-coloring with 12 processes takes hundreds of
	// milliseconds — far beyond the 1ms budget.
	body := `{"protocol":"coloring","k":12,"engine":"symbolic","timeout_ms":1}`
	status, data := postSynthesize(t, ts, body)
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status = %d (body %s), want 504", status, data)
	}
	if !strings.Contains(string(data), "did not finish in time") {
		t.Errorf("error body = %s", data)
	}
	if got := svc.Metrics().JobsCancelled.Load(); got != 1 {
		t.Errorf("jobs cancelled = %d, want 1", got)
	}

	ts.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	requireGoroutinesBack(t, base)
}

// With one worker and no queue, a second job while the worker is busy must
// be rejected with 503 backpressure; cancelling the long job's request
// aborts it cooperatively.
func TestQueueBackpressure(t *testing.T) {
	svc := New(Config{Workers: 1, QueueDepth: -1})
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := svc.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	}()

	// Occupy the only worker with a long-running job (symbolic matching
	// with 9 processes runs for many seconds — we cancel it below). With no
	// queue, a submission can race the worker parking in its receive, so
	// retry 503s until the job is in.
	ctx1, cancel1 := context.WithCancel(context.Background())
	defer cancel1()
	errc := make(chan error, 1)
	go func() {
		for {
			_, err := svc.Do(ctx1, &Request{Protocol: "matching", K: 9, Engine: "symbolic", TimeoutMS: 120000})
			var se *Error
			if errors.As(err, &se) && se.Status == http.StatusServiceUnavailable && ctx1.Err() == nil {
				time.Sleep(time.Millisecond)
				continue
			}
			errc <- err
			return
		}
	}()
	deadline := time.Now().Add(10 * time.Second)
	for svc.Metrics().JobsStarted.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("long job never started")
		}
		time.Sleep(time.Millisecond)
	}
	rejected0 := svc.Metrics().QueueRejected.Load()

	_, err := svc.Do(context.Background(), &Request{Protocol: "tokenring"})
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err = %v, want 503 backpressure", err)
	}
	if got := svc.Metrics().QueueRejected.Load(); got != rejected0+1 {
		t.Errorf("queue rejected = %d, want %d", got, rejected0+1)
	}

	cancel1()
	select {
	case err := <-errc:
		if !errors.As(err, &se) || se.Status != StatusClientClosed {
			t.Errorf("long job err = %v, want client-closed", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("cancelled job did not come back")
	}
}

// Structurally malformed inputs are 400s, semantically invalid ones
// (unknown protocol, engine or option) and synthesis-level failures are
// 422s — all with a JSON error body carrying the request ID.
func TestErrorMapping(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for _, tc := range []struct {
		name, body string
		status     int
	}{
		{"empty", `{}`, http.StatusBadRequest},
		{"both", `{"protocol":"tokenring","spec":"x"}`, http.StatusBadRequest},
		{"unknown protocol", `{"protocol":"nope"}`, http.StatusUnprocessableEntity},
		{"unknown field", `{"protocl":"tokenring"}`, http.StatusBadRequest},
		{"bad engine", `{"protocol":"tokenring","engine":"quantum"}`, http.StatusUnprocessableEntity},
		{"bad schedule", `{"protocol":"tokenring","schedule":[0,0,1,2]}`, http.StatusUnprocessableEntity},
		{"bad spec", `{"spec":"protocol X\n"}`, http.StatusUnprocessableEntity},
		// Gouda-Acharya matching has an unresolvable structure for the
		// heuristic on 4 processes: synthesis itself fails.
		{"synthesis failure", `{"protocol":"gouda-acharya","k":4}`, http.StatusUnprocessableEntity},
	} {
		t.Run(tc.name, func(t *testing.T) {
			status, data := postSynthesize(t, ts, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d (body %s), want %d", status, data, tc.status)
			}
			var e map[string]string
			if err := json.Unmarshal(data, &e); err != nil || e["error"] == "" {
				t.Errorf("error body not JSON with error field: %s", data)
			}
			if e["request_id"] == "" {
				t.Errorf("error body lacks request_id: %s", data)
			}
		})
	}
}

// GET endpoints: health, protocol list, and the metrics exposition.
func TestAuxEndpoints(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	postSynthesize(t, ts, `{"protocol":"tokenring"}`)
	postSynthesize(t, ts, `{"protocol":"tokenring"}`) // cache hit

	get := func(path string) (int, string) {
		resp, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, string(data)
	}

	if status, body := get("/healthz"); status != 200 || !strings.Contains(body, "ok") {
		t.Errorf("healthz = %d %s", status, body)
	}
	if status, body := get("/v1/protocols"); status != 200 || !strings.Contains(body, "tokenring") {
		t.Errorf("protocols = %d %s", status, body)
	}
	status, body := get("/metrics")
	if status != 200 {
		t.Fatalf("metrics status = %d", status)
	}
	for _, w := range []string{
		"stsyn_jobs_started_total 1",
		"stsyn_jobs_succeeded_total 1",
		"stsyn_cache_hits_total 1",
		"stsyn_cache_misses_total 1",
		"stsyn_cache_entries 1",
		"stsyn_queue_depth 0",
		`stsyn_job_duration_ms_bucket{engine="explicit",le="+Inf"} 1`,
	} {
		if !strings.Contains(body, w) {
			t.Errorf("metrics output lacks %q:\n%s", w, body)
		}
	}
	if got := svc.Metrics().JobsStarted.Load(); got != 1 {
		t.Errorf("jobs started = %d, want 1", got)
	}
}

// A symbolic-engine job carries substrate statistics in its JSON response
// and feeds the bdd gauges and counters on /metrics; an explicit-engine job
// carries none.
func TestBDDStatsExposed(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})

	status, data := postSynthesize(t, ts, `{"protocol":"tokenring","engine":"symbolic"}`)
	if status != 200 {
		t.Fatalf("symbolic job status = %d (body %s)", status, data)
	}
	resp := decodeResponse(t, data)
	if resp.BDD == nil {
		t.Fatal("symbolic response has no bdd stats")
	}
	if resp.BDD.LiveNodes <= 0 || resp.BDD.PeakLiveNodes < resp.BDD.LiveNodes {
		t.Errorf("implausible node counts: live=%d peak=%d", resp.BDD.LiveNodes, resp.BDD.PeakLiveNodes)
	}
	if resp.BDD.CacheHits == 0 || resp.BDD.CacheMisses == 0 {
		t.Errorf("op-cache counters empty: %+v", resp.BDD)
	}

	status, data = postSynthesize(t, ts, `{"protocol":"tokenring","engine":"explicit"}`)
	if status != 200 {
		t.Fatalf("explicit job status = %d", status)
	}
	if resp := decodeResponse(t, data); resp.BDD != nil {
		t.Errorf("explicit response carries bdd stats: %+v", resp.BDD)
	}

	mresp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	body := string(raw)
	for _, w := range []string{
		"stsyn_bdd_gc_runs_total",
		"stsyn_bdd_gc_reclaimed_nodes_total",
		"stsyn_bdd_op_cache_hits_total",
		"stsyn_bdd_op_cache_misses_total",
		"stsyn_bdd_op_cache_evictions_total",
		"stsyn_bdd_live_nodes",
		"stsyn_bdd_peak_nodes",
	} {
		if !strings.Contains(body, w) {
			t.Errorf("metrics output lacks %q", w)
		}
	}
	if strings.Contains(body, "stsyn_bdd_op_cache_hits_total 0\n") {
		t.Error("bdd op-cache hit counter still zero after a symbolic job")
	}
	if strings.Contains(body, "stsyn_bdd_peak_nodes 0\n") {
		t.Error("bdd peak-nodes gauge still zero after a symbolic job")
	}
}

// After Shutdown the server refuses new jobs and reports unhealthy.
func TestShutdownRefusesNewJobs(t *testing.T) {
	svc := New(Config{Workers: 1})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	_, err := svc.Do(context.Background(), &Request{Protocol: "tokenring"})
	var se *Error
	if !errors.As(err, &se) || se.Status != http.StatusServiceUnavailable {
		t.Fatalf("err after shutdown = %v, want 503", err)
	}
	// Idempotent.
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

// A job with the forward-backward SCC search selected must synthesize the
// same verified protocol, expose the explicit-engine kernel stats in the
// response, and fold them into the service counters.
func TestExplicitKernelOptionsEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})

	status, data := postSynthesize(t, ts, `{"protocol":"tokenring","k":4,"dom":3}`)
	if status != http.StatusOK {
		t.Fatalf("tarjan status = %d, body %s", status, data)
	}
	tarjan := decodeResponse(t, data)

	status, data = postSynthesize(t, ts, `{"protocol":"tokenring","k":4,"dom":3,"scc":"fb","workers":2}`)
	if status != http.StatusOK {
		t.Fatalf("fb status = %d, body %s", status, data)
	}
	fb := decodeResponse(t, data)
	if fb.Cached {
		t.Fatal("fb job hit the tarjan cache entry: scc missing from the key")
	}
	if fb.Explicit == nil {
		t.Fatal("explicit stats missing from the response")
	}
	if fb.Explicit.SCCAlgorithm != "fb" || fb.Explicit.Workers != 2 {
		t.Errorf("explicit stats = %+v, want scc=fb workers=2", fb.Explicit)
	}
	if fb.Explicit.PreOps == 0 && fb.Explicit.PostOps == 0 && fb.Explicit.GroupTests == 0 {
		t.Error("kernel counters all zero after a synthesis run")
	}
	if fb.ProgramSize != tarjan.ProgramSize || fb.AddedGroups != tarjan.AddedGroups {
		t.Error("fb and tarjan synthesized different protocols")
	}

	if got := svc.Metrics().ExplicitGroupTests.Load(); got == 0 {
		t.Error("service-level explicit kernel counters not aggregated")
	}
	var buf bytes.Buffer
	svc.Metrics().WritePrometheus(&buf, nil)
	if !strings.Contains(buf.String(), "stsyn_explicit_pre_ops_total") {
		t.Error("explicit kernel counters missing from /metrics exposition")
	}

	status, data = postSynthesize(t, ts, `{"protocol":"tokenring","engine":"symbolic","scc":"fb"}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("symbolic+fb status = %d, want 422 (body %s)", status, data)
	}
}

// Prune end-to-end: a pruned fanout job must synthesize the identical
// protocol while reporting its quotient and memo activity, miss the
// unpruned job's cache entry (prune is part of the key), fold its stats
// into the service metrics, and reject incremental resolution.
func TestPruneFanoutEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})

	status, data := postSynthesize(t, ts, `{"protocol":"coloring","k":4,"fanout":true}`)
	if status != http.StatusOK {
		t.Fatalf("unpruned status = %d, body %s", status, data)
	}
	plain := decodeResponse(t, data)
	if plain.Prune != nil {
		t.Error("unpruned response carries a prune block")
	}

	status, data = postSynthesize(t, ts, `{"protocol":"coloring","k":4,"fanout":true,"prune":true}`)
	if status != http.StatusOK {
		t.Fatalf("pruned status = %d, body %s", status, data)
	}
	pruned := decodeResponse(t, data)
	if pruned.Cached {
		t.Fatal("pruned job hit the unpruned cache entry: prune missing from the key")
	}
	if pruned.Prune == nil {
		t.Fatal("prune stats missing from the response")
	}
	// The 4-coloring ring is fully rotation-symmetric: the four rotation
	// schedules collapse to one representative.
	if p := pruned.Prune; p.GroupSize != 4 || p.SchedulesEmitted != 1 || p.SchedulesPruned != 3 {
		t.Errorf("prune stats = %+v, want group=4 emitted=1 pruned=3", p)
	}
	if pruned.Prune.MemoMisses == 0 {
		t.Error("cold memo reported no misses")
	}
	if !reflect.DeepEqual(plain.Actions, pruned.Actions) {
		t.Error("pruned synthesis produced a different protocol")
	}
	if plain.Pass != pruned.Pass || plain.ProgramSize != pruned.ProgramSize {
		t.Error("pruned synthesis stats diverged from the unpruned run")
	}

	m := svc.Metrics()
	if got := m.PruneSchedulesPruned.Load(); got != 3 {
		t.Errorf("service prune counter = %d, want 3", got)
	}
	if m.PruneMemoMisses.Load() == 0 {
		t.Error("service memo-miss counter not aggregated")
	}
	if st := svc.MemoStats(); st.Entries == 0 {
		t.Error("server-wide memo retained no entries after a pruned job")
	}
	var buf bytes.Buffer
	m.WritePrometheus(&buf, nil)
	if !strings.Contains(buf.String(), "stsyn_prune_schedules_pruned_total") {
		t.Error("prune counters missing from /metrics exposition")
	}

	status, data = postSynthesize(t, ts, `{"protocol":"coloring","k":4,"prune":true,"resolution":"incremental"}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("prune+incremental status = %d, want 422 (body %s)", status, data)
	}
}

// Prune + memo on the symbolic engine, end to end. The symbolic engine now
// implements SetExporter, so a pruned symbolic fan-out exercises the full
// cross-schedule memo path: rank snapshots are serialized BDDs, replayed
// across the quotient stream's attempts. The synthesized protocol must be
// identical to both the unpruned symbolic run and the pruned explicit run,
// and the response must carry the symbolic worker count.
func TestSymbolicPruneMemoEndToEnd(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})

	status, data := postSynthesize(t, ts, `{"protocol":"coloring","k":4,"fanout":true,"engine":"symbolic"}`)
	if status != http.StatusOK {
		t.Fatalf("unpruned symbolic status = %d, body %s", status, data)
	}
	plain := decodeResponse(t, data)
	if plain.Prune != nil {
		t.Error("unpruned response carries a prune block")
	}

	status, data = postSynthesize(t, ts,
		`{"protocol":"coloring","k":4,"fanout":true,"engine":"symbolic","prune":true,"workers":2}`)
	if status != http.StatusOK {
		t.Fatalf("pruned symbolic status = %d, body %s", status, data)
	}
	pruned := decodeResponse(t, data)
	if pruned.Cached {
		t.Fatal("pruned job hit the unpruned cache entry: prune missing from the key")
	}
	if pruned.Prune == nil {
		t.Fatal("prune stats missing from the symbolic response")
	}
	if p := pruned.Prune; p.GroupSize != 4 || p.SchedulesEmitted != 1 || p.SchedulesPruned != 3 {
		t.Errorf("prune stats = %+v, want group=4 emitted=1 pruned=3", p)
	}
	if pruned.Prune.MemoMisses == 0 {
		t.Error("cold memo reported no misses on the symbolic engine")
	}
	if pruned.BDD == nil {
		t.Fatal("symbolic response has no bdd stats")
	}
	if pruned.BDD.Workers != 2 {
		t.Errorf("bdd stats workers = %d, want 2", pruned.BDD.Workers)
	}
	if !reflect.DeepEqual(plain.Actions, pruned.Actions) {
		t.Error("pruned symbolic synthesis produced a different protocol")
	}
	if plain.Pass != pruned.Pass || plain.ProgramSize != pruned.ProgramSize {
		t.Error("pruned symbolic stats diverged from the unpruned run")
	}

	// Cross-engine: the pruned explicit run must agree action for action.
	status, data = postSynthesize(t, ts, `{"protocol":"coloring","k":4,"fanout":true,"prune":true}`)
	if status != http.StatusOK {
		t.Fatalf("pruned explicit status = %d, body %s", status, data)
	}
	explicitPruned := decodeResponse(t, data)
	if !reflect.DeepEqual(explicitPruned.Actions, pruned.Actions) {
		t.Error("symbolic and explicit pruned runs synthesized different protocols")
	}

	if svc.Metrics().PruneMemoMisses.Load() == 0 {
		t.Error("service memo-miss counter not aggregated from the symbolic job")
	}
	if st := svc.MemoStats(); st.Entries == 0 {
		t.Error("server-wide memo retained no entries after a pruned symbolic job")
	}

	status, data = postSynthesize(t, ts,
		`{"protocol":"coloring","k":4,"engine":"symbolic","prune":true,"resolution":"incremental"}`)
	if status != http.StatusUnprocessableEntity {
		t.Errorf("symbolic prune+incremental status = %d, want 422 (body %s)", status, data)
	}
}
