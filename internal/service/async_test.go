package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"stsyn/pkg/stsynerr"
)

func doJSON(t *testing.T, ts *httptest.Server, method, path, body string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, ts.URL+path, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != "" {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := ts.Client().Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

func decodeJobStatus(t *testing.T, data []byte) *JobStatus {
	t.Helper()
	var js JobStatus
	if err := json.Unmarshal(data, &js); err != nil {
		t.Fatalf("bad job status %s: %v", data, err)
	}
	return &js
}

// waitJobState polls a job until pred holds or the deadline passes.
func waitJobState(t *testing.T, ts *httptest.Server, id string, pred func(*JobStatus) bool) *JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		status, _, data := doJSON(t, ts, http.MethodGet, "/v1/jobs/"+id, "")
		if status != http.StatusOK {
			t.Fatalf("poll status = %d (body %s)", status, data)
		}
		js := decodeJobStatus(t, data)
		if pred(js) {
			return js
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %q", id, js.State)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// The differential gate: the same request through the synchronous path,
// the async job path and the batch path must produce byte-identical
// responses, with all three sharing one cache entry.
func TestSyncAsyncBatchAnswerByteIdentical(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	body := `{"protocol":"tokenring","k":4,"dom":3}`

	status, syncRaw := postSynthesize(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("sync status = %d (body %s)", status, syncRaw)
	}
	syncResp := decodeResponse(t, syncRaw)
	if !syncResp.Verified {
		t.Fatal("sync response not verified")
	}
	misses := svc.Metrics().CacheMisses.Load()
	hits0 := svc.Metrics().CacheHits.Load()

	// Async: the submit must be served from the shared cache (born
	// terminal), answering the identical response.
	status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %s)", status, data)
	}
	js := waitJobState(t, ts, decodeJobStatus(t, data).ID, func(js *JobStatus) bool { return js.State == "done" })
	if js.Response == nil {
		t.Fatal("done job carries no response")
	}

	// Batch: two copies of the same request dedupe to one cache hit.
	status, _, bdata := doJSON(t, ts, http.MethodPost, "/v1/batch",
		fmt.Sprintf(`{"requests":[%s,%s]}`, body, body))
	if status != http.StatusOK {
		t.Fatalf("batch status = %d (body %s)", status, bdata)
	}
	var bresp BatchResponse
	if err := json.Unmarshal(bdata, &bresp); err != nil {
		t.Fatal(err)
	}
	if bresp.Deduped != 1 || bresp.CacheHits != 1 || len(bresp.Results) != 2 {
		t.Errorf("batch dedup/cache = %+v, want 1 deduped, 1 cache hit, 2 results", bresp)
	}

	// The sync answer is marked Cached:false on first compute; every
	// cache-served copy is Cached:true. Compare everything else byte for
	// byte via canonical re-marshaling.
	canon := func(r *Response) []byte {
		cp := *r
		cp.Cached = false
		out, err := json.Marshal(&cp)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	want := canon(syncResp)
	for what, got := range map[string]*Response{
		"async":   js.Response,
		"batch 0": bresp.Results[0].Response,
		"batch 1": bresp.Results[1].Response,
	} {
		if got == nil {
			t.Fatalf("%s result has no response", what)
		}
		if !got.Cached {
			t.Errorf("%s response not served from the shared cache", what)
		}
		if !bytes.Equal(canon(got), want) {
			t.Errorf("%s response differs from sync:\n got %s\nwant %s", what, canon(got), want)
		}
	}
	if svc.Metrics().CacheMisses.Load() != misses {
		t.Errorf("async/batch re-computed a cached request (misses %d → %d)", misses, svc.Metrics().CacheMisses.Load())
	}
	if svc.Metrics().CacheHits.Load() <= hits0 {
		t.Errorf("cache hits did not grow (%d → %d)", hits0, svc.Metrics().CacheHits.Load())
	}
}

// A cold async job must run to done and answer exactly what a later sync
// call answers (the job populated the shared cache).
func TestAsyncColdJobPopulatesSharedCache(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 2})
	body := `{"protocol":"coloring","k":5}`

	status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %s)", status, data)
	}
	id := decodeJobStatus(t, data).ID
	if id == "" {
		t.Fatal("submit returned no job ID")
	}
	js := waitJobState(t, ts, id, func(js *JobStatus) bool { return js.State == "done" })
	if js.Response == nil || !js.Response.Verified {
		t.Fatalf("job response = %+v", js.Response)
	}
	if js.Error != nil {
		t.Errorf("done job carries an error envelope: %+v", js.Error)
	}

	status, syncRaw := postSynthesize(t, ts, body)
	if status != http.StatusOK {
		t.Fatalf("sync status = %d", status)
	}
	if sr := decodeResponse(t, syncRaw); !sr.Cached {
		t.Errorf("sync call after async job was not a cache hit")
	}
	if got := svc.Metrics().AsyncSubmitted.Load(); got != 1 {
		t.Errorf("async submitted = %d, want 1", got)
	}
}

func TestCancelWhileRunningYieldsTypedCanceled(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 1})
	// Symbolic matching with 9 processes runs for many seconds — plenty of
	// time to observe "running" and cancel it.
	body := `{"protocol":"matching","k":9,"engine":"symbolic","timeout_ms":120000}`

	status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", body)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %s)", status, data)
	}
	id := decodeJobStatus(t, data).ID
	waitJobState(t, ts, id, func(js *JobStatus) bool { return js.State == "running" })

	status, _, data = doJSON(t, ts, http.MethodDelete, "/v1/jobs/"+id, "")
	if status != http.StatusOK {
		t.Fatalf("cancel status = %d (body %s)", status, data)
	}
	if js := decodeJobStatus(t, data); js.State != "canceled" {
		t.Fatalf("state after cancel = %q, want canceled", js.State)
	}

	// The engine must actually stop: the worker frees up and the job stays
	// canceled with a typed error envelope.
	js := waitJobState(t, ts, id, func(js *JobStatus) bool { return js.State == "canceled" && js.Error != nil })
	if js.Error.Name != stsynerr.Canceled {
		t.Errorf("error name = %q, want %s", js.Error.Name, stsynerr.Canceled)
	}
	deadline := time.Now().Add(30 * time.Second)
	for svc.Metrics().JobsCancelled.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("engine never registered the cancellation")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := svc.Metrics().AsyncCanceled.Load(); got != 1 {
		t.Errorf("async canceled = %d, want 1", got)
	}

	// A fresh job proves the worker survived the cancellation.
	status, _, data = doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"protocol":"tokenring"}`)
	if status != http.StatusAccepted {
		t.Fatalf("post-cancel submit = %d (body %s)", status, data)
	}
	waitJobState(t, ts, decodeJobStatus(t, data).ID, func(js *JobStatus) bool { return js.State == "done" })
}

func TestJobTTLExpiryAnswersJobNotFound(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobTTL: 50 * time.Millisecond})

	status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"protocol":"tokenring"}`)
	if status != http.StatusAccepted {
		t.Fatalf("submit status = %d (body %s)", status, data)
	}
	id := decodeJobStatus(t, data).ID
	waitJobState(t, ts, id, func(js *JobStatus) bool { return js.State == "done" })

	time.Sleep(120 * time.Millisecond)
	status, _, data = doJSON(t, ts, http.MethodGet, "/v1/jobs/"+id, "")
	if status != http.StatusNotFound {
		t.Fatalf("expired poll status = %d (body %s), want 404", status, data)
	}
	var env stsynerr.Envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Name != stsynerr.JobNotFound {
		t.Errorf("expired poll body = %s, want %s envelope", data, stsynerr.JobNotFound)
	}
}

func TestJobStoreFullAnswersTypedQueueFull(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, JobsMax: 1})
	slow := `{"protocol":"matching","k":9,"engine":"symbolic","timeout_ms":120000}`

	status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", slow)
	if status != http.StatusAccepted {
		t.Fatalf("first submit = %d (body %s)", status, data)
	}
	id := decodeJobStatus(t, data).ID

	status, hdr, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", `{"protocol":"tokenring"}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("overflow submit = %d (body %s), want 503", status, data)
	}
	var env stsynerr.Envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Name != stsynerr.QueueFull {
		t.Errorf("overflow body = %s, want %s envelope", data, stsynerr.QueueFull)
	}
	if env.RetryAfterSeconds <= 0 || hdr.Get("Retry-After") == "" {
		t.Errorf("overflow lacks retry advice: envelope %+v, header %q", env, hdr.Get("Retry-After"))
	}

	// Free the slot again so shutdown drains quickly.
	doJSON(t, ts, http.MethodDelete, "/v1/jobs/"+id, "")
}

func TestTenantAdmissionControl(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, TenantRate: 0.001, TenantBurst: 2})
	send := func(tenant string) (int, http.Header, []byte) {
		req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/synthesize", strings.NewReader(`{"protocol":"tokenring"}`))
		if err != nil {
			t.Fatal(err)
		}
		if tenant != "" {
			req.Header.Set(TenantHeader, tenant)
		}
		resp, err := ts.Client().Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, data
	}

	for i := 0; i < 2; i++ {
		if status, _, data := send("acme"); status != http.StatusOK {
			t.Fatalf("request %d status = %d (body %s)", i, status, data)
		}
	}
	status, hdr, data := send("acme")
	if status != http.StatusTooManyRequests {
		t.Fatalf("burst-exhausted status = %d (body %s), want 429", status, data)
	}
	var env stsynerr.Envelope
	if err := json.Unmarshal(data, &env); err != nil || env.Name != stsynerr.RateLimited {
		t.Errorf("rate-limit body = %s, want %s envelope", data, stsynerr.RateLimited)
	}
	if env.Params["tenant"] != "acme" {
		t.Errorf("rate-limit params = %v, want tenant=acme", env.Params)
	}
	if env.RetryAfterSeconds <= 0 || hdr.Get("Retry-After") == "" {
		t.Errorf("rate limit lacks retry advice: %+v / %q", env, hdr.Get("Retry-After"))
	}

	// Buckets are per tenant: another tenant (and the anonymous default)
	// still gets in.
	if status, _, data := send("globex"); status != http.StatusOK {
		t.Errorf("other tenant status = %d (body %s)", status, data)
	}
	if status, _, data := send(""); status != http.StatusOK {
		t.Errorf("anonymous status = %d (body %s)", status, data)
	}
}

// Every handler-level error path must answer a registered, decodable
// envelope: name, status and envelope shape are one contract.
func TestHandlerErrorNamesAreRegistered(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	for _, tc := range []struct {
		label        string
		method, path string
		body         string
		status       int
		name         stsynerr.Name
	}{
		{"sync wrong method", http.MethodGet, "/v1/synthesize", "", http.StatusMethodNotAllowed, stsynerr.MethodNotAllowed},
		{"jobs wrong method", http.MethodGet, "/v1/jobs", "", http.StatusMethodNotAllowed, stsynerr.MethodNotAllowed},
		{"job wrong method", http.MethodPut, "/v1/jobs/abc", "", http.StatusMethodNotAllowed, stsynerr.MethodNotAllowed},
		{"bad json", http.MethodPost, "/v1/synthesize", `{"protocol"`, http.StatusBadRequest, stsynerr.InvalidRequest},
		{"unknown field", http.MethodPost, "/v1/jobs", `{"protocl":"tokenring"}`, http.StatusBadRequest, stsynerr.InvalidRequest},
		{"oversized body", http.MethodPost, "/v1/synthesize", `{"spec":"` + strings.Repeat("x", 2<<20) + `"}`, http.StatusRequestEntityTooLarge, stsynerr.RequestTooLarge},
		{"unknown job", http.MethodGet, "/v1/jobs/nope", "", http.StatusNotFound, stsynerr.JobNotFound},
		{"cancel unknown job", http.MethodDelete, "/v1/jobs/nope", "", http.StatusNotFound, stsynerr.JobNotFound},
		{"nested job path", http.MethodGet, "/v1/jobs/a/b", "", http.StatusNotFound, stsynerr.JobNotFound},
		{"empty batch", http.MethodPost, "/v1/batch", `{"requests":[]}`, http.StatusBadRequest, stsynerr.InvalidRequest},
		{"async invalid spec", http.MethodPost, "/v1/jobs", `{"spec":"protocol X\n"}`, http.StatusUnprocessableEntity, stsynerr.InvalidSpec},
	} {
		t.Run(tc.label, func(t *testing.T) {
			status, _, data := doJSON(t, ts, tc.method, tc.path, tc.body)
			if status != tc.status {
				t.Fatalf("status = %d (body %s), want %d", status, data, tc.status)
			}
			var env stsynerr.Envelope
			if err := json.Unmarshal(data, &env); err != nil {
				t.Fatalf("body %s is not an envelope: %v", data, err)
			}
			if env.Name != tc.name {
				t.Errorf("error name = %q, want %q", env.Name, tc.name)
			}
			if env.Error == "" || env.RequestID == "" {
				t.Errorf("envelope incomplete: %s", data)
			}
			// The registered status and the wire status must agree, and the
			// envelope must reconstruct the typed error client-side.
			serr := env.AsError(status)
			if serr.Name != tc.name || serr.HTTPStatus() != tc.status {
				t.Errorf("decoded error = %+v, want %s/%d", serr, tc.name, tc.status)
			}
			if !errors.Is(serr, &stsynerr.Error{Name: tc.name}) {
				t.Errorf("errors.Is lost the name through the wire")
			}
		})
	}
}

// One job store under concurrent submit/poll/cancel from many goroutines;
// run with -race this is the async API's data-race gate.
func TestAsyncConcurrentLifecycleStress(t *testing.T) {
	svc, ts := newTestServer(t, Config{Workers: 4, JobsMax: 64})
	const clients = 8
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				body := fmt.Sprintf(`{"protocol":"tokenring","k":%d}`, 3+(c+i)%3)
				status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", body)
				if status == http.StatusServiceUnavailable {
					continue // store briefly full under stress: fine
				}
				if status != http.StatusAccepted {
					t.Errorf("submit = %d (body %s)", status, data)
					return
				}
				id := decodeJobStatus(t, data).ID
				if c%2 == 0 {
					doJSON(t, ts, http.MethodDelete, "/v1/jobs/"+id, "")
				}
				waitJobState(t, ts, id, func(js *JobStatus) bool {
					return js.State == "done" || js.State == "canceled" || js.State == "failed"
				})
			}
		}(c)
	}
	wg.Wait()
	counts := svc.JobCounts()
	if counts.Queued != 0 || counts.Running != 0 {
		t.Errorf("jobs left live after stress: %+v", counts)
	}
}

// Shutdown must still drain cleanly with detached async jobs in flight.
func TestShutdownDrainsAsyncJobs(t *testing.T) {
	svc := New(Config{Workers: 2})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()

	for i := 0; i < 3; i++ {
		body := fmt.Sprintf(`{"protocol":"coloring","k":%d}`, 4+i)
		status, _, data := doJSON(t, ts, http.MethodPost, "/v1/jobs", body)
		if status != http.StatusAccepted {
			t.Fatalf("submit = %d (body %s)", status, data)
		}
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := svc.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown with async jobs in flight: %v", err)
	}
}
