package service

import (
	"errors"
	"net/http"
	"strconv"

	"stsyn/pkg/stsynerr"
)

// Error is the service's failure type: an alias of the published typed
// error contract (pkg/stsynerr), so every error the server constructs is
// already in the shape clients decode. Retrieve it from any Server error
// with errors.As and branch on its Name.
type Error = stsynerr.Error

// StatusClientClosed is the (conventional, nginx-originated) status for
// requests whose client went away before the job finished.
const StatusClientClosed = stsynerr.StatusClientClosed

// asServiceError passes through an error that already carries the typed
// contract and wraps any other in the given registered name and message.
func asServiceError(err error, name stsynerr.Name, msg string) *Error {
	var se *Error
	if errors.As(err, &se) {
		return se
	}
	return stsynerr.Wrap(name, msg, err)
}

// writeError maps a service error to its HTTP status and the one JSON
// error envelope of the contract, stamping the request's correlation ID
// (already echoed on the response header by the request-ID middleware).
// Retry advice becomes the Retry-After header on 503 and 429 responses.
func writeError(w http.ResponseWriter, err error) {
	var se *Error
	if !errors.As(err, &se) {
		se = stsynerr.Wrap(stsynerr.Internal, "internal error", err)
	}
	status := se.HTTPStatus()
	if status == http.StatusServiceUnavailable || status == http.StatusTooManyRequests {
		secs := se.RetryAfter
		if secs <= 0 {
			secs = 1
		}
		w.Header().Set("Retry-After", strconv.Itoa(secs))
	}
	env := se.Envelope()
	if env.RequestID == "" {
		env.RequestID = w.Header().Get(RequestIDHeader)
	}
	writeJSON(w, status, env)
}
