package service

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/prune"
	"stsyn/internal/service/jobs"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
	"stsyn/pkg/stsynerr"
)

// Config configures a Server. Zero values select the documented defaults.
type Config struct {
	// Workers is the number of concurrent synthesis workers (default:
	// GOMAXPROCS). Each job runs one engine; engines are single-threaded,
	// so this bounds CPU use.
	Workers int
	// QueueDepth is the number of jobs that may wait for a worker before
	// the server answers 503 (0 selects the default of 64). Negative means
	// no queue at all: jobs are only accepted when a worker is free at the
	// moment of submission.
	QueueDepth int
	// DefaultTimeout bounds jobs that do not ask for one (default 30s);
	// MaxTimeout clamps what jobs may ask for (default 5m). The timeout
	// covers queue wait plus synthesis.
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// CacheBytes is the result cache budget (default 64 MiB). Negative
	// disables caching.
	CacheBytes int64
	// MemoBytes is the budget of the cross-schedule fixpoint memo serving
	// prune-enabled jobs (default prune.DefaultMemoBytes). Negative
	// disables the memo — pruned jobs then still quotient the schedule
	// space but share no sub-results.
	MemoBytes int64
	// JobsMax bounds the async job store: live jobs plus retained terminal
	// results (default 1024). A full store answers QueueFull.
	JobsMax int
	// JobTTL is how long a terminal async result is retained for polling
	// before eviction (default 10m). A later poll answers JobNotFound.
	JobTTL time.Duration
	// TenantRate and TenantBurst configure per-tenant token-bucket
	// admission across every synthesis-submitting endpoint: TenantRate
	// requests per second sustained (default 50), bursts up to TenantBurst
	// (default 2×rate). TenantRate < 0 disables admission control.
	TenantRate  float64
	TenantBurst int
	// Logf, when non-nil, receives one structured line per job and per
	// lifecycle event.
	Logf func(format string, args ...interface{})
}

// queueDepthUnset distinguishes "use the default" from an explicit 0.
const queueDepthUnset = 0

// Server runs synthesis jobs on a bounded worker pool, front-ended by a
// content-addressed result cache. It is safe for concurrent use.
type Server struct {
	cfg       Config
	jobs      chan *job
	cache     *resultCache
	memo      *prune.Memo // nil when MemoBytes < 0
	store     *jobs.Store // async job store
	admission *admission  // nil when TenantRate < 0
	metrics   *Metrics
	logf      func(string, ...interface{})

	wg     sync.WaitGroup
	mu     sync.Mutex
	closed bool
	nextID atomic.Int64
}

type job struct {
	id int64
	//lint:ignore ctxflow request-scoped carrier: the job ferries its request's context through the worker queue, as http.Request does
	ctx    context.Context
	cancel context.CancelFunc
	norm   *Job
	resp   *Response
	err    *Error
	done   chan struct{}
	// onStart, when non-nil, runs as a worker picks the job up; returning
	// false (the async store saw it canceled first) skips the engine.
	onStart func() bool
}

// New builds a Server and starts its workers. Call Shutdown to stop them.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueDepth == queueDepthUnset {
		cfg.QueueDepth = 64
	}
	if cfg.QueueDepth < 0 {
		cfg.QueueDepth = 0
	}
	if cfg.DefaultTimeout <= 0 {
		cfg.DefaultTimeout = 30 * time.Second
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = 5 * time.Minute
	}
	if cfg.CacheBytes == 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.JobsMax <= 0 {
		cfg.JobsMax = 1024
	}
	if cfg.JobTTL <= 0 {
		cfg.JobTTL = 10 * time.Minute
	}
	if cfg.TenantRate == 0 {
		cfg.TenantRate = 50
	}
	if cfg.TenantBurst <= 0 {
		cfg.TenantBurst = int(2 * cfg.TenantRate)
	}
	s := &Server{
		cfg:     cfg,
		jobs:    make(chan *job, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheBytes),
		store:   jobs.NewStore(cfg.JobsMax, cfg.JobTTL),
		metrics: newMetrics(),
		logf:    cfg.Logf,
	}
	if cfg.TenantRate > 0 {
		s.admission = newAdmission(cfg.TenantRate, cfg.TenantBurst)
	}
	if cfg.MemoBytes >= 0 {
		s.memo = prune.NewMemo(cfg.MemoBytes)
	}
	if s.logf == nil {
		s.logf = func(string, ...interface{}) {}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s
}

// Metrics exposes the server's counters (shared, live).
func (s *Server) Metrics() *Metrics { return s.metrics }

// QueueDepth returns the number of jobs currently waiting for a worker.
func (s *Server) QueueDepth() int { return len(s.jobs) }

// CacheStats returns the result cache's entry count and bytes in use.
func (s *Server) CacheStats() (entries int, bytes int64) { return s.cache.stats() }

// MemoStats returns the cross-schedule fixpoint memo's counters (zeros
// when the memo is disabled).
func (s *Server) MemoStats() prune.MemoStats {
	if s.memo == nil {
		return prune.MemoStats{}
	}
	return s.memo.Stats()
}

// retryAfterHint estimates, in whole seconds, how long a rejected client
// should wait before retrying: the current backlog (plus the rejected job
// itself) times the mean job latency, divided across the worker pool. With
// no latency data yet it assumes 1s per job; the result is clamped to
// [1, 60].
func (s *Server) retryAfterHint() int {
	meanMS := s.metrics.MeanJobMS()
	if meanMS <= 0 {
		meanMS = 1000
	}
	secs := int(math.Ceil(float64(len(s.jobs)+1) * meanMS / float64(s.cfg.Workers) / 1000))
	if secs < 1 {
		secs = 1
	}
	if secs > 60 {
		secs = 60
	}
	return secs
}

// prepare resolves a request to a normalized job: spec build plus option
// normalization, with every failure already typed. Shared by the sync,
// async and batch paths so all three agree on the cache key.
func (s *Server) prepare(req *Request) (*Job, *Error) {
	sp, err := BuildSpec(req)
	if err != nil {
		return nil, asServiceError(err, stsynerr.InvalidRequest, "bad specification")
	}
	norm, err := Normalize(req, sp)
	if err != nil {
		return nil, asServiceError(err, stsynerr.UnsupportedOption, "bad options")
	}
	return norm, nil
}

// cached serves a normalized job from the result cache, marking the copy.
func (s *Server) cached(norm *Job) (*Response, bool) {
	resp, ok := s.cache.get(norm.Key)
	if !ok {
		s.metrics.CacheMisses.Add(1)
		return nil, false
	}
	s.metrics.CacheHits.Add(1)
	out := *resp // shallow copy; cached entries are immutable
	out.Cached = true
	s.logf("job=cache-hit protocol=%q key=%.12s", norm.Spec.Name, norm.Key)
	return &out, true
}

// timeoutFor clamps a request's timeout to the server's bounds.
func (s *Server) timeoutFor(req *Request) time.Duration {
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	return timeout
}

// enqueue submits a normalized job to the worker pool without blocking:
// jctx (already deadline-bounded) governs the run, and onStart (may be
// nil) is installed before the job is published — a worker may read it the
// instant the channel send lands. Failures are typed — ShuttingDown during
// drain, QueueFull with retry advice when the bounded queue has no room.
func (s *Server) enqueue(jctx context.Context, cancel context.CancelFunc, norm *Job, onStart func() bool) (*job, *Error) {
	j := &job{
		id:      s.nextID.Add(1),
		ctx:     jctx,
		cancel:  cancel,
		norm:    norm,
		done:    make(chan struct{}),
		onStart: onStart,
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		cancel()
		return nil, stsynerr.New(stsynerr.ShuttingDown, "server is shutting down")
	}
	select {
	case s.jobs <- j:
		s.mu.Unlock()
		return j, nil
	default:
		s.mu.Unlock()
		cancel()
		s.metrics.QueueRejected.Add(1)
		e := stsynerr.New(stsynerr.QueueFull, "job queue full, retry later")
		e.RetryAfter = s.retryAfterHint()
		return nil, e
	}
}

// Do runs one synthesis request to completion: cache lookup, then — on a
// miss — a queued job bounded by the request context and the job timeout.
// Errors are always *Error values carrying a registered name and HTTP
// status: malformed requests are 400s, semantically invalid ones (unknown
// protocol, engine or option) are 422s.
func (s *Server) Do(ctx context.Context, req *Request) (*Response, error) {
	norm, serr := s.prepare(req)
	if serr != nil {
		return nil, serr
	}
	if resp, ok := s.cached(norm); ok {
		return resp, nil
	}

	jctx, cancel := context.WithTimeout(ctx, s.timeoutFor(req))
	j, serr := s.enqueue(jctx, cancel, norm, nil)
	if serr != nil {
		return nil, serr
	}

	select {
	case <-j.done:
		if j.err != nil {
			return nil, j.err
		}
		return j.resp, nil
	case <-ctx.Done():
		// Client gone (or caller deadline): the worker observes jctx —
		// derived from ctx — at its next cancellation point and stops.
		return nil, stsynerr.Wrap(stsynerr.Canceled, "request cancelled", ctx.Err())
	}
}

// Shutdown stops accepting jobs, drains the queue, and waits for in-flight
// jobs to finish (or for ctx to expire). Safe to call more than once.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	if !s.closed {
		s.closed = true
		close(s.jobs)
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.logf("server drained")
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Server) worker() {
	defer s.wg.Done()
	for j := range s.jobs {
		s.run(j)
	}
}

// run executes one job on this worker and publishes its outcome.
func (s *Server) run(j *job) {
	defer close(j.done)
	defer j.cancel()

	if err := j.ctx.Err(); err != nil {
		// Expired while queued: never start the engine.
		s.metrics.JobsCancelled.Add(1)
		j.err = timeoutError(err)
		s.logf("job=%d protocol=%q status=cancelled-in-queue err=%v", j.id, j.norm.Spec.Name, err)
		return
	}
	if j.onStart != nil && !j.onStart() {
		// The async store saw this job canceled before a worker got to it.
		s.metrics.JobsCancelled.Add(1)
		j.err = stsynerr.New(stsynerr.Canceled, "job cancelled")
		s.logf("job=%d protocol=%q status=cancelled-in-queue", j.id, j.norm.Spec.Name)
		return
	}

	s.metrics.JobsStarted.Add(1)
	start := time.Now()
	resp, err := s.synthesize(j.ctx, j.norm)
	elapsed := time.Since(start)
	s.metrics.ObserveJob(j.norm.Engine, elapsed)

	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			s.metrics.JobsCancelled.Add(1)
			j.err = timeoutError(err)
		} else {
			s.metrics.JobsFailed.Add(1)
			j.err = stsynerr.Wrap(stsynerr.SynthesisFailed, "synthesis failed", err)
		}
		s.logf("job=%d protocol=%q engine=%s status=error elapsed=%s err=%v",
			j.id, j.norm.Spec.Name, j.norm.Engine, elapsed.Round(time.Microsecond), err)
		return
	}

	resp.ElapsedMS = float64(elapsed.Microseconds()) / 1e3
	s.metrics.JobsSucceeded.Add(1)
	s.metrics.ObserveBDD(resp.BDD)
	s.metrics.ObserveExplicit(resp.Explicit)
	s.metrics.ObservePrune(resp.Prune)
	s.metrics.RankInfinityFastFail.Add(int64(resp.RankInfinityFastFail))
	if s.cfg.CacheBytes > 0 {
		if data, err := json.Marshal(resp); err == nil {
			s.cache.put(j.norm.Key, resp, int64(len(data))+int64(len(j.norm.Key)))
		}
	}
	j.resp = resp
	s.logf("job=%d protocol=%q engine=%s status=ok pass=%d added=%d elapsed=%s key=%.12s",
		j.id, j.norm.Spec.Name, j.norm.Engine, resp.Pass, resp.AddedGroups,
		elapsed.Round(time.Microsecond), j.norm.Key)
}

func timeoutError(err error) *Error {
	name := stsynerr.Timeout
	if errors.Is(err, context.Canceled) {
		name = stsynerr.Canceled
	}
	return stsynerr.Wrap(name, "synthesis did not finish in time", err)
}

// synthesize runs the job's synthesis (plus fanout schedule search when
// asked) and model-checks the result.
func (s *Server) synthesize(ctx context.Context, norm *Job) (*Response, error) {
	factory := func() (core.Engine, error) { return newEngine(norm) }
	opts := norm.Options()
	opts.Ctx = ctx

	// Prune-enabled jobs get the spec's schedule-automorphism group and a
	// scope into the server-wide fixpoint memo. Both legs preserve the
	// result bit for bit: the quotient drops only orbit-mates of schedules
	// that still run, and memo hits replay exactly what recomputation
	// would produce.
	var group *prune.Group
	var jobMemo *prune.JobMemo
	var pruneStats *PruneStats
	if norm.Prune {
		group = prune.DeriveGroup(norm.Spec)
		pruneStats = &PruneStats{GroupSize: group.Size()}
		if s.memo != nil {
			jobMemo = s.memo.ForJob(prune.Scope(norm.Spec, norm.Engine, norm.Convergence, norm.Resolution))
			opts.Memo = jobMemo
		}
	}

	if norm.Fanout {
		stream := core.StreamSchedules(core.Rotations(len(norm.Spec.Procs)))
		if group != nil {
			// The rotations list is in lexicographic order and closed under
			// the (rotation-generated) group, so the O(1) canonical filter
			// applies. The quotient is drained eagerly — it is at most k
			// schedules — so the stats report the whole quotient even when
			// an early success stops the search before the stream is spent.
			q := prune.NewQuotientStream(group, stream, true)
			var reps [][]int
			for s, ok := q.Next(); ok; s, ok = q.Next() {
				reps = append(reps, s)
			}
			qs := q.Stats()
			pruneStats.SchedulesEmitted = qs.Emitted
			pruneStats.SchedulesPruned = qs.Pruned
			stream = core.StreamSchedules(reps)
		}
		best, _, err := core.TryScheduleStream(factory, opts, stream, runtime.GOMAXPROCS(0))
		if err != nil {
			return nil, err
		}
		norm.Schedule = best.Schedule
		opts.Schedule = best.Schedule
	}

	e, err := factory()
	if err != nil {
		return nil, err
	}
	res, err := core.AddConvergence(e, opts)
	if err != nil {
		return nil, err
	}

	verdict := verify.StronglyStabilizing(e, res.Protocol)
	if norm.Convergence == core.Weak {
		verdict = verify.WeaklyStabilizing(e, res.Protocol)
	}
	if err := ctx.Err(); err != nil {
		// A cancelled engine can produce a bogus verdict; surface the
		// cancellation instead.
		return nil, err
	}
	if !verdict.OK {
		return nil, fmt.Errorf("internal error: synthesized protocol failed verification: %s", verdict.Reason)
	}
	resp := EncodeResult(e, res, norm, true)
	if pruneStats != nil {
		if jobMemo != nil {
			pruneStats.MemoHits = jobMemo.Hits()
			pruneStats.MemoMisses = jobMemo.Misses()
		}
		resp.Prune = pruneStats
	}
	return resp, nil
}

// newEngine builds the job's engine and applies its engine-level knobs.
func newEngine(norm *Job) (core.Engine, error) {
	if norm.Engine == "explicit" {
		e, err := explicit.New(norm.Spec, 0)
		if err != nil {
			return nil, err
		}
		switch norm.SCC {
		case "fb":
			e.SetSCCAlgorithm(explicit.ForwardBackward)
		case "tarjan":
			e.SetSCCAlgorithm(explicit.Tarjan)
		}
		e.SetParallelism(norm.Workers)
		return e, nil
	}
	e, err := symbolic.New(norm.Spec)
	if err != nil {
		return nil, err
	}
	e.SetParallelism(norm.Workers)
	return e, nil
}
