package service

import (
	"fmt"
	"testing"
)

func TestCacheGetPut(t *testing.T) {
	c := newResultCache(1000)
	if _, ok := c.get("a"); ok {
		t.Fatal("hit on empty cache")
	}
	r := &Response{Protocol: "a"}
	c.put("a", r, 100)
	got, ok := c.get("a")
	if !ok || got != r {
		t.Fatal("put then get failed")
	}
	if n, b := c.stats(); n != 1 || b != 100 {
		t.Fatalf("stats = %d entries %d bytes", n, b)
	}
}

func TestCacheEvictsLRUUnderByteBudget(t *testing.T) {
	c := newResultCache(300)
	for i := 0; i < 3; i++ {
		c.put(fmt.Sprintf("k%d", i), &Response{}, 100)
	}
	// Touch k0 so k1 is the least recently used.
	c.get("k0")
	c.put("k3", &Response{}, 100)
	if _, ok := c.get("k1"); ok {
		t.Error("k1 should have been evicted (LRU)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if _, b := c.stats(); b > 300 {
		t.Errorf("budget exceeded: %d", b)
	}
}

func TestCacheRejectsOversizedEntry(t *testing.T) {
	c := newResultCache(100)
	c.put("big", &Response{}, 101)
	if n, _ := c.stats(); n != 0 {
		t.Error("oversized entry cached")
	}
}

func TestCacheDuplicatePutKeepsOne(t *testing.T) {
	c := newResultCache(1000)
	c.put("a", &Response{Pass: 1}, 100)
	c.put("a", &Response{Pass: 2}, 100)
	if n, b := c.stats(); n != 1 || b != 100 {
		t.Fatalf("stats = %d entries %d bytes, want 1/100", n, b)
	}
	got, _ := c.get("a")
	if got.Pass != 1 {
		t.Error("duplicate put replaced the original entry")
	}
}
