package service

import (
	"math"
	"sync"
	"time"
)

// admission is the per-tenant token-bucket gate ahead of the worker pool:
// each tenant sustains rate requests per second with bursts up to burst.
// It protects the queue from a single hot client — queue-full 503s say
// "the server is busy", admission 429s say "you are" — and keeps the
// default (anonymous) bucket shared so unidentified traffic competes with
// itself, not with named tenants.
type admission struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64 // bucket capacity
	buckets map[string]*bucket
	now     func() time.Time // test hook
}

type bucket struct {
	tokens float64
	last   time.Time
}

// admissionSweepLen is the bucket count above which idle buckets are
// swept, bounding memory against tenant-header churn.
const admissionSweepLen = 1024

// admissionIdle is how long a full, untouched bucket may sit before a
// sweep may drop it (a fresh bucket is indistinguishable from a dropped
// one, so eviction is invisible to tenants).
const admissionIdle = 10 * time.Minute

func newAdmission(rate float64, burst int) *admission {
	if burst < 1 {
		burst = 1
	}
	return &admission{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     time.Now,
	}
}

// allow charges n tokens against the tenant's bucket. When the bucket
// cannot cover the charge it reports false plus the whole-second wait
// after which the same charge would succeed.
func (a *admission) allow(tenant string, n int) (ok bool, retryAfter int) {
	a.mu.Lock()
	defer a.mu.Unlock()
	now := a.now()
	b := a.buckets[tenant]
	if b == nil {
		if len(a.buckets) >= admissionSweepLen {
			a.sweepLocked(now)
		}
		b = &bucket{tokens: a.burst, last: now}
		a.buckets[tenant] = b
	} else {
		b.tokens = math.Min(a.burst, b.tokens+a.rate*now.Sub(b.last).Seconds())
		b.last = now
	}
	need := float64(n)
	if need > a.burst {
		// A charge that can never fit (a batch larger than the burst) is
		// capped at the burst: the tenant pays the whole bucket and waits
		// for it to refill, instead of being unconditionally locked out.
		need = a.burst
	}
	if b.tokens >= need {
		b.tokens -= need
		return true, 0
	}
	secs := int(math.Ceil((need - b.tokens) / a.rate))
	if secs < 1 {
		secs = 1
	}
	return false, secs
}

// sweepLocked drops buckets idle long enough to have refilled completely;
// a.mu must be held.
func (a *admission) sweepLocked(now time.Time) {
	for tenant, b := range a.buckets {
		if now.Sub(b.last) > admissionIdle {
			delete(a.buckets, tenant)
		}
	}
}
