package service

import (
	"context"

	"stsyn/internal/service/jobs"
	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

// The async and batch wire types, re-exported from pkg/stsynapi like the
// rest of the contract.
type (
	// JobStatus is the envelope of the async job API.
	JobStatus = stsynapi.JobStatus
	// BatchRequest is the body of POST /v1/batch.
	BatchRequest = stsynapi.BatchRequest
	// BatchResult is one request's outcome within a batch.
	BatchResult = stsynapi.BatchResult
	// BatchResponse is the body answering POST /v1/batch.
	BatchResponse = stsynapi.BatchResponse
)

// TenantHeader names the tenant a request is accounted to by per-tenant
// admission control.
const TenantHeader = stsynapi.TenantHeader

// maxBatchRequests bounds one batch call; oversized batches get a typed
// InvalidRequest so callers split them, keeping the server's per-call
// memory bound explicit.
const maxBatchRequests = 256

// Submit admits one synthesis request asynchronously: the job is
// validated, keyed and enqueued exactly like the synchronous path — the
// two share the result cache entry — but runs detached from the caller's
// request context (only its values, the request ID included, are kept) and
// parks its outcome in the job store for polling. Returns the job's ID.
func (s *Server) Submit(ctx context.Context, req *Request) (string, *Error) {
	norm, serr := s.prepare(req)
	if serr != nil {
		return "", serr
	}

	// The job must outlive the submitting HTTP request: detach from its
	// cancellation while keeping its values, and bound the run by the job
	// timeout alone.
	jctx, cancel := context.WithTimeout(context.WithoutCancel(ctx), s.timeoutFor(req))

	id, serr := s.store.Create(cancel)
	if serr != nil {
		cancel()
		serr.RetryAfter = s.retryAfterHint()
		return "", serr
	}

	if resp, ok := s.cached(norm); ok {
		// Served entirely from the cache: the job is born terminal.
		s.store.Start(id)
		s.store.Finish(id, resp, nil)
		cancel()
		s.metrics.AsyncSubmitted.Add(1)
		return id, nil
	}

	// The worker flips the store to running as it picks the job up, and
	// skips the engine when a DELETE already canceled it; the hook is
	// installed at enqueue time, before any worker can see the job.
	j, serr := s.enqueue(jctx, cancel, norm, func() bool { return s.store.Start(id) })
	if serr != nil {
		s.store.Drop(id)
		return "", serr
	}

	s.metrics.AsyncSubmitted.Add(1)
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		<-j.done
		s.store.Finish(id, j.resp, j.err)
	}()
	return id, nil
}

// JobStatus reports one job's current state (with its result or typed
// error once terminal), or JobNotFound for unknown and expired IDs.
func (s *Server) JobStatus(id string) (*JobStatus, *Error) {
	snap, serr := s.store.Get(id)
	if serr != nil {
		return nil, serr
	}
	return jobStatusOf(snap), nil
}

// CancelJob cancels a live job — its engine stops at the next cancellation
// point — and reports the resulting state. Canceling a terminal job is a
// no-op answering its (unchanged) status.
func (s *Server) CancelJob(id string) (*JobStatus, *Error) {
	snap, serr := s.store.Cancel(id)
	if serr != nil {
		return nil, serr
	}
	if snap.State == jobs.Canceled {
		s.metrics.AsyncCanceled.Add(1)
	}
	return jobStatusOf(snap), nil
}

// JobCounts exposes the job store's population by state (metrics).
func (s *Server) JobCounts() jobs.Counts { return s.store.Counts() }

// jobStatusOf renders a store snapshot as the wire envelope.
func jobStatusOf(snap jobs.Snapshot) *JobStatus {
	js := &JobStatus{
		ID:        snap.ID,
		State:     string(snap.State),
		ElapsedMS: float64(snap.Elapsed().Microseconds()) / 1e3,
		Response:  snap.Response,
	}
	if snap.Err != nil {
		js.Error = snap.Err.Envelope()
	}
	return js
}

// Batch answers many synthesis requests in one call, amortizing what the
// per-request path repeats: requests are validated and normalized once,
// duplicates (by canonical cache key) collapse onto a single run, cache
// hits are answered without touching the queue, and only the distinct
// misses occupy workers — concurrently, each bounded by its own timeout.
// Per-item failures (bad request, queue full) land in that item's slot;
// the batch itself only fails when its shape is unusable.
func (s *Server) Batch(ctx context.Context, breq *BatchRequest) (*BatchResponse, *Error) {
	if len(breq.Requests) == 0 {
		return nil, stsynerr.New(stsynerr.InvalidRequest, "batch has no requests")
	}
	if len(breq.Requests) > maxBatchRequests {
		return nil, stsynerr.Newf(stsynerr.InvalidRequest, "batch has %d requests, limit %d", len(breq.Requests), maxBatchRequests)
	}
	s.metrics.BatchRequests.Add(1)
	s.metrics.BatchItems.Add(int64(len(breq.Requests)))

	out := &BatchResponse{Results: make([]BatchResult, len(breq.Requests))}

	// Normalize every request and collapse duplicates by canonical key, so
	// a batch of a thousand copies of one spec parses once and runs once.
	type unique struct {
		norm    *Job
		indices []int
		job     *job
	}
	byKey := make(map[string]*unique)
	order := make([]string, 0, len(breq.Requests))
	for i := range breq.Requests {
		norm, serr := s.prepare(&breq.Requests[i])
		if serr != nil {
			out.Results[i] = BatchResult{Error: serr.Envelope()}
			continue
		}
		u := byKey[norm.Key]
		if u == nil {
			u = &unique{norm: norm}
			byKey[norm.Key] = u
			order = append(order, norm.Key)
		} else {
			out.Deduped++
		}
		u.indices = append(u.indices, i)
	}
	s.metrics.BatchDeduped.Add(int64(out.Deduped))

	// Answer cache hits immediately; enqueue the misses back to back so
	// they run concurrently on the worker pool.
	for _, key := range order {
		u := byKey[key]
		if resp, ok := s.cached(u.norm); ok {
			out.CacheHits++
			s.metrics.BatchCacheHits.Add(1)
			for _, i := range u.indices {
				out.Results[i] = BatchResult{Response: resp}
			}
			continue
		}
		jctx, cancel := context.WithTimeout(ctx, s.timeoutFor(&breq.Requests[u.indices[0]]))
		j, serr := s.enqueue(jctx, cancel, u.norm, nil)
		if serr != nil {
			for _, i := range u.indices {
				out.Results[i] = BatchResult{Error: serr.Envelope()}
			}
			continue
		}
		u.job = j
	}

	// Collect outcomes. Enqueued jobs always close done (worker drain
	// included), so waiting on each in turn loses no concurrency.
	for _, key := range order {
		u := byKey[key]
		if u.job == nil {
			continue
		}
		select {
		case <-u.job.done:
		case <-ctx.Done():
			// Caller gone: the per-job contexts descend from ctx, so the
			// workers stop at their next cancellation point.
			return nil, stsynerr.Wrap(stsynerr.Canceled, "batch cancelled", ctx.Err())
		}
		for _, i := range u.indices {
			if u.job.err != nil {
				out.Results[i] = BatchResult{Error: u.job.err.Envelope()}
			} else {
				out.Results[i] = BatchResult{Response: u.job.resp}
			}
		}
	}
	s.logf("batch items=%d unique=%d deduped=%d cache_hits=%d", len(breq.Requests), len(order), out.Deduped, out.CacheHits)
	return out, nil
}
