package service

import (
	"container/list"
	"sync"
)

// resultCache is a content-addressed LRU result cache with a byte budget.
// Keys are canonical job hashes (CanonicalKey); values are complete
// responses together with their marshaled size, which is what counts
// against the budget. Synthesis is deterministic, so entries never need
// invalidation — only eviction.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	used   int64
	order  *list.List // front = most recently used
	items  map[string]*list.Element
}

type cacheEntry struct {
	key  string
	resp *Response
	size int64
}

func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget: budget,
		order:  list.New(),
		items:  make(map[string]*list.Element),
	}
}

// get returns the cached response for key, marking it most recently used.
// The caller must treat the response as immutable (copy before mutating).
func (c *resultCache) get(key string) (*Response, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).resp, true
}

// put stores a response of the given size, evicting least-recently-used
// entries until the budget holds. Entries bigger than the whole budget are
// not cached at all.
func (c *resultCache) put(key string, resp *Response, size int64) {
	if size > c.budget {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		// Deterministic synthesis means a same-key entry is equivalent;
		// keep the existing one fresh.
		c.order.MoveToFront(el)
		return
	}
	for c.used+size > c.budget {
		last := c.order.Back()
		if last == nil {
			break
		}
		ev := last.Value.(*cacheEntry)
		c.order.Remove(last)
		delete(c.items, ev.key)
		c.used -= ev.size
	}
	c.items[key] = c.order.PushFront(&cacheEntry{key: key, resp: resp, size: size})
	c.used += size
}

// stats returns the entry count and bytes in use.
func (c *resultCache) stats() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.used
}
