package service

import (
	"strings"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/gcl"
	"stsyn/internal/protocols"
)

func TestNormalizeDefaults(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	j, err := Normalize(&Request{Protocol: "tokenring"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if j.Engine != "explicit" {
		t.Errorf("engine = %q, want explicit for 81 states", j.Engine)
	}
	if j.Convergence != core.Strong || j.Resolution != core.BatchResolution {
		t.Error("defaults not strong/batch")
	}
	if want := []int{1, 2, 3, 0}; len(j.Schedule) != 4 || j.Schedule[0] != want[0] || j.Schedule[3] != want[3] {
		t.Errorf("schedule = %v, want the paper's default %v", j.Schedule, want)
	}
}

func TestNormalizeAutoMatchesExplicitKey(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	auto, err := Normalize(&Request{Protocol: "tokenring", Engine: "auto"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	exp, err := Normalize(&Request{Protocol: "tokenring", Engine: "explicit"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Key != exp.Key {
		t.Error("auto-resolved engine and explicit engine produce different cache keys")
	}
	sym, err := Normalize(&Request{Protocol: "tokenring", Engine: "symbolic"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if sym.Key == exp.Key {
		t.Error("different engines must not share a cache key (their statistics differ)")
	}
}

// The key is content-addressed: the same protocol via built-in or inline
// spec text hashes by structure, the spec's display name is irrelevant, and
// any result-affecting option changes the key.
func TestCanonicalKeyProperties(t *testing.T) {
	base := func() *Request { return &Request{Protocol: "tokenring", K: 4, Dom: 3} }
	key := func(req *Request) string {
		sp, err := BuildSpec(req)
		if err != nil {
			t.Fatal(err)
		}
		j, err := Normalize(req, sp)
		if err != nil {
			t.Fatal(err)
		}
		return j.Key
	}

	k0 := key(base())
	if k0 != key(base()) {
		t.Fatal("key not deterministic")
	}
	if k0 == key(&Request{Protocol: "tokenring", K: 5, Dom: 3}) {
		t.Error("different process count, same key")
	}
	if k0 == key(&Request{Protocol: "tokenring", K: 4, Dom: 4}) {
		t.Error("different domain, same key")
	}
	for _, req := range []*Request{
		{Protocol: "tokenring", Convergence: "weak"},
		{Protocol: "tokenring", Resolution: "incremental"},
		{Protocol: "tokenring", Schedule: []int{0, 1, 2, 3}},
		{Protocol: "tokenring", Fanout: true},
	} {
		if key(req) == k0 {
			t.Errorf("option %+v did not change the key", req)
		}
	}
	// Spelling the defaults out changes nothing.
	if key(&Request{Protocol: "tokenring", Convergence: "strong", Resolution: "batch",
		Schedule: []int{1, 2, 3, 0}}) != k0 {
		t.Error("explicit defaults changed the key")
	}

	// Same structure under a different protocol name: same key.
	a, err := gcl.Parse("a", "protocol A\nvar x0, x1 : 0..1\nprocess P0 reads x0, x1 writes x0 { x0 == x1 -> x0 := x0 + 1 }\nprocess P1 reads x0, x1 writes x1 { x0 != x1 -> x1 := x1 + 1 }\ninvariant x0 == x1\n")
	if err != nil {
		t.Fatal(err)
	}
	b, err := gcl.Parse("b", "protocol B\nvar x0, x1 : 0..1\nprocess P0 reads x0, x1 writes x0 { x0 == x1 -> x0 := x0 + 1 }\nprocess P1 reads x0, x1 writes x1 { x0 != x1 -> x1 := x1 + 1 }\ninvariant x0 == x1\n")
	if err != nil {
		t.Fatal(err)
	}
	ja, err := Normalize(&Request{}, a)
	if err != nil {
		t.Fatal(err)
	}
	jb, err := Normalize(&Request{}, b)
	if err != nil {
		t.Fatal(err)
	}
	if ja.Key != jb.Key {
		t.Error("protocol display name leaked into the content address")
	}
}

func TestBuildSpecValidation(t *testing.T) {
	for _, req := range []*Request{
		{},
		{Protocol: "tokenring", Spec: "protocol X"},
		{Protocol: "does-not-exist"},
		{Spec: "not a spec"},
	} {
		if _, err := BuildSpec(req); err == nil {
			t.Errorf("BuildSpec(%+v) succeeded, want error", req)
		}
	}
}

// EncodeResult output must agree with what the synthesizer reported and
// render the protocol's guarded commands.
func TestEncodeResult(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	j, err := Normalize(&Request{Protocol: "tokenring"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	out := EncodeResult(e, res, j, true)
	if out.Protocol != sp.Name || out.States != 81 || out.Processes != 4 {
		t.Errorf("header wrong: %+v", out)
	}
	if out.Pass != res.PassCompleted || out.AddedGroups != len(res.Added) {
		t.Error("synthesis stats wrong")
	}
	if out.ProgramSize != res.ProgramSize {
		t.Error("program size wrong")
	}
	if len(out.Actions) != 4 {
		t.Fatalf("%d processes rendered, want 4", len(out.Actions))
	}
	var all []string
	for _, p := range out.Actions {
		for _, c := range p.Commands {
			all = append(all, c.Guard+" -> "+c.Effect)
		}
	}
	joined := strings.Join(all, "\n")
	if !strings.Contains(joined, "x0 := x3 + 1") {
		t.Errorf("rendered commands lack P0's increment:\n%s", joined)
	}
}

// The SCC algorithm and worker bound are explicit-engine options: they must
// validate, flow into the cache key, and be rejected on the symbolic engine.
func TestNormalizeSCCAndWorkers(t *testing.T) {
	sp := protocols.TokenRing(4, 3)

	j, err := Normalize(&Request{Protocol: "tokenring", SCC: "fb", Workers: 2}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if j.SCC != "fb" || j.Workers != 2 {
		t.Errorf("normalized scc=%q workers=%d, want fb/2", j.SCC, j.Workers)
	}
	base, err := Normalize(&Request{Protocol: "tokenring"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if base.SCC != "auto" {
		t.Errorf("default scc = %q, want auto", base.SCC)
	}
	if j.Key == base.Key {
		t.Error("scc/workers did not change the cache key")
	}

	for _, req := range []*Request{
		{Protocol: "tokenring", SCC: "kosaraju"},
		{Protocol: "tokenring", Workers: -1},
		{Protocol: "tokenring", Engine: "symbolic", SCC: "fb"},
	} {
		if _, err := Normalize(req, sp); err == nil {
			t.Errorf("Normalize(%+v) succeeded, want error", req)
		}
	}

	// Workers is engine-generic: a symbolic job accepts it, it reaches the
	// normalized job, and it stays part of the cache key.
	symJ, err := Normalize(&Request{Protocol: "tokenring", Engine: "symbolic", Workers: 2}, sp)
	if err != nil {
		t.Fatalf("symbolic workers rejected: %v", err)
	}
	if symJ.Workers != 2 {
		t.Errorf("symbolic workers = %d, want 2", symJ.Workers)
	}
	symBase, err := Normalize(&Request{Protocol: "tokenring", Engine: "symbolic"}, sp)
	if err != nil {
		t.Fatal(err)
	}
	if symJ.Key == symBase.Key {
		t.Error("symbolic workers did not change the cache key")
	}
}
