package service

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"net/http"

	"stsyn/pkg/stsynapi"
)

// RequestIDHeader is the header that carries a request's correlation ID
// (re-exported from the wire contract). The coordinator stamps one ID per
// logical request and reuses it across retries and hedges, so a worker's
// logs can be joined to the coordinator's.
const RequestIDHeader = stsynapi.RequestIDHeader

type requestIDKey struct{}

// WithRequestID returns ctx carrying the given correlation ID.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestID returns the correlation ID carried by ctx, or "".
func RequestID(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}

// NewRequestID returns a fresh 16-hex-digit correlation ID.
func NewRequestID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return "0000000000000000"
	}
	return hex.EncodeToString(b[:])
}

// maxRequestIDLen caps what we echo back, so a hostile header cannot bloat
// responses or logs.
const maxRequestIDLen = 128

// withRequestID ensures every request has a correlation ID: the inbound
// header when present (truncated to a sane length), a fresh one otherwise.
// The ID is echoed on the response before the handler runs — so error
// bodies written by writeError can read it back from the header — and is
// available to handlers via RequestID(r.Context()).
func withRequestID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.Header.Get(RequestIDHeader)
		if id == "" {
			id = NewRequestID()
		} else if len(id) > maxRequestIDLen {
			id = id[:maxRequestIDLen]
		}
		w.Header().Set(RequestIDHeader, id)
		next.ServeHTTP(w, r.WithContext(WithRequestID(r.Context(), id)))
	})
}
