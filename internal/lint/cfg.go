package lint

import (
	"go/ast"
)

// This file is the framework's intra-procedural flow layer: a lightweight
// control-flow graph over go/ast plus the reachability queries the
// flow-sensitive analyzers (bddref, goroleak, locksafe) share. It models
// statement-level control flow only — short-circuit evaluation inside
// expressions is invisible, which is exactly the granularity the fact
// lattices of this package need. Function literals are boundaries: a
// FuncLit nested in a body gets its own graph, its statements never leak
// into the enclosing function's blocks.

// cfgBlock is one basic block: statements that execute in order, followed
// by edges to every possible successor.
type cfgBlock struct {
	stmts []ast.Stmt
	succs []*cfgBlock
}

// funcCFG is the graph of one function body. exit is the single synthetic
// sink every return (and the fallthrough off the end of the body) reaches;
// defers collects the function's DeferStmts in source order, since their
// calls run at every exit regardless of which block deferred them.
type funcCFG struct {
	entry  *cfgBlock
	exit   *cfgBlock
	blocks []*cfgBlock
	defers []*ast.DeferStmt
}

// cfgBuilder carries the loop/label context while translating a body.
type cfgBuilder struct {
	g *funcCFG
	// breakTo / continueTo are stacks of the innermost targets; labeled
	// entries carry the label name, unlabeled ones the empty string.
	breaks    []branchTarget
	continues []branchTarget
}

type branchTarget struct {
	label string
	block *cfgBlock
}

func (b *cfgBuilder) newBlock() *cfgBlock {
	blk := &cfgBlock{}
	b.g.blocks = append(b.g.blocks, blk)
	return blk
}

func link(from, to *cfgBlock) {
	if from == nil || to == nil {
		return
	}
	from.succs = append(from.succs, to)
}

// buildCFG translates a function body into a funcCFG. The translation is
// deliberately conservative where Go is rare in this codebase: a goto is
// treated as falling through (no goto exists in the module; the dogfood
// test keeps that true), and a labeled statement simply contributes its
// inner statement with the label registered for break/continue.
func buildCFG(body *ast.BlockStmt) *funcCFG {
	g := &funcCFG{}
	b := &cfgBuilder{g: g}
	g.entry = b.newBlock()
	g.exit = &cfgBlock{}
	last := b.stmtList(g.entry, body.List, "")
	link(last, g.exit)
	g.blocks = append(g.blocks, g.exit)
	return g
}

// stmtList threads the statements through cur and returns the block
// control falls out of, or nil when the tail is unreachable (return,
// terminating branch).
func (b *cfgBuilder) stmtList(cur *cfgBlock, list []ast.Stmt, label string) *cfgBlock {
	for _, s := range list {
		if cur == nil {
			// Unreachable code after a return/branch: give it its own
			// island block so facts inside it are still inspected.
			cur = b.newBlock()
		}
		cur = b.stmt(cur, s, label)
		label = ""
	}
	return cur
}

// stmt adds one statement to cur and returns the fall-through block.
func (b *cfgBuilder) stmt(cur *cfgBlock, s ast.Stmt, label string) *cfgBlock {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmtList(cur, s.List, "")

	case *ast.LabeledStmt:
		return b.stmt(cur, s.Stmt, s.Label.Name)

	case *ast.ReturnStmt:
		cur.stmts = append(cur.stmts, s)
		link(cur, b.g.exit)
		return nil

	case *ast.BranchStmt:
		cur.stmts = append(cur.stmts, s)
		switch s.Tok.String() {
		case "break":
			if t := b.target(b.breaks, s.Label); t != nil {
				link(cur, t)
				return nil
			}
		case "continue":
			if t := b.target(b.continues, s.Label); t != nil {
				link(cur, t)
				return nil
			}
		case "fallthrough":
			// Handled by the switch translation (the next clause is
			// already a successor); treat as ending the block.
			return nil
		}
		// goto, or a break/continue whose label we could not resolve:
		// conservatively fall through.
		return cur

	case *ast.DeferStmt:
		b.g.defers = append(b.g.defers, s)
		cur.stmts = append(cur.stmts, s)
		return cur

	case *ast.IfStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.Cond})
		after := b.newBlock()
		then := b.newBlock()
		link(cur, then)
		if end := b.stmtList(then, s.Body.List, ""); end != nil {
			link(end, after)
		}
		if s.Else != nil {
			els := b.newBlock()
			link(cur, els)
			if end := b.stmt(els, s.Else, ""); end != nil {
				link(end, after)
			}
		} else {
			link(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.stmts = append(cur.stmts, s.Init)
		}
		head := b.newBlock()
		link(cur, head)
		if s.Cond != nil {
			head.stmts = append(head.stmts, &ast.ExprStmt{X: s.Cond})
		}
		after := b.newBlock()
		post := b.newBlock()
		if s.Post != nil {
			post.stmts = append(post.stmts, s.Post)
		}
		link(post, head)
		if s.Cond != nil {
			link(head, after) // condition false
		}
		body := b.newBlock()
		link(head, body)
		b.push(label, after, post)
		if end := b.stmtList(body, s.Body.List, ""); end != nil {
			link(end, post)
		}
		b.pop()
		return after

	case *ast.RangeStmt:
		cur.stmts = append(cur.stmts, &ast.ExprStmt{X: s.X})
		head := b.newBlock()
		link(cur, head)
		if s.Key != nil || s.Value != nil {
			// Model the per-iteration binding as a synthetic assignment so
			// fact transfers see the defs without the loop body riding along.
			lhs := []ast.Expr{}
			if s.Key != nil {
				lhs = append(lhs, s.Key)
			}
			if s.Value != nil {
				lhs = append(lhs, s.Value)
			}
			head.stmts = append(head.stmts, &ast.AssignStmt{Lhs: lhs, Tok: s.Tok, Rhs: []ast.Expr{s.X}})
		}
		after := b.newBlock()
		link(head, after) // range exhausted
		body := b.newBlock()
		link(head, body)
		b.push(label, after, head)
		if end := b.stmtList(body, s.Body.List, ""); end != nil {
			link(end, head)
		}
		b.pop()
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init = sw.Init
			if sw.Tag != nil {
				cur.stmts = append(cur.stmts, &ast.ExprStmt{X: sw.Tag})
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			init = sw.Init
			cur.stmts = append(cur.stmts, sw.Assign)
			bodyList = sw.Body.List
		}
		if init != nil {
			cur.stmts = append(cur.stmts, init)
		}
		after := b.newBlock()
		b.push(label, after, nil)
		hasDefault := false
		var clauseBlocks []*cfgBlock
		var clauses []*ast.CaseClause
		for _, cs := range bodyList {
			cc, ok := cs.(*ast.CaseClause)
			if !ok {
				continue
			}
			if cc.List == nil {
				hasDefault = true
			}
			blk := b.newBlock()
			link(cur, blk)
			clauseBlocks = append(clauseBlocks, blk)
			clauses = append(clauses, cc)
		}
		for i, cc := range clauses {
			end := b.stmtList(clauseBlocks[i], cc.Body, "")
			if end != nil {
				if endsInFallthrough(cc.Body) && i+1 < len(clauseBlocks) {
					link(end, clauseBlocks[i+1])
				} else {
					link(end, after)
				}
			}
		}
		if !hasDefault {
			link(cur, after) // no case matched
		}
		b.pop()
		return after

	case *ast.SelectStmt:
		cur.stmts = append(cur.stmts, s) // the blocking point itself
		after := b.newBlock()
		b.push(label, after, nil)
		for _, cs := range s.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok {
				continue
			}
			blk := b.newBlock()
			if cc.Comm != nil {
				blk.stmts = append(blk.stmts, cc.Comm)
			}
			link(cur, blk)
			if end := b.stmtList(blk, cc.Body, ""); end != nil {
				link(end, after)
			}
		}
		b.pop()
		return after

	case *ast.GoStmt:
		cur.stmts = append(cur.stmts, s)
		return cur

	case *ast.ExprStmt:
		cur.stmts = append(cur.stmts, s)
		if isPanicOrFatal(s.X) {
			link(cur, b.g.exit)
			return nil
		}
		return cur

	default:
		cur.stmts = append(cur.stmts, s)
		return cur
	}
}

func (b *cfgBuilder) push(label string, brk, cont *cfgBlock) {
	b.breaks = append(b.breaks, branchTarget{"", brk}, branchTarget{label, brk})
	if cont != nil {
		b.continues = append(b.continues, branchTarget{"", cont}, branchTarget{label, cont})
	} else {
		// switch/select: continue still refers to the enclosing loop, so
		// push nothing.
		b.continues = append(b.continues, branchTarget{label: "\x00sentinel"})
	}
}

func (b *cfgBuilder) pop() {
	b.breaks = b.breaks[:len(b.breaks)-2]
	if n := len(b.continues); n > 0 && b.continues[n-1].label == "\x00sentinel" {
		b.continues = b.continues[:n-1]
	} else {
		b.continues = b.continues[:n-2]
	}
}

// target resolves a break/continue to its block: the innermost unlabeled
// target, or the innermost entry registered under the label.
func (b *cfgBuilder) target(stack []branchTarget, label *ast.Ident) *cfgBlock {
	want := ""
	if label != nil {
		want = label.Name
	}
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].block == nil {
			continue
		}
		if stack[i].label == want && (want != "" || stack[i].label == "") {
			return stack[i].block
		}
		if want == "" && stack[i].label == "" {
			return stack[i].block
		}
	}
	return nil
}

func endsInFallthrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok.String() == "fallthrough"
}

// isPanicOrFatal reports whether the expression is a call that never
// returns control to the following statement: the panic builtin.
func isPanicOrFatal(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}

// --- reachability queries -------------------------------------------------

// exitReachableAvoiding reports whether g.exit can be reached from `from`
// (starting at statement index fromIdx within it) without executing a
// statement for which barrier returns true. Deferred statements are
// checked at the exit: if any DeferStmt in the function satisfies barrier,
// the exit itself is barred. This is the shared query behind "is there a
// path on which this kept ref is never consumed" (bddref) and "is there an
// exit path without a completion signal" (goroleak).
func (g *funcCFG) exitReachableAvoiding(from *cfgBlock, fromIdx int, barrier func(ast.Stmt) bool) bool {
	for _, d := range g.defers {
		if barrier(d) {
			return false
		}
	}
	seen := make(map[*cfgBlock]bool)
	var walk func(b *cfgBlock, start int) bool
	walk = func(b *cfgBlock, start int) bool {
		if b == g.exit {
			return true
		}
		for i := start; i < len(b.stmts); i++ {
			if barrier(b.stmts[i]) {
				return false
			}
		}
		for _, s := range b.succs {
			if seen[s] {
				continue
			}
			seen[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	return walk(from, fromIdx)
}

// shallowInspect walks the expressions of one CFG statement without
// descending into nested function literals (their statements belong to
// their own graphs) or into a SelectStmt's clause bodies (those live in
// the clause blocks; the SelectStmt node in a block stands only for the
// blocking point itself).
func shallowInspect(s ast.Stmt, f func(n ast.Node) bool) {
	if _, ok := s.(*ast.SelectStmt); ok {
		return
	}
	ast.Inspect(s, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if !f(n) {
			return false
		}
		return true
	})
}

// forEachFunc invokes f once per function body in the file: every FuncDecl
// with a body and every FuncLit. fn is the enclosing FuncDecl (nil for
// literals outside any declaration — impossible in practice but kept nil-
// safe), lit the literal itself (nil for declarations).
func forEachFunc(file *ast.File, f func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt)) {
	ast.Inspect(file, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			if n.Body != nil {
				f(n, nil, n.Body)
			}
		case *ast.FuncLit:
			f(nil, n, n.Body)
		}
		return true
	})
}
