package lint

import (
	"go/ast"
	"strings"
)

// CtxFlow enforces context propagation through the library layers: the
// engine loops were made cancellable precisely so a service deadline can
// stop a synthesis mid-fixpoint, and one context.Background() in the
// middle of the call chain severs that path. Fresh root contexts are the
// binaries' privilege: only cmd/ packages, package main, and tests may
// call context.Background() or context.TODO().
var CtxFlow = &Analyzer{
	Name:       "ctxflow",
	Doc:        "library code must thread the caller's context.Context; no Background/TODO outside cmd/, main, and tests",
	NeedsTypes: true,
	Run:        runCtxFlow,
}

// ctxFieldAllowed lists the struct types (module-relative package path dot
// type name) documented to default a nil Ctx to context.Background():
// option structs whose zero value must stay usable. Everywhere else a
// context.Context struct field hides a call-scoped value in long-lived
// state.
var ctxFieldAllowed = map[string]bool{
	"internal/core.Options":    true, // nil Ctx documented to mean context.Background()
	"internal/explicit.Engine": true, // core.ContextAware: SetContext per run, nil = no cancellation
	"internal/symbolic.Engine": true, // core.ContextAware: SetContext per run, nil = no cancellation
}

func runCtxFlow(p *Pass) {
	if strings.HasPrefix(p.RelPath(), "cmd/") || p.Pkg.Name() == "main" {
		return
	}
	p.checkCtxFields()
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name := ""
			if p.calleeIs(call, "context", "Background") {
				name = "Background"
			} else if p.calleeIs(call, "context", "TODO") {
				name = "TODO"
			}
			if name == "" {
				return true
			}
			if enclosingReceivesContext(p, stack) {
				p.Reportf(call.Pos(), "function already receives a context.Context; thread it through instead of context.%s()", name)
			} else {
				p.Reportf(call.Pos(), "context.%s() in library code severs cancellation: accept a context.Context from the caller (only cmd/, main, and tests may create root contexts)", name)
			}
			return true
		})
	}
}

// checkCtxFields flags context.Context struct fields outside the
// documented nil-ctx-default option types: a context in a struct outlives
// the call it belongs to and silently detaches cancellation.
func (p *Pass) checkCtxFields() {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok || ctxFieldAllowed[p.RelPath()+"."+ts.Name.Name] {
				return true
			}
			for _, field := range st.Fields.List {
				if !isNamedType(p.typeOf(field.Type), "context", "Context") {
					continue
				}
				name := "embedded"
				if len(field.Names) > 0 {
					name = field.Names[0].Name
				}
				p.Reportf(field.Pos(), "context.Context stored in struct field %s of %s: contexts are call-scoped, pass one per operation (only documented nil-ctx-default option structs may hold one)", name, ts.Name.Name)
			}
			return true
		})
	}
}

// enclosingReceivesContext reports whether any function declaration or
// literal on the ancestor stack has a context.Context parameter (an inner
// literal closes over the outer function's ctx).
func enclosingReceivesContext(p *Pass, stack []ast.Node) bool {
	for _, n := range stack {
		var params *ast.FieldList
		switch fn := n.(type) {
		case *ast.FuncDecl:
			params = fn.Type.Params
		case *ast.FuncLit:
			params = fn.Type.Params
		default:
			continue
		}
		if params == nil {
			continue
		}
		for _, field := range params.List {
			if isNamedType(p.typeOf(field.Type), "context", "Context") {
				return true
			}
		}
	}
	return false
}
