//go:build race

package lint

// raceEnabled gates TestRepoIsClean: type-checking the whole module (and
// the standard-library packages it pulls in) from source is minutes under
// the race detector and seconds without, so the whole-module pass runs
// only in the un-instrumented suite; scripts/check.sh gates the same run
// via `go run ./cmd/stsyn-vet ./...`.
const raceEnabled = true
