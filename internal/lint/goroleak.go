package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// goroleakPackages scopes the analyzer to the concurrency-heavy internals:
// the parallel fixpoints, the serving tier, the hedging distributed client
// and the prune search are exactly where a leaked goroutine poisons -race
// runs and survives Shutdown.
var goroleakPackages = []string{
	"internal/explicit",
	"internal/symbolic",
	"internal/service",
	"internal/dist",
	"internal/prune",
}

// GoroLeak checks that every spawned goroutine has a bounded join path.
// The goroutine's body (a func literal, a same-package function or method,
// or a closure assigned to a local) must signal completion — a WaitGroup
// Done, a close, or a channel send — on every exit path, either via defer
// or on each path through its control-flow graph; and at least one of the
// signalled objects must be joined (Wait, receive, or range) somewhere in
// the package. A goroutine whose body cannot terminate at all is reported
// unless it is, in fact, joinable by those rules.
var GoroLeak = &Analyzer{
	Name:       "goroleak",
	Doc:        "goroutines must signal completion on every exit path and the signal must be joined in-package",
	NeedsTypes: true,
	Run:        runGoroLeak,
}

func runGoroLeak(p *Pass) {
	if !pathInScope(p.RelPath(), goroleakPackages) {
		return
	}
	g := &goroleakPass{Pass: p}
	g.buildJoinIndex()
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if gs, ok := n.(*ast.GoStmt); ok {
				g.checkGo(gs)
			}
			return true
		})
	}
}

type goroleakPass struct {
	*Pass
	// joined holds every object (channel variable or field, WaitGroup
	// variable or field) the package waits on somewhere.
	joined map[types.Object]bool
}

func isWaitGroup(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedType(t, "sync", "WaitGroup")
}

func isChan(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// joinableObj resolves a waited-on operand to a stable object for matching
// a goroutine's signal against the package's joins: the field object for a
// selector, the variable for an identifier.
func (p *Pass) joinableObj(e ast.Expr) types.Object {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return p.objectOf(e)
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return sel.Obj()
		}
		return p.objectOf(e.Sel)
	}
	return nil
}

// buildJoinIndex records every object the package joins on: WaitGroup
// Waits, channel receives, and channel ranges.
func (g *goroleakPass) buildJoinIndex() {
	g.joined = make(map[types.Object]bool)
	mark := func(e ast.Expr) {
		if obj := g.joinableObj(e); obj != nil {
			g.joined[obj] = true
		}
	}
	for _, f := range g.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
					sel.Sel.Name == "Wait" && isWaitGroup(g.typeOf(sel.X)) {
					mark(sel.X)
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					mark(n.X)
				}
			case *ast.RangeStmt:
				if isChan(g.typeOf(n.X)) {
					mark(n.X)
				}
			}
			return true
		})
	}
}

func (g *goroleakPass) checkGo(gs *ast.GoStmt) {
	body := g.resolveBody(gs.Call)
	if body == nil {
		g.Reportf(gs.Pos(), "cannot resolve the goroutine's body for join analysis: spawn a func literal or a same-package function")
		return
	}
	cfg := buildCFG(body)
	noBarrier := func(ast.Stmt) bool { return false }
	if !cfg.exitReachableAvoiding(cfg.entry, 0, noBarrier) {
		// The body has no exit at all, so no completion signal — deferred
		// or otherwise — can ever run.
		g.Reportf(gs.Pos(), "goroutine body never terminates: no exit path exists, so it cannot be joined")
		return
	}
	deferredSignal := false
	var signals []types.Object
	var unresolved bool
	note := func(obj types.Object) {
		if obj == nil {
			unresolved = true
			return
		}
		signals = append(signals, obj)
	}
	for _, d := range cfg.defers {
		if g.signalsIn(d, note) {
			deferredSignal = true
		}
	}
	pathSignal := func(s ast.Stmt) bool { return g.signalsIn(s, note) }
	if !deferredSignal && cfg.exitReachableAvoiding(cfg.entry, 0, pathSignal) {
		g.Reportf(gs.Pos(), "goroutine has an exit path without a completion signal (WaitGroup Done, close, or channel send): it cannot be joined deterministically")
		return
	}
	if !deferredSignal {
		// The reachability query above short-circuits; rescan the whole
		// body so every signalled object is considered for the join check.
		ast.Inspect(body, func(n ast.Node) bool {
			if s, ok := n.(ast.Stmt); ok {
				g.signalsIn(s, note)
			}
			return true
		})
	}
	joined := false
	for _, obj := range signals {
		if g.joined[obj] {
			joined = true
		}
	}
	if !joined && !unresolved {
		g.Reportf(gs.Pos(), "goroutine's completion signal is never joined: no Wait, receive, or range on the signalled object anywhere in this package")
	}
}

// signalsIn reports whether executing s signals completion — a WaitGroup
// Done, a close, or a channel send — and passes each signalled object to
// note. Deferred statements are inspected in full (a deferred closure runs
// at every exit); other statements are inspected shallowly, since nested
// literals are separate goroutine-less functions and select clause bodies
// live in their own blocks.
func (g *goroleakPass) signalsIn(s ast.Stmt, note func(types.Object)) bool {
	found := false
	visit := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			found = true
			note(g.joinableObj(n.Chan))
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" && len(n.Args) == 1 {
				if _, isBuiltin := g.Info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
					note(g.joinableObj(n.Args[0]))
				}
			}
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok &&
				sel.Sel.Name == "Done" && isWaitGroup(g.typeOf(sel.X)) {
				found = true
				note(g.joinableObj(sel.X))
			}
		}
		return true
	}
	if _, ok := s.(*ast.DeferStmt); ok {
		ast.Inspect(s, visit)
	} else {
		shallowInspect(s, visit)
	}
	return found
}

// resolveBody locates the spawned call's function body: a literal spawned
// in place, a function or method declared in this package, or a closure
// assigned to a variable in this package's files.
func (g *goroleakPass) resolveBody(call *ast.CallExpr) *ast.BlockStmt {
	if lit, ok := ast.Unparen(call.Fun).(*ast.FuncLit); ok {
		return lit.Body
	}
	switch obj := g.calleeObject(call).(type) {
	case *types.Func:
		for _, f := range g.Files {
			for _, decl := range f.Decls {
				if fd, ok := decl.(*ast.FuncDecl); ok && g.Info.Defs[fd.Name] == obj && fd.Body != nil {
					return fd.Body
				}
			}
		}
	case *types.Var:
		var body *ast.BlockStmt
		for _, f := range g.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				as, ok := n.(*ast.AssignStmt)
				if !ok || len(as.Lhs) != len(as.Rhs) {
					return true
				}
				for i, lhs := range as.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok || g.objectOf(id) != obj {
						continue
					}
					if lit, ok := ast.Unparen(as.Rhs[i]).(*ast.FuncLit); ok {
						body = lit.Body
					}
				}
				return true
			})
		}
		return body
	}
	return nil
}
