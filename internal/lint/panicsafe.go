package lint

import (
	"go/ast"
	"strings"
)

// PanicSafe bans naked panics from the request-handling tiers. A panic in
// internal/service or internal/dist is a remote crash or a blanket 500 for
// every in-flight job — exactly the class of bug the builtin-constructor
// panic→422 fix patched by hand. The published pkg/ tree is held to the
// same bar: a library that panics crashes its embedder. Handlers, the
// coordinator and the client return errors; invariant violations worth
// dying for belong in the engine packages, not on the serving path.
var PanicSafe = &Analyzer{
	Name: "panicsafe",
	Doc:  "no naked panic in request-handling packages (internal/service, internal/dist, pkg)",
	Run:  runPanicSafe,
}

// panicSafePackages are the module-relative package prefixes on the
// serving path.
var panicSafePackages = []string{"internal/service", "internal/dist", "pkg"}

func runPanicSafe(p *Pass) {
	rel := p.RelPath()
	inScope := false
	for _, prefix := range panicSafePackages {
		if rel == prefix || strings.HasPrefix(rel, prefix+"/") {
			inScope = true
		}
	}
	if !inScope {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
				p.Reportf(call.Pos(), "naked panic on the serving path: return an error instead (a panic here kills the worker or 500s every in-flight job)")
			}
			return true
		})
	}
}
