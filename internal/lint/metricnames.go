package lint

import (
	"go/ast"
	"go/token"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// metricPackages scopes the analyzer to the two tiers that expose /metrics:
// the serving layer and the distributed coordinator.
var metricPackages = []string{"internal/service", "internal/dist"}

var (
	// metricTokenRE finds every candidate series name in a string literal;
	// metricNameRE is the convention each one must satisfy.
	metricTokenRE = regexp.MustCompile(`\bstsyn_[A-Za-z0-9_]*`)
	metricNameRE  = regexp.MustCompile(`^stsyn_[a-z0-9_]+$`)
)

// MetricNames enforces the metric-series contract of the /metrics
// endpoints: every series name appearing in a string literal must match
// stsyn_[a-z0-9_]+, and each series must be registered exactly once per
// package. A registration is a literal that is exactly a series name (the
// counter/gauge helper arguments and the gauge map keys) or a
// "# TYPE <name> <kind>" exposition line embedded in a literal; the
// _bucket/_sum/_count histogram suffixes attribute to their base family.
// Names that only occur inside larger exposition strings are usages, not
// registrations — dynamic label variants are registered by their family.
var MetricNames = &Analyzer{
	Name: "metricnames",
	Doc:  "metric series must be named stsyn_[a-z0-9_]+ and registered once per package",
	Run:  runMetricNames,
}

func runMetricNames(p *Pass) {
	if !pathInScope(p.RelPath(), metricPackages) {
		return
	}
	registrations := make(map[string][]token.Pos)
	register := func(name string, pos token.Pos) {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if base, ok := strings.CutSuffix(name, suffix); ok && base != "stsyn" {
				name = base
				break
			}
		}
		registrations[name] = append(registrations[name], pos)
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			lit, ok := n.(*ast.BasicLit)
			if !ok || lit.Kind != token.STRING {
				return true
			}
			text, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			for _, tok := range metricTokenRE.FindAllString(text, -1) {
				if !metricNameRE.MatchString(tok) {
					p.Reportf(lit.Pos(), "metric name %q violates the naming convention: want stsyn_[a-z0-9_]+", tok)
				}
			}
			if metricNameRE.MatchString(text) {
				register(text, lit.Pos())
				return true
			}
			for _, line := range strings.Split(text, "\n") {
				fields := strings.Fields(line)
				if len(fields) >= 3 && fields[0] == "#" && fields[1] == "TYPE" && metricNameRE.MatchString(fields[2]) {
					register(fields[2], lit.Pos())
				}
			}
			return true
		})
	}
	names := make([]string, 0, len(registrations))
	for name := range registrations {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		poss := registrations[name]
		sort.Slice(poss, func(i, j int) bool { return poss[i] < poss[j] })
		for _, pos := range poss[1:] {
			p.Reportf(pos, "metric %s is already registered in this package: each series must be registered exactly once", name)
		}
	}
}
