package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded (and, unless syntax-only, type-checked) package.
type Package struct {
	Dir     string // absolute directory
	PkgPath string // import path the package was checked under
	Files   []*ast.File
	// TestFiles are parsed _test.go files (internal and external test
	// package alike); they are never type-checked.
	TestFiles []*ast.File
	Pkg       *types.Package // nil for syntax-only loads
	Info      *types.Info    // nil for syntax-only loads
}

// Runner loads and type-checks the module's packages with a shared file
// set and package cache. Standard-library imports are type-checked from
// $GOROOT source via go/importer's "source" mode; module-internal imports
// are resolved recursively from the module root. Nothing outside the
// standard library is required.
type Runner struct {
	Root    string // absolute module root (directory containing go.mod)
	ModPath string // module path from go.mod
	Fset    *token.FileSet

	// APIDir holds the committed API golden files and ChangelogPath the
	// changelog apistab couples them to; tests override both to check the
	// analyzer against fixture surfaces.
	APIDir        string
	ChangelogPath string

	std     types.ImporterFrom
	pkgs    map[string]*Package // canonical import path -> loaded package
	loading map[string]bool     // import-cycle guard
}

// NewRunner locates the module containing startDir and prepares a loader.
func NewRunner(startDir string) (*Runner, error) {
	root, modPath, err := findModule(startDir)
	if err != nil {
		return nil, err
	}
	// The source importer must never need the cgo tool: with cgo disabled
	// go/build selects the pure-Go variants of net, os/user, etc.
	build.Default.CgoEnabled = false
	fset := token.NewFileSet()
	std, ok := importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return nil, fmt.Errorf("lint: source importer unavailable")
	}
	return &Runner{
		Root:          root,
		ModPath:       modPath,
		Fset:          fset,
		APIDir:        filepath.Join(root, "api"),
		ChangelogPath: filepath.Join(root, "CHANGELOG.md"),
		std:           std,
		pkgs:          make(map[string]*Package),
		loading:       make(map[string]bool),
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", abs)
		}
		d = parent
	}
}

// Import implements types.Importer.
func (r *Runner) Import(path string) (*types.Package, error) {
	return r.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module-internal paths load
// recursively from source under the module root, everything else is
// delegated to the standard library's source importer.
func (r *Runner) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == r.ModPath || strings.HasPrefix(path, r.ModPath+"/") {
		pkg, err := r.loadCanonical(path)
		if err != nil {
			return nil, err
		}
		return pkg.Pkg, nil
	}
	return r.std.ImportFrom(path, dir, 0)
}

// loadCanonical loads (with types) the module package with the given
// import path, caching the result.
func (r *Runner) loadCanonical(path string) (*Package, error) {
	if pkg, ok := r.pkgs[path]; ok {
		return pkg, nil
	}
	if r.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	r.loading[path] = true
	defer delete(r.loading, path)
	pkg, err := r.loadDir(r.dirFor(path), path, true)
	if err != nil {
		return nil, err
	}
	r.pkgs[path] = pkg
	return pkg, nil
}

func (r *Runner) dirFor(path string) string {
	if path == r.ModPath {
		return r.Root
	}
	return filepath.Join(r.Root, filepath.FromSlash(strings.TrimPrefix(path, r.ModPath+"/")))
}

// pathFor is the canonical import path of a directory under the module
// root.
func (r *Runner) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(r.Root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return r.ModPath, nil
	}
	return r.ModPath + "/" + filepath.ToSlash(rel), nil
}

// LoadPackage loads and type-checks the package in dir under its canonical
// import path, sharing the runner's cache with import resolution.
func (r *Runner) LoadPackage(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	path, err := r.pathFor(abs)
	if err != nil {
		return nil, err
	}
	return r.loadCanonical(path)
}

// LoadDir loads the package in dir, checking it under the given import
// path (which may differ from the canonical one — the fixture tests use
// this to place test packages inside an analyzer's scope). Syntax-only
// loads skip type checking entirely. The result is not cached.
func (r *Runner) LoadDir(dir, asPath string, needTypes bool) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return r.loadDir(abs, asPath, needTypes)
}

func (r *Runner) loadDir(dir, pkgPath string, needTypes bool) (*Package, error) {
	bp, err := build.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); !ok {
			return nil, fmt.Errorf("lint: %s: %w", dir, err)
		}
	}
	pkg := &Package{Dir: dir, PkgPath: pkgPath}
	parse := func(names []string) ([]*ast.File, error) {
		var out []*ast.File
		for _, name := range names {
			src, err := os.ReadFile(filepath.Join(dir, name))
			if err != nil {
				return nil, err
			}
			// Display (and directive-matching) names are module-relative.
			display := name
			if rel, err := filepath.Rel(r.Root, filepath.Join(dir, name)); err == nil && !strings.HasPrefix(rel, "..") {
				display = filepath.ToSlash(rel)
			}
			f, err := parser.ParseFile(r.Fset, display, src, parser.ParseComments|parser.SkipObjectResolution)
			if err != nil {
				return nil, err
			}
			out = append(out, f)
		}
		return out, nil
	}
	if pkg.Files, err = parse(bp.GoFiles); err != nil {
		return nil, err
	}
	testNames := append(append([]string(nil), bp.TestGoFiles...), bp.XTestGoFiles...)
	sort.Strings(testNames)
	if pkg.TestFiles, err = parse(testNames); err != nil {
		return nil, err
	}
	if len(pkg.Files) == 0 && len(pkg.TestFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	if !needTypes || len(pkg.Files) == 0 {
		return pkg, nil
	}
	pkg.Info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: r}
	tpkg, err := conf.Check(pkgPath, r.Fset, pkg.Files, pkg.Info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", pkgPath, err)
	}
	pkg.Pkg = tpkg
	return pkg, nil
}

// PackageDirs expands a package pattern relative to the runner's module
// root: "./..." (or "...") walks the whole module, "dir/..." walks a
// subtree, anything else names a single package directory. Directories
// named testdata, hidden directories, and directories without Go files are
// skipped.
func (r *Runner) PackageDirs(pattern string) ([]string, error) {
	pattern = filepath.ToSlash(pattern)
	recursive := false
	if rest, ok := strings.CutSuffix(pattern, "..."); ok {
		recursive = true
		pattern = strings.TrimSuffix(rest, "/")
	}
	if pattern == "." || pattern == "" {
		pattern = r.Root
	} else if !filepath.IsAbs(pattern) {
		pattern = filepath.Join(r.Root, filepath.FromSlash(pattern))
	}
	if !recursive {
		return []string{pattern}, nil
	}
	var dirs []string
	err := filepath.WalkDir(pattern, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != pattern && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		hasGo, err := dirHasGoFiles(path)
		if err != nil {
			return err
		}
		if hasGo {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

func dirHasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true, nil
		}
	}
	return false, nil
}
