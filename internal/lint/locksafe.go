package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// locksafePackages scopes the analyzer to the serving and distribution
// tiers, where a mutex held across a blocking operation turns one slow
// worker into a stalled scrape endpoint or a deadlocked queue.
var locksafePackages = []string{"internal/service", "internal/dist"}

// LockSafe flags mutexes held across blocking operations. A critical
// section starts at a Lock/RLock statement and follows the control-flow
// graph until the matching Unlock/RUnlock on the same mutex; a deferred
// unlock extends the section to every exit. Blocking operations are
// channel sends and receives, selects without a default clause, WaitGroup
// waits, sleeps, and network calls (http.Client methods, net and net/http
// package functions). sync.Cond.Wait is exempt — holding the lock is its
// contract — and so are the communication clauses of a select, which are
// judged through the select itself. The analysis is intra-procedural:
// blocking hidden behind a call in the same section is out of scope.
var LockSafe = &Analyzer{
	Name:       "locksafe",
	Doc:        "mutexes must not be held across channel operations, waits, sleeps, or network calls",
	NeedsTypes: true,
	Run:        runLockSafe,
}

func runLockSafe(p *Pass) {
	if !pathInScope(p.RelPath(), locksafePackages) {
		return
	}
	l := &locksafePass{Pass: p}
	for _, f := range p.Files {
		forEachFunc(f, func(_ *ast.FuncDecl, _ *ast.FuncLit, body *ast.BlockStmt) {
			l.checkFunc(body)
		})
	}
}

type locksafePass struct {
	*Pass
}

func isMutex(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedType(t, "sync", "Mutex") || isNamedType(t, "sync", "RWMutex")
}

// mutexCall returns the locked/unlocked mutex object when stmt is a
// Lock/RLock (wantLock) or Unlock/RUnlock (!wantLock) call statement.
func (l *locksafePass) mutexCall(s ast.Stmt, wantLock bool) types.Object {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return nil
	}
	call, ok := es.X.(*ast.CallExpr)
	if !ok {
		return nil
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	name := sel.Sel.Name
	if wantLock && name != "Lock" && name != "RLock" {
		return nil
	}
	if !wantLock && name != "Unlock" && name != "RUnlock" {
		return nil
	}
	if !isMutex(l.typeOf(sel.X)) {
		return nil
	}
	return l.joinableObj(sel.X)
}

func (l *locksafePass) checkFunc(body *ast.BlockStmt) {
	g := buildCFG(body)
	// Communication clauses of a select are never independently blocking:
	// the select statement is the blocking point and is judged as a whole.
	comm := make(map[ast.Stmt]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if cc, ok := n.(*ast.CommClause); ok && cc.Comm != nil {
			comm[cc.Comm] = true
		}
		return true
	})
	reported := make(map[token.Pos]bool)
	for _, blk := range g.blocks {
		for i, s := range blk.stmts {
			if mu := l.mutexCall(s, true); mu != nil {
				l.scanSection(g, blk, i+1, mu, comm, reported)
			}
		}
	}
}

// scanSection walks the graph from the statement after a Lock, reporting
// blocking statements reachable before the matching Unlock on any path.
func (l *locksafePass) scanSection(g *funcCFG, from *cfgBlock, fromIdx int, mu types.Object, comm map[ast.Stmt]bool, reported map[token.Pos]bool) {
	seen := make(map[*cfgBlock]bool)
	var walk func(b *cfgBlock, start int)
	walk = func(b *cfgBlock, start int) {
		for i := start; i < len(b.stmts); i++ {
			s := b.stmts[i]
			if obj := l.mutexCall(s, false); obj == mu {
				return // the section ends on this path
			}
			if msg, pos, ok := l.blocking(s, comm); ok && !reported[pos] {
				reported[pos] = true
				l.Reportf(pos, "%s while holding a mutex: the lock is held across a blocking operation", msg)
			}
		}
		for _, succ := range b.succs {
			if !seen[succ] {
				seen[succ] = true
				walk(succ, 0)
			}
		}
	}
	walk(from, fromIdx)
}

// blocking classifies one statement of a critical section.
func (l *locksafePass) blocking(s ast.Stmt, comm map[ast.Stmt]bool) (string, token.Pos, bool) {
	if comm[s] {
		return "", token.NoPos, false
	}
	switch st := s.(type) {
	case *ast.DeferStmt:
		return "", token.NoPos, false // runs at exit, outside the section on the happy path
	case *ast.SendStmt:
		return "channel send", st.Arrow, true
	case *ast.SelectStmt:
		for _, cs := range st.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				return "", token.NoPos, false // has a default: non-blocking poll
			}
		}
		return "select without default", st.Pos(), true
	}
	var msg string
	var pos token.Pos
	shallowInspect(s, func(n ast.Node) bool {
		if msg != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				msg, pos = "channel receive", n.Pos()
			}
		case *ast.SendStmt:
			msg, pos = "channel send", n.Arrow
		case *ast.CallExpr:
			if m, ok := l.blockingCall(n); ok {
				msg, pos = m, n.Pos()
			}
		}
		return true
	})
	return msg, pos, msg != ""
}

func (l *locksafePass) blockingCall(call *ast.CallExpr) (string, bool) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if sel.Sel.Name == "Wait" && isWaitGroup(l.typeOf(sel.X)) {
			return "WaitGroup.Wait", true
		}
		recv := l.typeOf(sel.X)
		if ptr, ok := recv.(*types.Pointer); ok {
			recv = ptr.Elem()
		}
		if isNamedType(recv, "net/http", "Client") {
			return "http.Client call", true
		}
	}
	obj := l.calleeObject(call)
	if obj == nil || obj.Pkg() == nil {
		return "", false
	}
	switch obj.Pkg().Path() {
	case "time":
		if obj.Name() == "Sleep" {
			return "time.Sleep", true
		}
	case "net", "net/http":
		if _, isFunc := obj.(*types.Func); isFunc && obj.Parent() == obj.Pkg().Scope() {
			return obj.Pkg().Path() + "." + obj.Name() + " call", true
		}
	}
	return "", false
}
