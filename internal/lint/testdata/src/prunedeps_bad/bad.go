// Package fixture is checked under the internal/prune import path; imports
// outside the allow-list must be reported by the archdeps analyzer.
package fixture

import (
	"fmt"

	"stsyn/internal/core"
	"stsyn/internal/service"  // want archdeps
	"stsyn/internal/symbolic" // want archdeps
)

var _ = fmt.Sprint(core.Strong, service.StatusClientClosed, symbolic.New)
