// Package fixture is checked under a serving-path import path; the naked
// panic must be reported by the panicsafe analyzer.
package fixture

import "errors"

func handle(ok bool) error {
	if !ok {
		panic("bad request") // want panicsafe
	}
	return errors.New("handled")
}
