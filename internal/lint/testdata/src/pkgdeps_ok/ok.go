// Package fixture only uses the published allow-list (plus the stdlib);
// the archdeps analyzer must stay silent.
package fixture

import (
	"fmt"

	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

var _ = fmt.Sprint(stsynapi.RequestIDHeader, stsynerr.Internal)
