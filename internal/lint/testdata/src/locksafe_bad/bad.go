// Package fixture is checked under a serving-path import path; every
// function here holds a mutex across a blocking operation.
package fixture

import (
	"net/http"
	"sync"
	"time"
)

type state struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// sendLocked sends on a channel inside the critical section.
func (s *state) sendLocked(ch chan int) {
	s.mu.Lock()
	ch <- s.n // want locksafe
	s.mu.Unlock()
}

// recvLocked blocks on a receive inside the critical section.
func (s *state) recvLocked(ch chan int) {
	s.mu.Lock()
	s.n = <-ch // want locksafe
	s.mu.Unlock()
}

// deferredUnlock extends the section to every exit, so the Wait after the
// early return's join point is still inside it.
func (s *state) deferredUnlock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want locksafe
	s.n++
}

// sleepLocked stalls every other acquirer for the full sleep.
func (s *state) sleepLocked() {
	s.rw.RLock()
	time.Sleep(10 * time.Millisecond) // want locksafe
	s.rw.RUnlock()
}

// selectLocked has no default clause: the select parks while the lock is
// held.
func (s *state) selectLocked(a, b chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want locksafe
	case s.n = <-a:
	case s.n = <-b:
	}
}

// httpLocked performs a network round-trip inside the critical section.
func (s *state) httpLocked(c *http.Client, url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := c.Get(url) // want locksafe
	if err == nil {
		resp.Body.Close()
	}
}
