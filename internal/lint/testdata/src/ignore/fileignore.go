//lint:file-ignore panicsafe fixture: the whole file is exempt

package fixture

func whole() {
	panic("silenced by the file-level directive")
}
