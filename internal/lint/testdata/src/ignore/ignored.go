// Package fixture exercises the //lint:ignore escape hatch against the
// panicsafe analyzer (checked under a serving-path import path).
package fixture

func trailing() {
	panic("silenced") //lint:ignore panicsafe fixture: a trailing directive silences its own line
}

func preceding() {
	//lint:ignore panicsafe fixture: a directive silences the line directly below
	panic("silenced")
}

func wrongAnalyzer() {
	//lint:ignore determinism fixture: naming another analyzer silences nothing here
	panic("still reported") // want panicsafe
}
