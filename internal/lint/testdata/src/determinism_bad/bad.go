// Package fixture is checked under a deterministic import path; every
// marked line must be reported by the determinism analyzer.
package fixture

import (
	"math/rand"
	"time"
)

func clock() time.Duration {
	t0 := time.Now()      // want determinism
	return time.Since(t0) // want determinism
}

func draw() int {
	return rand.Intn(6) // want determinism
}

func seeded(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // want determinism determinism
	return r.Intn(6)
}

func collect(m map[int]string) []int {
	var keys []int
	for k := range m {
		keys = append(keys, k) // want determinism
	}
	return keys
}
