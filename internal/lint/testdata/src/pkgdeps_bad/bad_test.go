// A test import of internal/ inverts the published arrow just as
// effectively as a source import: consumers cannot `go test` a vendored
// pkg/ tree that reaches back into this module's internal/.
package fixture

import (
	"testing"

	"stsyn/internal/core" // want archdeps
)

func TestFixture(t *testing.T) { _ = core.Strong }
