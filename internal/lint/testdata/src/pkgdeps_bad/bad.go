// Package fixture is checked under the pkg/client import path; imports of
// internal/ or cmd/ packages — and anything outside the published
// allow-list — must be reported by the archdeps analyzer.
package fixture

import (
	"fmt"

	serve "stsyn/cmd/stsyn-serve" // want archdeps archdeps
	"stsyn/internal/service"      // want archdeps archdeps
	"stsyn/pkg/stsynapi"
	"stsyn/pkg/stsynerr"
)

var _ = fmt.Sprint(serve.Version, service.StatusClientClosed, stsynapi.RequestIDHeader, stsynerr.Internal)
