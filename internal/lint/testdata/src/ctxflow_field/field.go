// Package fixture is checked under the core engine's import path: the
// Options struct is on the documented nil-ctx-default allow list, every
// other context-typed field is a finding.
package core

import "context"

// Options mirrors the engine's option struct: a nil Ctx defaults to
// context.Background() at the call boundary, which is exactly the
// documented exemption.
type Options struct {
	Ctx   context.Context
	Steps int
}

// job stores a call-scoped context in long-lived state.
type job struct {
	ctx  context.Context // want ctxflow
	name string
}

// tracker embeds one, which is the same mistake without a field name.
type tracker struct {
	context.Context // want ctxflow
	hits            int
}

func use(o Options, j job, t tracker) (Options, job, tracker) {
	return o, j, t
}
