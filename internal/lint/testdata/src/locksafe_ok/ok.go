// Package fixture is checked under a serving-path import path; every
// critical section here releases the mutex before anything blocks, so the
// locksafe analyzer must stay silent.
package fixture

import (
	"sync"
	"time"
)

type state struct {
	mu sync.Mutex
	n  int
}

// unlockBeforeSend releases the lock before the channel operation.
func (s *state) unlockBeforeSend(ch chan int) {
	s.mu.Lock()
	n := s.n
	s.mu.Unlock()
	ch <- n
}

// pollLocked uses a select with a default clause: a non-blocking poll is
// fine under the lock.
func (s *state) pollLocked(ch chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.n = <-ch:
	case ch <- s.n:
	default:
	}
}

// branchUnlock releases on the early path before blocking; the late path
// never blocks.
func (s *state) branchUnlock(ch chan int, fast bool) {
	s.mu.Lock()
	if fast {
		s.mu.Unlock()
		ch <- 1
		return
	}
	s.n++
	s.mu.Unlock()
}

// condWait is the one blocking call whose contract requires the lock.
func (s *state) condWait(c *sync.Cond) {
	c.L.Lock()
	for s.n == 0 {
		c.Wait()
	}
	c.L.Unlock()
}

// sleepUnlocked sleeps outside the deferred section's live range only by
// never taking the lock at all.
func (s *state) sleepUnlocked() {
	time.Sleep(time.Millisecond)
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
}
