// Package fixture deliberately violates the Keep/Release store discipline;
// every marked line must be reported by the bddref analyzer.
package fixture

import "stsyn/internal/bdd"

var global bdd.Ref

type holder struct {
	f    bdd.Ref
	refs []bdd.Ref
}

func discard(m *bdd.Manager, r bdd.Ref) {
	m.Keep(r)     // want bddref
	_ = m.Keep(r) // want bddref
}

func stores(m *bdd.Manager, h *holder, r bdd.Ref) {
	h.f = m.And(r, r)                 // want bddref
	global = m.Or(r, r)               // want bddref
	h.refs = append(h.refs, m.Not(r)) // want bddref
}

func escape(m *bdd.Manager, r bdd.Ref) *holder {
	return &holder{f: m.And(r, r)} // want bddref
}

func leak(m *bdd.Manager, r bdd.Ref) bool {
	kept := m.Keep(r) // want bddref
	return kept == bdd.False
}
