// Package fixture is checked under a cmd/ import path, where creating root
// contexts is the binaries' privilege: no findings expected.
package fixture

import "context"

func run() error {
	ctx := context.Background()
	return ctx.Err()
}
