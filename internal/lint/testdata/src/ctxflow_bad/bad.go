// Package fixture creates root contexts in library code; every marked line
// must be reported by the ctxflow analyzer.
package fixture

import "context"

func threaded(ctx context.Context) error {
	sub := context.Background() // want ctxflow
	_ = sub
	return ctx.Err()
}

func rootless() error {
	ctx := context.TODO() // want ctxflow
	return ctx.Err()
}
