// Package fixture holds a directive without a reason: the driver reports
// the directive itself (pseudo-analyzer "lint") and the directive silences
// nothing, so the panic below it is still reported. Checked by its own test
// rather than want-markers, since the directive line cannot carry one.
package fixture

func malformed() {
	//lint:ignore panicsafe
	panic("the directive above lacks a reason, so nothing is silenced")
}
