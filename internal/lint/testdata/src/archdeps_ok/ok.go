// Package fixture is checked under a leaf import path and imports only the
// standard library; the archdeps analyzer must stay silent.
package fixture

import (
	"fmt"
	"sort"
)

func show(xs []int) string {
	sort.Ints(xs)
	return fmt.Sprint(xs)
}
