// Package fixture is checked under a serving-path import path; every
// metric here follows the naming convention and is registered exactly
// once, so the metricnames analyzer must stay silent.
package fixture

import "fmt"

// registerAll registers each series once through the helper.
func registerAll(register func(string)) {
	register("stsyn_requests_total")
	register("stsyn_queue_depth")
}

// expose uses already-registered names inside larger exposition strings:
// usages are not registrations, so no duplicate is reported.
func expose(v int) string {
	return fmt.Sprintf("stsyn_requests_total %d\nstsyn_queue_depth %d\n", v, v)
}

// histogram registers the family once via its TYPE line; the suffixed
// series attribute to the family instead of registering separately.
func histogram(sum, count int) string {
	return "# TYPE stsyn_job_duration_ms histogram\n" +
		fmt.Sprintf("stsyn_job_duration_ms_sum %d\nstsyn_job_duration_ms_count %d\n", sum, count)
}

// dynamic emits labelled variants of a registered family; the Sprintf
// template is a usage, not a second registration.
func dynamic(worker string, up int) string {
	return "# TYPE stsyn_worker_up gauge\n" +
		fmt.Sprintf("stsyn_worker_up{worker=%q} %d\n", worker, up)
}
