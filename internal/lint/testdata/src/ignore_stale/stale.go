// Package fixture exercises stale-ignore detection: a directive whose
// analyzer runs but no longer fires on its line is itself a finding.
package fixture

import "errors"

func used() {
	panic("silenced") //lint:ignore panicsafe fixture: still fires, directive is live
}

func stale() error {
	//lint:ignore panicsafe fixture: nothing panics below anymore // want lint
	return errors.New("the panic this excused is long gone")
}
