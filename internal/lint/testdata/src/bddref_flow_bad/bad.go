// Package fixture exercises the flow-sensitive half of bddref: stores that
// are protected on one path but raw on another, kept refs that can escape
// through an early return, and producer calls the ownership rules must not
// bless.
package fixture

import "stsyn/internal/bdd"

type holder struct {
	f bdd.Ref
}

// Holder is exported, so the scratch-context rule must not bless stores of
// refs its own methods produce: an exported type's manager may collect.
type Holder struct {
	m *bdd.Manager
	f bdd.Ref
}

func (h *Holder) mix(r bdd.Ref) bdd.Ref { return h.m.And(r, r) }

func condStore(m *bdd.Manager, h *holder, r bdd.Ref, ok bool) {
	v := m.And(r, r)
	if ok {
		v = m.Keep(v)
	}
	h.f = v // want bddref
}

func earlyReturn(m *bdd.Manager, ok bool, r bdd.Ref) bdd.Ref {
	kept := m.Keep(r) // want bddref
	if ok {
		return bdd.False
	}
	return kept
}

func exportedOwner(h *Holder, r bdd.Ref) {
	h.f = h.mix(r) // want bddref
}

func pinWithoutRelease(m *bdd.Manager, r bdd.Ref) {
	m.Keep(r) // want bddref
	m.GC()
}
