package fixture

// Test files may panic: panicsafe inspects only the non-test sources.

func mustPanic() {
	panic("test helpers may panic")
}
