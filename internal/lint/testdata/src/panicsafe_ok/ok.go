// Package fixture returns errors on the serving path; the panicsafe
// analyzer must stay silent.
package fixture

import "errors"

func handle(ok bool) error {
	if !ok {
		return errors.New("bad request")
	}
	return nil
}
