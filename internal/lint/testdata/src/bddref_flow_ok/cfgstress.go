// cfgstress drives the CFG builder through every statement shape —
// labeled loops, goto, switch with fallthrough, type switches, select,
// ranges — with a kept ref threaded through, so the fixture doubles as a
// soundness check: none of these paths may confuse the kept-set fixpoint.
package fixture

import "stsyn/internal/bdd"

func labeledLoops(m *bdd.Manager, h *holder, rs []bdd.Ref) {
	v := m.Keep(bdd.False)
outer:
	for i := 0; i < len(rs); i++ {
		for _, r := range rs {
			switch {
			case i == 0:
				continue outer
			case len(rs) > 4:
				break outer
			}
			m.Release(v)
			v = m.Keep(m.And(v, r))
		}
	}
	h.f = v
}

func gotoAndFallthrough(m *bdd.Manager, h *holder, r bdd.Ref, n int) {
	v := m.Keep(r)
	if n < 0 {
		goto done
	}
	switch n {
	case 0:
		m.Release(v)
		v = m.Keep(m.Not(r))
		fallthrough
	case 1:
		n++
	default:
		for n > 1 {
			n--
		}
	}
done:
	h.f = v
}

func typeSwitchSelect(m *bdd.Manager, h *holder, x interface{}, ch chan bdd.Ref) {
	v := m.Keep(bdd.False)
	switch t := x.(type) {
	case bdd.Ref:
		m.Release(v)
		v = m.Keep(t)
	case int:
		_ = t
	}
	select {
	case r := <-ch:
		m.Release(v)
		v = m.Keep(r)
	default:
	}
	h.f = v
}

func deferAndRanges(m *bdd.Manager, h *holder, rs map[int]bdd.Ref) {
	v := m.Keep(bdd.False)
	defer m.Release(v)
	for range rs {
		break
	}
	h.f = m.Keep(m.Not(v))
}
