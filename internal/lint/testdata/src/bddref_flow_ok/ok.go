// Package fixture exercises the flow-sensitive and ownership idioms the
// bddref analyzer must accept: refs kept on every path into a store, the
// scratch-context and owned-manager exemptions, transient pins, and the
// zero-value terminal.
package fixture

import "stsyn/internal/bdd"

type holder struct {
	f bdd.Ref
}

// scratch is an unexported in-package struct: the scratch-context rule
// allows storing refs its own methods produce, and refs produced by a
// locally created manager it owns — neither manager ever collects.
type scratch struct {
	m   *bdd.Manager
	src []bdd.Ref
}

func (s *scratch) copyIn(r bdd.Ref) bdd.Ref { return s.m.And(r, r) }

func keptOnAllPaths(m *bdd.Manager, h *holder, r bdd.Ref, ok bool) {
	v := m.Keep(m.And(r, r))
	if ok {
		v = m.Keep(m.Not(v))
	}
	h.f = v
}

func ownStore(s *scratch, r bdd.Ref) {
	s.src = append(s.src, s.copyIn(r))
}

func ownedManager(r bdd.Ref) *scratch {
	m := bdd.New(4)
	s := &scratch{m: m}
	s.src = append(s.src, m.Not(r))
	return s
}

func transientPin(m *bdd.Manager, r bdd.Ref) {
	m.Keep(r)
	m.GC()
	m.Release(r)
}

func zeroThenMaybe(m *bdd.Manager, h *holder, r bdd.Ref, ok bool) {
	var v bdd.Ref
	if ok {
		v = m.Keep(r)
	}
	h.f = v
}
