// Package fixture follows the Keep/Release store discipline; the bddref
// analyzer must stay silent.
package fixture

import "stsyn/internal/bdd"

type holder struct {
	f    bdd.Ref
	refs []bdd.Ref
}

func stores(m *bdd.Manager, h *holder, r bdd.Ref) {
	h.f = m.Keep(m.And(r, r))
	h.refs = append(h.refs, m.Keep(m.Not(r)))
	h.f = bdd.False
}

func build(m *bdd.Manager, r bdd.Ref) *holder {
	return &holder{f: m.Keep(m.And(r, r))}
}

func pin(m *bdd.Manager, r bdd.Ref) int {
	kept := m.Keep(r)
	defer m.Release(kept)
	return m.DagSize(kept)
}
