// Package fixture only uses the prune allow-list (plus the stdlib); the
// archdeps analyzer must stay silent.
package fixture

import (
	"fmt"

	"stsyn/internal/core"
	"stsyn/internal/protocol"
	"stsyn/internal/symmetry"
)

var _ = fmt.Sprint(core.Strong, protocol.Spec{}, symmetry.Rotation)
