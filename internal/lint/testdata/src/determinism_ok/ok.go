// Package fixture uses only the reproducible variants; the determinism
// analyzer must stay silent.
package fixture

import "math/rand"

// draw consumes a caller-provided generator: method calls on a *rand.Rand
// are fine, only package-level math/rand functions are banned.
func draw(rng *rand.Rand) int {
	return rng.Intn(6)
}

func flatten(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
