// Package fixture uses only the reproducible variants; the determinism
// analyzer must stay silent.
package fixture

import "math/rand"

func draw(seed int64) int {
	r := rand.New(rand.NewSource(seed))
	return r.Intn(6)
}

func flatten(m map[int][]int) int {
	total := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		total += len(local)
	}
	return total
}
