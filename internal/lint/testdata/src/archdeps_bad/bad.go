// Package fixture is checked under a leaf import path; every marked import
// must be reported by the archdeps analyzer (the tool is syntax-only here,
// so the imports need not resolve).
package fixture

import (
	"os"

	"github.com/example/dep" // want archdeps
	"stsyn/internal/core"    // want archdeps
)

var (
	_ = os.Args
	_ = dep.Thing
	_ = core.Thing
)
