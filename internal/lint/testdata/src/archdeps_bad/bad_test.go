package fixture

// A test import inverts the dependency arrow just as effectively, so
// archdeps inspects _test.go files too. Importing a binary from a leaf
// breaks both rules at once: two findings on one line.

import "stsyn/cmd/stsyn" // want archdeps archdeps

var _ = stsyn.Thing
