// Package fixture is checked under a serving-path import path; every
// goroutine spawned here violates the join discipline in a different way.
package fixture

import "sync"

func work() {}

// noSignal spawns a goroutine that finishes silently: no WaitGroup Done,
// close, or send, so nothing can ever join it.
func noSignal() {
	go func() { // want goroleak
		work()
	}()
}

// conditionalSignal only signals on one branch; the early return is a
// signal-free exit path.
func conditionalSignal(done chan struct{}, ok bool) {
	go func() { // want goroleak
		if !ok {
			return
		}
		close(done)
	}()
	<-done
}

// neverJoined signals completion, but no receive, range, or Wait on the
// channel exists anywhere in this package.
func neverJoined() {
	orphan := make(chan struct{})
	go func() { // want goroleak
		defer close(orphan)
		work()
	}()
}

// unresolvable spawns a value passed in from outside: the body cannot be
// found, so the discipline cannot be checked.
func unresolvable(fn func()) {
	go fn() // want goroleak
}

// spins never terminates: the deferred Done can never run.
func spins(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want goroleak
		defer wg.Done()
		for {
			work()
		}
	}()
	wg.Wait()
}
