// Package fixture threads the caller's context; the ctxflow analyzer must
// stay silent.
package fixture

import "context"

func threaded(ctx context.Context) error {
	return step(ctx)
}

func step(ctx context.Context) error {
	return ctx.Err()
}
