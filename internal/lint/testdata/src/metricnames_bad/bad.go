// Package fixture is checked under a serving-path import path; it breaks
// the metric naming convention and the register-once rule.
package fixture

import "fmt"

// badCase uses an upper-case name: the convention is stsyn_[a-z0-9_]+.
func badCase(register func(string)) {
	register("stsyn_Requests_Total") // want metricnames
}

// badEmbedded hides the violation inside a larger exposition string.
func badEmbedded() string {
	return "# TYPE stsyn_BAD_gauge gauge\n" // want metricnames
}

// doubleRegistration registers the same series twice; the second literal
// is the finding.
func doubleRegistration(register func(string)) {
	register("stsyn_queue_depth")
	register("stsyn_queue_depth") // want metricnames
}

// typeLineDuplicate re-registers a counter through its exposition TYPE
// line after the helper already registered it.
func typeLineDuplicate(register func(string)) string {
	register("stsyn_jobs_total")
	return fmt.Sprintf("# TYPE stsyn_jobs_total counter\n") // want metricnames
}
