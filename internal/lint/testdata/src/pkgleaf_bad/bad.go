// Package fixture is checked under the pkg/stsynerr import path, which is
// a leaf: any non-stdlib import must be reported.
package fixture

import (
	"fmt"

	"stsyn/pkg/stsynapi" // want archdeps
)

var _ = fmt.Sprint(stsynapi.RequestIDHeader)
