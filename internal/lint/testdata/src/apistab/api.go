// Package fixture is a miniature published package: its exported surface
// exercises every construct the apistab renderer pins — constants,
// variables, functions, aliases, structs with mixed-visibility fields,
// interfaces, and methods on both receiver forms.
package fixture

import "time"

const Version = "1"

var DefaultTimeout = 30 * time.Second

// Alias is part of the surface even though it names another type.
type Alias = Config

// Config has one exported and one unexported field; only the exported one
// is surface, but its declaration order is.
type Config struct {
	Endpoint string
	Retries  int
	secret   string
}

func (c Config) Valid() bool { return c.Endpoint != "" && c.secret == "" }

func (c *Config) Reset() { c.Retries = 0 }

// Doer is an interface surface: method set, sorted.
type Doer interface {
	Do(name string) error
	Close() error
}

// New is a plain function surface.
func New(endpoint string) (*Config, error) { return &Config{Endpoint: endpoint}, nil }

// internal is not exported and must not appear in the golden.
func internal() {}
