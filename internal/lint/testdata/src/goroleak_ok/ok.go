// Package fixture is checked under a serving-path import path; every
// goroutine spawned here has a bounded join path, so the goroleak analyzer
// must stay silent.
package fixture

import "sync"

func work() {}

// waitGroup is the canonical shape: deferred Done, Wait in the spawner.
func waitGroup(n int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			work()
		}()
	}
	wg.Wait()
}

// doneChannel signals by closing; the spawner blocks on the receive.
func doneChannel() {
	done := make(chan struct{})
	go func() {
		defer close(done)
		work()
	}()
	<-done
}

// resultSend signals by sending the result; every exit path passes the
// send, and the spawner receives it.
func resultSend() int {
	out := make(chan int, 1)
	go func() {
		out <- 42
	}()
	return <-out
}

type server struct {
	wg sync.WaitGroup
}

// method spawns a same-package method whose deferred Done pairs with the
// Wait in Shutdown.
func (s *server) method() {
	s.wg.Add(1)
	go s.worker()
}

func (s *server) worker() {
	defer s.wg.Done()
	work()
}

func (s *server) shutdown() {
	s.wg.Wait()
}

// rangeJoin signals per item and closes; the range drains both.
func rangeJoin(items []int) int {
	out := make(chan int, len(items))
	go func() {
		defer close(out)
		for _, v := range items {
			out <- v
		}
	}()
	total := 0
	for v := range out {
		total += v
	}
	return total
}

// closureVar spawns a closure assigned to a local; the body resolves
// through the assignment, and the captured channel is drained here.
func closureVar() {
	results := make(chan int, 1)
	run := func() {
		results <- 1
	}
	go run()
	<-results
}
