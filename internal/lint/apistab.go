package lint

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// APIScope lists the module-relative paths of the published packages whose
// exported surface is pinned by committed goldens under api/.
var APIScope = []string{"pkg/client", "pkg/stsynapi", "pkg/stsynerr"}

// APIStab pins the exported surface of the published pkg/ packages. Each
// package's surface — exported constants, variables, functions, types with
// their exported fields and methods — is rendered to a canonical text form
// and compared against a committed golden in api/. A surface change fails
// the build until the golden is regenerated (stsyn-vet -write-api) AND the
// new surface hash is recorded in CHANGELOG.md, so the published API can
// never drift silently.
var APIStab = &Analyzer{
	Name:       "apistab",
	Doc:        "exported surface of published packages must match the committed api/ goldens and be logged in CHANGELOG.md",
	NeedsTypes: true,
	Run:        runAPIStab,
}

func runAPIStab(p *Pass) {
	rel := p.RelPath()
	if !pathInScope(rel, APIScope) || p.Pkg == nil || len(p.Files) == 0 {
		return
	}
	pos := p.Files[0].Name.Pos()
	surface := APISurface(p.Pkg)
	hash := APIHash(surface)
	golden := filepath.Join(p.APIDir, APIGoldenName(rel))
	data, err := os.ReadFile(golden)
	if err != nil {
		p.Reportf(pos, "no committed API golden for %s: run `stsyn-vet -write-api` and record surface hash %s in CHANGELOG.md", p.PkgPath, hash)
		return
	}
	if string(data) != APIGoldenContent(p.PkgPath, surface) {
		p.Reportf(pos, "exported API surface of %s changed (hash %s) without regenerating %s: run `stsyn-vet -write-api` and record the hash in CHANGELOG.md", p.PkgPath, hash, filepath.Base(golden))
		return
	}
	changelog, err := os.ReadFile(p.ChangelogPath)
	if err != nil || !strings.Contains(string(changelog), hash) {
		p.Reportf(pos, "API golden for %s matches, but CHANGELOG.md has no entry mentioning surface hash %s", p.PkgPath, hash)
	}
}

// APIGoldenName is the golden file name for a module-relative package path:
// pkg/client -> pkg_client.api.
func APIGoldenName(rel string) string {
	return strings.ReplaceAll(rel, "/", "_") + ".api"
}

// APIHash is the short content hash apistab couples to CHANGELOG.md
// entries: the first 12 hex digits of the surface's SHA-256.
func APIHash(surface string) string {
	sum := sha256.Sum256([]byte(surface))
	return hex.EncodeToString(sum[:])[:12]
}

// APIGoldenContent renders the full golden file for a package surface: a
// header carrying the package path and surface hash, then the surface.
func APIGoldenContent(pkgPath, surface string) string {
	return fmt.Sprintf("# stsyn api golden v1: %s %s\n\n%s", pkgPath, APIHash(surface), surface)
}

// APISurface renders a package's exported surface in a canonical text form:
// scope entries in sorted order; struct fields in declaration order (order
// is part of the API — composite literals and encoding depend on it);
// interface and concrete methods sorted by name.
func APISurface(pkg *types.Package) string {
	qual := types.RelativeTo(pkg)
	var b strings.Builder
	for _, name := range pkg.Scope().Names() {
		obj := pkg.Scope().Lookup(name)
		if !obj.Exported() {
			continue
		}
		switch obj := obj.(type) {
		case *types.Const:
			fmt.Fprintf(&b, "const %s %s\n", name, types.TypeString(obj.Type(), qual))
		case *types.Var:
			fmt.Fprintf(&b, "var %s %s\n", name, types.TypeString(obj.Type(), qual))
		case *types.Func:
			fmt.Fprintf(&b, "func %s%s\n", name, signatureString(obj.Type().(*types.Signature), qual))
		case *types.TypeName:
			writeTypeSurface(&b, obj, qual)
		}
	}
	return b.String()
}

func signatureString(sig *types.Signature, qual types.Qualifier) string {
	return strings.TrimPrefix(types.TypeString(sig, qual), "func")
}

func writeTypeSurface(b *strings.Builder, obj *types.TypeName, qual types.Qualifier) {
	name := obj.Name()
	if obj.IsAlias() {
		fmt.Fprintf(b, "type %s = %s\n", name, types.TypeString(obj.Type(), qual))
		return
	}
	named, ok := obj.Type().(*types.Named)
	if !ok {
		fmt.Fprintf(b, "type %s %s\n", name, types.TypeString(obj.Type().Underlying(), qual))
		return
	}
	switch u := named.Underlying().(type) {
	case *types.Struct:
		fmt.Fprintf(b, "type %s struct\n", name)
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if f.Exported() {
				fmt.Fprintf(b, "\t%s %s\n", f.Name(), types.TypeString(f.Type(), qual))
			}
		}
	case *types.Interface:
		fmt.Fprintf(b, "type %s interface\n", name)
		var lines []string
		for i := 0; i < u.NumMethods(); i++ {
			m := u.Method(i)
			if m.Exported() {
				lines = append(lines, fmt.Sprintf("\t%s%s\n", m.Name(), signatureString(m.Type().(*types.Signature), qual)))
			}
		}
		sort.Strings(lines)
		for _, l := range lines {
			b.WriteString(l)
		}
		return // interfaces carry their methods inline
	default:
		fmt.Fprintf(b, "type %s %s\n", name, types.TypeString(named.Underlying(), qual))
	}
	ms := types.NewMethodSet(types.NewPointer(named))
	var lines []string
	for i := 0; i < ms.Len(); i++ {
		m, ok := ms.At(i).Obj().(*types.Func)
		if !ok || !m.Exported() {
			continue
		}
		sig := m.Type().(*types.Signature)
		recv := types.TypeString(sig.Recv().Type(), qual)
		lines = append(lines, fmt.Sprintf("func (%s) %s%s\n", recv, m.Name(), signatureString(sig, qual)))
	}
	sort.Strings(lines)
	for _, l := range lines {
		b.WriteString(l)
	}
}
