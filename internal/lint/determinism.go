package lint

import (
	"go/ast"
	"go/types"
)

// Determinism enforces byte-reproducibility of the synthesis core. The
// distributed tier's lowest-index winner is only correct because a
// single-node TrySchedules is deterministic, so the packages on that path
// must not read the wall clock, call any math/rand package-level function,
// or let map iteration order leak into an accumulated slice. Randomness is
// allowed only through an explicitly seeded *rand.Rand handed in by the
// caller (method calls on a generator parameter are fine); constructing
// generators — even seeded ones — is the boundary's job, not the core's.
var Determinism = &Analyzer{
	Name:       "determinism",
	Doc:        "no wall-clock reads, package-level rand, or map-order-dependent accumulation in the synthesis core",
	NeedsTypes: true,
	Run:        runDeterminism,
}

// deterministicPackages are the module-relative packages on the
// reproducibility-critical path.
var deterministicPackages = map[string]bool{
	"internal/core":     true,
	"internal/explicit": true,
	"internal/symbolic": true,
	"internal/protocol": true,
	"internal/bdd":      true,
}

func runDeterminism(p *Pass) {
	if !deterministicPackages[p.RelPath()] {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				obj := p.calleeObject(n)
				if obj == nil || obj.Pkg() == nil {
					return true
				}
				pkg, name := obj.Pkg().Path(), obj.Name()
				if pkg == "time" && (name == "Now" || name == "Since" || name == "Until") {
					p.Reportf(n.Pos(), "wall-clock read time.%s in a deterministic package: results must be byte-reproducible across nodes", name)
				}
				if (pkg == "math/rand" || pkg == "math/rand/v2") && obj.Parent() == obj.Pkg().Scope() {
					p.Reportf(n.Pos(), "%s.%s in a deterministic package: take an explicitly seeded *rand.Rand from the caller instead", pkg, name)
				}
			case *ast.RangeStmt:
				checkMapRangeAppend(p, n)
			}
			return true
		})
	}
}

// checkMapRangeAppend flags appends to variables declared outside a
// map-range loop: the append order follows the map's randomized iteration
// order, so the accumulated slice differs run to run.
func checkMapRangeAppend(p *Pass, rng *ast.RangeStmt) {
	t := p.typeOf(rng.X)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Map); !ok {
		return
	}
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, rhs := range as.Rhs {
			call, ok := ast.Unparen(rhs).(*ast.CallExpr)
			if !ok || !isBuiltinAppend(p, call) {
				continue
			}
			var obj types.Object
			switch lhs := ast.Unparen(as.Lhs[i]).(type) {
			case *ast.Ident:
				obj = p.Info.Uses[lhs]
				if obj == nil {
					obj = p.Info.Defs[lhs]
				}
			case *ast.SelectorExpr:
				if sel, okSel := p.Info.Selections[lhs]; okSel {
					obj = sel.Obj()
				}
			}
			if obj == nil || obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
				continue // declared inside the loop: order cannot escape
			}
			p.Reportf(as.Pos(), "append inside iteration over a map: iteration order is randomized, so the accumulated slice is nondeterministic — sort the keys first")
		}
		return true
	})
}
