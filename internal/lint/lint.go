// Package lint is a stdlib-only static-analysis framework for this
// repository, plus the project-specific analyzers that mechanize the
// invariants the codebase rests on: the BDD substrate's Keep/Release
// protection discipline, byte-reproducibility of the synthesis core,
// context propagation through the engine loops, the dependency-direction
// rules, and panic-freedom of the request-handling tiers.
//
// The framework deliberately uses nothing beyond go/parser, go/ast and
// go/types (go.mod stays dependency-free). Each analyzer runs as one
// per-package pass over type-checked syntax; findings are reported as
// "file:line:col: analyzer: message".
//
// Intentional violations are silenced in place with
//
//	//lint:ignore <analyzer>[,<analyzer>...] <reason>
//
// either trailing the offending line or on the line directly above it, or
// for a whole file with //lint:file-ignore at the top of the file. A
// directive without a reason is itself a finding (analyzer "lint"), so
// every suppression is explained.
package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"io"
	"sort"
	"strings"
)

// Finding is one analyzer diagnostic.
type Finding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.File, f.Line, f.Col, f.Analyzer, f.Message)
}

// Analyzer is one named pass. Run inspects the package behind the Pass and
// reports findings via Pass.Reportf.
type Analyzer struct {
	Name string
	Doc  string
	// NeedsTypes marks analyzers that require a type-checked package;
	// syntax-only analyzers also run on packages that were loaded without
	// type information (and on test files, see Pass.TestFiles).
	NeedsTypes bool
	Run        func(*Pass)
}

// All lists every analyzer stsyn-vet runs, in reporting order.
var All = []*Analyzer{APIStab, ArchDeps, BDDRef, CtxFlow, Determinism, GoroLeak, LockSafe, MetricNames, PanicSafe}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	ModPath  string // module path, e.g. "stsyn"
	PkgPath  string // import path of the package under analysis
	Files    []*ast.File
	// TestFiles are the package's _test.go files, parsed but never
	// type-checked; only syntax-only analyzers may inspect them.
	TestFiles []*ast.File
	Pkg       *types.Package // nil unless Analyzer.NeedsTypes
	Info      *types.Info    // nil unless Analyzer.NeedsTypes

	// Root is the module root directory; APIDir and ChangelogPath locate
	// the committed API goldens and the changelog the apistab analyzer
	// couples them to.
	Root          string
	APIDir        string
	ChangelogPath string

	findings *[]Finding
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	position := p.Fset.Position(pos)
	*p.findings = append(*p.findings, Finding{
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// RelPath is the package path relative to the module root: "" for the root
// package, "internal/bdd" for stsyn/internal/bdd. Analyzers scope
// themselves with it so the rules survive a module rename.
func (p *Pass) RelPath() string {
	if p.PkgPath == p.ModPath {
		return ""
	}
	return strings.TrimPrefix(p.PkgPath, p.ModPath+"/")
}

// Check runs the given analyzers over pkg, applies the ignore directives,
// and returns the surviving findings sorted by position. Analyzers that
// need type information are skipped when the package was loaded without it.
// An ignore directive that no analyzer in the run needed — its analyzer ran
// but fired nothing on that line — is itself reported as a stale
// suppression (pseudo-analyzer "lint", unignorable), so annotations cannot
// outlive the code they excused.
func (r *Runner) Check(pkg *Package, analyzers []*Analyzer) []Finding {
	var raw []Finding
	for _, a := range analyzers {
		if a.NeedsTypes && pkg.Pkg == nil {
			continue
		}
		pass := &Pass{
			Analyzer:      a,
			Fset:          r.Fset,
			ModPath:       r.ModPath,
			PkgPath:       pkg.PkgPath,
			Files:         pkg.Files,
			TestFiles:     pkg.TestFiles,
			Pkg:           pkg.Pkg,
			Info:          pkg.Info,
			Root:          r.Root,
			APIDir:        r.APIDir,
			ChangelogPath: r.ChangelogPath,
			findings:      &raw,
		}
		a.Run(pass)
	}
	dir, malformed := parseDirectives(r.Fset, pkg.Files, pkg.TestFiles)
	out := malformed
	for _, f := range raw {
		if dir.ignored(f) {
			continue
		}
		out = append(out, f)
	}
	out = append(out, staleDirectives(dir, analyzers, pkg.Pkg != nil)...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// --- ignore directives ----------------------------------------------------

const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
)

// directive is one parsed //lint:ignore or //lint:file-ignore comment.
// used tracks, per analyzer name, whether the directive suppressed at
// least one raw finding in this run — an unused directive is stale.
type directive struct {
	file     string
	line     int
	col      int
	names    []string
	fromTest bool
	used     map[string]bool
}

func (d *directive) matches(analyzer string) bool {
	for _, name := range d.names {
		if name == analyzer {
			return true
		}
	}
	return false
}

type directiveSet struct {
	// byLine[file][line] lists the directives silencing that line.
	byLine map[string]map[int][]*directive
	// byFile[file] lists the directives silencing the whole file.
	byFile map[string][]*directive
	all    []*directive
}

func (d *directiveSet) ignored(f Finding) bool {
	for _, dir := range d.byFile[f.File] {
		if dir.matches(f.Analyzer) {
			dir.used[f.Analyzer] = true
			return true
		}
	}
	lines := d.byLine[f.File]
	for _, line := range []int{f.Line, f.Line - 1} {
		for _, dir := range lines[line] {
			if dir.matches(f.Analyzer) {
				dir.used[f.Analyzer] = true
				return true
			}
		}
	}
	return false
}

// parseDirectives extracts //lint:ignore and //lint:file-ignore directives
// from the files' comments. Directives missing an analyzer name or a reason
// are returned as findings of the pseudo-analyzer "lint"; those findings
// cannot themselves be ignored.
func parseDirectives(fset *token.FileSet, files, testFiles []*ast.File) (*directiveSet, []Finding) {
	d := &directiveSet{
		byLine: make(map[string]map[int][]*directive),
		byFile: make(map[string][]*directive),
	}
	var malformed []Finding
	collect := func(files []*ast.File, fromTest bool) {
		for _, f := range files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text := c.Text
					var isFile bool
					switch {
					case strings.HasPrefix(text, fileIgnorePrefix):
						text, isFile = text[len(fileIgnorePrefix):], true
					case strings.HasPrefix(text, ignorePrefix):
						text = text[len(ignorePrefix):]
					default:
						continue
					}
					pos := fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) < 2 {
						malformed = append(malformed, Finding{
							File: pos.Filename, Line: pos.Line, Col: pos.Column,
							Analyzer: "lint",
							Message:  "malformed ignore directive: want //lint:ignore <analyzer>[,<analyzer>] <reason>",
						})
						continue
					}
					dir := &directive{
						file:     pos.Filename,
						line:     pos.Line,
						col:      pos.Column,
						names:    strings.Split(fields[0], ","),
						fromTest: fromTest,
						used:     make(map[string]bool),
					}
					d.all = append(d.all, dir)
					if isFile {
						d.byFile[pos.Filename] = append(d.byFile[pos.Filename], dir)
						continue
					}
					if d.byLine[pos.Filename] == nil {
						d.byLine[pos.Filename] = make(map[int][]*directive)
					}
					d.byLine[pos.Filename][pos.Line] = append(d.byLine[pos.Filename][pos.Line], dir)
				}
			}
		}
	}
	collect(files, false)
	collect(testFiles, true)
	return d, malformed
}

// staleDirectives reports directives that name an analyzer which ran in
// this Check but suppressed nothing: the code they excused has changed, so
// the suppression must go. Names outside the run's analyzer list are left
// alone (a partial run cannot judge them), as are typed analyzers named
// from test files (those files are never type-checked, so the analyzer
// never sees them).
func staleDirectives(d *directiveSet, analyzers []*Analyzer, typed bool) []Finding {
	ran := make(map[string]bool)
	ranSyntax := make(map[string]bool)
	for _, a := range analyzers {
		if a.NeedsTypes && !typed {
			continue
		}
		ran[a.Name] = true
		if !a.NeedsTypes {
			ranSyntax[a.Name] = true
		}
	}
	var out []Finding
	for _, dir := range d.all {
		for _, name := range dir.names {
			applicable := ran[name]
			if dir.fromTest {
				applicable = ranSyntax[name]
			}
			if !applicable || dir.used[name] {
				continue
			}
			out = append(out, Finding{
				File: dir.file, Line: dir.line, Col: dir.col,
				Analyzer: "lint",
				Message:  fmt.Sprintf("stale ignore directive: %s no longer fires here; delete the suppression", name),
			})
		}
	}
	return out
}

// --- tool output ----------------------------------------------------------

// EncodeJSON writes findings as an indented JSON array — never null, so
// consumers can index unconditionally. This is the `stsyn-vet -json` wire
// format CI archives as an artifact; the golden test pins it.
func EncodeJSON(w io.Writer, findings []Finding) error {
	if findings == nil {
		findings = []Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// ExitCode maps a vet run's outcome to the process exit status: 2 when the
// load or analysis itself failed, 1 when findings survived the directives,
// 0 when clean.
func ExitCode(findings []Finding, err error) int {
	switch {
	case err != nil:
		return 2
	case len(findings) > 0:
		return 1
	default:
		return 0
	}
}

// pathInScope reports whether the module-relative package path rel is one
// of the scope prefixes or nested under one.
func pathInScope(rel string, scopes []string) bool {
	for _, s := range scopes {
		if rel == s || strings.HasPrefix(rel, s+"/") {
			return true
		}
	}
	return false
}

// --- shared AST / type helpers -------------------------------------------

// inspectWithStack walks root calling f with each node and its ancestors
// (outermost first). Returning false skips the node's children.
func inspectWithStack(root ast.Node, f func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		if !f(n, stack) {
			return false
		}
		stack = append(stack, n)
		return true
	})
}

// objectOf resolves an identifier to its object, whether the identifier
// defines it or uses it.
func (p *Pass) objectOf(id *ast.Ident) types.Object {
	if p.Info == nil {
		return nil
	}
	if obj := p.Info.Uses[id]; obj != nil {
		return obj
	}
	return p.Info.Defs[id]
}

// typeOf is Info.TypeOf tolerating a nil Info.
func (p *Pass) typeOf(e ast.Expr) types.Type {
	if p.Info == nil {
		return nil
	}
	return p.Info.TypeOf(e)
}

// calleeObject resolves the function or method object a call invokes, or
// nil for calls through function values, conversions and builtins.
func (p *Pass) calleeObject(call *ast.CallExpr) types.Object {
	if p.Info == nil {
		return nil
	}
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return p.Info.Uses[fun]
	case *ast.SelectorExpr:
		if sel, ok := p.Info.Selections[fun]; ok {
			return sel.Obj()
		}
		return p.Info.Uses[fun.Sel]
	}
	return nil
}

// calleeIs reports whether call invokes a function or method named name
// that is declared in package pkgPath.
func (p *Pass) calleeIs(call *ast.CallExpr, pkgPath, name string) bool {
	obj := p.calleeObject(call)
	return obj != nil && obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}

// isNamedType reports whether t is the named type pkgPath.name.
func isNamedType(t types.Type, pkgPath, name string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == name && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath
}
