package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BDDRef enforces the BDD substrate's Keep/Release protection discipline
// (the GC contract introduced with the mark-and-sweep collector): a
// bdd.Ref that outlives the expression that built it — stored into a
// struct field, a slice or map reachable from one, or a package variable —
// must be protected at the store site, i.e. come directly from Keep (or a
// RefRegistry Retain). A Keep whose result is discarded hides the
// protected root from the reader, and a kept Ref that is never released,
// returned, stored, or passed on is a permanent GC root: both are
// reported. Violations of this discipline are use-after-free bugs that
// only surface once the live-node watermark triggers a collection.
var BDDRef = &Analyzer{
	Name:       "bddref",
	Doc:        "bdd.Ref stores must be protected with Keep at the store site; Keep results must be used",
	NeedsTypes: true,
	Run:        runBDDRef,
}

func runBDDRef(p *Pass) {
	bddPath := p.ModPath + "/internal/bdd"
	if p.PkgPath == bddPath {
		// The manager's own internals legitimately juggle raw refs; its
		// discipline is validated by the GC property tests.
		return
	}
	b := &bddrefPass{Pass: p, bddPath: bddPath}
	for _, f := range p.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok && b.isKeepCall(call) {
					p.Reportf(n.Pos(), "result of %s is discarded; assign the kept Ref at the store site so the protected root stays visible", calleeName(call))
				}
			case *ast.AssignStmt:
				b.checkAssign(n)
			case *ast.UnaryExpr:
				if n.Op == token.AND {
					if lit, ok := n.X.(*ast.CompositeLit); ok {
						b.checkCompositeLit(lit)
					}
				}
			case *ast.FuncDecl:
				if n.Body != nil {
					b.checkKeepLeaks(n.Body)
				}
			}
			return true
		})
	}
}

type bddrefPass struct {
	*Pass
	bddPath string
}

func (b *bddrefPass) isRef(t types.Type) bool {
	return isNamedType(t, b.bddPath, "Ref")
}

// isKeepCall reports whether call is a protection call: bdd.Manager.Keep
// (any method named Keep returning a bdd.Ref) or a module Retain (the
// core.RefRegistry capability).
func (b *bddrefPass) isKeepCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	switch name {
	case "Keep":
		return b.isRef(b.typeOf(call))
	case "Retain":
		obj := b.calleeObject(call)
		return obj != nil && obj.Pkg() != nil &&
			(obj.Pkg().Path() == b.ModPath || len(obj.Pkg().Path()) > len(b.ModPath) && obj.Pkg().Path()[:len(b.ModPath)+1] == b.ModPath+"/")
	}
	return false
}

// allowedRefSource reports whether expr may be stored into a long-lived
// location: a Keep/Retain call, or a constant (bdd.False, bdd.True, or a
// zero literal — terminals are always live).
func (b *bddrefPass) allowedRefSource(expr ast.Expr) bool {
	expr = ast.Unparen(expr)
	if call, ok := expr.(*ast.CallExpr); ok && b.isKeepCall(call) {
		return true
	}
	if tv, ok := b.Info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// storeTarget classifies lhs as a long-lived store destination: a struct
// field, a package variable, or an element of either. Stores into plain
// locals are not in scope — protection is checked where a ref becomes
// reachable beyond the current call.
func (b *bddrefPass) storeTarget(lhs ast.Expr) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := b.objectOf(e).(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "package variable " + e.Name, true
		}
	case *ast.SelectorExpr:
		if sel, ok := b.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "field " + e.Sel.Name, true
		}
		if obj, ok := b.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "package variable " + e.Sel.Name, true
		}
	case *ast.IndexExpr:
		if desc, ok := b.storeTarget(e.X); ok {
			return "element of " + desc, true
		}
	case *ast.StarExpr:
		return b.storeTarget(e.X)
	}
	return "", false
}

func (b *bddrefPass) objectOf(id *ast.Ident) types.Object {
	if obj := b.Info.Uses[id]; obj != nil {
		return obj
	}
	return b.Info.Defs[id]
}

func (b *bddrefPass) checkAssign(as *ast.AssignStmt) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && b.isKeepCall(call) {
				b.Reportf(as.Pos(), "result of %s assigned to the blank identifier; assign the kept Ref so the protected root stays visible", calleeName(call))
			}
			continue
		}
		if as.Tok == token.DEFINE {
			continue // new locals; the leak check covers kept refs
		}
		target, ok := b.storeTarget(lhs)
		if !ok {
			continue
		}
		rt := b.typeOf(rhs)
		switch {
		case b.isRef(rt):
			if !b.allowedRefSource(rhs) {
				b.Reportf(rhs.Pos(), "bdd.Ref stored into %s without Keep: unprotected refs are reclaimed by the next collection", target)
			}
		default:
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(b.Pass, call) {
				for _, arg := range call.Args[1:] {
					if b.isRef(b.typeOf(arg)) && !b.allowedRefSource(arg) {
						b.Reportf(arg.Pos(), "bdd.Ref appended to %s without Keep: unprotected refs are reclaimed by the next collection", target)
					}
				}
			}
			if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
				b.checkCompositeLit(lit)
			}
		}
	}
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkCompositeLit verifies Ref-typed fields of an escaping (address-
// taken or field-stored) struct literal are protected at the store site.
func (b *bddrefPass) checkCompositeLit(lit *ast.CompositeLit) {
	t := b.typeOf(lit)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if b.isRef(b.typeOf(val)) && !b.allowedRefSource(val) {
			b.Reportf(val.Pos(), "bdd.Ref in escaping composite literal without Keep: unprotected refs are reclaimed by the next collection")
		}
	}
}

// checkKeepLeaks flags locals holding a Keep result that are never
// consumed — not passed to any call (Release included), not returned, not
// stored into a literal or another location. Such a root can never be
// released and pins its whole BDD for the manager's lifetime.
func (b *bddrefPass) checkKeepLeaks(body *ast.BlockStmt) {
	keeps := make(map[*types.Var]token.Pos)
	names := make(map[*types.Var]string)
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || id.Name == "_" {
				continue
			}
			call, ok := ast.Unparen(as.Rhs[i]).(*ast.CallExpr)
			if !ok || !b.isKeepCall(call) {
				continue
			}
			obj, ok := b.objectOf(id).(*types.Var)
			if !ok || obj.Pkg() == nil || obj.Parent() == obj.Pkg().Scope() {
				continue // package vars are handled by the store check
			}
			keeps[obj] = id.Pos()
			names[obj] = id.Name
		}
		return true
	})
	if len(keeps) == 0 {
		return
	}
	consumed := make(map[*types.Var]bool)
	inspectWithStack(body, func(n ast.Node, stack []ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := b.Info.Uses[id].(*types.Var)
		if !ok {
			return true
		}
		if _, tracked := keeps[obj]; !tracked {
			return true
		}
		// Climb through parens to the semantically relevant parent.
		j := len(stack) - 1
		for j >= 0 {
			if _, ok := stack[j].(*ast.ParenExpr); ok {
				j--
				continue
			}
			break
		}
		if j < 0 {
			return true
		}
		switch parent := stack[j].(type) {
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if containsNode(arg, id) {
					consumed[obj] = true
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			consumed[obj] = true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if containsNode(rhs, id) {
					consumed[obj] = true
				}
			}
		}
		return true
	})
	for obj, pos := range keeps {
		if !consumed[obj] {
			b.Reportf(pos, "kept Ref %s is never released, returned, stored, or passed on: a leaked GC root pins its BDD forever", names[obj])
		}
	}
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
