package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// BDDRef enforces the BDD substrate's Keep/Release protection discipline
// (the GC contract introduced with the mark-and-sweep collector): a
// bdd.Ref that outlives the expression that built it — stored into a
// struct field, a slice or map reachable from one, or a package variable —
// must be protected at the store site. The analyzer is flow-sensitive: it
// propagates a "kept" fact through each function's control-flow graph, so
// a ref assigned from Keep on every path into a store is accepted, while a
// store that is reachable with the ref raw on any path is reported. A Keep
// whose result can reach a return without being released, returned, stored,
// or passed on any path is a permanent GC root and is reported too.
//
// Two ownership rules exempt scratch contexts, which never run a
// collection: a ref produced by a method on the store target itself when
// the target's type is an unexported struct of the package under analysis
// (the scratch-context rule), and a ref produced by a bdd.Manager that was
// created locally with bdd.New and stored into the target (a throwaway
// manager owned by the value it fills). Persistent, collecting managers
// never satisfy either rule, so stores on the engine's hot paths still
// require Keep.
var BDDRef = &Analyzer{
	Name:       "bddref",
	Doc:        "bdd.Ref stores must be protected with Keep on every path to the store site; Keep results must be consumed on every path",
	NeedsTypes: true,
	Run:        runBDDRef,
}

func runBDDRef(p *Pass) {
	bddPath := p.ModPath + "/internal/bdd"
	if p.PkgPath == bddPath {
		// The manager's own internals legitimately juggle raw refs; its
		// discipline is validated by the GC property tests.
		return
	}
	b := &bddrefPass{Pass: p, bddPath: bddPath}
	for _, f := range p.Files {
		forEachFunc(f, func(decl *ast.FuncDecl, lit *ast.FuncLit, body *ast.BlockStmt) {
			b.checkFunc(body)
		})
	}
}

type bddrefPass struct {
	*Pass
	bddPath string
}

func (b *bddrefPass) isRef(t types.Type) bool {
	return isNamedType(t, b.bddPath, "Ref")
}

// isKeepCall reports whether call is a protection call: bdd.Manager.Keep
// (any method named Keep returning a bdd.Ref) or a module Retain (the
// core.RefRegistry capability).
func (b *bddrefPass) isKeepCall(call *ast.CallExpr) bool {
	name := calleeName(call)
	switch name {
	case "Keep":
		return b.isRef(b.typeOf(call))
	case "Retain":
		obj := b.calleeObject(call)
		return obj != nil && obj.Pkg() != nil &&
			(obj.Pkg().Path() == b.ModPath || len(obj.Pkg().Path()) > len(b.ModPath) && obj.Pkg().Path()[:len(b.ModPath)+1] == b.ModPath+"/")
	}
	return false
}

func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// --- the kept-fact lattice ------------------------------------------------

// refFacts is the set of local bdd.Ref variables known to hold a protected
// (kept) value at a program point. Absence means raw: the conservative
// default for parameters, captured variables and anything assigned from a
// plain operation. The lattice has height two, so the fixpoint below is
// cheap.
type refFacts map[*types.Var]bool

func cloneFacts(m refFacts) refFacts {
	out := make(refFacts, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// classifyKept reports whether expr yields a protected ref under facts m:
// a constant (terminals are always live), a Keep/Retain call, or a local
// already carrying the kept fact.
func (b *bddrefPass) classifyKept(expr ast.Expr, m refFacts) bool {
	expr = ast.Unparen(expr)
	if tv, ok := b.Info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	if call, ok := expr.(*ast.CallExpr); ok && b.isKeepCall(call) {
		return true
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj, ok := b.objectOf(id).(*types.Var); ok && m[obj] {
			return true
		}
	}
	return false
}

func (b *bddrefPass) isLocalVar(obj types.Object) (*types.Var, bool) {
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() == v.Pkg().Scope() {
		return nil, false
	}
	return v, true
}

// transfer applies one statement's effect on the kept set.
func (b *bddrefPass) transfer(s ast.Stmt, m refFacts) {
	switch s := s.(type) {
	case *ast.AssignStmt:
		if len(s.Lhs) == len(s.Rhs) {
			for i, lhs := range s.Lhs {
				id, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok {
					continue
				}
				obj, ok := b.isLocalVar(b.objectOf(id))
				if !ok || !b.isRef(obj.Type()) {
					continue
				}
				if b.classifyKept(s.Rhs[i], m) {
					m[obj] = true
				} else {
					delete(m, obj)
				}
			}
			return
		}
		// Multi-value assignment (and the synthetic range binding): the
		// produced refs are raw.
		for _, lhs := range s.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				continue
			}
			if obj, ok := b.isLocalVar(b.objectOf(id)); ok && b.isRef(obj.Type()) {
				delete(m, obj)
			}
		}
	case *ast.DeclStmt:
		gd, ok := s.Decl.(*ast.GenDecl)
		if !ok {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				obj, ok := b.isLocalVar(b.Info.Defs[name])
				if !ok || !b.isRef(obj.Type()) {
					continue
				}
				switch {
				case len(vs.Values) == 0:
					m[obj] = true // zero value is bdd.False, a terminal
				case len(vs.Values) == len(vs.Names):
					if b.classifyKept(vs.Values[i], m) {
						m[obj] = true
					} else {
						delete(m, obj)
					}
				default:
					delete(m, obj)
				}
			}
		}
	}
}

// solve runs the forward fixpoint and returns each block's entry facts.
// Join is set intersection: a ref is kept at a join only if it is kept on
// every incoming path.
func (b *bddrefPass) solve(g *funcCFG) map[*cfgBlock]refFacts {
	in := make(map[*cfgBlock]refFacts, len(g.blocks))
	in[g.entry] = make(refFacts)
	maxRounds := 4*len(g.blocks) + 8
	for changed, round := true, 0; changed && round < maxRounds; round++ {
		changed = false
		for _, blk := range g.blocks {
			cur, ok := in[blk]
			if !ok {
				continue
			}
			out := cloneFacts(cur)
			for _, s := range blk.stmts {
				b.transfer(s, out)
			}
			for _, succ := range blk.succs {
				have, ok := in[succ]
				if !ok {
					in[succ] = cloneFacts(out)
					changed = true
					continue
				}
				for v := range have {
					if !out[v] {
						delete(have, v)
						changed = true
					}
				}
			}
		}
	}
	return in
}

// --- scratch-context ownership --------------------------------------------

// ownerInfo carries the function-level facts behind the two scratch-manager
// exemptions: which locals were created with bdd.New, and which locals hold
// a struct that one of those managers was stored into.
type ownerInfo struct {
	localNew map[*types.Var]bool
	owned    map[*types.Var]map[*types.Var]bool
}

func (b *bddrefPass) isManager(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	return isNamedType(t, b.bddPath, "Manager")
}

// isScratchType reports whether t is (a pointer to) an unexported struct
// type declared in the package under analysis — the shape of the scratch
// contexts whose managers never collect.
func (b *bddrefPass) isScratchType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Exported() || obj.Pkg() == nil || obj.Pkg() != b.Pkg {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct
}

// ownership scans one function body for manager-ownership facts.
func (b *bddrefPass) ownership(body *ast.BlockStmt) *ownerInfo {
	own := &ownerInfo{
		localNew: make(map[*types.Var]bool),
		owned:    make(map[*types.Var]map[*types.Var]bool),
	}
	record := func(holder, mgr *types.Var) {
		if own.owned[holder] == nil {
			own.owned[holder] = make(map[*types.Var]bool)
		}
		own.owned[holder][mgr] = true
	}
	managersIn := func(lit *ast.CompositeLit, holder *types.Var) {
		for _, elt := range lit.Elts {
			val := elt
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				val = kv.Value
			}
			if id, ok := ast.Unparen(val).(*ast.Ident); ok {
				if mgr, ok := b.isLocalVar(b.objectOf(id)); ok && b.isManager(mgr.Type()) {
					record(holder, mgr)
				}
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != len(as.Rhs) {
			return true
		}
		for i, lhs := range as.Lhs {
			rhs := ast.Unparen(as.Rhs[i])
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				obj, ok := b.isLocalVar(b.objectOf(l))
				if !ok {
					continue
				}
				if call, isCall := rhs.(*ast.CallExpr); isCall && b.calleeIs(call, b.bddPath, "New") {
					own.localNew[obj] = true
					continue
				}
				lit, isLit := rhs.(*ast.CompositeLit)
				if !isLit {
					if ue, isAddr := rhs.(*ast.UnaryExpr); isAddr && ue.Op == token.AND {
						lit, isLit = ue.X.(*ast.CompositeLit)
					}
				}
				if isLit {
					managersIn(lit, obj)
				}
			case *ast.SelectorExpr:
				base, ok := baseIdent(l)
				if !ok {
					continue
				}
				holder, ok := b.isLocalVar(b.objectOf(base))
				if !ok {
					continue
				}
				if id, isID := rhs.(*ast.Ident); isID {
					if mgr, ok := b.isLocalVar(b.objectOf(id)); ok && b.isManager(mgr.Type()) {
						record(holder, mgr)
					}
				}
			}
		}
		return true
	})
	return own
}

// baseIdent unwraps a selector/index/star chain to its root identifier.
func baseIdent(e ast.Expr) (*ast.Ident, bool) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x, true
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, false
		}
	}
}

// scratchOwnedCall reports whether call produces a ref inside a scratch
// context that owns the manager: either a method on the store target itself
// (an unexported in-package struct — rule one), or a method on a manager
// that was created locally with bdd.New and stored into the target (rule
// two).
func (b *bddrefPass) scratchOwnedCall(call *ast.CallExpr, lhs ast.Expr, own *ownerInfo) bool {
	if lhs == nil {
		return false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	recvID, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return false
	}
	recvObj, ok := b.isLocalVar(b.objectOf(recvID))
	if !ok {
		return false
	}
	base, ok := baseIdent(lhs)
	if !ok {
		return false
	}
	baseObj, ok := b.isLocalVar(b.objectOf(base))
	if !ok {
		return false
	}
	if recvObj == baseObj && b.isScratchType(recvObj.Type()) {
		return true
	}
	return own != nil && own.localNew[recvObj] && own.owned[baseObj] != nil && own.owned[baseObj][recvObj]
}

// --- per-function driver --------------------------------------------------

func (b *bddrefPass) checkFunc(body *ast.BlockStmt) {
	g := buildCFG(body)
	in := b.solve(g)
	own := b.ownership(body)
	for _, blk := range g.blocks {
		m := cloneFacts(in[blk])
		for _, s := range blk.stmts {
			b.checkStmt(s, m, body, own)
			b.transfer(s, m)
		}
	}
	b.checkKeepLeaks(g, body)
}

func (b *bddrefPass) checkStmt(s ast.Stmt, m refFacts, body *ast.BlockStmt, own *ownerInfo) {
	switch st := s.(type) {
	case *ast.ExprStmt:
		if call, ok := st.X.(*ast.CallExpr); ok && b.isKeepCall(call) {
			// A discarded Keep is allowed only as a transient pin: the same
			// receiver must Release the same expression later in the
			// function.
			if !b.hasMatchingRelease(body, call) {
				b.Reportf(st.Pos(), "result of %s is discarded; assign the kept Ref at the store site so the protected root stays visible", calleeName(call))
			}
		}
	case *ast.AssignStmt:
		b.checkAssign(st, m, own)
	}
	shallowInspect(s, func(n ast.Node) bool {
		if ue, ok := n.(*ast.UnaryExpr); ok && ue.Op == token.AND {
			if lit, ok := ue.X.(*ast.CompositeLit); ok {
				b.checkCompositeLit(lit, m)
			}
		}
		return true
	})
}

// allowedSource reports whether expr may be stored into the long-lived
// location lhs given the current kept facts.
func (b *bddrefPass) allowedSource(expr ast.Expr, m refFacts, lhs ast.Expr, own *ownerInfo) bool {
	expr = ast.Unparen(expr)
	if tv, ok := b.Info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	if call, ok := expr.(*ast.CallExpr); ok {
		if b.isKeepCall(call) {
			return true
		}
		if b.scratchOwnedCall(call, lhs, own) {
			return true
		}
	}
	if id, ok := expr.(*ast.Ident); ok {
		if obj, ok := b.objectOf(id).(*types.Var); ok && m[obj] {
			return true
		}
	}
	return false
}

// storeTarget classifies lhs as a long-lived store destination: a struct
// field, a package variable, or an element of either. Stores into plain
// locals are not in scope — protection is checked where a ref becomes
// reachable beyond the current call.
func (b *bddrefPass) storeTarget(lhs ast.Expr) (string, bool) {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if obj, ok := b.objectOf(e).(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "package variable " + e.Name, true
		}
	case *ast.SelectorExpr:
		if sel, ok := b.Info.Selections[e]; ok && sel.Kind() == types.FieldVal {
			return "field " + e.Sel.Name, true
		}
		if obj, ok := b.Info.Uses[e.Sel].(*types.Var); ok && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope() {
			return "package variable " + e.Sel.Name, true
		}
	case *ast.IndexExpr:
		if desc, ok := b.storeTarget(e.X); ok {
			return "element of " + desc, true
		}
	case *ast.StarExpr:
		return b.storeTarget(e.X)
	}
	return "", false
}

func (b *bddrefPass) checkAssign(as *ast.AssignStmt, m refFacts, own *ownerInfo) {
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i, lhs := range as.Lhs {
		rhs := as.Rhs[i]
		if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && b.isKeepCall(call) {
				b.Reportf(as.Pos(), "result of %s assigned to the blank identifier; assign the kept Ref so the protected root stays visible", calleeName(call))
			}
			continue
		}
		if as.Tok == token.DEFINE {
			continue // new locals; the leak check covers kept refs
		}
		target, ok := b.storeTarget(lhs)
		if !ok {
			continue
		}
		rt := b.typeOf(rhs)
		switch {
		case b.isRef(rt):
			if !b.allowedSource(rhs, m, lhs, own) {
				b.Reportf(rhs.Pos(), "bdd.Ref stored into %s without Keep on every path: unprotected refs are reclaimed by the next collection", target)
			}
		default:
			if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(b.Pass, call) {
				for _, arg := range call.Args[1:] {
					if b.isRef(b.typeOf(arg)) && !b.allowedSource(arg, m, lhs, own) {
						b.Reportf(arg.Pos(), "bdd.Ref appended to %s without Keep on every path: unprotected refs are reclaimed by the next collection", target)
					}
				}
			}
			if lit, ok := ast.Unparen(rhs).(*ast.CompositeLit); ok {
				b.checkCompositeLit(lit, m)
			}
		}
	}
}

func isBuiltinAppend(p *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := p.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// checkCompositeLit verifies Ref-typed fields of an escaping (address-
// taken or field-stored) struct literal are protected at the store site.
func (b *bddrefPass) checkCompositeLit(lit *ast.CompositeLit, m refFacts) {
	t := b.typeOf(lit)
	if t == nil {
		return
	}
	if _, ok := t.Underlying().(*types.Struct); !ok {
		return
	}
	for _, elt := range lit.Elts {
		val := elt
		if kv, ok := elt.(*ast.KeyValueExpr); ok {
			val = kv.Value
		}
		if b.isRef(b.typeOf(val)) && !b.allowedSource(val, m, nil, nil) {
			b.Reportf(val.Pos(), "bdd.Ref in escaping composite literal without Keep: unprotected refs are reclaimed by the next collection")
		}
	}
}

// hasMatchingRelease reports whether the function later releases the exact
// expression that call keeps, on the same receiver — the transient-pin
// idiom (pin across a collection point, release when done).
func (b *bddrefPass) hasMatchingRelease(body *ast.BlockStmt, keep *ast.CallExpr) bool {
	if len(keep.Args) == 0 {
		return false
	}
	recv := receiverString(keep)
	arg := types.ExprString(keep.Args[0])
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= keep.Pos() || calleeName(call) != "Release" || len(call.Args) == 0 {
			return true
		}
		if receiverString(call) == recv && types.ExprString(call.Args[0]) == arg {
			found = true
		}
		return true
	})
	return found
}

func receiverString(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return types.ExprString(sel.X)
	}
	return ""
}

// --- keep-leak detection --------------------------------------------------

// checkKeepLeaks flags locals assigned from Keep that can reach the
// function's exit without being consumed — released, returned, stored, sent
// or passed to any call — on at least one path. Such a root can never be
// released on that path and pins its whole BDD for the manager's lifetime.
func (b *bddrefPass) checkKeepLeaks(g *funcCFG, body *ast.BlockStmt) {
	for _, blk := range g.blocks {
		for i, s := range blk.stmts {
			as, ok := s.(*ast.AssignStmt)
			if !ok || len(as.Lhs) != len(as.Rhs) {
				continue
			}
			for j, lhs := range as.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				call, ok := ast.Unparen(as.Rhs[j]).(*ast.CallExpr)
				if !ok || !b.isKeepCall(call) {
					continue
				}
				obj, ok := b.isLocalVar(b.objectOf(id))
				if !ok {
					continue // package vars are handled by the store check
				}
				if b.usedInFuncLit(body, obj) {
					// Captured by a closure: assume the closure consumes it.
					continue
				}
				barrier := func(st ast.Stmt) bool { return b.consumesVar(st, obj) }
				if g.exitReachableAvoiding(blk, i+1, barrier) {
					b.Reportf(id.Pos(), "kept Ref %s can reach a return without being released, returned, stored, or passed on: a leaked GC root pins its BDD forever", id.Name)
				}
			}
		}
	}
}

// consumesVar reports whether executing st consumes obj: passes it to a
// call, returns it, stores it into a literal or another location, or sends
// it. Reading it in a comparison or index is not consumption. Nested
// function literals are their own functions and are skipped — except under
// defer, whose closure runs at every exit.
func (b *bddrefPass) consumesVar(st ast.Stmt, obj *types.Var) bool {
	if _, ok := st.(*ast.SelectStmt); ok {
		return false // clause statements live in their own blocks
	}
	_, isDefer := st.(*ast.DeferStmt)
	found := false
	inspectWithStack(st, func(n ast.Node, stack []ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok && !isDefer {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok || b.Info.Uses[id] != obj {
			return true
		}
		j := len(stack) - 1
		for j >= 0 {
			if _, ok := stack[j].(*ast.ParenExpr); ok {
				j--
				continue
			}
			break
		}
		if j < 0 {
			return true
		}
		switch parent := stack[j].(type) {
		case *ast.CallExpr:
			for _, arg := range parent.Args {
				if containsNode(arg, id) {
					found = true
				}
			}
		case *ast.ReturnStmt, *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
			found = true
		case *ast.AssignStmt:
			for _, rhs := range parent.Rhs {
				if containsNode(rhs, id) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

// usedInFuncLit reports whether obj is referenced inside any function
// literal nested in body.
func (b *bddrefPass) usedInFuncLit(body *ast.BlockStmt, obj *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			if id, ok := inner.(*ast.Ident); ok && b.Info.Uses[id] == obj {
				found = true
			}
			return !found
		})
		return !found
	})
	return found
}

func containsNode(root ast.Node, target ast.Node) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if n == target {
			found = true
		}
		return !found
	})
	return found
}
