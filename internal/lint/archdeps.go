package lint

import (
	"go/ast"
	"strings"
)

// ArchDeps enforces the repository's dependency direction (formerly two
// hand-rolled tests in arch_test.go, which now wrap this analyzer so the
// rule set lives in exactly one place):
//
//   - internal/bdd, internal/protocol and pkg/stsynerr are leaf packages:
//     stdlib imports only. Everything else may build on them, they build
//     on nothing.
//   - no internal package may import a cmd/ package; binaries sit on top.
//   - pkg/ is the published surface: it must never import internal/ or
//     cmd/ — anything a pkg/ package needs is part of the contract and
//     belongs in pkg/ itself. This rule covers _test.go files too; the
//     differential tests that pit pkg/client against a live server live in
//     internal/service, where the arrow points the right way.
//   - packages in RestrictedImports may import only their allow-listed
//     module-internal packages (non-test files; tests may reach wider for
//     differential oracles).
//
// Unlike the other analyzers it also inspects _test.go files — a test
// import inverts the dependency arrow just as effectively.
var ArchDeps = &Analyzer{
	Name: "archdeps",
	Doc:  "leaf packages depend on the stdlib only; pkg/ never imports internal/; internal packages never import binaries",
	Run:  runArchDeps,
}

// LeafPackages are the module-relative packages that must import nothing
// beyond the standard library.
var LeafPackages = []string{"internal/bdd", "internal/protocol", "pkg/stsynerr"}

// RestrictedImports pins a package's module-internal imports to an explicit
// allow-list. internal/prune sits beside the search drivers, not above
// them: it may know the synthesis core, the symmetry layer and the protocol
// model, never the service or distributed tiers that consume it. The
// published packages form their own strict tower: errors < wire types <
// client.
var RestrictedImports = map[string][]string{
	"internal/prune": {"internal/core", "internal/symmetry", "internal/protocol"},
	"pkg/stsynapi":   {"pkg/stsynerr"},
	"pkg/client":     {"pkg/stsynapi", "pkg/stsynerr"},
}

func runArchDeps(p *Pass) {
	rel := p.RelPath()
	leaf := false
	for _, l := range LeafPackages {
		if rel == l {
			leaf = true
		}
	}
	internal := strings.HasPrefix(rel, "internal/")
	published := strings.HasPrefix(rel, "pkg/")
	restricted, isRestricted := RestrictedImports[rel]
	if !leaf && !internal && !published {
		return
	}
	for _, f := range append(append([]*ast.File(nil), p.Files...), p.TestFiles...) {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if leaf && !stdlibImportPath(p.ModPath, path) {
				p.Reportf(imp.Pos(), "leaf rule: %s must depend on the stdlib only, not %q", rel, path)
			}
			if (internal || published) && strings.HasPrefix(path, p.ModPath+"/cmd") {
				p.Reportf(imp.Pos(), "binary rule: packages must not import %q; binaries sit on top", path)
			}
			if published && !leaf && strings.HasPrefix(path, p.ModPath+"/internal") {
				p.Reportf(imp.Pos(), "published rule: %s must not import %q; pkg/ stands alone so consumers can vendor it", rel, path)
			}
		}
	}
	if !isRestricted {
		return
	}
	for _, f := range p.Files { // non-test files only
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if stdlibImportPath(p.ModPath, path) {
				continue
			}
			ok := false
			for _, allow := range restricted {
				if path == p.ModPath+"/"+allow {
					ok = true
					break
				}
			}
			if !ok {
				p.Reportf(imp.Pos(), "restricted rule: %s may import only %v from this module, not %q", rel, restricted, path)
			}
		}
	}
}

// stdlibImportPath reports whether path is a standard-library import. In
// this dependency-free module, non-stdlib means either a module-internal
// path or a dotted host path.
func stdlibImportPath(modPath, path string) bool {
	if path == modPath || strings.HasPrefix(path, modPath+"/") {
		return false
	}
	return !strings.Contains(strings.SplitN(path, "/", 2)[0], ".")
}

// ArchCheck loads every package under the module containing startDir
// (syntax only, test files included) and returns the ArchDeps findings.
// It is the entry point the architecture-hygiene tests wrap.
func ArchCheck(startDir string) ([]Finding, error) {
	r, err := NewRunner(startDir)
	if err != nil {
		return nil, err
	}
	dirs, err := r.PackageDirs("./...")
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, dir := range dirs {
		path, err := r.pathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := r.LoadDir(dir, path, false)
		if err != nil {
			return nil, err
		}
		out = append(out, r.Check(pkg, []*Analyzer{ArchDeps})...)
	}
	return out, nil
}
