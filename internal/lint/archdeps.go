package lint

import (
	"go/ast"
	"strings"
)

// ArchDeps enforces the repository's dependency direction (formerly two
// hand-rolled tests in arch_test.go, which now wrap this analyzer so the
// rule set lives in exactly one place):
//
//   - internal/bdd and internal/protocol are leaf packages: stdlib imports
//     only. Everything else may build on them, they build on nothing.
//   - no internal package may import a cmd/ package; binaries sit on top.
//   - packages in RestrictedImports may import only their allow-listed
//     module-internal packages (non-test files; tests may reach wider for
//     differential oracles).
//
// Unlike the other analyzers it also inspects _test.go files — a test
// import inverts the dependency arrow just as effectively.
var ArchDeps = &Analyzer{
	Name: "archdeps",
	Doc:  "leaf packages depend on the stdlib only; internal packages never import binaries",
	Run:  runArchDeps,
}

// LeafPackages are the module-relative packages that must import nothing
// beyond the standard library.
var LeafPackages = []string{"internal/bdd", "internal/protocol"}

// RestrictedImports pins a package's module-internal imports to an explicit
// allow-list. internal/prune sits beside the search drivers, not above
// them: it may know the synthesis core, the symmetry layer and the protocol
// model, never the service or distributed tiers that consume it.
var RestrictedImports = map[string][]string{
	"internal/prune": {"internal/core", "internal/symmetry", "internal/protocol"},
}

func runArchDeps(p *Pass) {
	rel := p.RelPath()
	leaf := false
	for _, l := range LeafPackages {
		if rel == l {
			leaf = true
		}
	}
	internal := strings.HasPrefix(rel, "internal/")
	restricted, isRestricted := RestrictedImports[rel]
	if !leaf && !internal {
		return
	}
	for _, f := range append(append([]*ast.File(nil), p.Files...), p.TestFiles...) {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if leaf && !stdlibImportPath(p.ModPath, path) {
				p.Reportf(imp.Pos(), "leaf rule: %s must depend on the stdlib only, not %q", rel, path)
			}
			if internal && strings.HasPrefix(path, p.ModPath+"/cmd") {
				p.Reportf(imp.Pos(), "binary rule: internal packages must not import %q; binaries sit on top", path)
			}
		}
	}
	if !isRestricted {
		return
	}
	for _, f := range p.Files { // non-test files only
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if stdlibImportPath(p.ModPath, path) {
				continue
			}
			ok := false
			for _, allow := range restricted {
				if path == p.ModPath+"/"+allow {
					ok = true
					break
				}
			}
			if !ok {
				p.Reportf(imp.Pos(), "restricted rule: %s may import only %v from this module, not %q", rel, restricted, path)
			}
		}
	}
}

// stdlibImportPath reports whether path is a standard-library import. In
// this dependency-free module, non-stdlib means either a module-internal
// path or a dotted host path.
func stdlibImportPath(modPath, path string) bool {
	if path == modPath || strings.HasPrefix(path, modPath+"/") {
		return false
	}
	return !strings.Contains(strings.SplitN(path, "/", 2)[0], ".")
}

// ArchCheck loads every package under the module containing startDir
// (syntax only, test files included) and returns the ArchDeps findings.
// It is the entry point the architecture-hygiene tests wrap.
func ArchCheck(startDir string) ([]Finding, error) {
	r, err := NewRunner(startDir)
	if err != nil {
		return nil, err
	}
	dirs, err := r.PackageDirs("./...")
	if err != nil {
		return nil, err
	}
	var out []Finding
	for _, dir := range dirs {
		path, err := r.pathFor(dir)
		if err != nil {
			return nil, err
		}
		pkg, err := r.LoadDir(dir, path, false)
		if err != nil {
			return nil, err
		}
		out = append(out, r.Check(pkg, []*Analyzer{ArchDeps})...)
	}
	return out, nil
}
