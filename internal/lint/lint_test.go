package lint

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// newTestRunner builds one Runner per test; the expensive part of a load is
// type-checking standard-library imports, and the runner caches those, so
// fixture cases share it through t.Run subtests.
func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFixtures runs each analyzer over a firing and a non-firing golden
// package under testdata/src, comparing the findings against the fixtures'
// trailing "// want <analyzer>" markers. Fixtures are checked under an
// import path chosen to land inside (or outside) the analyzer's scope.
func TestFixtures(t *testing.T) {
	r := newTestRunner(t)
	cases := []struct {
		dir       string
		asPath    string
		analyzer  *Analyzer
		needTypes bool
	}{
		{"bddref_bad", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"bddref_ok", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"bddref_flow_bad", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"bddref_flow_ok", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"determinism_bad", "stsyn/internal/core", Determinism, true},
		{"determinism_ok", "stsyn/internal/core", Determinism, true},
		{"ctxflow_bad", "stsyn/internal/fixture/ctxflow", CtxFlow, true},
		{"ctxflow_ok", "stsyn/internal/fixture/ctxflow", CtxFlow, true},
		{"ctxflow_cmd", "stsyn/cmd/fixture", CtxFlow, true},
		{"archdeps_bad", "stsyn/internal/bdd", ArchDeps, false},
		{"archdeps_ok", "stsyn/internal/protocol", ArchDeps, false},
		{"prunedeps_bad", "stsyn/internal/prune", ArchDeps, false},
		{"prunedeps_ok", "stsyn/internal/prune", ArchDeps, false},
		{"pkgdeps_bad", "stsyn/pkg/client", ArchDeps, false},
		{"pkgdeps_ok", "stsyn/pkg/client", ArchDeps, false},
		{"pkgleaf_bad", "stsyn/pkg/stsynerr", ArchDeps, false},
		{"panicsafe_bad", "stsyn/internal/service", PanicSafe, false},
		{"panicsafe_bad", "stsyn/pkg/client", PanicSafe, false},
		{"panicsafe_ok", "stsyn/internal/service", PanicSafe, false},
		{"ignore", "stsyn/internal/service/fixture", PanicSafe, false},
		{"ignore_stale", "stsyn/internal/service/fixture", PanicSafe, false},
		{"ctxflow_field", "stsyn/internal/core", CtxFlow, true},
		{"goroleak_bad", "stsyn/internal/service/fixture", GoroLeak, true},
		{"goroleak_ok", "stsyn/internal/service/fixture", GoroLeak, true},
		{"locksafe_bad", "stsyn/internal/service/fixture", LockSafe, true},
		{"locksafe_ok", "stsyn/internal/service/fixture", LockSafe, true},
		{"metricnames_bad", "stsyn/internal/service/fixture", MetricNames, false},
		{"metricnames_ok", "stsyn/internal/service/fixture", MetricNames, false},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			pkg, err := r.LoadDir(dir, c.asPath, c.needTypes)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, f := range r.Check(pkg, []*Analyzer{c.analyzer}) {
				got = append(got, fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Analyzer))
			}
			want := wantMarkers(t, r, dir)
			sort.Strings(got)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch\n got: %q\nwant: %q", got, want)
			}
		})
	}
}

// wantMarkers collects the fixture's expected findings: each trailing
// "// want <analyzer>..." comment expects one finding per listed analyzer
// on that line, keyed by the same module-relative display name the loader
// assigns.
func wantMarkers(t *testing.T, r *Runner, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(r.Root, abs)
		if err != nil {
			t.Fatal(err)
		}
		display := filepath.ToSlash(rel)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, rest, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, analyzer := range strings.Fields(rest) {
				want = append(want, fmt.Sprintf("%s:%d: %s", display, line, analyzer))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// TestMalformedDirective checks the escape hatch's escape hatch: a
// directive without a reason is itself reported (pseudo-analyzer "lint",
// which cannot be ignored) and suppresses nothing. Marker comments cannot
// sit on the directive's own line, hence the explicit expectations.
func TestMalformedDirective(t *testing.T) {
	r := newTestRunner(t)
	dir := filepath.Join("testdata", "src", "ignore_malformed")
	pkg, err := r.LoadDir(dir, "stsyn/internal/service/fixture", false)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range r.Check(pkg, []*Analyzer{PanicSafe}) {
		got = append(got, f.Analyzer)
	}
	sort.Strings(got)
	if want := []string{"lint", "panicsafe"}; !reflect.DeepEqual(got, want) {
		t.Errorf("analyzers = %q, want %q", got, want)
	}
}

// TestAPIStab drives the golden/changelog coupling through a fixture
// surface: missing golden, current golden with a logged hash, drifted
// surface, and a regenerated golden whose hash never made it into the
// changelog.
func TestAPIStab(t *testing.T) {
	r := newTestRunner(t)
	pkg, err := r.LoadDir(filepath.Join("testdata", "src", "apistab"), "stsyn/pkg/client", true)
	if err != nil {
		t.Fatal(err)
	}
	surface := APISurface(pkg.Pkg)
	for _, fragment := range []string{"const Version", "func New", "type Config struct", "\tEndpoint string", "type Doer interface", "func (*Config) Reset", "type Alias = Config"} {
		if !strings.Contains(surface, fragment) {
			t.Errorf("surface is missing %q:\n%s", fragment, surface)
		}
	}
	for _, fragment := range []string{"secret", "internal"} {
		if strings.Contains(surface, fragment) {
			t.Errorf("surface leaks unexported %q:\n%s", fragment, surface)
		}
	}
	hash := APIHash(surface)
	golden := APIGoldenContent(pkg.PkgPath, surface)
	goldenName := APIGoldenName("pkg/client")

	check := func(t *testing.T, goldenContent, changelog string) []Finding {
		t.Helper()
		dir := t.TempDir()
		savedAPI, savedLog := r.APIDir, r.ChangelogPath
		defer func() { r.APIDir, r.ChangelogPath = savedAPI, savedLog }()
		r.APIDir = filepath.Join(dir, "api")
		r.ChangelogPath = filepath.Join(dir, "CHANGELOG.md")
		if goldenContent != "" {
			if err := os.MkdirAll(r.APIDir, 0o755); err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(filepath.Join(r.APIDir, goldenName), []byte(goldenContent), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		if changelog != "" {
			if err := os.WriteFile(r.ChangelogPath, []byte(changelog), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		return r.Check(pkg, []*Analyzer{APIStab})
	}
	expectOne := func(t *testing.T, findings []Finding, fragment string) {
		t.Helper()
		if len(findings) != 1 || !strings.Contains(findings[0].Message, fragment) {
			t.Errorf("findings = %v, want exactly one containing %q", findings, fragment)
		}
	}

	t.Run("missing golden", func(t *testing.T) {
		expectOne(t, check(t, "", ""), "no committed API golden")
	})
	t.Run("current golden, logged hash", func(t *testing.T) {
		if findings := check(t, golden, "## entry\n\nsurface hash "+hash+"\n"); len(findings) != 0 {
			t.Errorf("findings = %v, want none", findings)
		}
	})
	t.Run("surface drift", func(t *testing.T) {
		stale := APIGoldenContent(pkg.PkgPath, surface+"func Removed()\n")
		expectOne(t, check(t, stale, "surface hash "+hash+"\n"), "changed")
	})
	t.Run("unlogged hash", func(t *testing.T) {
		expectOne(t, check(t, golden, "## entry for some older hash\n"), "no entry mentioning surface hash")
	})
}

// TestJSONOutput pins the `stsyn-vet -json` wire format CI archives: an
// indented JSON array, never null, with stable field names.
func TestJSONOutput(t *testing.T) {
	var buf bytes.Buffer
	if err := EncodeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if got := buf.String(); got != "[]\n" {
		t.Errorf("empty findings = %q, want %q", got, "[]\n")
	}
	buf.Reset()
	findings := []Finding{{
		File:     "internal/service/handler.go",
		Line:     7,
		Col:      3,
		Analyzer: "panicsafe",
		Message:  "naked panic on the serving path",
	}}
	if err := EncodeJSON(&buf, findings); err != nil {
		t.Fatal(err)
	}
	want := `[
  {
    "file": "internal/service/handler.go",
    "line": 7,
    "col": 3,
    "analyzer": "panicsafe",
    "message": "naked panic on the serving path"
  }
]
`
	if got := buf.String(); got != want {
		t.Errorf("json output mismatch\n got: %s\nwant: %s", got, want)
	}
}

// TestExitCode pins the process contract: 2 on load errors, 1 on
// findings, 0 when clean — in that precedence order.
func TestExitCode(t *testing.T) {
	finding := []Finding{{Analyzer: "panicsafe"}}
	if got := ExitCode(nil, nil); got != 0 {
		t.Errorf("clean run = %d, want 0", got)
	}
	if got := ExitCode(finding, nil); got != 1 {
		t.Errorf("findings = %d, want 1", got)
	}
	if got := ExitCode(finding, errors.New("load failed")); got != 2 {
		t.Errorf("error = %d, want 2", got)
	}
}

// TestArchCheckWholeModule exercises the syntax-only whole-module walk
// behind the arch_test.go entry point: pattern expansion, canonical path
// mapping, and the dependency-direction analyzer over every real package.
func TestArchCheckWholeModule(t *testing.T) {
	findings, err := ArchCheck(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		t.Errorf("%s", f.String())
	}
}

// TestRepoIsClean is the suite's own dogfood gate: every analyzer over
// every package of this module must report nothing. It duplicates the
// `stsyn-vet ./...` run that scripts/check.sh gates on, so a regression
// fails plain `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	if raceEnabled {
		t.Skip("source-mode type-checking of the whole module is too slow under the race detector; check.sh runs stsyn-vet directly")
	}
	if testing.Short() {
		t.Skip("whole-module analysis skipped in -short mode")
	}
	r := newTestRunner(t)
	dirs, err := r.PackageDirs("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := r.LoadPackage(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range r.Check(pkg, All) {
			t.Errorf("%s", f)
		}
	}
}
