package lint

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
)

// newTestRunner builds one Runner per test; the expensive part of a load is
// type-checking standard-library imports, and the runner caches those, so
// fixture cases share it through t.Run subtests.
func newTestRunner(t *testing.T) *Runner {
	t.Helper()
	r, err := NewRunner(".")
	if err != nil {
		t.Fatal(err)
	}
	return r
}

// TestFixtures runs each analyzer over a firing and a non-firing golden
// package under testdata/src, comparing the findings against the fixtures'
// trailing "// want <analyzer>" markers. Fixtures are checked under an
// import path chosen to land inside (or outside) the analyzer's scope.
func TestFixtures(t *testing.T) {
	r := newTestRunner(t)
	cases := []struct {
		dir       string
		asPath    string
		analyzer  *Analyzer
		needTypes bool
	}{
		{"bddref_bad", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"bddref_ok", "stsyn/internal/fixture/bddref", BDDRef, true},
		{"determinism_bad", "stsyn/internal/core", Determinism, true},
		{"determinism_ok", "stsyn/internal/core", Determinism, true},
		{"ctxflow_bad", "stsyn/internal/fixture/ctxflow", CtxFlow, true},
		{"ctxflow_ok", "stsyn/internal/fixture/ctxflow", CtxFlow, true},
		{"ctxflow_cmd", "stsyn/cmd/fixture", CtxFlow, true},
		{"archdeps_bad", "stsyn/internal/bdd", ArchDeps, false},
		{"archdeps_ok", "stsyn/internal/protocol", ArchDeps, false},
		{"prunedeps_bad", "stsyn/internal/prune", ArchDeps, false},
		{"prunedeps_ok", "stsyn/internal/prune", ArchDeps, false},
		{"pkgdeps_bad", "stsyn/pkg/client", ArchDeps, false},
		{"pkgdeps_ok", "stsyn/pkg/client", ArchDeps, false},
		{"pkgleaf_bad", "stsyn/pkg/stsynerr", ArchDeps, false},
		{"panicsafe_bad", "stsyn/internal/service", PanicSafe, false},
		{"panicsafe_bad", "stsyn/pkg/client", PanicSafe, false},
		{"panicsafe_ok", "stsyn/internal/service", PanicSafe, false},
		{"ignore", "stsyn/internal/service/fixture", PanicSafe, false},
	}
	for _, c := range cases {
		t.Run(c.dir, func(t *testing.T) {
			dir := filepath.Join("testdata", "src", c.dir)
			pkg, err := r.LoadDir(dir, c.asPath, c.needTypes)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			for _, f := range r.Check(pkg, []*Analyzer{c.analyzer}) {
				got = append(got, fmt.Sprintf("%s:%d: %s", f.File, f.Line, f.Analyzer))
			}
			want := wantMarkers(t, r, dir)
			sort.Strings(got)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("findings mismatch\n got: %q\nwant: %q", got, want)
			}
		})
	}
}

// wantMarkers collects the fixture's expected findings: each trailing
// "// want <analyzer>..." comment expects one finding per listed analyzer
// on that line, keyed by the same module-relative display name the loader
// assigns.
func wantMarkers(t *testing.T, r *Runner, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var want []string
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		abs, err := filepath.Abs(path)
		if err != nil {
			t.Fatal(err)
		}
		rel, err := filepath.Rel(r.Root, abs)
		if err != nil {
			t.Fatal(err)
		}
		display := filepath.ToSlash(rel)
		f, err := os.Open(path)
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		for line := 1; sc.Scan(); line++ {
			_, rest, ok := strings.Cut(sc.Text(), "// want ")
			if !ok {
				continue
			}
			for _, analyzer := range strings.Fields(rest) {
				want = append(want, fmt.Sprintf("%s:%d: %s", display, line, analyzer))
			}
		}
		if err := sc.Err(); err != nil {
			t.Fatal(err)
		}
		f.Close()
	}
	return want
}

// TestMalformedDirective checks the escape hatch's escape hatch: a
// directive without a reason is itself reported (pseudo-analyzer "lint",
// which cannot be ignored) and suppresses nothing. Marker comments cannot
// sit on the directive's own line, hence the explicit expectations.
func TestMalformedDirective(t *testing.T) {
	r := newTestRunner(t)
	dir := filepath.Join("testdata", "src", "ignore_malformed")
	pkg, err := r.LoadDir(dir, "stsyn/internal/service/fixture", false)
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	for _, f := range r.Check(pkg, []*Analyzer{PanicSafe}) {
		got = append(got, f.Analyzer)
	}
	sort.Strings(got)
	if want := []string{"lint", "panicsafe"}; !reflect.DeepEqual(got, want) {
		t.Errorf("analyzers = %q, want %q", got, want)
	}
}

// TestRepoIsClean is the suite's own dogfood gate: every analyzer over
// every package of this module must report nothing. It duplicates the
// `stsyn-vet ./...` run that scripts/check.sh gates on, so a regression
// fails plain `go test ./...` too.
func TestRepoIsClean(t *testing.T) {
	if raceEnabled {
		t.Skip("source-mode type-checking of the whole module is too slow under the race detector; check.sh runs stsyn-vet directly")
	}
	if testing.Short() {
		t.Skip("whole-module analysis skipped in -short mode")
	}
	r := newTestRunner(t)
	dirs, err := r.PackageDirs("./...")
	if err != nil {
		t.Fatal(err)
	}
	for _, dir := range dirs {
		pkg, err := r.LoadPackage(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range r.Check(pkg, All) {
			t.Errorf("%s", f)
		}
	}
}
