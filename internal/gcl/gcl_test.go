package gcl_test

import (
	"strings"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/gcl"
	"stsyn/internal/pretty"
	"stsyn/internal/protocol"
	"stsyn/internal/protocols"
	"stsyn/internal/verify"
)

const tokenRingSrc = `
protocol TokenRing

# Four counters modulo 3 on a unidirectional ring.
var x0, x1, x2, x3 : 0..2

process P0 reads x0, x3 writes x0 {
    x0 == x3 -> x0 := x3 + 1
}
process P1 reads x0, x1 writes x1 {
    x1 + 1 == x0 -> x1 := x0
}
process P2 reads x1, x2 writes x2 {
    x2 + 1 == x1 -> x2 := x1
}
process P3 reads x2, x3 writes x3 {
    x3 + 1 == x2 -> x3 := x2
}

invariant
    (x1 == x0 && x2 == x1 && x3 == x2) ||
    (x1 + 1 == x0 && x2 == x1 && x3 == x2) ||
    (x1 == x0 && x2 + 1 == x1 && x3 == x2) ||
    (x1 == x0 && x2 == x1 && x3 + 1 == x2)
`

func TestParseTokenRing(t *testing.T) {
	sp, err := gcl.Parse("tr.stsyn", tokenRingSrc)
	if err != nil {
		t.Fatal(err)
	}
	if sp.Name != "TokenRing" || len(sp.Vars) != 4 || len(sp.Procs) != 4 {
		t.Fatalf("unexpected shape: %s, %d vars, %d procs", sp.Name, len(sp.Vars), len(sp.Procs))
	}
	if sp.Vars[0].Dom != 3 {
		t.Errorf("dom = %d, want 3", sp.Vars[0].Dom)
	}
}

// TestParsedTokenRingSemantics checks the parsed protocol is semantically
// identical to the built-in generator: same invariant and same transition
// groups.
func TestParsedTokenRingSemantics(t *testing.T) {
	parsed, err := gcl.Parse("tr.stsyn", tokenRingSrc)
	if err != nil {
		t.Fatal(err)
	}
	builtin := protocols.TokenRing(4, 3)

	ix := protocol.NewIndexer(parsed)
	s := make(protocol.State, 4)
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		if parsed.Invariant.EvalBool(s) != builtin.Invariant.EvalBool(s) {
			t.Fatalf("invariants disagree at %v", s)
		}
	}
	pk := groupKeys(t, parsed)
	bk := groupKeys(t, builtin)
	if len(pk) != len(bk) {
		t.Fatalf("group counts differ: %d vs %d", len(pk), len(bk))
	}
	for k := range bk {
		if !pk[k] {
			t.Fatalf("missing group %q in parsed protocol", k)
		}
	}
}

func groupKeys(t *testing.T, sp *protocol.Spec) map[protocol.Key]bool {
	t.Helper()
	out := make(map[protocol.Key]bool)
	for pi := range sp.Procs {
		for _, g := range sp.ActionGroups(pi) {
			out[g.Key()] = true
		}
	}
	return out
}

// TestParsedProtocolSynthesizes runs the full pipeline on a parsed spec.
func TestParsedProtocolSynthesizes(t *testing.T) {
	sp, err := gcl.Parse("tr.stsyn", tokenRingSrc)
	if err != nil {
		t.Fatal(err)
	}
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if v := verify.StronglyStabilizing(e, res.Protocol); !v.OK {
		t.Fatalf("parsed TR synthesis not stabilizing: %s", v.Reason)
	}
}

func TestParseOperatorsAndSugar(t *testing.T) {
	src := `
protocol Ops
var a, b : 0..3
var flag : 0..1
process P reads a, b, flag writes a {
    !(a == b) && (flag == 1 => a < b) -> a := b - 1
    a <= b || false -> a := 2
    true -> a := a + 1
}
invariant a == b
`
	sp, err := gcl.Parse("ops.stsyn", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Procs[0].Actions) != 3 {
		t.Fatalf("got %d actions, want 3", len(sp.Procs[0].Actions))
	}
	// Spot-check semantics of the first guard.
	g := sp.Procs[0].Actions[0].Guard
	if g.EvalBool(protocol.State{1, 1, 0}) { // a==b → !(a==b) false
		t.Error("guard should be false when a==b")
	}
	if !g.EvalBool(protocol.State{1, 2, 1}) { // a!=b, flag=1, a<b
		t.Error("guard should hold at a=1,b=2,flag=1")
	}
	if g.EvalBool(protocol.State{3, 2, 1}) { // flag=1 but a>=b
		t.Error("implication should fail at a=3,b=2,flag=1")
	}
	// b - 1 is modulo 4.
	rhs := sp.Procs[0].Actions[0].Assigns[0].Expr
	if got := rhs.EvalInt(protocol.State{0, 0, 0}); got != 3 {
		t.Errorf("0-1 mod 4 = %d, want 3", got)
	}
}

// TestPrettyParseRoundTrip cross-validates the pretty-printer against the
// parser: render the synthesized token ring as guarded commands, feed the
// text back through the parser, and demand the identical transition groups.
func TestPrettyParseRoundTrip(t *testing.T) {
	sp := protocols.TokenRing(4, 3)
	e, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	byProc := make(map[int][]protocol.Group)
	want := make(map[protocol.Key]bool)
	for _, g := range res.Protocol {
		pg := g.ProtocolGroup()
		byProc[pg.Proc] = append(byProc[pg.Proc], pg)
		want[pg.Key()] = true
	}

	// Rebuild a .stsyn source from the rendered commands.
	var b strings.Builder
	b.WriteString("protocol RoundTrip\nvar x0, x1, x2, x3 : 0..2\n")
	names := sp.VarNames()
	for pi := range sp.Procs {
		p := &sp.Procs[pi]
		b.WriteString("process " + p.Name + " reads ")
		for i, id := range p.Reads {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(names[id])
		}
		b.WriteString(" writes ")
		for i, id := range p.Writes {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(names[id])
		}
		b.WriteString(" {\n")
		for _, cmd := range pretty.Process(sp, pi, byProc[pi]) {
			b.WriteString("  " + cmd.Guard + " -> " + cmd.Effect + "\n")
		}
		b.WriteString("}\n")
	}
	b.WriteString("invariant (x1 == x0 && x2 == x1 && x3 == x2) || (x1 + 1 == x0 && x2 == x1 && x3 == x2) || (x1 == x0 && x2 + 1 == x1 && x3 == x2) || (x1 == x0 && x2 == x1 && x3 + 1 == x2)\n")

	parsed, err := gcl.Parse("roundtrip.stsyn", b.String())
	if err != nil {
		t.Fatalf("re-parsing rendered protocol failed: %v\nsource:\n%s", err, b.String())
	}
	got := groupKeys(t, parsed)
	if len(got) != len(want) {
		t.Fatalf("round trip: %d groups, want %d\nsource:\n%s", len(got), len(want), b.String())
	}
	for k := range want {
		if !got[k] {
			t.Fatalf("round trip lost group %q", k)
		}
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing header", `var x : 0..1`, "must start with 'protocol"},
		{"bad domain", `protocol P
var x : 1..2`, "domains must start at 0"},
		{"undeclared var", `protocol P
var x : 0..1
process Q reads x, y writes x { true -> x := 0 }
invariant true`, "undeclared variable"},
		{"duplicate var", `protocol P
var x : 0..1
var x : 0..1`, "already declared"},
		{"mixed domains", `protocol P
var x : 0..1
var y : 0..2
process Q reads x, y writes x { true -> x := x + y }
invariant true`, "cannot mix domains"},
		{"const arithmetic", `protocol P
var x : 0..1
process Q reads x writes x { true -> x := 1 + 1 }
invariant true`, "needs at least one variable"},
		{"write outside read", `protocol P
var x, y : 0..1
process Q reads x writes y { true -> y := 0 }
invariant true`, "w ⊆ r"},
		{"guard reads unreadable", `protocol P
var x, y : 0..1
process Q reads x writes x { y == 0 -> x := 0 }
invariant true`, "undeclared"}, // y is declared; should be a validate error
		{"stray token", `protocol P
var x : 0..1
process Q reads x writes x { true -> x := 0 }
invariant true
garbage`, "expected 'var'"},
	}
	for _, tc := range cases {
		_, err := gcl.Parse(tc.name, tc.src)
		if err == nil {
			t.Errorf("%s: parse unexpectedly succeeded", tc.name)
			continue
		}
		if tc.name == "guard reads unreadable" {
			// This one is caught by Validate, with its own message.
			if !strings.Contains(err.Error(), "unreadable") {
				t.Errorf("%s: error %q does not mention unreadable variable", tc.name, err)
			}
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not contain %q", tc.name, err, tc.want)
		}
	}
}

func TestErrorPositions(t *testing.T) {
	_, err := gcl.Parse("pos.stsyn", "protocol P\nvar x : 0..1\nprocess Q reads x writes x {\n  true -> x := @\n}\ninvariant true")
	if err == nil || !strings.Contains(err.Error(), "4:") {
		t.Errorf("error should carry line 4, got %v", err)
	}
}
