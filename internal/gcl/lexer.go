// Package gcl implements the textual input language of the tool: Dijkstra
// guarded commands over finite-domain variables with explicit read/write
// restrictions, the same shorthand the paper uses to present protocols.
//
// A specification looks like:
//
//	protocol TokenRing
//
//	# Four counters modulo 3.
//	var x0, x1, x2, x3 : 0..2
//
//	process P0 reads x0, x3 writes x0 {
//	    x0 == x3 -> x0 := x3 + 1
//	}
//	process P1 reads x0, x1 writes x1 {
//	    x1 + 1 == x0 -> x1 := x0
//	}
//	...
//
//	invariant (x1 == x0 && x2 == x1 && x3 == x2) || ...
//
// Modular arithmetic (+, -) infers its modulus from the domains of the
// variables involved; mixing domains in one sum is an error.
package gcl

import (
	"fmt"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokSym // punctuation and operators, Text holds the symbol
)

type token struct {
	kind tokenKind
	text string
	val  int
	line int
	col  int
}

func (t token) String() string {
	switch t.kind {
	case tokEOF:
		return "end of input"
	case tokInt:
		return fmt.Sprintf("%d", t.val)
	default:
		return fmt.Sprintf("%q", t.text)
	}
}

// lex tokenizes src; it reports errors with line/column positions.
func lex(src string) ([]token, error) {
	var toks []token
	line, col := 1, 1
	i := 0
	n := len(src)
	advance := func(k int) {
		for j := 0; j < k; j++ {
			if src[i+j] == '\n' {
				line++
				col = 1
			} else {
				col++
			}
		}
		i += k
	}
	for i < n {
		c := src[i]
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			advance(1)
		case c == '#' || (c == '/' && i+1 < n && src[i+1] == '/'):
			for i < n && src[i] != '\n' {
				advance(1)
			}
		case unicode.IsLetter(rune(c)) || c == '_':
			start, l0, c0 := i, line, col
			for i < n && (unicode.IsLetter(rune(src[i])) || unicode.IsDigit(rune(src[i])) || src[i] == '_') {
				advance(1)
			}
			toks = append(toks, token{kind: tokIdent, text: src[start:i], line: l0, col: c0})
		case unicode.IsDigit(rune(c)):
			start, l0, c0 := i, line, col
			v := 0
			for i < n && unicode.IsDigit(rune(src[i])) {
				v = v*10 + int(src[i]-'0')
				advance(1)
			}
			toks = append(toks, token{kind: tokInt, text: src[start:i], val: v, line: l0, col: c0})
		default:
			l0, c0 := line, col
			two := ""
			if i+1 < n {
				two = src[i : i+2]
			}
			switch two {
			case "==", "!=", "&&", "||", "->", ":=", "..", "=>", "<=":
				toks = append(toks, token{kind: tokSym, text: two, line: l0, col: c0})
				advance(2)
				continue
			}
			switch c {
			case '(', ')', '{', '}', ',', ':', ';', '+', '-', '!', '<':
				toks = append(toks, token{kind: tokSym, text: string(c), line: l0, col: c0})
				advance(1)
			default:
				return nil, fmt.Errorf("%d:%d: unexpected character %q", line, col, string(c))
			}
		}
	}
	toks = append(toks, token{kind: tokEOF, line: line, col: col})
	return toks, nil
}
