package gcl

import (
	"fmt"

	"stsyn/internal/protocol"
)

// Parse parses a .stsyn guarded-command specification into a protocol
// specification. name is used in error messages (typically the file name).
func Parse(name, src string) (*protocol.Spec, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, fmt.Errorf("%s:%v", name, err)
	}
	p := &parser{name: name, toks: toks, varID: make(map[string]int)}
	sp, err := p.spec()
	if err != nil {
		return nil, err
	}
	if err := sp.Validate(); err != nil {
		return nil, fmt.Errorf("%s: %v", name, err)
	}
	return sp, nil
}

type parser struct {
	name  string
	toks  []token
	pos   int
	sp    *protocol.Spec
	varID map[string]int
}

func (p *parser) peek() token   { return p.toks[p.pos] }
func (p *parser) next() token   { t := p.toks[p.pos]; p.pos++; return t }
func (p *parser) save() int     { return p.pos }
func (p *parser) restore(m int) { p.pos = m }

func (p *parser) errf(t token, format string, args ...interface{}) error {
	return fmt.Errorf("%s:%d:%d: %s", p.name, t.line, t.col, fmt.Sprintf(format, args...))
}

func (p *parser) expectSym(s string) error {
	t := p.next()
	if t.kind != tokSym || t.text != s {
		return p.errf(t, "expected %q, got %s", s, t)
	}
	return nil
}

func (p *parser) expectIdent() (token, error) {
	t := p.next()
	if t.kind != tokIdent {
		return t, p.errf(t, "expected identifier, got %s", t)
	}
	return t, nil
}

func (p *parser) acceptSym(s string) bool {
	t := p.peek()
	if t.kind == tokSym && t.text == s {
		p.pos++
		return true
	}
	return false
}

func (p *parser) acceptKeyword(kw string) bool {
	t := p.peek()
	if t.kind == tokIdent && t.text == kw {
		p.pos++
		return true
	}
	return false
}

// spec parses the whole file.
func (p *parser) spec() (*protocol.Spec, error) {
	p.sp = &protocol.Spec{}
	if !p.acceptKeyword("protocol") {
		return nil, p.errf(p.peek(), "specification must start with 'protocol <name>'")
	}
	nameTok, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	p.sp.Name = nameTok.text

	for {
		switch {
		case p.acceptKeyword("var"):
			if err := p.varDecl(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("process"):
			if err := p.processDecl(); err != nil {
				return nil, err
			}
		case p.acceptKeyword("invariant"):
			e, err := p.boolExpr()
			if err != nil {
				return nil, err
			}
			if p.sp.Invariant != nil {
				return nil, p.errf(p.peek(), "duplicate invariant")
			}
			p.sp.Invariant = e
		default:
			t := p.peek()
			if t.kind == tokEOF {
				return p.sp, nil
			}
			return nil, p.errf(t, "expected 'var', 'process' or 'invariant', got %s", t)
		}
	}
}

// varDecl parses "name (, name)* : lo .. hi".
func (p *parser) varDecl() error {
	var names []token
	for {
		t, err := p.expectIdent()
		if err != nil {
			return err
		}
		names = append(names, t)
		if !p.acceptSym(",") {
			break
		}
	}
	if err := p.expectSym(":"); err != nil {
		return err
	}
	lo := p.next()
	if lo.kind != tokInt || lo.val != 0 {
		return p.errf(lo, "domains must start at 0 (got %s)", lo)
	}
	if err := p.expectSym(".."); err != nil {
		return err
	}
	hi := p.next()
	if hi.kind != tokInt || hi.val < 0 {
		return p.errf(hi, "expected domain upper bound, got %s", hi)
	}
	for _, t := range names {
		if _, dup := p.varID[t.text]; dup {
			return p.errf(t, "variable %q already declared", t.text)
		}
		p.varID[t.text] = len(p.sp.Vars)
		p.sp.Vars = append(p.sp.Vars, protocol.Var{Name: t.text, Dom: hi.val + 1})
	}
	return nil
}

// processDecl parses "NAME reads list writes list { action* }".
func (p *parser) processDecl() error {
	nameTok, err := p.expectIdent()
	if err != nil {
		return err
	}
	proc := protocol.Process{Name: nameTok.text}
	if !p.acceptKeyword("reads") {
		return p.errf(p.peek(), "expected 'reads'")
	}
	reads, err := p.varList()
	if err != nil {
		return err
	}
	if !p.acceptKeyword("writes") {
		return p.errf(p.peek(), "expected 'writes'")
	}
	writes, err := p.varList()
	if err != nil {
		return err
	}
	proc.Reads = protocol.SortedIDs(reads...)
	proc.Writes = protocol.SortedIDs(writes...)
	if err := p.expectSym("{"); err != nil {
		return err
	}
	for !p.acceptSym("}") {
		a, err := p.action()
		if err != nil {
			return err
		}
		proc.Actions = append(proc.Actions, a)
	}
	p.sp.Procs = append(p.sp.Procs, proc)
	return nil
}

func (p *parser) varList() ([]int, error) {
	var ids []int
	for {
		t, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		id, ok := p.varID[t.text]
		if !ok {
			return nil, p.errf(t, "undeclared variable %q", t.text)
		}
		ids = append(ids, id)
		if !p.acceptSym(",") {
			break
		}
	}
	return ids, nil
}

// action parses "guard -> assign (; assign)*".
func (p *parser) action() (protocol.Action, error) {
	guard, err := p.boolExpr()
	if err != nil {
		return protocol.Action{}, err
	}
	if err := p.expectSym("->"); err != nil {
		return protocol.Action{}, err
	}
	var assigns []protocol.Assignment
	for {
		t, err := p.expectIdent()
		if err != nil {
			return protocol.Action{}, err
		}
		id, ok := p.varID[t.text]
		if !ok {
			return protocol.Action{}, p.errf(t, "undeclared variable %q", t.text)
		}
		if err := p.expectSym(":="); err != nil {
			return protocol.Action{}, err
		}
		rhs, _, err := p.intExpr()
		if err != nil {
			return protocol.Action{}, err
		}
		assigns = append(assigns, protocol.Assignment{Var: id, Expr: rhs})
		if !p.acceptSym(";") {
			break
		}
	}
	return protocol.Action{Guard: guard, Assigns: assigns}, nil
}

// Boolean grammar: implies (right assoc, lowest) > or > and > unary.
func (p *parser) boolExpr() (protocol.BoolExpr, error) {
	lhs, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	if p.acceptSym("=>") {
		rhs, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		return protocol.Implies{A: lhs, B: rhs}, nil
	}
	return lhs, nil
}

func (p *parser) orExpr() (protocol.BoolExpr, error) {
	lhs, err := p.andExpr()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("||") {
		rhs, err := p.andExpr()
		if err != nil {
			return nil, err
		}
		lhs = protocol.Disj(lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) andExpr() (protocol.BoolExpr, error) {
	lhs, err := p.boolUnary()
	if err != nil {
		return nil, err
	}
	for p.acceptSym("&&") {
		rhs, err := p.boolUnary()
		if err != nil {
			return nil, err
		}
		lhs = protocol.Conj(lhs, rhs)
	}
	return lhs, nil
}

func (p *parser) boolUnary() (protocol.BoolExpr, error) {
	if p.acceptSym("!") {
		x, err := p.boolUnary()
		if err != nil {
			return nil, err
		}
		return protocol.Not{X: x}, nil
	}
	if p.acceptKeyword("true") {
		return protocol.True{}, nil
	}
	if p.acceptKeyword("false") {
		return protocol.False{}, nil
	}
	// Either a comparison or a parenthesized boolean expression; try the
	// comparison first and backtrack.
	mark := p.save()
	if cmp, err := p.comparison(); err == nil {
		return cmp, nil
	}
	p.restore(mark)
	if p.acceptSym("(") {
		e, err := p.boolExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf(p.peek(), "expected boolean expression, got %s", p.peek())
}

func (p *parser) comparison() (protocol.BoolExpr, error) {
	lhs, _, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	op := p.next()
	if op.kind != tokSym {
		return nil, p.errf(op, "expected comparison operator, got %s", op)
	}
	rhs, _, err := p.intExpr()
	if err != nil {
		return nil, err
	}
	switch op.text {
	case "==":
		return protocol.Eq{A: lhs, B: rhs}, nil
	case "!=":
		return protocol.Neq{A: lhs, B: rhs}, nil
	case "<":
		return protocol.Lt{A: lhs, B: rhs}, nil
	case "<=":
		return protocol.Not{X: protocol.Lt{A: rhs, B: lhs}}, nil
	default:
		return nil, p.errf(op, "expected comparison operator, got %s", op)
	}
}

// intExpr parses modular additive expressions; the second return value is
// the inferred domain (0 if the expression is a pure constant).
func (p *parser) intExpr() (protocol.IntExpr, int, error) {
	lhs, dom, err := p.intAtom()
	if err != nil {
		return nil, 0, err
	}
	for {
		var op string
		switch {
		case p.acceptSym("+"):
			op = "+"
		case p.acceptSym("-"):
			op = "-"
		default:
			return lhs, dom, nil
		}
		opTok := p.toks[p.pos-1]
		rhs, rdom, err := p.intAtom()
		if err != nil {
			return nil, 0, err
		}
		mod, err := p.mergeDoms(opTok, dom, rdom)
		if err != nil {
			return nil, 0, err
		}
		if op == "+" {
			lhs = protocol.AddMod{A: lhs, B: rhs, Mod: mod}
		} else {
			lhs = protocol.SubMod{A: lhs, B: rhs, Mod: mod}
		}
		dom = mod
	}
}

func (p *parser) mergeDoms(t token, a, b int) (int, error) {
	switch {
	case a == 0 && b == 0:
		return 0, p.errf(t, "modular arithmetic needs at least one variable operand to infer the modulus")
	case a == 0:
		return b, nil
	case b == 0:
		return a, nil
	case a == b:
		return a, nil
	default:
		return 0, p.errf(t, "cannot mix domains %d and %d in modular arithmetic", a, b)
	}
}

func (p *parser) intAtom() (protocol.IntExpr, int, error) {
	t := p.next()
	switch {
	case t.kind == tokInt:
		return protocol.C{Val: t.val}, 0, nil
	case t.kind == tokIdent:
		id, ok := p.varID[t.text]
		if !ok {
			return nil, 0, p.errf(t, "undeclared variable %q", t.text)
		}
		return protocol.V{ID: id}, p.sp.Vars[id].Dom, nil
	case t.kind == tokSym && t.text == "(":
		e, dom, err := p.intExpr()
		if err != nil {
			return nil, 0, err
		}
		if err := p.expectSym(")"); err != nil {
			return nil, 0, err
		}
		return e, dom, nil
	default:
		return nil, 0, p.errf(t, "expected integer expression, got %s", t)
	}
}
