package core_test

import (
	"context"
	"errors"
	"testing"
	"time"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
	"stsyn/internal/symbolic"
)

// A cancelled context must abort AddConvergence with the context's error
// before any work is done.
func TestAddConvergenceCancelledContext(t *testing.T) {
	e := newEngine(t, protocols.TokenRing(4, 3))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := core.AddConvergence(e, core.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// An already-expired deadline must surface context.DeadlineExceeded on both
// engines; the synthesized (partial) result must never be reported as a
// success.
func TestAddConvergenceExpiredDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	for _, tc := range []struct {
		name    string
		factory func() (core.Engine, error)
	}{
		{"explicit", func() (core.Engine, error) { return newEngine(t, protocols.Coloring(6)), nil }},
		{"symbolic", func() (core.Engine, error) { return symbolic.New(protocols.Coloring(6)) }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			e, err := tc.factory()
			if err != nil {
				t.Fatal(err)
			}
			_, err = core.AddConvergence(e, core.Options{Ctx: ctx})
			if !errors.Is(err, context.DeadlineExceeded) {
				t.Fatalf("err = %v, want context.DeadlineExceeded", err)
			}
		})
	}
}

// A nil context must behave exactly like before: a full successful run.
func TestAddConvergenceNilContext(t *testing.T) {
	e := newEngine(t, protocols.TokenRing(4, 3))
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Protocol) == 0 {
		t.Fatal("no protocol synthesized")
	}
}

// TrySchedules must skip not-yet-started attempts once the context is
// cancelled, and report the context error.
func TestTrySchedulesCancelledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	factory := func() (core.Engine, error) { return newEngine(t, protocols.TokenRing(4, 3)), nil }
	_, attempts, err := core.TrySchedules(factory, core.Options{Ctx: ctx}, core.Rotations(4), 2)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for _, a := range attempts {
		if a.Err == nil {
			t.Fatalf("attempt %v succeeded under a cancelled context", a.Schedule)
		}
	}
}
