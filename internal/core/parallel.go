package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
)

// EngineFactory builds a fresh engine for one synthesis attempt. Engines
// are not safe for concurrent use, so the parallel driver creates one per
// schedule.
type EngineFactory func() (Engine, error)

// ErrSkipped marks attempts that were never started because another
// schedule had already succeeded.
var ErrSkipped = errors.New("attempt skipped: another schedule already succeeded")

// Attempt is the outcome of one schedule's synthesis run.
type Attempt struct {
	Schedule []int
	Result   *Result
	Err      error
}

// tryStream is the shared fan-out engine behind TrySchedules and
// TryScheduleStream: schedules are pulled from next in index order as
// worker slots free up, one heuristic instance runs per schedule, pulling
// stops once any attempt has succeeded, and every started attempt runs to
// completion. Because pulls are ordered, every index below a started one
// was also started — so the lowest-index success is a deterministic
// function of the schedule source alone, whatever the interleaving.
//
// record, when non-nil, observes every started attempt's terminal outcome.
// tryStream returns the winning attempt with its index (bestIdx -1 when
// none), the number of schedules started, and the error of the
// lowest-index failed attempt.
func tryStream(factory EngineFactory, opts Options, next func() ([]int, bool), workers int, record func(idx int, a Attempt)) (best *Attempt, bestIdx, tried int, firstErr error) {
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background() //lint:ignore ctxflow documented API default: Options.Ctx nil means Background
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var mu sync.Mutex
	bestIdx = -1
	errAt := -1
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for idx := 0; ; idx++ {
		// Acquiring the slot before pulling bounds both the concurrency and
		// how far ahead of the workers the stream is consumed.
		sem <- struct{}{}
		mu.Lock()
		won := bestIdx >= 0
		mu.Unlock()
		if won || ctx.Err() != nil {
			<-sem
			break
		}
		s, ok := next()
		if !ok {
			<-sem
			break
		}
		tried++
		wg.Add(1)
		go func(idx int, s []int) {
			defer wg.Done()
			defer func() { <-sem }()
			a := Attempt{Schedule: s}
			if err := ctx.Err(); err != nil {
				a.Err = err
			} else if e, err := factory(); err != nil {
				a.Err = err
			} else {
				o := opts
				o.Schedule = s
				a.Result, a.Err = AddConvergence(e, o)
			}
			mu.Lock()
			if a.Err == nil {
				if bestIdx < 0 || idx < bestIdx {
					bestIdx, best = idx, &a
				}
			} else if errAt < 0 || idx < errAt {
				errAt, firstErr = idx, a.Err
			}
			if record != nil {
				record(idx, a)
			}
			mu.Unlock()
		}(idx, s)
	}
	wg.Wait()
	return best, bestIdx, tried, firstErr
}

// TrySchedules realizes the paper's lightweight method (Figure 1): the
// success of the heuristic depends on the recovery schedule, and schedules
// are independent, so one heuristic instance is launched per schedule — the
// paper suggests separate machines; here a bounded pool of goroutines.
//
// It returns the successful attempt with the lowest schedule index along
// with every attempt's outcome; schedules never started because a lower
// index had already succeeded carry ErrSkipped. The winner is deterministic:
// attempts are started in index order, so the lowest-index success always
// runs, whatever the goroutine interleaving. If no schedule succeeds, the
// returned error is the first attempt's error.
//
// opts.Ctx, when set, bounds the whole fan-out: attempts not yet started
// when the context is cancelled fail fast with the context's error, and
// running attempts stop at their next cancellation point.
func TrySchedules(factory EngineFactory, opts Options, schedules [][]int, workers int) (*Attempt, []Attempt, error) {
	if len(schedules) == 0 {
		return nil, nil, errors.New("no schedules given")
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background() //lint:ignore ctxflow documented API default: Options.Ctx nil means Background
	}
	attempts := make([]Attempt, len(schedules))
	started := make([]bool, len(schedules))
	for i := range attempts {
		attempts[i].Schedule = schedules[i]
	}
	record := func(idx int, a Attempt) {
		attempts[idx] = a
		started[idx] = true
	}
	_, bestIdx, _, _ := tryStream(factory, opts, StreamSchedules(schedules), workers, record)
	for i := range attempts {
		if !started[i] {
			if err := ctx.Err(); err != nil {
				attempts[i].Err = err
			} else {
				attempts[i].Err = ErrSkipped
			}
		}
	}
	if bestIdx >= 0 {
		return &attempts[bestIdx], attempts, nil
	}
	return nil, attempts, attempts[0].Err
}

// TryScheduleStream is TrySchedules over a streaming schedule source:
// next yields schedules in index order (e.g. a ScheduleStream over all k!
// permutations, or SampleSchedules through StreamSchedules) and is only
// consumed as workers free up, so the set is never materialized.
//
// It returns the winning attempt — deterministically the success with the
// lowest stream index — and the number of schedules started. With no
// success, the error of the lowest-indexed failed attempt is returned; an
// empty stream is an error.
func TryScheduleStream(factory EngineFactory, opts Options, next func() ([]int, bool), workers int) (*Attempt, int, error) {
	best, _, tried, firstErr := tryStream(factory, opts, next, workers, nil)
	if best != nil {
		return best, tried, nil
	}
	if firstErr == nil {
		// No attempt started and none failed: either the stream was empty or
		// the context was already cancelled before the first pull.
		if opts.Ctx != nil {
			if err := opts.Ctx.Err(); err != nil {
				return nil, tried, err
			}
		}
		return nil, 0, errors.New("no schedules given")
	}
	return nil, tried, firstErr
}
