package core

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// EngineFactory builds a fresh engine for one synthesis attempt. Engines
// are not safe for concurrent use, so the parallel driver creates one per
// schedule.
type EngineFactory func() (Engine, error)

// ErrSkipped marks attempts that were never started because another
// schedule had already succeeded.
var ErrSkipped = errors.New("attempt skipped: another schedule already succeeded")

// Attempt is the outcome of one schedule's synthesis run.
type Attempt struct {
	Schedule []int
	Result   *Result
	Err      error
}

// TrySchedules realizes the paper's lightweight method (Figure 1): the
// success of the heuristic depends on the recovery schedule, and schedules
// are independent, so one heuristic instance is launched per schedule — the
// paper suggests separate machines; here a bounded pool of goroutines.
//
// It returns the successful attempt with the lowest schedule index (for
// determinism) along with every attempt's outcome. If no schedule succeeds,
// the returned error is the first attempt's error.
//
// opts.Ctx, when set, bounds the whole fan-out: attempts not yet started
// when the context is cancelled fail fast with the context's error, and
// running attempts stop at their next cancellation point.
func TrySchedules(factory EngineFactory, opts Options, schedules [][]int, workers int) (*Attempt, []Attempt, error) {
	if len(schedules) == 0 {
		return nil, nil, errors.New("no schedules given")
	}
	ctx := opts.Ctx
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	attempts := make([]Attempt, len(schedules))
	var stop atomic.Bool
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for idx := range schedules {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			attempts[idx].Schedule = schedules[idx]
			if err := ctx.Err(); err != nil {
				attempts[idx].Err = err
				return
			}
			if stop.Load() {
				attempts[idx].Err = ErrSkipped
				return
			}
			e, err := factory()
			if err != nil {
				attempts[idx].Err = err
				return
			}
			o := opts
			o.Schedule = schedules[idx]
			r, err := AddConvergence(e, o)
			attempts[idx].Result = r
			attempts[idx].Err = err
			if err == nil {
				stop.Store(true)
			}
		}(idx)
	}
	wg.Wait()
	for i := range attempts {
		if attempts[i].Err == nil {
			return &attempts[i], attempts, nil
		}
	}
	return nil, attempts, attempts[0].Err
}
