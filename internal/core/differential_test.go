package core_test

import (
	"errors"
	"math/rand"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/explicit"
	"stsyn/internal/protocol"
	"stsyn/internal/specgen"
	"stsyn/internal/symbolic"
	"stsyn/internal/verify"
)

// stateRank returns the rank of state s under the given partition: the
// index of the rank set containing it, or -1 when it only appears in the
// infinite set.
func stateRank(e core.Engine, ranks []core.Set, s protocol.State) int {
	single := e.Singleton(s)
	for r, set := range ranks {
		if !e.IsEmpty(e.And(set, single)) {
			return r
		}
	}
	return -1
}

// checkDifferential runs the full cross-engine agreement battery on one
// specification, with garbage collection forced at every safe point of the
// symbolic engine (watermark 1): rank partitions, ∞-rank detection, and
// AddConvergence outcome must match the explicit engine exactly. Premature
// reclamation in the hash-consed store flips set membership silently, which
// is precisely what the explicit engine cross-check catches.
func checkDifferential(t *testing.T, sp *protocol.Spec) {
	t.Helper()
	se, err := symbolic.New(sp)
	if err != nil {
		t.Fatalf("symbolic.New: %v", err)
	}
	se.SetCompactionThreshold(1) // GC at every safe point
	ee, err := explicit.New(sp, 0)
	if err != nil {
		t.Fatalf("explicit.New: %v", err)
	}

	// Rank-partition parity on the intermediate protocol p_im.
	sranks, sinf := core.ComputeRanks(se, core.Pim(se, se.ActionGroups()))
	eranks, einf := core.ComputeRanks(ee, core.Pim(ee, ee.ActionGroups()))
	if len(sranks) != len(eranks) {
		t.Fatalf("rank counts differ: symbolic %d vs explicit %d", len(sranks), len(eranks))
	}
	if se.States(sinf) != ee.States(einf) {
		t.Fatalf("∞-rank state counts differ: symbolic %v vs explicit %v",
			se.States(sinf), ee.States(einf))
	}

	// Force a collection with the rank partition as the only caller-listed
	// roots, then compare per-state membership across the whole space.
	live := make([]core.Set, 0, len(sranks)+1)
	live = append(live, sranks...)
	live = append(live, sinf)
	out := se.Compact(live)
	sranks, sinf = out[:len(sranks)], out[len(sranks)]

	ix := protocol.NewIndexer(sp)
	s := make(protocol.State, len(sp.Vars))
	for i := uint64(0); i < ix.Len(); i++ {
		ix.Decode(i, s)
		sr, er := stateRank(se, sranks, s), stateRank(ee, eranks, s)
		if sr != er {
			t.Fatalf("state %v: symbolic rank %d vs explicit rank %d", s, sr, er)
		}
		sin := !se.IsEmpty(se.And(sinf, se.Singleton(s)))
		ein := !ee.IsEmpty(ee.And(einf, ee.Singleton(s)))
		if sin != ein {
			t.Fatalf("state %v: ∞-rank membership differs (symbolic %v, explicit %v)", s, sin, ein)
		}
		if (sr == -1) != sin {
			t.Fatalf("state %v: rank partition and ∞ set are not a partition", s)
		}
	}

	// AddConvergence outcome parity, both resolution strategies.
	for _, resolution := range []core.CycleResolution{core.BatchResolution, core.IncrementalResolution} {
		opts := core.Options{CycleResolution: resolution}
		sres, serr := core.AddConvergence(se, opts)
		eres, eerr := core.AddConvergence(ee, opts)
		if (serr == nil) != (eerr == nil) {
			t.Fatalf("engines disagree on success: symbolic=%v explicit=%v", serr, eerr)
		}
		if serr != nil {
			for _, sentinel := range []error{core.ErrNotClosed, core.ErrNoStabilizingVersion,
				core.ErrUnresolvableCycle, core.ErrDeadlocksRemain} {
				if errors.Is(serr, sentinel) != errors.Is(eerr, sentinel) {
					t.Fatalf("different error classes: %v vs %v", serr, eerr)
				}
			}
			continue
		}
		skeys := make(map[protocol.Key]bool)
		for _, g := range sres.Protocol {
			skeys[g.ProtocolGroup().Key()] = true
		}
		if len(skeys) != len(eres.Protocol) {
			t.Fatalf("synthesized group counts differ: %d vs %d", len(skeys), len(eres.Protocol))
		}
		for _, g := range eres.Protocol {
			if !skeys[g.ProtocolGroup().Key()] {
				t.Fatalf("symbolic protocol lacks group %s", g.ProtocolGroup().Render(sp))
			}
		}
		// The GC-stressed engine's own result must also model-check.
		if v := verify.StronglyStabilizing(se, sres.Protocol); !v.OK {
			t.Fatalf("GC-stressed result fails verification: %s", v.Reason)
		}
	}
}

// TestDifferentialEnginesUnderGCStress is the cross-engine differential
// battery over a corpus of random protocols.
func TestDifferentialEnginesUnderGCStress(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	iters := 40
	if testing.Short() {
		iters = 8
	}
	for iter := 0; iter < iters; iter++ {
		sp := specgen.RandomSpec(rng, iter%2 == 1)
		checkDifferential(t, sp)
	}
}

// FuzzDifferentialEngines feeds generator seeds from the fuzzer into the
// same battery, so `go test -fuzz` explores specs the fixed corpus missed.
func FuzzDifferentialEngines(f *testing.F) {
	for _, seed := range []int64{3, 11, 17, 1001, 2024} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		checkDifferential(t, specgen.RandomSpec(rng, rng.Intn(2) == 1))
	})
}
