package core_test

import (
	"strings"
	"testing"

	"stsyn/internal/core"
	"stsyn/internal/protocols"
)

func TestConvergenceString(t *testing.T) {
	if core.Strong.String() != "strong" || core.Weak.String() != "weak" {
		t.Error("Convergence.String wrong")
	}
}

func TestLogOption(t *testing.T) {
	e := newEngine(t, protocols.TokenRing(4, 3))
	var lines []string
	_, err := core.AddConvergence(e, core.Options{
		Log: func(f string, a ...interface{}) {
			lines = append(lines, f)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("no trace emitted")
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "candidate batch") {
			found = true
		}
	}
	if !found {
		t.Errorf("trace lacks batch lines: %v", lines)
	}
}

func TestResultMetricsPopulated(t *testing.T) {
	e := newEngine(t, protocols.Matching(5))
	res, err := core.AddConvergence(e, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalTime <= 0 || res.SCCTime <= 0 {
		t.Error("timings not recorded")
	}
	if res.ProgramSize <= 0 {
		t.Error("program size not recorded")
	}
	if res.SCCCount <= 0 || res.AvgSCCSize <= 0 {
		t.Error("SCC metrics not recorded (matching must create SCCs)")
	}
	if res.MaxRank() <= 0 {
		t.Error("ranks not recorded")
	}
	if res.PassCompleted < 1 || res.PassCompleted > 3 {
		t.Errorf("PassCompleted = %d", res.PassCompleted)
	}
}

// Deadlocks helper must agree with the definition: ¬I minus enabled states.
func TestDeadlocksHelper(t *testing.T) {
	e := newEngine(t, protocols.TokenRing(4, 3))
	gs := e.ActionGroups()
	d := core.Deadlocks(e, gs)
	manual := e.Diff(e.Not(e.Invariant()), e.EnabledSources(gs))
	if !e.Equal(d, manual) {
		t.Error("Deadlocks disagrees with its definition")
	}
	if e.States(d) != 18 {
		t.Errorf("TR(4,3) has %v deadlocks, want 18", e.States(d))
	}
}
